(* netrepro - regenerate the paper's tables and figures from the
   simulated CHERI-compartmentalized network stack. *)

let list_experiments () =
  List.iter
    (fun (s : Core.Experiment.spec) ->
      Printf.printf "%-14s %-10s %s\n" s.Core.Experiment.id
        s.Core.Experiment.paper_ref s.Core.Experiment.title)
    Core.Experiment.all;
  0

let profile_of quick iterations =
  let base = if quick then Core.Experiment.quick else Core.Experiment.full in
  match iterations with
  | None -> base
  | Some n -> { base with Core.Experiment.iterations = n }

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

type telemetry = {
  metrics_file : string option;
  trace_file : string option;
  flow_trace_file : string option;
  sample_every : int;
  timeseries_file : string option;
}

(* Telemetry rides along with any experiment run: enable the registries
   up front, dump the requested files when the run completes. The
   registries are process-wide, so a multi-experiment run produces one
   combined metrics file / trace. *)
let with_telemetry t f =
  if t.metrics_file <> None then begin
    Dsim.Metrics.set_enabled Dsim.Metrics.default true;
    Dsim.Metrics.reset Dsim.Metrics.default
  end;
  if t.trace_file <> None then begin
    Dsim.Span.set_enabled Dsim.Span.default true;
    Dsim.Span.clear Dsim.Span.default
  end;
  if t.flow_trace_file <> None then begin
    Dsim.Flowtrace.set_enabled Dsim.Flowtrace.default true;
    Dsim.Flowtrace.set_sample_every Dsim.Flowtrace.default t.sample_every;
    Dsim.Flowtrace.clear Dsim.Flowtrace.default
  end;
  if t.timeseries_file <> None then begin
    (* Needs metric values to snapshot. *)
    Dsim.Metrics.set_enabled Dsim.Metrics.default true;
    Dsim.Sampler.set_enabled Dsim.Sampler.default true;
    Dsim.Sampler.clear Dsim.Sampler.default
  end;
  let result = f () in
  let dump path render =
    match write_file path (render ()) with
    | () -> true
    | exception Sys_error msg ->
      Printf.eprintf "netrepro: cannot write %s\n" msg;
      false
  in
  let ok_metrics =
    match t.metrics_file with
    | None -> true
    | Some path ->
      (* Fold the always-on per-label RNG draw counters into the
         exposition before rendering it. *)
      Dsim.Profile.publish_rng_draws Dsim.Profile.default Dsim.Metrics.default;
      dump path (fun () -> Dsim.Metrics.to_prometheus Dsim.Metrics.default)
  in
  let ok_trace =
    match t.trace_file with
    | None -> true
    | Some path ->
      dump path (fun () -> Dsim.Span.to_chrome_json Dsim.Span.default)
  in
  let ok_flow =
    match t.flow_trace_file with
    | None -> true
    | Some path ->
      dump path (fun () ->
          Dsim.Json.to_string (Dsim.Flowtrace.to_json Dsim.Flowtrace.default))
  in
  let ok_timeseries =
    match t.timeseries_file with
    | None -> true
    | Some path ->
      let ok =
        dump path (fun () ->
            Dsim.Json.to_string (Dsim.Sampler.to_json Dsim.Sampler.default))
      in
      if Dsim.Sampler.truncated Dsim.Sampler.default then
        Printf.eprintf
          "netrepro: WARNING: time series truncated — %d snapshot(s) dropped \
           past row capacity; %s holds a prefix of the run\n"
          (Dsim.Sampler.dropped Dsim.Sampler.default)
          path;
      ok
  in
  if ok_metrics && ok_trace && ok_flow && ok_timeseries then result else 1

(* Arm journal recording to [path], failing cleanly (like the telemetry
   dumps) when the path is unwritable instead of escaping as a raw
   [Sys_error]. *)
let arm_journal ~header path =
  try Dsim.Journal.record_to ~header (Dsim.Journal.To_file path)
  with Sys_error msg ->
    Printf.eprintf "netrepro: cannot write %s\n" msg;
    exit 1

(* The journal is a single process-global dispatch stream ordered by
   the engine's sequence numbers; the domains executor dispatches on
   several cores whose interleaving is wall-clock-dependent, so a
   recorded stream would not be replayable (nor even well-ordered).
   Interleaved sharding (any count) and --shards 1 --domains (which
   never spawns) stay journal-clean, so only the true parallel case is
   refused. *)
let refuse_journal_with_domains journal =
  if
    journal <> None && !Core.Shardcfg.domains && !Core.Shardcfg.shards > 1
  then begin
    Printf.eprintf
      "netrepro: --journal is incompatible with --domains when --shards > 1 \
       (cross-domain wall-clock interleaving is not replayable); drop \
       --domains or use --shards 1\n";
    exit 2
  end

let run_experiment ids quick iterations telemetry journal =
  (* The sampler schedules its own events on the engine, so a sampled
     run can never replay against an unsampled one (or vice versa):
     refuse the combination instead of recording unverifiable journals. *)
  (match (journal, telemetry.timeseries_file) with
  | Some _, Some _ ->
    Printf.eprintf
      "netrepro: --journal is incompatible with --timeseries (the sampler \
       schedules events, so replay would diverge)\n";
    exit 2
  | _ -> ());
  refuse_journal_with_domains journal;
  let profile = profile_of quick iterations in
  let targets =
    match ids with
    | [] -> Core.Experiment.all
    | ids -> (
      match
        List.map
          (fun id ->
            match Core.Experiment.find id with
            | Some s -> Ok s
            | None -> Error id)
          ids
        |> List.partition_map (function Ok s -> Left s | Error e -> Right e)
      with
      | specs, [] -> specs
      | _, missing ->
        Printf.eprintf "unknown experiment(s): %s\nknown: %s\n"
          (String.concat ", " missing)
          (String.concat ", " (Core.Experiment.ids ()));
        exit 2)
  in
  with_telemetry telemetry (fun () ->
      (match journal with
      | None -> ()
      | Some path ->
        arm_journal path
          ~header:
            [
              ("kind", Dsim.Json.String "run");
              ( "experiments",
                Dsim.Json.List
                  (List.map
                     (fun (s : Core.Experiment.spec) ->
                       Dsim.Json.String s.Core.Experiment.id)
                     targets) );
              ("quick", Dsim.Json.Bool quick);
              ( "iterations",
                match iterations with
                | Some n -> Dsim.Json.Int n
                | None -> Dsim.Json.Null );
            ]);
      Fun.protect
        ~finally:(fun () -> Dsim.Journal.stop ())
        (fun () ->
          List.iter
            (fun (s : Core.Experiment.spec) ->
              let out = s.Core.Experiment.report profile in
              Printf.printf "=== %s (%s): %s ===\n%s\n\n" s.Core.Experiment.id
                s.Core.Experiment.paper_ref s.Core.Experiment.title
                out.Core.Experiment.text;
              if telemetry.metrics_file <> None then
                Printf.printf "--- per-compartment metrics (%s) ---\n%s\n\n"
                  s.Core.Experiment.id
                  (Core.Report.metrics_digest ());
              flush stdout)
            targets);
      (match journal with
      | Some path -> Printf.printf "wrote %s\n" path
      | None -> ());
      0)

let run_analyze file =
  let parsed =
    match In_channel.with_open_bin file In_channel.input_all with
    | contents -> (
      match Dsim.Json.parse contents with
      | j -> Ok j
      | exception Dsim.Json.Parse_error msg -> Error (file ^ ": " ^ msg))
    | exception Sys_error msg -> Error msg
  in
  let result =
    match parsed with
    | Error _ as e -> e
    | Ok j ->
      if Core.Analyze.is_timeseries j then Core.Analyze.timeseries_summary j
      else Result.map Core.Analyze.render (Core.Analyze.of_json j)
  in
  match result with
  | Ok text ->
    print_string text;
    0
  | Error msg ->
    Printf.eprintf "netrepro analyze: %s\n" msg;
    1

let run_profile exp_id quick runs out_prefix =
  match Core.Experiment.find exp_id with
  | None ->
    Printf.eprintf "unknown experiment: %s\nknown: %s\n" exp_id
      (String.concat ", " (Core.Experiment.ids ()));
    2
  | Some spec ->
    if runs < 1 then begin
      Printf.eprintf "netrepro: --runs must be >= 1\n";
      exit 2
    end;
    let profile =
      if quick then Core.Experiment.quick else Core.Experiment.full
    in
    let r = Core.Profile_experiment.run ~profile ~runs spec in
    Printf.printf "=== %s (%s): %s ===\n%s\n\n" spec.Core.Experiment.id
      spec.Core.Experiment.paper_ref spec.Core.Experiment.title
      r.Core.Profile_experiment.experiment_text;
    print_string r.Core.Profile_experiment.hotspot_text;
    print_newline ();
    print_string r.Core.Profile_experiment.watermark_text;
    flush stdout;
    let prefix =
      match out_prefix with
      | Some p -> p
      | None -> "PROFILE_" ^ exp_id
    in
    let dump path contents =
      match write_file path contents with
      | () ->
        Printf.printf "wrote %s\n" path;
        true
      | exception Sys_error msg ->
        Printf.eprintf "netrepro: cannot write %s\n" msg;
        false
    in
    let ok_folded =
      dump (prefix ^ ".folded") r.Core.Profile_experiment.folded
    in
    let ok_json =
      dump
        (prefix ^ ".profile.json")
        (Dsim.Json.to_string r.Core.Profile_experiment.json)
    in
    if ok_folded && ok_json then 0 else 1

let run_perfdiff old_file new_file max_regress =
  match
    Core.Perfdiff.compare_files ~max_regress_pct:max_regress old_file new_file
  with
  | Ok report ->
    print_string report.Core.Perfdiff.text;
    Core.Perfdiff.exit_code report
  | Error msg ->
    Printf.eprintf "netrepro perfdiff: %s\n" msg;
    2

let run_attacks () =
  List.iter
    (fun r -> Format.printf "%a@.@." Core.Attack.pp_report r)
    (Core.Attack.run_all ());
  0

(* The supervisor writes <cvm>.blackbox.json into the directory as
   faults land mid-run; make sure it exists up front so a typo'd path
   fails here and not as an uncaught Sys_error at the first trap. *)
let ensure_blackbox_dir dir k =
  match dir with
  | None -> k ()
  | Some d -> (
    let rec mkdirs d =
      if not (Sys.file_exists d) then begin
        let parent = Filename.dirname d in
        if parent <> d then mkdirs parent;
        try Sys.mkdir d 0o755 with Sys_error _ when Sys.is_directory d -> ()
      end
    in
    match
      mkdirs d;
      if not (Sys.is_directory d) then
        raise (Sys_error (d ^ ": not a directory"))
    with
    | () -> k ()
    | exception Sys_error msg ->
      Printf.eprintf "netrepro: cannot use blackbox dir: %s\n" msg;
      1)

let run_attack_net seed quick json_file blackbox_dir =
  ensure_blackbox_dir blackbox_dir @@ fun () ->
  let profile =
    if quick then Core.Attack_traffic.quick else Core.Attack_traffic.full
  in
  let report = Core.Attack_traffic.run ~profile ?blackbox_dir ~seed () in
  print_string report.Core.Attack_traffic.text;
  flush stdout;
  let ok_json =
    match json_file with
    | None -> true
    | Some path -> (
      match
        write_file path (Dsim.Json.to_string report.Core.Attack_traffic.json)
      with
      | () ->
        Printf.printf "wrote %s\n" path;
        true
      | exception Sys_error msg ->
        Printf.eprintf "netrepro: cannot write %s\n" msg;
        false)
  in
  if report.Core.Attack_traffic.pass && ok_json then 0 else 1

let run_audit seed quick json_file =
  let profile =
    if quick then Core.Audit_experiment.quick else Core.Audit_experiment.full
  in
  let report = Core.Audit_experiment.run ~profile ~seed () in
  print_string report.Core.Audit_experiment.text;
  flush stdout;
  let ok_json =
    match json_file with
    | None -> true
    | Some path -> (
      match
        write_file path (Dsim.Json.to_string report.Core.Audit_experiment.json)
      with
      | () -> true
      | exception Sys_error msg ->
        Printf.eprintf "netrepro: cannot write %s\n" msg;
        false)
  in
  if report.Core.Audit_experiment.pass && ok_json then 0 else 1

let run_chaos seed quick journal blackbox_dir =
  ensure_blackbox_dir blackbox_dir @@ fun () ->
  refuse_journal_with_domains journal;
  let profile =
    if quick then Core.Chaos_experiment.quick else Core.Chaos_experiment.full
  in
  (match journal with
  | None -> ()
  | Some path ->
    arm_journal path
      ~header:
        [
          ("kind", Dsim.Json.String "chaos");
          ("seed", Dsim.Json.Int (Int64.to_int seed));
          ("quick", Dsim.Json.Bool quick);
        ]);
  let report =
    Fun.protect
      ~finally:(fun () -> Dsim.Journal.stop ())
      (fun () -> Core.Chaos_experiment.run ~profile ?blackbox_dir ~seed ())
  in
  print_string report.Core.Chaos_experiment.text;
  (match journal with
  | Some path -> Printf.printf "wrote %s\n" path
  | None -> ());
  flush stdout;
  if report.Core.Chaos_experiment.pass then 0 else 1

let run_fleet tenants seed quick scaling json_file =
  let emit_json json =
    match json_file with
    | None -> true
    | Some path -> (
      match write_file path (Dsim.Json.to_string json) with
      | () ->
        Printf.printf "wrote %s\n" path;
        true
      | exception Sys_error msg ->
        Printf.eprintf "netrepro: cannot write %s\n" msg;
        false)
  in
  if scaling then begin
    let text, json = Core.Fleet.run_scaling ~seed () in
    print_string text;
    let ok_json = emit_json json in
    flush stdout;
    if ok_json then 0 else 1
  end
  else begin
    let profile = if quick then Core.Fleet.quick else Core.Fleet.full in
    let r = Core.Fleet.run ~profile ?tenants ~seed () in
    print_string r.Core.Fleet.r_text;
    let ok_json = emit_json r.Core.Fleet.r_json in
    flush stdout;
    if r.Core.Fleet.r_pass && ok_json then 0 else 1
  end

let run_replay file context =
  match Core.Replay.run ~context file with
  | Ok outcome ->
    print_string outcome.Core.Replay.text;
    flush stdout;
    Core.Replay.exit_code outcome
  | Error msg ->
    Printf.eprintf "netrepro replay: %s\n" msg;
    2

let run_jdiff file_a file_b context =
  match Core.Jdiff.compare_files ~context file_a file_b with
  | Ok report ->
    print_string report.Core.Jdiff.text;
    flush stdout;
    Core.Jdiff.exit_code report
  | Error msg ->
    Printf.eprintf "netrepro jdiff: %s\n" msg;
    2

open Cmdliner

(* Single registry of subcommand one-line summaries: the top-level help
   and each command's own man page both render from it, so the listing
   under `netrepro --help` cannot drift from the commands themselves. *)
let summaries =
  [
    ("run", "regenerate tables/figures, optionally recording a journal");
    ("list", "list available experiments");
    ("attack", "memory (Fig. 3) and network-borne red-team attack runs");
    ("chaos", "deterministic fault injection with a blast-radius verdict");
    ("audit", "capability provenance audit and attack-surface report");
    ("fleet", "multi-tenant churn run with per-tenant SLO rollups");
    ("analyze", "summarize a flow-trace or time-series export");
    ("profile", "wall-clock hotspot and capacity-watermark profile");
    ("perfdiff", "compare two performance snapshots for regressions");
    ("replay", "re-execute a recorded journal, verifying every dispatch");
    ("jdiff", "first-divergence diff between two journals");
  ]

let summary name =
  match List.assoc_opt name summaries with
  | Some s -> s
  | None -> invalid_arg ("netrepro: no summary registered for " ^ name)

(* Command info whose one-liner comes from the registry; [detail]
   paragraphs land in the man page DESCRIPTION. *)
let cmd_info ?(detail = []) name =
  let man =
    match detail with
    | [] -> []
    | ps -> `S Manpage.s_description :: List.map (fun p -> `P p) ps
  in
  Cmd.info name ~doc:(summary name) ~man

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"CI-sized runs (short windows, few samples).")

let iters_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "iterations" ] ~docv:"N"
        ~doc:"Latency samples per configuration (paper: 1000000).")

let metrics_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable the telemetry registry and write a Prometheus text \
           exposition of every counter/gauge/histogram to $(docv) after the \
           run.")

let trace_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:
          "Enable span collection and write a Chrome trace_event JSON file \
           (load it in chrome://tracing or Perfetto) to $(docv) after the \
           run.")

let flow_trace_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "flow-trace" ] ~docv:"FILE"
        ~doc:
          "Enable sampled per-packet causal flow tracing and write the \
           trace/drop-attribution JSON to $(docv) after the run (inspect \
           with $(b,netrepro analyze)).")

let sample_every_opt =
  Arg.(
    value & opt int 64
    & info [ "sample-every" ] ~docv:"N"
        ~doc:"Trace 1 frame in $(docv) (with --flow-trace; default 64).")

let timeseries_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "timeseries" ] ~docv:"FILE"
        ~doc:
          "Sample every metric on the virtual clock at a fixed interval and \
           write the time-series JSON to $(docv) after the run.")

let telemetry_term =
  let make metrics_file trace_file flow_trace_file sample_every timeseries_file
      =
    if sample_every < 1 then begin
      Printf.eprintf "netrepro: --sample-every must be >= 1\n";
      exit 2
    end;
    { metrics_file; trace_file; flow_trace_file; sample_every; timeseries_file }
  in
  Term.(
    const make $ metrics_opt $ trace_opt $ flow_trace_opt $ sample_every_opt
    $ timeseries_opt)

let journal_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Record the run's dispatch journal — every event with its virtual \
           time, scheduling label, causal parent and RNG-draw count — to \
           $(docv) for $(b,netrepro replay) / $(b,netrepro jdiff). \
           Incompatible with $(b,--timeseries) (the sampler schedules its \
           own events).")

let shards_opt =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition each topology's event population across $(docv) engine \
           shards. Interleaved execution (the default) is \
           dispatch-order-identical for every shard count — results are \
           byte-identical to --shards 1.")

let domains_flag =
  Arg.(
    value & flag
    & info [ "domains" ]
        ~doc:
          "Run one OCaml domain per shard (with $(b,--shards) > 1): shards \
           advance in conservative virtual-time windows with a rendezvous \
           barrier, deterministic per seed but not byte-identical to \
           interleaved runs. Incompatible with $(b,--journal) above one \
           shard.")

(* Evaluated before each command body runs: the scenario builders pick
   the configuration up through [Shardcfg.engine]. *)
let sharding_term =
  let make shards domains =
    if shards < 1 then begin
      Printf.eprintf "netrepro: --shards must be >= 1\n";
      exit 2
    end;
    Core.Shardcfg.configure ~shards ~domains
  in
  Term.(const make $ shards_opt $ domains_flag)

let ids_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT"
        ~doc:"Experiment ids (e.g. table2 fig4). Default: all.")

let run_cmd =
  Cmd.v (cmd_info "run")
    Term.(
      const (fun () -> run_experiment)
      $ sharding_term $ ids_arg $ quick_flag $ iters_opt $ telemetry_term
      $ journal_opt)

let list_cmd =
  Cmd.v (cmd_info "list") Term.(const list_experiments $ const ())

let attack_mem_cmd =
  Cmd.v
    (Cmd.info "mem" ~doc:"Run the Fig. 3 compartmentalization attacks."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Replay the paper's Fig. 3 memory attacks (overflow read, \
              stale capability, cross-compartment store) against the \
              baseline and CHERI memory models and print the trap/leak \
              matrix.";
         ])
    Term.(const run_attacks $ const ())

let attack_seed_opt =
  Arg.(
    value & opt int64 42L
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Red-team corpus seed. Two runs with the same seed and profile \
           produce byte-identical reports.")

let attack_json_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write the machine-readable attack report (full ledger with \
           per-attack verdicts, provenance and blackbox cross-references, \
           per-phase blast-radius ratios) to $(docv).")

let attack_blackbox_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "blackbox-dir" ] ~docv:"DIR"
        ~doc:
          "Write each supervised containment's crash black box to \
           $(docv)/<cvm>.blackbox.json and link the corresponding attack \
           verdicts to their dump files in the report.")

let attack_net_cmd =
  Cmd.v
    (Cmd.info "net"
       ~doc:"Run the network-borne red-team attack corpus."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Drive the seeded attack corpus — parser-bounds frames, \
              connection-close races, resource floods, cross-tenant \
              probes — against the Baseline, Scenario 1 and Scenario 2 \
              topologies. Exit 1 unless every attack in the CHERI \
              scenarios ends caught-and-attributed (a typed drop, typed \
              backpressure, or a supervisor-contained capability fault), \
              the MMU-only baseline records at least one silent \
              corruption/leak, and sibling goodput outside quarantine \
              holds the >= 0.9x blast-radius bound in every phase.";
         ])
    Term.(
      const (fun () -> run_attack_net)
      $ sharding_term $ attack_seed_opt $ quick_flag $ attack_json_opt
      $ attack_blackbox_opt)

let attack_cmd =
  Cmd.group
    (cmd_info "attack"
       ~detail:
         [
           "$(b,attack mem) replays the paper's Fig. 3 memory attacks; \
            $(b,attack net) runs the seeded network-borne red-team corpus \
            with blast-radius containment gates.";
         ])
    [ attack_mem_cmd; attack_net_cmd ]

let chaos_seed_opt =
  Arg.(
    value & opt int64 42L
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Chaos RNG seed. Two runs with the same seed and profile produce \
           byte-identical reports.")

let chaos_blackbox_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "blackbox-dir" ] ~docv:"DIR"
        ~doc:
          "Write each supervised containment's crash black box — the \
           last-N dispatch ring plus the supervisor verdict and the \
           fault's flow-trace/provenance cross-references — to \
           $(docv)/<cvm>.blackbox.json.")

let chaos_cmd =
  Cmd.v
    (cmd_info "chaos"
       ~detail:
         [
           "Run the scenarios under seeded chaos and print the blast-radius \
            report: exit 1 unless every injected fault is recovered or \
            attributed and sibling goodput holds.";
         ])
    Term.(
      const (fun () -> run_chaos)
      $ sharding_term $ chaos_seed_opt $ quick_flag $ journal_opt
      $ chaos_blackbox_opt)

let audit_seed_opt =
  Arg.(
    value & opt int64 42L
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Audit topology/chaos seed. The audit paths use no RNG and no \
           clock reads, so the report is a pure function of seed and \
           profile.")

let audit_json_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write the machine-readable audit report (provenance DAG \
           summary, per-compartment surfaces, violations, chaos \
           cross-reference) to $(docv).")

let audit_cmd =
  Cmd.v
    (cmd_info "audit"
       ~detail:
         [
           "Run the stock scenarios with the provenance DAG and invariant \
            checker enabled and print the per-compartment attack-surface \
            report: exit 1 on any invariant violation, on a Scenario 2 app \
            surface not strictly smaller than Scenario 1's replicated \
            stack, or if a seeded capability fault goes unattributed.";
         ])
    Term.(
      const (fun () -> run_audit)
      $ sharding_term $ audit_seed_opt $ quick_flag $ audit_json_opt)

let fleet_tenants_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "tenants" ] ~docv:"N"
        ~doc:
          "Number of tenant cVMs sharing the stack compartment (default: \
           the profile's — 64 with $(b,--quick), 256 otherwise).")

let fleet_seed_opt =
  Arg.(
    value & opt int64 42L
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Workload seed. Arrivals and flow sizes are drawn from split \
           deterministic streams, so the report is a pure function of \
           (profile, tenants, seed).")

let fleet_scaling_flag =
  Arg.(
    value & flag
    & info [ "scaling" ]
        ~doc:
          "Instead of one run, print the scaling table: quick-profile runs \
           at 8, 64 and 256 tenants.")

let fleet_json_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write the machine-readable report (fleet totals, full per-tenant \
           rollups, drop table, SLO gates) to $(docv).")

let fleet_cmd =
  Cmd.v
    (cmd_info "fleet"
       ~detail:
         [
           "Scale the Scenario 2 shared-stack topology to N application \
            cVMs and drive a seeded connection-churn workload against an \
            epoll server farm: Poisson arrivals and heavy-tailed \
            request/response sizes per tenant, every application window \
            trampolining into the stack compartment under the shared FIFO \
            umtx.";
           "The report is the tenancy rollup: per-tenant goodput, \
            flow-completion-time percentiles down to p99.9, per-stage \
            latency decomposition (stage means telescope to the end-to-end \
            mean), trampoline crossings per packet, drop attribution and \
            the Jain fairness index. SLO gates fail the run (exit 1) on \
            unfair allocation, a blown p99.9 budget, unattributed drops or \
            a broken stage decomposition.";
         ])
    Term.(
      const (fun () -> run_fleet)
      $ sharding_term $ fleet_tenants_opt $ fleet_seed_opt $ quick_flag
      $ fleet_scaling_flag $ fleet_json_opt)

let analyze_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Flow-trace JSON written by --flow-trace.")

let analyze_cmd =
  Cmd.v
    (cmd_info "analyze"
       ~detail:
         [
           "Per-stage latency percentiles, end-to-end decomposition and \
            drop attribution from a --flow-trace file; also summarizes \
            --timeseries exports (row/series counts, truncation).";
         ])
    Term.(const run_analyze $ analyze_file_arg)

let profile_exp_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id to profile (e.g. fig4).")

let profile_runs_opt =
  Arg.(
    value & opt int 1
    & info [ "runs" ] ~docv:"N"
        ~doc:
          "Profile the experiment $(docv) times and keep the per-hotspot \
           median of the wall-time fields (events are asserted identical): \
           use $(b,--runs 3) on shared/CI hosts so scheduler noise cannot \
           fail a perfdiff gate.")

let profile_out_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"PREFIX"
        ~doc:
          "Output prefix for $(docv).folded and $(docv).profile.json \
           (default PROFILE_<experiment>).")

let profile_cmd =
  Cmd.v
    (cmd_info "profile"
       ~detail:
         [
           "Run one experiment under the wall-clock profiler: print the \
            per-(component, cvm, stage) hotspot table and the capacity \
            watermark/backpressure report, and write the folded-stack dump \
            (flamegraph input) plus the machine-readable .profile.json \
            snapshot that netrepro perfdiff compares against a baseline. \
            Profiling never touches the virtual clock, so the experiment's \
            own output is bit-identical to an unprofiled run.";
         ])
    Term.(
      const run_profile $ profile_exp_arg $ quick_flag $ profile_runs_opt
      $ profile_out_opt)

let perfdiff_old_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"OLD" ~doc:"Baseline snapshot (.profile.json or bench JSON).")

let perfdiff_new_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"NEW" ~doc:"Candidate snapshot to compare against $(i,OLD).")

let perfdiff_max_regress_opt =
  Arg.(
    value & opt float 10.
    & info [ "max-regress" ] ~docv:"PCT"
        ~doc:"Regression threshold in percent (default 10).")

let perfdiff_cmd =
  Cmd.v
    (cmd_info "perfdiff"
       ~detail:
         [
           "Compare two performance snapshots key by key and exit 1 when \
            any key regressed past --max-regress (2 on I/O or parse \
            errors). Profile snapshots diff per hotspot with noise floors \
            on wall time; deterministic event counts flag on any drift. \
            Other JSON snapshots diff every numeric leaf, with the \
            improvement direction inferred from the leaf name.";
         ])
    Term.(
      const run_perfdiff $ perfdiff_old_arg $ perfdiff_new_arg
      $ perfdiff_max_regress_opt)

let context_opt =
  Arg.(
    value & opt int 5
    & info [ "context" ] ~docv:"K"
        ~doc:"Journal events shown around a mismatch (default 5).")

let replay_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"JOURNAL" ~doc:"Journal recorded with --journal.")

let replay_cmd =
  Cmd.v
    (cmd_info "replay"
       ~detail:
         [
           "Re-execute the run described by the journal header (experiment \
            ids, profile, seed) with the verifier armed: every live \
            dispatch is checked against the recording — virtual time, \
            scheduling label, causal parent, RNG-draw count — and the \
            first mismatch is reported with ±K events of journal context. \
            Exit 0 when the whole journal verifies, 1 on the first \
            divergence, 2 on I/O or header errors.";
         ])
    Term.(const run_replay $ replay_file_arg $ context_opt)

let jdiff_a_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"A" ~doc:"First journal.")

let jdiff_b_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"B" ~doc:"Second journal.")

let jdiff_cmd =
  Cmd.v
    (cmd_info "jdiff"
       ~detail:
         [
           "Find the first sequence number where two recorded runs \
            diverge, walk the causal parent edges of both diverging \
            dispatches back to their last common ancestor, and summarize \
            per-component dispatch drift after the split. Exit 0 when the \
            journals are equivalent, 1 on divergence, 2 on I/O or parse \
            errors.";
         ])
    Term.(const run_jdiff $ jdiff_a_arg $ jdiff_b_arg $ context_opt)

(* One top-level command per experiment, so
   `netrepro fig4 --metrics out.prom --trace-json out.json` works
   without the `run` prefix. *)
let experiment_cmds =
  List.map
    (fun (s : Core.Experiment.spec) ->
      let doc =
        Printf.sprintf "%s (%s)" s.Core.Experiment.title
          s.Core.Experiment.paper_ref
      in
      Cmd.v
        (Cmd.info s.Core.Experiment.id ~doc)
        Term.(
          const (fun () quick iterations telemetry journal ->
              run_experiment
                [ s.Core.Experiment.id ]
                quick iterations telemetry journal)
          $ sharding_term $ quick_flag $ iters_opt $ telemetry_term
          $ journal_opt))
    Core.Experiment.all

let default = Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "netrepro" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Enabling Security on the Edge: A CHERI \
         Compartmentalized Network Stack' (DATE 2025) on a simulated \
         Morello/CheriBSD system."
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          ([
             run_cmd;
             list_cmd;
             attack_cmd;
             chaos_cmd;
             audit_cmd;
             fleet_cmd;
             analyze_cmd;
             profile_cmd;
             perfdiff_cmd;
             replay_cmd;
             jdiff_cmd;
           ]
          @ experiment_cmds)))
