(* netrepro - regenerate the paper's tables and figures from the
   simulated CHERI-compartmentalized network stack. *)

let list_experiments () =
  List.iter
    (fun (s : Core.Experiment.spec) ->
      Printf.printf "%-14s %-10s %s\n" s.Core.Experiment.id
        s.Core.Experiment.paper_ref s.Core.Experiment.title)
    Core.Experiment.all;
  0

let profile_of quick iterations =
  let base = if quick then Core.Experiment.quick else Core.Experiment.full in
  match iterations with
  | None -> base
  | Some n -> { base with Core.Experiment.iterations = n }

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

type telemetry = {
  metrics_file : string option;
  trace_file : string option;
  flow_trace_file : string option;
  sample_every : int;
  timeseries_file : string option;
}

(* Telemetry rides along with any experiment run: enable the registries
   up front, dump the requested files when the run completes. The
   registries are process-wide, so a multi-experiment run produces one
   combined metrics file / trace. *)
let with_telemetry t f =
  if t.metrics_file <> None then begin
    Dsim.Metrics.set_enabled Dsim.Metrics.default true;
    Dsim.Metrics.reset Dsim.Metrics.default
  end;
  if t.trace_file <> None then begin
    Dsim.Span.set_enabled Dsim.Span.default true;
    Dsim.Span.clear Dsim.Span.default
  end;
  if t.flow_trace_file <> None then begin
    Dsim.Flowtrace.set_enabled Dsim.Flowtrace.default true;
    Dsim.Flowtrace.set_sample_every Dsim.Flowtrace.default t.sample_every;
    Dsim.Flowtrace.clear Dsim.Flowtrace.default
  end;
  if t.timeseries_file <> None then begin
    (* Needs metric values to snapshot. *)
    Dsim.Metrics.set_enabled Dsim.Metrics.default true;
    Dsim.Sampler.set_enabled Dsim.Sampler.default true;
    Dsim.Sampler.clear Dsim.Sampler.default
  end;
  let result = f () in
  let dump path render =
    match write_file path (render ()) with
    | () -> true
    | exception Sys_error msg ->
      Printf.eprintf "netrepro: cannot write %s\n" msg;
      false
  in
  let ok_metrics =
    match t.metrics_file with
    | None -> true
    | Some path ->
      dump path (fun () -> Dsim.Metrics.to_prometheus Dsim.Metrics.default)
  in
  let ok_trace =
    match t.trace_file with
    | None -> true
    | Some path ->
      dump path (fun () -> Dsim.Span.to_chrome_json Dsim.Span.default)
  in
  let ok_flow =
    match t.flow_trace_file with
    | None -> true
    | Some path ->
      dump path (fun () ->
          Dsim.Json.to_string (Dsim.Flowtrace.to_json Dsim.Flowtrace.default))
  in
  let ok_timeseries =
    match t.timeseries_file with
    | None -> true
    | Some path ->
      dump path (fun () ->
          Dsim.Json.to_string (Dsim.Sampler.to_json Dsim.Sampler.default))
  in
  if ok_metrics && ok_trace && ok_flow && ok_timeseries then result else 1

let run_experiment ids quick iterations telemetry =
  let profile = profile_of quick iterations in
  let targets =
    match ids with
    | [] -> Core.Experiment.all
    | ids -> (
      match
        List.map
          (fun id ->
            match Core.Experiment.find id with
            | Some s -> Ok s
            | None -> Error id)
          ids
        |> List.partition_map (function Ok s -> Left s | Error e -> Right e)
      with
      | specs, [] -> specs
      | _, missing ->
        Printf.eprintf "unknown experiment(s): %s\nknown: %s\n"
          (String.concat ", " missing)
          (String.concat ", " (Core.Experiment.ids ()));
        exit 2)
  in
  with_telemetry telemetry (fun () ->
      List.iter
        (fun (s : Core.Experiment.spec) ->
          let out = s.Core.Experiment.report profile in
          Printf.printf "=== %s (%s): %s ===\n%s\n\n" s.Core.Experiment.id
            s.Core.Experiment.paper_ref s.Core.Experiment.title
            out.Core.Experiment.text;
          if telemetry.metrics_file <> None then
            Printf.printf "--- per-compartment metrics (%s) ---\n%s\n\n"
              s.Core.Experiment.id
              (Core.Report.metrics_digest ());
          flush stdout)
        targets;
      0)

let run_analyze file =
  match Core.Analyze.of_file file with
  | Ok t ->
    print_string (Core.Analyze.render t);
    0
  | Error msg ->
    Printf.eprintf "netrepro analyze: %s\n" msg;
    1

let run_attacks () =
  List.iter
    (fun r -> Format.printf "%a@.@." Core.Attack.pp_report r)
    (Core.Attack.run_all ());
  0

let run_audit seed quick json_file =
  let profile =
    if quick then Core.Audit_experiment.quick else Core.Audit_experiment.full
  in
  let report = Core.Audit_experiment.run ~profile ~seed () in
  print_string report.Core.Audit_experiment.text;
  flush stdout;
  let ok_json =
    match json_file with
    | None -> true
    | Some path -> (
      match
        write_file path (Dsim.Json.to_string report.Core.Audit_experiment.json)
      with
      | () -> true
      | exception Sys_error msg ->
        Printf.eprintf "netrepro: cannot write %s\n" msg;
        false)
  in
  if report.Core.Audit_experiment.pass && ok_json then 0 else 1

let run_chaos seed quick =
  let profile =
    if quick then Core.Chaos_experiment.quick else Core.Chaos_experiment.full
  in
  let report = Core.Chaos_experiment.run ~profile ~seed () in
  print_string report.Core.Chaos_experiment.text;
  flush stdout;
  if report.Core.Chaos_experiment.pass then 0 else 1

open Cmdliner

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"CI-sized runs (short windows, few samples).")

let iters_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "iterations" ] ~docv:"N"
        ~doc:"Latency samples per configuration (paper: 1000000).")

let metrics_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable the telemetry registry and write a Prometheus text \
           exposition of every counter/gauge/histogram to $(docv) after the \
           run.")

let trace_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:
          "Enable span collection and write a Chrome trace_event JSON file \
           (load it in chrome://tracing or Perfetto) to $(docv) after the \
           run.")

let flow_trace_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "flow-trace" ] ~docv:"FILE"
        ~doc:
          "Enable sampled per-packet causal flow tracing and write the \
           trace/drop-attribution JSON to $(docv) after the run (inspect \
           with $(b,netrepro analyze)).")

let sample_every_opt =
  Arg.(
    value & opt int 64
    & info [ "sample-every" ] ~docv:"N"
        ~doc:"Trace 1 frame in $(docv) (with --flow-trace; default 64).")

let timeseries_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "timeseries" ] ~docv:"FILE"
        ~doc:
          "Sample every metric on the virtual clock at a fixed interval and \
           write the time-series JSON to $(docv) after the run.")

let telemetry_term =
  let make metrics_file trace_file flow_trace_file sample_every timeseries_file
      =
    if sample_every < 1 then begin
      Printf.eprintf "netrepro: --sample-every must be >= 1\n";
      exit 2
    end;
    { metrics_file; trace_file; flow_trace_file; sample_every; timeseries_file }
  in
  Term.(
    const make $ metrics_opt $ trace_opt $ flow_trace_opt $ sample_every_opt
    $ timeseries_opt)

let ids_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT"
        ~doc:"Experiment ids (e.g. table2 fig4). Default: all.")

let run_cmd =
  let doc = "regenerate tables/figures" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(const run_experiment $ ids_arg $ quick_flag $ iters_opt $ telemetry_term)

let list_cmd =
  let doc = "list available experiments" in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_experiments $ const ())

let attack_cmd =
  let doc = "run the Fig. 3 compartmentalization attacks" in
  Cmd.v (Cmd.info "attack" ~doc) Term.(const run_attacks $ const ())

let chaos_seed_opt =
  Arg.(
    value & opt int64 42L
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Chaos RNG seed. Two runs with the same seed and profile produce \
           byte-identical reports.")

let chaos_cmd =
  let doc =
    "deterministic fault injection: run the scenarios under seeded chaos and \
     print the blast-radius report (exit 1 unless every fault is recovered \
     or attributed and sibling goodput holds)"
  in
  Cmd.v (Cmd.info "chaos" ~doc) Term.(const run_chaos $ chaos_seed_opt $ quick_flag)

let audit_seed_opt =
  Arg.(
    value & opt int64 42L
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Audit topology/chaos seed. The audit paths use no RNG and no \
           clock reads, so the report is a pure function of seed and \
           profile.")

let audit_json_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write the machine-readable audit report (provenance DAG \
           summary, per-compartment surfaces, violations, chaos \
           cross-reference) to $(docv).")

let audit_cmd =
  let doc =
    "capability provenance audit: run the stock scenarios with the \
     provenance DAG and invariant checker enabled, print the \
     per-compartment attack-surface report (exit 1 on any invariant \
     violation, on a Scenario 2 app surface not strictly smaller than \
     Scenario 1's replicated stack, or if a seeded capability fault goes \
     unattributed)"
  in
  Cmd.v
    (Cmd.info "audit" ~doc)
    Term.(const run_audit $ audit_seed_opt $ quick_flag $ audit_json_opt)

let analyze_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Flow-trace JSON written by --flow-trace.")

let analyze_cmd =
  let doc =
    "per-stage latency percentiles, end-to-end decomposition and drop \
     attribution from a --flow-trace file"
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run_analyze $ analyze_file_arg)

(* One top-level command per experiment, so
   `netrepro fig4 --metrics out.prom --trace-json out.json` works
   without the `run` prefix. *)
let experiment_cmds =
  List.map
    (fun (s : Core.Experiment.spec) ->
      let doc =
        Printf.sprintf "%s (%s)" s.Core.Experiment.title
          s.Core.Experiment.paper_ref
      in
      Cmd.v
        (Cmd.info s.Core.Experiment.id ~doc)
        Term.(
          const (fun quick iterations telemetry ->
              run_experiment [ s.Core.Experiment.id ] quick iterations telemetry)
          $ quick_flag $ iters_opt $ telemetry_term))
    Core.Experiment.all

let default = Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "netrepro" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Enabling Security on the Edge: A CHERI \
         Compartmentalized Network Stack' (DATE 2025) on a simulated \
         Morello/CheriBSD system."
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          ([ run_cmd; list_cmd; attack_cmd; chaos_cmd; audit_cmd; analyze_cmd ]
          @ experiment_cmds)))
