(* Tests for the MAVLink-style telemetry protocol and its CVE-shaped
   decode path. *)

let frame message = { Core.Mavlink.seq = 7; sysid = 1; compid = 200; message }

let roundtrip msg name =
  let f = frame msg in
  let wire = Core.Mavlink.encode f in
  match Core.Mavlink.decode wire with
  | Ok f' ->
    Alcotest.(check int) (name ^ ": seq") 7 f'.Core.Mavlink.seq;
    Alcotest.(check int) (name ^ ": sysid") 1 f'.Core.Mavlink.sysid;
    Alcotest.(check bool) (name ^ ": message") true (f'.Core.Mavlink.message = msg)
  | Error e -> Alcotest.failf "%s: %s" name e

let heartbeat_roundtrip () =
  roundtrip
    (Core.Mavlink.Heartbeat { vehicle_type = 2; autopilot = 12; base_mode = 81; status = 4 })
    "heartbeat"

let attitude_roundtrip () =
  roundtrip
    (Core.Mavlink.Attitude
       { time_ms = 123456; roll_cdeg = -1234; pitch_cdeg = 567; yaw_cdeg = -17999 })
    "attitude"

let command_roundtrip () =
  roundtrip
    (Core.Mavlink.Command { command = 400; param1 = -1; param2 = 32000; confirmation = 3 })
    "command"

let raw_roundtrip () =
  roundtrip
    (Core.Mavlink.Raw { msgid = 150; payload = Bytes.of_string "custom-payload" })
    "raw"

let crc_detects_corruption () =
  let wire =
    Core.Mavlink.encode
      (frame (Core.Mavlink.Heartbeat { vehicle_type = 1; autopilot = 1; base_mode = 0; status = 0 }))
  in
  Bytes.set wire 3 '\xEE' (* flip the sysid *);
  Alcotest.(check bool) "corrupted frame rejected" true
    (Result.is_error (Core.Mavlink.decode wire))

let decode_errors () =
  Alcotest.(check bool) "short frame" true
    (Result.is_error (Core.Mavlink.decode (Bytes.create 4)));
  let bad_magic = Bytes.make 10 '\x00' in
  Alcotest.(check bool) "bad magic" true
    (Result.is_error (Core.Mavlink.decode bad_magic));
  (* Declared length beyond the buffer: the safe parser refuses. *)
  Alcotest.(check bool) "oversized declaration rejected" true
    (Result.is_error (Core.Mavlink.decode (Core.Mavlink.forge_oversized ~declared_len:200)))

let crc_reference () =
  (* Self-consistency + a fixed regression value. *)
  let b = Bytes.of_string "\x01\x02\x03\x04" in
  let c1 = Core.Mavlink.crc_x25 b ~off:0 ~len:4 in
  let c2 = Core.Mavlink.crc_x25 b ~off:0 ~len:4 in
  Alcotest.(check int) "deterministic" c1 c2;
  Alcotest.(check bool) "16-bit" true (c1 >= 0 && c1 <= 0xFFFF);
  (* chained = whole *)
  let part = Core.Mavlink.crc_x25 b ~off:0 ~len:2 in
  let whole = Core.Mavlink.crc_x25 ~init:part b ~off:2 ~len:2 in
  Alcotest.(check int) "chaining" c1 whole

let cve_decode_traps_under_cheri () =
  let mem = Cheri.Tagged_memory.create ~size:0x10000 in
  let buf = Cheri.Capability.root ~base:0x100 ~length:64 ~perms:Cheri.Perms.data in
  (* A well-formed frame fits and decodes. *)
  let good =
    Core.Mavlink.encode
      (frame (Core.Mavlink.Heartbeat { vehicle_type = 2; autopilot = 12; base_mode = 0; status = 4 }))
  in
  (match Core.Mavlink.decode_into mem ~dst:buf good with
  | Ok (_, copied) -> Alcotest.(check int) "copied declared length" 4 copied
  | Error e -> Alcotest.fail e);
  (* The CVE frame declares 200 bytes against the 64-byte buffer: the
     copy faults before any byte lands out of bounds. *)
  let evil = Core.Mavlink.forge_oversized ~declared_len:200 in
  Alcotest.(check bool) "oversized copy traps" true
    (match Core.Mavlink.decode_into mem ~dst:buf evil with
    | _ -> false
    | exception Cheri.Fault.Capability_fault f ->
      f.Cheri.Fault.kind = Cheri.Fault.Out_of_bounds)

let cve_decode_overruns_flat () =
  (* The same code shape against a wide-open capability: the copy lands
     beyond the 64 "intended" bytes — the flat-memory overflow. *)
  let mem = Cheri.Tagged_memory.create ~size:0x10000 in
  let flat = Cheri.Capability.root ~base:0x100 ~length:0x1000 ~perms:Cheri.Perms.data in
  let canary = Cheri.Capability.root ~base:0x140 ~length:16 ~perms:Cheri.Perms.data in
  Cheri.Tagged_memory.store_bytes mem ~cap:canary ~addr:0x140 (Bytes.of_string "CANARYCANARYCANA");
  let evil = Core.Mavlink.forge_oversized ~declared_len:200 in
  (match Core.Mavlink.decode_into mem ~dst:flat evil with
  | Ok _ -> Alcotest.fail "CRC should still fail"
  | Error _ -> ()
  | exception Cheri.Fault.Capability_fault _ -> Alcotest.fail "flat view must not trap");
  let after = Cheri.Tagged_memory.load_bytes mem ~cap:canary ~addr:0x140 ~len:16 in
  Alcotest.(check bool) "canary smashed on the flat system" true
    (Bytes.to_string after <> "CANARYCANARYCANA")

let seq_and_pp () =
  let f = frame (Core.Mavlink.Attitude { time_ms = 1; roll_cdeg = 100; pitch_cdeg = 0; yaw_cdeg = 0 }) in
  let s = Format.asprintf "%a" Core.Mavlink.pp f in
  Alcotest.(check bool) "pp mentions attitude" true (Astring_contains.contains s "ATTITUDE")

let fuzz_decode_no_crash =
  QCheck.Test.make ~name:"mavlink: random bytes never crash the safe parser" ~count:500
    QCheck.(list_of_size Gen.(int_range 0 64) (int_bound 255))
    (fun byte_list ->
      let b = Bytes.of_string (String.init (List.length byte_list) (fun i -> Char.chr (List.nth byte_list i))) in
      match Core.Mavlink.decode b with Ok _ | Error _ -> true)

let encode_decode_prop =
  QCheck.Test.make ~name:"mavlink: encode/decode roundtrips raw payloads" ~count:200
    QCheck.(pair (int_range 100 255) (list_of_size Gen.(int_range 0 100) (int_bound 255)))
    (fun (msgid, byte_list) ->
      let payload =
        Bytes.of_string
          (String.init (List.length byte_list) (fun i -> Char.chr (List.nth byte_list i)))
      in
      let f = frame (Core.Mavlink.Raw { msgid; payload }) in
      match Core.Mavlink.decode (Core.Mavlink.encode f) with
      | Ok f' -> f'.Core.Mavlink.message = f.Core.Mavlink.message
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "heartbeat roundtrip" `Quick heartbeat_roundtrip;
    Alcotest.test_case "attitude roundtrip (signed fields)" `Quick attitude_roundtrip;
    Alcotest.test_case "command roundtrip" `Quick command_roundtrip;
    Alcotest.test_case "raw roundtrip" `Quick raw_roundtrip;
    Alcotest.test_case "crc detects corruption" `Quick crc_detects_corruption;
    Alcotest.test_case "decode error paths" `Quick decode_errors;
    Alcotest.test_case "crc chaining" `Quick crc_reference;
    Alcotest.test_case "CVE decode traps under CHERI" `Quick cve_decode_traps_under_cheri;
    Alcotest.test_case "CVE decode overruns a flat view" `Quick cve_decode_overruns_flat;
    Alcotest.test_case "pretty printing" `Quick seq_and_pp;
    QCheck_alcotest.to_alcotest fuzz_decode_no_crash;
    QCheck_alcotest.to_alcotest encode_decode_prop;
  ]
