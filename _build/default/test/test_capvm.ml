(* Tests for the CAP-VM layer: Intravisor, cVMs, trampolines, syscall
   proxying, the umtx mutex and the musl shim. *)

let make_iv ?(mem_size = 4 * 1024 * 1024) () =
  let engine = Dsim.Engine.create () in
  (engine, Capvm.Intravisor.create engine ~mem_size ~cost:Dsim.Cost_model.default)

(* ------------------------------------------------------------------ *)
(* Intravisor / cVMs                                                    *)
(* ------------------------------------------------------------------ *)

let cvm_regions_disjoint () =
  let _, iv = make_iv () in
  let a = Capvm.Intravisor.create_cvm iv ~name:"a" ~size:0x10000 in
  let b = Capvm.Intravisor.create_cvm iv ~name:"b" ~size:0x10000 in
  let ra = Capvm.Cvm.region a and rb = Capvm.Cvm.region b in
  Alcotest.(check bool) "disjoint" true
    (Cheri.Capability.limit ra <= Cheri.Capability.base rb
    || Cheri.Capability.limit rb <= Cheri.Capability.base ra);
  Alcotest.(check int) "two cvms listed" 2 (List.length (Capvm.Intravisor.cvms iv));
  Alcotest.(check bool) "distinct ids" true (Capvm.Cvm.id a <> Capvm.Cvm.id b)

let cvm_no_sealing_authority () =
  let _, iv = make_iv () in
  let a = Capvm.Intravisor.create_cvm iv ~name:"a" ~size:0x10000 in
  let p = Cheri.Capability.perms (Capvm.Cvm.region a) in
  Alcotest.(check bool) "no seal" false p.Cheri.Perms.seal;
  Alcotest.(check bool) "no unseal" false p.Cheri.Perms.unseal

let cvm_confinement () =
  let _, iv = make_iv () in
  let a = Capvm.Intravisor.create_cvm iv ~name:"a" ~size:0x10000 in
  let b = Capvm.Intravisor.create_cvm iv ~name:"b" ~size:0x10000 in
  let b_base = Cheri.Capability.base (Capvm.Cvm.region b) in
  Alcotest.(check bool) "a cannot reach b" false
    (Capvm.Cvm.can_access a ~addr:b_base ~len:1 ~write:false);
  let a_base = Cheri.Capability.base (Capvm.Cvm.region a) in
  Alcotest.(check bool) "a reaches itself" true
    (Capvm.Cvm.can_access a ~addr:a_base ~len:16 ~write:true)

let cvm_heap () =
  let _, iv = make_iv () in
  let a = Capvm.Intravisor.create_cvm iv ~name:"a" ~size:0x10000 in
  let buf = Capvm.Cvm.malloc a 256 in
  Alcotest.(check bool) "buffer inside region" true
    (Cheri.Capability.base buf >= Cheri.Capability.base (Capvm.Cvm.region a)
    && Cheri.Capability.limit buf <= Cheri.Capability.limit (Capvm.Cvm.region a));
  Alcotest.(check int) "live accounting" 256 (Capvm.Cvm.heap_live_bytes a);
  Capvm.Cvm.free a buf;
  Alcotest.(check int) "freed" 0 (Capvm.Cvm.heap_live_bytes a);
  let z = Capvm.Cvm.calloc a (Capvm.Intravisor.mem iv) 64 in
  let b =
    Cheri.Tagged_memory.load_bytes (Capvm.Intravisor.mem iv) ~cap:z
      ~addr:(Cheri.Capability.base z) ~len:64
  in
  Alcotest.(check bool) "calloc zeroes" true (Bytes.for_all (fun c -> c = '\000') b)

let trampoline_mechanics () =
  let _, iv = make_iv () in
  let a = Capvm.Intravisor.create_cvm iv ~name:"a" ~size:0x10000 in
  let result, cost = Capvm.Intravisor.trampoline iv ~into:a (fun () -> 40 + 2) in
  Alcotest.(check int) "body ran" 42 result;
  Alcotest.(check (float 0.01)) "cost is a round trip"
    (Capvm.Intravisor.trampoline_cost_ns iv) cost;
  Alcotest.(check int) "jumps counted" 2 (Capvm.Intravisor.total_trampolines iv);
  Alcotest.(check int) "per-cvm count" 1 (Capvm.Cvm.trampoline_calls a)

let trampoline_rejects_forged_entry () =
  let _, iv = make_iv () in
  let a = Capvm.Intravisor.create_cvm iv ~name:"a" ~size:0x10000 in
  let b = Capvm.Intravisor.create_cvm iv ~name:"b" ~size:0x10000 in
  (* Swap b's otype under a forged cvm record: unsealing must fail
     because the sealed entry was made with a's otype. *)
  let forged =
    Capvm.Cvm.make ~name:"forged" ~id:99 ~region:(Capvm.Cvm.region b)
      ~entry_otype:(Capvm.Cvm.entry_otype b)
      ~sealed_entry:(Capvm.Cvm.sealed_entry a)
  in
  Alcotest.(check bool) "wrong-otype entry traps" true
    (match Capvm.Intravisor.trampoline iv ~into:forged (fun () -> ()) with
    | _ -> false
    | exception Cheri.Fault.Capability_fault f ->
      f.Cheri.Fault.kind = Cheri.Fault.Unseal_violation)

(* ------------------------------------------------------------------ *)
(* Syscalls                                                             *)
(* ------------------------------------------------------------------ *)

let syscall_translation () =
  Alcotest.(check string) "futex wait -> umtx" "_umtx_op(WAIT)"
    (Capvm.Syscall.name (Capvm.Syscall.translate_musl Capvm.Syscall.Futex_wait));
  Alcotest.(check string) "futex wake -> umtx" "_umtx_op(WAKE)"
    (Capvm.Syscall.name (Capvm.Syscall.translate_musl Capvm.Syscall.Futex_wake));
  Alcotest.(check string) "clock passes through" "clock_gettime"
    (Capvm.Syscall.name (Capvm.Syscall.translate_musl Capvm.Syscall.Clock_gettime))

let syscall_paths () =
  let engine, iv = make_iv () in
  let a = Capvm.Intravisor.create_cvm iv ~name:"a" ~size:0x10000 in
  ignore (Dsim.Engine.schedule engine ~delay:(Dsim.Time.us 5) (fun () -> ()));
  Dsim.Engine.run_until_quiet engine;
  (* cVM path: trampolines + kernel body. *)
  let v, cvm_cost = Capvm.Intravisor.syscall iv ~from:a Capvm.Syscall.Clock_gettime in
  (match v with
  | Capvm.Intravisor.Vtime t -> Alcotest.(check int64) "clock value" 5_000L t
  | _ -> Alcotest.fail "expected a time");
  (* Baseline path: SVC entry/exit only. *)
  let _, direct_cost = Capvm.Intravisor.direct_syscall iv Capvm.Syscall.Clock_gettime in
  Alcotest.(check bool) "cvm path is more expensive" true (cvm_cost > direct_cost);
  let cm = Capvm.Intravisor.cost_model iv in
  Alcotest.(check (float 0.01)) "difference is trampolines minus svc"
    (Capvm.Intravisor.trampoline_cost_ns iv -. cm.Dsim.Cost_model.mmu_syscall_extra_ns)
    (cvm_cost -. direct_cost);
  Alcotest.(check int) "host counted both" 2
    (Capvm.Host_os.syscalls_served (Capvm.Intravisor.host iv))

let musl_shim_calls () =
  let engine, iv = make_iv () in
  let a = Capvm.Intravisor.create_cvm iv ~name:"a" ~size:0x10000 in
  let shim = Capvm.Musl_shim.create iv a in
  ignore (Dsim.Engine.schedule engine ~delay:(Dsim.Time.us 3) (fun () -> ()));
  Dsim.Engine.run_until_quiet engine;
  let t, cost = Capvm.Musl_shim.clock_gettime shim in
  Alcotest.(check int64) "time value" 3_000L t;
  Alcotest.(check bool) "cost positive" true (cost > 0.);
  let pid, _ = Capvm.Musl_shim.getpid shim in
  Alcotest.(check int) "pid" 1 pid;
  ignore (Capvm.Musl_shim.futex_wake shim);
  ignore (Capvm.Musl_shim.write_console shim "boot");
  Alcotest.(check int) "calls counted" 4 (Capvm.Musl_shim.calls shim)

(* ------------------------------------------------------------------ *)
(* Umtx                                                                 *)
(* ------------------------------------------------------------------ *)

let umtx_uncontended () =
  let engine = Dsim.Engine.create () in
  let mu = Capvm.Umtx.create engine () in
  let granted = ref false in
  Capvm.Umtx.acquire mu ~owner:"a" (fun ~wait_ns ->
      granted := true;
      Alcotest.(check (float 0.)) "no wait" 0. wait_ns);
  Alcotest.(check bool) "granted immediately" true !granted;
  Alcotest.(check bool) "locked" true (Capvm.Umtx.locked mu);
  Alcotest.(check (option string)) "holder" (Some "a") (Capvm.Umtx.holder mu);
  Capvm.Umtx.release mu;
  Alcotest.(check bool) "released" false (Capvm.Umtx.locked mu);
  Alcotest.(check int) "one acquisition" 1 (Capvm.Umtx.acquisitions mu);
  Alcotest.(check int) "no contention" 0 (Capvm.Umtx.contended_acquisitions mu)

let umtx_contended_wait () =
  let engine = Dsim.Engine.create () in
  let mu = Capvm.Umtx.create engine ~wake_ns:100. () in
  Capvm.Umtx.acquire mu ~owner:"loop" (fun ~wait_ns:_ -> ());
  let waited = ref (-1.) in
  Capvm.Umtx.acquire mu ~owner:"app" (fun ~wait_ns -> waited := wait_ns);
  Alcotest.(check int) "queued" 1 (Capvm.Umtx.waiters mu);
  (* Hold for 5us of simulated time, then release. *)
  ignore
    (Dsim.Engine.schedule engine ~delay:(Dsim.Time.us 5) (fun () ->
         Capvm.Umtx.release mu));
  Dsim.Engine.run_until_quiet engine;
  Alcotest.(check (float 1.)) "waited hold + wake" 5_100. !waited;
  Alcotest.(check (option string)) "handed off" (Some "app") (Capvm.Umtx.holder mu);
  Alcotest.(check int) "contended counted" 1 (Capvm.Umtx.contended_acquisitions mu);
  Alcotest.(check bool) "total wait accumulated" true (Capvm.Umtx.total_wait_ns mu > 0.)

let umtx_policies () =
  let order policy =
    let engine = Dsim.Engine.create () in
    let mu = Capvm.Umtx.create engine ~policy ~wake_ns:0. () in
    let log = ref [] in
    Capvm.Umtx.acquire mu ~owner:"holder" (fun ~wait_ns:_ -> ());
    List.iter
      (fun name ->
        Capvm.Umtx.acquire mu ~owner:name (fun ~wait_ns:_ ->
            log := name :: !log;
            Capvm.Umtx.release mu))
      [ "first"; "second"; "third" ];
    Capvm.Umtx.release mu;
    Dsim.Engine.run_until_quiet engine;
    List.rev !log
  in
  Alcotest.(check (list string)) "fifo order" [ "first"; "second"; "third" ]
    (order Capvm.Umtx.Fifo);
  Alcotest.(check (list string)) "barging (LIFO) order" [ "third"; "second"; "first" ]
    (order Capvm.Umtx.Barging)

let umtx_try_acquire () =
  let engine = Dsim.Engine.create () in
  let mu = Capvm.Umtx.create engine () in
  Alcotest.(check bool) "free try succeeds" true (Capvm.Umtx.try_acquire mu ~owner:"a");
  Alcotest.(check bool) "held try fails" false (Capvm.Umtx.try_acquire mu ~owner:"b");
  Capvm.Umtx.release mu;
  Alcotest.(check bool) "release of unheld raises" true
    (match Capvm.Umtx.release mu with
    | () -> false
    | exception Invalid_argument _ -> true)

let pre_channel_suite =
  [
    Alcotest.test_case "cvm: regions disjoint" `Quick cvm_regions_disjoint;
    Alcotest.test_case "cvm: no sealing authority" `Quick cvm_no_sealing_authority;
    Alcotest.test_case "cvm: DDC confinement" `Quick cvm_confinement;
    Alcotest.test_case "cvm: heap allocation" `Quick cvm_heap;
    Alcotest.test_case "trampoline: mechanics + accounting" `Quick trampoline_mechanics;
    Alcotest.test_case "trampoline: forged entry rejected" `Quick trampoline_rejects_forged_entry;
    Alcotest.test_case "syscall: musl translation" `Quick syscall_translation;
    Alcotest.test_case "syscall: cvm vs baseline cost" `Quick syscall_paths;
    Alcotest.test_case "musl shim: calls + clock" `Quick musl_shim_calls;
    Alcotest.test_case "umtx: uncontended" `Quick umtx_uncontended;
    Alcotest.test_case "umtx: contended wait accounting" `Quick umtx_contended_wait;
    Alcotest.test_case "umtx: hand-off policies" `Quick umtx_policies;
    Alcotest.test_case "umtx: try_acquire/release errors" `Quick umtx_try_acquire;
  ]

(* ------------------------------------------------------------------ *)
(* Capability channels                                                  *)
(* ------------------------------------------------------------------ *)

let channel_roundtrip () =
  let _, iv = make_iv () in
  let prod, cons = Capvm.Channel.create iv ~name:"t" ~capacity:64 in
  let chan = prod.Capvm.Channel.channel in
  Alcotest.(check int) "rounded capacity" 64 (Capvm.Channel.capacity chan);
  Alcotest.(check int) "sent all" 5 (Capvm.Channel.send prod (Bytes.of_string "hello"));
  Alcotest.(check int) "used" 5 (Capvm.Channel.used chan);
  Alcotest.(check string) "received" "hello"
    (Bytes.to_string (Capvm.Channel.recv cons ~max:16));
  Alcotest.(check int) "drained" 0 (Capvm.Channel.used chan);
  Alcotest.(check (pair int int)) "stats" (5, 5) (Capvm.Channel.peek_stats chan)

let channel_wraparound () =
  let _, iv = make_iv () in
  let prod, cons = Capvm.Channel.create iv ~name:"w" ~capacity:16 in
  ignore (Capvm.Channel.send prod (Bytes.of_string "0123456789"));
  ignore (Capvm.Channel.recv cons ~max:8);
  (* head at 8; writing 12 wraps past the end of the ring *)
  Alcotest.(check int) "wrap write" 12 (Capvm.Channel.send prod (Bytes.of_string "abcdefghijkl"));
  Alcotest.(check string) "order preserved across the wrap" "89abcdefghijkl"
    (Bytes.to_string (Capvm.Channel.recv cons ~max:32))

let channel_backpressure () =
  let _, iv = make_iv () in
  let prod, cons = Capvm.Channel.create iv ~name:"bp" ~capacity:16 in
  Alcotest.(check int) "short write when full" 16
    (Capvm.Channel.send prod (Bytes.make 32 'x'));
  Alcotest.(check int) "refused when full" 0 (Capvm.Channel.send prod (Bytes.of_string "y"));
  ignore (Capvm.Channel.recv cons ~max:4);
  Alcotest.(check int) "space again" 1 (Capvm.Channel.send prod (Bytes.of_string "y"))

let channel_views_enforced () =
  let _, iv = make_iv () in
  let prod, cons = Capvm.Channel.create iv ~name:"sec" ~capacity:32 in
  (* The consumer view cannot send; the producer view cannot receive. *)
  Alcotest.(check bool) "consumer cannot send" true
    (match Capvm.Channel.send cons (Bytes.of_string "evil") with
    | _ -> false
    | exception Cheri.Fault.Capability_fault f ->
      f.Cheri.Fault.kind = Cheri.Fault.Permission_violation);
  ignore (Capvm.Channel.send prod (Bytes.of_string "data"));
  Alcotest.(check bool) "producer cannot receive" true
    (match Capvm.Channel.recv prod ~max:4 with
    | _ -> false
    | exception Cheri.Fault.Capability_fault f ->
      f.Cheri.Fault.kind = Cheri.Fault.Permission_violation)

let channel_fifo_prop =
  QCheck.Test.make ~name:"channel: byte FIFO under random send/recv" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 40) (pair bool (int_range 1 12)))
    (fun ops ->
      let _, iv = make_iv () in
      let prod, cons = Capvm.Channel.create iv ~name:"prop" ~capacity:32 in
      let model = Buffer.create 64 and next = ref 0 in
      let ok = ref true in
      List.iter
        (fun (is_send, n) ->
          if is_send then begin
            let b = Bytes.init n (fun i -> Char.chr ((!next + i) land 0xff)) in
            let accepted = Capvm.Channel.send prod b in
            Buffer.add_subbytes model b 0 accepted;
            next := !next + accepted
          end
          else begin
            let got = Capvm.Channel.recv cons ~max:n in
            let expected = Buffer.sub model 0 (Bytes.length got) in
            if Bytes.to_string got <> expected then ok := false;
            let rest = Buffer.sub model (Bytes.length got) (Buffer.length model - Bytes.length got) in
            Buffer.clear model;
            Buffer.add_string model rest
          end)
        ops;
      !ok
      && Capvm.Channel.used prod.Capvm.Channel.channel = Buffer.length model)


let suite =
  pre_channel_suite
  @ [
      Alcotest.test_case "channel: roundtrip" `Quick channel_roundtrip;
      Alcotest.test_case "channel: wraparound" `Quick channel_wraparound;
      Alcotest.test_case "channel: backpressure" `Quick channel_backpressure;
      Alcotest.test_case "channel: view permissions enforced" `Quick channel_views_enforced;
      QCheck_alcotest.to_alcotest channel_fifo_prop;
    ]
