(* Tests for the discrete-event simulation substrate. *)

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Time                                                                 *)
(* ------------------------------------------------------------------ *)

let time_units () =
  Alcotest.(check int64) "us" 1_000L (Dsim.Time.us 1);
  Alcotest.(check int64) "ms" 1_000_000L (Dsim.Time.ms 1);
  Alcotest.(check int64) "sec" 1_000_000_000L (Dsim.Time.sec 1);
  Alcotest.(check int64) "ns" 7L (Dsim.Time.ns 7)

let time_arith () =
  let a = Dsim.Time.us 5 and b = Dsim.Time.us 3 in
  Alcotest.(check int64) "add" 8_000L (Dsim.Time.add a b);
  Alcotest.(check int64) "sub" 2_000L (Dsim.Time.sub a b);
  Alcotest.(check int64) "sub clamps" 0L (Dsim.Time.sub b a);
  Alcotest.(check int64) "diff symmetric" 2_000L (Dsim.Time.diff b a);
  Alcotest.(check int64) "mul" 15_000L (Dsim.Time.mul a 3);
  Alcotest.(check bool) "lt" true Dsim.Time.(b < a);
  Alcotest.(check bool) "ge" true Dsim.Time.(a >= b);
  Alcotest.(check int64) "min" 3_000L (Dsim.Time.min a b);
  Alcotest.(check int64) "max" 5_000L (Dsim.Time.max a b)

let time_float_conv () =
  check_float "to_float_us" 5. (Dsim.Time.to_float_us (Dsim.Time.us 5));
  check_float "to_float_ms" 5. (Dsim.Time.to_float_ms (Dsim.Time.ms 5));
  check_float "to_float_sec" 2. (Dsim.Time.to_float_sec (Dsim.Time.sec 2));
  Alcotest.(check int64) "of_float_ns rounds" 3L (Dsim.Time.of_float_ns 2.6);
  Alcotest.(check int64) "of_float_ns clamps negatives" 0L (Dsim.Time.of_float_ns (-5.));
  Alcotest.(check int64) "of_float_sec" 1_500_000_000L (Dsim.Time.of_float_sec 1.5)

let time_pp () =
  let s t = Format.asprintf "%a" Dsim.Time.pp t in
  Alcotest.(check string) "ns" "500ns" (s (Dsim.Time.ns 500));
  Alcotest.(check string) "us" "1.50us" (s (Dsim.Time.ns 1500));
  Alcotest.(check string) "ms" "2.00ms" (s (Dsim.Time.ms 2));
  Alcotest.(check string) "s" "3.000s" (s (Dsim.Time.sec 3))

(* ------------------------------------------------------------------ *)
(* Heap                                                                 *)
(* ------------------------------------------------------------------ *)

let heap_basic () =
  let h = Dsim.Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Dsim.Heap.is_empty h);
  List.iter (Dsim.Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "size" 5 (Dsim.Heap.size h);
  Alcotest.(check (option int)) "peek" (Some 1) (Dsim.Heap.peek h);
  Alcotest.(check (option int)) "pop min" (Some 1) (Dsim.Heap.pop h);
  Alcotest.(check (option int)) "pop dup" (Some 1) (Dsim.Heap.pop h);
  Alcotest.(check (option int)) "pop next" (Some 3) (Dsim.Heap.pop h);
  Alcotest.(check int) "size after pops" 2 (Dsim.Heap.size h)

let heap_pop_empty () =
  let h = Dsim.Heap.create ~cmp:compare in
  Alcotest.(check (option int)) "pop empty" None (Dsim.Heap.pop h);
  Alcotest.check_raises "pop_exn raises" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Dsim.Heap.pop_exn h))

let heap_to_sorted_list () =
  let h = Dsim.Heap.create ~cmp:compare in
  List.iter (Dsim.Heap.push h) [ 9; 2; 7; 2; 0 ];
  Alcotest.(check (list int)) "sorted copy" [ 0; 2; 2; 7; 9 ]
    (Dsim.Heap.to_sorted_list h);
  Alcotest.(check int) "heap unchanged" 5 (Dsim.Heap.size h)

let heap_clear () =
  let h = Dsim.Heap.create ~cmp:compare in
  List.iter (Dsim.Heap.push h) [ 1; 2; 3 ];
  Dsim.Heap.clear h;
  Alcotest.(check bool) "cleared" true (Dsim.Heap.is_empty h)

let heap_sorted_prop =
  QCheck.Test.make ~name:"heap drains any list in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Dsim.Heap.create ~cmp:compare in
      List.iter (Dsim.Heap.push h) xs;
      Dsim.Heap.to_sorted_list h = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)
(* ------------------------------------------------------------------ *)

let engine_order () =
  let e = Dsim.Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Dsim.Engine.schedule e ~delay:(Dsim.Time.ns 30) (note "c"));
  ignore (Dsim.Engine.schedule e ~delay:(Dsim.Time.ns 10) (note "a"));
  ignore (Dsim.Engine.schedule e ~delay:(Dsim.Time.ns 20) (note "b"));
  Dsim.Engine.run_until_quiet e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int64) "clock at last event" 30L (Dsim.Engine.now e)

let engine_ties_fifo () =
  let e = Dsim.Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Dsim.Engine.schedule e ~delay:(Dsim.Time.ns 5) (note "first"));
  ignore (Dsim.Engine.schedule e ~delay:(Dsim.Time.ns 5) (note "second"));
  Dsim.Engine.run_until_quiet e;
  Alcotest.(check (list string)) "insertion order on ties" [ "first"; "second" ]
    (List.rev !log)

let engine_cancel () =
  let e = Dsim.Engine.create () in
  let fired = ref false in
  let h = Dsim.Engine.schedule e ~delay:(Dsim.Time.ns 5) (fun () -> fired := true) in
  Alcotest.(check bool) "pending before" true (Dsim.Engine.is_pending h);
  Dsim.Engine.cancel h;
  Alcotest.(check bool) "not pending after" false (Dsim.Engine.is_pending h);
  Dsim.Engine.run_until_quiet e;
  Alcotest.(check bool) "cancelled never fires" false !fired

let engine_until () =
  let e = Dsim.Engine.create () in
  let fired = ref 0 in
  ignore (Dsim.Engine.schedule e ~delay:(Dsim.Time.ns 10) (fun () -> incr fired));
  ignore (Dsim.Engine.schedule e ~delay:(Dsim.Time.ns 20) (fun () -> incr fired));
  Dsim.Engine.run e ~until:(Dsim.Time.ns 15);
  Alcotest.(check int) "only first fired" 1 !fired;
  Alcotest.(check int64) "clock parked at until" 15L (Dsim.Engine.now e);
  Dsim.Engine.run e ~until:(Dsim.Time.ns 100);
  Alcotest.(check int) "second fired later" 2 !fired;
  Alcotest.(check int64) "clock at until even when idle" 100L (Dsim.Engine.now e)

let engine_past_schedules_now () =
  let e = Dsim.Engine.create () in
  ignore (Dsim.Engine.schedule e ~delay:(Dsim.Time.ns 50) (fun () -> ()));
  Dsim.Engine.run_until_quiet e;
  let fired_at = ref Dsim.Time.zero in
  ignore
    (Dsim.Engine.schedule_at e ~at:(Dsim.Time.ns 10) (fun () ->
         fired_at := Dsim.Engine.now e));
  Dsim.Engine.run_until_quiet e;
  Alcotest.(check int64) "past event fires at current clock" 50L !fired_at

let engine_self_reschedule_budget () =
  let e = Dsim.Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Dsim.Engine.schedule e ~delay:(Dsim.Time.ns 1) tick)
  in
  ignore (Dsim.Engine.schedule e ~delay:(Dsim.Time.ns 1) tick);
  Dsim.Engine.run e ~max_events:100;
  Alcotest.(check int) "bounded by max_events" 100 !count

let engine_step () =
  let e = Dsim.Engine.create () in
  Alcotest.(check bool) "step on empty" false (Dsim.Engine.step e);
  ignore (Dsim.Engine.schedule e ~delay:(Dsim.Time.ns 1) (fun () -> ()));
  Alcotest.(check bool) "step fires" true (Dsim.Engine.step e)

let engine_nested_schedule () =
  let e = Dsim.Engine.create () in
  let log = ref [] in
  ignore
    (Dsim.Engine.schedule e ~delay:(Dsim.Time.ns 10) (fun () ->
         log := "outer" :: !log;
         ignore
           (Dsim.Engine.schedule e ~delay:(Dsim.Time.ns 5) (fun () ->
                log := "inner" :: !log))));
  Dsim.Engine.run_until_quiet e;
  Alcotest.(check (list string)) "nested events run" [ "outer"; "inner" ]
    (List.rev !log);
  Alcotest.(check int64) "clock advanced by nested delay" 15L (Dsim.Engine.now e)

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let rng_deterministic () =
  let a = Dsim.Rng.create ~seed:7L and b = Dsim.Rng.create ~seed:7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Dsim.Rng.bits64 a) (Dsim.Rng.bits64 b)
  done

let rng_split_independent () =
  let a = Dsim.Rng.create ~seed:7L in
  let b = Dsim.Rng.split a in
  let xa = Dsim.Rng.bits64 a and xb = Dsim.Rng.bits64 b in
  Alcotest.(check bool) "split streams differ" true (not (Int64.equal xa xb))

let rng_int_bounds () =
  let r = Dsim.Rng.create ~seed:3L in
  for _ = 1 to 1000 do
    let v = Dsim.Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound must be positive"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Dsim.Rng.int r 0))

let rng_float_bounds () =
  let r = Dsim.Rng.create ~seed:3L in
  for _ = 1 to 1000 do
    let v = Dsim.Rng.float r 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0. && v < 2.5)
  done

let rng_gaussian_moments () =
  let r = Dsim.Rng.create ~seed:11L in
  let n = 20_000 in
  let sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let v = Dsim.Rng.gaussian r ~mu:10. ~sigma:2. in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean close to mu" true (Float.abs (mean -. 10.) < 0.1);
  Alcotest.(check bool) "variance close to sigma^2" true (Float.abs (var -. 4.) < 0.3)

let rng_lognormal_positive () =
  let r = Dsim.Rng.create ~seed:13L in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "lognormal positive" true
      (Dsim.Rng.lognormal r ~mu:0. ~sigma:1. > 0.)
  done

let rng_exponential_mean () =
  let r = Dsim.Rng.create ~seed:17L in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Dsim.Rng.exponential r ~mean:5.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean close" true (Float.abs (mean -. 5.) < 0.2)

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

let stats_of_list xs =
  let s = Dsim.Stats.create () in
  List.iter (Dsim.Stats.add s) xs;
  s

let stats_mean_std () =
  let s = stats_of_list [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  check_float "mean" 5. (Dsim.Stats.mean s);
  (* sample std of this classic set: sqrt(32/7) *)
  Alcotest.(check (float 1e-6)) "stddev" (sqrt (32. /. 7.)) (Dsim.Stats.stddev s);
  check_float "min" 2. (Dsim.Stats.minimum s);
  check_float "max" 9. (Dsim.Stats.maximum s)

let stats_empty () =
  let s = Dsim.Stats.create () in
  Alcotest.(check bool) "is_empty" true (Dsim.Stats.is_empty s);
  check_float "mean of empty" 0. (Dsim.Stats.mean s);
  check_float "stddev of single" 0. (Dsim.Stats.stddev (stats_of_list [ 42. ]));
  Alcotest.check_raises "percentile of empty raises"
    (Invalid_argument "Stats.percentile: empty buffer") (fun () ->
      ignore (Dsim.Stats.percentile s 50.))

let stats_percentile () =
  let s = stats_of_list [ 10.; 20.; 30.; 40. ] in
  check_float "p0" 10. (Dsim.Stats.percentile s 0.);
  check_float "p100" 40. (Dsim.Stats.percentile s 100.);
  check_float "median interpolates" 25. (Dsim.Stats.median s);
  check_float "p25" 17.5 (Dsim.Stats.percentile s 25.)

let stats_boxplot () =
  let s = stats_of_list (List.init 99 (fun i -> float_of_int (i + 1))) in
  let b = Dsim.Stats.boxplot s in
  check_float "median" 50. b.Dsim.Stats.median;
  check_float "q1" 25.5 b.Dsim.Stats.q1;
  check_float "q3" 74.5 b.Dsim.Stats.q3;
  Alcotest.(check int) "no outliers in uniform data" 0 b.Dsim.Stats.outliers

let stats_iqr_filter () =
  let base = List.init 100 (fun i -> 100. +. float_of_int (i mod 5)) in
  let s = stats_of_list (base @ [ 10_000.; 20_000. ]) in
  let f = Dsim.Stats.iqr_filter s in
  Alcotest.(check int) "outliers removed" 100 (Dsim.Stats.count f);
  Alcotest.(check bool) "max sane" true (Dsim.Stats.maximum f < 200.)

let stats_iqr_keeps_all_when_clean () =
  let s = stats_of_list (List.init 50 (fun i -> float_of_int i)) in
  Alcotest.(check int) "nothing removed" 50
    (Dsim.Stats.count (Dsim.Stats.iqr_filter s))

let stats_to_array_order () =
  let s = stats_of_list [ 3.; 1.; 2. ] in
  Alcotest.(check (array (float 0.))) "insertion order" [| 3.; 1.; 2. |]
    (Dsim.Stats.to_array s)

let stats_percentile_monotone_prop =
  QCheck.Test.make ~name:"percentiles are monotone" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_inclusive 1000.))
    (fun xs ->
      let s = stats_of_list xs in
      let p25 = Dsim.Stats.percentile s 25.
      and p50 = Dsim.Stats.percentile s 50.
      and p75 = Dsim.Stats.percentile s 75. in
      p25 <= p50 && p50 <= p75)

(* ------------------------------------------------------------------ *)
(* Cost model / Trace                                                   *)
(* ------------------------------------------------------------------ *)

let cost_model_values () =
  let cm = Dsim.Cost_model.default in
  Alcotest.(check (float 1e-9)) "goodput ratio" (1448. /. 1538.)
    Dsim.Cost_model.ethernet_goodput_ratio;
  (* 1538 wire bytes at 1 Gbit/s = 12304 ns *)
  Alcotest.(check (float 1.)) "serialization" 12304.
    (Dsim.Cost_model.serialization_ns cm ~bytes:1538);
  let nc = Dsim.Cost_model.no_cheri cm in
  check_float "no_cheri kills trampolines" 0. nc.Dsim.Cost_model.tramp_oneway_ns;
  let quiet = Dsim.Cost_model.scaled_jitter cm ~factor:0. in
  check_float "scaled jitter" 0. quiet.Dsim.Cost_model.jitter_sigma

let cost_model_calibration () =
  (* The relations DESIGN.md documents must hold of the defaults. *)
  let cm = Dsim.Cost_model.default in
  Alcotest.(check (float 1.)) "S1 clock delta is ~125ns"
    125.
    (2. *. cm.Dsim.Cost_model.tramp_oneway_ns +. cm.Dsim.Cost_model.syscall_ns
    -. cm.Dsim.Cost_model.vdso_clock_total_ns);
  Alcotest.(check (float 1.)) "S2 adds ~200ns"
    200.
    ((2. *. cm.Dsim.Cost_model.tramp_oneway_ns)
    +. cm.Dsim.Cost_model.mutex_uncontended_ns)

let trace_basic () =
  let t = Dsim.Trace.create ~enabled:true () in
  Dsim.Trace.record t ~at:(Dsim.Time.ns 5) ~component:"nic" "rx";
  Dsim.Trace.recordf t ~at:(Dsim.Time.ns 7) ~component:"tcp" "seq=%d" 42;
  Alcotest.(check int) "two events" 2 (List.length (Dsim.Trace.events t));
  Alcotest.(check int) "find by component" 1
    (List.length (Dsim.Trace.find t ~component:"tcp"));
  (match Dsim.Trace.find t ~component:"tcp" with
  | [ e ] -> Alcotest.(check string) "formatted" "seq=42" e.Dsim.Trace.message
  | _ -> Alcotest.fail "expected one tcp event");
  Dsim.Trace.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Dsim.Trace.events t))

let trace_disabled () =
  let t = Dsim.Trace.create () in
  Alcotest.(check bool) "disabled by default" false (Dsim.Trace.enabled t);
  Dsim.Trace.record t ~at:Dsim.Time.zero ~component:"x" "dropped";
  Alcotest.(check int) "no events recorded" 0 (List.length (Dsim.Trace.events t));
  Dsim.Trace.set_enabled t true;
  Dsim.Trace.record t ~at:Dsim.Time.zero ~component:"x" "kept";
  Alcotest.(check int) "recorded after enable" 1 (List.length (Dsim.Trace.events t))

let trace_capacity () =
  let t = Dsim.Trace.create ~enabled:true ~capacity:3 () in
  for i = 1 to 10 do
    Dsim.Trace.record t ~at:Dsim.Time.zero ~component:"x" (string_of_int i)
  done;
  Alcotest.(check int) "capped" 3 (List.length (Dsim.Trace.events t))

let histogram_buckets () =
  let h = Dsim.Histogram.create ~lo:1. ~ratio:2. ~buckets:8 () in
  List.iter (Dsim.Histogram.add h) [ 0.5; 1.5; 3.; 5.; 100.; 1.e9 ];
  Alcotest.(check int) "total" 6 (Dsim.Histogram.count h);
  Alcotest.(check int) "below lo lands in bucket 0" 2 (Dsim.Histogram.bucket_value h 0);
  Alcotest.(check int) "1.5 and 0.5 share bucket 0" 2 (Dsim.Histogram.bucket_value h 0);
  Alcotest.(check int) "[2,4) holds 3." 1 (Dsim.Histogram.bucket_value h 1);
  Alcotest.(check int) "[4,8) holds 5." 1 (Dsim.Histogram.bucket_value h 2);
  Alcotest.(check int) "[64,128) holds 100." 1 (Dsim.Histogram.bucket_value h 6);
  Alcotest.(check int) "overflow clamps to the last bucket" 1
    (Dsim.Histogram.bucket_value h 7);
  let lo, hi = Dsim.Histogram.bucket_range h 2 in
  Alcotest.(check (float 1e-9)) "range lo" 4. lo;
  Alcotest.(check (float 1e-9)) "range hi" 8. hi

let histogram_render () =
  let h = Dsim.Histogram.create () in
  Alcotest.(check string) "empty" "(empty histogram)" (Dsim.Histogram.render h);
  let s = Dsim.Stats.create () in
  (* 10 and 12 share [8,16); 2100 and 2200 share [2048,4096); 2000 sits
     alone in [1024,2048). *)
  List.iter (Dsim.Stats.add s) [ 10.; 12.; 2000.; 2100.; 2200. ];
  ignore (Dsim.Histogram.add_stats h s);
  let out = Dsim.Histogram.render h in
  Alcotest.(check int) "three bucket lines" 3
    (List.length (String.split_on_char '\n' out));
  Alcotest.(check bool) "bars present" true (String.contains out '#');
  Alcotest.(check int) "nonempty buckets listed" 3
    (List.length (Dsim.Histogram.nonempty_buckets h))

let histogram_errors () =
  Alcotest.(check bool) "bad params" true
    (match Dsim.Histogram.create ~lo:0. () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let h = Dsim.Histogram.create ~buckets:4 () in
  Alcotest.(check bool) "bad index" true
    (match Dsim.Histogram.bucket_range h 9 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "time: unit constructors" `Quick time_units;
    Alcotest.test_case "time: arithmetic" `Quick time_arith;
    Alcotest.test_case "time: float conversions" `Quick time_float_conv;
    Alcotest.test_case "time: pretty printing" `Quick time_pp;
    Alcotest.test_case "heap: push/pop ordering" `Quick heap_basic;
    Alcotest.test_case "heap: empty behaviour" `Quick heap_pop_empty;
    Alcotest.test_case "heap: to_sorted_list is non-destructive" `Quick heap_to_sorted_list;
    Alcotest.test_case "heap: clear" `Quick heap_clear;
    QCheck_alcotest.to_alcotest heap_sorted_prop;
    Alcotest.test_case "engine: events fire in time order" `Quick engine_order;
    Alcotest.test_case "engine: ties break by insertion" `Quick engine_ties_fifo;
    Alcotest.test_case "engine: cancellation" `Quick engine_cancel;
    Alcotest.test_case "engine: run ~until" `Quick engine_until;
    Alcotest.test_case "engine: past schedules fire now" `Quick engine_past_schedules_now;
    Alcotest.test_case "engine: max_events bounds runaway loops" `Quick engine_self_reschedule_budget;
    Alcotest.test_case "engine: step" `Quick engine_step;
    Alcotest.test_case "engine: nested scheduling" `Quick engine_nested_schedule;
    Alcotest.test_case "rng: determinism" `Quick rng_deterministic;
    Alcotest.test_case "rng: split independence" `Quick rng_split_independent;
    Alcotest.test_case "rng: int bounds" `Quick rng_int_bounds;
    Alcotest.test_case "rng: float bounds" `Quick rng_float_bounds;
    Alcotest.test_case "rng: gaussian moments" `Quick rng_gaussian_moments;
    Alcotest.test_case "rng: lognormal positivity" `Quick rng_lognormal_positive;
    Alcotest.test_case "rng: exponential mean" `Quick rng_exponential_mean;
    Alcotest.test_case "stats: mean/stddev/min/max" `Quick stats_mean_std;
    Alcotest.test_case "stats: empty and degenerate" `Quick stats_empty;
    Alcotest.test_case "stats: percentile interpolation" `Quick stats_percentile;
    Alcotest.test_case "stats: boxplot quartiles" `Quick stats_boxplot;
    Alcotest.test_case "stats: IQR filter drops outliers" `Quick stats_iqr_filter;
    Alcotest.test_case "stats: IQR filter keeps clean data" `Quick stats_iqr_keeps_all_when_clean;
    Alcotest.test_case "stats: to_array preserves order" `Quick stats_to_array_order;
    QCheck_alcotest.to_alcotest stats_percentile_monotone_prop;
    Alcotest.test_case "cost model: derived constants" `Quick cost_model_values;
    Alcotest.test_case "cost model: paper calibration relations" `Quick cost_model_calibration;
    Alcotest.test_case "trace: record/find/clear" `Quick trace_basic;
    Alcotest.test_case "trace: disabled is a no-op" `Quick trace_disabled;
    Alcotest.test_case "trace: capacity cap" `Quick trace_capacity;
    Alcotest.test_case "histogram: bucket ladder" `Quick histogram_buckets;
    Alcotest.test_case "histogram: rendering" `Quick histogram_render;
    Alcotest.test_case "histogram: errors" `Quick histogram_errors;
  ]
