test/test_capvm.ml: Alcotest Buffer Bytes Capvm Char Cheri Dsim Gen List QCheck QCheck_alcotest
