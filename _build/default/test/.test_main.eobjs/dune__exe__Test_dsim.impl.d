test/test_dsim.ml: Alcotest Dsim Float Format Gen Int64 List QCheck QCheck_alcotest String
