test/test_tcp.ml: Alcotest Buffer Bytes Char Dsim Format Int64 Ipv4_addr List Netstack QCheck QCheck_alcotest Queue Ring_buf String Tcp_cb Tcp_input Tcp_output Tcp_seq Tcp_timer Tcp_wire
