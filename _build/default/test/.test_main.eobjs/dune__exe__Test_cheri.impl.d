test/test_cheri.ml: Alcotest Bytes Cheri Format Gen List QCheck QCheck_alcotest
