test/test_faults.ml: Alcotest Buffer Bytes Capvm Char Core Dpdk Dsim Errno Ethernet Ipv4 Ipv4_addr List Netstack Nic Stack String Tcp_wire
