test/test_wire.ml: Alcotest Buffer Bytes Char Dsim Format List Netstack Nic QCheck QCheck_alcotest Queue Result
