test/test_stack.ml: Alcotest Buffer Bytes Capture Capvm Char Cheri Core Dsim Epoll Errno Ff_api Ipv4_addr List Netstack Stack String
