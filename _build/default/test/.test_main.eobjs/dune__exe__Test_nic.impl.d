test/test_nic.ml: Alcotest Bytes Cheri Dsim Int64 List Nic String
