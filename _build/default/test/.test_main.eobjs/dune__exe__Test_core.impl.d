test/test_core.ml: Alcotest Astring_contains Cheri Core Dsim Float List Printf String
