test/test_main.ml: Alcotest Test_capvm Test_cheri Test_core Test_dpdk Test_dsim Test_faults Test_mavlink Test_nic Test_stack Test_tcp Test_wire
