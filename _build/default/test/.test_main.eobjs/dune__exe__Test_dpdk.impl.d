test/test_dpdk.ml: Alcotest Bytes Cheri Dpdk Dsim List Nic Option
