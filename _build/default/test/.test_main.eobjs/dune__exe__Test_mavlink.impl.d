test/test_mavlink.ml: Alcotest Astring_contains Bytes Char Cheri Core Format Gen List QCheck QCheck_alcotest Result String
