(* Integration tests: two full stacks (DPDK + netstack) over a simulated
   wire — sockets, epoll, ICMP, UDP, data integrity, error paths. *)

open Netstack

type host = { nif : Core.Topology.netif; node : Core.Topology.node }

type world = { engine : Dsim.Engine.t; left : host; right : host }

let ip_left = Ipv4_addr.make 192 168 1 1
let ip_right = Ipv4_addr.make 192 168 1 2

let make_world ?(start = true) () =
  let engine = Dsim.Engine.create () in
  let mk name = Core.Topology.make_node engine ~name ~ports:1 () in
  let left_node = mk "left" and right_node = mk "right" in
  ignore (Core.Topology.link engine left_node 0 right_node 0);
  let netif node ip seed =
    let cvm =
      Capvm.Intravisor.create_cvm
        (Core.Topology.intravisor node)
        ~name:"net" ~size:(12 * 1024 * 1024)
    in
    let region = Capvm.Cvm.sub_region cvm ~size:Core.Topology.default_netif_region_size in
    Core.Topology.make_netif node ~region ~port_idx:0 ~ip
      ~stack_tuning:(fun c -> { c with Stack.rng_seed = seed })
      ()
  in
  let left = { nif = netif left_node ip_left 1L; node = left_node } in
  let right = { nif = netif right_node ip_right 2L; node = right_node } in
  if start then begin
    Stack.start left.nif.Core.Topology.stack;
    Stack.start right.nif.Core.Topology.stack
  end;
  { engine; left; right }

let run_for w d = Dsim.Engine.run w.engine ~until:(Dsim.Time.add (Dsim.Engine.now w.engine) d)

let get = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected errno %s" (Errno.to_string e)

let errno_t = Alcotest.testable (fun fmt e -> Errno.pp fmt e) Errno.equal

let expect_err expected = function
  | Ok _ -> Alcotest.failf "expected %s" (Errno.to_string expected)
  | Error e -> Alcotest.check errno_t "errno" expected e

(* ------------------------------------------------------------------ *)

let ping_works () =
  let w = make_world () in
  Stack.ping w.left.nif.Core.Topology.stack ~ip:ip_right ~ident:7 ~seq:1
    ~payload:(Bytes.of_string "hello?");
  run_for w (Dsim.Time.ms 10);
  Alcotest.(check (list (pair int int))) "echo reply received" [ (7, 1) ]
    (Stack.pings_received w.left.nif.Core.Topology.stack)

let arp_resolution_is_lazy () =
  let w = make_world () in
  Stack.ping w.left.nif.Core.Topology.stack ~ip:ip_right ~ident:1 ~seq:1
    ~payload:Bytes.empty;
  run_for w (Dsim.Time.ms 10);
  let c = Stack.counters w.left.nif.Core.Topology.stack in
  Alcotest.(check int) "one arp request" 1 c.Stack.arp_requests;
  (* Second ping: cache hit, no new request. *)
  Stack.ping w.left.nif.Core.Topology.stack ~ip:ip_right ~ident:1 ~seq:2
    ~payload:Bytes.empty;
  run_for w (Dsim.Time.ms 10);
  Alcotest.(check int) "still one arp request" 1 c.Stack.arp_requests;
  Alcotest.(check int) "both pings answered" 2
    (List.length (Stack.pings_received w.left.nif.Core.Topology.stack))

let tcp_connect_accept () =
  let w = make_world () in
  let srv = w.right.nif.Core.Topology.stack in
  let cli = w.left.nif.Core.Topology.stack in
  let lfd = get (Stack.socket_stream srv) in
  get (Stack.bind srv lfd ~port:5201);
  get (Stack.listen srv lfd ~backlog:4);
  let cfd = get (Stack.socket_stream cli) in
  expect_err Errno.EINPROGRESS (Stack.connect cli cfd ~ip:ip_right ~port:5201);
  run_for w (Dsim.Time.ms 20);
  let afd, peer_ip, _peer_port = get (Stack.accept srv lfd) in
  Alcotest.(check bool) "peer ip" true (Ipv4_addr.equal peer_ip ip_left);
  Alcotest.(check bool) "distinct fd" true (afd <> lfd);
  expect_err Errno.EISCONN (Stack.connect cli cfd ~ip:ip_right ~port:5201);
  expect_err Errno.EAGAIN (Stack.accept srv lfd)

let tcp_data_integrity () =
  let w = make_world () in
  let srv = w.right.nif.Core.Topology.stack in
  let cli = w.left.nif.Core.Topology.stack in
  let lfd = get (Stack.socket_stream srv) in
  get (Stack.bind srv lfd ~port:5201);
  get (Stack.listen srv lfd ~backlog:4);
  let cfd = get (Stack.socket_stream cli) in
  ignore (Stack.connect cli cfd ~ip:ip_right ~port:5201);
  run_for w (Dsim.Time.ms 20);
  let afd, _, _ = get (Stack.accept srv lfd) in
  (* Stream 200 KB of patterned data; verify every byte. *)
  let total = 200 * 1024 in
  let pattern i = Char.chr ((i * 7) land 0xff) in
  let sent = ref 0 and received = Buffer.create total in
  let chunk = Bytes.create 8192 in
  while Buffer.length received < total do
    if !sent < total then begin
      let n = min 8192 (total - !sent) in
      for i = 0 to n - 1 do
        Bytes.set chunk i (pattern (!sent + i))
      done;
      match Stack.write cli cfd ~buf:chunk ~off:0 ~len:n with
      | Ok accepted -> sent := !sent + accepted
      | Error Errno.EAGAIN -> ()
      | Error e -> Alcotest.failf "write: %s" (Errno.to_string e)
    end;
    run_for w (Dsim.Time.ms 1);
    let rbuf = Bytes.create 16384 in
    (match Stack.read srv afd ~buf:rbuf ~off:0 ~len:16384 with
    | Ok n -> Buffer.add_subbytes received rbuf 0 n
    | Error Errno.EAGAIN -> ()
    | Error e -> Alcotest.failf "read: %s" (Errno.to_string e))
  done;
  let data = Buffer.contents received in
  Alcotest.(check int) "all bytes arrived" total (String.length data);
  let ok = ref true in
  String.iteri (fun i c -> if c <> pattern i then ok := false) data;
  Alcotest.(check bool) "byte-exact stream" true !ok

let tcp_connection_refused () =
  let w = make_world () in
  let cli = w.left.nif.Core.Topology.stack in
  let cfd = get (Stack.socket_stream cli) in
  ignore (Stack.connect cli cfd ~ip:ip_right ~port:4444);
  run_for w (Dsim.Time.ms 20);
  let buf = Bytes.create 8 in
  expect_err Errno.ECONNREFUSED (Stack.read cli cfd ~buf ~off:0 ~len:8);
  (* The RST counter on the refusing side moved. *)
  Alcotest.(check bool) "rst sent" true
    ((Stack.counters w.right.nif.Core.Topology.stack).Stack.rst_sent > 0)

let tcp_close_and_eof () =
  let w = make_world () in
  let srv = w.right.nif.Core.Topology.stack in
  let cli = w.left.nif.Core.Topology.stack in
  let lfd = get (Stack.socket_stream srv) in
  get (Stack.bind srv lfd ~port:5201);
  get (Stack.listen srv lfd ~backlog:4);
  let cfd = get (Stack.socket_stream cli) in
  ignore (Stack.connect cli cfd ~ip:ip_right ~port:5201);
  run_for w (Dsim.Time.ms 20);
  let afd, _, _ = get (Stack.accept srv lfd) in
  ignore (Stack.write cli cfd ~buf:(Bytes.of_string "bye") ~off:0 ~len:3);
  get (Stack.close cli cfd);
  run_for w (Dsim.Time.ms 30);
  let buf = Bytes.create 16 in
  Alcotest.(check int) "data before eof" 3 (get (Stack.read srv afd ~buf ~off:0 ~len:16));
  Alcotest.(check int) "eof" 0 (get (Stack.read srv afd ~buf ~off:0 ~len:16));
  get (Stack.close srv afd);
  run_for w (Dsim.Time.ms 200);
  (* Both sides fully tear down (TIME_WAIT expires), sockets reclaimed. *)
  Alcotest.(check bool) "client socket gone" true
    (Stack.tcp_sock_of_fd cli cfd = None)

let bind_errors () =
  let w = make_world () in
  let s = w.right.nif.Core.Topology.stack in
  let fd1 = get (Stack.socket_stream s) in
  get (Stack.bind s fd1 ~port:5201);
  let fd2 = get (Stack.socket_stream s) in
  expect_err Errno.EADDRINUSE (Stack.bind s fd2 ~port:5201);
  expect_err Errno.EINVAL (Stack.bind s fd2 ~port:0);
  expect_err Errno.EINVAL (Stack.bind s fd2 ~port:70000);
  expect_err Errno.EBADF (Stack.bind s 999 ~port:1234);
  expect_err Errno.EINVAL (Stack.listen s fd2 ~backlog:4)

let listener_rejects_io () =
  let w = make_world () in
  let s = w.right.nif.Core.Topology.stack in
  let lfd = get (Stack.socket_stream s) in
  get (Stack.bind s lfd ~port:5201);
  get (Stack.listen s lfd ~backlog:4);
  let buf = Bytes.create 4 in
  expect_err Errno.EOPNOTSUPP (Stack.read s lfd ~buf ~off:0 ~len:4);
  expect_err Errno.EOPNOTSUPP (Stack.write s lfd ~buf ~off:0 ~len:4);
  expect_err Errno.EINVAL (Stack.accept s (get (Stack.socket_stream s)))

let write_before_connect () =
  let w = make_world () in
  let s = w.left.nif.Core.Topology.stack in
  let fd = get (Stack.socket_stream s) in
  let buf = Bytes.of_string "x" in
  expect_err Errno.ENOTCONN (Stack.write s fd ~buf ~off:0 ~len:1);
  expect_err Errno.ENOTCONN (Stack.read s fd ~buf ~off:0 ~len:1)

let epoll_lifecycle () =
  let w = make_world () in
  let srv = w.right.nif.Core.Topology.stack in
  let cli = w.left.nif.Core.Topology.stack in
  let lfd = get (Stack.socket_stream srv) in
  get (Stack.bind srv lfd ~port:5201);
  get (Stack.listen srv lfd ~backlog:4);
  let epfd = get (Stack.epoll_create srv) in
  get (Stack.epoll_ctl srv ~epfd ~op:`Add ~fd:lfd Epoll.epollin);
  Alcotest.(check (list (pair int int))) "nothing ready" []
    (get (Stack.epoll_wait srv ~epfd ~max:8));
  let cfd = get (Stack.socket_stream cli) in
  ignore (Stack.connect cli cfd ~ip:ip_right ~port:5201);
  run_for w (Dsim.Time.ms 20);
  (match get (Stack.epoll_wait srv ~epfd ~max:8) with
  | [ (fd, ev) ] ->
    Alcotest.(check int) "listener readable" lfd fd;
    Alcotest.(check bool) "EPOLLIN" true (Epoll.has ev Epoll.epollin)
  | l -> Alcotest.failf "expected one event, got %d" (List.length l));
  let afd, _, _ = get (Stack.accept srv lfd) in
  get (Stack.epoll_ctl srv ~epfd ~op:`Add ~fd:afd (Epoll.epollin lor Epoll.epollout));
  (match get (Stack.epoll_wait srv ~epfd ~max:8) with
  | [ (fd, ev) ] ->
    Alcotest.(check int) "conn writable" afd fd;
    Alcotest.(check bool) "EPOLLOUT only" true
      (Epoll.has ev Epoll.epollout && not (Epoll.has ev Epoll.epollin))
  | l -> Alcotest.failf "expected one event, got %d" (List.length l));
  ignore (Stack.write cli cfd ~buf:(Bytes.of_string "wake") ~off:0 ~len:4);
  run_for w (Dsim.Time.ms 10);
  (match get (Stack.epoll_wait srv ~epfd ~max:8) with
  | [ (_, ev) ] -> Alcotest.(check bool) "now readable too" true (Epoll.has ev Epoll.epollin)
  | l -> Alcotest.failf "expected one event, got %d" (List.length l));
  get (Stack.epoll_ctl srv ~epfd ~op:`Del ~fd:afd 0);
  (match get (Stack.epoll_wait srv ~epfd ~max:8) with
  | [] -> ()
  | _ -> Alcotest.fail "deregistered fd still reported");
  expect_err Errno.EINVAL (Stack.epoll_ctl srv ~epfd ~op:`Mod ~fd:afd Epoll.epollin);
  expect_err Errno.EBADF (Stack.epoll_ctl srv ~epfd ~op:`Add ~fd:999 Epoll.epollin)

let udp_roundtrip () =
  let w = make_world () in
  let l = w.left.nif.Core.Topology.stack in
  let r = w.right.nif.Core.Topology.stack in
  let rfd = get (Stack.udp_socket r) in
  get (Stack.udp_bind r rfd ~port:9999);
  let lfd = get (Stack.udp_socket l) in
  get (Stack.udp_sendto l lfd ~ip:ip_right ~port:9999 ~buf:(Bytes.of_string "datagram"));
  run_for w (Dsim.Time.ms 10);
  (match get (Stack.udp_recvfrom r rfd) with
  | Some (src, _sport, data) ->
    Alcotest.(check bool) "source ip" true (Ipv4_addr.equal src ip_left);
    Alcotest.(check string) "payload" "datagram" (Bytes.to_string data)
  | None -> Alcotest.fail "datagram not delivered");
  Alcotest.(check bool) "queue drained" true (get (Stack.udp_recvfrom r rfd) = None);
  (* Reply flows back using the learned ephemeral port. *)
  expect_err Errno.EMSGSIZE
    (Stack.udp_sendto l lfd ~ip:ip_right ~port:9999 ~buf:(Bytes.create 3000))

let ff_api_capability_checks () =
  let w = make_world () in
  let cli = w.left.nif.Core.Topology.stack in
  let ff = w.left.nif.Core.Topology.ff in
  let srv = w.right.nif.Core.Topology.stack in
  let lfd = get (Stack.socket_stream srv) in
  get (Stack.bind srv lfd ~port:5201);
  get (Stack.listen srv lfd ~backlog:4);
  let cfd = get (Ff_api.ff_socket ff) in
  ignore (Ff_api.ff_connect ff cfd ~ip:ip_right ~port:5201);
  run_for w (Dsim.Time.ms 20);
  ignore cli;
  (* A valid buffer capability works... *)
  let mem = Core.Topology.node_mem w.left.node in
  let region = Cheri.Capability.root ~base:0x3f00000 ~length:4096 ~perms:Cheri.Perms.data in
  Cheri.Tagged_memory.store_bytes mem ~cap:region ~addr:0x3f00000 (Bytes.of_string "capdata!");
  Alcotest.(check int) "capability write" 8
    (get (Ff_api.ff_write ff cfd ~buf:region ~nbytes:8));
  (* ...while an overlong nbytes traps as a capability fault, exactly
     like Fig. 3 — it never becomes an errno. *)
  Alcotest.(check bool) "overflow traps" true
    (match Ff_api.ff_write ff cfd ~buf:region ~nbytes:5000 with
    | _ -> false
    | exception Cheri.Fault.Capability_fault f ->
      f.Cheri.Fault.kind = Cheri.Fault.Out_of_bounds);
  (* Read path store-checks the buffer before consuming any data. *)
  let ro = Cheri.Capability.and_perms region Cheri.Perms.read_only in
  Alcotest.(check bool) "read into ro buffer traps" true
    (match Ff_api.ff_read ff cfd ~buf:ro ~nbytes:16 with
    | _ -> false
    | exception Cheri.Fault.Capability_fault f ->
      f.Cheri.Fault.kind = Cheri.Fault.Permission_violation)

let loop_accounting () =
  let w = make_world () in
  run_for w (Dsim.Time.ms 5);
  let loops = Stack.loops w.left.nif.Core.Topology.stack in
  Alcotest.(check bool) "loop is polling" true (loops > 10);
  Stack.stop w.left.nif.Core.Topology.stack;
  run_for w (Dsim.Time.ms 5);
  let after = Stack.loops w.left.nif.Core.Topology.stack in
  run_for w (Dsim.Time.ms 5);
  Alcotest.(check int) "stopped loop stays stopped" after
    (Stack.loops w.left.nif.Core.Topology.stack)

let suite =
  [
    Alcotest.test_case "icmp ping over the wire" `Quick ping_works;
    Alcotest.test_case "arp: lazy resolution + caching" `Quick arp_resolution_is_lazy;
    Alcotest.test_case "tcp: connect/accept" `Quick tcp_connect_accept;
    Alcotest.test_case "tcp: 200KB byte-exact stream" `Quick tcp_data_integrity;
    Alcotest.test_case "tcp: connection refused" `Quick tcp_connection_refused;
    Alcotest.test_case "tcp: close and EOF" `Quick tcp_close_and_eof;
    Alcotest.test_case "bind/listen error paths" `Quick bind_errors;
    Alcotest.test_case "listener rejects read/write" `Quick listener_rejects_io;
    Alcotest.test_case "io before connect" `Quick write_before_connect;
    Alcotest.test_case "epoll lifecycle" `Quick epoll_lifecycle;
    Alcotest.test_case "udp roundtrip + EMSGSIZE" `Quick udp_roundtrip;
    Alcotest.test_case "ff_api capability enforcement" `Quick ff_api_capability_checks;
    Alcotest.test_case "poll loop accounting" `Quick loop_accounting;
  ]

(* ------------------------------------------------------------------ *)
(* Packet capture                                                       *)
(* ------------------------------------------------------------------ *)

let capture_sees_handshake () =
  let w = make_world () in
  let cap = Capture.create () in
  Stack.set_capture w.left.nif.Core.Topology.stack (Some cap);
  let srv = w.right.nif.Core.Topology.stack in
  let cli = w.left.nif.Core.Topology.stack in
  let lfd = get (Stack.socket_stream srv) in
  get (Stack.bind srv lfd ~port:5201);
  get (Stack.listen srv lfd ~backlog:4);
  let cfd = get (Stack.socket_stream cli) in
  ignore (Stack.connect cli cfd ~ip:ip_right ~port:5201);
  run_for w (Dsim.Time.ms 20);
  (* ARP exchange + three-way handshake, both visible from the client. *)
  Alcotest.(check bool) "arp request captured" true
    (Capture.matching cap "ARP, arp who-has" <> []);
  Alcotest.(check bool) "SYN captured" true (Capture.matching cap "Flags [S]" <> []);
  Alcotest.(check bool) "SYN-ACK captured" true (Capture.matching cap "Flags [S.]" <> []);
  (* Directions recorded. *)
  let dirs = List.map (fun e -> e.Capture.dir) (Capture.entries cap) in
  Alcotest.(check bool) "both directions" true
    (List.mem Capture.Rx dirs && List.mem Capture.Tx dirs);
  (* Detach: no further recording. *)
  let n = Capture.count cap in
  Stack.set_capture cli None;
  Stack.ping cli ~ip:ip_right ~ident:9 ~seq:9 ~payload:Bytes.empty;
  run_for w (Dsim.Time.ms 5);
  Alcotest.(check int) "detached capture frozen" n (Capture.count cap)

let capture_summaries () =
  let w = make_world () in
  let cap = Capture.create () in
  Stack.set_capture w.left.nif.Core.Topology.stack (Some cap);
  Stack.ping w.left.nif.Core.Topology.stack ~ip:ip_right ~ident:3 ~seq:1
    ~payload:(Bytes.of_string "x");
  let l = w.left.nif.Core.Topology.stack in
  let ufd = get (Stack.udp_socket l) in
  ignore (Stack.udp_sendto l ufd ~ip:ip_right ~port:5353 ~buf:(Bytes.of_string "mdns?"));
  run_for w (Dsim.Time.ms 10);
  Alcotest.(check bool) "icmp summary" true
    (Capture.matching cap "ICMP echo-request" <> []);
  Alcotest.(check bool) "udp summary" true
    (Capture.matching cap "UDP, length 5" <> []);
  (* Never raises on garbage. *)
  Alcotest.(check bool) "garbage is summarized, not crashed" true
    (String.length (Capture.summarize (Bytes.make 3 '\xFF')) > 0)

let capture_limit () =
  let cap = Capture.create ~limit:2 () in
  for i = 1 to 5 do
    Capture.record cap ~at:(Dsim.Time.ns i) Capture.Rx (Bytes.create 20)
  done;
  Alcotest.(check int) "all counted" 5 (Capture.count cap);
  Alcotest.(check int) "only limit stored" 2 (List.length (Capture.entries cap));
  Capture.clear cap;
  Alcotest.(check int) "cleared" 0 (Capture.count cap)


let suite =
  suite
  @ [
      Alcotest.test_case "capture: handshake visible" `Quick capture_sees_handshake;
      Alcotest.test_case "capture: protocol summaries" `Quick capture_summaries;
      Alcotest.test_case "capture: bounded storage" `Quick capture_limit;
    ]
