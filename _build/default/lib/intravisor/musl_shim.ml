type t = { iv : Intravisor.t; cvm : Cvm.t; mutable calls : int }

let create iv cvm = { iv; cvm; calls = 0 }
let cvm t = t.cvm

let invoke t sc =
  t.calls <- t.calls + 1;
  Intravisor.syscall t.iv ~from:t.cvm sc

let clock_gettime t =
  match invoke t Syscall.Clock_gettime with
  | Intravisor.Vtime time, cost -> (time, cost)
  | (Intravisor.Vint _ | Intravisor.Vunit), _ ->
    invalid_arg "musl clock_gettime: kernel returned a non-time value"

let getpid t =
  match invoke t Syscall.Getpid with
  | Intravisor.Vint pid, cost -> (pid, cost)
  | (Intravisor.Vtime _ | Intravisor.Vunit), _ ->
    invalid_arg "musl getpid: kernel returned a non-int value"

let futex_wake t = snd (invoke t Syscall.Futex_wake)
let futex_wait_cost t = snd (invoke t Syscall.Futex_wait)
let write_console t s = snd (invoke t (Syscall.Write_console (String.length s)))
let calls t = t.calls
