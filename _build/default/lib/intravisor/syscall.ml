type t =
  | Clock_gettime
  | Nanosleep of Dsim.Time.t
  | Futex_wait
  | Futex_wake
  | Umtx_wait
  | Umtx_wake
  | Write_console of int
  | Getpid

let name = function
  | Clock_gettime -> "clock_gettime"
  | Nanosleep _ -> "nanosleep"
  | Futex_wait -> "futex(WAIT)"
  | Futex_wake -> "futex(WAKE)"
  | Umtx_wait -> "_umtx_op(WAIT)"
  | Umtx_wake -> "_umtx_op(WAKE)"
  | Write_console _ -> "write"
  | Getpid -> "getpid"

let translate_musl = function
  | Futex_wait -> Umtx_wait
  | Futex_wake -> Umtx_wake
  | other -> other

let kernel_cost_ns (cm : Dsim.Cost_model.t) = function
  | Clock_gettime -> cm.syscall_ns
  | Nanosleep _ -> cm.syscall_ns
  | Futex_wait | Umtx_wait -> cm.syscall_ns +. cm.umtx_wake_ns
  | Futex_wake | Umtx_wake -> cm.umtx_wake_ns
  | Write_console n -> cm.syscall_ns +. (0.2 *. float_of_int n)
  | Getpid -> cm.syscall_ns *. 0.5
