lib/intravisor/umtx.ml: Dsim List Option
