lib/intravisor/cvm.mli: Cheri Format
