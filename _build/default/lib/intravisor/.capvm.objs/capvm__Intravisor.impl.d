lib/intravisor/intravisor.ml: Cheri Cvm Dsim Host_os Syscall
