lib/intravisor/syscall.ml: Dsim
