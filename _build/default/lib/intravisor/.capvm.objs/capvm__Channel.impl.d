lib/intravisor/channel.ml: Bytes Cheri Cvm Intravisor
