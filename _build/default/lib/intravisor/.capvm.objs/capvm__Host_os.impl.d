lib/intravisor/host_os.ml: Dsim Syscall
