lib/intravisor/umtx.mli: Dsim
