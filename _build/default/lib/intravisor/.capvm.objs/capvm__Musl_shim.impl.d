lib/intravisor/musl_shim.ml: Cvm Intravisor String Syscall
