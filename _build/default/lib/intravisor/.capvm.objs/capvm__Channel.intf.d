lib/intravisor/channel.mli: Cheri Intravisor
