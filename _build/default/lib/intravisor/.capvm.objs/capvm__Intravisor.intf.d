lib/intravisor/intravisor.mli: Cheri Cvm Dsim Host_os Syscall
