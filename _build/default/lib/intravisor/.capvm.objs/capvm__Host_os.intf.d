lib/intravisor/host_os.mli: Dsim Syscall
