lib/intravisor/musl_shim.mli: Cvm Dsim Intravisor
