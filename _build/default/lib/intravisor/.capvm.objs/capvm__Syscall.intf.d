lib/intravisor/syscall.mli: Dsim
