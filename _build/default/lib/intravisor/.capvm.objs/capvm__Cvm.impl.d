lib/intravisor/cvm.ml: Cheri Format
