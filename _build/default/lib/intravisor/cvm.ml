type t = {
  name : string;
  id : int;
  region : Cheri.Capability.t;
  compartment : Cheri.Compartment.t;
  heap : Cheri.Alloc.t;
  entry_otype : Cheri.Otype.t;
  sealed_entry : Cheri.Capability.t;
  mutable trampolines : int;
}

let make ~name ~id ~region ~entry_otype ~sealed_entry =
  let ddc = Cheri.Capability.and_perms region Cheri.Perms.read_write in
  let pcc = Cheri.Capability.and_perms region Cheri.Perms.execute_only in
  {
    name;
    id;
    region;
    compartment = Cheri.Compartment.make ~name ~id ~ddc ~pcc;
    heap = Cheri.Alloc.create ~region:ddc;
    entry_otype;
    sealed_entry;
    trampolines = 0;
  }

let name t = t.name
let id t = t.id
let region t = t.region
let compartment t = t.compartment
let entry_otype t = t.entry_otype
let sealed_entry t = t.sealed_entry
let malloc t ?perms n = Cheri.Alloc.malloc t.heap ?perms n
let calloc t ?perms mem n = Cheri.Alloc.calloc t.heap ?perms mem n
let free t cap = Cheri.Alloc.free t.heap cap
let heap_live_bytes t = Cheri.Alloc.live_bytes t.heap
let sub_region t ~size = Cheri.Alloc.malloc t.heap size
let note_trampoline t = t.trampolines <- t.trampolines + 1
let trampoline_calls t = t.trampolines
let can_access t ~addr ~len ~write = Cheri.Compartment.can_access t.compartment ~addr ~len ~write

let pp fmt t =
  Format.fprintf fmt "cVM%d(%s) region=[0x%x,+0x%x) heap_live=%d tramp=%d" t.id
    t.name
    (Cheri.Capability.base t.region)
    (Cheri.Capability.length t.region)
    (heap_live_bytes t) t.trampolines
