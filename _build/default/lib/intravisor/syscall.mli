(** Host-OS syscalls reachable from a cVM.

    cVMs have no direct [SVC] path: every call goes through a trampoline
    into the Intravisor, which proxies it to CheriBSD — translating musl
    conventions to CheriBSD ones where they differ (the paper's example:
    musl thread synchronisation uses [futex], CheriBSD uses [_umtx_op]). *)

type t =
  | Clock_gettime  (** CLOCK_MONOTONIC_RAW, the paper's measurement clock. *)
  | Nanosleep of Dsim.Time.t
  | Futex_wait  (** musl name; proxied to [Umtx_wait]. *)
  | Futex_wake
  | Umtx_wait  (** CheriBSD native. *)
  | Umtx_wake
  | Write_console of int  (** [n] bytes to the console. *)
  | Getpid

val name : t -> string

val translate_musl : t -> t
(** The Intravisor proxy's musl→CheriBSD mapping (futex→umtx); native
    calls pass through. *)

val kernel_cost_ns : Dsim.Cost_model.t -> t -> float
(** CPU cost of the syscall body inside the host kernel. *)
