(** The CheriBSD host kernel, as seen from user space.

    Provides the two things the evaluation needs from the OS: the
    monotonic raw clock and syscall execution with realistic costs. A
    Baseline process enters via [SVC] (MMU path); a cVM never calls this
    directly — the Intravisor proxies on its behalf. *)

type t

val create : Dsim.Engine.t -> cost:Dsim.Cost_model.t -> t
val engine : t -> Dsim.Engine.t
val cost_model : t -> Dsim.Cost_model.t

val clock_monotonic_raw : t -> Dsim.Time.t
(** The timer value CLOCK_MONOTONIC_RAW reads. *)

val syscall_body_ns : t -> Syscall.t -> float
(** Kernel execution cost, excluding entry/exit. *)

val svc_entry_exit_ns : t -> float
(** The Baseline (non-CHERI, MMU) kernel entry + exit cost. *)

val syscalls_served : t -> int
val count_syscall : t -> Syscall.t -> unit
(** Bump the accounting (called by both entry paths). *)
