type t = {
  engine : Dsim.Engine.t;
  cost : Dsim.Cost_model.t;
  mutable served : int;
}

let create engine ~cost = { engine; cost; served = 0 }
let engine t = t.engine
let cost_model t = t.cost
let clock_monotonic_raw t = Dsim.Engine.now t.engine
let syscall_body_ns t sc = Syscall.kernel_cost_ns t.cost sc
let svc_entry_exit_ns t = t.cost.Dsim.Cost_model.mmu_syscall_extra_ns
let syscalls_served t = t.served
let count_syscall t _sc = t.served <- t.served + 1
