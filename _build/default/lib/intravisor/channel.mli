(** Capability channels: shared-memory rings between cVMs.

    CAP-VMs communicate through memory shared by capability: the
    Intravisor carves a buffer, then hands the producer a write-only
    view and the consumer a read-only view of the *same* bytes. Neither
    side can address the other's compartment, monotonicity prevents
    either view from being widened, and data moves without copies
    through the Intravisor — the mechanism Scenario 2's cVM1↔cVM2
    interaction builds on (and that ORC generalises for library
    sharing).

    Single-producer/single-consumer byte ring. Indices live on the
    OCaml side (modelling the head/tail cache-line pair); payload bytes
    live in simulated tagged memory and cross the boundary only through
    the endpoint capabilities. *)

type t

type endpoint = {
  cap : Cheri.Capability.t;  (** The view: write-only or read-only. *)
  channel : t;
}

val create :
  Intravisor.t -> name:string -> capacity:int -> endpoint * endpoint
(** [(producer, consumer)]. The buffer is carved from Intravisor-owned
    memory; capacity is rounded up to the tag granule. *)

val name : t -> string
val capacity : t -> int
val used : t -> int
val free_space : t -> int

val send : endpoint -> bytes -> int
(** Write through the producer view; returns bytes accepted (short when
    full). @raise Cheri.Fault.Capability_fault when called with a
    consumer (read-only) endpoint — the permission check is real. *)

val recv : endpoint -> max:int -> bytes
(** Read and consume through the consumer view (empty bytes when the
    ring is empty). Faults on a producer endpoint. *)

val peek_stats : t -> int * int
(** (total bytes sent, total bytes received). *)
