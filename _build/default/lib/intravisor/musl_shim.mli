(** The modified musl libc linked into every cVM.

    The paper replaced musl's [SVC] instructions with trampoline calls
    into the Intravisor; this shim is that replacement. Each call
    returns the value plus the CPU nanoseconds the call path consumed
    (trampolines + proxy + kernel), which is what the measurement
    harness charges to the calling thread. *)

type t

val create : Intravisor.t -> Cvm.t -> t
val cvm : t -> Cvm.t

val clock_gettime : t -> Dsim.Time.t * float
(** CLOCK_MONOTONIC_RAW through the trampoline path. The cost is the
    reason Scenario 1's measured ff_write is ~125 ns above Baseline's:
    both timestamps of a measurement pay the extra indirection. *)

val getpid : t -> int * float
val futex_wake : t -> float
(** Returns the CPU cost; the actual wake semantics live in {!Umtx}. *)

val futex_wait_cost : t -> float
val write_console : t -> string -> float
val calls : t -> int
