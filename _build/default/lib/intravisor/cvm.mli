(** A capability-VM: one isolated component in the single address space.

    A cVM is a thread of the Intravisor confined to a memory region by
    its DDC/PCC pair. It owns a heap allocator over that region (all
    application buffers come from here, so they are in-bounds by
    construction) and a sealed entry capability: the only way to
    transfer control into the cVM is to unseal that entry through the
    Intravisor's authority — the [blrs] sealed-branch of the paper. *)

type t

val make :
  name:string ->
  id:int ->
  region:Cheri.Capability.t ->
  entry_otype:Cheri.Otype.t ->
  sealed_entry:Cheri.Capability.t ->
  t

val name : t -> string
val id : t -> int
val region : t -> Cheri.Capability.t
val compartment : t -> Cheri.Compartment.t
val entry_otype : t -> Cheri.Otype.t
val sealed_entry : t -> Cheri.Capability.t

val malloc : t -> ?perms:Cheri.Perms.t -> int -> Cheri.Capability.t
(** Allocate from the cVM heap; the returned capability is bounded to
    the allocation and confined to the cVM region. *)

val calloc : t -> ?perms:Cheri.Perms.t -> Cheri.Tagged_memory.t -> int -> Cheri.Capability.t
val free : t -> Cheri.Capability.t -> unit
val heap_live_bytes : t -> int

val sub_region : t -> size:int -> Cheri.Capability.t
(** Carve a large sub-region (e.g. the DPDK EAL heap of a network cVM)
    out of the cVM's memory. *)

val note_trampoline : t -> unit
val trampoline_calls : t -> int

val can_access : t -> addr:int -> len:int -> write:bool -> bool
(** Hybrid-mode check against the cVM's DDC. *)

val pp : Format.formatter -> t -> unit
