type op = Request | Reply

type packet = {
  op : op;
  sender_mac : Nic.Mac_addr.t;
  sender_ip : Ipv4_addr.t;
  target_mac : Nic.Mac_addr.t;
  target_ip : Ipv4_addr.t;
}

let packet_len = 28

let set_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let get_u16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let set_ip b off ip =
  let v = Ipv4_addr.to_int32 ip in
  for i = 0 to 3 do
    Bytes.set b (off + i)
      (Char.chr (Int32.to_int (Int32.shift_right_logical v ((3 - i) * 8)) land 0xff))
  done

let get_ip b off =
  let v = ref 0l in
  for i = 0 to 3 do
    v := Int32.logor (Int32.shift_left !v 8) (Int32.of_int (Char.code (Bytes.get b (off + i))))
  done;
  Ipv4_addr.of_int32 !v

let build p =
  let b = Bytes.create packet_len in
  set_u16 b 0 1 (* htype ethernet *);
  set_u16 b 2 0x0800 (* ptype ipv4 *);
  Bytes.set b 4 '\006' (* hlen *);
  Bytes.set b 5 '\004' (* plen *);
  set_u16 b 6 (match p.op with Request -> 1 | Reply -> 2);
  Bytes.blit_string (Nic.Mac_addr.to_bytes p.sender_mac) 0 b 8 6;
  set_ip b 14 p.sender_ip;
  Bytes.blit_string (Nic.Mac_addr.to_bytes p.target_mac) 0 b 18 6;
  set_ip b 24 p.target_ip;
  b

let parse b ~off =
  if Bytes.length b - off < packet_len then Error "arp: packet too short"
  else if get_u16 b off <> 1 || get_u16 b (off + 2) <> 0x0800 then
    Error "arp: not ethernet/ipv4"
  else begin
    match get_u16 b (off + 6) with
    | (1 | 2) as opv ->
      Ok
        {
          op = (if opv = 1 then Request else Reply);
          sender_mac = Nic.Mac_addr.of_bytes_exn (Bytes.sub_string b (off + 8) 6);
          sender_ip = get_ip b (off + 14);
          target_mac = Nic.Mac_addr.of_bytes_exn (Bytes.sub_string b (off + 18) 6);
          target_ip = get_ip b (off + 24);
        }
    | v -> Error (Printf.sprintf "arp: unknown op %d" v)
  end

let request ~sender_mac ~sender_ip ~target_ip =
  {
    op = Request;
    sender_mac;
    sender_ip;
    target_mac = Nic.Mac_addr.zero;
    target_ip;
  }

let reply_to req ~mac =
  {
    op = Reply;
    sender_mac = mac;
    sender_ip = req.target_ip;
    target_mac = req.sender_mac;
    target_ip = req.sender_ip;
  }

let pp fmt p =
  match p.op with
  | Request ->
    Format.fprintf fmt "arp who-has %a tell %a" Ipv4_addr.pp p.target_ip
      Ipv4_addr.pp p.sender_ip
  | Reply ->
    Format.fprintf fmt "arp %a is-at %a" Ipv4_addr.pp p.sender_ip
      Nic.Mac_addr.pp p.sender_mac
