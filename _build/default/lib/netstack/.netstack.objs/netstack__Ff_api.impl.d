lib/netstack/ff_api.ml: Bytes Cheri Errno Stack
