lib/netstack/capture.mli: Dsim Format
