lib/netstack/errno.ml: Format
