lib/netstack/ethernet.mli: Format Nic
