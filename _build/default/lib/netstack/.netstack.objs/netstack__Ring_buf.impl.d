lib/netstack/ring_buf.ml: Bytes
