lib/netstack/errno.mli: Format
