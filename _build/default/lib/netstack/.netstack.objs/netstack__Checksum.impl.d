lib/netstack/checksum.ml: Bytes Char
