lib/netstack/stack.mli: Capture Cheri Dpdk Dsim Epoll Errno Ipv4_addr Nic Socket Tcp_cb
