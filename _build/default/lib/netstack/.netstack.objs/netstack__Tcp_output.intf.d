lib/netstack/tcp_output.mli: Tcp_cb Tcp_wire
