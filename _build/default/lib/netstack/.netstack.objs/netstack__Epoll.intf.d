lib/netstack/epoll.mli: Errno Format
