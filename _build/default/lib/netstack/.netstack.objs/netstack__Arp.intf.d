lib/netstack/arp.mli: Format Ipv4_addr Nic
