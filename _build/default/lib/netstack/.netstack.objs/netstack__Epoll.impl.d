lib/netstack/epoll.ml: Array Errno Format Hashtbl List String
