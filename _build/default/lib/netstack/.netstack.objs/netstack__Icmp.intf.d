lib/netstack/icmp.mli: Format
