lib/netstack/tcp_input.mli: Tcp_cb Tcp_seq Tcp_wire
