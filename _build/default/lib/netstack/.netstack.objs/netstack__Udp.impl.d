lib/netstack/udp.ml: Bytes Char Checksum Ipv4
