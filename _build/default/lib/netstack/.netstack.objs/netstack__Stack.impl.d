lib/netstack/stack.ml: Arp Arp_cache Bytes Capture Cheri Dpdk Dsim Epoll Errno Ethernet Hashtbl Icmp Ipv4 Ipv4_addr List Nic Queue Ring_buf Socket Tcp_cb Tcp_input Tcp_output Tcp_timer Tcp_wire Udp
