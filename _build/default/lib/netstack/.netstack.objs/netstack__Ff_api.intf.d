lib/netstack/ff_api.mli: Cheri Epoll Errno Ipv4_addr Stack
