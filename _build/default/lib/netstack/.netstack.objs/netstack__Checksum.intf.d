lib/netstack/checksum.mli:
