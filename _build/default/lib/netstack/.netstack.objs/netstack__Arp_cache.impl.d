lib/netstack/arp_cache.ml: Dsim Hashtbl Ipv4_addr List Nic Queue
