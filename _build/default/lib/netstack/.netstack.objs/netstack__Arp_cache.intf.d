lib/netstack/arp_cache.mli: Dsim Ipv4_addr Nic
