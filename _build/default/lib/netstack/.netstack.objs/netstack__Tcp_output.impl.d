lib/netstack/tcp_output.ml: Bytes Dsim Ring_buf Tcp_cb Tcp_seq Tcp_wire
