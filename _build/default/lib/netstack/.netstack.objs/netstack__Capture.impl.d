lib/netstack/capture.ml: Arp Bytes Dsim Ethernet Format Icmp Ipv4 Ipv4_addr List Printf String Tcp_wire Udp
