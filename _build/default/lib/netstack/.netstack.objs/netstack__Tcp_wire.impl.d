lib/netstack/tcp_wire.ml: Bytes Char Checksum Format Ipv4 List Tcp_seq
