lib/netstack/arp.ml: Bytes Char Format Int32 Ipv4_addr Nic Printf
