lib/netstack/udp.mli: Ipv4_addr
