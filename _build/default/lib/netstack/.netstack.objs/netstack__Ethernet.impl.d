lib/netstack/ethernet.ml: Bytes Char Format Nic Printf
