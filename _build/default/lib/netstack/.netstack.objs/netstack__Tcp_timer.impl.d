lib/netstack/tcp_timer.ml: Dsim Ring_buf Tcp_cb Tcp_output Tcp_seq
