lib/netstack/tcp_cb.ml: Bytes Dsim Format Int64 Ipv4_addr Ring_buf Tcp_seq Tcp_wire
