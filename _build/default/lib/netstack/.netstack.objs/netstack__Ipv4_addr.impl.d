lib/netstack/ipv4_addr.ml: Format Hashtbl Int32 Printf String
