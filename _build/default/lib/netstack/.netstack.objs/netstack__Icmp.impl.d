lib/netstack/icmp.ml: Bytes Char Checksum Format
