lib/netstack/tcp_input.ml: Bytes Dsim Float List Ring_buf Tcp_cb Tcp_output Tcp_seq Tcp_wire
