lib/netstack/tcp_wire.mli: Format Ipv4_addr Tcp_seq
