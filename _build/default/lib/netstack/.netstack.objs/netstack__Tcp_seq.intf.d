lib/netstack/tcp_seq.mli: Format
