lib/netstack/ipv4_addr.mli: Format
