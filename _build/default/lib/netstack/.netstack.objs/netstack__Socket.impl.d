lib/netstack/socket.ml: Epoll Errno Hashtbl Ipv4_addr List Queue Tcp_cb
