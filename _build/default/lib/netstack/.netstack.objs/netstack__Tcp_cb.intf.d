lib/netstack/tcp_cb.mli: Dsim Format Ipv4_addr Ring_buf Tcp_seq Tcp_wire
