lib/netstack/ring_buf.mli:
