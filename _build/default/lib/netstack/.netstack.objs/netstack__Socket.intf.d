lib/netstack/socket.mli: Epoll Errno Ipv4_addr Queue Tcp_cb
