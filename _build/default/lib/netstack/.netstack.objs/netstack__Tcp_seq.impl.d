lib/netstack/tcp_seq.ml: Format
