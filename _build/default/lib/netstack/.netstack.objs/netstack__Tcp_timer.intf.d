lib/netstack/tcp_timer.mli: Tcp_cb
