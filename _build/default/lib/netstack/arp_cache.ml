type entry = { mac : Nic.Mac_addr.t; expires : Dsim.Time.t }

type t = {
  entry_lifetime : Dsim.Time.t;
  max_pending : int;
  table : (Ipv4_addr.t, entry) Hashtbl.t;
  pending : (Ipv4_addr.t, bytes Queue.t) Hashtbl.t;
  last_request : (Ipv4_addr.t, Dsim.Time.t) Hashtbl.t;
}

let request_interval = Dsim.Time.ms 100

let create ?(entry_lifetime = Dsim.Time.sec 60) ?(max_pending_per_ip = 16) () =
  {
    entry_lifetime;
    max_pending = max_pending_per_ip;
    table = Hashtbl.create 16;
    pending = Hashtbl.create 8;
    last_request = Hashtbl.create 8;
  }

let lookup t ~now ip =
  match Hashtbl.find_opt t.table ip with
  | None -> None
  | Some e ->
    if Dsim.Time.(now > e.expires) then begin
      Hashtbl.remove t.table ip;
      None
    end
    else Some e.mac

let insert t ~now ip mac =
  Hashtbl.replace t.table ip
    { mac; expires = Dsim.Time.add now t.entry_lifetime }

let enqueue_pending t ip pkt =
  let q =
    match Hashtbl.find_opt t.pending ip with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace t.pending ip q;
      q
  in
  if Queue.length q >= t.max_pending then false
  else begin
    Queue.push pkt q;
    true
  end

let take_pending t ip =
  match Hashtbl.find_opt t.pending ip with
  | None -> []
  | Some q ->
    Hashtbl.remove t.pending ip;
    List.rev (Queue.fold (fun acc x -> x :: acc) [] q)

let request_outstanding t ~now ip =
  match Hashtbl.find_opt t.last_request ip with
  | Some at when Dsim.Time.(Dsim.Time.diff now at < request_interval) -> true
  | _ ->
    Hashtbl.replace t.last_request ip now;
    false

let entries t =
  Hashtbl.fold (fun ip e acc -> (ip, e.mac) :: acc) t.table []
