(** IPv4 addresses. *)

type t

val of_int32 : int32 -> t
val to_int32 : t -> int32
val make : int -> int -> int -> int -> t
val of_string_exn : string -> t
(** Parse dotted quad. @raise Invalid_argument on syntax. *)

val any : t  (** 0.0.0.0 *)

val broadcast : t  (** 255.255.255.255 *)

val localhost : t

val in_same_subnet : t -> t -> prefix:int -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
