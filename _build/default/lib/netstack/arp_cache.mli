(** ARP neighbour cache with pending-packet queues.

    While an IP is unresolved, outgoing packets queue here (bounded) and
    flush on the reply. Entries age out after a configurable lifetime,
    checked lazily on lookup. *)

type t

val create :
  ?entry_lifetime:Dsim.Time.t -> ?max_pending_per_ip:int -> unit -> t

val lookup : t -> now:Dsim.Time.t -> Ipv4_addr.t -> Nic.Mac_addr.t option
val insert : t -> now:Dsim.Time.t -> Ipv4_addr.t -> Nic.Mac_addr.t -> unit

val enqueue_pending : t -> Ipv4_addr.t -> bytes -> bool
(** Queue an IP packet awaiting resolution; [false] (drop) when the
    per-IP queue is full. *)

val take_pending : t -> Ipv4_addr.t -> bytes list
(** Drain the queue for a freshly resolved IP, oldest first. *)

val request_outstanding : t -> now:Dsim.Time.t -> Ipv4_addr.t -> bool
(** True if a request was sent recently (rate-limits re-requests);
    marks one as sent when it returns false. *)

val entries : t -> (Ipv4_addr.t * Nic.Mac_addr.t) list
