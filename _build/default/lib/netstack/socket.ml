type tcp_sock = {
  fd : int;
  cb : Tcp_cb.t;
  mutable listening : bool;
  mutable backlog : int;
  accept_q : tcp_sock Queue.t;
  mutable pending_error : Errno.t option;
  mutable connect_started : bool;
  mutable closed_by_app : bool;
}

type udp_sock = {
  ufd : int;
  mutable uport : int option;
  rcv_q : (Ipv4_addr.t * int * bytes) Queue.t;
  max_rcv_q : int;
}

type sock = Tcp of tcp_sock | Udp of udp_sock | Epoll_inst of Epoll.t

type table = {
  socks : (int, sock) Hashtbl.t;
  max_fds : int;
  mutable next_hint : int;
}

(* fds start at 3, as stdin/stdout/stderr are taken in the cVM. *)
let first_fd = 3

let create_table ?(max_fds = 1024) () =
  { socks = Hashtbl.create 64; max_fds; next_hint = first_fd }

let alloc t build =
  if Hashtbl.length t.socks >= t.max_fds then Error Errno.EMFILE
  else begin
    let rec probe fd =
      let fd = if fd >= first_fd + t.max_fds then first_fd else fd in
      if Hashtbl.mem t.socks fd then probe (fd + 1) else fd
    in
    let fd = probe t.next_hint in
    t.next_hint <- fd + 1;
    let sock = build fd in
    Hashtbl.replace t.socks fd sock;
    Ok (fd, sock)
  end

let find t fd = Hashtbl.find_opt t.socks fd

let find_tcp t fd =
  match find t fd with
  | Some (Tcp s) -> Ok s
  | Some _ -> Error Errno.EOPNOTSUPP
  | None -> Error Errno.EBADF

let find_udp t fd =
  match find t fd with
  | Some (Udp s) -> Ok s
  | Some _ -> Error Errno.EOPNOTSUPP
  | None -> Error Errno.EBADF

let find_epoll t fd =
  match find t fd with
  | Some (Epoll_inst e) -> Ok e
  | Some _ -> Error Errno.EINVAL
  | None -> Error Errno.EBADF

let release t fd = Hashtbl.remove t.socks fd
let fds t = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.socks [] |> List.sort compare
let live_count t = Hashtbl.length t.socks

let iter_tcp t f =
  Hashtbl.iter (fun _ s -> match s with Tcp ts -> f ts | Udp _ | Epoll_inst _ -> ()) t.socks

let tcp_readiness s =
  let open Tcp_cb in
  let ev = ref 0 in
  if s.listening then begin
    if not (Queue.is_empty s.accept_q) then ev := !ev lor Epoll.epollin
  end
  else begin
    let cb = s.cb in
    if readable_bytes cb > 0 then ev := !ev lor Epoll.epollin;
    (* EOF is readable: read() returns 0. *)
    if cb.fin_received && readable_bytes cb = 0 then
      ev := !ev lor Epoll.epollin lor Epoll.epollhup;
    (match cb.state with
    | Established | Close_wait ->
      if writable_space cb > 0 then ev := !ev lor Epoll.epollout
    | Closed | Listen | Syn_sent | Syn_received | Fin_wait_1 | Fin_wait_2
    | Closing | Last_ack | Time_wait -> ());
    (match cb.state with
    | Closed when s.connect_started -> ev := !ev lor Epoll.epollhup
    | _ -> ())
  end;
  if s.pending_error <> None then ev := !ev lor Epoll.epollerr lor Epoll.epollin;
  !ev

let udp_readiness s =
  let ev = ref Epoll.epollout in
  if not (Queue.is_empty s.rcv_q) then ev := !ev lor Epoll.epollin;
  !ev
