type header = { src_port : int; dst_port : int; length : int }

let header_len = 8

let set_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let get_u16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let build ~src ~dst ~src_port ~dst_port ~payload =
  let len = header_len + Bytes.length payload in
  let b = Bytes.create len in
  set_u16 b 0 src_port;
  set_u16 b 2 dst_port;
  set_u16 b 4 len;
  set_u16 b 6 0;
  Bytes.blit payload 0 b header_len (Bytes.length payload);
  let init = Ipv4.pseudo_header_sum ~src ~dst ~protocol:Ipv4.Udp ~len in
  let csum = Checksum.compute ~init b ~off:0 ~len in
  (* RFC 768: a computed zero checksum is transmitted as 0xffff. *)
  set_u16 b 6 (if csum = 0 then 0xffff else csum);
  b

let parse ~src ~dst b ~off ~len =
  if len < header_len then Error "udp: truncated"
  else begin
    let length = get_u16 b (off + 4) in
    if length < header_len || length > len then Error "udp: bad length"
    else begin
      let csum = get_u16 b (off + 6) in
      let ok =
        csum = 0
        ||
        let init = Ipv4.pseudo_header_sum ~src ~dst ~protocol:Ipv4.Udp ~len:length in
        Checksum.compute ~init b ~off ~len:length = 0
      in
      if not ok then Error "udp: bad checksum"
      else
        Ok
          ( { src_port = get_u16 b off; dst_port = get_u16 b (off + 2); length },
            off + header_len )
    end
  end
