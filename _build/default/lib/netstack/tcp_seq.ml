type t = int

let mask = 0xFFFFFFFF
let of_int v = v land mask
let add a n = (a + n) land mask

let sub a b =
  let d = (a - b) land mask in
  if d land 0x80000000 <> 0 then d - 0x100000000 else d

let lt a b = sub a b < 0
let le a b = sub a b <= 0
let gt a b = sub a b > 0
let ge a b = sub a b >= 0
let between x ~low ~high = le low x && lt x high
let max a b = if ge a b then a else b
let pp fmt t = Format.fprintf fmt "%u" t
