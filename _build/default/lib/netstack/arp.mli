(** ARP for IPv4 over Ethernet (RFC 826). *)

type op = Request | Reply

type packet = {
  op : op;
  sender_mac : Nic.Mac_addr.t;
  sender_ip : Ipv4_addr.t;
  target_mac : Nic.Mac_addr.t;
  target_ip : Ipv4_addr.t;
}

val packet_len : int
(** 28 bytes. *)

val build : packet -> bytes
val parse : bytes -> off:int -> (packet, string) result

val request : sender_mac:Nic.Mac_addr.t -> sender_ip:Ipv4_addr.t -> target_ip:Ipv4_addr.t -> packet
val reply_to : packet -> mac:Nic.Mac_addr.t -> packet
(** Build the reply to a request aimed at us ([mac] is our address). *)

val pp : Format.formatter -> packet -> unit
