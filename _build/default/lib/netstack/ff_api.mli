(** The F-Stack application API, CHERI-adapted.

    This is the layer whose signatures the paper changed, e.g.

    {v
    - ssize_t ff_write(int fd, const void *buf, size_t nbytes);
    + ssize_t ff_write(int fd, const void *__capability buf, size_t nbytes);
    v}

    Buffer arguments are {!Cheri.Capability.t} values instead of raw
    addresses: every byte moved between the application and the socket
    buffers is authorised by the caller's capability. A violation —
    wrong bounds, missing permission, cleared tag — raises
    {!Cheri.Fault.Capability_fault}, i.e. the compartment traps exactly
    as in the paper's Fig. 3; it never becomes a recoverable errno. *)

type t

val attach : Stack.t -> Cheri.Tagged_memory.t -> t
(** Bind the API to a stack instance and the shared address space. *)

val stack : t -> Stack.t

val ff_socket : t -> (int, Errno.t) result
(** [socket(AF_INET, SOCK_STREAM, 0)]. *)

val ff_bind : t -> int -> port:int -> (unit, Errno.t) result
val ff_listen : t -> int -> backlog:int -> (unit, Errno.t) result
val ff_accept : t -> int -> (int * Ipv4_addr.t * int, Errno.t) result
val ff_connect : t -> int -> ip:Ipv4_addr.t -> port:int -> (unit, Errno.t) result

val ff_write :
  t -> int -> buf:Cheri.Capability.t -> nbytes:int -> (int, Errno.t) result
(** Copy [nbytes] from the capability's cursor into the socket send
    buffer (short counts on back-pressure). The load through [buf] is
    capability-checked before any stack state changes. *)

val ff_read :
  t -> int -> buf:Cheri.Capability.t -> nbytes:int -> (int, Errno.t) result
(** Fill at most [nbytes] through [buf] (store-checked); [Ok 0] = EOF. *)

val ff_close : t -> int -> (unit, Errno.t) result
val ff_epoll_create : t -> (int, Errno.t) result

val ff_epoll_ctl :
  t -> epfd:int -> op:[ `Add | `Mod | `Del ] -> fd:int -> Epoll.events ->
  (unit, Errno.t) result

val ff_epoll_wait :
  t -> epfd:int -> max:int -> ((int * Epoll.events) list, Errno.t) result

val ff_sendto :
  t -> int -> ip:Ipv4_addr.t -> port:int -> buf:Cheri.Capability.t ->
  nbytes:int -> (unit, Errno.t) result

val ff_recvfrom :
  t -> int -> buf:Cheri.Capability.t -> nbytes:int ->
  ((Ipv4_addr.t * int * int) option, Errno.t) result
(** [(src_ip, src_port, len)], or [None] when the queue is empty. *)
