type events = int

let epollin = 0x001
let epollout = 0x004
let epollerr = 0x008
let epollhup = 0x010
let has set flag = set land flag <> 0

type t = {
  interests : (int, events) Hashtbl.t;
  mutable rotation : int;  (* fairness cursor for wait *)
}

let create () = { interests = Hashtbl.create 16; rotation = 0 }

let ctl_add t ~fd ev =
  if Hashtbl.mem t.interests fd then Error Errno.EINVAL
  else begin
    Hashtbl.replace t.interests fd ev;
    Ok ()
  end

let ctl_mod t ~fd ev =
  if not (Hashtbl.mem t.interests fd) then Error Errno.EINVAL
  else begin
    Hashtbl.replace t.interests fd ev;
    Ok ()
  end

let ctl_del t ~fd =
  if not (Hashtbl.mem t.interests fd) then Error Errno.EINVAL
  else begin
    Hashtbl.remove t.interests fd;
    Ok ()
  end

let forget t ~fd = Hashtbl.remove t.interests fd
let interest t ~fd = Hashtbl.find_opt t.interests fd

let registered t =
  Hashtbl.fold (fun fd ev acc -> (fd, ev) :: acc) t.interests []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let wait t ~readiness ~max =
  let all = registered t in
  let n = List.length all in
  if n = 0 || max <= 0 then []
  else begin
    (* Rotate the scan start so a hot low-numbered fd cannot starve the
       rest when [max] truncates the result. *)
    let start = t.rotation mod n in
    t.rotation <- t.rotation + 1;
    let arr = Array.of_list all in
    let out = ref [] and count = ref 0 in
    for i = 0 to n - 1 do
      if !count < max then begin
        let fd, want = arr.((start + i) mod n) in
        let ready = readiness fd in
        let reported = ready land (want lor epollerr lor epollhup) in
        if reported <> 0 then begin
          out := (fd, reported) :: !out;
          incr count
        end
      end
    done;
    List.rev !out
  end

let pp_events fmt ev =
  let names =
    List.filter_map
      (fun (f, n) -> if has ev f then Some n else None)
      [ (epollin, "IN"); (epollout, "OUT"); (epollerr, "ERR"); (epollhup, "HUP") ]
  in
  Format.pp_print_string fmt (String.concat "|" names)
