(** Packet capture (tcpdump-lite).

    Attach to a {!Stack} to record every frame the stack sends or
    receives, with one-line protocol summaries for debugging and for
    asserting on traffic in tests. Bounded; recording is O(1) and the
    decode work happens only when entries are rendered. *)

type direction = Rx | Tx

type entry = {
  at : Dsim.Time.t;
  dir : direction;
  frame : bytes;  (** The full frame as it crossed the device. *)
}

type t

val create : ?limit:int -> unit -> t
(** Keeps the first [limit] frames (default 4096); later ones are
    counted but not stored. *)

val record : t -> at:Dsim.Time.t -> direction -> bytes -> unit
val entries : t -> entry list
(** Chronological. *)

val count : t -> int
(** Total recorded calls, including frames beyond the storage limit. *)

val clear : t -> unit

val summarize : bytes -> string
(** One-line decode: ["IP 10.0.0.1.40000 > 10.0.0.2.5201: Flags [S], seq
    100, win 16384, length 0"], ["ARP, Request who-has 10.0.0.2 tell
    10.0.0.1"], etc. Never raises on malformed input. *)

val pp_entry : Format.formatter -> entry -> unit
val dump : Format.formatter -> t -> unit

val matching : t -> string -> entry list
(** Entries whose summary contains the substring. *)
