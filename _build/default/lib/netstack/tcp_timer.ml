open Tcp_cb

let max_backoff = 8

let give_up cb ctx =
  let event =
    match cb.state with Syn_sent | Syn_received -> Conn_refused | _ -> Conn_reset
  in
  ctx.on_event event;
  to_closed cb ctx

let backoff_rto cb =
  cb.rtx_backoff <- cb.rtx_backoff + 1;
  cb.rto <- Dsim.Time.min (Dsim.Time.mul cb.rto 2) cb.config.rto_max

let on_rto cb ctx =
  if cb.rtx_backoff >= max_backoff then give_up cb ctx
  else begin
    backoff_rto cb;
    (match cb.state with
    | Syn_sent | Syn_received -> Tcp_output.retransmit_head cb ctx
    | _ ->
      if cb.snd_wnd = 0 && flight_size cb = 0 && Ring_buf.length cb.snd_buf > 0
      then
        (* Persist: probe the closed window with one byte. *)
        Tcp_output.send_window_probe cb ctx
      else begin
        (* RFC 5681 timeout: collapse to one segment and go back to
           snd_una; flush (called right after by the loop) resends. *)
        cb.ssthresh <- max (flight_size cb / 2) (2 * cb.mss);
        cb.cwnd <- cb.mss;
        cb.in_fast_recovery <- false;
        cb.dup_acks <- 0;
        (* Rolling back snd_nxt un-sends the FIN if it was out. *)
        if cb.fin_sent && Tcp_seq.lt cb.snd_una cb.snd_nxt then
          cb.fin_sent <- false;
        cb.snd_nxt <- cb.snd_una;
        cb.retransmissions <- cb.retransmissions + 1
      end);
    cb.rtx_deadline <- Some (Dsim.Time.add (ctx.now ()) cb.rto)
  end

let check cb ctx =
  let now = ctx.now () in
  (match cb.time_wait_deadline with
  | Some d when Dsim.Time.(now >= d) -> to_closed cb ctx
  | _ -> ());
  (match cb.rtx_deadline with
  | Some d when Dsim.Time.(now >= d) && cb.state <> Closed -> on_rto cb ctx
  | _ -> ());
  match cb.ack_deadline with
  | Some d when Dsim.Time.(now >= d) -> cb.need_ack_now <- true
  | _ -> ()
