(** IPv4 (RFC 791): header construction, parsing and validation.

    No options and no fragmentation — the stack always sends DF packets
    sized to the device MTU, as F-Stack/DPDK data paths do. *)

type protocol = Icmp | Tcp | Udp | Unknown_proto of int

type header = {
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  protocol : protocol;
  ttl : int;
  ident : int;
  total_len : int;  (** Header + payload, bytes. *)
}

val header_len : int
(** 20 (no options). *)

val protocol_to_int : protocol -> int
val protocol_of_int : int -> protocol

val build_into : header -> bytes -> off:int -> unit
(** Write a 20-byte header (with checksum) at [off]; [total_len] must
    already count the payload that follows. *)

val build : header -> payload:bytes -> bytes

val parse : bytes -> off:int -> len:int -> (header * int, string) result
(** Validates version, header length, checksum and total length against
    [len] available bytes; returns the header and payload offset. *)

val pseudo_header_sum : src:Ipv4_addr.t -> dst:Ipv4_addr.t -> protocol:protocol -> len:int -> int
(** One's-complement sum of the TCP/UDP pseudo-header, for transport
    checksums. *)

val pp_header : Format.formatter -> header -> unit
