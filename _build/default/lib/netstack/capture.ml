type direction = Rx | Tx

type entry = { at : Dsim.Time.t; dir : direction; frame : bytes }

type t = { limit : int; mutable entries : entry list; mutable count : int }

let create ?(limit = 4096) () = { limit; entries = []; count = 0 }

let record t ~at dir frame =
  t.count <- t.count + 1;
  if t.count <= t.limit then t.entries <- { at; dir; frame } :: t.entries

let entries t = List.rev t.entries
let count t = t.count

let clear t =
  t.entries <- [];
  t.count <- 0

let tcp_flags_string (f : Tcp_wire.flags) =
  let parts =
    List.filter_map
      (fun (b, s) -> if b then Some s else None)
      [ (f.Tcp_wire.syn, "S"); (f.Tcp_wire.fin, "F"); (f.Tcp_wire.rst, "R");
        (f.Tcp_wire.psh, "P"); (f.Tcp_wire.ack, ".") ]
  in
  String.concat "" parts

let summarize_tcp ~src ~dst buf ~off ~len =
  match Tcp_wire.parse ~src ~dst buf ~off ~len with
  | Error e -> Printf.sprintf "TCP <%s>" e
  | Ok (h, payload_off) ->
    Printf.sprintf "IP %s.%d > %s.%d: Flags [%s], seq %u, ack %u, win %d, length %d"
      (Ipv4_addr.to_string src) h.Tcp_wire.src_port (Ipv4_addr.to_string dst)
      h.Tcp_wire.dst_port (tcp_flags_string h.Tcp_wire.flags) h.Tcp_wire.seq
      h.Tcp_wire.ack h.Tcp_wire.window
      (off + len - payload_off)

let summarize_udp ~src ~dst buf ~off ~len =
  match Udp.parse ~src ~dst buf ~off ~len with
  | Error e -> Printf.sprintf "UDP <%s>" e
  | Ok (h, _) ->
    Printf.sprintf "IP %s.%d > %s.%d: UDP, length %d" (Ipv4_addr.to_string src)
      h.Udp.src_port (Ipv4_addr.to_string dst) h.Udp.dst_port
      (h.Udp.length - Udp.header_len)

let summarize_icmp ~src ~dst buf ~off ~len =
  match Icmp.parse buf ~off ~len with
  | Error e -> Printf.sprintf "ICMP <%s>" e
  | Ok msg ->
    Printf.sprintf "IP %s > %s: ICMP %s" (Ipv4_addr.to_string src)
      (Ipv4_addr.to_string dst)
      (Format.asprintf "%a" Icmp.pp msg)

let summarize frame =
  match Ethernet.parse frame with
  | Error e -> Printf.sprintf "<%s>" e
  | Ok (eth, off) -> (
    match eth.Ethernet.ethertype with
    | Ethernet.Arp -> (
      match Arp.parse frame ~off with
      | Error e -> Printf.sprintf "ARP <%s>" e
      | Ok p -> Format.asprintf "ARP, %a" Arp.pp p)
    | Ethernet.Unknown v -> Printf.sprintf "ethertype 0x%04x, length %d" v (Bytes.length frame)
    | Ethernet.Ipv4 -> (
      match Ipv4.parse frame ~off ~len:(Bytes.length frame - off) with
      | Error e -> Printf.sprintf "IP <%s>" e
      | Ok (ip, poff) -> (
        let plen = ip.Ipv4.total_len - (poff - off) in
        let src = ip.Ipv4.src and dst = ip.Ipv4.dst in
        match ip.Ipv4.protocol with
        | Ipv4.Tcp -> summarize_tcp ~src ~dst frame ~off:poff ~len:plen
        | Ipv4.Udp -> summarize_udp ~src ~dst frame ~off:poff ~len:plen
        | Ipv4.Icmp -> summarize_icmp ~src ~dst frame ~off:poff ~len:plen
        | Ipv4.Unknown_proto p ->
          Printf.sprintf "IP %s > %s: protocol %d" (Ipv4_addr.to_string src)
            (Ipv4_addr.to_string dst) p)))

let pp_entry fmt e =
  Format.fprintf fmt "%a %s %s" Dsim.Time.pp e.at
    (match e.dir with Rx -> "<" | Tx -> ">")
    (summarize e.frame)

let dump fmt t = List.iter (fun e -> Format.fprintf fmt "%a@." pp_entry e) (entries t)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let matching t needle =
  List.filter (fun e -> contains (summarize e.frame) needle) (entries t)
