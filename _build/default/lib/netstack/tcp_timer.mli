(** Poll-driven TCP timers.

    F-Stack has no interrupt context: the main loop calls [check] for
    every connection on each iteration. Handles the retransmission
    timer (with exponential backoff and go-back-N on expiry), the
    zero-window persist probe, the delayed-ACK deadline (fired by the
    subsequent {!Tcp_output.flush}) and the TIME_WAIT 2MSL expiry. *)

val max_backoff : int
(** Retransmission attempts before the connection is dropped. *)

val check : Tcp_cb.t -> Tcp_cb.ctx -> unit
