(** Level-triggered epoll, the readiness mechanism the paper moved
    iperf3 onto ("we replaced the select function with the epoll
    mechanism, which adapts better to F-Stack"). *)

type events = int
(** Bitmask. *)

val epollin : events
val epollout : events
val epollerr : events
val epollhup : events

val has : events -> events -> bool
(** [has set flag]. *)

type t

val create : unit -> t

val ctl_add : t -> fd:int -> events -> (unit, Errno.t) result
(** [Error EINVAL] if already registered. *)

val ctl_mod : t -> fd:int -> events -> (unit, Errno.t) result
val ctl_del : t -> fd:int -> (unit, Errno.t) result
val forget : t -> fd:int -> unit
(** Silent removal when a registered fd is closed. *)

val interest : t -> fd:int -> events option
val registered : t -> (int * events) list

val wait : t -> readiness:(int -> events) -> max:int -> (int * events) list
(** Level-triggered poll: for each registered fd, intersect its interest
    set (plus the always-reported ERR/HUP) with [readiness fd]; report
    up to [max] fds, round-robin-fair across calls. *)

val pp_events : Format.formatter -> events -> unit
