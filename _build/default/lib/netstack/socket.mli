(** Socket objects and the per-stack file-descriptor table.

    Pure bookkeeping (allocation, readiness, accept queues); all
    wire-facing behaviour lives in {!Stack}, which owns one [table] per
    stack instance, exactly as each F-Stack instance owns its private fd
    space (fds are not shared between cVMs). *)

type tcp_sock = {
  fd : int;
  cb : Tcp_cb.t;
  mutable listening : bool;
  mutable backlog : int;
  accept_q : tcp_sock Queue.t;
  mutable pending_error : Errno.t option;
  mutable connect_started : bool;
  mutable closed_by_app : bool;
}

type udp_sock = {
  ufd : int;
  mutable uport : int option;
  rcv_q : (Ipv4_addr.t * int * bytes) Queue.t;
  max_rcv_q : int;
}

type sock =
  | Tcp of tcp_sock
  | Udp of udp_sock
  | Epoll_inst of Epoll.t

type table

val create_table : ?max_fds:int -> unit -> table

val alloc : table -> (int -> sock) -> (int * sock, Errno.t) result
(** Allocate the lowest free fd and install the socket built by the
    callback. [Error EMFILE] when the table is full. *)

val find : table -> int -> sock option
val find_tcp : table -> int -> (tcp_sock, Errno.t) result
val find_udp : table -> int -> (udp_sock, Errno.t) result
val find_epoll : table -> int -> (Epoll.t, Errno.t) result
val release : table -> int -> unit
val fds : table -> int list
val live_count : table -> int

val iter_tcp : table -> (tcp_sock -> unit) -> unit

(** {1 Readiness (level-triggered)} *)

val tcp_readiness : tcp_sock -> Epoll.events
val udp_readiness : udp_sock -> Epoll.events
