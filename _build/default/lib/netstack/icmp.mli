(** ICMP echo (ping), the only ICMP the stack answers — enough for the
    quickstart example and for liveness probes in tests. *)

type message =
  | Echo_request of { ident : int; seq : int; data : bytes }
  | Echo_reply of { ident : int; seq : int; data : bytes }
  | Other of { typ : int; code : int }

val build : message -> bytes
val parse : bytes -> off:int -> len:int -> (message, string) result
(** Validates the ICMP checksum. *)

val reply_to : message -> message option
(** The echo reply for a request; [None] for anything else. *)

val pp : Format.formatter -> message -> unit
