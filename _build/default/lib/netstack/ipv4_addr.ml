type t = int32

let of_int32 v = v
let to_int32 t = t

let make a b c d =
  let octet x =
    if x < 0 || x > 255 then invalid_arg "Ipv4_addr.make: octet out of range";
    Int32.of_int x
  in
  let ( <<< ) v n = Int32.shift_left v n in
  Int32.logor
    (Int32.logor (octet a <<< 24) (octet b <<< 16))
    (Int32.logor (octet c <<< 8) (octet d))

let of_string_exn s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
    match
      (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d)
    with
    | Some a, Some b, Some c, Some d -> make a b c d
    | _ -> invalid_arg ("Ipv4_addr.of_string_exn: " ^ s))
  | _ -> invalid_arg ("Ipv4_addr.of_string_exn: " ^ s)

let any = 0l
let broadcast = 0xffffffffl
let localhost = make 127 0 0 1

let mask_of_prefix prefix =
  if prefix <= 0 then 0l
  else if prefix >= 32 then 0xffffffffl
  else Int32.shift_left 0xffffffffl (32 - prefix)

let in_same_subnet a b ~prefix =
  let m = mask_of_prefix prefix in
  Int32.equal (Int32.logand a m) (Int32.logand b m)

let equal = Int32.equal
let compare = Int32.compare
let hash = Hashtbl.hash

let to_string t =
  let b n = Int32.to_int (Int32.logand (Int32.shift_right_logical t n) 0xffl) in
  Printf.sprintf "%d.%d.%d.%d" (b 24) (b 16) (b 8) (b 0)

let pp fmt t = Format.pp_print_string fmt (to_string t)
