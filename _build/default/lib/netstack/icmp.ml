type message =
  | Echo_request of { ident : int; seq : int; data : bytes }
  | Echo_reply of { ident : int; seq : int; data : bytes }
  | Other of { typ : int; code : int }

let set_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let get_u16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let build_echo ~typ ~ident ~seq ~data =
  let b = Bytes.create (8 + Bytes.length data) in
  Bytes.set b 0 (Char.chr typ);
  Bytes.set b 1 '\000' (* code *);
  set_u16 b 2 0 (* checksum placeholder *);
  set_u16 b 4 ident;
  set_u16 b 6 seq;
  Bytes.blit data 0 b 8 (Bytes.length data);
  set_u16 b 2 (Checksum.compute b ~off:0 ~len:(Bytes.length b));
  b

let build = function
  | Echo_request { ident; seq; data } -> build_echo ~typ:8 ~ident ~seq ~data
  | Echo_reply { ident; seq; data } -> build_echo ~typ:0 ~ident ~seq ~data
  | Other { typ; code } ->
    let b = Bytes.create 8 in
    Bytes.set b 0 (Char.chr typ);
    Bytes.set b 1 (Char.chr code);
    set_u16 b 2 (Checksum.compute b ~off:0 ~len:8);
    b

let parse b ~off ~len =
  if len < 8 then Error "icmp: truncated"
  else if not (Checksum.valid b ~off ~len) then Error "icmp: bad checksum"
  else begin
    let typ = Char.code (Bytes.get b off) in
    let code = Char.code (Bytes.get b (off + 1)) in
    let ident = get_u16 b (off + 4) and seq = get_u16 b (off + 6) in
    let data = Bytes.sub b (off + 8) (len - 8) in
    match typ with
    | 8 when code = 0 -> Ok (Echo_request { ident; seq; data })
    | 0 when code = 0 -> Ok (Echo_reply { ident; seq; data })
    | _ -> Ok (Other { typ; code })
  end

let reply_to = function
  | Echo_request { ident; seq; data } -> Some (Echo_reply { ident; seq; data })
  | Echo_reply _ | Other _ -> None

let pp fmt = function
  | Echo_request { ident; seq; data } ->
    Format.fprintf fmt "echo-request id=%d seq=%d len=%d" ident seq (Bytes.length data)
  | Echo_reply { ident; seq; data } ->
    Format.fprintf fmt "echo-reply id=%d seq=%d len=%d" ident seq (Bytes.length data)
  | Other { typ; code } -> Format.fprintf fmt "icmp type=%d code=%d" typ code
