(** TCP segment emission.

    [flush] is the single exit point for a connection: it sends as much
    buffered data as the congestion and peer windows allow, appends the
    FIN once the buffer drains, and falls back to a pure ACK when the
    delayed-ACK machinery demands one. The F-Stack main loop calls it
    for every active connection on every poll iteration. *)

val flush : Tcp_cb.t -> Tcp_cb.ctx -> unit

val send_ack : Tcp_cb.t -> Tcp_cb.ctx -> unit
(** Emit an immediate pure ACK (window update / duplicate ACK). *)

val send_syn_ack : Tcp_cb.t -> Tcp_cb.ctx -> unit
(** (Re)send the SYN-ACK of a [Syn_received] connection. *)

val retransmit_head : Tcp_cb.t -> Tcp_cb.ctx -> unit
(** Resend one MSS starting at [snd_una] (fast retransmit / RTO). *)

val send_window_probe : Tcp_cb.t -> Tcp_cb.ctx -> unit
(** One payload byte into a zero window (persist timer). *)

val make_rst :
  to_header:Tcp_wire.header -> payload_len:int -> Tcp_wire.header option
(** The RST answering an unexpected segment (RFC 793 p.36); [None] when
    the offending segment is itself a RST. Stack-level, needs no cb. *)
