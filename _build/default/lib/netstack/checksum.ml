let ones_complement_sum ?(init = 0) b ~off ~len =
  let sum = ref init in
  let i = ref off in
  let last = off + len in
  while !i + 1 < last do
    sum := !sum + (Char.code (Bytes.get b !i) lsl 8) + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if !i < last then sum := !sum + (Char.code (Bytes.get b !i) lsl 8);
  !sum

let finish sum =
  let s = ref sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xffff) + (!s lsr 16)
  done;
  lnot !s land 0xffff

let compute ?init b ~off ~len = finish (ones_complement_sum ?init b ~off ~len)

let valid ?init b ~off ~len = compute ?init b ~off ~len = 0
