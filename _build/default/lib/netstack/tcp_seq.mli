(** 32-bit TCP sequence-number arithmetic (RFC 793 comparisons).

    Sequence numbers live in Z/2^32; all comparisons are window-relative
    ("serial number arithmetic") so they stay correct across wrap. *)

type t = int
(** Always in [\[0, 2^32)]. *)

val of_int : int -> t
(** Truncate to 32 bits. *)

val add : t -> int -> t
val sub : t -> t -> int
(** Signed distance [a - b] in [\[-2^31, 2^31)]. *)

val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool

val between : t -> low:t -> high:t -> bool
(** [low <= x < high] in serial arithmetic. *)

val max : t -> t -> t
val pp : Format.formatter -> t -> unit
