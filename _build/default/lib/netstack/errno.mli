(** POSIX-style error codes surfaced by the ff_* API.

    Capability violations are deliberately *not* errnos: a bad buffer
    capability raises {!Cheri.Fault.Capability_fault}, the hardware trap
    of Fig. 3, and takes the compartment down. *)

type t =
  | EAGAIN
  | EBADF
  | EINVAL
  | EMFILE
  | EADDRINUSE
  | ECONNREFUSED
  | ECONNRESET
  | ENOTCONN
  | EISCONN
  | EALREADY
  | EINPROGRESS
  | EPIPE
  | EMSGSIZE
  | EOPNOTSUPP

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
