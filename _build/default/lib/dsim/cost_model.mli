(** Calibrated timing constants for the simulated Morello/CheriBSD system.

    The paper reports wall-clock effects measured on real hardware; this
    reproduction runs on a simulator, so each mechanism is assigned a
    cost here and the evaluation *shape* (deltas, ratios, crossovers)
    emerges from executing the real code paths with these costs.

    Calibration sources (see DESIGN.md §2):
    - Scenario 1 adds ~125 ns to ff_write() vs. Baseline — two one-way
      musl→Intravisor trampolines on the timing path (Fig. 4).
    - Scenario 2 (uncontended) adds ~200 ns over Scenario 1 — an extra
      cross-cVM round trip plus an uncontended mutex (Fig. 5).
    - Scenario 2 (contended) costs ~19 us, a 152x slowdown — waiting for
      the F-Stack main loop's critical section (Fig. 6).
    - Single-port TCP goodput is 941 Mbit/s = 1 Gbit/s x 1448/1538
      (Table II, single-port rows).
    - Dual-port goodput saturates the PCI bus at ~658 (RX) and ~757 (TX)
      Mbit/s per port (Table II, dual-port rows). *)

type t = {
  tramp_oneway_ns : float;
      (** One-way cross-compartment jump: save registers, install the
          target PCC/DDC, [blrs]-style sealed branch. *)
  syscall_ns : float;  (** Host-OS syscall body (e.g. clock_gettime). *)
  vdso_clock_total_ns : float;
      (** Baseline clock_gettime via the vDSO fast path — no kernel
          entry at all, which is why Baseline's measured ff_write is so
          small. *)
  vdso_clock_read_ns : float;
      (** Offset within the vDSO call at which the timer is sampled. *)
  mmu_syscall_extra_ns : float;
      (** Baseline-only kernel entry/exit via SVC (no trampoline). *)
  ff_write_fixed_ns : float;
      (** Socket-buffer bookkeeping of ff_write, payload-independent. *)
  ff_write_per_byte_ns : float;  (** Copy cost into the socket buffer. *)
  cap_check_ns : float;
      (** Per-access capability bounds/permission check. Hardware does
          this in parallel with the access; near zero, kept as a knob
          for ablations. *)
  mutex_uncontended_ns : float;  (** Lock+unlock with no waiter. *)
  umtx_wake_ns : float;
      (** Kernel wake of a blocked waiter (futex→umtx proxy path). *)
  stack_loop_work_ns : float;
      (** F-Stack main-loop critical section: drain RX ring, run TCP
          timers, flush TX — the mutex hold time in Scenario 2. *)
  stack_loop_gap_ns : float;
      (** Time the main loop spends outside the critical section. *)
  jitter_sigma : float;
      (** Lognormal sigma (on the log scale) of measurement noise. *)
  outlier_prob : float;
      (** Probability a sample is disturbed (IRQ, cache miss burst);
          the paper discards ~10% of iterations by IQR. *)
  outlier_scale_mean : float;
      (** Mean multiplicative penalty on disturbed samples. *)
  link_bps : float;  (** Line rate of each Ethernet port. *)
  pci_rx_bps : float;
      (** Aggregate PCI DMA ceiling for device→memory (receive). *)
  pci_tx_bps : float;  (** Aggregate ceiling for memory→device. *)
  dma_per_packet_ns : float;  (** Fixed descriptor + doorbell cost. *)
  prop_delay_ns : float;  (** Back-to-back wire propagation delay. *)
}

val default : t
(** Values calibrated against the paper's Morello/82576 setup. *)

val no_cheri : t -> t
(** The same platform without capability checks (Baseline). *)

val scaled_jitter : t -> factor:float -> t
(** Multiply the noise parameters; used by tests to get deterministic
    (factor = 0) or exaggerated distributions. *)

val ethernet_goodput_ratio : float
(** 1448/1538: TCP payload per wire byte for a 1500-byte MTU with
    timestamps, preamble, and inter-frame gap. *)

val serialization_ns : t -> bytes:int -> float
(** Time to put [bytes] on the wire at [link_bps]. *)
