type t = { mutable data : float array; mutable len : int }

let create ?(capacity = 64) () = { data = Array.make (max 1 capacity) 0.; len = 0 }

let add t x =
  if t.len = Array.length t.data then begin
    let ndata = Array.make (2 * t.len) 0. in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let count t = t.len
let is_empty t = t.len = 0
let to_array t = Array.sub t.data 0 t.len

let mean t =
  if t.len = 0 then 0.
  else begin
    let s = ref 0. in
    for i = 0 to t.len - 1 do s := !s +. t.data.(i) done;
    !s /. float_of_int t.len
  end

let stddev t =
  if t.len < 2 then 0.
  else begin
    let m = mean t in
    let s = ref 0. in
    for i = 0 to t.len - 1 do
      let d = t.data.(i) -. m in
      s := !s +. (d *. d)
    done;
    sqrt (!s /. float_of_int (t.len - 1))
  end

let fold_all f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do acc := f !acc t.data.(i) done;
  !acc

let minimum t =
  if t.len = 0 then 0. else fold_all Float.min t.data.(0) t

let maximum t =
  if t.len = 0 then 0. else fold_all Float.max t.data.(0) t

let sorted t =
  let a = to_array t in
  Array.sort Float.compare a;
  a

let percentile_of_sorted a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty buffer";
  if p <= 0. then a.(0)
  else if p >= 100. then a.(n - 1)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let percentile t p = percentile_of_sorted (sorted t) p
let median t = percentile t 50.

type boxplot = {
  q1 : float;
  median : float;
  q3 : float;
  whisker_low : float;
  whisker_high : float;
  mean : float;
  stddev : float;
  n : int;
  outliers : int;
}

let boxplot t =
  let a = sorted t in
  let q1 = percentile_of_sorted a 25. in
  let q3 = percentile_of_sorted a 75. in
  let med = percentile_of_sorted a 50. in
  let iqr = q3 -. q1 in
  let lo_bound = q1 -. (1.5 *. iqr) and hi_bound = q3 +. (1.5 *. iqr) in
  let whisker_low = ref a.(Array.length a - 1)
  and whisker_high = ref a.(0)
  and outliers = ref 0 in
  Array.iter
    (fun x ->
      if x < lo_bound || x > hi_bound then incr outliers
      else begin
        if x < !whisker_low then whisker_low := x;
        if x > !whisker_high then whisker_high := x
      end)
    a;
  {
    q1;
    median = med;
    q3;
    whisker_low = !whisker_low;
    whisker_high = !whisker_high;
    mean = mean t;
    stddev = stddev t;
    n = t.len;
    outliers = !outliers;
  }

let iqr_filter ?(k = 1.5) t =
  let a = sorted t in
  if Array.length a = 0 then create ()
  else begin
    let q1 = percentile_of_sorted a 25. in
    let q3 = percentile_of_sorted a 75. in
    let iqr = q3 -. q1 in
    let lo = q1 -. (k *. iqr) and hi = q3 +. (k *. iqr) in
    let out = create ~capacity:t.len () in
    for i = 0 to t.len - 1 do
      let x = t.data.(i) in
      if x >= lo && x <= hi then add out x
    done;
    out
  end

let pp_boxplot fmt b =
  Format.fprintf fmt
    "n=%d mean=%.1f sd=%.1f [%.1f | %.1f %.1f %.1f | %.1f] outliers=%d"
    b.n b.mean b.stddev b.whisker_low b.q1 b.median b.q3 b.whisker_high
    b.outliers
