(** Sample statistics matching the paper's methodology.

    The evaluation of ff_write() collects 1M latency samples, removes
    roughly 10% outliers with a standard IQR filter, and reports
    averages, standard deviations and box plots. This module implements
    exactly those reductions. *)

type t
(** A growable sample buffer of float observations. *)

val create : ?capacity:int -> unit -> t
val add : t -> float -> unit
val count : t -> int
val is_empty : t -> bool
val to_array : t -> float array
(** Copy of the samples in insertion order. *)

val mean : t -> float
val stddev : t -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than two
    samples. *)

val minimum : t -> float
val maximum : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], linear interpolation
    between closest ranks. @raise Invalid_argument on an empty buffer. *)

val median : t -> float

type boxplot = {
  q1 : float;
  median : float;
  q3 : float;
  whisker_low : float;   (** smallest sample >= q1 - 1.5*IQR *)
  whisker_high : float;  (** largest sample <= q3 + 1.5*IQR *)
  mean : float;
  stddev : float;
  n : int;
  outliers : int;        (** samples outside the whiskers *)
}

val boxplot : t -> boxplot

val iqr_filter : ?k:float -> t -> t
(** Fresh buffer containing only samples within
    [\[q1 - k*IQR, q3 + k*IQR\]] ([k] defaults to 1.5, the "standard IQR
    strategy" of the paper). *)

val pp_boxplot : Format.formatter -> boxplot -> unit
