lib/dsim/histogram.ml: Array Float List Printf Stats String
