lib/dsim/engine.ml: Heap Option Time
