lib/dsim/engine.mli: Time
