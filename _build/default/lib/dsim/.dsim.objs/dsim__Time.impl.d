lib/dsim/time.ml: Float Format Int64 Stdlib
