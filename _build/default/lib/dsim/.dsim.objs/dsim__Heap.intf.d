lib/dsim/heap.mli:
