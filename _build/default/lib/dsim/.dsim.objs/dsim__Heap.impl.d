lib/dsim/heap.ml: Array List
