lib/dsim/time.mli: Format
