lib/dsim/cost_model.mli:
