lib/dsim/cost_model.ml:
