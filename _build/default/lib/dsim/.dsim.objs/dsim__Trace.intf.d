lib/dsim/trace.mli: Format Time
