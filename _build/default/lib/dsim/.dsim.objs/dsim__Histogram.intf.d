lib/dsim/histogram.mli: Stats
