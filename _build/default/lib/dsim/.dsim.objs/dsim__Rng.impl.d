lib/dsim/rng.ml: Float Int64
