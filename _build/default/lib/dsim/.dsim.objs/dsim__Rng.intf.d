lib/dsim/rng.mli:
