lib/dsim/stats.mli: Format
