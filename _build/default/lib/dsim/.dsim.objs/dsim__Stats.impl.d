lib/dsim/stats.ml: Array Float Format Stdlib
