type handle = {
  at : Time.t;
  seq : int;
  fn : unit -> unit;
  mutable cancelled : bool;
  mutable fired : bool;
}

type t = {
  mutable clock : Time.t;
  heap : handle Heap.t;
  mutable seq : int;
  mutable live : int;
}

let cmp_event a b =
  let c = Time.compare a.at b.at in
  if c <> 0 then c else compare a.seq b.seq

let create () = { clock = Time.zero; heap = Heap.create ~cmp:cmp_event; seq = 0; live = 0 }

let now t = t.clock

let schedule_at t ~at fn =
  let at = Time.max at t.clock in
  let h = { at; seq = t.seq; fn; cancelled = false; fired = false } in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  Heap.push t.heap h;
  h

let schedule t ~delay fn = schedule_at t ~at:(Time.add t.clock delay) fn

let cancel h =
  h.cancelled <- true

let is_pending h = (not h.cancelled) && not h.fired

(* [live] over-counts cancelled events still sitting in the heap; resync
   lazily as they are popped. *)
let pending_count t = t.live

let rec step t =
  match Heap.pop t.heap with
  | None -> false
  | Some h ->
    t.live <- t.live - 1;
    if h.cancelled then step t
    else begin
      t.clock <- h.at;
      h.fired <- true;
      h.fn ();
      true
    end

let rec drop_cancelled t =
  match Heap.peek t.heap with
  | Some h when h.cancelled ->
    ignore (Heap.pop t.heap);
    t.live <- t.live - 1;
    drop_cancelled t
  | _ -> ()

let run ?until ?max_events t =
  let fired = ref 0 in
  let budget_ok () =
    match max_events with None -> true | Some m -> !fired < m
  in
  let rec loop () =
    drop_cancelled t;
    match Heap.peek t.heap with
    | None -> Option.iter (fun u -> if Time.(u > t.clock) then t.clock <- u) until
    | Some h ->
      let in_window = match until with None -> true | Some u -> Time.(h.at <= u) in
      if in_window && budget_ok () then begin
        if step t then incr fired;
        loop ()
      end
      else if not in_window then
        Option.iter (fun u -> if Time.(u > t.clock) then t.clock <- u) until
  in
  loop ()

let run_until_quiet t = run t
