(** Discrete-event scheduler.

    The engine owns the virtual clock and a pending-event heap. Events
    are plain closures scheduled at an absolute or relative virtual
    time; ties are broken by insertion order so the simulation is fully
    deterministic. Components (NIC, TCP timers, cVM loops) interact only
    by scheduling events on a shared engine. *)

type t

type handle
(** A scheduled event, cancellable until it fires. *)

val create : unit -> t

val now : t -> Time.t
(** Current virtual time. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> handle
(** Schedule at an absolute time. Times in the past fire "now" (at the
    current clock value), never before already-pending earlier events. *)

val schedule : t -> delay:Time.t -> (unit -> unit) -> handle
(** Schedule relative to {!now}. *)

val cancel : handle -> unit
(** Idempotent; cancelling a fired event is a no-op. *)

val is_pending : handle -> bool

val pending_count : t -> int
(** Number of live (not cancelled, not fired) events. *)

val step : t -> bool
(** Fire the next event, advancing the clock to it. Returns [false] when
    no event is pending. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Drain events in time order. [until] stops (inclusive) once the next
    event would fire strictly after it, leaving the clock at [until].
    [max_events] guards against runaway self-rescheduling loops. *)

val run_until_quiet : t -> unit
(** Run until no events remain. *)
