(** Virtual time for the discrete-event simulator.

    Time is an absolute count of nanoseconds since simulation start,
    represented as a non-negative [int64]. All simulator components
    (NIC serialization, cost model, TCP timers) share this unit. *)

type t = int64

val zero : t

(** Constructors from the usual units. *)

val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

val of_float_ns : float -> t
(** Round a float nanosecond count (e.g. a computed serialization delay)
    to the nearest tick. Negative inputs clamp to {!zero}. *)

val of_float_sec : float -> t

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] clamps to {!zero} when [b > a]. *)

val diff : t -> t -> t
(** [diff a b] is [abs (a - b)]. *)

val mul : t -> int -> t
val compare : t -> t -> int
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val equal : t -> t -> bool

val to_ns : t -> int64
val to_float_ns : t -> float
val to_float_us : t -> float
val to_float_ms : t -> float
val to_float_sec : t -> float

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)
