type t = int64

let zero = 0L
let ns n = Int64.of_int n
let us n = Int64.mul (Int64.of_int n) 1_000L
let ms n = Int64.mul (Int64.of_int n) 1_000_000L
let sec n = Int64.mul (Int64.of_int n) 1_000_000_000L

let of_float_ns f = if f <= 0. then 0L else Int64.of_float (Float.round f)
let of_float_sec f = of_float_ns (f *. 1e9)

let add = Int64.add
let sub a b = if Int64.compare b a > 0 then 0L else Int64.sub a b
let diff a b = if Int64.compare a b >= 0 then Int64.sub a b else Int64.sub b a
let mul t n = Int64.mul t (Int64.of_int n)
let compare = Int64.compare
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b
let equal = Int64.equal

let to_ns t = t
let to_float_ns = Int64.to_float
let to_float_us t = Int64.to_float t /. 1e3
let to_float_ms t = Int64.to_float t /. 1e6
let to_float_sec t = Int64.to_float t /. 1e9

let pp fmt t =
  let f = to_float_ns t in
  if Stdlib.( < ) f 1e3 then Format.fprintf fmt "%.0fns" f
  else if Stdlib.( < ) f 1e6 then Format.fprintf fmt "%.2fus" (f /. 1e3)
  else if Stdlib.( < ) f 1e9 then Format.fprintf fmt "%.2fms" (f /. 1e6)
  else Format.fprintf fmt "%.3fs" (f /. 1e9)
