type t = {
  tramp_oneway_ns : float;
  syscall_ns : float;
  vdso_clock_total_ns : float;
  vdso_clock_read_ns : float;
  mmu_syscall_extra_ns : float;
  ff_write_fixed_ns : float;
  ff_write_per_byte_ns : float;
  cap_check_ns : float;
  mutex_uncontended_ns : float;
  umtx_wake_ns : float;
  stack_loop_work_ns : float;
  stack_loop_gap_ns : float;
  jitter_sigma : float;
  outlier_prob : float;
  outlier_scale_mean : float;
  link_bps : float;
  pci_rx_bps : float;
  pci_tx_bps : float;
  dma_per_packet_ns : float;
  prop_delay_ns : float;
}

let default =
  {
    tramp_oneway_ns = 62.5;
    syscall_ns = 30.;
    vdso_clock_total_ns = 30.;
    vdso_clock_read_ns = 15.;
    mmu_syscall_extra_ns = 40.;
    ff_write_fixed_ns = 95.;
    ff_write_per_byte_ns = 0.05;
    cap_check_ns = 0.;
    mutex_uncontended_ns = 75.;
    umtx_wake_ns = 350.;
    (* The contended median of ~19 us is half the loop period when an
       app blocks at a uniformly random phase of the main loop. *)
    stack_loop_work_ns = 30_000.;
    stack_loop_gap_ns = 8_000.;
    jitter_sigma = 0.04;
    outlier_prob = 0.10;
    outlier_scale_mean = 2.5;
    link_bps = 1e9;
    pci_rx_bps = 1.395e9;
    pci_tx_bps = 1.609e9;
    dma_per_packet_ns = 120.;
    prop_delay_ns = 500.;
  }

let no_cheri t = { t with tramp_oneway_ns = 0.; cap_check_ns = 0. }

let scaled_jitter t ~factor =
  {
    t with
    jitter_sigma = t.jitter_sigma *. factor;
    outlier_prob = t.outlier_prob *. factor;
  }

let ethernet_goodput_ratio = 1448. /. 1538.

let serialization_ns t ~bytes = float_of_int bytes *. 8. /. t.link_bps *. 1e9
