type attack =
  | Overflow_read
  | Overflow_write
  | Ddc_escape
  | Forge_capability
  | Unseal_entry
  | Escalate_perms

let all_attacks =
  [ Overflow_read; Overflow_write; Ddc_escape; Forge_capability; Unseal_entry;
    Escalate_perms ]

let attack_name = function
  | Overflow_read -> "overflow-read"
  | Overflow_write -> "overflow-write"
  | Ddc_escape -> "ddc-escape"
  | Forge_capability -> "forge-capability"
  | Unseal_entry -> "unseal-entry"
  | Escalate_perms -> "escalate-perms"

let attack_description = function
  | Overflow_read -> "read 16 bytes past the end of an owned packet buffer"
  | Overflow_write -> "write past the end of an owned buffer (CVE-style overflow)"
  | Ddc_escape -> "hybrid-mode load from the network cVM's private region"
  | Forge_capability -> "fabricate a capability bit pattern in memory and dereference it"
  | Unseal_entry -> "unseal cVM1's entry capability without the Intravisor authority"
  | Escalate_perms -> "store through a read-only capability view"

type outcome = Trapped of Cheri.Fault.t | Leaked of string

let outcome_is_trap = function Trapped _ -> true | Leaked _ -> false

let pp_outcome fmt = function
  | Trapped f -> Format.fprintf fmt "TRAPPED: %a" Cheri.Fault.pp f
  | Leaked s -> Format.fprintf fmt "LEAKED: %s" s

type report = {
  attack : attack;
  cheri : outcome;
  baseline : outcome option;
  victim_alive : bool;
  victim_mbit_before : float;
  victim_mbit_after : float;
}

let secret = "DRONE-TELEMETRY-KEY-0xC4FE"

let hex bytes =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (Bytes.length bytes) (Bytes.get bytes))))

(* Run [f]; a capability fault is the expected (good) outcome. *)
let catching f =
  match f () with
  | leaked -> Leaked leaked
  | exception Cheri.Fault.Capability_fault fault -> Trapped fault

let cheri_attack kind ~mem ~attacker ~victim_cvm ~iv =
  let buf = Capvm.Cvm.malloc attacker 256 in
  let base = Cheri.Capability.base buf in
  match kind with
  | Overflow_read ->
    catching (fun () ->
        let b = Cheri.Tagged_memory.load_bytes mem ~cap:buf ~addr:(base + 256) ~len:16 in
        hex b)
  | Overflow_write ->
    catching (fun () ->
        Cheri.Tagged_memory.store_bytes mem ~cap:buf ~addr:(base + 256)
          (Bytes.make 16 'X');
        "overwrote 16 bytes past the buffer")
  | Ddc_escape ->
    catching (fun () ->
        let victim_base = Cheri.Capability.base (Capvm.Cvm.region victim_cvm) in
        let b =
          Cheri.Compartment.load_bytes
            (Capvm.Cvm.compartment attacker)
            mem ~addr:victim_base ~len:32
        in
        hex b)
  | Forge_capability ->
    catching (fun () ->
        (* Craft what looks like a capability to the victim region, as
           raw bytes; the store clears the granule tag, so the reload
           comes back untagged and the dereference faults. *)
        let slot = base in
        Cheri.Tagged_memory.store_bytes mem ~cap:buf ~addr:slot
          (Bytes.make Cheri.Tagged_memory.granule '\xAA');
        let forged = Cheri.Tagged_memory.load_cap mem ~cap:buf ~addr:slot in
        let b = Cheri.Tagged_memory.load_bytes mem ~cap:forged ~addr:0 ~len:16 in
        hex b)
  | Unseal_entry ->
    catching (fun () ->
        let sealed = Capvm.Cvm.sealed_entry victim_cvm in
        (* The attacker's best available authority: a capability derived
           from its own region. Monotonicity means it cannot carry the
           unseal permission. *)
        let fake_authority =
          Cheri.Capability.and_perms (Capvm.Cvm.region attacker) Cheri.Perms.all
        in
        let entered = Cheri.Capability.unseal ~unsealer:fake_authority sealed in
        ignore (Capvm.Intravisor.seal_authority iv);
        Format.asprintf "unsealed entry: %a" Cheri.Capability.pp entered)
  | Escalate_perms ->
    catching (fun () ->
        let ro = Cheri.Capability.and_perms buf Cheri.Perms.read_only in
        Cheri.Tagged_memory.store_bytes mem ~cap:ro ~addr:base (Bytes.of_string "pwn");
        "stored through a read-only view")

(* The same access patterns on a flat, MMU-process view of memory: what
   a conventional single-address-space system would allow. Expressible
   only for the memory-safety attacks; the capability-machinery attacks
   have no baseline analogue. *)
let baseline_attack kind ~mem ~attacker ~victim_cvm =
  let buf = Capvm.Cvm.malloc attacker 256 in
  let base = Cheri.Capability.base buf in
  (* Adjacent allocation standing in for another component's state. *)
  let neighbour = Capvm.Cvm.malloc attacker (String.length secret) in
  Cheri.Tagged_memory.store_bytes mem ~cap:neighbour
    ~addr:(Cheri.Capability.base neighbour)
    (Bytes.of_string secret);
  match kind with
  | Overflow_read ->
    let b = Bytes.create 16 in
    Cheri.Tagged_memory.unchecked_blit_out mem ~addr:(base + 256) ~dst:b
      ~dst_off:0 ~len:16;
    Some (Leaked (Printf.sprintf "read past buffer: %S" (Bytes.to_string b)))
  | Overflow_write ->
    Cheri.Tagged_memory.unchecked_blit_in mem ~addr:(base + 256)
      ~src:(Bytes.make 16 'X') ~src_off:0 ~len:16;
    Some (Leaked "silently corrupted the adjacent component's state")
  | Ddc_escape ->
    let victim_base = Cheri.Capability.base (Capvm.Cvm.region victim_cvm) in
    let b = Bytes.create 32 in
    Cheri.Tagged_memory.unchecked_blit_out mem ~addr:victim_base ~dst:b
      ~dst_off:0 ~len:32;
    Some (Leaked (Printf.sprintf "read network-stack memory: %s" (hex b)))
  | Forge_capability | Unseal_entry | Escalate_perms -> None

let measure_flow engine flow ~window =
  let t0 = Dsim.Engine.now engine in
  ignore (flow.Scenarios.take_bytes ());
  Dsim.Engine.run engine ~until:(Dsim.Time.add t0 window);
  let elapsed = Dsim.Time.to_float_sec (Dsim.Time.sub (Dsim.Engine.now engine) t0) in
  float_of_int (flow.Scenarios.take_bytes ()) *. 8. /. elapsed /. 1e6

let run ?(seed = 46L) kind =
  (* Victim: a Scenario 2 server under live load in cVM2 (traffic from
     the peer); attacker: a fresh co-resident cVM. *)
  let built =
    Scenarios.build_scenario2 ~seed ~direction:Scenarios.Dut_receives ()
  in
  let engine = built.Scenarios.engine in
  let iv = Topology.intravisor built.Scenarios.dut in
  let mem = Topology.node_mem built.Scenarios.dut in
  let flow = List.hd built.Scenarios.flows in
  (* Warm up the victim traffic. *)
  Dsim.Engine.run engine ~until:(Dsim.Time.ms 300);
  let before = measure_flow engine flow ~window:(Dsim.Time.ms 200) in
  let victim_cvm =
    match Capvm.Intravisor.cvms iv with
    | cvm1 :: _ -> cvm1
    | [] -> invalid_arg "attack: no victim cVM"
  in
  let attacker = Capvm.Intravisor.create_cvm iv ~name:"attacker" ~size:(1 lsl 20) in
  let cheri = cheri_attack kind ~mem ~attacker ~victim_cvm ~iv in
  let baseline = baseline_attack kind ~mem ~attacker ~victim_cvm in
  (* The attacker compartment is dead; the victim must not notice. *)
  let after = measure_flow engine flow ~window:(Dsim.Time.ms 200) in
  built.Scenarios.stop ();
  {
    attack = kind;
    cheri;
    baseline;
    victim_alive = after > 0.8 *. before;
    victim_mbit_before = before;
    victim_mbit_after = after;
  }

let run_all ?seed () = List.map (fun k -> run ?seed k) all_attacks

let pp_report fmt r =
  Format.fprintf fmt "@[<v2>%s (%s):@ CHERI: %a@ %a victim: %.0f -> %.0f Mbit/s (%s)@]"
    (attack_name r.attack)
    (attack_description r.attack)
    pp_outcome r.cheri
    (fun fmt -> function
      | Some b -> Format.fprintf fmt "Baseline: %a@ " pp_outcome b
      | None -> Format.fprintf fmt "Baseline: (not expressible)@ ")
    r.baseline r.victim_mbit_before r.victim_mbit_after
    (if r.victim_alive then "unaffected" else "DEGRADED")
