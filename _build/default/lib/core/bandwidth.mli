(** TCP bandwidth measurement (Table II).

    Runs a built scenario for a warmup (handshakes, ARP, slow start)
    plus a measurement window, and reports per-flow application goodput
    and efficiency against the theoretical port rate — the paper's
    definition: achieved bandwidth over the 1 Gbit/s each port could
    carry (and, for the contended rows, over the fair share). *)

type sample = {
  label : string;
  mbit_s : float;
  efficiency_pct : float;  (** vs [fair_share_mbit]. *)
}

val theoretical_port_mbit : float
(** 1000 Mbit/s per Ethernet port. *)

val expected_single_port_goodput_mbit : float
(** 941 Mbit/s: line rate x 1448/1538. *)

val run :
  Scenarios.built ->
  ?warmup:Dsim.Time.t ->
  ?duration:Dsim.Time.t ->
  ?fair_share_mbit:float ->
  unit ->
  sample list
(** Defaults: 300 ms warmup, 2 s measurement, fair share =
    {!theoretical_port_mbit}. Stops the scenario afterwards. *)

val pp_sample : Format.formatter -> sample -> unit
