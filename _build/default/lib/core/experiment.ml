type profile = {
  warmup : Dsim.Time.t;
  duration : Dsim.Time.t;
  iterations : int;
}

let quick =
  { warmup = Dsim.Time.ms 150; duration = Dsim.Time.ms 300; iterations = 3_000 }

let full =
  { warmup = Dsim.Time.ms 300; duration = Dsim.Time.sec 1; iterations = 100_000 }

let paper_grade = { full with iterations = 1_000_000 }

(* ------------------------------------------------------------------ *)
(* Structured results                                                   *)
(* ------------------------------------------------------------------ *)

let table1 () = Loc_table.compute ()

let run_bw profile ?fair_share_mbit built =
  Bandwidth.run built ~warmup:profile.warmup ~duration:profile.duration
    ?fair_share_mbit ()

let table2 ?(profile = full) () =
  let p = profile in
  [
    ( "Baseline (two processes, dual port) — server",
      run_bw p (Scenarios.build_dual_port ~cheri:false ~direction:Scenarios.Dut_receives ()) );
    ( "Baseline (two processes, dual port) — client",
      run_bw p (Scenarios.build_dual_port ~cheri:false ~direction:Scenarios.Dut_sends ()) );
    ( "Scenario 1 — server",
      run_bw p (Scenarios.build_dual_port ~cheri:true ~direction:Scenarios.Dut_receives ()) );
    ( "Scenario 1 — client",
      run_bw p (Scenarios.build_dual_port ~cheri:true ~direction:Scenarios.Dut_sends ()) );
    ( "Baseline (single process) — server",
      run_bw p (Scenarios.build_single_baseline ~direction:Scenarios.Dut_receives ()) );
    ( "Baseline (single process) — client",
      run_bw p (Scenarios.build_single_baseline ~direction:Scenarios.Dut_sends ()) );
    ( "Scenario 2 (uncontended) — server",
      run_bw p (Scenarios.build_scenario2 ~direction:Scenarios.Dut_receives ()) );
    ( "Scenario 2 (uncontended) — client",
      run_bw p (Scenarios.build_scenario2 ~direction:Scenarios.Dut_sends ()) );
    ( "Scenario 2 (contended) — server",
      run_bw p ~fair_share_mbit:500.
        (Scenarios.build_scenario2 ~contended:true ~direction:Scenarios.Dut_receives ()) );
    ( "Scenario 2 (contended) — client",
      run_bw p ~fair_share_mbit:500.
        (Scenarios.build_scenario2 ~contended:true ~direction:Scenarios.Dut_sends ()) );
  ]

let fig3 () = Attack.run_all ()

let fig4 ?(profile = full) () =
  [
    Measurement.run ~iterations:profile.iterations Measurement.Baseline;
    Measurement.run ~iterations:profile.iterations Measurement.Scenario1;
  ]

let fig5 ?(profile = full) () =
  [
    Measurement.run ~iterations:profile.iterations Measurement.Baseline;
    Measurement.run ~iterations:profile.iterations
      (Measurement.Scenario2 { contended = false });
  ]

let fig6 ?(profile = full) () =
  [
    Measurement.run ~iterations:profile.iterations
      (Measurement.Scenario2 { contended = false });
    Measurement.run ~iterations:profile.iterations
      (Measurement.Scenario2 { contended = true });
  ]

let ablation_lock ?(profile = full) () =
  List.map
    (fun (name, policy) ->
      ( name,
        run_bw profile ~fair_share_mbit:500.
          (Scenarios.build_scenario2 ~contended:true ~lock_policy:policy
             ~direction:Scenarios.Dut_sends ()) ))
    [ ("barging umtx (paper)", Capvm.Umtx.Barging); ("FIFO ticket", Capvm.Umtx.Fifo) ]

let ablation_udp ?(profile = full) () =
  List.map
    (fun offered ->
      ( Printf.sprintf "UDP blast, offered %.0f Mbit/s" offered,
        run_bw profile (Scenarios.build_udp_blast ~offered_mbit:offered ()) ))
    [ 500.; 950.; 1500. ]

let ablation_split ?(profile = full) () =
  [
    ( "Scenario 2 (app | F-Stack+DPDK)",
      run_bw profile (Scenarios.build_scenario2 ~direction:Scenarios.Dut_sends ()) );
    ( "Scenario 3 (app | F-Stack | DPDK)",
      run_bw profile (Scenarios.build_scenario3_split ~direction:Scenarios.Dut_sends ()) );
  ]

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let render_bw_groups groups =
  let rows =
    List.concat_map
      (fun (group, samples) ->
        List.map
          (fun (s : Bandwidth.sample) ->
            [ group; s.Bandwidth.label; Report.mbit s.Bandwidth.mbit_s;
              Report.pct s.Bandwidth.efficiency_pct ])
          samples)
      groups
  in
  Report.table ~header:[ "Configuration"; "Flow"; "Mbit/s"; "Efficiency" ] ~rows

let render_table1 _profile =
  Format.asprintf "%a" Loc_table.pp (table1 ())

let render_table2 profile = render_bw_groups (table2 ~profile ())

let render_fig3 _profile =
  String.concat "\n\n"
    (List.map (fun r -> Format.asprintf "%a" Attack.pp_report r) (fig3 ()))

let render_measurements ?(log_scale = false) results =
  let boxes =
    List.map
      (fun (r : Measurement.result) -> (r.Measurement.label, r.Measurement.boxplot))
      results
  in
  Report.ascii_boxplot ~labels_and_boxes:boxes ~log_scale ()

let render_fig n profile =
  let results =
    match n with
    | 4 -> fig4 ~profile ()
    | 5 -> fig5 ~profile ()
    | _ -> fig6 ~profile ()
  in
  let detail =
    String.concat "\n"
      (List.map (fun r -> Format.asprintf "%a" Measurement.pp_result r) results)
  in
  let extra =
    if n <> 6 then ""
    else begin
      (* The contended distribution spans three decades; show it. *)
      match List.rev results with
      | contended :: _ ->
        let h =
          Dsim.Histogram.add_stats
            (Dsim.Histogram.create ~lo:100. ~ratio:1.6 ~buckets:32 ())
            contended.Measurement.filtered
        in
        "\n\ncontended ff_write latency distribution (ns):\n"
        ^ Dsim.Histogram.render h
      | [] -> ""
    end
  in
  render_measurements ~log_scale:(n = 6) results ^ "\n\n" ^ detail ^ extra

type spec = {
  id : string;
  title : string;
  paper_ref : string;
  render : profile -> string;
}

let all =
  [
    {
      id = "table1";
      title = "LoC added/modified for the CHERI port";
      paper_ref = "Table I";
      render = render_table1;
    };
    {
      id = "table2";
      title = "TCP bandwidth in the three scenarios (server & client)";
      paper_ref = "Table II";
      render = render_table2;
    };
    {
      id = "fig3";
      title = "Out-of-bounds accesses trap under CHERI";
      paper_ref = "Figure 3";
      render = render_fig3;
    };
    {
      id = "fig4";
      title = "ff_write() execution time: Scenario 1 vs Baseline";
      paper_ref = "Figure 4";
      render = render_fig 4;
    };
    {
      id = "fig5";
      title = "ff_write() execution time: Scenario 2 (uncontended) vs Baseline";
      paper_ref = "Figure 5";
      render = render_fig 5;
    };
    {
      id = "fig6";
      title = "ff_write() execution time: contended vs uncontended Scenario 2";
      paper_ref = "Figure 6";
      render = render_fig 6;
    };
    {
      id = "ablation-lock";
      title = "Locking strategies under contention (paper future work)";
      paper_ref = "Sec. VI";
      render = (fun p -> render_bw_groups (ablation_lock ~profile:p ()));
    };
    {
      id = "ablation-udp";
      title = "UDP blast: goodput and loss without flow control";
      paper_ref = "extension";
      render = (fun p -> render_bw_groups (ablation_udp ~profile:p ()));
    };
    {
      id = "ablation-split";
      title = "Finer-grained split: DPDK in its own cVM (paper future work)";
      paper_ref = "Sec. VI";
      render = (fun p -> render_bw_groups (ablation_split ~profile:p ()));
    };
  ]

let find id = List.find_opt (fun s -> String.equal s.id id) all
let ids () = List.map (fun s -> s.id) all
