lib/core/mavlink.ml: Bytes Char Cheri Format Printf
