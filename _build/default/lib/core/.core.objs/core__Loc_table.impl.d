lib/core/loc_table.ml: Array Filename Format List Option Sys
