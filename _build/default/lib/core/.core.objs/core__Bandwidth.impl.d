lib/core/bandwidth.ml: Dsim Format List Scenarios
