lib/core/attack.mli: Cheri Format
