lib/core/scenarios.mli: Capvm Dsim Netstack Topology
