lib/core/iperf.mli: Cheri Netstack
