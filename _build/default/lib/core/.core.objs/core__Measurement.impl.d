lib/core/measurement.ml: Capvm Dsim Format Int64 Netstack Scenarios Stdlib Topology
