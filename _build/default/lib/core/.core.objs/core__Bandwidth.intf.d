lib/core/bandwidth.mli: Dsim Format Scenarios
