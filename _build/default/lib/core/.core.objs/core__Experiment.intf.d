lib/core/experiment.mli: Attack Bandwidth Dsim Loc_table Measurement
