lib/core/report.ml: Array Bytes Dsim Float List Printf String
