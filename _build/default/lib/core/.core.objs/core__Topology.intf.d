lib/core/topology.mli: Capvm Cheri Dpdk Dsim Netstack Nic
