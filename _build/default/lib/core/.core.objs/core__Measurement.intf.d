lib/core/measurement.mli: Cheri Dsim Format Scenarios
