lib/core/mavlink.mli: Cheri Format
