lib/core/scenarios.ml: Bytes Capvm Dsim Int64 Iperf List Netstack Printf Topology
