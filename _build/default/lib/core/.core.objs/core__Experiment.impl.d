lib/core/experiment.ml: Attack Bandwidth Capvm Dsim Format List Loc_table Measurement Printf Report Scenarios String
