lib/core/loc_table.mli: Format
