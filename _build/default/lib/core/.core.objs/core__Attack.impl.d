lib/core/attack.ml: Bytes Capvm Char Cheri Dsim Format List Printf Scenarios String Topology
