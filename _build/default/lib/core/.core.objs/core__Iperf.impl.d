lib/core/iperf.ml: Cheri Ff_api List Netstack
