lib/core/report.mli: Dsim
