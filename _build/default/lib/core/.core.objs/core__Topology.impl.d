lib/core/topology.ml: Capvm Dpdk Dsim Fun Hashtbl List Netstack Nic Printf
