(** ff_write() execution-time measurement (Figs. 4, 5, 6).

    Replicates the paper's methodology: a measured application samples
    CLOCK_MONOTONIC_RAW immediately before and after an [ff_write], for
    a configurable number of iterations; ~10% of samples are disturbed
    by system noise and removed with the standard IQR strategy before
    reporting averages, deviations and box plots.

    What the sampled interval contains depends on the configuration:

    - {b Baseline}: both clock reads go through the vDSO fast path, so
      the interval is essentially the ff_write body.
    - {b Scenario 1}: the cVM cannot read the timer directly — each
      clock read is a trampoline into the Intravisor plus the CheriBSD
      syscall, so the interval gains one return path and one entry path
      (~125 ns, Fig. 4).
    - {b Scenario 2}: the ff_write itself crosses into cVM1 and takes
      the shared mutex — uncontended that adds a round trip plus the
      lock (~200 ns over Scenario 1, Fig. 5); contended it adds the
      wait for cVM1's main loop and cVM3 (~19 us, 152x, Fig. 6). *)

type path =
  | Baseline
  | Scenario1
  | Scenario2 of { contended : bool }

val path_label : path -> string

type result = {
  label : string;
  raw : Dsim.Stats.t;  (** All samples, ns. *)
  filtered : Dsim.Stats.t;  (** After IQR outlier removal. *)
  boxplot : Dsim.Stats.boxplot;  (** Of the filtered samples. *)
  iterations : int;
  removed_pct : float;
}

val run :
  ?iterations:int ->
  ?write_size:int ->
  ?interval:Dsim.Time.t ->
  ?seed:int64 ->
  path ->
  result
(** Defaults: 100_000 iterations (the paper uses 1M; pass [~iterations]
    to match), 64-byte writes, 100 us between writes (the "increased
    interval" of Fig. 5 applied uniformly so the socket buffer never
    back-pressures the measurement). *)

val pp_result : Format.formatter -> result -> unit

val setup_connected :
  ?seed:int64 ->
  mode:[ `Direct | `S2 of bool ] ->
  write_size:int ->
  unit ->
  Scenarios.measurement_topology * int * Cheri.Capability.t
(** Build the measurement topology with an Established connection and an
    app-compartment buffer: [(topology, fd, buffer)]. Exposed for the
    bench harness, which measures individual API calls on it. *)
