let magic = 0xFE
let max_payload = 255

type message =
  | Heartbeat of { vehicle_type : int; autopilot : int; base_mode : int; status : int }
  | Attitude of { time_ms : int; roll_cdeg : int; pitch_cdeg : int; yaw_cdeg : int }
  | Command of { command : int; param1 : int; param2 : int; confirmation : int }
  | Raw of { msgid : int; payload : bytes }

let msgid = function
  | Heartbeat _ -> 0
  | Attitude _ -> 30
  | Command _ -> 76
  | Raw { msgid; _ } -> msgid

type frame = { seq : int; sysid : int; compid : int; message : message }

(* CRC-16/X.25 (the MAVLink accumulator). *)
let crc_x25 ?(init = 0xFFFF) b ~off ~len =
  let crc = ref init in
  for i = off to off + len - 1 do
    let tmp = (Char.code (Bytes.get b i) lxor !crc) land 0xFF in
    let tmp = (tmp lxor (tmp lsl 4)) land 0xFF in
    crc :=
      ((!crc lsr 8) lxor (tmp lsl 8) lxor (tmp lsl 3) lxor (tmp lsr 4))
      land 0xFFFF
  done;
  !crc

let set_u16_le b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff))

let get_u16_le b off =
  Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set_u32_le b off v =
  for i = 0 to 3 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_u32_le b off =
  let byte i = Char.code (Bytes.get b (off + i)) in
  byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

(* Signed 16-bit helpers for the attitude centidegrees. *)
let to_s16 v = v land 0xFFFF
let of_s16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

let payload_of = function
  | Heartbeat { vehicle_type; autopilot; base_mode; status } ->
    let b = Bytes.create 4 in
    Bytes.set b 0 (Char.chr (vehicle_type land 0xff));
    Bytes.set b 1 (Char.chr (autopilot land 0xff));
    Bytes.set b 2 (Char.chr (base_mode land 0xff));
    Bytes.set b 3 (Char.chr (status land 0xff));
    b
  | Attitude { time_ms; roll_cdeg; pitch_cdeg; yaw_cdeg } ->
    let b = Bytes.create 10 in
    set_u32_le b 0 time_ms;
    set_u16_le b 4 (to_s16 roll_cdeg);
    set_u16_le b 6 (to_s16 pitch_cdeg);
    set_u16_le b 8 (to_s16 yaw_cdeg);
    b
  | Command { command; param1; param2; confirmation } ->
    let b = Bytes.create 7 in
    set_u16_le b 0 command;
    set_u16_le b 2 (to_s16 param1);
    set_u16_le b 4 (to_s16 param2);
    Bytes.set b 6 (Char.chr (confirmation land 0xff));
    b
  | Raw { payload; _ } -> payload

let message_of ~msgid payload =
  match msgid with
  | 0 when Bytes.length payload = 4 ->
    Ok
      (Heartbeat
         {
           vehicle_type = Char.code (Bytes.get payload 0);
           autopilot = Char.code (Bytes.get payload 1);
           base_mode = Char.code (Bytes.get payload 2);
           status = Char.code (Bytes.get payload 3);
         })
  | 30 when Bytes.length payload = 10 ->
    Ok
      (Attitude
         {
           time_ms = get_u32_le payload 0;
           roll_cdeg = of_s16 (get_u16_le payload 4);
           pitch_cdeg = of_s16 (get_u16_le payload 6);
           yaw_cdeg = of_s16 (get_u16_le payload 8);
         })
  | 76 when Bytes.length payload = 7 ->
    Ok
      (Command
         {
           command = get_u16_le payload 0;
           param1 = of_s16 (get_u16_le payload 2);
           param2 = of_s16 (get_u16_le payload 4);
           confirmation = Char.code (Bytes.get payload 6);
         })
  | (0 | 30 | 76) -> Error "mavlink: wrong payload length for message id"
  | msgid -> Ok (Raw { msgid; payload })

let header_len = 6
let trailer_len = 2

let encode f =
  let payload = payload_of f.message in
  let plen = Bytes.length payload in
  if plen > max_payload then invalid_arg "Mavlink.encode: payload too long";
  let b = Bytes.create (header_len + plen + trailer_len) in
  Bytes.set b 0 (Char.chr magic);
  Bytes.set b 1 (Char.chr plen);
  Bytes.set b 2 (Char.chr (f.seq land 0xff));
  Bytes.set b 3 (Char.chr (f.sysid land 0xff));
  Bytes.set b 4 (Char.chr (f.compid land 0xff));
  Bytes.set b 5 (Char.chr (msgid f.message land 0xff));
  Bytes.blit payload 0 b header_len plen;
  (* CRC covers everything after the magic. *)
  set_u16_le b (header_len + plen) (crc_x25 b ~off:1 ~len:(header_len - 1 + plen));
  b

let decode b =
  let len = Bytes.length b in
  if len < header_len + trailer_len then Error "mavlink: frame too short"
  else if Char.code (Bytes.get b 0) <> magic then Error "mavlink: bad magic"
  else begin
    let plen = Char.code (Bytes.get b 1) in
    if header_len + plen + trailer_len > len then
      Error "mavlink: declared length exceeds the buffer"
    else begin
      let crc = get_u16_le b (header_len + plen) in
      if crc <> crc_x25 b ~off:1 ~len:(header_len - 1 + plen) then
        Error "mavlink: bad checksum"
      else begin
        let payload = Bytes.sub b header_len plen in
        match message_of ~msgid:(Char.code (Bytes.get b 5)) payload with
        | Ok message ->
          Ok
            {
              seq = Char.code (Bytes.get b 2);
              sysid = Char.code (Bytes.get b 3);
              compid = Char.code (Bytes.get b 4);
              message;
            }
        | Error _ as e -> e
      end
    end
  end

(* The CVE-2024-38951 code shape: trust the header's length field and
   copy that many bytes into the receive buffer, validating afterwards.
   The copy goes through [dst]'s capability — on CHERI an oversized
   declaration faults before a single out-of-bounds byte lands. *)
let decode_into mem ~dst b =
  let len = Bytes.length b in
  if len < header_len + trailer_len then Error "mavlink: frame too short"
  else if Char.code (Bytes.get b 0) <> magic then Error "mavlink: bad magic"
  else begin
    let declared = Char.code (Bytes.get b 1) in
    (* Unchecked: [declared] is used for the copy even if it exceeds the
       frame or the destination. Missing source bytes read as zero, as a
       heap over-read would. *)
    let staging = Bytes.make declared '\000' in
    let available = max 0 (min declared (len - header_len)) in
    Bytes.blit b header_len staging 0 available;
    Cheri.Tagged_memory.blit_in mem ~cap:dst
      ~addr:(Cheri.Capability.cursor dst)
      ~src:staging ~src_off:0 ~len:declared;
    match decode b with
    | Ok frame -> Ok (frame, declared)
    | Error _ as e -> e
  end

let forge_oversized ~declared_len =
  let b = Bytes.create (header_len + trailer_len) in
  Bytes.set b 0 (Char.chr magic);
  Bytes.set b 1 (Char.chr (declared_len land 0xff));
  Bytes.set b 2 '\000';
  Bytes.set b 3 (Char.chr 0xBA);
  Bytes.set b 4 (Char.chr 0xD1);
  Bytes.set b 5 '\000';
  set_u16_le b header_len 0xBEEF (* CRC is never reached *);
  b

let pp fmt f =
  let body =
    match f.message with
    | Heartbeat { vehicle_type; status; _ } ->
      Printf.sprintf "HEARTBEAT type=%d status=%d" vehicle_type status
    | Attitude { roll_cdeg; pitch_cdeg; yaw_cdeg; _ } ->
      Printf.sprintf "ATTITUDE roll=%.1f pitch=%.1f yaw=%.1f"
        (float_of_int roll_cdeg /. 100.)
        (float_of_int pitch_cdeg /. 100.)
        (float_of_int yaw_cdeg /. 100.)
    | Command { command; confirmation; _ } ->
      Printf.sprintf "COMMAND %d conf=%d" command confirmation
    | Raw { msgid; payload } ->
      Printf.sprintf "RAW msgid=%d len=%d" msgid (Bytes.length payload)
  in
  Format.fprintf fmt "[sys%d comp%d seq%d] %s" f.sysid f.compid f.seq body
