(** A MAVLink-style telemetry protocol (v1 framing).

    The paper motivates network-stack compartmentalization with drone
    autopilots: PX4 speaks MAVLink, and CVE-2024-38951 is a
    denial-of-service through unchecked buffer limits in exactly this
    parser layer. This module implements the framing (magic, length,
    sequence, system/component ids, message id, X.25 CRC) plus a few
    representative messages, and exposes both a safe parser and the
    CVE-shaped decode path whose payload copy is governed by the
    *caller's capability* — the difference between a trap and a
    takeover in {!Attack}-style demos. *)

val magic : int
(** 0xFE (MAVLink v1 start byte). *)

val max_payload : int
(** 255 bytes, from the 8-bit length field. *)

type message =
  | Heartbeat of { vehicle_type : int; autopilot : int; base_mode : int; status : int }
  | Attitude of { time_ms : int; roll_cdeg : int; pitch_cdeg : int; yaw_cdeg : int }
  | Command of { command : int; param1 : int; param2 : int; confirmation : int }
  | Raw of { msgid : int; payload : bytes }  (** Anything else. *)

val msgid : message -> int

type frame = {
  seq : int;
  sysid : int;
  compid : int;
  message : message;
}

val crc_x25 : ?init:int -> bytes -> off:int -> len:int -> int
(** The MAVLink checksum (CRC-16/X.25 without final reflection
    conventions — matches {!encode}/{!decode}). *)

val encode : frame -> bytes
(** Wire bytes: [0xFE len seq sysid compid msgid payload crc_lo crc_hi]. *)

val decode : bytes -> (frame, string) result
(** Safe parser: validates magic, length against the actual buffer, and
    the CRC. *)

val decode_into :
  Cheri.Tagged_memory.t ->
  dst:Cheri.Capability.t ->
  bytes ->
  (frame * int, string) result
(** The CVE-2024-38951 shape: copy the *declared* payload length into
    the caller's buffer before validating it ("unchecked buffer
    limits"). With a properly bounded capability an oversized
    declaration raises {!Cheri.Fault.Capability_fault}; on a flat
    system the same code pattern would overrun [dst]. Returns the frame
    and the number of bytes copied. *)

val forge_oversized : declared_len:int -> bytes
(** An attack frame whose length field declares [declared_len] (may
    exceed both the actual payload and {!max_payload} consumers expect)
    — the malformed input of the CVE. *)

val pp : Format.formatter -> frame -> unit
