(** Table I: lines of code added/modified for the CHERI port.

    The paper reports how small the capability adaptation of F-Stack was
    (152 LoC, 0.99% of the library). In this reproduction the analogous
    quantity is the size of the capability-specific integration layer
    relative to each ported library:

    - the [ff_*] API veneer (the [__capability] signature change),
    - the kernel-detach module that installs permission-narrowed DMA
      windows (the paper's DPDK module).

    Counts are taken from the source tree when it is available (running
    from a checkout); otherwise the baked-in release numbers are used. *)

type row = {
  library : string;
  cheri_loc : int;  (** Capability-integration lines. *)
  total_loc : int;  (** Whole library. *)
  pct : float;
}

val compute : ?root:string -> unit -> row list
(** [root] defaults to the current directory; falls back to recorded
    counts when sources are unreadable. *)

val from_sources : root:string -> row list option
val recorded : row list
(** Snapshot counts, refreshed at release time. *)

val pp : Format.formatter -> row list -> unit
