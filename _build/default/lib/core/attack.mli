(** Compartmentalization verification (Fig. 3).

    The paper verifies isolation by modifying applications "to access
    memory ranges outside their valid boundaries" and observing the
    CAP-out-of-bounds exception while the rest of the system keeps
    serving traffic. This module reproduces that experiment and extends
    it with the other capability attack classes the machine model can
    express. *)

type attack =
  | Overflow_read  (** Read past the end of an owned buffer. *)
  | Overflow_write  (** The CVE-style buffer overflow. *)
  | Ddc_escape
      (** Hybrid-mode access to another cVM's memory (outside DDC). *)
  | Forge_capability
      (** Write a capability's bit pattern as raw bytes, reload, deref:
          the tag is gone. *)
  | Unseal_entry
      (** Unseal another cVM's entry capability without the Intravisor's
          authority. *)
  | Escalate_perms
      (** Derive a writable capability from a read-only one. *)

val all_attacks : attack list
val attack_name : attack -> string
val attack_description : attack -> string

type outcome =
  | Trapped of Cheri.Fault.t
      (** CHERI raised the exception; the compartment is killed. *)
  | Leaked of string  (** The access went through (non-CHERI baseline). *)

val outcome_is_trap : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit

type report = {
  attack : attack;
  cheri : outcome;  (** With capability enforcement. *)
  baseline : outcome option;
      (** The same access pattern on the flat (MMU-process) view, where
          expressible — shows what CHERI prevents. *)
  victim_alive : bool;
      (** Did the victim cVM keep serving traffic after the attacker
          trapped? *)
  victim_mbit_before : float;
  victim_mbit_after : float;
}

val run : ?seed:int64 -> attack -> report
(** Build a victim (iperf server under live load in cVM2), an attacker
    cVM3, launch the attack mid-traffic, and measure the victim's
    bandwidth before and after. *)

val run_all : ?seed:int64 -> unit -> report list
val pp_report : Format.formatter -> report -> unit
