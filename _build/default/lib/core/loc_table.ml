type row = { library : string; cheri_loc : int; total_loc : int; pct : float }

let count_file path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    Some !n

let count_files root paths =
  List.fold_left
    (fun acc p ->
      match acc with
      | None -> None
      | Some total -> (
        match count_file (Filename.concat root p) with
        | None -> None
        | Some n -> Some (total + n)))
    (Some 0) paths

let count_dir root dir =
  let path = Filename.concat root dir in
  match Sys.readdir path with
  | exception Sys_error _ -> None
  | entries ->
    Array.to_list entries
    |> List.filter (fun f ->
           Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
    |> List.map (fun f -> Filename.concat dir f)
    |> count_files root

let mk library cheri total =
  {
    library;
    cheri_loc = cheri;
    total_loc = total;
    pct = 100. *. float_of_int cheri /. float_of_int (max 1 total);
  }

let from_sources ~root =
  let ( let* ) o f = Option.bind o f in
  let* fstack_total = count_dir root "lib/netstack" in
  let* fstack_cheri =
    count_files root [ "lib/netstack/ff_api.ml"; "lib/netstack/ff_api.mli" ]
  in
  let* dpdk_total = count_dir root "lib/dpdk" in
  let* dpdk_cheri =
    count_files root [ "lib/dpdk/igb_uio.ml"; "lib/dpdk/igb_uio.mli" ]
  in
  Some
    [ mk "F-Stack (netstack)" fstack_cheri fstack_total;
      mk "DPDK" dpdk_cheri dpdk_total ]

(* Refreshed from `wc -l` at release time; used when the source tree is
   not present at runtime. *)
let recorded =
  [ mk "F-Stack (netstack)" 130 3491; mk "DPDK" 39 384 ]

let compute ?(root = ".") () =
  match from_sources ~root with Some rows -> rows | None -> recorded

let pp fmt rows =
  Format.fprintf fmt "%-22s %10s %10s %8s@." "Library" "CHERI LoC" "total LoC"
    "share";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-22s %10d %10d %7.2f%%@." r.library r.cheri_loc
        r.total_loc r.pct)
    rows
