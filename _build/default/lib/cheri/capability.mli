(** CHERI capability values.

    A capability is a bounded, permissioned, tagged reference: it names
    the region [\[base, base+length)], carries a dereference [cursor], a
    permission vector and an optional seal. All derivation operations
    are monotonic — bounds can only shrink and permissions can only be
    removed — and any attempt to amplify raises
    {!Fault.Capability_fault} with [Monotonicity_violation], mirroring
    how hardware would clear the tag.

    In hybrid-mode CHERI (the paper's configuration), most code uses
    integer pointers checked against the compartment's DDC; annotated
    [__capability] pointers are first-class values of this type. *)

type t = private {
  tag : bool;  (** Validity: only tagged capabilities authorise access. *)
  base : int;
  length : int;
  cursor : int;
  perms : Perms.t;
  sealed : Otype.t option;
}

val root : base:int -> length:int -> perms:Perms.t -> t
(** Mint an original (tagged, unsealed) capability. Only the machine
    boot path and tests should call this; everything else derives. *)

val null : t
(** Untagged, zero-length — the NULL capability. *)

(** {1 Accessors} *)

val base : t -> int
val length : t -> int
val cursor : t -> int
val limit : t -> int
(** [base + length]. *)

val perms : t -> Perms.t
val is_tagged : t -> bool
val is_sealed : t -> bool
val otype : t -> Otype.t option

(** {1 Monotonic derivation}

    All of these require a tagged, unsealed source capability and raise
    {!Fault.Capability_fault} otherwise. *)

val set_bounds : t -> base:int -> length:int -> t
(** Narrow to [\[base, base+length)]; must lie within the source bounds.
    The cursor is moved to the new base. *)

val and_perms : t -> Perms.t -> t
(** Intersect permissions (requesting a superset is not a fault — extra
    bits are silently dropped, as the hardware instruction does). *)

val set_cursor : t -> int -> t
(** Move the cursor. Way-out-of-range cursors (beyond the representable
    window around the bounds) clear the tag, modelling compressed-
    capability representability. *)

val incr_cursor : t -> int -> t

val derive : t -> offset:int -> length:int -> perms:Perms.t -> t
(** [set_bounds] at [base + offset] composed with [and_perms] — the
    common "carve a buffer out of a region" operation. *)

(** {1 Sealing} *)

val seal : sealer:t -> t -> t
(** Seal with otype = [cursor sealer]. [sealer] needs the seal
    permission and its cursor in bounds. A sealed capability is immutable
    and non-dereferenceable until unsealed. *)

val unseal : unsealer:t -> t -> t
(** [unsealer] needs the unseal permission and its cursor equal to the
    target's otype. *)

(** {1 Checks} *)

type access = Load | Store | Execute | Load_cap | Store_cap

val check_access : t -> access -> addr:int -> len:int -> unit
(** The full hardware check: tag set, not sealed, permission present,
    [\[addr, addr+len)] within bounds. Raises {!Fault.Capability_fault}. *)

val check_deref : t -> access -> len:int -> unit
(** {!check_access} at the current cursor. *)

val in_bounds : t -> addr:int -> len:int -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
