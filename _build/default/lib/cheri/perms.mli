(** Capability permission bits.

    A subset of the CHERI ISA permission vector sufficient for the
    network-stack use case: data load/store, instruction fetch,
    capability load/store, and the seal/unseal authority used for
    compartment entry points. Permissions only ever shrink under
    derivation ({!intersect}), which is what gives CHERI its
    monotonicity property. *)

type t = {
  load : bool;
  store : bool;
  execute : bool;
  load_cap : bool;  (** May read capabilities (with tags) from memory. *)
  store_cap : bool;  (** May write capabilities (with tags) to memory. *)
  seal : bool;  (** May seal other capabilities with this otype. *)
  unseal : bool;  (** May unseal capabilities sealed with this otype. *)
  global : bool;  (** May be shared across compartments. *)
}

val all : t
val none : t
val read_only : t
val read_write : t
(** Data + capability load/store, global. *)

val execute_only : t

val data : t
(** Plain data load/store, no capability transfer — the shape handed to
    untrusted buffers. *)

val intersect : t -> t -> t
val subset : t -> t -> bool
(** [subset a b] is true when every right in [a] is also in [b]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Compact "rwxRWsuG" rendering, dashes for missing rights. *)
