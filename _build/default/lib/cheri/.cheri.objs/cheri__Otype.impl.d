lib/cheri/otype.ml: Format Int
