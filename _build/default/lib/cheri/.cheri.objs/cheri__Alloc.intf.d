lib/cheri/alloc.mli: Capability Perms Tagged_memory
