lib/cheri/fault.ml: Format Printexc
