lib/cheri/alloc.ml: Capability Hashtbl List Printf Tagged_memory
