lib/cheri/otype.mli: Format
