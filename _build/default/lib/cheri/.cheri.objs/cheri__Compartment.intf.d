lib/cheri/compartment.mli: Capability Format Tagged_memory
