lib/cheri/fault.mli: Format
