lib/cheri/tagged_memory.ml: Bytes Capability Char Fault Hashtbl Perms Printf
