lib/cheri/tagged_memory.mli: Capability
