lib/cheri/capability.ml: Fault Format Option Otype Perms Printf
