lib/cheri/perms.ml: Format
