lib/cheri/compartment.ml: Capability Format Perms Tagged_memory
