lib/cheri/capability.mli: Format Otype Perms
