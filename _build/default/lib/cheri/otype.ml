type t = int

let unsealed_sentinel = -1

type allocator = { mutable next : int }

let allocator () = { next = 1 }

let fresh a =
  let v = a.next in
  a.next <- a.next + 1;
  v

let of_int_exn v =
  if v < 0 then invalid_arg "Otype.of_int_exn: negative otype";
  v

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let pp fmt t = Format.fprintf fmt "otype:%d" t
