(** Capability fault taxonomy.

    These correspond to the hardware exceptions a Morello core raises
    when a capability check fails; Figure 3 of the paper demonstrates
    the [Out_of_bounds] case ("CAP-out-of-bound exception") killing an
    attacking compartment. *)

type kind =
  | Tag_violation  (** Dereference of an untagged (invalid) capability. *)
  | Out_of_bounds  (** Access outside [base, base+length). *)
  | Permission_violation  (** Missing right (e.g. store via read-only). *)
  | Seal_violation  (** Dereference or mutation of a sealed capability. *)
  | Unseal_violation  (** Unseal with the wrong otype / no authority. *)
  | Monotonicity_violation
      (** Attempt to grow bounds or add permissions during derivation. *)
  | Representability_violation
      (** Cursor moved so far out of bounds the capability cannot be
          represented; the tag would be cleared by hardware. *)

type t = {
  kind : kind;
  address : int;  (** Faulting address (or cursor). *)
  detail : string;
}

exception Capability_fault of t

val raise_fault : kind -> address:int -> detail:string -> 'a
val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
