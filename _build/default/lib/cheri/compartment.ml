type t = { name : string; id : int; ddc : Capability.t; pcc : Capability.t }

let make ~name ~id ~ddc ~pcc = { name; id; ddc; pcc }
let name t = t.name
let id t = t.id
let ddc t = t.ddc
let pcc t = t.pcc
let with_ddc t ddc = { t with ddc }

let load_bytes t mem ~addr ~len = Tagged_memory.load_bytes mem ~cap:t.ddc ~addr ~len
let store_bytes t mem ~addr b = Tagged_memory.store_bytes mem ~cap:t.ddc ~addr b
let get_u8 t mem ~addr = Tagged_memory.get_u8 mem ~cap:t.ddc ~addr
let set_u8 t mem ~addr v = Tagged_memory.set_u8 mem ~cap:t.ddc ~addr v

let can_access t ~addr ~len ~write =
  let open Capability in
  is_tagged t.ddc
  && (not (is_sealed t.ddc))
  && in_bounds t.ddc ~addr ~len
  && (if write then (perms t.ddc).Perms.store else (perms t.ddc).Perms.load)

let check_fetch t ~addr = Capability.check_access t.pcc Execute ~addr ~len:4

let pp fmt t =
  Format.fprintf fmt "compartment %s(#%d) ddc=%a" t.name t.id Capability.pp t.ddc
