type t = {
  load : bool;
  store : bool;
  execute : bool;
  load_cap : bool;
  store_cap : bool;
  seal : bool;
  unseal : bool;
  global : bool;
}

let all =
  {
    load = true;
    store = true;
    execute = true;
    load_cap = true;
    store_cap = true;
    seal = true;
    unseal = true;
    global = true;
  }

let none =
  {
    load = false;
    store = false;
    execute = false;
    load_cap = false;
    store_cap = false;
    seal = false;
    unseal = false;
    global = false;
  }

let read_only = { none with load = true; load_cap = true; global = true }

let read_write =
  { none with load = true; store = true; load_cap = true; store_cap = true; global = true }

let execute_only = { none with execute = true; load = true; global = true }
let data = { none with load = true; store = true; global = true }

let intersect a b =
  {
    load = a.load && b.load;
    store = a.store && b.store;
    execute = a.execute && b.execute;
    load_cap = a.load_cap && b.load_cap;
    store_cap = a.store_cap && b.store_cap;
    seal = a.seal && b.seal;
    unseal = a.unseal && b.unseal;
    global = a.global && b.global;
  }

let subset a b =
  (not a.load || b.load)
  && ((not a.store) || b.store)
  && ((not a.execute) || b.execute)
  && ((not a.load_cap) || b.load_cap)
  && ((not a.store_cap) || b.store_cap)
  && ((not a.seal) || b.seal)
  && ((not a.unseal) || b.unseal)
  && ((not a.global) || b.global)

let equal a b = a = b

let pp fmt p =
  let c b ch = if b then ch else '-' in
  Format.fprintf fmt "%c%c%c%c%c%c%c%c" (c p.load 'r') (c p.store 'w')
    (c p.execute 'x') (c p.load_cap 'R') (c p.store_cap 'W') (c p.seal 's')
    (c p.unseal 'u') (c p.global 'G')
