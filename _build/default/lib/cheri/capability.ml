type t = {
  tag : bool;
  base : int;
  length : int;
  cursor : int;
  perms : Perms.t;
  sealed : Otype.t option;
}

(* Compressed capabilities can represent cursors only within a window
   around the bounds; moving further clears the tag. 4 KiB on each side
   is a simple stand-in for the CHERI Concentrate window. *)
let representable_slack = 4096

let root ~base ~length ~perms =
  if base < 0 || length < 0 then invalid_arg "Capability.root: negative bounds";
  { tag = true; base; length; cursor = base; perms; sealed = None }

let null =
  { tag = false; base = 0; length = 0; cursor = 0; perms = Perms.none; sealed = None }

let base c = c.base
let length c = c.length
let cursor c = c.cursor
let limit c = c.base + c.length
let perms c = c.perms
let is_tagged c = c.tag
let is_sealed c = Option.is_some c.sealed
let otype c = c.sealed

let require_exact c op =
  if not c.tag then
    Fault.raise_fault Tag_violation ~address:c.cursor
      ~detail:(op ^ " via untagged capability");
  if is_sealed c then
    Fault.raise_fault Seal_violation ~address:c.cursor
      ~detail:(op ^ " via sealed capability")

let set_bounds c ~base ~length =
  require_exact c "set_bounds";
  if length < 0 then
    Fault.raise_fault Monotonicity_violation ~address:base
      ~detail:"set_bounds with negative length";
  if base < c.base || base + length > limit c then
    Fault.raise_fault Monotonicity_violation ~address:base
      ~detail:
        (Printf.sprintf "set_bounds [0x%x,+0x%x) escapes [0x%x,+0x%x)" base
           length c.base c.length);
  { c with base; length; cursor = base }

let and_perms c p =
  require_exact c "and_perms";
  { c with perms = Perms.intersect c.perms p }

let set_cursor c addr =
  require_exact c "set_cursor";
  if addr < c.base - representable_slack || addr > limit c + representable_slack
  then { c with cursor = addr; tag = false }
  else { c with cursor = addr }

let incr_cursor c delta = set_cursor c (c.cursor + delta)

let derive c ~offset ~length ~perms =
  let narrowed = set_bounds c ~base:(c.base + offset) ~length in
  and_perms narrowed perms

let seal ~sealer c =
  require_exact c "seal";
  if not sealer.tag then
    Fault.raise_fault Tag_violation ~address:sealer.cursor
      ~detail:"seal via untagged sealer";
  if is_sealed sealer then
    Fault.raise_fault Seal_violation ~address:sealer.cursor
      ~detail:"seal via sealed sealer";
  if not sealer.perms.Perms.seal then
    Fault.raise_fault Permission_violation ~address:sealer.cursor
      ~detail:"sealer lacks seal permission";
  if sealer.cursor < sealer.base || sealer.cursor >= limit sealer then
    Fault.raise_fault Out_of_bounds ~address:sealer.cursor
      ~detail:"sealer cursor outside its otype space";
  { c with sealed = Some (Otype.of_int_exn sealer.cursor) }

let unseal ~unsealer c =
  if not c.tag then
    Fault.raise_fault Tag_violation ~address:c.cursor
      ~detail:"unseal of untagged capability";
  match c.sealed with
  | None ->
    Fault.raise_fault Unseal_violation ~address:c.cursor
      ~detail:"unseal of an unsealed capability"
  | Some ot ->
    if not unsealer.tag then
      Fault.raise_fault Tag_violation ~address:unsealer.cursor
        ~detail:"unseal via untagged unsealer";
    if not unsealer.perms.Perms.unseal then
      Fault.raise_fault Permission_violation ~address:unsealer.cursor
        ~detail:"unsealer lacks unseal permission";
    if unsealer.cursor <> Otype.to_int ot then
      Fault.raise_fault Unseal_violation ~address:unsealer.cursor
        ~detail:
          (Printf.sprintf "unsealer otype %d does not match %d" unsealer.cursor
             (Otype.to_int ot));
    { c with sealed = None }

type access = Load | Store | Execute | Load_cap | Store_cap

let access_to_string = function
  | Load -> "load"
  | Store -> "store"
  | Execute -> "execute"
  | Load_cap -> "load_cap"
  | Store_cap -> "store_cap"

let has_perm p = function
  | Load -> p.Perms.load
  | Store -> p.Perms.store
  | Execute -> p.Perms.execute
  | Load_cap -> p.Perms.load_cap
  | Store_cap -> p.Perms.store_cap

let in_bounds c ~addr ~len = addr >= c.base && addr + len <= limit c && len >= 0

let check_access c access ~addr ~len =
  if not c.tag then
    Fault.raise_fault Tag_violation ~address:addr
      ~detail:(access_to_string access ^ " via untagged capability");
  if is_sealed c then
    Fault.raise_fault Seal_violation ~address:addr
      ~detail:(access_to_string access ^ " via sealed capability");
  if not (has_perm c.perms access) then
    Fault.raise_fault Permission_violation ~address:addr
      ~detail:
        (Printf.sprintf "%s not permitted by %s" (access_to_string access)
           (Format.asprintf "%a" Perms.pp c.perms));
  if not (in_bounds c ~addr ~len) then
    Fault.raise_fault Out_of_bounds ~address:addr
      ~detail:
        (Printf.sprintf "%s of [0x%x,+0x%x) outside [0x%x,+0x%x)"
           (access_to_string access) addr len c.base c.length)

let check_deref c access ~len = check_access c access ~addr:c.cursor ~len

let equal a b =
  a.tag = b.tag && a.base = b.base && a.length = b.length && a.cursor = b.cursor
  && Perms.equal a.perms b.perms
  && Option.equal Otype.equal a.sealed b.sealed

let pp fmt c =
  Format.fprintf fmt "cap{%s base=0x%x len=0x%x cur=0x%x %a%s}"
    (if c.tag then "v" else "!")
    c.base c.length c.cursor Perms.pp c.perms
    (match c.sealed with
    | None -> ""
    | Some ot -> Format.asprintf " sealed:%a" Otype.pp ot)
