(** Compartment contexts: the DDC/PCC pair.

    In hybrid-mode CHERI every legacy (integer-pointer) memory access is
    implicitly checked against the Default Data Capability, and every
    instruction fetch against the Program Counter Capability. A
    compartment is exactly such a pair plus an identity; the Intravisor
    installs a cVM's pair before jumping into it, and any access outside
    the DDC raises the out-of-bounds exception of the paper's Fig. 3. *)

type t

val make : name:string -> id:int -> ddc:Capability.t -> pcc:Capability.t -> t
val name : t -> string
val id : t -> int
val ddc : t -> Capability.t
val pcc : t -> Capability.t

val with_ddc : t -> Capability.t -> t
(** Replace the DDC (e.g. to install a narrowed view); monotonicity is
    the caller's obligation and is enforced by how the new DDC was
    derived. *)

(** {1 Hybrid-mode accesses}

    These model compiled legacy code touching memory through integer
    pointers: the check is against this compartment's DDC. *)

val load_bytes : t -> Tagged_memory.t -> addr:int -> len:int -> bytes
val store_bytes : t -> Tagged_memory.t -> addr:int -> bytes -> unit
val get_u8 : t -> Tagged_memory.t -> addr:int -> int
val set_u8 : t -> Tagged_memory.t -> addr:int -> int -> unit

val can_access : t -> addr:int -> len:int -> write:bool -> bool
(** Non-raising predicate. *)

val check_fetch : t -> addr:int -> unit
(** Instruction fetch at [addr] against the PCC. *)

val pp : Format.formatter -> t -> unit
