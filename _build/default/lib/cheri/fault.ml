type kind =
  | Tag_violation
  | Out_of_bounds
  | Permission_violation
  | Seal_violation
  | Unseal_violation
  | Monotonicity_violation
  | Representability_violation

type t = { kind : kind; address : int; detail : string }

exception Capability_fault of t

let raise_fault kind ~address ~detail =
  raise (Capability_fault { kind; address; detail })

let kind_to_string = function
  | Tag_violation -> "CAP tag violation"
  | Out_of_bounds -> "CAP out-of-bounds"
  | Permission_violation -> "CAP permission violation"
  | Seal_violation -> "CAP seal violation"
  | Unseal_violation -> "CAP unseal violation"
  | Monotonicity_violation -> "CAP monotonicity violation"
  | Representability_violation -> "CAP representability violation"

let pp fmt f =
  Format.fprintf fmt "%s at 0x%x (%s)" (kind_to_string f.kind) f.address f.detail

let to_string f = Format.asprintf "%a" pp f

let () =
  Printexc.register_printer (function
    | Capability_fault f -> Some ("Capability_fault: " ^ to_string f)
    | _ -> None)
