(** Object types for capability sealing.

    A sealed capability carries an object type (otype); it can only be
    unsealed by a capability whose bounds cover that otype and which
    holds the unseal permission. The Intravisor allocates one otype per
    cVM entry point so trampolines are the only way across compartment
    boundaries. *)

type t = private int

val unsealed_sentinel : t
(** Pseudo-otype used internally for "not sealed"; never allocated. *)

type allocator

val allocator : unit -> allocator
val fresh : allocator -> t
val of_int_exn : int -> t
(** @raise Invalid_argument on negative values. For tests. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
