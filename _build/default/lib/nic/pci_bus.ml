type direction = To_memory | From_memory

type lane = {
  bps : float;
  mutable busy_until : Dsim.Time.t;
  mutable transfers : int;
}

type t = { rx : lane; tx : lane; per_transfer_ns : float }

let lane bps = { bps; busy_until = Dsim.Time.zero; transfers = 0 }

let create ?(rx_bps = 1.395e9) ?(tx_bps = 1.609e9) ?(per_transfer_ns = 0.) ()
    =
  { rx = lane rx_bps; tx = lane tx_bps; per_transfer_ns }

let of_cost_model (cm : Dsim.Cost_model.t) =
  create ~rx_bps:cm.pci_rx_bps ~tx_bps:cm.pci_tx_bps
    ~per_transfer_ns:cm.dma_per_packet_ns ()

let lane_of t = function To_memory -> t.rx | From_memory -> t.tx

let reserve t dir ~now ~bytes =
  let l = lane_of t dir in
  let start = Dsim.Time.max now l.busy_until in
  let dur_ns = (float_of_int bytes *. 8. /. l.bps *. 1e9) +. t.per_transfer_ns in
  let fin = Dsim.Time.add start (Dsim.Time.of_float_ns dur_ns) in
  l.busy_until <- fin;
  l.transfers <- l.transfers + 1;
  fin

let busy_until t dir = (lane_of t dir).busy_until
let transfers t dir = (lane_of t dir).transfers
