lib/nic/port_stats.ml: Format
