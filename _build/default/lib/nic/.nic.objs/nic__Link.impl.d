lib/nic/link.ml: Bytes Dsim
