lib/nic/link.mli: Dsim
