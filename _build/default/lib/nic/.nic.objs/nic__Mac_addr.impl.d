lib/nic/mac_addr.ml: Bytes Char Format Hashtbl Printf String
