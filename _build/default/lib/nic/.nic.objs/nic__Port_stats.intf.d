lib/nic/port_stats.mli: Format
