lib/nic/igb.ml: Array Bytes Cheri Dsim Link List Mac_addr Pci_bus Port_stats Printf Queue
