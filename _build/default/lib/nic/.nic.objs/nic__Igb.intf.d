lib/nic/igb.mli: Cheri Dsim Link Mac_addr Pci_bus Port_stats
