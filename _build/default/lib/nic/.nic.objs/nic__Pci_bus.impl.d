lib/nic/pci_bus.ml: Dsim
