lib/nic/pci_bus.mli: Dsim
