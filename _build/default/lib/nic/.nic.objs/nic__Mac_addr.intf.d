lib/nic/mac_addr.mli: Format
