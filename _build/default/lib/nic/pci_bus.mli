(** Shared PCI bus bandwidth model.

    The Intel 82576 card in the paper hangs both Gigabit ports off one
    PCI(e) link, and Table II attributes the dual-port efficiency loss
    (65.8% RX / 75.7% TX per port) to exactly this bottleneck. The model
    serialises DMA transfers per direction: a transfer of [bytes]
    occupies the direction for [bytes*8/bps + fixed] and transfers queue
    FIFO behind each other, so with one active port the bus is invisible
    and with two the aggregate plateaus at the direction's ceiling. *)

type t

type direction =
  | To_memory  (** Device writes packet data (receive path). *)
  | From_memory  (** Device reads packet data (transmit path). *)

val create :
  ?rx_bps:float -> ?tx_bps:float -> ?per_transfer_ns:float -> unit -> t
(** Defaults come from {!Dsim.Cost_model.default}'s calibration. *)

val of_cost_model : Dsim.Cost_model.t -> t

val reserve : t -> direction -> now:Dsim.Time.t -> bytes:int -> Dsim.Time.t
(** Book a transfer starting no earlier than [now]; returns its
    completion time and advances the direction's busy horizon. *)

val busy_until : t -> direction -> Dsim.Time.t
val transfers : t -> direction -> int
(** Number of transfers booked so far (diagnostics). *)
