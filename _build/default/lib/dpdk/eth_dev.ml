type t = {
  port : Nic.Igb.port;
  rx_pool : Mbuf.pool;
  in_flight : (int, Mbuf.t) Hashtbl.t;  (* posted addr -> owning mbuf *)
}

let attach _eal port ~rx_pool = { port; rx_pool; in_flight = Hashtbl.create 512 }

let port t = t.port
let rx_pool t = t.rx_pool

let post_rx t m =
  (* The device writes at the mbuf's data address, leaving the headroom
     available for (de)encapsulation by the stack. *)
  let addr = Mbuf.data_addr m in
  let room = Mbuf.tailroom m in
  if Nic.Igb.rx_refill t.port ~addr ~len:room then begin
    Hashtbl.replace t.in_flight addr m;
    true
  end
  else begin
    Mbuf.free m;
    false
  end

let restock t =
  let rec go () =
    if Nic.Igb.rx_free_slots t.port > 0 then
      match Mbuf.alloc t.rx_pool with
      | None -> ()
      | Some m -> if post_rx t m then go ()
  in
  go ()

let start t = restock t

let reap t =
  List.iter
    (fun addr ->
      match Hashtbl.find_opt t.in_flight addr with
      | Some m ->
        Hashtbl.remove t.in_flight addr;
        Mbuf.free m
      | None -> ())
    (Nic.Igb.tx_reap t.port ~max:max_int)

let rx_burst t ~max =
  reap t;
  let completions = Nic.Igb.rx_burst t.port ~max in
  let take (addr, pkt_len) =
    match Hashtbl.find_opt t.in_flight addr with
    | None -> None
    | Some m ->
      Hashtbl.remove t.in_flight addr;
      (* Geometry: the device filled [pkt_len] bytes at the data
         address; reflect that in the mbuf. *)
      ignore (Mbuf.append m pkt_len);
      Some m
  in
  let mbufs = List.filter_map take completions in
  restock t;
  mbufs

let tx_burst t mbufs =
  reap t;
  let rec go = function
    | [] -> []
    | m :: rest ->
      let addr = Mbuf.data_addr m in
      if Nic.Igb.tx_enqueue t.port ~addr ~len:(Mbuf.data_len m) then begin
        Hashtbl.replace t.in_flight addr m;
        go rest
      end
      else m :: rest
  in
  go mbufs

let tx_backlog t = Nic.Igb.tx_in_flight t.port
