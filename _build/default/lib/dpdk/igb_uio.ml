type binding = { port_index : int; window_base : int; window_len : int }

let bind port ~dma_window =
  let p = Cheri.Capability.perms dma_window in
  if not (p.Cheri.Perms.load && p.Cheri.Perms.store) then
    invalid_arg "Igb_uio.bind: DMA window needs load and store rights";
  (* Drop every right beyond data load/store — in particular the
     capability load/store rights, so DMA can never exfiltrate or forge
     tagged capabilities. *)
  let narrowed = Cheri.Capability.and_perms dma_window Cheri.Perms.data in
  Nic.Igb.set_dma_cap port narrowed;
  {
    port_index = Nic.Igb.port_index port;
    window_base = Cheri.Capability.base narrowed;
    window_len = Cheri.Capability.length narrowed;
  }

let unbind port = Nic.Igb.set_dma_cap port Cheri.Capability.null
