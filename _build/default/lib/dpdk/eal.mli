(** Environment Abstraction Layer.

    DPDK's EAL owns the hugepage memory out of which every mempool and
    ring is carved. Here it owns a capability to a contiguous region of
    the single address space and hands out named, bounds-narrowed
    memzone capabilities. A cVM embedding DPDK gets its EAL region from
    the Intravisor, so all packet memory is confined to the compartment
    by construction. *)

type t

val create :
  Dsim.Engine.t -> Cheri.Tagged_memory.t -> region:Cheri.Capability.t -> t
(** [region] is the compartment's DPDK heap (must be read-write). *)

val engine : t -> Dsim.Engine.t
val mem : t -> Cheri.Tagged_memory.t

val memzone_reserve : t -> name:string -> size:int -> Cheri.Capability.t
(** Carve a named zone; the name must be fresh.
    @raise Invalid_argument on duplicates, [Out_of_memory] when full. *)

val memzone_lookup : t -> name:string -> Cheri.Capability.t option
val free_bytes : t -> int
