lib/dpdk/igb_uio.ml: Cheri Nic
