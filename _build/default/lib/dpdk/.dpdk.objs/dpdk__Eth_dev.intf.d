lib/dpdk/eth_dev.mli: Eal Mbuf Nic
