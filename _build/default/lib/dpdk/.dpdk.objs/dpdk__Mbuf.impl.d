lib/dpdk/mbuf.ml: Bytes Cheri Eal Printf Queue
