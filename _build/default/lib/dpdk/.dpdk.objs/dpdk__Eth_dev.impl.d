lib/dpdk/eth_dev.ml: Hashtbl List Mbuf Nic
