lib/dpdk/eal.mli: Cheri Dsim
