lib/dpdk/mbuf.mli: Cheri Eal
