lib/dpdk/eal.ml: Cheri Dsim Hashtbl
