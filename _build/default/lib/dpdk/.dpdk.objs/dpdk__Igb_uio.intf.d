lib/dpdk/igb_uio.mli: Cheri Nic
