(** Kernel-detach shim (igb_uio / vfio equivalent).

    The paper implemented "the module that detaches the NIC from
    kernel-space and attaches it to user-space, ensuring that the memory
    allocations it requests are performed with the correct permission
    flags". Here that means: take the user-space DMA window capability,
    strip it down to plain data load/store (a NIC must never move tagged
    capabilities), and install it as the port's bus-master capability. *)

type binding = {
  port_index : int;
  window_base : int;
  window_len : int;
}

val bind : Nic.Igb.port -> dma_window:Cheri.Capability.t -> binding
(** @raise Invalid_argument if the window lacks load or store rights
    (the device needs both directions). *)

val unbind : Nic.Igb.port -> unit
(** Detach: installs a null capability; any further DMA faults. *)
