(* netrepro - regenerate the paper's tables and figures from the
   simulated CHERI-compartmentalized network stack. *)

let list_experiments () =
  List.iter
    (fun (s : Core.Experiment.spec) ->
      Printf.printf "%-14s %-10s %s\n" s.Core.Experiment.id
        s.Core.Experiment.paper_ref s.Core.Experiment.title)
    Core.Experiment.all;
  0

let profile_of quick iterations =
  let base = if quick then Core.Experiment.quick else Core.Experiment.full in
  match iterations with
  | None -> base
  | Some n -> { base with Core.Experiment.iterations = n }

let run_experiment ids quick iterations =
  let profile = profile_of quick iterations in
  let targets =
    match ids with
    | [] -> Core.Experiment.all
    | ids -> (
      match
        List.map
          (fun id ->
            match Core.Experiment.find id with
            | Some s -> Ok s
            | None -> Error id)
          ids
        |> List.partition_map (function Ok s -> Left s | Error e -> Right e)
      with
      | specs, [] -> specs
      | _, missing ->
        Printf.eprintf "unknown experiment(s): %s\nknown: %s\n"
          (String.concat ", " missing)
          (String.concat ", " (Core.Experiment.ids ()));
        exit 2)
  in
  List.iter
    (fun (s : Core.Experiment.spec) ->
      Printf.printf "=== %s (%s): %s ===\n%s\n\n" s.Core.Experiment.id
        s.Core.Experiment.paper_ref s.Core.Experiment.title
        (s.Core.Experiment.render profile);
      flush stdout)
    targets;
  0

let run_attacks () =
  List.iter
    (fun r -> Format.printf "%a@.@." Core.Attack.pp_report r)
    (Core.Attack.run_all ());
  0

open Cmdliner

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"CI-sized runs (short windows, few samples).")

let iters_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "iterations" ] ~docv:"N"
        ~doc:"Latency samples per configuration (paper: 1000000).")

let ids_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT"
        ~doc:"Experiment ids (e.g. table2 fig4). Default: all.")

let run_cmd =
  let doc = "regenerate tables/figures" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(const run_experiment $ ids_arg $ quick_flag $ iters_opt)

let list_cmd =
  let doc = "list available experiments" in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_experiments $ const ())

let attack_cmd =
  let doc = "run the Fig. 3 compartmentalization attacks" in
  Cmd.v (Cmd.info "attack" ~doc) Term.(const run_attacks $ const ())

let default = Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "netrepro" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Enabling Security on the Edge: A CHERI \
         Compartmentalized Network Stack' (DATE 2025) on a simulated \
         Morello/CheriBSD system."
  in
  exit (Cmd.eval' (Cmd.group ~default info [ run_cmd; list_cmd; attack_cmd ]))
