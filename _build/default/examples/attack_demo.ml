(* Figure 3 demo: a compromised compartment attacks its neighbours
   while an iperf server keeps serving traffic in another cVM.

   Under CHERI every attack traps with a capability exception and the
   victim's bandwidth is unaffected; on the flat baseline the same
   access patterns silently leak or corrupt.

     dune exec examples/attack_demo.exe *)

let () =
  Format.printf
    "== Fig. 3: applications accessing memory outside their boundaries ==@.@.";
  Format.printf
    "victim: iperf server in cVM2 at full line rate; attacker: cVM3.@.@.";
  let reports = Core.Attack.run_all () in
  List.iter (fun r -> Format.printf "%a@.@." Core.Attack.pp_report r) reports;
  let trapped =
    List.for_all (fun r -> Core.Attack.outcome_is_trap r.Core.Attack.cheri) reports
  in
  let alive = List.for_all (fun r -> r.Core.Attack.victim_alive) reports in
  Format.printf "all %d attacks trapped under CHERI: %b@." (List.length reports) trapped;
  Format.printf "victim unaffected throughout: %b@." alive
