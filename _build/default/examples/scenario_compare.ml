(* Compare the paper's compartmentalization designs side by side:
   bandwidth (Table II) and ff_write latency (Figs. 4-6) for Baseline,
   Scenario 1 and Scenario 2.

     dune exec examples/scenario_compare.exe            (full windows)
     dune exec examples/scenario_compare.exe -- quick   (CI-sized) *)

let () =
  let profile =
    if Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" then
      Core.Experiment.quick
    else
      { Core.Experiment.full with Core.Experiment.iterations = 20_000 }
  in
  Format.printf "== TCP bandwidth (Table II) ==@.@.";
  List.iter
    (fun (group, samples) ->
      Format.printf "%s@." group;
      List.iter
        (fun s -> Format.printf "  %a@." Core.Bandwidth.pp_sample s)
        samples)
    (Core.Experiment.table2 ~profile ());
  Format.printf "@.== ff_write() execution time (Figs. 4-6) ==@.@.";
  let results =
    List.map
      (fun p -> Core.Measurement.run ~iterations:profile.Core.Experiment.iterations p)
      [ Core.Measurement.Baseline; Core.Measurement.Scenario1;
        Core.Measurement.Scenario2 { contended = false };
        Core.Measurement.Scenario2 { contended = true } ]
  in
  List.iter (fun r -> Format.printf "%a@." Core.Measurement.pp_result r) results;
  Format.printf "@.%s@."
    (Core.Report.ascii_boxplot
       ~labels_and_boxes:
         (List.map
            (fun (r : Core.Measurement.result) ->
              (r.Core.Measurement.label, r.Core.Measurement.boxplot))
            results)
       ~log_scale:true ())
