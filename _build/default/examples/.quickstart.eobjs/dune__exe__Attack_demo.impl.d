examples/attack_demo.ml: Core Format List
