examples/scenario_compare.ml: Array Core Format List Sys
