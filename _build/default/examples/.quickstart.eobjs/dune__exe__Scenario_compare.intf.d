examples/scenario_compare.mli:
