examples/contention_sweep.ml: Capvm Core Dsim Float Format List Option
