examples/quickstart.ml: Bytes Capvm Cheri Core Dsim Errno Ff_api Format Ipv4_addr Netstack Stack String
