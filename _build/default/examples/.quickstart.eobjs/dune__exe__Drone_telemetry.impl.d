examples/drone_telemetry.ml: Capvm Cheri Core Dsim Errno Format Ipv4_addr Netstack Stack
