examples/quickstart.mli:
