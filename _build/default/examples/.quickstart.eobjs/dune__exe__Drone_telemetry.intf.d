examples/drone_telemetry.mli:
