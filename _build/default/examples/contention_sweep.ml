(* Beyond the paper: sweep the Scenario 2 design space the conclusion
   points at — locking strategy (barging umtx vs FIFO ticket) and the
   finer-grained Scenario 3 split — and watch the bandwidth/latency
   trade-off.

     dune exec examples/contention_sweep.exe *)

let profile =
  { Core.Experiment.quick with Core.Experiment.duration = Dsim.Time.ms 600 }

let bw built ~fair =
  Core.Bandwidth.run built ~warmup:(Dsim.Time.ms 200)
    ~duration:profile.Core.Experiment.duration ~fair_share_mbit:fair ()

let () =
  Format.printf "== Locking strategy under contention (paper Sec. VI) ==@.@.";
  List.iter
    (fun (name, policy) ->
      let built =
        Core.Scenarios.build_scenario2 ~contended:true ~lock_policy:policy
          ~direction:Core.Scenarios.Dut_sends ()
      in
      let mu = Option.get built.Core.Scenarios.mutex in
      let samples = bw built ~fair:500. in
      Format.printf "%s:@." name;
      List.iter (fun s -> Format.printf "  %a@." Core.Bandwidth.pp_sample s) samples;
      Format.printf "  lock: %d acquisitions, %d contended, avg wait %.1f us@.@."
        (Capvm.Umtx.acquisitions mu)
        (Capvm.Umtx.contended_acquisitions mu)
        (Capvm.Umtx.total_wait_ns mu
        /. Float.max 1. (float_of_int (Capvm.Umtx.contended_acquisitions mu))
        /. 1e3))
    [ ("barging umtx (paper's design)", Capvm.Umtx.Barging);
      ("FIFO ticket lock", Capvm.Umtx.Fifo) ];

  Format.printf "== Finer-grained split (Scenario 3: app | F-Stack | DPDK) ==@.@.";
  List.iter
    (fun (name, built) ->
      let samples = bw built ~fair:1000. in
      Format.printf "%s:@." name;
      List.iter (fun s -> Format.printf "  %a@." Core.Bandwidth.pp_sample s) samples)
    [ ( "Scenario 2 (two compartments)",
        Core.Scenarios.build_scenario2 ~direction:Core.Scenarios.Dut_sends () );
      ( "Scenario 3 (three compartments)",
        Core.Scenarios.build_scenario3_split ~direction:Core.Scenarios.Dut_sends () ) ]
