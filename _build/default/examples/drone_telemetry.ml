(* Drone telemetry: the paper's motivating workload.

   A drone (PX4-style autopilot) streams MAVLink heartbeats and attitude
   over UDP through the compartmentalized stack to a ground station.
   Mid-flight, an attacker sends the CVE-2024-38951-shaped frame — a
   MAVLink header whose length field lies. The ground station's
   vulnerable decode path copies the declared length into its receive
   buffer:

   - under CHERI the copy trips the buffer capability and the parser
     compartment traps (the telemetry keeps flowing);
   - on a flat memory system the same code overruns the buffer — the
     DoS/takeover of the CVE.

     dune exec examples/drone_telemetry.exe *)

open Netstack

let ip_drone = Ipv4_addr.make 10 10 0 1
let ip_ground = Ipv4_addr.make 10 10 0 2
let telemetry_port = 14550

let get = function
  | Ok v -> v
  | Error e -> failwith ("drone_telemetry: " ^ Errno.to_string e)

let () =
  Format.printf "== Drone telemetry over the compartmentalized stack ==@.@.";
  let engine = Dsim.Engine.create () in
  let drone_node = Core.Topology.make_node engine ~name:"drone" ~ports:1 () in
  let ground_node = Core.Topology.make_node engine ~name:"ground" ~ports:1 () in
  ignore (Core.Topology.link engine drone_node 0 ground_node 0);
  let bring_up node ip =
    let cvm =
      Capvm.Intravisor.create_cvm (Core.Topology.intravisor node) ~name:"net"
        ~size:(12 * 1024 * 1024)
    in
    let region = Capvm.Cvm.sub_region cvm ~size:Core.Topology.default_netif_region_size in
    let nif = Core.Topology.make_netif node ~region ~port_idx:0 ~ip () in
    Stack.start nif.Core.Topology.stack;
    (cvm, nif)
  in
  let drone_cvm, drone = bring_up drone_node ip_drone in
  let _, ground = bring_up ground_node ip_ground in

  (* Ground station: UDP socket + a bounded 64-byte parse buffer minted
     from its parser compartment. *)
  let gs = ground.Core.Topology.stack in
  let gfd = get (Stack.udp_socket gs) in
  get (Stack.udp_bind gs gfd ~port:telemetry_port);
  let parser_cvm =
    Capvm.Intravisor.create_cvm
      (Core.Topology.intravisor ground_node)
      ~name:"mavlink-parser" ~size:(1 lsl 20)
  in
  let parse_buf = Capvm.Cvm.calloc parser_cvm (Core.Topology.node_mem ground_node) 64 in
  let received = ref 0 and last = ref None in
  let ground_poll () =
    let rec drain () =
      match get (Stack.udp_recvfrom gs gfd) with
      | None -> ()
      | Some (_src, _port, data) ->
        (match Core.Mavlink.decode data with
        | Ok frame ->
          incr received;
          last := Some frame
        | Error e -> Format.printf "ground: rejected frame (%s)@." e);
        drain ()
    in
    drain ()
  in
  Stack.set_hook gs (Some (fun _ -> ground_poll ()));

  (* Drone: 10 Hz heartbeat + 50 Hz attitude. *)
  let ds = drone.Core.Topology.stack in
  let dfd = get (Stack.udp_socket ds) in
  let seq = ref 0 in
  let send message =
    incr seq;
    let frame = { Core.Mavlink.seq = !seq land 0xff; sysid = 1; compid = 1; message } in
    match
      Stack.udp_sendto ds dfd ~ip:ip_ground ~port:telemetry_port
        ~buf:(Core.Mavlink.encode frame)
    with
    | Ok () -> ()
    | Error e -> Format.printf "drone: send failed (%a)@." Errno.pp e
  in
  let rec heartbeat () =
    send (Core.Mavlink.Heartbeat { vehicle_type = 2; autopilot = 12; base_mode = 81; status = 4 });
    ignore (Dsim.Engine.schedule engine ~delay:(Dsim.Time.ms 100) heartbeat)
  in
  let angle = ref 0 in
  let rec attitude () =
    angle := (!angle + 37) mod 36000;
    send
      (Core.Mavlink.Attitude
         { time_ms = Dsim.Time.to_float_ms (Dsim.Engine.now engine) |> int_of_float;
           roll_cdeg = (!angle mod 1200) - 600;
           pitch_cdeg = (!angle mod 800) - 400;
           yaw_cdeg = !angle - 18000 });
    ignore (Dsim.Engine.schedule engine ~delay:(Dsim.Time.ms 20) attitude)
  in
  heartbeat ();
  attitude ();
  ignore drone_cvm;

  let run_ms n =
    Dsim.Engine.run engine
      ~until:(Dsim.Time.add (Dsim.Engine.now engine) (Dsim.Time.ms n))
  in
  run_ms 1000;
  Format.printf "after 1s of flight: %d telemetry frames received@." !received;
  (match !last with
  | Some f -> Format.printf "latest: %a@." Core.Mavlink.pp f
  | None -> ());

  (* The attack: a frame declaring a 200-byte payload against the ground
     station's 64-byte parse buffer, through the CVE-shaped decoder. *)
  Format.printf "@.attacker sends an oversized-length MAVLink frame (CVE-2024-38951 shape)...@.";
  let evil = Core.Mavlink.forge_oversized ~declared_len:200 in
  (match
     Core.Mavlink.decode_into
       (Core.Topology.node_mem ground_node)
       ~dst:parse_buf evil
   with
  | Ok _ -> Format.printf "!! parser accepted it (bug)@."
  | Error e -> Format.printf "parser rejected it cleanly: %s@." e
  | exception Cheri.Fault.Capability_fault f ->
    Format.printf "CHERI trapped the overflow in the parser compartment:@.  %a@."
      Cheri.Fault.pp f);

  (* The safe decoder rejects the same frame without any copy at all. *)
  (match Core.Mavlink.decode evil with
  | Error e -> Format.printf "(the bounds-checked parser says: %s)@." e
  | Ok _ -> Format.printf "!! safe parser accepted the forgery@.");

  let before = !received in
  run_ms 500;
  Format.printf "@.telemetry after the attack: +%d frames in 500ms — the drone flies on.@."
    (!received - before)
