(* Quickstart: build two machines connected by a cable, bring up the
   compartmentalized user-space stack on both, ping, then run a small
   TCP exchange through the capability-checked ff_* API.

     dune exec examples/quickstart.exe *)

open Netstack

let ip_client = Ipv4_addr.make 192 168 1 1
let ip_server = Ipv4_addr.make 192 168 1 2

let get = function
  | Ok v -> v
  | Error e -> failwith ("quickstart: " ^ Errno.to_string e)

let () =
  Format.printf "== CHERI compartmentalized network stack: quickstart ==@.@.";

  (* One simulation engine; two machines, each with an Intravisor that
     owns its single address space, a NIC, and a network cVM running
     DPDK + F-Stack. *)
  let engine = Dsim.Engine.create () in
  let client_node = Core.Topology.make_node engine ~name:"client" ~ports:1 () in
  let server_node = Core.Topology.make_node engine ~name:"server" ~ports:1 () in
  ignore (Core.Topology.link engine client_node 0 server_node 0);

  let bring_up node ip =
    let cvm =
      Capvm.Intravisor.create_cvm (Core.Topology.intravisor node) ~name:"net"
        ~size:(12 * 1024 * 1024)
    in
    let region =
      Capvm.Cvm.sub_region cvm ~size:Core.Topology.default_netif_region_size
    in
    let nif = Core.Topology.make_netif node ~region ~port_idx:0 ~ip () in
    Stack.start nif.Core.Topology.stack;
    (cvm, nif)
  in
  let client_cvm, client = bring_up client_node ip_client in
  let _server_cvm, server = bring_up server_node ip_server in
  Format.printf "client cVM: %a@." Capvm.Cvm.pp client_cvm;

  let run_ms n =
    Dsim.Engine.run engine
      ~until:(Dsim.Time.add (Dsim.Engine.now engine) (Dsim.Time.ms n))
  in

  (* 1. ICMP ping (ARP resolves lazily underneath). *)
  Stack.ping client.Core.Topology.stack ~ip:ip_server ~ident:1 ~seq:1
    ~payload:(Bytes.of_string "are you there?");
  run_ms 5;
  (match Stack.pings_received client.Core.Topology.stack with
  | (1, 1) :: _ -> Format.printf "ping: server answered (RTT < 5ms sim)@."
  | _ -> Format.printf "ping: no reply?!@.");

  (* 2. TCP through the ff_* API with capability-backed buffers. *)
  let sff = server.Core.Topology.ff and cff = client.Core.Topology.ff in
  let lfd = get (Ff_api.ff_socket sff) in
  get (Ff_api.ff_bind sff lfd ~port:7777);
  get (Ff_api.ff_listen sff lfd ~backlog:4);

  let cfd = get (Ff_api.ff_socket cff) in
  (match Ff_api.ff_connect cff cfd ~ip:ip_server ~port:7777 with
  | Ok () | Error Errno.EINPROGRESS -> ()
  | Error e -> failwith (Errno.to_string e));
  run_ms 10;
  let afd, peer, pport = get (Ff_api.ff_accept sff lfd) in
  Format.printf "tcp: accepted connection from %a:%d@." Ipv4_addr.pp peer pport;

  (* The application buffers are bounded capabilities minted from each
     cVM's heap: an off-by-one would trap, not leak. *)
  let cbuf = Capvm.Cvm.calloc client_cvm (Core.Topology.node_mem client_node) 256 in
  let msg = "hello from a compartment" in
  Cheri.Tagged_memory.store_bytes
    (Core.Topology.node_mem client_node)
    ~cap:cbuf
    ~addr:(Cheri.Capability.base cbuf)
    (Bytes.of_string msg);
  let sent = get (Ff_api.ff_write cff cfd ~buf:cbuf ~nbytes:(String.length msg)) in
  run_ms 10;

  let sbuf = Capvm.Cvm.calloc _server_cvm (Core.Topology.node_mem server_node) 256 in
  let got = get (Ff_api.ff_read sff afd ~buf:sbuf ~nbytes:256) in
  let text =
    Bytes.to_string
      (Cheri.Tagged_memory.load_bytes
         (Core.Topology.node_mem server_node)
         ~cap:sbuf
         ~addr:(Cheri.Capability.base sbuf)
         ~len:got)
  in
  Format.printf "tcp: sent %d bytes, server read %d: %S@." sent got text;

  (* 3. What the capability bounds buy: one byte too many traps. *)
  (match Ff_api.ff_write cff cfd ~buf:cbuf ~nbytes:257 with
  | Ok _ -> Format.printf "overflow: NOT caught (bug!)@."
  | Error e -> Format.printf "overflow: errno %a (unexpected)@." Errno.pp e
  | exception Cheri.Fault.Capability_fault f ->
    Format.printf "overflow by one byte: %a@." Cheri.Fault.pp f);

  Format.printf "@.done.@."
