type t = string (* exactly 6 bytes *)

let of_bytes_exn s =
  if String.length s <> 6 then invalid_arg "Mac_addr.of_bytes_exn: need 6 bytes";
  s

let make a b c d e f =
  let byte x =
    if x < 0 || x > 0xff then invalid_arg "Mac_addr.make: byte out of range";
    Char.chr x
  in
  let buf = Bytes.create 6 in
  Bytes.set buf 0 (byte a);
  Bytes.set buf 1 (byte b);
  Bytes.set buf 2 (byte c);
  Bytes.set buf 3 (byte d);
  Bytes.set buf 4 (byte e);
  Bytes.set buf 5 (byte f);
  Bytes.unsafe_to_string buf

let of_string_exn s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] ->
    let parse x =
      match int_of_string_opt ("0x" ^ x) with
      | Some v when v >= 0 && v <= 0xff -> v
      | _ -> invalid_arg ("Mac_addr.of_string_exn: bad octet " ^ x)
    in
    make (parse a) (parse b) (parse c) (parse d) (parse e) (parse f)
  | _ -> invalid_arg ("Mac_addr.of_string_exn: " ^ s)

let broadcast = "\xff\xff\xff\xff\xff\xff"
let zero = "\x00\x00\x00\x00\x00\x00"
let is_broadcast t = String.equal t broadcast
let is_multicast t = Char.code t.[0] land 0x01 = 1
let to_bytes t = t
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash

(* Allocation-free destination-address tests against a frame in place:
   the RX filter runs per packet, so it must not build a [t]. *)
let matches_bytes_at t buf ~off =
  Bytes.length buf - off >= 6
  && Bytes.get buf off = t.[0]
  && Bytes.get buf (off + 1) = t.[1]
  && Bytes.get buf (off + 2) = t.[2]
  && Bytes.get buf (off + 3) = t.[3]
  && Bytes.get buf (off + 4) = t.[4]
  && Bytes.get buf (off + 5) = t.[5]

let is_multicast_at buf ~off =
  Bytes.length buf - off >= 6 && Char.code (Bytes.get buf off) land 0x01 = 1

let to_string t =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" (Char.code t.[0])
    (Char.code t.[1]) (Char.code t.[2]) (Char.code t.[3]) (Char.code t.[4])
    (Char.code t.[5])

let pp fmt t = Format.pp_print_string fmt (to_string t)
