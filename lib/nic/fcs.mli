(** Ethernet frame check sequence (IEEE 802.3 CRC-32).

    The simulator carries the FCS *alongside* the frame bytes rather
    than appending four bytes to every buffer (the wire-time cost of the
    FCS is already in {!Link.overhead_bytes}).  The transmitting MAC
    computes it, the receiving MAC recomputes and compares — so wire
    corruption injected between the two is detected exactly where real
    hardware detects it. *)

val compute : bytes -> int
(** CRC-32 over the whole frame; allocation-free. *)
