(** Shared PCI bus bandwidth model.

    The Intel 82576 card in the paper hangs both Gigabit ports off one
    PCI(e) link, and Table II attributes the dual-port efficiency loss
    (65.8% RX / 75.7% TX per port) to exactly this bottleneck. The model
    serialises DMA transfers per direction: a transfer of [bytes]
    occupies the direction for [bytes*8/bps + fixed] and transfers queue
    FIFO behind each other, so with one active port the bus is invisible
    and with two the aggregate plateaus at the direction's ceiling. *)

type t

type direction =
  | To_memory  (** Device writes packet data (receive path). *)
  | From_memory  (** Device reads packet data (transmit path). *)

val create :
  ?rx_bps:float ->
  ?tx_bps:float ->
  ?per_transfer_ns:float ->
  ?channels:int ->
  unit ->
  t
(** Defaults come from {!Dsim.Cost_model.default}'s calibration.
    [channels] (default 1) is the number of independent busy horizons
    per direction — see {!reserve}. *)

val of_cost_model : Dsim.Cost_model.t -> t

val set_channels : t -> int -> unit
(** Grow to [n] channels (never shrinks). Topology assembly calls this
    with the engine's shard count, at setup time, before traffic. *)

val channels : t -> int

val reserve :
  ?channel:int -> t -> direction -> now:Dsim.Time.t -> bytes:int -> Dsim.Time.t
(** Book a transfer starting no earlier than [now]; returns its
    completion time and advances the channel's busy horizon. Channel 0
    (the default) is the whole bus; serial engine modes always reserve
    on it, so single-horizon FIFO semantics are unchanged. Under the
    domains executor each shard reserves on its own channel
    ({!Dsim.Engine.parallel_shard}) — disjoint mutable state, hence
    deterministic and race-free, at the cost of not modelling
    cross-shard bus contention in the parallel gear. *)

val busy_until : t -> direction -> Dsim.Time.t
(** Latest busy horizon across channels. *)

val transfers : t -> direction -> int
(** Number of transfers booked so far, all channels (diagnostics). *)
