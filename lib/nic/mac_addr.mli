(** 48-bit Ethernet MAC addresses. *)

type t

val of_bytes_exn : string -> t
(** From 6 raw bytes. @raise Invalid_argument on wrong length. *)

val of_string_exn : string -> t
(** Parse ["aa:bb:cc:dd:ee:ff"]. @raise Invalid_argument on syntax. *)

val make : int -> int -> int -> int -> int -> int -> t
val broadcast : t
val zero : t
val is_broadcast : t -> bool
val is_multicast : t -> bool
val to_bytes : t -> string
(** 6 raw bytes, network order. *)

val matches_bytes_at : t -> bytes -> off:int -> bool
(** Does the 6-byte field at [off] equal this address? False when fewer
    than 6 bytes remain. Allocation-free (per-packet RX filtering). *)

val is_multicast_at : bytes -> off:int -> bool
(** Is the I/G bit of the address at [off] set? Broadcast is a multicast
    address, so this also covers it. Allocation-free. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
