(** Per-port hardware counters, mirroring the 82576 statistics registers
    the DPDK ethdev stats API reads. *)

type t = {
  mutable tx_packets : int;
  mutable tx_bytes : int;  (** Frame bytes handed to the MAC (no preamble/IFG). *)
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable rx_no_desc : int;  (** Frames dropped: RX ring empty. *)
  mutable rx_filtered : int;  (** Frames dropped by the MAC address filter. *)
  mutable rx_crc_errors : int;  (** Frames dropped: FCS mismatch at the MAC. *)
  mutable rx_dma_errors : int;  (** Frames dropped: RX DMA transfer error. *)
  mutable tx_ring_full : int;  (** Driver enqueue attempts refused. *)
}

val create : unit -> t
val reset : t -> unit
val pp : Format.formatter -> t -> unit
