type direction = To_memory | From_memory

(* Each lane (direction) carries [channels] independent busy horizons.
   Channel 0 is the whole bus in every serial execution mode; under the
   engine's domains executor each shard reserves on its own channel
   ([Dsim.Engine.parallel_shard]), so parallel shards mutate disjoint
   slots — deterministic and race-free — at the cost of not modelling
   cross-shard bus contention in that gear (think PCIe virtual
   channels with independent credits). Serial runs always see exactly
   the single-horizon FIFO bus. *)
type lane = {
  bps : float;
  mutable busy_until : Dsim.Time.t array;
  mutable transfers : int array;
}

type t = { rx : lane; tx : lane; per_transfer_ns : float }

let lane bps ~channels =
  {
    bps;
    busy_until = Array.make channels Dsim.Time.zero;
    transfers = Array.make channels 0;
  }

let create ?(rx_bps = 1.395e9) ?(tx_bps = 1.609e9) ?(per_transfer_ns = 0.)
    ?(channels = 1) () =
  if channels < 1 then invalid_arg "Pci_bus.create: channels must be >= 1";
  { rx = lane rx_bps ~channels; tx = lane tx_bps ~channels; per_transfer_ns }

let of_cost_model (cm : Dsim.Cost_model.t) =
  create ~rx_bps:cm.pci_rx_bps ~tx_bps:cm.pci_tx_bps
    ~per_transfer_ns:cm.dma_per_packet_ns ()

let grow_lane l n =
  if Array.length l.busy_until < n then begin
    let busy = Array.make n Dsim.Time.zero in
    let xfer = Array.make n 0 in
    Array.blit l.busy_until 0 busy 0 (Array.length l.busy_until);
    Array.blit l.transfers 0 xfer 0 (Array.length l.transfers);
    l.busy_until <- busy;
    l.transfers <- xfer
  end

(* Setup-time only (single-threaded): topology assembly sizes the bus
   to the engine's shard count before any traffic flows. *)
let set_channels t n =
  if n < 1 then invalid_arg "Pci_bus.set_channels: channels must be >= 1";
  grow_lane t.rx n;
  grow_lane t.tx n

let channels t = Array.length t.rx.busy_until
let lane_of t = function To_memory -> t.rx | From_memory -> t.tx

let reserve ?(channel = 0) t dir ~now ~bytes =
  let l = lane_of t dir in
  (* An under-provisioned bus folds excess shards onto existing
     channels rather than faulting mid-run; [Topology.make_node] sizes
     every bus to the engine, so this only triggers on hand-built
     setups. *)
  let c = channel mod Array.length l.busy_until in
  let start = Dsim.Time.max now l.busy_until.(c) in
  let dur_ns = (float_of_int bytes *. 8. /. l.bps *. 1e9) +. t.per_transfer_ns in
  let fin = Dsim.Time.add start (Dsim.Time.of_float_ns dur_ns) in
  l.busy_until.(c) <- fin;
  l.transfers.(c) <- l.transfers.(c) + 1;
  fin

let busy_until t dir =
  Array.fold_left Dsim.Time.max Dsim.Time.zero (lane_of t dir).busy_until

let transfers t dir = Array.fold_left ( + ) 0 (lane_of t dir).transfers
