(** Simulated Intel 82576-class dual-port Gigabit NIC.

    The device side of the poll-mode driver contract:

    - the driver hands empty receive buffers to a port ({!rx_refill})
      and later collects filled ones ({!rx_burst});
    - the driver enqueues transmit buffers ({!tx_enqueue}, the doorbell)
      and reaps completed ones ({!tx_reap});
    - the device moves packet bytes between simulated tagged memory and
      the wire with DMA transfers that are (a) serialised on the shared
      {!Pci_bus} and (b) authorised by the {e bus-master capability}
      installed at configuration time — the "detach from kernel, map
      with correct permission flags" step the paper implemented for
      DPDK/Morello.

    {2 Multi-queue}

    A port carries [?queues:n] RX/TX descriptor-ring pairs (default 1,
    the reset configuration). With more than one queue, received IPv4
    frames are steered by an RSS Toeplitz hash over the 5-tuple through
    a 128-entry indirection table ({!Rss}) — the device's MRQC/RETA
    machinery — so one flow always lands on one queue, in order.
    Non-IPv4 frames fall to queue 0. Every driver-facing descriptor
    operation takes [?queue] (default 0); single-queue behaviour,
    counters, profile keys and watermark cells are exactly those of the
    pre-multi-queue device. Each queue has its own ring-occupancy
    bounds, {!Port_stats} shadow counters, and [("port", _); ("queue",
    _)]-labelled watermark cells; queues share the PCI bus and the MAC,
    where their DMA and wire transmissions serialise like hardware.

    Ring occupancy is bounded like the hardware's descriptor rings;
    overflow drops (RX) or refusals (TX) are counted in {!Port_stats}. *)

type t
type port

val create :
  Dsim.Engine.t ->
  Cheri.Tagged_memory.t ->
  bus:Pci_bus.t ->
  macs:Mac_addr.t list ->
  ?rx_ring_size:int ->
  ?tx_ring_size:int ->
  ?queues:int ->
  ?rss_key:bytes ->
  unit ->
  t
(** One port per MAC in [macs] (the 82576 has two). Default ring sizes
    follow common DPDK igb configuration (512 RX / 1024 TX); each of
    the [?queues] ring pairs gets the full configured ring size.
    [rss_key] overrides the 40-byte Toeplitz key. *)

val num_ports : t -> int
val port : t -> int -> port
(** @raise Invalid_argument on a bad index. *)

val port_index : port -> int
val engine : port -> Dsim.Engine.t
val mac : port -> Mac_addr.t

val stats : port -> Port_stats.t
(** Port-level aggregate over all queues. *)

val num_queues : port -> int

val queue_stats : port -> int -> Port_stats.t
(** Per-queue shadow counters: queue-scoped events (packets, bytes,
    ring-full) only — port-level drops (FCS, MAC filter, DMA fault)
    happen before RSS classification and appear in {!stats} alone.
    @raise Invalid_argument on a bad queue index. *)

val rss : port -> Rss.t
(** The port's RSS configuration (retarget RETA entries in tests). *)

val queue_of_frame : port -> bytes -> int
(** The RX queue this frame would steer to ({!Rss.classify}). *)

val set_dma_cap : port -> Cheri.Capability.t -> unit
(** Install the bus-master window. All DMA is checked against it; DMA
    outside raises {!Cheri.Fault.Capability_fault} at the driver's
    doorbell/refill call site. *)

val set_promisc : port -> bool -> unit

val set_rx_fault : port -> (len:int -> bool) option -> unit
(** Chaos hook consulted per accepted frame; a [true] verdict fails the
    RX DMA transfer: the frame is dropped with an [Rx_dma]/[Dma_error]
    attribution and counted in {!Port_stats.t.rx_dma_errors}. *)

val connect : port -> Link.t -> Link.endpoint -> unit
(** Attach the port to its wire end and install the receive path. *)

val deliver : port -> ?flow:Dsim.Flowtrace.ctx option -> bytes -> unit
(** Frame arriving from the wire (used by {!connect}; exposed so tests
    can inject frames without a link). [flow] is the sampled trace
    context travelling with the frame; MAC-filter and no-descriptor
    drops are attributed to it. *)

(** {1 Driver-facing descriptor operations}

    All take [?queue] (default 0). *)

val rx_refill : ?queue:int -> port -> addr:int -> len:int -> bool
(** Give the device an empty buffer; [false] when the RX ring is full. *)

val rx_burst :
  ?queue:int -> port -> max:int -> (int * int * Dsim.Flowtrace.ctx option) list
(** Completed receives as [(buffer_addr, packet_len, flow)], oldest
    first; [flow] is the trace context carried across the wire. *)

val rx_pending : ?queue:int -> port -> int
(** Completed-but-not-collected receives. *)

val rx_free_slots : ?queue:int -> port -> int

val tx_enqueue :
  ?queue:int ->
  port ->
  ?flow:Dsim.Flowtrace.ctx option ->
  addr:int ->
  len:int ->
  unit ->
  bool
(** Doorbell: packet at [addr..addr+len) is ready; [false] (and a
    counter bump plus a [Tx_ring]/[Tx_ring_full] drop attribution) when
    the TX ring is full. *)

val tx_reap : ?queue:int -> port -> max:int -> int list
(** Buffer addresses whose transmission fully completed. *)

val tx_in_flight : ?queue:int -> port -> int
