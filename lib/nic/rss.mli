(** Receive-side scaling: Toeplitz 5-tuple flow steering.

    A hash over (src ip, dst ip, src port, dst port) — or the
    (src ip, dst ip) 2-tuple for non-TCP/UDP traffic and IPv4
    fragments — indexed into a 128-entry indirection table (RETA)
    picks the RX queue for each IPv4 frame. Classification is deterministic in the frame
    bytes and the configuration: a flow always lands on one queue, in
    arrival order. Non-IPv4 frames fall to queue 0 (the default
    queue), like hardware. *)

type t

val reta_size : int
(** Indirection-table entries (128, the igb value). *)

val create : ?key:bytes -> queues:int -> unit -> t
(** [key] is the 40-byte Toeplitz key (default: the Microsoft
    reference key). The RETA resets to round-robin over [queues]. *)

val queues : t -> int

val set_reta : t -> entry:int -> queue:int -> unit
(** Repoint one indirection-table entry. *)

val hash_input : t -> bytes -> int
(** Raw 32-bit Toeplitz hash of a packed input (exposed for tests). *)

val five_tuple : bytes -> bytes option
(** Packed Toeplitz input of an Ethernet frame, [None] if not IPv4:
    12 bytes (src ip, dst ip, src port, dst port) for unfragmented
    TCP/UDP — the standard RSS TCP/IPv4 input, comparable against the
    Microsoft verification vectors — else the 8-byte (src ip, dst ip)
    2-tuple (also used for fragments, so all fragments of a datagram
    steer to one queue). *)

val classify : t -> bytes -> int
(** RX queue for a frame: [0] when single-queue or non-IPv4, otherwise
    [reta[toeplitz(5-tuple) mod 128]]. *)

val probe : t -> bytes -> (int * int) option
(** [(hash, queue)] the steering function assigns this frame, [None]
    if not IPv4. The attacker's-eye view of RSS: steering is a pure
    function of the frame bytes, so a crafted 5-tuple can aim a flow
    at a chosen victim queue — the red-team corpus uses this surface
    to build steering-abuse probes. *)
