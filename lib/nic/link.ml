type endpoint = A | B

type tamper =
  now:Dsim.Time.t -> ipv4:bool -> len:int -> Dsim.Chaos.frame_action

type dir_state = {
  mutable busy_until : Dsim.Time.t;
  (* receiver at the far end *)
  mutable handler :
    (flow:Dsim.Flowtrace.ctx option -> fcs:int -> bytes -> unit) option;
  mutable carried : int;
}

type t = {
  engine : Dsim.Engine.t;
  bps : float;
  prop_delay : Dsim.Time.t;
  a_to_b : dir_state;
  b_to_a : dir_state;
  mutable dropped : int;
  mutable tampered : int;
  mutable injected : int;
  mutable up : bool;
  mutable tamper : tamper option;
  (* Frame-buffer recycling pool, keyed by exact length. Per-link (not
     process-global) so that two links placed on different engine
     shards never share mutable state under the domains executor: a
     frame is rented by one endpoint's TX engine and released by the
     peer endpoint's RX completion, and both live on the same link. *)
  pool : (int, bytes Stack.t) Hashtbl.t;
}

let overhead_bytes = 24

(* Wall-clock attribution keys for the handlers this module schedules. *)
let k_deliver =
  Dsim.Profile.(key default) ~component:"nic" ~cvm:"wire" ~stage:"deliver"

let k_dup =
  Dsim.Profile.(key default) ~component:"nic" ~cvm:"wire" ~stage:"dup"

let k_hold =
  Dsim.Profile.(key default) ~component:"nic" ~cvm:"wire" ~stage:"hold"

let create engine ?(bps = 1e9) ?(prop_delay = Dsim.Time.ns 500) () =
  let dir () = { busy_until = Dsim.Time.zero; handler = None; carried = 0 } in
  { engine; bps; prop_delay; a_to_b = dir (); b_to_a = dir (); dropped = 0;
    tampered = 0; injected = 0; up = true; tamper = None;
    pool = Hashtbl.create 8 }

(* Recycling exact-size buffers keeps the fast path's allocation rate
   flat: a streaming TCP flow reuses the same few MSS-sized buffers
   instead of allocating ~1.5 KiB of minor heap per frame. The renter
   overwrites the whole buffer (TX DMA blit) before it reaches the
   wire, so stale contents cannot leak between frames. *)
let pool_depth = 32

let rent t len =
  match Hashtbl.find_opt t.pool len with
  | Some s when not (Stack.is_empty s) -> Stack.pop s
  | _ -> Bytes.create len

let release t frame =
  let len = Bytes.length frame in
  let s =
    match Hashtbl.find_opt t.pool len with
    | Some s -> s
    | None ->
      let s = Stack.create () in
      Hashtbl.replace t.pool len s;
      s
  in
  if Stack.length s < pool_depth then Stack.push frame s

(* [attach t A f] installs the handler for frames arriving AT endpoint A,
   i.e. frames travelling B->A. *)
let attach t ep f =
  match ep with
  | A -> t.b_to_a.handler <- Some f
  | B -> t.a_to_b.handler <- Some f

let dir_of t = function A -> t.a_to_b | B -> t.b_to_a

let is_ipv4 frame =
  Bytes.length frame >= 34
  && Bytes.get frame 12 = '\x08'
  && Bytes.get frame 13 = '\x00'

let flip_bit frame ~byte ~bit =
  Bytes.set frame byte
    (Char.chr (Char.code (Bytes.get frame byte) lxor (1 lsl bit)))

let transmit t ?(flow = None) ~from ~frame () =
  let d = dir_of t from in
  let now = Dsim.Engine.now t.engine in
  let wire_bytes = Bytes.length frame + overhead_bytes in
  let start = Dsim.Time.max now d.busy_until in
  let ser = Dsim.Time.of_float_ns (float_of_int wire_bytes *. 8. /. t.bps *. 1e9) in
  let tx_done = Dsim.Time.add start ser in
  d.busy_until <- tx_done;
  d.carried <- d.carried + wire_bytes;
  let arrival = Dsim.Time.add tx_done t.prop_delay in
  (* The transmitting MAC's FCS over the untampered frame; corruption
     injected below happens "on the wire", after this point. *)
  let fcs = Fcs.compute frame in
  let deliver () =
    let drop_down () =
      t.dropped <- t.dropped + 1;
      Dsim.Flowtrace.(drop default ~flow Wire Link_down)
    in
    if not t.up then drop_down ()
    else
      match d.handler with
      | None -> drop_down ()
      | Some f -> (
        match t.tamper with
        | None -> f ~flow ~fcs frame
        | Some tam -> (
          match
            tam ~now:(Dsim.Engine.now t.engine) ~ipv4:(is_ipv4 frame)
              ~len:(Bytes.length frame)
          with
          | Dsim.Chaos.Pass -> f ~flow ~fcs frame
          | Dsim.Chaos.Flip { byte; bit; post_fcs } ->
            t.tampered <- t.tampered + 1;
            flip_bit frame ~byte ~bit;
            (* A flip behind the MAC (DMA/buffer corruption) arrives
               with a *valid* FCS — the transport checksum must catch
               it; a wire flip leaves the transmit-side FCS stale. *)
            let fcs = if post_fcs then Fcs.compute frame else fcs in
            f ~flow ~fcs frame
          | Dsim.Chaos.Drop_frame ->
            t.tampered <- t.tampered + 1;
            t.dropped <- t.dropped + 1;
            Dsim.Flowtrace.(drop default ~flow Wire Chaos_injected)
          | Dsim.Chaos.Dup_frame ->
            t.tampered <- t.tampered + 1;
            (* The duplicate is a copy: the original may be recycled by
               the receiving NIC as soon as its RX DMA completes. *)
            let copy = Bytes.copy frame in
            f ~flow ~fcs frame;
            ignore
              (Dsim.Engine.schedule_l t.engine ~delay:(Dsim.Time.ns 1000)
                 ~label:k_dup (fun () ->
                   if t.up then f ~flow:None ~fcs copy
                   else begin
                     t.dropped <- t.dropped + 1;
                     Dsim.Flowtrace.(drop default Wire Link_down)
                   end))
          | Dsim.Chaos.Hold_frame { extra_ns } ->
            t.tampered <- t.tampered + 1;
            ignore
              (Dsim.Engine.schedule_l t.engine
                 ~delay:(Dsim.Time.of_float_ns extra_ns) ~label:k_hold
                 (fun () ->
                   if t.up then f ~flow ~fcs frame else drop_down ()))))
  in
  ignore (Dsim.Engine.schedule_at_l t.engine ~at:arrival ~label:k_deliver deliver);
  tx_done

let peer = function A -> B | B -> A

(* A red-team frame enters the wire exactly like a legitimate one —
   same serialization queue, FCS, tamper lottery and propagation — so
   an attacked run stays deterministic and the receiver cannot tell a
   crafted frame from a forwarded one by timing alone. Only the
   [injected] counter distinguishes them, for reports. *)
let inject t ?(flow = None) ~into ~frame () =
  t.injected <- t.injected + 1;
  transmit t ~flow ~from:(peer into) ~frame ()

let carried_bytes t ~from = (dir_of t from).carried
let dropped t = t.dropped
let tampered t = t.tampered
let injected t = t.injected
let up t = t.up
let set_up t b = t.up <- b
let set_tamper t f = t.tamper <- f
