type endpoint = A | B

type dir_state = {
  mutable busy_until : Dsim.Time.t;
  (* receiver at the far end *)
  mutable handler : (flow:Dsim.Flowtrace.ctx option -> bytes -> unit) option;
  mutable carried : int;
}

type t = {
  engine : Dsim.Engine.t;
  bps : float;
  prop_delay : Dsim.Time.t;
  a_to_b : dir_state;
  b_to_a : dir_state;
  mutable dropped : int;
  mutable up : bool;
}

let overhead_bytes = 24

let create engine ?(bps = 1e9) ?(prop_delay = Dsim.Time.ns 500) () =
  let dir () = { busy_until = Dsim.Time.zero; handler = None; carried = 0 } in
  { engine; bps; prop_delay; a_to_b = dir (); b_to_a = dir (); dropped = 0; up = true }

(* [attach t A f] installs the handler for frames arriving AT endpoint A,
   i.e. frames travelling B->A. *)
let attach t ep f =
  match ep with
  | A -> t.b_to_a.handler <- Some f
  | B -> t.a_to_b.handler <- Some f

let dir_of t = function A -> t.a_to_b | B -> t.b_to_a

let transmit t ?(flow = None) ~from ~frame () =
  let d = dir_of t from in
  let now = Dsim.Engine.now t.engine in
  let wire_bytes = Bytes.length frame + overhead_bytes in
  let start = Dsim.Time.max now d.busy_until in
  let ser = Dsim.Time.of_float_ns (float_of_int wire_bytes *. 8. /. t.bps *. 1e9) in
  let tx_done = Dsim.Time.add start ser in
  d.busy_until <- tx_done;
  d.carried <- d.carried + wire_bytes;
  let arrival = Dsim.Time.add tx_done t.prop_delay in
  let deliver () =
    let drop () =
      t.dropped <- t.dropped + 1;
      Dsim.Flowtrace.(drop default ~flow Wire Link_down)
    in
    if t.up then
      match d.handler with Some f -> f ~flow frame | None -> drop ()
    else drop ()
  in
  ignore (Dsim.Engine.schedule_at t.engine ~at:arrival deliver);
  tx_done

let carried_bytes t ~from = (dir_of t from).carried
let dropped t = t.dropped
let up t = t.up
let set_up t b = t.up <- b
