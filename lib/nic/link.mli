(** Full-duplex point-to-point Ethernet link.

    Models MAC serialization at line rate plus wire propagation. Each
    direction is independent (full duplex); frames in one direction are
    serialised back to back with the standard 20 bytes of preamble +
    inter-frame gap and 4 bytes of FCS accounted on the wire.

    A link has two endpoints, [A] and [B]; devices attach a delivery
    callback to their end and transmit towards the other.

    The transmitting MAC computes the frame's FCS ({!Fcs.compute}) and
    the receiver gets it alongside the bytes; a chaos tamper hook
    ({!set_tamper}) may corrupt, drop, duplicate or delay each frame
    between the two MACs, which is exactly where wire faults live. *)

type t
type endpoint = A | B

type tamper =
  now:Dsim.Time.t -> ipv4:bool -> len:int -> Dsim.Chaos.frame_action
(** Consulted once per frame at delivery time (down links drop frames
    before the lottery, keeping attribution unambiguous). *)

val overhead_bytes : int
(** Per-frame wire overhead beyond the frame buffer: preamble (8) +
    inter-frame gap (12) + FCS (4) = 24. *)

val create :
  Dsim.Engine.t -> ?bps:float -> ?prop_delay:Dsim.Time.t -> unit -> t

val rent : t -> int -> bytes
(** Rent an exact-[len] frame buffer from the link's recycling pool
    (fresh allocation when the pool is dry). The pool is per-link so
    links on different engine shards share no mutable state under the
    domains executor; a frame rented by one endpoint's TX DMA is
    {!release}d by the peer endpoint's RX completion. *)

val release : t -> bytes -> unit
(** Return a buffer to the pool (dropped if the pool is at depth). The
    buffer must be dead: the renter overwrites it fully before use. *)

val attach :
  t ->
  endpoint ->
  (flow:Dsim.Flowtrace.ctx option -> fcs:int -> bytes -> unit) ->
  unit
(** Install the receive handler for frames arriving at this end. The
    handler receives the frame's flow-trace context, if sampled, plus
    the FCS computed by the transmitting MAC — the receiving MAC
    recomputes and compares ({!Igb}). *)

val transmit :
  t ->
  ?flow:Dsim.Flowtrace.ctx option ->
  from:endpoint ->
  frame:bytes ->
  unit ->
  Dsim.Time.t
(** Serialise [frame] out of [from]'s MAC starting no earlier than now;
    deliver to the opposite endpoint's handler after propagation.
    Returns the time the last bit leaves the MAC (i.e. when the TX
    descriptor can complete). Frames to an endpoint with no handler, or
    on an administratively-down link, are counted as dropped (and
    attributed [Wire]/[Link_down] in {!Dsim.Flowtrace}). *)

val inject :
  t ->
  ?flow:Dsim.Flowtrace.ctx option ->
  into:endpoint ->
  frame:bytes ->
  unit ->
  Dsim.Time.t
(** Red-team entry point: place a crafted hostile frame on the wire
    towards [into], as if transmitted by the opposite endpoint's MAC.
    The frame shares the legitimate traffic's serialization queue, FCS
    computation, tamper lottery and propagation delay, so attacked runs
    remain deterministic. Counted in {!injected}. *)

val carried_bytes : t -> from:endpoint -> int
(** Wire bytes (incl. overhead) sent from this endpoint; diagnostics. *)

val dropped : t -> int
val tampered : t -> int
(** Frames the tamper hook acted on (any non-[Pass] verdict). *)

val injected : t -> int
(** Frames placed on the wire via {!inject}. *)

val up : t -> bool
val set_up : t -> bool -> unit
(** An administratively-down link drops all frames (fault injection). *)

val set_tamper : t -> tamper option -> unit
