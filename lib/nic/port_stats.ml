type t = {
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable rx_no_desc : int;
  mutable rx_filtered : int;
  mutable rx_crc_errors : int;
  mutable rx_dma_errors : int;
  mutable tx_ring_full : int;
}

let create () =
  {
    tx_packets = 0;
    tx_bytes = 0;
    rx_packets = 0;
    rx_bytes = 0;
    rx_no_desc = 0;
    rx_filtered = 0;
    rx_crc_errors = 0;
    rx_dma_errors = 0;
    tx_ring_full = 0;
  }

let reset t =
  t.tx_packets <- 0;
  t.tx_bytes <- 0;
  t.rx_packets <- 0;
  t.rx_bytes <- 0;
  t.rx_no_desc <- 0;
  t.rx_filtered <- 0;
  t.rx_crc_errors <- 0;
  t.rx_dma_errors <- 0;
  t.tx_ring_full <- 0

let pp fmt t =
  Format.fprintf fmt
    "tx=%d pkts/%d B rx=%d pkts/%d B drops(no_desc=%d filtered=%d crc=%d \
     dma=%d ring_full=%d)"
    t.tx_packets t.tx_bytes t.rx_packets t.rx_bytes t.rx_no_desc t.rx_filtered
    t.rx_crc_errors t.rx_dma_errors t.tx_ring_full
