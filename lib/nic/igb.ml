type rx_desc = { rx_addr : int; rx_len : int }

type tx_req = {
  tx_addr : int;
  tx_len : int;
  tx_flow : Dsim.Flowtrace.ctx option;
}

type port = {
  index : int;
  mac : Mac_addr.t;
  engine : Dsim.Engine.t;
  mem : Cheri.Tagged_memory.t;
  bus : Pci_bus.t;
  rx_ring_size : int;
  tx_ring_size : int;
  rx_free : rx_desc Queue.t;
  rx_done : (int * int * Dsim.Flowtrace.ctx option) Queue.t;
  tx_pending : tx_req Queue.t;
  tx_done : int Queue.t;
  mutable tx_inflight : int;
  mutable dma_cap : Cheri.Capability.t;
  mutable wire : (Link.t * Link.endpoint) option;
  mutable promisc : bool;
  mutable rx_fault : (len:int -> bool) option;
  stats : Port_stats.t;
  (* Per-port wall-clock attribution keys and ring-occupancy cells. *)
  k_tx_dma : Dsim.Profile.key;
  k_tx_wire : Dsim.Profile.key;
  k_rx_dma : Dsim.Profile.key;
  wm_tx : Dsim.Watermark.cell;
  wm_rx : Dsim.Watermark.cell;
}

type t = { ports : port array }

let create engine mem ~bus ~macs ?(rx_ring_size = 512) ?(tx_ring_size = 1024) ()
    =
  let make_port index mac =
    let cvm = Printf.sprintf "port%d" index in
    let wm_labels = [ ("port", string_of_int index) ] in
    {
      index;
      mac;
      engine;
      mem;
      bus;
      rx_ring_size;
      tx_ring_size;
      rx_free = Queue.create ();
      rx_done = Queue.create ();
      tx_pending = Queue.create ();
      tx_done = Queue.create ();
      tx_inflight = 0;
      dma_cap = Cheri.Capability.null;
      wire = None;
      promisc = false;
      rx_fault = None;
      stats = Port_stats.create ();
      k_tx_dma = Dsim.Profile.(key default) ~component:"nic" ~cvm ~stage:"tx_dma";
      k_tx_wire =
        Dsim.Profile.(key default) ~component:"nic" ~cvm ~stage:"tx_wire";
      k_rx_dma = Dsim.Profile.(key default) ~component:"nic" ~cvm ~stage:"rx_dma";
      wm_tx =
        Dsim.Watermark.(cell default) ~capacity:tx_ring_size ~labels:wm_labels
          "nic_tx_ring";
      wm_rx =
        Dsim.Watermark.(cell default) ~capacity:rx_ring_size ~labels:wm_labels
          "nic_rx_ring";
    }
  in
  { ports = Array.of_list (List.mapi make_port macs) }

let num_ports t = Array.length t.ports

let port t i =
  if i < 0 || i >= Array.length t.ports then
    invalid_arg (Printf.sprintf "Igb.port: no port %d" i);
  t.ports.(i)

let port_index p = p.index
let engine p = p.engine
let mac p = p.mac
let stats p = p.stats
let set_dma_cap p cap = p.dma_cap <- cap
let set_promisc p b = p.promisc <- b

(* Chaos hook: a [true] verdict fails the frame's RX DMA transfer (the
   descriptor-error injection of the robustness harness). *)
let set_rx_fault p f = p.rx_fault <- f

(* --- wire-frame recycling ----------------------------------------------

   The [bytes] handed to the link models the frame DMA'd out of
   simulated memory; it is dead as soon as the far end's RX DMA writes
   it back in (or the frame is dropped). Recycling exact-size buffers
   keeps the fast path's allocation rate flat: a streaming TCP flow
   reuses the same few MSS-sized buffers instead of allocating ~1.5 KiB
   of minor heap per frame. The TX DMA blit overwrites the whole buffer
   before it goes back on the wire, so stale contents cannot leak
   between frames. The pool is process-global: a frame rented by one
   port's TX engine is released by the peer port's RX completion. *)

let wire_pool : (int, bytes Stack.t) Hashtbl.t = Hashtbl.create 8
let wire_pool_depth = 32

let wire_rent len =
  match Hashtbl.find_opt wire_pool len with
  | Some s when not (Stack.is_empty s) -> Stack.pop s
  | _ -> Bytes.create len

let wire_release frame =
  let len = Bytes.length frame in
  let s =
    match Hashtbl.find_opt wire_pool len with
    | Some s -> s
    | None ->
      let s = Stack.create () in
      Hashtbl.replace wire_pool len s;
      s
  in
  if Stack.length s < wire_pool_depth then Stack.push frame s

(* --- transmit engine ---------------------------------------------------

   The two stages pipeline across descriptors like real hardware: the
   PCI bus serialises DMA reads (its busy horizon), the MAC serialises
   frames on the wire (the link's busy horizon) — so descriptor N+1's
   DMA overlaps descriptor N's transmission. *)

let kick_tx p =
  while not (Queue.is_empty p.tx_pending) do
    let req = Queue.pop p.tx_pending in
    let now = Dsim.Engine.now p.engine in
    let dma_done =
      Pci_bus.reserve p.bus From_memory ~now ~bytes:req.tx_len
    in
    ignore
      (Dsim.Engine.schedule_at_l p.engine ~at:dma_done ~label:p.k_tx_dma
         (fun () ->
           let frame = wire_rent req.tx_len in
           (* The descriptor was validated against [dma_cap] at the
              doorbell ([tx_enqueue]); the completion-side copy needs no
              second capability check. *)
           Cheri.Tagged_memory.unchecked_blit_out p.mem ~addr:req.tx_addr
             ~dst:frame ~dst_off:0 ~len:req.tx_len;
           Dsim.Flowtrace.hop req.tx_flow Tx_dma
             ~at:(Dsim.Engine.now p.engine);
           let tx_done_at =
             match p.wire with
             | Some (link, ep) ->
               Link.transmit link ~flow:req.tx_flow ~from:ep ~frame ()
             | None ->
               wire_release frame;
               Dsim.Engine.now p.engine
           in
           ignore
             (Dsim.Engine.schedule_at_l p.engine ~at:tx_done_at
                ~label:p.k_tx_wire (fun () ->
                  p.stats.tx_packets <- p.stats.tx_packets + 1;
                  p.stats.tx_bytes <- p.stats.tx_bytes + req.tx_len;
                  Dsim.Flowtrace.hop req.tx_flow Wire
                    ~at:(Dsim.Engine.now p.engine);
                  Queue.push req.tx_addr p.tx_done))))
  done

let tx_enqueue p ?(flow = None) ~addr ~len () =
  if len <= 0 then invalid_arg "Igb.tx_enqueue: empty frame";
  if p.tx_inflight >= p.tx_ring_size then begin
    p.stats.tx_ring_full <- p.stats.tx_ring_full + 1;
    Dsim.Watermark.(stall p.wm_tx Ring_full);
    Dsim.Flowtrace.(drop default ~flow Tx_ring Tx_ring_full);
    false
  end
  else begin
    (* Validate the descriptor against the bus-master window eagerly, at
       the doorbell: a misprogrammed DMA address faults the caller, it
       does not corrupt memory later. *)
    Cheri.Capability.check_access p.dma_cap Load ~addr ~len;
    p.tx_inflight <- p.tx_inflight + 1;
    Dsim.Watermark.observe p.wm_tx p.tx_inflight;
    Dsim.Flowtrace.hop flow Tx_ring ~at:(Dsim.Engine.now p.engine);
    Queue.push { tx_addr = addr; tx_len = len; tx_flow = flow } p.tx_pending;
    kick_tx p;
    true
  end

let tx_reap p ~max =
  let rec take n acc =
    if n = 0 || Queue.is_empty p.tx_done then List.rev acc
    else begin
      let addr = Queue.pop p.tx_done in
      p.tx_inflight <- p.tx_inflight - 1;
      take (n - 1) (addr :: acc)
    end
  in
  let reaped = take max [] in
  Dsim.Watermark.observe p.wm_tx p.tx_inflight;
  reaped

let tx_in_flight p = p.tx_inflight

(* --- receive path ---------------------------------------------------- *)

(* Destination filter straight off the frame bytes — no per-packet
   address allocation. The multicast test covers broadcast (I/G bit). *)
let accepts p frame =
  p.promisc
  || Mac_addr.matches_bytes_at p.mac frame ~off:0
  || Mac_addr.is_multicast_at frame ~off:0

(* [recycle] marks frames owned by the wire pool (rented in [kick_tx]):
   those are released back once the RX DMA blit has consumed them, or
   immediately on a drop. Frames handed in directly (tests, fault
   injection) stay owned by the caller — they may be re-delivered. *)
let deliver_frame p ~flow ~fcs ~recycle frame =
  let len = Bytes.length frame in
  (* The MAC recomputes the CRC as the frame comes off the wire; a
     mismatch never reaches a descriptor — exactly how wire bit flips
     must die. Checked before the address filter, as the CRC engine
     runs regardless of who the frame is for. *)
  if fcs <> Fcs.compute frame then begin
    p.stats.rx_crc_errors <- p.stats.rx_crc_errors + 1;
    Dsim.Flowtrace.(drop default ~flow Rx_dma Fcs_error);
    if recycle then wire_release frame
  end
  else if not (accepts p frame) then begin
    p.stats.rx_filtered <- p.stats.rx_filtered + 1;
    Dsim.Flowtrace.(drop default ~flow Rx_dma Mac_filter);
    if recycle then wire_release frame
  end
  else if (match p.rx_fault with Some f -> f ~len | None -> false) then begin
    p.stats.rx_dma_errors <- p.stats.rx_dma_errors + 1;
    Dsim.Flowtrace.(drop default ~flow Rx_dma Dma_error);
    if recycle then wire_release frame
  end
  else if Queue.is_empty p.rx_free then begin
    p.stats.rx_no_desc <- p.stats.rx_no_desc + 1;
    Dsim.Watermark.(stall p.wm_rx Ring_full);
    Dsim.Flowtrace.(drop default ~flow Rx_dma Rx_ring_full);
    if recycle then wire_release frame
  end
  else begin
    let desc = Queue.peek p.rx_free in
    if desc.rx_len < len then begin
      (* Buffer too small for the frame; hardware would chain
         descriptors, our driver always posts MTU-sized buffers so this
         only happens on misconfiguration. Count it as a drop. *)
      p.stats.rx_no_desc <- p.stats.rx_no_desc + 1;
      Dsim.Watermark.(stall p.wm_rx Ring_full);
      Dsim.Flowtrace.(drop default ~flow Rx_dma Rx_ring_full);
      if recycle then wire_release frame
    end
    else begin
      ignore (Queue.pop p.rx_free);
      (* RX occupancy = posted descriptors consumed and not yet
         replenished by [rx_refill]. *)
      Dsim.Watermark.observe p.wm_rx (p.rx_ring_size - Queue.length p.rx_free);
      let now = Dsim.Engine.now p.engine in
      let dma_done = Pci_bus.reserve p.bus To_memory ~now ~bytes:len in
      ignore
        (Dsim.Engine.schedule_at_l p.engine ~at:dma_done ~label:p.k_rx_dma
           (fun () ->
             (* The buffer was validated against [dma_cap] when posted
                ([rx_refill]); no second check at DMA completion. *)
             Cheri.Tagged_memory.unchecked_blit_in p.mem ~addr:desc.rx_addr
               ~src:frame ~src_off:0 ~len;
             p.stats.rx_packets <- p.stats.rx_packets + 1;
             p.stats.rx_bytes <- p.stats.rx_bytes + len;
             Dsim.Flowtrace.hop flow Rx_dma ~at:(Dsim.Engine.now p.engine);
             Queue.push (desc.rx_addr, len, flow) p.rx_done;
             if recycle then wire_release frame))
    end
  end

(* Test/injection entry: the frame never crossed a MAC, so its FCS is
   computed here (i.e. always valid). *)
let deliver p ?(flow = None) frame =
  deliver_frame p ~flow ~fcs:(Fcs.compute frame) ~recycle:false frame

let connect p link ep =
  p.wire <- Some (link, ep);
  Link.attach link ep (fun ~flow ~fcs frame ->
      deliver_frame p ~flow ~fcs ~recycle:true frame)

let rx_refill p ~addr ~len =
  if Queue.length p.rx_free >= p.rx_ring_size then false
  else begin
    Cheri.Capability.check_access p.dma_cap Store ~addr ~len;
    Queue.push { rx_addr = addr; rx_len = len } p.rx_free;
    Dsim.Watermark.observe p.wm_rx (p.rx_ring_size - Queue.length p.rx_free);
    true
  end

let rx_burst p ~max =
  let rec take n acc =
    if n = 0 || Queue.is_empty p.rx_done then List.rev acc
    else take (n - 1) (Queue.pop p.rx_done :: acc)
  in
  take max []

let rx_pending p = Queue.length p.rx_done
let rx_free_slots p = p.rx_ring_size - Queue.length p.rx_free
