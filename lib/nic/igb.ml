type rx_desc = { rx_addr : int; rx_len : int }

type tx_req = {
  tx_addr : int;
  tx_len : int;
  tx_flow : Dsim.Flowtrace.ctx option;
}

(* One RX/TX descriptor-ring pair. A single-queue port is the 82576's
   reset configuration; with [?queues:n > 1] the port exposes [n] pairs
   and steers received IPv4 frames across them with an RSS Toeplitz
   hash over the 5-tuple ({!Rss}), like the real device's MRQC/RETA
   registers. Each queue carries its own {!Port_stats} shadow counters,
   profiler keys and {!Dsim.Watermark} occupancy cells, so per-queue
   imbalance is observable. *)
type queue = {
  qid : int;
  rx_free : rx_desc Queue.t;
  rx_done : (int * int * Dsim.Flowtrace.ctx option) Queue.t;
  tx_pending : tx_req Queue.t;
  tx_done : int Queue.t;
  mutable tx_inflight : int;
  q_stats : Port_stats.t;
  k_tx_dma : Dsim.Profile.key;
  k_tx_wire : Dsim.Profile.key;
  k_rx_dma : Dsim.Profile.key;
  wm_tx : Dsim.Watermark.cell;
  wm_rx : Dsim.Watermark.cell;
}

type port = {
  index : int;
  mac : Mac_addr.t;
  engine : Dsim.Engine.t;
  mem : Cheri.Tagged_memory.t;
  bus : Pci_bus.t;
  rx_ring_size : int;
  tx_ring_size : int;
  queues : queue array;
  rss : Rss.t;
  mutable dma_cap : Cheri.Capability.t;
  mutable wire : (Link.t * Link.endpoint) option;
  mutable promisc : bool;
  mutable rx_fault : (len:int -> bool) option;
  stats : Port_stats.t;  (* port-level aggregate, all queues *)
}

type t = { ports : port array }

let create engine mem ~bus ~macs ?(rx_ring_size = 512) ?(tx_ring_size = 1024)
    ?(queues = 1) ?rss_key () =
  if queues < 1 then invalid_arg "Igb.create: queues must be >= 1";
  let make_queue index qid =
    (* Queue 0 keeps the pre-multi-queue identity — cvm ["portN"],
       watermark labels [("port", N)] — so single-queue profiles,
       watermark dumps and perf baselines are byte-identical to the
       old single-ring device. Extra queues carry a queue label. *)
    let cvm =
      if qid = 0 then Printf.sprintf "port%d" index
      else Printf.sprintf "port%dq%d" index qid
    in
    let wm_labels =
      if qid = 0 then [ ("port", string_of_int index) ]
      else [ ("port", string_of_int index); ("queue", string_of_int qid) ]
    in
    {
      qid;
      rx_free = Queue.create ();
      rx_done = Queue.create ();
      tx_pending = Queue.create ();
      tx_done = Queue.create ();
      tx_inflight = 0;
      q_stats = Port_stats.create ();
      k_tx_dma = Dsim.Profile.(key default) ~component:"nic" ~cvm ~stage:"tx_dma";
      k_tx_wire =
        Dsim.Profile.(key default) ~component:"nic" ~cvm ~stage:"tx_wire";
      k_rx_dma = Dsim.Profile.(key default) ~component:"nic" ~cvm ~stage:"rx_dma";
      wm_tx =
        Dsim.Watermark.(cell default) ~capacity:tx_ring_size ~labels:wm_labels
          "nic_tx_ring";
      wm_rx =
        Dsim.Watermark.(cell default) ~capacity:rx_ring_size ~labels:wm_labels
          "nic_rx_ring";
    }
  in
  let make_port index mac =
    {
      index;
      mac;
      engine;
      mem;
      bus;
      rx_ring_size;
      tx_ring_size;
      queues = Array.init queues (make_queue index);
      rss = Rss.create ?key:rss_key ~queues ();
      dma_cap = Cheri.Capability.null;
      wire = None;
      promisc = false;
      rx_fault = None;
      stats = Port_stats.create ();
    }
  in
  { ports = Array.of_list (List.mapi make_port macs) }

let num_ports t = Array.length t.ports

let port t i =
  if i < 0 || i >= Array.length t.ports then
    invalid_arg (Printf.sprintf "Igb.port: no port %d" i);
  t.ports.(i)

let port_index p = p.index
let engine p = p.engine
let mac p = p.mac
let stats p = p.stats
let num_queues p = Array.length p.queues

let getq p i =
  if i < 0 || i >= Array.length p.queues then
    invalid_arg (Printf.sprintf "Igb.port %d: no queue %d" p.index i);
  p.queues.(i)

let queue_stats p i = (getq p i).q_stats
let rss p = p.rss
let queue_of_frame p frame = Rss.classify p.rss frame
let set_dma_cap p cap = p.dma_cap <- cap
let set_promisc p b = p.promisc <- b

(* Chaos hook: a [true] verdict fails the frame's RX DMA transfer (the
   descriptor-error injection of the robustness harness). *)
let set_rx_fault p f = p.rx_fault <- f

(* --- wire-frame recycling ----------------------------------------------

   The [bytes] handed to the link models the frame DMA'd out of
   simulated memory; it is dead as soon as the far end's RX DMA writes
   it back in (or the frame is dropped). The recycling pool lives on
   the {!Link} (per-link, not process-global) so ports placed on
   different engine shards share no mutable state under the domains
   executor; an unconnected port just allocates. *)

let wire_rent p len =
  match p.wire with Some (link, _) -> Link.rent link len | None -> Bytes.create len

let wire_release p frame =
  match p.wire with Some (link, _) -> Link.release link frame | None -> ()

(* --- transmit engine ---------------------------------------------------

   The two stages pipeline across descriptors like real hardware: the
   PCI bus serialises DMA reads (its busy horizon), the MAC serialises
   frames on the wire (the link's busy horizon) — so descriptor N+1's
   DMA overlaps descriptor N's transmission. Queues share the bus and
   the MAC: multi-queue TX interleaves at those two horizons exactly
   as the single hardware port would. *)

let kick_tx p q =
  while not (Queue.is_empty q.tx_pending) do
    let req = Queue.pop q.tx_pending in
    let now = Dsim.Engine.now p.engine in
    let dma_done =
      Pci_bus.reserve p.bus From_memory
        ~channel:(Dsim.Engine.parallel_shard p.engine)
        ~now ~bytes:req.tx_len
    in
    ignore
      (Dsim.Engine.schedule_at_l p.engine ~at:dma_done ~label:q.k_tx_dma
         (fun () ->
           let frame = wire_rent p req.tx_len in
           (* The descriptor was validated against [dma_cap] at the
              doorbell ([tx_enqueue]); the completion-side copy needs no
              second capability check. *)
           Cheri.Tagged_memory.unchecked_blit_out p.mem ~addr:req.tx_addr
             ~dst:frame ~dst_off:0 ~len:req.tx_len;
           Dsim.Flowtrace.hop req.tx_flow Tx_dma
             ~at:(Dsim.Engine.now p.engine);
           let tx_done_at =
             match p.wire with
             | Some (link, ep) ->
               Link.transmit link ~flow:req.tx_flow ~from:ep ~frame ()
             | None ->
               wire_release p frame;
               Dsim.Engine.now p.engine
           in
           ignore
             (Dsim.Engine.schedule_at_l p.engine ~at:tx_done_at
                ~label:q.k_tx_wire (fun () ->
                  p.stats.tx_packets <- p.stats.tx_packets + 1;
                  p.stats.tx_bytes <- p.stats.tx_bytes + req.tx_len;
                  q.q_stats.tx_packets <- q.q_stats.tx_packets + 1;
                  q.q_stats.tx_bytes <- q.q_stats.tx_bytes + req.tx_len;
                  Dsim.Flowtrace.hop req.tx_flow Wire
                    ~at:(Dsim.Engine.now p.engine);
                  Queue.push req.tx_addr q.tx_done))))
  done

let tx_enqueue ?(queue = 0) p ?(flow = None) ~addr ~len () =
  if len <= 0 then invalid_arg "Igb.tx_enqueue: empty frame";
  let q = getq p queue in
  if q.tx_inflight >= p.tx_ring_size then begin
    p.stats.tx_ring_full <- p.stats.tx_ring_full + 1;
    q.q_stats.tx_ring_full <- q.q_stats.tx_ring_full + 1;
    Dsim.Watermark.(stall q.wm_tx Ring_full);
    Dsim.Flowtrace.(drop default ~flow Tx_ring Tx_ring_full);
    false
  end
  else begin
    (* Validate the descriptor against the bus-master window eagerly, at
       the doorbell: a misprogrammed DMA address faults the caller, it
       does not corrupt memory later. *)
    Cheri.Capability.check_access p.dma_cap Load ~addr ~len;
    q.tx_inflight <- q.tx_inflight + 1;
    Dsim.Watermark.observe q.wm_tx q.tx_inflight;
    Dsim.Flowtrace.hop flow Tx_ring ~at:(Dsim.Engine.now p.engine);
    Queue.push { tx_addr = addr; tx_len = len; tx_flow = flow } q.tx_pending;
    kick_tx p q;
    true
  end

let tx_reap ?(queue = 0) p ~max =
  let q = getq p queue in
  let rec take n acc =
    if n = 0 || Queue.is_empty q.tx_done then List.rev acc
    else begin
      let addr = Queue.pop q.tx_done in
      q.tx_inflight <- q.tx_inflight - 1;
      take (n - 1) (addr :: acc)
    end
  in
  let reaped = take max [] in
  Dsim.Watermark.observe q.wm_tx q.tx_inflight;
  reaped

let tx_in_flight ?(queue = 0) p = (getq p queue).tx_inflight

(* --- receive path ---------------------------------------------------- *)

(* Destination filter straight off the frame bytes — no per-packet
   address allocation. The multicast test covers broadcast (I/G bit). *)
let accepts p frame =
  p.promisc
  || Mac_addr.matches_bytes_at p.mac frame ~off:0
  || Mac_addr.is_multicast_at frame ~off:0

(* [recycle] marks frames owned by the wire pool (rented in [kick_tx]):
   those are released back once the RX DMA blit has consumed them, or
   immediately on a drop. Frames handed in directly (tests, fault
   injection) stay owned by the caller — they may be re-delivered.

   Drop attribution order matches the hardware pipeline: FCS check and
   MAC filter run before RSS classification (the CRC engine and filter
   see every frame, the hash only frames that survive them), so those
   drops are port-level; no-descriptor drops land on the classified
   queue's counters. With one queue, classification short-circuits to
   queue 0 without touching the frame bytes. *)
let deliver_frame p ~flow ~fcs ~recycle frame =
  let len = Bytes.length frame in
  (* The MAC recomputes the CRC as the frame comes off the wire; a
     mismatch never reaches a descriptor — exactly how wire bit flips
     must die. Checked before the address filter, as the CRC engine
     runs regardless of who the frame is for. *)
  if fcs <> Fcs.compute frame then begin
    p.stats.rx_crc_errors <- p.stats.rx_crc_errors + 1;
    Dsim.Flowtrace.(drop default ~flow Rx_dma Fcs_error);
    if recycle then wire_release p frame
  end
  else if not (accepts p frame) then begin
    p.stats.rx_filtered <- p.stats.rx_filtered + 1;
    Dsim.Flowtrace.(drop default ~flow Rx_dma Mac_filter);
    if recycle then wire_release p frame
  end
  else if (match p.rx_fault with Some f -> f ~len | None -> false) then begin
    p.stats.rx_dma_errors <- p.stats.rx_dma_errors + 1;
    Dsim.Flowtrace.(drop default ~flow Rx_dma Dma_error);
    if recycle then wire_release p frame
  end
  else begin
    let q = p.queues.(Rss.classify p.rss frame) in
    if Queue.is_empty q.rx_free then begin
      p.stats.rx_no_desc <- p.stats.rx_no_desc + 1;
      q.q_stats.rx_no_desc <- q.q_stats.rx_no_desc + 1;
      Dsim.Watermark.(stall q.wm_rx Ring_full);
      Dsim.Flowtrace.(drop default ~flow Rx_dma Rx_ring_full);
      if recycle then wire_release p frame
    end
    else begin
      let desc = Queue.peek q.rx_free in
      if desc.rx_len < len then begin
        (* Buffer too small for the frame; hardware would chain
           descriptors, our driver always posts MTU-sized buffers so this
           only happens on misconfiguration. Count it as a drop. *)
        p.stats.rx_no_desc <- p.stats.rx_no_desc + 1;
        q.q_stats.rx_no_desc <- q.q_stats.rx_no_desc + 1;
        Dsim.Watermark.(stall q.wm_rx Ring_full);
        Dsim.Flowtrace.(drop default ~flow Rx_dma Rx_ring_full);
        if recycle then wire_release p frame
      end
      else begin
        ignore (Queue.pop q.rx_free);
        (* RX occupancy = posted descriptors consumed and not yet
           replenished by [rx_refill]. *)
        Dsim.Watermark.observe q.wm_rx
          (p.rx_ring_size - Queue.length q.rx_free);
        let now = Dsim.Engine.now p.engine in
        let dma_done =
          Pci_bus.reserve p.bus To_memory
            ~channel:(Dsim.Engine.parallel_shard p.engine)
            ~now ~bytes:len
        in
        ignore
          (Dsim.Engine.schedule_at_l p.engine ~at:dma_done ~label:q.k_rx_dma
             (fun () ->
               (* The buffer was validated against [dma_cap] when posted
                  ([rx_refill]); no second check at DMA completion. *)
               Cheri.Tagged_memory.unchecked_blit_in p.mem ~addr:desc.rx_addr
                 ~src:frame ~src_off:0 ~len;
               p.stats.rx_packets <- p.stats.rx_packets + 1;
               p.stats.rx_bytes <- p.stats.rx_bytes + len;
               q.q_stats.rx_packets <- q.q_stats.rx_packets + 1;
               q.q_stats.rx_bytes <- q.q_stats.rx_bytes + len;
               Dsim.Flowtrace.hop flow Rx_dma ~at:(Dsim.Engine.now p.engine);
               Queue.push (desc.rx_addr, len, flow) q.rx_done;
               if recycle then wire_release p frame))
      end
    end
  end

(* Test/injection entry: the frame never crossed a MAC, so its FCS is
   computed here (i.e. always valid). *)
let deliver p ?(flow = None) frame =
  deliver_frame p ~flow ~fcs:(Fcs.compute frame) ~recycle:false frame

let connect p link ep =
  p.wire <- Some (link, ep);
  Link.attach link ep (fun ~flow ~fcs frame ->
      deliver_frame p ~flow ~fcs ~recycle:true frame)

let rx_refill ?(queue = 0) p ~addr ~len =
  let q = getq p queue in
  if Queue.length q.rx_free >= p.rx_ring_size then false
  else begin
    Cheri.Capability.check_access p.dma_cap Store ~addr ~len;
    Queue.push { rx_addr = addr; rx_len = len } q.rx_free;
    Dsim.Watermark.observe q.wm_rx (p.rx_ring_size - Queue.length q.rx_free);
    true
  end

let rx_burst ?(queue = 0) p ~max =
  let q = getq p queue in
  let rec take n acc =
    if n = 0 || Queue.is_empty q.rx_done then List.rev acc
    else take (n - 1) (Queue.pop q.rx_done :: acc)
  in
  take max []

let rx_pending ?(queue = 0) p = Queue.length (getq p queue).rx_done
let rx_free_slots ?(queue = 0) p = p.rx_ring_size - Queue.length (getq p queue).rx_free
