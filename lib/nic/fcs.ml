(* IEEE 802.3 CRC-32 (reflected, polynomial 0xEDB88320), byte-at-a-time
   over a precomputed table.  Allocation-free per frame, which keeps the
   zero-copy fast path's minor-words budget intact. *)

let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

let compute frame =
  let crc = ref 0xFFFFFFFF in
  for i = 0 to Bytes.length frame - 1 do
    crc :=
      table.((!crc lxor Char.code (Bytes.unsafe_get frame i)) land 0xff)
      lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF
