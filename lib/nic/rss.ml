(* Receive-side scaling: a Toeplitz hash over the 5-tuple steers each
   IPv4 frame through a 128-entry indirection table (RETA) to an RX
   queue. Classification is a pure function of the frame bytes and the
   (key, reta) configuration: the same flow always lands on the same
   queue, in arrival order — the determinism the per-queue stack loops
   and the sharded engine both rely on. *)

let reta_size = 128

type t = {
  key : bytes;
  reta : int array;
  queues : int;
}

(* The Microsoft reference RSS key; any 40-byte key works, this one has
   well-studied dispersion and makes hash values comparable against
   real-NIC captures. *)
let default_key () =
  Bytes.of_string
    "\x6d\x5a\x56\xda\x25\x5b\x0e\xc2\x41\x67\x25\x3d\x43\xa3\x8f\xb0\
     \xd0\xca\x2b\xcb\xae\x7b\x30\xb4\x77\xcb\x2d\xa3\x80\x30\xf2\x0c\
     \x6a\x42\xb7\x3b\xbe\xac\x01\xfa"

let create ?key ~queues () =
  if queues < 1 then invalid_arg "Rss.create: queues must be >= 1";
  let key = match key with Some k -> Bytes.copy k | None -> default_key () in
  if Bytes.length key < 40 then invalid_arg "Rss.create: key must be 40 bytes";
  {
    key;
    (* Default RETA: round-robin over queues, the igb reset value. *)
    reta = Array.init reta_size (fun i -> i mod queues);
    queues;
  }

let queues t = t.queues

let set_reta t ~entry ~queue =
  if entry < 0 || entry >= reta_size then invalid_arg "Rss.set_reta: entry";
  if queue < 0 || queue >= t.queues then invalid_arg "Rss.set_reta: queue";
  t.reta.(entry) <- queue

(* Toeplitz: the hash is the XOR of a sliding 32-bit window of the key
   at every set input bit, MSB first. [input] is the packed tuple from
   [five_tuple] — 12 bytes (src ip, dst ip, src port, dst port) for
   TCP/UDP or 8 bytes (src ip, dst ip) otherwise — so the key's 40
   bytes cover 32 + 96 window positions with room to spare. *)
let hash_input t input =
  let key = t.key in
  let window =
    ref
      ((Char.code (Bytes.get key 0) lsl 24)
      lor (Char.code (Bytes.get key 1) lsl 16)
      lor (Char.code (Bytes.get key 2) lsl 8)
      lor Char.code (Bytes.get key 3))
  in
  let keybit = ref 32 in
  let result = ref 0 in
  for i = 0 to Bytes.length input - 1 do
    let b = Char.code (Bytes.get input i) in
    for bit = 7 downto 0 do
      if b land (1 lsl bit) <> 0 then result := !result lxor !window;
      let next =
        let byte = !keybit lsr 3 and off = 7 - (!keybit land 7) in
        if byte < Bytes.length key then
          (Char.code (Bytes.get key byte) lsr off) land 1
        else 0
      in
      window := ((!window lsl 1) land 0xFFFFFFFF) lor next;
      incr keybit
    done
  done;
  !result

(* Pack the hash tuple straight off an Ethernet frame: no allocation
   beyond the tuple scratch (only reached when queues > 1). TCP/UDP
   frames yield the standard 12-byte RSS TCP/IPv4 input, everything
   else the 8-byte IPv4 2-tuple — matching hardware hash types, so
   hash values line up with the Microsoft verification vectors and
   real-NIC captures. A fragmented datagram (fragment offset or MF
   set) also falls back to the 2-tuple, igb-style: non-first fragments
   carry no L4 header, and hashing payload bytes as ports would scatter
   one flow's fragments across queues. Returns None for non-IPv4
   frames (ARP, runts) — those fall to queue 0, like hardware
   delivering un-hashable traffic to the default queue. *)
let five_tuple frame =
  let len = Bytes.length frame in
  if
    len >= 34
    && Char.code (Bytes.get frame 12) = 0x08
    && Char.code (Bytes.get frame 13) = 0x00
  then begin
    let ihl = Char.code (Bytes.get frame 14) land 0x0f in
    let l4 = 14 + (ihl * 4) in
    let proto = Char.code (Bytes.get frame 23) in
    let fragmented =
      (Char.code (Bytes.get frame 20) land 0x3f) lor Char.code (Bytes.get frame 21)
      <> 0
    in
    if (proto = 6 || proto = 17) && (not fragmented) && len >= l4 + 4 then begin
      let tuple = Bytes.create 12 in
      Bytes.blit frame 26 tuple 0 8;
      (* src + dst ip *)
      Bytes.blit frame l4 tuple 8 4;
      (* src + dst port *)
      Some tuple
    end
    else begin
      let tuple = Bytes.create 8 in
      Bytes.blit frame 26 tuple 0 8;
      Some tuple
    end
  end
  else None

let classify t frame =
  if t.queues = 1 then 0
  else
    match five_tuple frame with
    | None -> 0
    | Some tuple -> t.reta.(hash_input t tuple land (reta_size - 1))

(* Attacker's-eye view of the steering function: the full hash and the
   queue it would land on, regardless of [t.queues]. Because Toeplitz +
   RETA is a pure function of the frame bytes, an off-path attacker who
   knows (or guesses) the key can aim flows at a victim's queue; the
   red-team corpus uses this to prove that a steered hostile flow still
   ends in a typed verdict inside the victim's compartment. *)
let probe t frame =
  match five_tuple frame with
  | None -> None
  | Some tuple ->
    let h = hash_input t tuple in
    Some (h, t.reta.(h land (reta_size - 1)))
