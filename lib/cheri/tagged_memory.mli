(** The single physical address space with capability tags.

    All compartments, the Intravisor, DPDK memory zones and the NIC DMA
    engine address the same flat byte array — exactly the single-
    address-space setting the paper targets. Every access is authorised
    by a capability and checked by {!Capability.check_access}.

    Capabilities stored to memory occupy one 16-byte granule and set
    that granule's tag bit; any raw byte write that touches a tagged
    granule clears its tag, so capabilities cannot be forged by writing
    their bit pattern. *)

type t

val granule : int
(** Tag granularity in bytes (16, a 128-bit Morello capability). *)

val create : size:int -> t
val size : t -> int

(** {1 Data accesses}

    [addr] is absolute; the capability's cursor is not consulted, only
    its bounds/permissions — this matches hybrid-mode accesses checked
    against DDC. All raise {!Fault.Capability_fault} on check failure. *)

val load_bytes : t -> cap:Capability.t -> addr:int -> len:int -> bytes
val store_bytes : t -> cap:Capability.t -> addr:int -> bytes -> unit

val blit_out : t -> cap:Capability.t -> addr:int -> dst:bytes -> dst_off:int -> len:int -> unit
val blit_in : t -> cap:Capability.t -> addr:int -> src:bytes -> src_off:int -> len:int -> unit

val get_u8 : t -> cap:Capability.t -> addr:int -> int
val set_u8 : t -> cap:Capability.t -> addr:int -> int -> unit
val get_u16_be : t -> cap:Capability.t -> addr:int -> int
val set_u16_be : t -> cap:Capability.t -> addr:int -> int -> unit
val get_u32_be : t -> cap:Capability.t -> addr:int -> int
val set_u32_be : t -> cap:Capability.t -> addr:int -> int -> unit
val get_u64_le : t -> cap:Capability.t -> addr:int -> int64
val set_u64_le : t -> cap:Capability.t -> addr:int -> int64 -> unit

val fill : t -> cap:Capability.t -> addr:int -> len:int -> char -> unit

(** {1 Capability accesses} *)

val store_cap : t -> cap:Capability.t -> addr:int -> Capability.t -> unit
(** Requires the store_cap permission and 16-byte alignment; tags the
    granule. Storing a local (non-global) capability is refused with a
    permission fault, the classic CHERI confinement rule. *)

val load_cap : t -> cap:Capability.t -> addr:int -> Capability.t
(** Requires load_cap permission and alignment. If the granule tag was
    cleared by an intervening byte write, the loaded capability comes
    back untagged. *)

val tag_at : t -> addr:int -> bool
(** Is the granule containing [addr] tagged? For tests/diagnostics. *)

(** {1 Borrow windows (one check per frame)}

    The zero-copy packet path authorises a whole frame with a single
    {!Capability.check_access}, then reads/writes it in place through a
    {!Dsim.Slice.t} over the backing store. Protection is preserved:
    the check covers exactly the bytes the slice exposes, and any access
    escaping the window raises the same [Fault.Capability_fault]
    (kind [Out_of_bounds], at the offending absolute address) that the
    per-access checks would have raised. *)

val borrow : t -> cap:Capability.t -> addr:int -> len:int -> Dsim.Slice.t
(** Read borrow: one Load check over [\[addr, addr+len)]. *)

val borrow_mut : t -> cap:Capability.t -> addr:int -> len:int -> Dsim.Slice.t
(** Write borrow: one Store check, and — like any raw data store — the
    window's capability tags are cleared (eagerly, at borrow time). *)

val unchecked_blit_out : t -> addr:int -> dst:bytes -> dst_off:int -> len:int -> unit
(** Physical access without a capability — reserved for the DMA engine,
    which the paper's threat model trusts (the NIC is configured by the
    compartment owning the device capability). Bounds-checked against
    the physical size only. *)

val unchecked_blit_in : t -> addr:int -> src:bytes -> src_off:int -> len:int -> unit
