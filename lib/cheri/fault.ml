type kind =
  | Tag_violation
  | Out_of_bounds
  | Permission_violation
  | Seal_violation
  | Unseal_violation
  | Monotonicity_violation
  | Representability_violation

type t = { kind : kind; address : int; detail : string }

exception Capability_fault of t

let all_kinds =
  [
    Tag_violation;
    Out_of_bounds;
    Permission_violation;
    Seal_violation;
    Unseal_violation;
    Monotonicity_violation;
    Representability_violation;
  ]

let kind_label = function
  | Tag_violation -> "tag"
  | Out_of_bounds -> "out_of_bounds"
  | Permission_violation -> "permission"
  | Seal_violation -> "seal"
  | Unseal_violation -> "unseal"
  | Monotonicity_violation -> "monotonicity"
  | Representability_violation -> "representability"

(* Ambient compartment context, set by the Intravisor around every
   trampoline so a fault raised deep inside Capability/Tagged_memory —
   which know nothing about cVMs — is still accounted to the
   compartment whose code was running. *)
let context = ref "host"

let set_context name = context := name
let current_context () = !context

let faults_metric ~cvm ~kind =
  Dsim.Metrics.counter Dsim.Metrics.default
    ~help:"Capability faults raised, by compartment and fault kind."
    ~labels:[ ("cvm", cvm); ("kind", kind_label kind) ]
    "capability_faults_total"

let register_compartment name =
  (* Pre-register every kind so a compartment that never faults still
     exposes zero-valued series (the Fig. 4 run has no faults, but its
     metrics file must say so). *)
  List.iter (fun kind -> ignore (faults_metric ~cvm:name ~kind)) all_kinds

let raise_fault kind ~address ~detail =
  if Dsim.Metrics.enabled Dsim.Metrics.default then
    Dsim.Metrics.incr (faults_metric ~cvm:!context ~kind);
  (* Mirror the trap into the audit ledger so chaos-injected capability
     faults cross-reference with audit attribution by cVM and kind.
     Hw_fault never raises in strict mode — the capability fault below
     is the authoritative exception. *)
  if Dsim.Audit.enabled Dsim.Audit.default then
    Dsim.Audit.record_violation Dsim.Audit.default ~kind:Dsim.Audit.Hw_fault
      ~cvm:!context ~address
      ~detail:(kind_label kind ^ ": " ^ detail)
      ~source:"hardware";
  raise (Capability_fault { kind; address; detail })

let kind_to_string = function
  | Tag_violation -> "CAP tag violation"
  | Out_of_bounds -> "CAP out-of-bounds"
  | Permission_violation -> "CAP permission violation"
  | Seal_violation -> "CAP seal violation"
  | Unseal_violation -> "CAP unseal violation"
  | Monotonicity_violation -> "CAP monotonicity violation"
  | Representability_violation -> "CAP representability violation"

let pp fmt f =
  Format.fprintf fmt "%s at 0x%x (%s)" (kind_to_string f.kind) f.address f.detail

let to_string f = Format.asprintf "%a" pp f

let () =
  Printexc.register_printer (function
    | Capability_fault f -> Some ("Capability_fault: " ^ to_string f)
    | _ -> None)
