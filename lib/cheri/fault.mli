(** Capability fault taxonomy.

    These correspond to the hardware exceptions a Morello core raises
    when a capability check fails; Figure 3 of the paper demonstrates
    the [Out_of_bounds] case ("CAP-out-of-bound exception") killing an
    attacking compartment. *)

type kind =
  | Tag_violation  (** Dereference of an untagged (invalid) capability. *)
  | Out_of_bounds  (** Access outside [base, base+length). *)
  | Permission_violation  (** Missing right (e.g. store via read-only). *)
  | Seal_violation  (** Dereference or mutation of a sealed capability. *)
  | Unseal_violation  (** Unseal with the wrong otype / no authority. *)
  | Monotonicity_violation
      (** Attempt to grow bounds or add permissions during derivation. *)
  | Representability_violation
      (** Cursor moved so far out of bounds the capability cannot be
          represented; the tag would be cleared by hardware. *)

type t = {
  kind : kind;
  address : int;  (** Faulting address (or cursor). *)
  detail : string;
}

exception Capability_fault of t

val raise_fault : kind -> address:int -> detail:string -> 'a
(** Also bumps [capability_faults_total{cvm,kind}] in
    {!Dsim.Metrics.default} (when enabled), attributing the fault to the
    ambient {!current_context}. *)

val all_kinds : kind list

val kind_label : kind -> string
(** Short snake_case form for metric labels ("out_of_bounds", ...). *)

(** {1 Compartment attribution}

    The capability machinery has no notion of cVMs; the Intravisor
    brackets each trampoline with {!set_context} so faults are
    accounted per-compartment. Defaults to ["host"]. *)

val set_context : string -> unit
val current_context : unit -> string

val register_compartment : string -> unit
(** Pre-register zero-valued [capability_faults_total] series for every
    fault kind under this compartment label. *)

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
