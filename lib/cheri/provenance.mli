(** Capability provenance DAG and invariant checker.

    Every capability event in the simulator — root minting, monotonic
    derivation, seal/unseal, grant to a cVM, cross-boundary transfer,
    (sampled) dereference, revocation — is recorded here as a node or
    an edge of a process-wide DAG keyed by the capability's value
    (base, length, permissions, otype). On top of the DAG the checker
    enforces the paper's isolation argument as machine-checked
    invariants:

    - {b monotonicity}: a derived node's bounds lie within its parent's
      and its permissions are a subset ([Bounds_widening],
      [Perm_widening] otherwise);
    - {b temporal safety}: no dereference through a lineage containing
      a revoked/freed node ([Revoked_parent]);
    - {b confinement}: a capability minted for cVM A is never exercised
      by cVM B unless a recorded grant, channel endpoint or trampoline
      crossing explains the possession ([Confinement]).

    Violations are ledgered in {!Dsim.Audit} with the same attribution
    discipline as chaos injections (charged to the ambient
    {!Fault.current_context} compartment). All recording is gated on
    [Dsim.Audit.enabled Dsim.Audit.default]: when the ledger is off
    every entry point is a single load-and-branch, so the audit is
    zero-cost for the calibrated experiments.

    What this models vs hardware: the DAG is bookkeeping the simulator
    maintains {e beside} the capability values — real CHERI keeps only
    the per-granule tag and the compressed bounds/otype in the value
    itself, and provenance exists only as the inductive property that
    every tagged value came from a legal instruction on another tagged
    value. See DESIGN.md §5. *)

type node = {
  id : int;
  base : int;
  length : int;
  perms : Perms.t;
  otype : int;  (** -1 when unsealed. *)
  label : string;  (** "root", "region", "alloc", "mbuf", "channel"... *)
  parent : int;  (** Node id, -1 for roots. *)
  mutable owner : string;  (** Compartment the capability was minted for. *)
  mutable holders : string list;  (** Compartments with a recorded grant. *)
  mutable children : int list;
  mutable revoked : string option;  (** Reason, when revoked. *)
  mutable channel : bool;  (** A shared-channel endpoint view. *)
}

(** {1 Recording} — all no-ops while [Dsim.Audit.default] is disabled. *)

val record_mint : Capability.t -> owner:string -> label:string -> unit

val record_derive :
  ?owner:string -> ?label:string -> parent:Capability.t -> Capability.t -> unit
(** Records the child under the parent's node (auto-registering an
    untracked parent), checking monotone narrowing and temporal
    liveness at record time. [owner] defaults to the parent's owner,
    [label] to ["alloc"]. Re-deriving an already-live identical
    capability only counts the event — hot paths that re-derive the
    same view every iteration do not grow the DAG. *)

val record_seal : parent:Capability.t -> Capability.t -> unit
val record_unseal : parent:Capability.t -> Capability.t -> unit

val record_grant : Capability.t -> cvm:string -> unit
(** Adds [cvm] to the node's holders; when the current owner is the
    TCB, ownership follows the grant. *)

val mark_channel : Capability.t -> unit
(** Flag the node as a shared-channel endpoint: exercises by any
    compartment are explained (and counted as cross-compartment
    edges) rather than flagged as confinement violations. *)

val crossing_begin : from_cvm:string -> into:string -> unit
(** A trampoline entered [into] on behalf of [from_cvm]; while the
    crossing is active, exercises by [into] of capabilities held by
    [from_cvm] are explained transfers. Counted as a [Transfer] event
    and a cross-compartment edge. *)

val crossing_end : unit -> unit

val record_transfer : from_cvm:string -> into:string -> unit
(** A non-trampoline boundary transfer (e.g. the Musl syscall shim
    crossing into the Intravisor): event + edge, no DAG node. *)

val record_exercise : Capability.t -> address:int -> unit
(** Sampled 1-in-N ({!Dsim.Audit.set_sample_every}): looks the
    capability up in the DAG and runs the temporal and confinement
    checks against the ambient {!Fault.current_context}. Unknown
    capabilities count as untracked, not as violations. *)

val record_revoke : Capability.t -> reason:string -> unit
(** Revoke the node and its live descendants (freeing an allocation
    revokes every capability derived from it). *)

val revoke_owned : owner:string -> reason:string -> int
(** Revoke every live node owned by [owner] — the supervisor teardown
    storm. Returns how many nodes were revoked. *)

val restore_owned : owner:string -> reason:string -> int
(** Clear revocations recorded with exactly [reason] for [owner] (a
    successful supervised restart re-endows the compartment). Returns
    how many nodes came back. *)

(** {1 Queries} *)

val find : Capability.t -> node option
val node_count : unit -> int
val live_count : ?owner:string -> unit -> int
val untracked_exercises : unit -> int

val check_all : unit -> (Dsim.Audit.violation_kind * string) list
(** Re-validate every live node against its parent (pure — nothing is
    ledgered). Empty on a well-formed DAG. *)

type surface = {
  s_cvm : string;
  s_caps : int;  (** Live tracked capabilities held. *)
  s_reachable_bytes : int;
      (** Interval union of object-level capabilities (allocations,
          mbufs, channels) — the working-set attack surface. *)
  s_region_bytes : int;
      (** Interval union of ambient capabilities (region/DDC/PCC) —
          the address-space ceiling, reported separately. *)
  s_perms : (string * int) list;  (** Permission-string histogram. *)
}

val surfaces : unit -> surface list
(** Per-compartment attack surface, sorted by compartment name. *)

val edges : unit -> (string * string * int) list
(** Cross-compartment edges (from, to, count) observed via crossings,
    channels and explained exercises; sorted. *)

val clear : unit -> unit
(** Drop the DAG, edges, crossings and untracked counter. *)
