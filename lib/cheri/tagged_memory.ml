type t = {
  data : bytes;
  tags : Bytes.t;  (* one byte per granule: 0 or 1 *)
  caps : (int, Capability.t) Hashtbl.t;  (* granule-aligned address -> cap *)
}

let granule = 16

let tag_writes =
  Dsim.Metrics.counter Dsim.Metrics.default
    ~help:"Capabilities stored to memory (granule tag set)."
    "cheri_tag_writes_total"

let tag_clears =
  Dsim.Metrics.counter Dsim.Metrics.default
    ~help:"Granule tags destroyed by raw data writes."
    "cheri_tag_clears_total"

let create ~size =
  if size <= 0 then invalid_arg "Tagged_memory.create: size must be positive";
  {
    data = Bytes.make size '\000';
    tags = Bytes.make ((size / granule) + 1) '\000';
    caps = Hashtbl.create 256;
  }

let size t = Bytes.length t.data

let phys_check t ~addr ~len =
  if addr < 0 || len < 0 || addr + len > Bytes.length t.data then
    Fault.raise_fault Out_of_bounds ~address:addr
      ~detail:(Printf.sprintf "physical access [0x%x,+0x%x) beyond memory" addr len)

let clear_tags t ~addr ~len =
  if len > 0 then begin
    let first = addr / granule and last = (addr + len - 1) / granule in
    for g = first to last do
      if Bytes.get t.tags g <> '\000' then begin
        Bytes.set t.tags g '\000';
        Hashtbl.remove t.caps (g * granule);
        Dsim.Metrics.incr tag_clears
      end
    done
  end

let load_bytes t ~cap ~addr ~len =
  Capability.check_access cap Load ~addr ~len;
  phys_check t ~addr ~len;
  Bytes.sub t.data addr len

let store_bytes t ~cap ~addr b =
  let len = Bytes.length b in
  Capability.check_access cap Store ~addr ~len;
  phys_check t ~addr ~len;
  Bytes.blit b 0 t.data addr len;
  clear_tags t ~addr ~len

let blit_out t ~cap ~addr ~dst ~dst_off ~len =
  Capability.check_access cap Load ~addr ~len;
  phys_check t ~addr ~len;
  Bytes.blit t.data addr dst dst_off len

let blit_in t ~cap ~addr ~src ~src_off ~len =
  Capability.check_access cap Store ~addr ~len;
  phys_check t ~addr ~len;
  Bytes.blit src src_off t.data addr len;
  clear_tags t ~addr ~len

let get_u8 t ~cap ~addr =
  Capability.check_access cap Load ~addr ~len:1;
  phys_check t ~addr ~len:1;
  Char.code (Bytes.get t.data addr)

let set_u8 t ~cap ~addr v =
  Capability.check_access cap Store ~addr ~len:1;
  phys_check t ~addr ~len:1;
  Bytes.set t.data addr (Char.chr (v land 0xff));
  clear_tags t ~addr ~len:1

let get_u16_be t ~cap ~addr =
  Capability.check_access cap Load ~addr ~len:2;
  phys_check t ~addr ~len:2;
  Char.code (Bytes.get t.data addr) lsl 8 lor Char.code (Bytes.get t.data (addr + 1))

let set_u16_be t ~cap ~addr v =
  Capability.check_access cap Store ~addr ~len:2;
  phys_check t ~addr ~len:2;
  Bytes.set t.data addr (Char.chr ((v lsr 8) land 0xff));
  Bytes.set t.data (addr + 1) (Char.chr (v land 0xff));
  clear_tags t ~addr ~len:2

let get_u32_be t ~cap ~addr =
  Capability.check_access cap Load ~addr ~len:4;
  phys_check t ~addr ~len:4;
  let b i = Char.code (Bytes.get t.data (addr + i)) in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let set_u32_be t ~cap ~addr v =
  Capability.check_access cap Store ~addr ~len:4;
  phys_check t ~addr ~len:4;
  Bytes.set t.data addr (Char.chr ((v lsr 24) land 0xff));
  Bytes.set t.data (addr + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set t.data (addr + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set t.data (addr + 3) (Char.chr (v land 0xff));
  clear_tags t ~addr ~len:4

let get_u64_le t ~cap ~addr =
  Capability.check_access cap Load ~addr ~len:8;
  phys_check t ~addr ~len:8;
  Bytes.get_int64_le t.data addr

let set_u64_le t ~cap ~addr v =
  Capability.check_access cap Store ~addr ~len:8;
  phys_check t ~addr ~len:8;
  Bytes.set_int64_le t.data addr v;
  clear_tags t ~addr ~len:8

let fill t ~cap ~addr ~len c =
  Capability.check_access cap Store ~addr ~len;
  phys_check t ~addr ~len;
  Bytes.fill t.data addr len c;
  clear_tags t ~addr ~len

let aligned addr = addr mod granule = 0

let store_cap t ~cap ~addr stored =
  Capability.check_access cap Store_cap ~addr ~len:granule;
  phys_check t ~addr ~len:granule;
  if not (aligned addr) then
    Fault.raise_fault Out_of_bounds ~address:addr
      ~detail:"capability store must be 16-byte aligned";
  if Capability.is_tagged stored && not (Capability.perms stored).Perms.global then
    Fault.raise_fault Permission_violation ~address:addr
      ~detail:"store of a local (non-global) capability to memory";
  Provenance.record_exercise cap ~address:addr;
  Hashtbl.replace t.caps addr stored;
  if Capability.is_tagged stored then Dsim.Metrics.incr tag_writes;
  Bytes.set t.tags (addr / granule) (if Capability.is_tagged stored then '\001' else '\000')

let load_cap t ~cap ~addr =
  Capability.check_access cap Load_cap ~addr ~len:granule;
  phys_check t ~addr ~len:granule;
  if not (aligned addr) then
    Fault.raise_fault Out_of_bounds ~address:addr
      ~detail:"capability load must be 16-byte aligned";
  match Hashtbl.find_opt t.caps addr with
  | None -> Capability.null
  | Some c ->
    if Bytes.get t.tags (addr / granule) = '\001' then c
    else (* tag cleared by an intervening data write *) Capability.null

let tag_at t ~addr =
  phys_check t ~addr ~len:1;
  Bytes.get t.tags (addr / granule) = '\001'

(* Escaping a borrow window faults exactly like the per-access checks the
   borrow replaced: same exception, same kind, the absolute address of
   the offending byte. *)
let borrow_oob =
  {
    Dsim.Slice.raise_oob =
      (fun ~addr ~len ~detail ->
        Fault.raise_fault Out_of_bounds ~address:addr
          ~detail:
            (Printf.sprintf "slice access [0x%x,+0x%x) %s" addr len detail));
  }

let borrow t ~cap ~addr ~len =
  Capability.check_access cap Load ~addr ~len;
  phys_check t ~addr ~len;
  Provenance.record_exercise cap ~address:addr;
  Dsim.Slice.make t.data ~off:addr ~len ~abs:addr ~oob:borrow_oob

let borrow_mut t ~cap ~addr ~len =
  Capability.check_access cap Store ~addr ~len;
  phys_check t ~addr ~len;
  Provenance.record_exercise cap ~address:addr;
  (* A mutable borrow is a bulk raw store: any capability tags in the
     window are destroyed up front, as each individual checked store
     would have destroyed them. *)
  clear_tags t ~addr ~len;
  Dsim.Slice.make t.data ~off:addr ~len ~abs:addr ~oob:borrow_oob

let unchecked_blit_out t ~addr ~dst ~dst_off ~len =
  phys_check t ~addr ~len;
  Bytes.blit t.data addr dst dst_off len

let unchecked_blit_in t ~addr ~src ~src_off ~len =
  phys_check t ~addr ~len;
  Bytes.blit src src_off t.data addr len;
  clear_tags t ~addr ~len
