type node = {
  id : int;
  base : int;
  length : int;
  perms : Perms.t;
  otype : int;
  label : string;
  parent : int;
  mutable owner : string;
  mutable holders : string list;
  mutable children : int list;
  mutable revoked : string option;
  mutable channel : bool;
}

(* The DAG is process-wide, like Dsim.Audit.default: the hooks live in
   layers (Alloc, Intravisor, Mbuf...) that share no handle. *)
let nodes : (int, node) Hashtbl.t = Hashtbl.create 1024
let next_id = ref 1

(* Latest node per capability value. The cursor is excluded from the
   key: moving the cursor does not create a new capability lineage. *)
let by_key : (int * int * int * int, int) Hashtbl.t = Hashtbl.create 1024

let live_by_owner : (string, int ref) Hashtbl.t = Hashtbl.create 16
let edge_counts : (string * string, int ref) Hashtbl.t = Hashtbl.create 16
let crossings : (string * string) list ref = ref []
let untracked = ref 0

let perms_bits (p : Perms.t) =
  (if p.Perms.load then 1 else 0)
  lor (if p.Perms.store then 2 else 0)
  lor (if p.Perms.execute then 4 else 0)
  lor (if p.Perms.load_cap then 8 else 0)
  lor (if p.Perms.store_cap then 16 else 0)
  lor (if p.Perms.seal then 32 else 0)
  lor (if p.Perms.unseal then 64 else 0)
  lor if p.Perms.global then 128 else 0

let key_of cap =
  ( Capability.base cap,
    Capability.length cap,
    perms_bits (Capability.perms cap),
    match Capability.otype cap with
    | None -> -1
    | Some o -> Otype.to_int o )

let audit () = Dsim.Audit.default
let on () = Dsim.Audit.enabled Dsim.Audit.default
let is_tcb name = name = "host" || name = "intravisor"

let clear () =
  Hashtbl.reset nodes;
  Hashtbl.reset by_key;
  Hashtbl.reset live_by_owner;
  Hashtbl.reset edge_counts;
  crossings := [];
  untracked := 0;
  next_id := 1

let live_counter owner =
  match Hashtbl.find_opt live_by_owner owner with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace live_by_owner owner r;
    r

let live_adj owner d =
  let r = live_counter owner in
  r := !r + d;
  Dsim.Audit.set_live_caps (audit ()) ~cvm:owner !r

let bump_edge from_cvm into =
  let k = (from_cvm, into) in
  match Hashtbl.find_opt edge_counts k with
  | Some r -> incr r
  | None -> Hashtbl.replace edge_counts k (ref 1)

let violation kind ~cvm ~address ~detail ~source =
  Dsim.Audit.record_violation (audit ()) ~kind ~cvm ~address ~detail ~source

let add_node ~cap ~owner ~label ~parent =
  let id = !next_id in
  incr next_id;
  let n =
    {
      id;
      base = Capability.base cap;
      length = Capability.length cap;
      perms = Capability.perms cap;
      otype =
        (match Capability.otype cap with
        | None -> -1
        | Some o -> Otype.to_int o);
      label;
      parent;
      owner;
      holders = [ owner ];
      children = [];
      revoked = None;
      channel = false;
    }
  in
  Hashtbl.replace nodes id n;
  Hashtbl.replace by_key (key_of cap) id;
  (match Hashtbl.find_opt nodes parent with
  | Some p -> p.children <- id :: p.children
  | None -> ());
  live_adj owner 1;
  n

let find cap =
  match Hashtbl.find_opt by_key (key_of cap) with
  | None -> None
  | Some id -> Hashtbl.find_opt nodes id

(* A recording site that names a parent we never saw (e.g. the audit was
   enabled after boot): register it as an untracked root rather than
   losing the lineage. *)
let find_or_register cap ~owner =
  match find cap with
  | Some n -> n
  | None -> add_node ~cap ~owner ~label:"untracked" ~parent:(-1)

let record_mint cap ~owner ~label =
  if on () then begin
    Dsim.Audit.record_event (audit ()) Mint;
    ignore (add_node ~cap ~owner ~label ~parent:(-1))
  end

let limit_of n = n.base + n.length

let check_monotone ~(parent : node) ~(child : node) ~source =
  let ctx = Fault.current_context () in
  if child.base < parent.base || limit_of child > limit_of parent then
    violation Bounds_widening ~cvm:ctx ~address:child.base
      ~detail:
        (Printf.sprintf "%s [0x%x,+0x%x) escapes parent [0x%x,+0x%x)"
           child.label child.base child.length parent.base parent.length)
      ~source;
  if not (Perms.subset child.perms parent.perms) then
    violation Perm_widening ~cvm:ctx ~address:child.base
      ~detail:
        (Format.asprintf "%s perms %a exceed parent %a" child.label Perms.pp
           child.perms Perms.pp parent.perms)
      ~source;
  match parent.revoked with
  | Some reason ->
    violation Revoked_parent ~cvm:ctx ~address:child.base
      ~detail:
        (Printf.sprintf "%s derived from node %d revoked (%s)" child.label
           parent.id reason)
      ~source
  | None -> ()

let record_child ~event ~source ?owner ?(label = "alloc") ~parent child =
  if on () then begin
    Dsim.Audit.record_event (audit ()) event;
    let p = find_or_register parent ~owner:(Fault.current_context ()) in
    let fresh =
      match find child with
      | Some n when n.revoked = None -> None  (* memoized: same live value *)
      | _ ->
        Some
          (add_node ~cap:child
             ~owner:(Option.value owner ~default:p.owner)
             ~label ~parent:p.id)
    in
    match fresh with
    | Some n when event = Dsim.Audit.Derive ->
      check_monotone ~parent:p ~child:n ~source
    | _ -> ()
  end

let record_derive ?owner ?label ~parent child =
  record_child ~event:Dsim.Audit.Derive ~source:"derive" ?owner ?label ~parent
    child

let record_seal ~parent sealed =
  record_child ~event:Dsim.Audit.Seal ~source:"seal" ~label:"entry" ~parent
    sealed

let record_unseal ~parent unsealed =
  record_child ~event:Dsim.Audit.Unseal ~source:"unseal" ~label:"entry"
    ~parent unsealed

let record_grant cap ~cvm =
  if on () then begin
    Dsim.Audit.record_event (audit ()) Grant;
    let n =
      match find cap with
      | Some n -> n
      | None -> add_node ~cap ~owner:cvm ~label:"grant" ~parent:(-1)
    in
    if not (List.mem cvm n.holders) then n.holders <- cvm :: n.holders;
    if is_tcb n.owner && n.owner <> cvm then begin
      if n.revoked = None then begin
        live_adj n.owner (-1);
        live_adj cvm 1
      end;
      n.owner <- cvm
    end
  end

let mark_channel cap =
  if on () then
    match find cap with
    | Some n -> n.channel <- true
    | None -> ()

let crossing_begin ~from_cvm ~into =
  if on () then begin
    crossings := (from_cvm, into) :: !crossings;
    Dsim.Audit.record_event (audit ()) Transfer;
    bump_edge from_cvm into
  end

let crossing_end () =
  if on () then
    match !crossings with [] -> () | _ :: rest -> crossings := rest

let record_transfer ~from_cvm ~into =
  if on () then begin
    Dsim.Audit.record_event (audit ()) Transfer;
    bump_edge from_cvm into
  end

let rec lineage_find f n =
  if f n then Some n
  else
    match Hashtbl.find_opt nodes n.parent with
    | Some p -> lineage_find f p
    | None -> None

let holder_in_lineage n cvm =
  lineage_find (fun m -> List.mem cvm m.holders) n <> None

let record_exercise cap ~address =
  if Dsim.Audit.tick_sample (audit ()) then begin
    Dsim.Audit.record_event (audit ()) Exercise;
    match find cap with
    | None -> incr untracked
    | Some n -> (
      (match lineage_find (fun m -> m.revoked <> None) n with
      | Some r ->
        violation Revoked_parent
          ~cvm:(Fault.current_context ())
          ~address
          ~detail:
            (Printf.sprintf
               "dereference through node %d (%s) revoked (%s)" r.id r.label
               (Option.value r.revoked ~default:""))
          ~source:"exercise"
      | None -> ());
      let ctx = Fault.current_context () in
      if not (is_tcb ctx) then
        if holder_in_lineage n ctx then ()
        else if lineage_find (fun m -> m.channel) n <> None then
          bump_edge n.owner ctx
        else begin
          (* An active trampoline crossing into [ctx] explains the
             possession when the caller side could hold the capability. *)
          let explained =
            List.find_opt
              (fun (from_cvm, into) ->
                into = ctx && (is_tcb from_cvm || holder_in_lineage n from_cvm))
              !crossings
          in
          match explained with
          | Some (from_cvm, _) -> bump_edge from_cvm ctx
          | None ->
            violation Confinement ~cvm:ctx ~address
              ~detail:
                (Printf.sprintf
                   "%s [0x%x,+0x%x) owned by %s exercised by %s with no \
                    grant/channel/crossing"
                   n.label n.base n.length n.owner ctx)
              ~source:"exercise"
        end)
  end

let rec revoke_subtree n reason acc =
  if n.revoked = None then begin
    n.revoked <- Some reason;
    live_adj n.owner (-1);
    incr acc;
    List.iter
      (fun cid ->
        match Hashtbl.find_opt nodes cid with
        | Some c -> revoke_subtree c reason acc
        | None -> ())
      n.children
  end

let record_revoke cap ~reason =
  if on () then
    match find cap with
    | None -> ()
    | Some n ->
      let count = ref 0 in
      revoke_subtree n reason count;
      if !count > 0 then
        Dsim.Audit.record_event (audit ()) ~n:!count Revoke

let revoke_owned ~owner ~reason =
  if not (on ()) then 0
  else begin
    let count = ref 0 in
    Hashtbl.iter
      (fun _ n ->
        if n.owner = owner && n.revoked = None then begin
          n.revoked <- Some reason;
          live_adj n.owner (-1);
          incr count
        end)
      nodes;
    if !count > 0 then Dsim.Audit.record_event (audit ()) ~n:!count Revoke;
    !count
  end

let restore_owned ~owner ~reason =
  if not (on ()) then 0
  else begin
    let count = ref 0 in
    Hashtbl.iter
      (fun _ n ->
        if n.owner = owner && n.revoked = Some reason then begin
          n.revoked <- None;
          live_adj n.owner 1;
          incr count
        end)
      nodes;
    if !count > 0 then Dsim.Audit.record_event (audit ()) ~n:!count Restore;
    !count
  end

let node_count () = Hashtbl.length nodes

let live_count ?owner () =
  let n = ref 0 in
  Hashtbl.iter
    (fun _ node ->
      if node.revoked = None then
        match owner with
        | None -> incr n
        | Some o -> if node.owner = o then incr n)
    nodes;
  !n

let untracked_exercises () = !untracked

let check_all () =
  let out = ref [] in
  Hashtbl.iter
    (fun _ n ->
      if n.revoked = None && n.parent >= 0 then
        match Hashtbl.find_opt nodes n.parent with
        | None -> ()
        | Some p ->
          if n.base < p.base || limit_of n > limit_of p then
            out :=
              ( n.id,
                ( Dsim.Audit.Bounds_widening,
                  Printf.sprintf "node %d (%s) escapes parent %d" n.id n.label
                    p.id ) )
              :: !out;
          if not (Perms.subset n.perms p.perms) then
            out :=
              ( n.id,
                ( Dsim.Audit.Perm_widening,
                  Printf.sprintf "node %d (%s) out-permissions parent %d" n.id
                    n.label p.id ) )
              :: !out;
          if p.revoked <> None then
            out :=
              ( n.id,
                ( Dsim.Audit.Revoked_parent,
                  Printf.sprintf "node %d (%s) live under revoked parent %d"
                    n.id n.label p.id ) )
              :: !out)
    nodes;
  List.map snd (List.sort compare !out)

type surface = {
  s_cvm : string;
  s_caps : int;
  s_reachable_bytes : int;
  s_region_bytes : int;
  s_perms : (string * int) list;
}

(* The compartment's own address-space grant (region/DDC/PCC/entry)
   spans its whole cVM; counting it would make every compartment's
   surface equal the cVM size. The working-set surface is the union of
   object-level capabilities; the ambient span is reported beside it. *)
let ambient_labels =
  [ "root"; "sealer"; "region"; "ddc"; "pcc"; "entry"; "untracked"; "grant" ]

let interval_union ivs =
  let sorted = List.sort compare ivs in
  let rec go acc cur = function
    | [] -> ( match cur with None -> acc | Some (a, b) -> acc + (b - a))
    | (a, b) :: rest -> (
      match cur with
      | None -> go acc (Some (a, b)) rest
      | Some (ca, cb) ->
        if a <= cb then go acc (Some (ca, max cb b)) rest
        else go (acc + (cb - ca)) (Some (a, b)) rest)
  in
  go 0 None sorted

let surfaces () =
  let buckets : (string, node list ref) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ n ->
      if n.revoked = None then
        List.iter
          (fun h ->
            match Hashtbl.find_opt buckets h with
            | Some l -> l := n :: !l
            | None -> Hashtbl.replace buckets h (ref [ n ]))
          (List.sort_uniq compare n.holders))
    nodes;
  Hashtbl.fold
    (fun cvm held acc ->
      let held = !held in
      let object_ivs, ambient_ivs =
        List.partition_map
          (fun n ->
            let iv = (n.base, limit_of n) in
            if List.mem n.label ambient_labels then Right iv else Left iv)
          held
      in
      let perms_tbl = Hashtbl.create 8 in
      List.iter
        (fun n ->
          let key = Format.asprintf "%a" Perms.pp n.perms in
          match Hashtbl.find_opt perms_tbl key with
          | Some r -> incr r
          | None -> Hashtbl.replace perms_tbl key (ref 1))
        held;
      {
        s_cvm = cvm;
        s_caps = List.length held;
        s_reachable_bytes = interval_union object_ivs;
        s_region_bytes = interval_union ambient_ivs;
        s_perms =
          List.sort compare
            (Hashtbl.fold (fun k r l -> (k, !r) :: l) perms_tbl []);
      }
      :: acc)
    buckets []
  |> List.sort (fun a b -> compare a.s_cvm b.s_cvm)

let edges () =
  Hashtbl.fold (fun (f, t) r acc -> (f, t, !r) :: acc) edge_counts []
  |> List.sort compare
