type block = { addr : int; size : int }

type t = {
  region : Capability.t;
  label : string;  (* provenance label for carved capabilities *)
  mutable free_list : block list;  (* sorted by addr, coalesced *)
  live : (int, int) Hashtbl.t;  (* base addr -> size *)
  mutable live_bytes : int;
}

let align_up n a = (n + a - 1) / a * a

let create ?(label = "alloc") ~region () =
  if not (Capability.is_tagged region) then
    invalid_arg "Alloc.create: untagged region";
  if Capability.is_sealed region then invalid_arg "Alloc.create: sealed region";
  let base = align_up (Capability.base region) Tagged_memory.granule in
  let limit = Capability.limit region in
  let size = limit - base in
  if size <= 0 then invalid_arg "Alloc.create: empty region";
  {
    region;
    label;
    free_list = [ { addr = base; size } ];
    live = Hashtbl.create 64;
    live_bytes = 0;
  }

let malloc t ?perms n =
  if n <= 0 then invalid_arg "Alloc.malloc: size must be positive";
  let need = align_up n Tagged_memory.granule in
  let rec take acc = function
    | [] -> raise Out_of_memory
    | b :: rest when b.size >= need ->
      let remainder =
        if b.size > need then [ { addr = b.addr + need; size = b.size - need } ]
        else []
      in
      t.free_list <- List.rev_append acc (remainder @ rest);
      b.addr
    | b :: rest -> take (b :: acc) rest
  in
  let addr = take [] t.free_list in
  Hashtbl.replace t.live addr need;
  t.live_bytes <- t.live_bytes + need;
  let cap = Capability.set_bounds t.region ~base:addr ~length:n in
  let cap =
    match perms with None -> cap | Some p -> Capability.and_perms cap p
  in
  Provenance.record_derive ~label:t.label ~parent:t.region cap;
  cap

let calloc t ?perms mem n =
  let cap = malloc t ?perms n in
  (* Zero through a store-capable view of the same bounds, so read-only
     allocations can still be scrubbed before handout. *)
  let scrub =
    Capability.set_bounds t.region ~base:(Capability.base cap) ~length:n
  in
  Tagged_memory.fill mem ~cap:scrub ~addr:(Capability.base cap) ~len:n '\000';
  cap

let insert_coalesced t blk =
  let rec insert = function
    | [] -> [ blk ]
    | b :: rest when blk.addr < b.addr -> blk :: b :: rest
    | b :: rest -> b :: insert rest
  in
  let rec coalesce = function
    | a :: b :: rest when a.addr + a.size = b.addr ->
      coalesce ({ addr = a.addr; size = a.size + b.size } :: rest)
    | a :: rest -> a :: coalesce rest
    | [] -> []
  in
  t.free_list <- coalesce (insert t.free_list)

let free t cap =
  let addr = Capability.base cap in
  match Hashtbl.find_opt t.live addr with
  | None ->
    invalid_arg
      (Printf.sprintf "Alloc.free: 0x%x is not a live allocation" addr)
  | Some size ->
    Hashtbl.remove t.live addr;
    t.live_bytes <- t.live_bytes - size;
    Provenance.record_revoke cap ~reason:"free";
    insert_coalesced t { addr; size }

let live_bytes t = t.live_bytes
let free_bytes t = List.fold_left (fun acc b -> acc + b.size) 0 t.free_list
let allocations t = Hashtbl.length t.live
