(** Capability-returning allocator.

    Carves bounded capabilities out of a region capability (a cVM heap,
    a DPDK memory zone). Every allocation is aligned to the tag granule
    so buffers can hold capabilities, and the returned capability is
    bounds-narrowed to exactly the allocation — the property that turns
    heap overflows into {!Fault.Capability_fault}s instead of silent
    corruption. First-fit free list with coalescing. *)

type t

val create : ?label:string -> region:Capability.t -> unit -> t
(** [region] must be tagged, unsealed and granule-aligned. [label]
    (default ["alloc"]) tags every carved capability's
    {!Provenance} node — e.g. the DPDK EAL passes ["memzone"]. *)

val malloc : t -> ?perms:Perms.t -> int -> Capability.t
(** Allocate [n] bytes ([n > 0]); permissions default to the region's.
    Requesting permissions beyond the region's is monotonic — they are
    intersected away. @raise Out_of_memory when the region is full. *)

val calloc : t -> ?perms:Perms.t -> Tagged_memory.t -> int -> Capability.t
(** [malloc] + zero-fill. *)

val free : t -> Capability.t -> unit
(** @raise Invalid_argument on a capability not minted by this
    allocator (wrong base or double free). *)

val live_bytes : t -> int
val free_bytes : t -> int
val allocations : t -> int
(** Number of live allocations. *)
