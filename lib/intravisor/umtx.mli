(** The shared mutex of Scenario 2, backed by CheriBSD's [_umtx_op].

    cVM1's main loop holds it for the length of each poll iteration;
    application cVMs take it around every F-Stack API call. Acquisition
    is asynchronous in simulation terms: if the lock is held, the
    caller's continuation runs at the simulated time the lock is
    granted, after the kernel wake cost.

    Two hand-off policies, for the locking-strategy ablation the paper
    defers to future work:
    - [Barging]: the most recent waiter wins (LIFO), the unfairness that
      produces Table II's contended imbalance;
    - [Fifo]: ticket-lock order, fair but with longer worst-case chains. *)

type policy = Barging | Fifo

type t

val create :
  Dsim.Engine.t ->
  ?policy:policy ->
  ?uncontended_ns:float ->
  ?wake_ns:float ->
  unit ->
  t

val policy : t -> policy

val acquire :
  t ->
  ?flow:Dsim.Flowtrace.ctx option ->
  owner:string ->
  (wait_ns:float -> unit) ->
  unit
(** Run the continuation when the lock is granted. [wait_ns] is the
    simulated blocking time (0 for an uncontended grab; the uncontended
    lock cost itself is in the cost model, accounted by the caller).
    [flow] gets an [Umtx_wait] hop stamped at the grant time, so the
    blocking interval shows up in the per-stage latency breakdown. *)

val release : t -> unit
(** @raise Invalid_argument when not held. Grants to the next waiter
    per policy (scheduling its continuation after the wake cost). *)

val force_release : t -> owner:string -> bool
(** Crash cleanup for a dead compartment: drop any continuations it has
    queued, and if it holds the lock, release (granting to the next
    surviving waiter). Returns whether the hold was broken. Never
    raises — safe to run unconditionally from supervisor teardown. *)

val try_acquire : t -> owner:string -> bool
val locked : t -> bool
val holder : t -> string option
val waiters : t -> int
val acquisitions : t -> int
val contended_acquisitions : t -> int
val total_wait_ns : t -> float
