type t = {
  name : string;
  id : int;
  region : Cheri.Capability.t;
  compartment : Cheri.Compartment.t;
  heap : Cheri.Alloc.t;
  entry_otype : Cheri.Otype.t;
  sealed_entry : Cheri.Capability.t;
  mutable trampolines : int;
  tramp_metric : Dsim.Metrics.counter;
  heap_metric : Dsim.Metrics.gauge;
}

let make ~name ~id ~region ~entry_otype ~sealed_entry =
  let ddc = Cheri.Capability.and_perms region Cheri.Perms.read_write in
  let pcc = Cheri.Capability.and_perms region Cheri.Perms.execute_only in
  Cheri.Provenance.record_derive ~label:"ddc" ~parent:region ddc;
  Cheri.Provenance.record_derive ~label:"pcc" ~parent:region pcc;
  (* Per-compartment accounting: the series exist (at zero) from the
     moment the cVM does, so a run that never faults still reports it. *)
  Cheri.Fault.register_compartment name;
  let tramp_metric =
    Dsim.Metrics.counter Dsim.Metrics.default
      ~help:"Domain crossings through the Intravisor trampoline, per compartment."
      ~labels:[ ("cvm", name) ] "trampoline_crossings_total"
  in
  let heap_metric =
    Dsim.Metrics.gauge Dsim.Metrics.default
      ~help:"Live bytes in the compartment heap." ~labels:[ ("cvm", name) ]
      "cvm_heap_live_bytes"
  in
  {
    name;
    id;
    region;
    compartment = Cheri.Compartment.make ~name ~id ~ddc ~pcc;
    heap = Cheri.Alloc.create ~region:ddc ();
    entry_otype;
    sealed_entry;
    trampolines = 0;
    tramp_metric;
    heap_metric;
  }

let name t = t.name
let id t = t.id
let region t = t.region
let compartment t = t.compartment
let entry_otype t = t.entry_otype
let sealed_entry t = t.sealed_entry
let heap_live_bytes t = Cheri.Alloc.live_bytes t.heap
let sync_heap_metric t = Dsim.Metrics.set t.heap_metric (heap_live_bytes t)

let malloc t ?perms n =
  let cap = Cheri.Alloc.malloc t.heap ?perms n in
  sync_heap_metric t;
  cap

let calloc t ?perms mem n =
  let cap = Cheri.Alloc.calloc t.heap ?perms mem n in
  sync_heap_metric t;
  cap

let free t cap =
  Cheri.Alloc.free t.heap cap;
  sync_heap_metric t

let sub_region t ~size =
  let cap = Cheri.Alloc.malloc t.heap size in
  sync_heap_metric t;
  cap

let note_trampoline t =
  t.trampolines <- t.trampolines + 1;
  Dsim.Metrics.incr t.tramp_metric
let trampoline_calls t = t.trampolines
let can_access t ~addr ~len ~write = Cheri.Compartment.can_access t.compartment ~addr ~len ~write

let pp fmt t =
  Format.fprintf fmt "cVM%d(%s) region=[0x%x,+0x%x) heap_live=%d tramp=%d" t.id
    t.name
    (Cheri.Capability.base t.region)
    (Cheri.Capability.length t.region)
    (heap_live_bytes t) t.trampolines
