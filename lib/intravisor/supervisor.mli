(** Supervised cVM lifecycle: trap boundaries, teardown, restart.

    The CHERI hardware turns a compartment's memory-safety violation
    into a catchable {!Cheri.Fault.Capability_fault}; what the paper's
    Figure 3 leaves implicit is everything that must happen next for
    the fault to stay contained. This module is that machinery: every
    entry into a cVM (trampoline, main-loop iteration, channel
    callback) runs under {!run}, which catches the fault, attributes
    it to the faulting cVM, runs the cVM's registered cleanups (socket
    teardown, mbuf returns, shared-mutex {!Umtx.force_release} — the
    Scenario 2 lock must never be left held by a dead compartment),
    and drives the lifecycle

    {v Running -> Trapped -> Quarantined -> (Restarting -> Running)* v}

    under a configurable policy: kill on first fault, or restart with
    exponential backoff and jitter until a restart budget is exhausted,
    after which the cVM is permanently quarantined ([Dead]). Sibling
    cVMs keep serving throughout.

    All timing uses the simulation engine; restart jitter comes from a
    seeded stream, so supervised runs remain deterministic. *)

type state = Running | Trapped | Quarantined | Restarting | Dead

val state_name : state -> string

type policy =
  | Kill  (** First fault permanently quarantines the cVM. *)
  | Restart of {
      budget : int;  (** Restarts allowed before permanent quarantine. *)
      backoff_base : Dsim.Time.t;
      backoff_max : Dsim.Time.t;  (** Cap on the doubling backoff. *)
      jitter_pct : float;  (** +/- fraction applied to each delay. *)
    }

val default_restart : policy
(** 3 restarts, 50 us base doubling to a 5 ms cap, 10% jitter. *)

type 'a outcome =
  | Done of 'a  (** The entry completed normally. *)
  | Faulted of Cheri.Fault.t
      (** The entry faulted; containment has already run by the time the
          caller sees this. *)
  | Refused of state
      (** The cVM is not [Running]; the entry was not executed. *)

type t

val create : Dsim.Engine.t -> ?seed:int64 -> ?policy:policy -> unit -> t

val register : t -> ?policy:policy -> Cvm.t -> unit
(** Place a cVM under supervision ([Running], no-op restart). [policy]
    overrides the supervisor-wide default for this cVM. Idempotent. *)

val add_cleanup : t -> cvm:Cvm.t -> (unit -> unit) -> unit
(** Teardown step run (in registration order, each shielded from the
    others' exceptions) when the cVM traps — release shared locks,
    close sockets, return mbufs. *)

val set_restart : t -> cvm:Cvm.t -> (unit -> unit) -> unit
(** Re-initialisation run on each restart attempt; a capability fault
    inside it re-enters containment (and consumes budget). *)

val run : t -> cvm:Cvm.t -> (unit -> 'a) -> 'a outcome
(** Execute one supervised entry into the cVM: sets the fault-
    attribution context for the duration, catches capability faults,
    and on a fault drives the containment sequence before returning.
    Non-capability exceptions propagate unchanged. *)

val state : t -> cvm:Cvm.t -> state
val faults : t -> cvm:Cvm.t -> int
val restarts : t -> cvm:Cvm.t -> int
val last_fault : t -> cvm:Cvm.t -> Cheri.Fault.t option

val quarantine_windows :
  t -> cvm:Cvm.t -> (Dsim.Time.t * Dsim.Time.t option) list
(** Chronological [(trap_time, recovery_time)] intervals during which
    the cVM was not serving; [None] end = never recovered (or still
    down). The blast-radius report excludes these windows when holding
    sibling goodput to its bound. *)

val set_on_transition :
  t -> (cvm:string -> old_state:state -> state -> unit) option -> unit
(** Observe every lifecycle transition (chaos ledger resolution hooks
    into this). Independently of the callback, every transition is
    annotated into an armed {!Dsim.Journal} recording. *)

(** {1 Crash black box}

    At the end of every containment sequence the supervisor captures
    the {!Dsim.Journal} crash ring — the last N completed dispatch
    records plus the in-flight faulting one — extended with its
    verdict and cross-references: the fault string, the faulting
    dispatch's journal seq, the flow-trace capability-drop total the
    same fault fed, and the provenance revocation count from the
    quarantine teardown. *)

val blackbox : t -> cvm:Cvm.t -> Dsim.Json.t option
(** The dump from the cVM's most recent containment, or [None] if it
    never trapped. Schema ["netrepro-blackbox/1"]: [ring], [in_flight],
    [cvm], [fault], [fault_seq], [verdict], [faults], [restarts],
    [at_ns], [flowtrace_capability_drops], [provenance_revoked],
    [provenance_live]. *)

val set_blackbox_dir : t -> string option -> unit
(** When set, each containment also writes its dump to
    [DIR/<cvm>.blackbox.json] (overwriting any previous dump for that
    cVM). No I/O happens otherwise. *)
