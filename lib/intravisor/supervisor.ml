type state = Running | Trapped | Quarantined | Restarting | Dead

let state_name = function
  | Running -> "running"
  | Trapped -> "trapped"
  | Quarantined -> "quarantined"
  | Restarting -> "restarting"
  | Dead -> "dead"

let state_index = function
  | Running -> 0
  | Trapped -> 1
  | Quarantined -> 2
  | Restarting -> 3
  | Dead -> 4

type policy =
  | Kill
  | Restart of {
      budget : int;
      backoff_base : Dsim.Time.t;
      backoff_max : Dsim.Time.t;
      jitter_pct : float;
    }

let default_restart =
  Restart
    {
      budget = 3;
      backoff_base = Dsim.Time.us 50;
      backoff_max = Dsim.Time.ms 5;
      jitter_pct = 0.1;
    }

type 'a outcome = Done of 'a | Faulted of Cheri.Fault.t | Refused of state

type entry = {
  e_cvm : Cvm.t;
  e_name : string;
  e_policy : policy;
  mutable e_state : state;
  mutable e_faults : int;
  mutable e_restarts : int;
  mutable e_cleanups : (unit -> unit) list; (* reverse registration order *)
  mutable e_restart_fn : unit -> unit;
  mutable e_last_fault : Cheri.Fault.t option;
  mutable e_trapped_at : Dsim.Time.t;
  (* Head = most recent quarantine window; [None] end = still open. *)
  mutable e_windows : (Dsim.Time.t * Dsim.Time.t option) list;
  (* Black-box dump captured at the end of the most recent containment
     sequence: the journal's crash ring plus fault cross-references. *)
  mutable e_blackbox : Dsim.Json.t option;
  e_gauge : Dsim.Metrics.gauge;
  e_recovery : Dsim.Metrics.histogram;
}

type transition_cb = cvm:string -> old_state:state -> state -> unit

type t = {
  engine : Dsim.Engine.t;
  policy : policy;
  rng : Dsim.Rng.t;
  entries : (string, entry) Hashtbl.t;
  mutable on_transition : transition_cb option;
  mutable blackbox_dir : string option;
}

let create engine ?(seed = 0x5afeL) ?(policy = default_restart) () =
  {
    engine;
    policy;
    rng = Dsim.Rng.create ~seed;
    entries = Hashtbl.create 8;
    on_transition = None;
    blackbox_dir = None;
  }

let set_on_transition t cb = t.on_transition <- cb
let set_blackbox_dir t dir = t.blackbox_dir <- dir

let register t ?policy cvm =
  let name = Cvm.name cvm in
  if not (Hashtbl.mem t.entries name) then begin
    Cheri.Fault.register_compartment name;
    let labels = [ ("cvm", name) ] in
    Hashtbl.replace t.entries name
      {
        e_cvm = cvm;
        e_name = name;
        e_policy = Option.value policy ~default:t.policy;
        e_state = Running;
        e_faults = 0;
        e_restarts = 0;
        e_cleanups = [];
        e_restart_fn = (fun () -> ());
        e_last_fault = None;
        e_trapped_at = Dsim.Time.ns 0;
        e_windows = [];
        e_blackbox = None;
        e_gauge =
          Dsim.Metrics.gauge Dsim.Metrics.default
            ~help:
              "cVM lifecycle state (0 running, 1 trapped, 2 quarantined, 3 \
               restarting, 4 dead)."
            ~labels "cvm_state";
        e_recovery =
          Dsim.Metrics.histogram Dsim.Metrics.default
            ~help:"Trap-to-running recovery time per supervised restart, ns."
            ~labels ~lo:1000. ~ratio:2. ~buckets:28 "cvm_recovery_ns";
      }
  end

let entry t cvm =
  match Hashtbl.find_opt t.entries (Cvm.name cvm) with
  | Some e -> e
  | None -> invalid_arg ("Supervisor: cVM not registered: " ^ Cvm.name cvm)

let add_cleanup t ~cvm f =
  let e = entry t cvm in
  e.e_cleanups <- f :: e.e_cleanups

let set_restart t ~cvm f = (entry t cvm).e_restart_fn <- f
let state t ~cvm = (entry t cvm).e_state
let blackbox t ~cvm = (entry t cvm).e_blackbox
let faults t ~cvm = (entry t cvm).e_faults
let restarts t ~cvm = (entry t cvm).e_restarts
let last_fault t ~cvm = (entry t cvm).e_last_fault
let quarantine_windows t ~cvm = List.rev (entry t cvm).e_windows

let set_state t e s =
  let old = e.e_state in
  if old <> s then begin
    e.e_state <- s;
    Dsim.Metrics.set e.e_gauge (state_index s);
    Dsim.Journal.note_supervisor ~cvm:e.e_name ~old_state:(state_name old)
      ~new_state:(state_name s);
    match t.on_transition with
    | Some cb -> cb ~cvm:e.e_name ~old_state:old s
    | None -> ()
  end

let open_window e ~now =
  match e.e_windows with
  | (_, None) :: _ -> () (* restart faulted: previous window still open *)
  | _ -> e.e_windows <- (now, None) :: e.e_windows

let close_window e ~now =
  match e.e_windows with
  | (start, None) :: rest -> e.e_windows <- (start, Some now) :: rest
  | _ -> ()

let k_restart =
  Dsim.Profile.(key default) ~component:"intravisor" ~cvm:"supervisor"
    ~stage:"restart"

(* Capability-fault drops accumulated in the process-global flow trace:
   the black box carries this total so a dump can be cross-checked
   against the drop ledger entry the same fault produced. *)
let capability_drop_count () =
  List.fold_left
    (fun acc ((_, reason), n) ->
      if reason = Dsim.Flowtrace.Capability_fault then acc + n else acc)
    0
    (Dsim.Flowtrace.drop_table Dsim.Flowtrace.default)

(* The crash black box: the journal's always-on ring (last N completed
   dispatches plus the in-flight faulting one) extended with the
   supervisor's verdict and cross-references into the flow-trace drop
   ledger and the capability provenance graph. Captured at the end of
   containment, when the policy verdict and revocation count are
   known; no I/O unless a dump directory is armed. *)
let capture_blackbox t e fault ~now ~revoked =
  let dump =
    match Dsim.Journal.blackbox_json () with
    | Dsim.Json.Obj fields ->
      Dsim.Json.Obj
        (fields
        @ [
            ("cvm", Dsim.Json.String e.e_name);
            ("fault", Dsim.Json.String (Cheri.Fault.to_string fault));
            ( "fault_seq",
              Dsim.Json.Int
                (match Dsim.Journal.in_flight () with
                | Some d -> d.Dsim.Journal.d_seq
                | None -> -1) );
            ("verdict", Dsim.Json.String (state_name e.e_state));
            ("faults", Dsim.Json.Int e.e_faults);
            ("restarts", Dsim.Json.Int e.e_restarts);
            ("at_ns", Dsim.Json.Int (Int64.to_int (Dsim.Time.to_ns now)));
            ("flowtrace_capability_drops", Dsim.Json.Int (capability_drop_count ()));
            ("provenance_revoked", Dsim.Json.Int revoked);
            ( "provenance_live",
              Dsim.Json.Int (Cheri.Provenance.live_count ~owner:e.e_name ()) );
          ])
    | other -> other
  in
  e.e_blackbox <- Some dump;
  match t.blackbox_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (e.e_name ^ ".blackbox.json") in
    Out_channel.with_open_bin path (fun oc ->
        output_string oc (Dsim.Json.to_string dump);
        output_char oc '\n')

let backoff_delay t e =
  match e.e_policy with
  | Kill -> Dsim.Time.ns 0
  | Restart { backoff_base; backoff_max; jitter_pct; _ } ->
    let base =
      Dsim.Time.min
        (Dsim.Time.mul backoff_base (1 lsl min e.e_restarts 16))
        backoff_max
    in
    (* Jitter decorrelates sibling restarts; drawn from the supervisor's
       own seeded stream so runs stay reproducible. *)
    let factor = 1. +. (jitter_pct *. ((2. *. Dsim.Rng.float t.rng 1.) -. 1.)) in
    Dsim.Time.of_float_ns (Dsim.Time.to_float_ns base *. factor)

(* The containment sequence. Trapped: the fault is attributed and the
   compartment stops executing. Teardown: every registered cleanup runs
   (each individually shielded — a failing cleanup must not abort the
   rest), releasing shared-resource holds so siblings keep serving.
   Quarantined: the cVM holds nothing and runs nothing. Then the policy
   decides: kill / budget exhausted -> Dead (window stays open), else a
   backed-off restart attempt; a fault during restart re-enters here. *)
let rec handle_fault t e fault =
  let now = Dsim.Engine.now t.engine in
  e.e_faults <- e.e_faults + 1;
  e.e_last_fault <- Some fault;
  e.e_trapped_at <- now;
  Dsim.Journal.note_fault ~cvm:e.e_name
    ~fault:(Cheri.Fault.to_string fault);
  set_state t e Trapped;
  List.iter
    (fun cleanup -> try cleanup () with _ -> ())
    (List.rev e.e_cleanups);
  (* Containment revokes the compartment's whole endowment — the audit
     ledger sees the teardown as a revocation storm, and any dangling
     dereference during quarantine surfaces as a temporal leak. *)
  let revoked =
    Cheri.Provenance.revoke_owned ~owner:e.e_name
      ~reason:"supervisor_cleanup"
  in
  open_window e ~now;
  set_state t e Quarantined;
  (match e.e_policy with
  | Kill -> set_state t e Dead
  | Restart { budget; _ } when e.e_restarts >= budget -> set_state t e Dead
  | Restart _ ->
    let delay = backoff_delay t e in
    ignore
      (Dsim.Engine.schedule_l t.engine ~delay ~label:k_restart (fun () ->
           attempt_restart t e)));
  capture_blackbox t e fault ~now ~revoked

and attempt_restart t e =
  set_state t e Restarting;
  e.e_restarts <- e.e_restarts + 1;
  let saved = Cheri.Fault.current_context () in
  Cheri.Fault.set_context e.e_name;
  match e.e_restart_fn () with
  | () ->
    Cheri.Fault.set_context saved;
    (* Re-endow: the quarantine revocations are lifted so post-restart
       exercises of the compartment's own capabilities are clean. *)
    ignore
      (Cheri.Provenance.restore_owned ~owner:e.e_name
         ~reason:"supervisor_cleanup");
    let now = Dsim.Engine.now t.engine in
    close_window e ~now;
    Dsim.Metrics.observe e.e_recovery
      (Dsim.Time.to_float_ns (Dsim.Time.sub now e.e_trapped_at));
    set_state t e Running
  | exception Cheri.Fault.Capability_fault fault ->
    Cheri.Fault.set_context saved;
    handle_fault t e fault

let run t ~cvm f =
  let e = entry t cvm in
  match e.e_state with
  | Running -> (
    let saved = Cheri.Fault.current_context () in
    Cheri.Fault.set_context e.e_name;
    match f () with
    | v ->
      Cheri.Fault.set_context saved;
      Done v
    | exception Cheri.Fault.Capability_fault fault ->
      Cheri.Fault.set_context saved;
      handle_fault t e fault;
      Faulted fault)
  | s -> Refused s
