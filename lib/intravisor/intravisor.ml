type t = {
  engine : Dsim.Engine.t;
  mem : Cheri.Tagged_memory.t;
  host : Host_os.t;
  cost : Dsim.Cost_model.t;
  root : Cheri.Capability.t;
  sealer : Cheri.Capability.t;
  otypes : Cheri.Otype.allocator;
  region_alloc : Cheri.Alloc.t;
  mutable cvms : Cvm.t list;
  mutable next_id : int;
  mutable trampolines : int;
  (* Round-trip crossings grouped by the calling compartment's fault
     context: the per-tenant attribution a fleet of app cVMs sharing
     one stack cVM needs ([total_trampolines] only says how busy the
     boundary is, not who drove it). *)
  crossings_by_caller : (string, int ref) Hashtbl.t;
}

(* The otype space is disjoint from data addresses; 1024 entry otypes
   is plenty for a handful of cVMs. *)
let otype_space = 1024

let create engine ~mem_size ~cost =
  let mem = Cheri.Tagged_memory.create ~size:mem_size in
  let root =
    Cheri.Capability.root ~base:0 ~length:mem_size ~perms:Cheri.Perms.all
  in
  let sealer =
    Cheri.Capability.root ~base:0 ~length:otype_space
      ~perms:{ Cheri.Perms.none with seal = true; unseal = true }
  in
  Cheri.Provenance.record_mint root ~owner:"intravisor" ~label:"root";
  Cheri.Provenance.record_mint sealer ~owner:"intravisor" ~label:"sealer";
  {
    engine;
    mem;
    host = Host_os.create engine ~cost;
    cost;
    root;
    sealer;
    otypes = Cheri.Otype.allocator ();
    region_alloc = Cheri.Alloc.create ~region:root ();
    cvms = [];
    next_id = 1;
    trampolines = 0;
    crossings_by_caller = Hashtbl.create 64;
  }

let note_crossing t ~caller =
  match Hashtbl.find_opt t.crossings_by_caller caller with
  | Some r -> r := !r + 2 (* in + out *)
  | None -> Hashtbl.replace t.crossings_by_caller caller (ref 2)

let engine t = t.engine
let mem t = t.mem
let host t = t.host
let cost_model t = t.cost
let cvms t = t.cvms
let seal_authority t = t.sealer

let create_cvm t ~name ~size =
  (* cVMs never receive sealing authority: strip seal/unseal from the
     region before handing it out, so no capability derivable inside the
     compartment can unseal an entry. *)
  let cvm_perms =
    { Cheri.Perms.all with Cheri.Perms.seal = false; unseal = false }
  in
  let raw_region = Cheri.Alloc.malloc t.region_alloc size in
  let region = Cheri.Capability.and_perms raw_region cvm_perms in
  (* The region is the cVM's endowment: derive + grant are what the
     confinement checker later matches exercises against. *)
  Cheri.Provenance.record_derive ~owner:name ~label:"region"
    ~parent:raw_region region;
  Cheri.Provenance.record_grant region ~cvm:name;
  let entry_otype = Cheri.Otype.fresh t.otypes in
  (* The entry point is an execute capability at the region base, sealed
     with the cVM's otype; only the Intravisor's authority unseals it. *)
  let entry =
    Cheri.Capability.and_perms region Cheri.Perms.execute_only
  in
  Cheri.Provenance.record_derive ~label:"entry" ~parent:region entry;
  let sealing_cap =
    Cheri.Capability.set_cursor t.sealer (Cheri.Otype.to_int entry_otype)
  in
  let sealed_entry = Cheri.Capability.seal ~sealer:sealing_cap entry in
  Cheri.Provenance.record_seal ~parent:entry sealed_entry;
  let cvm = Cvm.make ~name ~id:t.next_id ~region ~entry_otype ~sealed_entry in
  t.next_id <- t.next_id + 1;
  t.cvms <- t.cvms @ [ cvm ];
  cvm

let trampoline_cost_ns t = 2. *. t.cost.Dsim.Cost_model.tramp_oneway_ns

let trampoline t ?(flow = None) ~into f =
  Dsim.Flowtrace.hop flow Tramp_in ~at:(Dsim.Engine.now t.engine);
  (* The control transfer: unseal the target entry with the Intravisor
     authority (this is where a forged entry capability faults), check
     it is executable, then run the body in the target compartment. *)
  let unsealer =
    Cheri.Capability.set_cursor t.sealer
      (Cheri.Otype.to_int (Cvm.entry_otype into))
  in
  let entry = Cheri.Capability.unseal ~unsealer (Cvm.sealed_entry into) in
  Cheri.Provenance.record_unseal ~parent:(Cvm.sealed_entry into) entry;
  Cheri.Capability.check_access entry Cheri.Capability.Execute
    ~addr:(Cheri.Capability.base entry) ~len:4;
  t.trampolines <- t.trampolines + 2 (* in + out *);
  Cvm.note_trampoline into;
  (* Run the body under the target compartment's fault-attribution
     context; restored even when the body traps. The open crossing is
     what lets the confinement checker explain the callee touching the
     caller's buffers (e.g. cVM2's app buffer inside cVM1's stack). *)
  let saved = Cheri.Fault.current_context () in
  note_crossing t ~caller:saved;
  Cheri.Provenance.crossing_begin ~from_cvm:saved ~into:(Cvm.name into);
  Cheri.Fault.set_context (Cvm.name into);
  let result =
    Fun.protect
      ~finally:(fun () ->
        Cheri.Fault.set_context saved;
        Cheri.Provenance.crossing_end ())
      f
  in
  (result, trampoline_cost_ns t)

let total_trampolines t = t.trampolines

let crossings_by_caller t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.crossings_by_caller []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let crossings_from t ~caller =
  match Hashtbl.find_opt t.crossings_by_caller caller with
  | Some r -> !r
  | None -> 0

type sys_value = Vtime of Dsim.Time.t | Vint of int | Vunit

let execute_kernel t sc =
  Host_os.count_syscall t.host sc;
  let value =
    match sc with
    | Syscall.Clock_gettime -> Vtime (Host_os.clock_monotonic_raw t.host)
    | Syscall.Getpid -> Vint 1
    | Syscall.Nanosleep _ | Syscall.Futex_wait | Syscall.Futex_wake
    | Syscall.Umtx_wait | Syscall.Umtx_wake | Syscall.Write_console _ -> Vunit
  in
  (value, Host_os.syscall_body_ns t.host sc)

let syscall t ~from sc =
  Cvm.note_trampoline from;
  t.trampolines <- t.trampolines + 2;
  note_crossing t ~caller:(Cvm.name from);
  let translated = Syscall.translate_musl sc in
  let value, body_ns = execute_kernel t translated in
  (value, trampoline_cost_ns t +. body_ns)

let direct_syscall t sc =
  let value, body_ns = execute_kernel t sc in
  (value, Host_os.svc_entry_exit_ns t.host +. body_ns)
