(** The Intravisor: the minimal-TCB monitor of the CAP-VM design.

    It boots with the root capability to the single address space,
    carves confined regions for cVMs, distributes their capabilities,
    and is the only component holding the seal/unseal authority — so
    every cross-compartment control transfer (trampoline) and every
    host-OS syscall from a cVM is mediated here.

    Unlike the original CAP-VMs, there is no LKL layer: cVMs run DPDK +
    F-Stack natively in user space (the paper's streamlining), and musl
    syscalls map straight onto CheriBSD through {!syscall}. *)

type t

val create :
  Dsim.Engine.t -> mem_size:int -> cost:Dsim.Cost_model.t -> t

val engine : t -> Dsim.Engine.t
val mem : t -> Cheri.Tagged_memory.t
val host : t -> Host_os.t
val cost_model : t -> Dsim.Cost_model.t

val create_cvm : t -> name:string -> size:int -> Cvm.t
(** Carve a fresh region, mint the cVM's DDC/PCC, allocate its entry
    otype and seal its entry capability. *)

val cvms : t -> Cvm.t list

(** {1 Cross-compartment control transfer} *)

val trampoline :
  t -> ?flow:Dsim.Flowtrace.ctx option -> into:Cvm.t -> (unit -> 'a) -> 'a * float
(** Enter [into] through its sealed entry (really unsealing it — a
    forged or wrong-otype entry faults), run the body, return. The
    float is the modeled CPU cost (two one-way jumps: register spill,
    PCC/DDC install, sealed branch). [flow] gets a [Tramp_in] hop
    stamped at entry. *)

val trampoline_cost_ns : t -> float
(** Round-trip cost without executing anything. *)

val total_trampolines : t -> int

val crossings_by_caller : t -> (string * int) list
(** Round-trip crossings ({!trampoline} and {!syscall}) grouped by the
    calling compartment's fault context at entry, sorted by name — the
    per-tenant attribution of boundary traffic when many app cVMs share
    one stack cVM. Callers that never crossed are absent. *)

val crossings_from : t -> caller:string -> int
(** Crossings charged to one caller; 0 if it never crossed. *)

(** {1 Syscall proxying} *)

type sys_value = Vtime of Dsim.Time.t | Vint of int | Vunit

val syscall : t -> from:Cvm.t -> Syscall.t -> sys_value * float
(** Full cVM syscall path: trampoline out of the cVM into the
    Intravisor, musl→CheriBSD translation, kernel body, trampoline
    back. Returns the value and total CPU cost in ns. *)

val direct_syscall : t -> Syscall.t -> sys_value * float
(** Baseline (MMU process) path: SVC entry/exit + kernel body, no
    trampolines. *)

(** {1 Verification helpers} *)

val seal_authority : t -> Cheri.Capability.t
(** Exposed (read-only) so tests can verify that cVMs cannot unseal
    entries themselves: deriving an unseal capability from a cVM region
    fails by monotonicity. *)
