(* Chaos hook for transient syscall failure: [should_fail ~attempt]
   decides whether attempt N (0-based) of one logical call gets EINTR
   back; [note_recovery] fires once the call finally succeeds. *)
type transient = {
  should_fail : attempt:int -> bool;
  note_recovery : retries:int -> backoff_ns:float -> unit;
}

type t = {
  iv : Intravisor.t;
  cvm : Cvm.t;
  mutable calls : int;
  mutable transient : transient option;
  retry_metric : Dsim.Metrics.counter;
}

let create iv cvm =
  {
    iv;
    cvm;
    calls = 0;
    transient = None;
    retry_metric =
      Dsim.Metrics.counter Dsim.Metrics.default
        ~help:"Syscalls retried after a transient (EINTR-class) failure."
        ~labels:[ ("cvm", Cvm.name cvm) ]
        "musl_eintr_retries_total";
  }

let cvm t = t.cvm
let set_transient t tr = t.transient <- tr

(* musl's TEMP_FAILURE_RETRY discipline, with a small exponential
   backoff so a burst of EINTRs does not spin the trampoline path. *)
let max_attempts = 16
let backoff_base_ns = 500.

let invoke t sc =
  t.calls <- t.calls + 1;
  (* The shim is a boundary crossing like the trampoline: the syscall
     transfers control (and argument buffers) into the Intravisor. *)
  Cheri.Provenance.record_transfer ~from_cvm:(Cvm.name t.cvm)
    ~into:"intravisor";
  match t.transient with
  | None -> Intravisor.syscall t.iv ~from:t.cvm sc
  | Some tr ->
    (* Each failed attempt pays the full trampoline round trip (the call
       reached the Intravisor and came back -EINTR without running the
       kernel body) plus its backoff before the retry. *)
    let rec go attempt extra_ns =
      if attempt < max_attempts - 1 && tr.should_fail ~attempt then begin
        Dsim.Metrics.incr t.retry_metric;
        let backoff =
          backoff_base_ns *. float_of_int (1 lsl min attempt 6)
        in
        go (attempt + 1)
          (extra_ns +. Intravisor.trampoline_cost_ns t.iv +. backoff)
      end
      else begin
        let v, cost = Intravisor.syscall t.iv ~from:t.cvm sc in
        if attempt > 0 then
          tr.note_recovery ~retries:attempt ~backoff_ns:extra_ns;
        (v, cost +. extra_ns)
      end
    in
    go 0 0.

let clock_gettime t =
  match invoke t Syscall.Clock_gettime with
  | Intravisor.Vtime time, cost -> (time, cost)
  | (Intravisor.Vint _ | Intravisor.Vunit), _ ->
    invalid_arg "musl clock_gettime: kernel returned a non-time value"

let getpid t =
  match invoke t Syscall.Getpid with
  | Intravisor.Vint pid, cost -> (pid, cost)
  | (Intravisor.Vtime _ | Intravisor.Vunit), _ ->
    invalid_arg "musl getpid: kernel returned a non-int value"

let futex_wake t = snd (invoke t Syscall.Futex_wake)
let futex_wait_cost t = snd (invoke t Syscall.Futex_wait)
let write_console t s = snd (invoke t (Syscall.Write_console (String.length s)))
let calls t = t.calls
