type t = {
  chan_name : string;
  mem : Cheri.Tagged_memory.t;
  base : int;
  cap_bytes : int;
  mutable head : int;  (* index of the first unread byte *)
  mutable len : int;
  mutable sent : int;
  mutable received : int;
}

type endpoint = { cap : Cheri.Capability.t; channel : t }

let align_up n a = (n + a - 1) / a * a

(* The Intravisor carves the ring from its own reserve: a dedicated cVM
   region would also work, but the channel belongs to neither party. *)
let create iv ~name ~capacity =
  if capacity <= 0 then invalid_arg "Channel.create: capacity must be positive";
  let capacity = align_up capacity Cheri.Tagged_memory.granule in
  let holder = Intravisor.create_cvm iv ~name:("chan-" ^ name) ~size:(capacity + 64) in
  let region = Cvm.sub_region holder ~size:capacity in
  let t =
    {
      chan_name = name;
      mem = Intravisor.mem iv;
      base = Cheri.Capability.base region;
      cap_bytes = capacity;
      head = 0;
      len = 0;
      sent = 0;
      received = 0;
    }
  in
  let write_view =
    Cheri.Capability.and_perms region
      { Cheri.Perms.none with Cheri.Perms.store = true; global = true }
  in
  let read_view =
    Cheri.Capability.and_perms region
      { Cheri.Perms.none with Cheri.Perms.load = true; global = true }
  in
  (* Channel endpoints are legitimately exercised from both sides; the
     channel flag tells the confinement checker to record an edge
     instead of a violation. *)
  Cheri.Provenance.record_derive ~label:"channel" ~parent:region write_view;
  Cheri.Provenance.mark_channel write_view;
  Cheri.Provenance.record_derive ~label:"channel" ~parent:region read_view;
  Cheri.Provenance.mark_channel read_view;
  ({ cap = write_view; channel = t }, { cap = read_view; channel = t })

let name t = t.chan_name
let capacity t = t.cap_bytes
let used t = t.len
let free_space t = t.cap_bytes - t.len

let send ep b =
  let t = ep.channel in
  Cheri.Provenance.record_exercise ep.cap ~address:t.base;
  let n = min (Bytes.length b) (free_space t) in
  if n > 0 then begin
    let tail = (t.head + t.len) mod t.cap_bytes in
    let first = min n (t.cap_bytes - tail) in
    (* Both blits go through the endpoint capability: a consumer-side
       endpoint faults on the store permission here. *)
    Cheri.Tagged_memory.blit_in t.mem ~cap:ep.cap ~addr:(t.base + tail) ~src:b
      ~src_off:0 ~len:first;
    if n > first then
      Cheri.Tagged_memory.blit_in t.mem ~cap:ep.cap ~addr:t.base ~src:b
        ~src_off:first ~len:(n - first);
    t.len <- t.len + n;
    t.sent <- t.sent + n
  end
  else if Bytes.length b > 0 then
    (* Even a zero-byte effective send must hold the store right. *)
    Cheri.Capability.check_access ep.cap Cheri.Capability.Store ~addr:t.base ~len:1;
  n

let recv ep ~max =
  let t = ep.channel in
  Cheri.Provenance.record_exercise ep.cap ~address:t.base;
  let n = min max t.len in
  if n <= 0 then begin
    if max > 0 then
      Cheri.Capability.check_access ep.cap Cheri.Capability.Load ~addr:t.base ~len:1;
    Bytes.empty
  end
  else begin
    let out = Bytes.create n in
    let first = min n (t.cap_bytes - t.head) in
    Cheri.Tagged_memory.blit_out t.mem ~cap:ep.cap ~addr:(t.base + t.head)
      ~dst:out ~dst_off:0 ~len:first;
    if n > first then
      Cheri.Tagged_memory.blit_out t.mem ~cap:ep.cap ~addr:t.base ~dst:out
        ~dst_off:first ~len:(n - first);
    t.head <- (t.head + n) mod t.cap_bytes;
    t.len <- t.len - n;
    t.received <- t.received + n;
    out
  end

let peek_stats t = (t.sent, t.received)
