(** The modified musl libc linked into every cVM.

    The paper replaced musl's [SVC] instructions with trampoline calls
    into the Intravisor; this shim is that replacement. Each call
    returns the value plus the CPU nanoseconds the call path consumed
    (trampolines + proxy + kernel), which is what the measurement
    harness charges to the calling thread. *)

type t

val create : Intravisor.t -> Cvm.t -> t
val cvm : t -> Cvm.t

type transient = {
  should_fail : attempt:int -> bool;
      (** Consulted per attempt (0-based) of each logical syscall; [true]
          turns that attempt into an EINTR-class failure. *)
  note_recovery : retries:int -> backoff_ns:float -> unit;
      (** Fired when a call that failed at least once finally succeeds,
          with the retry count and the extra CPU time the retries cost. *)
}

val set_transient : t -> transient option -> unit
(** Install a chaos hook for transient syscall failures. The shim
    retries like musl's [TEMP_FAILURE_RETRY], charging each failed
    attempt a trampoline round trip plus a doubling backoff (500 ns
    base), and gives up injecting after 16 attempts — the call itself
    always succeeds eventually. Retries are counted in the
    [musl_eintr_retries_total] metric, labelled by cVM. *)

val clock_gettime : t -> Dsim.Time.t * float
(** CLOCK_MONOTONIC_RAW through the trampoline path. The cost is the
    reason Scenario 1's measured ff_write is ~125 ns above Baseline's:
    both timestamps of a measurement pay the extra indirection. *)

val getpid : t -> int * float
val futex_wake : t -> float
(** Returns the CPU cost; the actual wake semantics live in {!Umtx}. *)

val futex_wait_cost : t -> float
val write_console : t -> string -> float
val calls : t -> int
