(* Syscall accounting is pre-registered per syscall number so the hot
   measurement loops (two clock_gettime per iteration) update a counter
   without any lookup or allocation. *)
let sc_slots =
  [|
    Syscall.Clock_gettime;
    Syscall.Nanosleep Dsim.Time.zero;
    Syscall.Futex_wait;
    Syscall.Futex_wake;
    Syscall.Umtx_wait;
    Syscall.Umtx_wake;
    Syscall.Write_console 0;
    Syscall.Getpid;
  |]

let sc_index = function
  | Syscall.Clock_gettime -> 0
  | Syscall.Nanosleep _ -> 1
  | Syscall.Futex_wait -> 2
  | Syscall.Futex_wake -> 3
  | Syscall.Umtx_wait -> 4
  | Syscall.Umtx_wake -> 5
  | Syscall.Write_console _ -> 6
  | Syscall.Getpid -> 7

type t = {
  engine : Dsim.Engine.t;
  cost : Dsim.Cost_model.t;
  mutable served : int;
  sc_counters : Dsim.Metrics.counter array;
}

let create engine ~cost =
  {
    engine;
    cost;
    served = 0;
    sc_counters =
      Array.map
        (fun sc ->
          Dsim.Metrics.counter Dsim.Metrics.default
            ~help:"Syscalls served by the host kernel, by number."
            ~labels:[ ("nr", Syscall.name sc) ]
            "syscalls_total")
        sc_slots;
  }

let engine t = t.engine
let cost_model t = t.cost
let clock_monotonic_raw t = Dsim.Engine.now t.engine
let syscall_body_ns t sc = Syscall.kernel_cost_ns t.cost sc
let svc_entry_exit_ns t = t.cost.Dsim.Cost_model.mmu_syscall_extra_ns
let syscalls_served t = t.served

let count_syscall t sc =
  t.served <- t.served + 1;
  Dsim.Metrics.incr t.sc_counters.(sc_index sc)
