type policy = Barging | Fifo

type waiter = {
  name : string;
  since : Dsim.Time.t;
  wflow : Dsim.Flowtrace.ctx option;
  k : wait_ns:float -> unit;
}

type t = {
  engine : Dsim.Engine.t;
  policy : policy;
  uncontended_ns : float;
  wake_ns : float;
  mutable owner : string option;
  mutable queue : waiter list;  (* head = next to run under Fifo *)
  mutable acquisitions : int;
  mutable contended : int;
  mutable total_wait_ns : float;
  acq_metric : Dsim.Metrics.counter;
  cont_metric : Dsim.Metrics.counter;
  wait_metric : Dsim.Metrics.histogram;
  k_wake : Dsim.Profile.key;
  wm_queue : Dsim.Watermark.cell;
}

let policy_label = function Barging -> "barging" | Fifo -> "fifo"

let create engine ?(policy = Barging) ?(uncontended_ns = 75.) ?(wake_ns = 350.)
    () =
  let labels = [ ("policy", policy_label policy) ] in
  {
    engine;
    policy;
    uncontended_ns;
    wake_ns;
    owner = None;
    queue = [];
    acquisitions = 0;
    contended = 0;
    total_wait_ns = 0.;
    acq_metric =
      Dsim.Metrics.counter Dsim.Metrics.default
        ~help:"umtx mutex acquisitions." ~labels "umtx_acquisitions_total";
    cont_metric =
      Dsim.Metrics.counter Dsim.Metrics.default
        ~help:"umtx acquisitions that went through the kernel wait queue."
        ~labels "umtx_contended_total";
    wait_metric =
      Dsim.Metrics.histogram Dsim.Metrics.default
        ~help:"Time waiters spent blocked on the umtx, in nanoseconds."
        ~labels ~lo:100. ~ratio:2. ~buckets:24 "umtx_wait_ns";
    k_wake =
      Dsim.Profile.(key default) ~component:"intravisor"
        ~cvm:(policy_label policy) ~stage:"umtx_wake";
    wm_queue = Dsim.Watermark.(cell default) ~labels "umtx_wait_queue";
  }

let policy t = t.policy
let locked t = Option.is_some t.owner
let holder t = t.owner
let waiters t = List.length t.queue
let acquisitions t = t.acquisitions
let contended_acquisitions t = t.contended
let total_wait_ns t = t.total_wait_ns

let acquire t ?(flow = None) ~owner k =
  match t.owner with
  | None ->
    t.owner <- Some owner;
    t.acquisitions <- t.acquisitions + 1;
    Dsim.Metrics.incr t.acq_metric;
    Dsim.Flowtrace.hop flow Umtx_wait ~at:(Dsim.Engine.now t.engine);
    k ~wait_ns:0.
  | Some _ ->
    let w =
      { name = owner; since = Dsim.Engine.now t.engine; wflow = flow; k }
    in
    t.queue <-
      (match t.policy with
      | Barging -> w :: t.queue  (* most recent waiter barges in first *)
      | Fifo -> t.queue @ [ w ]);
    Dsim.Watermark.observe t.wm_queue (List.length t.queue)

let try_acquire t ~owner =
  match t.owner with
  | None ->
    t.owner <- Some owner;
    t.acquisitions <- t.acquisitions + 1;
    Dsim.Metrics.incr t.acq_metric;
    true
  | Some _ -> false

let release t =
  match t.owner with
  | None -> invalid_arg "Umtx.release: not held"
  | Some _ ->
    t.owner <- None;
    (match t.queue with
    | [] -> ()
    | next :: rest ->
      t.queue <- rest;
      Dsim.Watermark.observe t.wm_queue (List.length t.queue);
      t.owner <- Some next.name;
      t.acquisitions <- t.acquisitions + 1;
      t.contended <- t.contended + 1;
      Dsim.Metrics.incr t.acq_metric;
      Dsim.Metrics.incr t.cont_metric;
      (* The kernel wake costs [wake_ns] before the waiter resumes. *)
      ignore
        (Dsim.Engine.schedule_l t.engine
           ~delay:(Dsim.Time.of_float_ns t.wake_ns) ~label:t.k_wake
           (fun () ->
             let waited =
               Dsim.Time.to_float_ns
                 (Dsim.Time.sub (Dsim.Engine.now t.engine) next.since)
             in
             t.total_wait_ns <- t.total_wait_ns +. waited;
             Dsim.Metrics.observe t.wait_metric waited;
             Dsim.Flowtrace.hop next.wflow Umtx_wait
               ~at:(Dsim.Engine.now t.engine);
             next.k ~wait_ns:waited)))

(* Crash cleanup: a dead compartment must leave nothing behind in the
   kernel lock — neither the hold (siblings would deadlock on the next
   main-loop acquisition, the failure Scenario 2 is built around) nor
   queued continuations (they would run code of a torn-down cVM). Purge
   the queue first so a self-waiting owner cannot be re-granted. *)
let force_release t ~owner =
  t.queue <- List.filter (fun w -> not (String.equal w.name owner)) t.queue;
  match t.owner with
  | Some o when String.equal o owner ->
    release t;
    true
  | Some _ | None -> false
