type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

let state_to_string = function
  | Closed -> "CLOSED"
  | Listen -> "LISTEN"
  | Syn_sent -> "SYN_SENT"
  | Syn_received -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Closing -> "CLOSING"
  | Last_ack -> "LAST_ACK"
  | Time_wait -> "TIME_WAIT"

type event =
  | Connected
  | Data_readable
  | Writable
  | Peer_closed
  | Conn_refused
  | Conn_reset
  | Closed_done

(* Notable protocol happenings reported up to the owning stack, which
   mirrors them into its per-host metric counters; the TCP machinery
   itself stays registry-agnostic. [Rx_drop] carries the typed reason a
   received segment (or part of it) was discarded, so the stack can
   attribute the drop to the in-flight flow trace. *)
type stat =
  | Retransmit
  | Delayed_ack
  | Window_stall
  | Rx_drop of Dsim.Flowtrace.reason

(* Where an outgoing segment's payload bytes live. [Payload_ring] points
   straight into the send buffer, so the emitter can blit the data into
   the frame under construction without an intermediate copy. *)
type payload =
  | Payload_none
  | Payload_bytes of bytes
  | Payload_ring of { ring : Ring_buf.t; off : int; len : int }

let payload_len = function
  | Payload_none -> 0
  | Payload_bytes b -> Bytes.length b
  | Payload_ring { len; _ } -> len

let payload_blit p dst ~dst_off =
  match p with
  | Payload_none -> ()
  | Payload_bytes b -> Bytes.blit b 0 dst dst_off (Bytes.length b)
  | Payload_ring { ring; off; len } -> Ring_buf.blit_to ring ~off ~len ~dst ~dst_off

let payload_to_bytes = function
  | Payload_none -> Bytes.empty
  | Payload_bytes b -> b
  | Payload_ring { ring; off; len } -> Ring_buf.peek ring ~off ~len

type ctx = {
  now : unit -> Dsim.Time.t;
  emit : Tcp_wire.header -> payload -> unit;
  on_event : event -> unit;
  stat : stat -> unit;
}

type config = {
  mss : int;
  snd_buf_size : int;
  rcv_buf_size : int;
  window_scale : int;
  initial_cwnd_segments : int;
  rto_min : Dsim.Time.t;
  rto_max : Dsim.Time.t;
  rto_initial : Dsim.Time.t;
  time_wait_duration : Dsim.Time.t;
  delayed_ack_timeout : Dsim.Time.t;
  ack_every_segments : int;
  max_ooo_segments : int;
}

let default_config =
  {
    mss = 1448;
    snd_buf_size = 256 * 1024;
    rcv_buf_size = 256 * 1024;
    window_scale = 4;
    initial_cwnd_segments = 10;
    rto_min = Dsim.Time.ms 1;
    rto_max = Dsim.Time.sec 4;
    rto_initial = Dsim.Time.ms 10;
    time_wait_duration = Dsim.Time.ms 50;
    delayed_ack_timeout = Dsim.Time.us 500;
    ack_every_segments = 2;
    max_ooo_segments = 64;
  }

type t = {
  config : config;
  local_ip : Ipv4_addr.t;
  mutable local_port : int;
  mutable remote_ip : Ipv4_addr.t;
  mutable remote_port : int;
  mutable state : state;
  mutable iss : Tcp_seq.t;
  mutable snd_una : Tcp_seq.t;
  mutable snd_nxt : Tcp_seq.t;
  mutable snd_max : Tcp_seq.t;
  mutable snd_wnd : int;
  snd_buf : Ring_buf.t;
  mutable snd_buf_seq : Tcp_seq.t;
  mutable fin_queued : bool;
  mutable fin_sent : bool;
  mutable irs : Tcp_seq.t;
  mutable rcv_nxt : Tcp_seq.t;
  rcv_buf : Ring_buf.t;
  mutable ooo_queue : (Tcp_seq.t * bytes) list;
  mutable fin_received : bool;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable dup_acks : int;
  mutable recover : Tcp_seq.t;
  mutable in_fast_recovery : bool;
  mutable srtt_ns : float;
  mutable rttvar_ns : float;
  mutable rto : Dsim.Time.t;
  mutable rtx_deadline : Dsim.Time.t option;
  mutable rtx_backoff : int;
  mutable segs_since_ack : int;
  mutable ack_deadline : Dsim.Time.t option;
  mutable need_ack_now : bool;
  mutable ts_recent : int;
  mutable mss : int;
  mutable snd_wscale : int;
  mutable rcv_wscale : int;
  mutable time_wait_deadline : Dsim.Time.t option;
  mutable retransmissions : int;
  mutable segments_in : int;
  mutable segments_out : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable tx_traces : (Tcp_seq.t * int) list;
}

let create ?(config = default_config) ~local_ip ~local_port () =
  {
    config;
    local_ip;
    local_port;
    remote_ip = Ipv4_addr.any;
    remote_port = 0;
    state = Closed;
    iss = 0;
    snd_una = 0;
    snd_nxt = 0;
    snd_max = 0;
    snd_wnd = 0;
    snd_buf = Ring_buf.create ~capacity:config.snd_buf_size;
    snd_buf_seq = 0;
    fin_queued = false;
    fin_sent = false;
    irs = 0;
    rcv_nxt = 0;
    rcv_buf = Ring_buf.create ~capacity:config.rcv_buf_size;
    ooo_queue = [];
    fin_received = false;
    cwnd = config.initial_cwnd_segments * config.mss;
    ssthresh = max_int / 2;
    dup_acks = 0;
    recover = 0;
    in_fast_recovery = false;
    srtt_ns = 0.;
    rttvar_ns = 0.;
    rto = config.rto_initial;
    rtx_deadline = None;
    rtx_backoff = 0;
    segs_since_ack = 0;
    ack_deadline = None;
    need_ack_now = false;
    ts_recent = 0;
    mss = config.mss;
    snd_wscale = 0;
    rcv_wscale = 0;
    time_wait_deadline = None;
    retransmissions = 0;
    segments_in = 0;
    segments_out = 0;
    bytes_in = 0;
    bytes_out = 0;
    tx_traces = [];
  }

(* Retransmit lineage: remember the trace id of the last few transmitted
   data segments, keyed by starting sequence, so a retransmission links
   back to the original transmission's trace. Bounded; stale entries
   fall off the tail. *)
let tx_trace_limit = 64

let tx_trace_remember t seq trace_id =
  let rec keep n = function
    | [] -> []
    | _ when n = 0 -> []
    | ((s, _) as hd) :: rest ->
      if s = seq then keep n rest else hd :: keep (n - 1) rest
  in
  t.tx_traces <- (seq, trace_id) :: keep (tx_trace_limit - 1) t.tx_traces

let tx_trace_find t seq = List.assoc_opt seq t.tx_traces

let ts_now ctx =
  Int64.to_int (Int64.rem (Int64.div (Dsim.Time.to_ns (ctx.now ())) 1000L) 0x100000000L)

let flight_size t = Tcp_seq.sub t.snd_nxt t.snd_una

let send_window t =
  let w = min t.cwnd t.snd_wnd - flight_size t in
  max w 0

(* Receive window to advertise, in bytes (the wire encoding shifts it
   right by [rcv_wscale]). *)
let rcv_window t =
  min (Ring_buf.free_space t.rcv_buf) (0xffff lsl t.rcv_wscale)

(* The 16-bit value to place in an outgoing non-SYN header. *)
let rcv_window_field t = rcv_window t lsr t.rcv_wscale
let readable_bytes t = Ring_buf.length t.rcv_buf
let writable_space t = Ring_buf.free_space t.snd_buf

let open_active t ctx ~remote_ip ~remote_port ~iss =
  t.remote_ip <- remote_ip;
  t.remote_port <- remote_port;
  t.iss <- iss;
  t.snd_una <- iss;
  t.snd_nxt <- Tcp_seq.add iss 1;
  t.snd_max <- t.snd_nxt;
  t.snd_buf_seq <- Tcp_seq.add iss 1;
  t.state <- Syn_sent;
  let header =
    {
      Tcp_wire.src_port = t.local_port;
      dst_port = remote_port;
      seq = iss;
      ack = 0;
      flags = Tcp_wire.flag ~syn:true ();
      window = rcv_window t;
      options =
        [ Tcp_wire.Mss t.config.mss;
          Tcp_wire.Wscale t.config.window_scale;
          Tcp_wire.Timestamps { tsval = ts_now ctx; tsecr = 0 } ];
    }
  in
  t.segments_out <- t.segments_out + 1;
  t.rtx_deadline <- Some (Dsim.Time.add (ctx.now ()) t.rto);
  ctx.emit header Payload_none

let open_passive t = t.state <- Listen

let enter_time_wait t ctx =
  t.state <- Time_wait;
  t.rtx_deadline <- None;
  t.time_wait_deadline <- Some (Dsim.Time.add (ctx.now ()) t.config.time_wait_duration)

let to_closed t ctx =
  t.state <- Closed;
  t.rtx_deadline <- None;
  t.ack_deadline <- None;
  t.time_wait_deadline <- None;
  ctx.on_event Closed_done

let pp_state fmt s = Format.pp_print_string fmt (state_to_string s)

let pp fmt t =
  Format.fprintf fmt
    "%a:%d <-> %a:%d %a una=%a nxt=%a wnd=%d cwnd=%d flight=%d rcvq=%d sndq=%d"
    Ipv4_addr.pp t.local_ip t.local_port Ipv4_addr.pp t.remote_ip t.remote_port
    pp_state t.state Tcp_seq.pp t.snd_una Tcp_seq.pp t.snd_nxt t.snd_wnd t.cwnd
    (flight_size t) (Ring_buf.length t.rcv_buf) (Ring_buf.length t.snd_buf)
