(** UDP (RFC 768). *)

type header = { src_port : int; dst_port : int; length : int }

val header_len : int
(** 8 bytes. *)

val build :
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> src_port:int -> dst_port:int ->
  payload:bytes -> bytes
(** Datagram with checksum over the pseudo-header. *)

val write_header :
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> src_port:int -> dst_port:int ->
  bytes -> off:int -> payload_len:int -> unit
(** In-place variant: the payload must already sit at
    [off + header_len]; writes the header and checksum where they lie. *)

val parse :
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> bytes -> off:int -> len:int ->
  (header * int, string) result
(** Validates length and (when non-zero) checksum; returns header and
    payload offset. *)
