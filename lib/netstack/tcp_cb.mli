(** TCP control block (the F-Stack/FreeBSD "tcpcb").

    Holds the full per-connection state: RFC 793 state machine
    variables, send/receive ring buffers, congestion control (slow
    start, congestion avoidance, fast retransmit/recovery), Jacobson/
    Karn RTT estimation via the timestamp option, and the delayed-ACK
    machinery. {!Tcp_input}, {!Tcp_output} and {!Tcp_timer} operate on
    this record through a {!ctx} of stack-provided callbacks. *)

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

val state_to_string : state -> string

type event =
  | Connected  (** Handshake complete. *)
  | Data_readable  (** Fresh bytes appended to the receive buffer. *)
  | Writable  (** Send-buffer space became available. *)
  | Peer_closed  (** FIN consumed: EOF after buffered data. *)
  | Conn_refused
  | Conn_reset
  | Closed_done  (** Reached [Closed]; resources can be reclaimed. *)

(** Notable protocol happenings reported up to the owning stack, which
    mirrors them into its per-host metric counters. [Rx_drop] carries
    the typed reason a received segment (or its tail) was discarded, so
    the stack can attribute the drop to the in-flight flow trace. *)
type stat =
  | Retransmit
  | Delayed_ack
  | Window_stall
  | Rx_drop of Dsim.Flowtrace.reason

(** Where an outgoing segment's payload lives. [Payload_ring] points
    into the send buffer so the emitter can blit it straight into the
    frame under construction (zero-copy TX); [Payload_bytes] is the
    owned-buffer fallback. *)
type payload =
  | Payload_none
  | Payload_bytes of bytes
  | Payload_ring of { ring : Ring_buf.t; off : int; len : int }

val payload_len : payload -> int
val payload_blit : payload -> bytes -> dst_off:int -> unit
val payload_to_bytes : payload -> bytes
(** Materialize a copy (tests, non-performance paths). *)

type ctx = {
  now : unit -> Dsim.Time.t;
  emit : Tcp_wire.header -> payload -> unit;
      (** Hand a segment to the IP layer. *)
  on_event : event -> unit;  (** Socket-layer notification. *)
  stat : stat -> unit;  (** Telemetry notification (may be a no-op). *)
}

type config = {
  mss : int;
  snd_buf_size : int;
  rcv_buf_size : int;
  window_scale : int;  (** RFC 7323 shift we offer in our SYN. *)
  initial_cwnd_segments : int;
  rto_min : Dsim.Time.t;
  rto_max : Dsim.Time.t;
  rto_initial : Dsim.Time.t;
  time_wait_duration : Dsim.Time.t;
  delayed_ack_timeout : Dsim.Time.t;
  ack_every_segments : int;
  max_ooo_segments : int;  (** Reassembly-queue bound (segments). *)
}

val default_config : config
(** MSS 1448 (1500-byte MTU with timestamps), 256 KiB buffers, window
    scale 4, IW10, simulation-friendly 1 ms minimum RTO. *)

type t = {
  config : config;
  local_ip : Ipv4_addr.t;
  mutable local_port : int;
  mutable remote_ip : Ipv4_addr.t;
  mutable remote_port : int;
  mutable state : state;
  (* send sequence space *)
  mutable iss : Tcp_seq.t;
  mutable snd_una : Tcp_seq.t;
  mutable snd_nxt : Tcp_seq.t;
  mutable snd_max : Tcp_seq.t;
      (** Highest sequence ever sent: [snd_nxt] rolls back on RTO
          (go-back-N), [snd_max] never does — ACK validity is judged
          against it. *)
  mutable snd_wnd : int;
  snd_buf : Ring_buf.t;
  mutable snd_buf_seq : Tcp_seq.t;
  mutable fin_queued : bool;
  mutable fin_sent : bool;
  (* receive sequence space *)
  mutable irs : Tcp_seq.t;
  mutable rcv_nxt : Tcp_seq.t;
  rcv_buf : Ring_buf.t;
  mutable ooo_queue : (Tcp_seq.t * bytes) list;
      (** Out-of-order segments ahead of [rcv_nxt], sorted by sequence,
          bounded by [config.max_ooo_segments] (reassembly queue). *)
  mutable fin_received : bool;
  (* congestion control *)
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable dup_acks : int;
  mutable recover : Tcp_seq.t;
  mutable in_fast_recovery : bool;
  (* RTT estimation *)
  mutable srtt_ns : float;
  mutable rttvar_ns : float;
  mutable rto : Dsim.Time.t;
  mutable rtx_deadline : Dsim.Time.t option;
  mutable rtx_backoff : int;
  (* ACK generation *)
  mutable segs_since_ack : int;
  mutable ack_deadline : Dsim.Time.t option;
  mutable need_ack_now : bool;
  (* timestamps option state *)
  mutable ts_recent : int;
  mutable mss : int;  (** Effective MSS after option negotiation. *)
  mutable snd_wscale : int;  (** Peer's shift (applies to incoming windows). *)
  mutable rcv_wscale : int;  (** Our shift, 0 unless both sides offered. *)
  mutable time_wait_deadline : Dsim.Time.t option;
  (* counters *)
  mutable retransmissions : int;
  mutable segments_in : int;
  mutable segments_out : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable tx_traces : (Tcp_seq.t * int) list;
      (** Flow-trace ids of recently transmitted data segments, keyed by
          starting sequence (retransmit lineage; bounded). *)
}

val create :
  ?config:config -> local_ip:Ipv4_addr.t -> local_port:int -> unit -> t

val open_active :
  t -> ctx -> remote_ip:Ipv4_addr.t -> remote_port:int -> iss:Tcp_seq.t -> unit
(** Send the SYN and enter [Syn_sent]. *)

val open_passive : t -> unit
(** Enter [Listen]. *)

val flight_size : t -> int
(** Bytes in flight: [snd_nxt - snd_una]. *)

val send_window : t -> int
(** [min cwnd snd_wnd - flight], clamped at 0. *)

val rcv_window : t -> int
(** Receive window to advertise, in bytes. *)

val rcv_window_field : t -> int
(** The (scaled-down) 16-bit value for a non-SYN header. *)

val readable_bytes : t -> int
val writable_space : t -> int

val ts_now : ctx -> int
(** Timestamp clock value (microseconds, 32-bit wrap). *)

val tx_trace_remember : t -> Tcp_seq.t -> int -> unit
(** Record the flow-trace id of a transmitted data segment. *)

val tx_trace_find : t -> Tcp_seq.t -> int option
(** Trace id of the original transmission starting at this sequence. *)

val enter_time_wait : t -> ctx -> unit
val to_closed : t -> ctx -> unit
(** Transition to [Closed] and fire [Closed_done]. *)

val pp_state : Format.formatter -> state -> unit
val pp : Format.formatter -> t -> unit
