type events = int

let epollin = 0x001
let epollout = 0x004
let epollerr = 0x008
let epollhup = 0x010
let has set flag = set land flag <> 0

type t = {
  interests : (int, events) Hashtbl.t;
  mutable rotation : int;  (* fairness cursor for wait *)
  mutable cache : (int * events) array option;
      (* sorted interest snapshot reused across waits; None after any ctl *)
}

let create () = { interests = Hashtbl.create 16; rotation = 0; cache = None }

let ctl_add t ~fd ev =
  if Hashtbl.mem t.interests fd then Error Errno.EINVAL
  else begin
    Hashtbl.replace t.interests fd ev;
    t.cache <- None;
    Ok ()
  end

let ctl_mod t ~fd ev =
  if not (Hashtbl.mem t.interests fd) then Error Errno.EINVAL
  else begin
    Hashtbl.replace t.interests fd ev;
    t.cache <- None;
    Ok ()
  end

let ctl_del t ~fd =
  if not (Hashtbl.mem t.interests fd) then Error Errno.EINVAL
  else begin
    Hashtbl.remove t.interests fd;
    t.cache <- None;
    Ok ()
  end

let forget t ~fd =
  if Hashtbl.mem t.interests fd then begin
    Hashtbl.remove t.interests fd;
    t.cache <- None
  end

let interest t ~fd = Hashtbl.find_opt t.interests fd

let registered t =
  Hashtbl.fold (fun fd ev acc -> (fd, ev) :: acc) t.interests []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot t =
  match t.cache with
  | Some arr -> arr
  | None ->
      let arr = Array.of_list (registered t) in
      t.cache <- Some arr;
      arr

let wait t ~readiness ~max =
  let arr = snapshot t in
  let n = Array.length arr in
  if n = 0 || max <= 0 then []
  else begin
    (* Rotate the scan start so a hot low-numbered fd cannot starve the
       rest when [max] truncates the result. *)
    let start = t.rotation mod n in
    t.rotation <- t.rotation + 1;
    let out = ref [] and count = ref 0 in
    for i = 0 to n - 1 do
      if !count < max then begin
        let fd, want = arr.((start + i) mod n) in
        let ready = readiness fd in
        let reported = ready land (want lor epollerr lor epollhup) in
        if reported <> 0 then begin
          out := (fd, reported) :: !out;
          incr count
        end
      end
    done;
    List.rev !out
  end

let pp_events fmt ev =
  let names =
    List.filter_map
      (fun (f, n) -> if has ev f then Some n else None)
      [ (epollin, "IN"); (epollout, "OUT"); (epollerr, "ERR"); (epollhup, "HUP") ]
  in
  Format.pp_print_string fmt (String.concat "|" names)
