(** The F-Stack instance: one TCP/IP stack bound to one DPDK port.

    Mirrors F-Stack's architecture: after initialisation, a polling
    main loop (i) drains the DPDK RX ring and feeds frames through
    ARP/IPv4/ICMP/UDP/TCP input, (ii) runs the TCP timers and flushes
    pending output, and (iii) invokes a user-supplied hook — the
    application's loop function, which is where every ff_* call happens
    in Scenario 1 and Baseline.

    The loop can be self-driven ({!start}, which reschedules itself on
    the simulation engine and accounts its CPU cost) or externally
    driven ({!loop_once}) so the Scenario 2 harness can wrap each
    iteration in the Intravisor mutex. *)

type config = {
  ip : Ipv4_addr.t;
  prefix : int;  (** Subnet prefix length. *)
  gateway : Ipv4_addr.t option;
  mtu : int;
  tcp : Tcp_cb.config;
  burst : int;  (** Max frames per RX poll. *)
  loop_gap : Dsim.Time.t;  (** Pause between busy loop iterations. *)
  idle_gap_max : Dsim.Time.t;
      (** Idle polls back off exponentially up to this, so quiet stacks
          do not flood the event queue. *)
  loop_base_ns : float;  (** Fixed CPU cost of a non-empty iteration. *)
  per_packet_ns : float;  (** CPU cost per frame processed. *)
  rng_seed : int64;
  max_fds : int;  (** Socket-table capacity (fd space). *)
}

val default_config : ip:Ipv4_addr.t -> config
(** /24 subnet, no gateway, MTU 1500, calibrated loop costs,
    1024 fds. *)

type t

val create :
  Dsim.Engine.t -> Cheri.Tagged_memory.t -> Dpdk.Eth_dev.t -> config -> t

val engine : t -> Dsim.Engine.t
val ip : t -> Ipv4_addr.t
val mac : t -> Nic.Mac_addr.t

val queue : t -> int
(** The NIC RSS queue this stack's loop polls — fixed by the ethdev
    handed to {!create}; one stack loop per queue is the multi-queue
    deployment shape. *)

val config : t -> config
val now : t -> Dsim.Time.t

(** {1 Main loop} *)

val set_hook : t -> (t -> unit) option -> unit
(** Install the application loop function (run inside each iteration,
    after packet processing — the F-Stack [loop] callback). *)

val loop_once : t -> float
(** One poll iteration (including the hook); returns the CPU
    nanoseconds it consumed (the Scenario 2 mutex hold time). *)

val start : ?hook:(t -> unit) -> t -> unit
(** Self-driving loop: each iteration is an engine event; the next one
    fires after the iteration's CPU cost plus the (possibly backed-off)
    gap. [hook], when given, replaces any hook set via {!set_hook}. *)

val stop : t -> unit
val loops : t -> int
(** Iterations executed. *)

(** {1 Socket operations (capability-free core)}

    The [ff_*] veneer in {!Ff_api} adds the capability checks; these
    take plain OCaml buffers. All are non-blocking. *)

val socket_stream : t -> (int, Errno.t) result
val bind : t -> int -> port:int -> (unit, Errno.t) result
val listen : t -> int -> backlog:int -> (unit, Errno.t) result

val accept : t -> int -> (int * Ipv4_addr.t * int, Errno.t) result
(** [(fd, peer_ip, peer_port)]; [EAGAIN] when nothing is pending. *)

val connect : t -> int -> ip:Ipv4_addr.t -> port:int -> (unit, Errno.t) result
(** Initiates the handshake; [Error EINPROGRESS] is the non-blocking
    success. Completion is visible as EPOLLOUT. *)

val read : t -> int -> buf:bytes -> off:int -> len:int -> (int, Errno.t) result
(** [Ok 0] is EOF. *)

val write : t -> int -> buf:bytes -> off:int -> len:int -> (int, Errno.t) result
(** Short writes on a full send buffer; [EAGAIN] when full. *)

val close : t -> int -> (unit, Errno.t) result

val epoll_create : t -> (int, Errno.t) result
val epoll_ctl :
  t -> epfd:int -> op:[ `Add | `Mod | `Del ] -> fd:int -> Epoll.events ->
  (unit, Errno.t) result
val epoll_wait : t -> epfd:int -> max:int -> ((int * Epoll.events) list, Errno.t) result

val udp_socket : t -> (int, Errno.t) result
val udp_bind : t -> int -> port:int -> (unit, Errno.t) result
val udp_sendto :
  t -> int -> ip:Ipv4_addr.t -> port:int -> buf:bytes -> (unit, Errno.t) result
val udp_recvfrom : t -> int -> ((Ipv4_addr.t * int * bytes) option, Errno.t) result

val ping :
  t -> ip:Ipv4_addr.t -> ident:int -> seq:int -> payload:bytes -> unit
(** Fire an ICMP echo request (quickstart/liveness). Replies are
    recorded; see {!pings_received}. *)

val pings_received : t -> (int * int) list
(** (ident, seq) of echo replies received, newest first. *)

(** {1 Diagnostics} *)

type counters = {
  mutable rx_frames : int;
  mutable tx_frames : int;
  mutable rx_dropped : int;  (** Parse errors, no-listener TCP, etc. *)
  mutable tx_no_mbuf : int;
  mutable rst_sent : int;
  mutable arp_requests : int;
  mutable arp_failures : int;
      (** TX packets dropped because ARP resolution exhausted its retry
          budget (typed [Ip_out]/[Arp_unresolved] in the drop table). *)
}

val counters : t -> counters
val live_sockets : t -> int
val tcp_sock_of_fd : t -> int -> Socket.tcp_sock option
(** For tests and the measurement harness. *)

val flush_fd : t -> int -> unit
(** Force TCP output for one socket (used after external buffer pokes). *)

val set_capture : t -> Capture.t option -> unit
(** Attach/detach a packet capture; every frame sent or received by this
    stack is recorded while attached. *)

val capture : t -> Capture.t option
