open Tcp_cb

let base_options cb ctx =
  ignore cb;
  [ Tcp_wire.Timestamps { tsval = ts_now ctx; tsecr = cb.ts_recent } ]

let make_header cb ctx ~seq ~flags =
  {
    Tcp_wire.src_port = cb.local_port;
    dst_port = cb.remote_port;
    seq;
    ack = cb.rcv_nxt;
    flags;
    window = rcv_window_field cb;
    options = base_options cb ctx;
  }

let note_segment cb ~payload_len =
  cb.segments_out <- cb.segments_out + 1;
  cb.bytes_out <- cb.bytes_out + payload_len

let clear_ack_state cb =
  cb.need_ack_now <- false;
  cb.segs_since_ack <- 0;
  cb.ack_deadline <- None

let arm_rtx cb ctx =
  if cb.rtx_deadline = None then
    cb.rtx_deadline <- Some (Dsim.Time.add (ctx.now ()) cb.rto)

(* Bytes of [snd_buf] already streamed out (excludes the FIN's sequence
   slot when it has been sent). *)
let sent_bytes cb =
  let n = Tcp_seq.sub cb.snd_nxt cb.snd_buf_seq in
  if cb.fin_sent then n - 1 else n

let can_send_data cb =
  match cb.state with
  | Established | Close_wait -> true
  | Fin_wait_1 | Closing | Last_ack ->
    (* Data queued before close still drains. *)
    true
  | Closed | Listen | Syn_sent | Syn_received | Fin_wait_2 | Time_wait -> false

let send_ack cb ctx =
  let header = make_header cb ctx ~seq:cb.snd_nxt ~flags:(Tcp_wire.flag ~ack:true ()) in
  note_segment cb ~payload_len:0;
  clear_ack_state cb;
  ctx.emit header Payload_none

let send_syn_ack cb ctx =
  let header =
    {
      Tcp_wire.src_port = cb.local_port;
      dst_port = cb.remote_port;
      seq = cb.iss;
      ack = cb.rcv_nxt;
      flags = Tcp_wire.flag ~syn:true ~ack:true ();
      (* The window in a SYN is never scaled. *)
      window = min (rcv_window cb) 0xffff;
      options =
        Tcp_wire.Mss cb.config.mss
        :: Tcp_wire.Wscale cb.config.window_scale
        :: [ Tcp_wire.Timestamps { tsval = ts_now ctx; tsecr = cb.ts_recent } ];
    }
  in
  note_segment cb ~payload_len:0;
  arm_rtx cb ctx;
  ctx.emit header Payload_none

let send_data_segment cb ctx ~seq ~len ~push =
  let off = Tcp_seq.sub seq cb.snd_buf_seq in
  let flags = Tcp_wire.flag ~ack:true ~psh:push () in
  let header = make_header cb ctx ~seq ~flags in
  note_segment cb ~payload_len:len;
  clear_ack_state cb;
  arm_rtx cb ctx;
  (* No copy here: the emitter blits straight out of the send buffer
     into the frame it is building. *)
  ctx.emit header (Payload_ring { ring = cb.snd_buf; off; len })

let send_fin cb ctx =
  let flags = Tcp_wire.flag ~ack:true ~fin:true () in
  let header = make_header cb ctx ~seq:cb.snd_nxt ~flags in
  note_segment cb ~payload_len:0;
  clear_ack_state cb;
  cb.fin_sent <- true;
  cb.snd_nxt <- Tcp_seq.add cb.snd_nxt 1;
  cb.snd_max <- Tcp_seq.max cb.snd_max cb.snd_nxt;
  arm_rtx cb ctx;
  ctx.emit header Payload_none

let flush cb ctx =
  if can_send_data cb then begin
    (* Data: stream out whatever both windows allow. *)
    let continue = ref true in
    while !continue do
      let window = send_window cb in
      let unsent = Ring_buf.length cb.snd_buf - sent_bytes cb in
      let len = min (min cb.mss unsent) window in
      (* Nagle + sender-side silly-window avoidance: emit a sub-MSS
         segment only when nothing is in flight (so the small piece is
         not delaying anything) or when it is the final data before a
         queued FIN. Keeps the wire full of maximum-size segments under
         streaming load. *)
      let sendable =
        len > 0
        && (len >= cb.mss || flight_size cb = 0
           || (cb.fin_queued && len = unsent))
      in
      if (not sendable) || cb.fin_sent then continue := false
      else begin
        let push = len = unsent in
        send_data_segment cb ctx ~seq:cb.snd_nxt ~len ~push;
        cb.snd_nxt <- Tcp_seq.add cb.snd_nxt len;
        cb.snd_max <- Tcp_seq.max cb.snd_max cb.snd_nxt
      end
    done;
    (* FIN once everything buffered has been put on the wire. *)
    if
      cb.fin_queued && (not cb.fin_sent)
      && sent_bytes cb = Ring_buf.length cb.snd_buf
      && send_window cb > 0
    then send_fin cb ctx;
    (* Zero-window persist: with data pending, no flight and a closed
       peer window, nothing will ever arm the retransmission timer — arm
       it here so Tcp_timer probes. *)
    if
      cb.snd_wnd = 0 && flight_size cb = 0
      && Ring_buf.length cb.snd_buf - sent_bytes cb > 0
    then begin
      ctx.stat Window_stall;
      arm_rtx cb ctx
    end
  end;
  (* Pure ACK when input processing asked for one. *)
  let deadline_due =
    match cb.ack_deadline with
    | Some d -> Dsim.Time.(ctx.now () >= d)
    | None -> false
  in
  let ack_due =
    cb.need_ack_now
    || cb.segs_since_ack >= cb.config.ack_every_segments
    || deadline_due
  in
  if ack_due then
    match cb.state with
    | Closed | Listen | Syn_sent -> ()
    | Syn_received | Established | Fin_wait_1 | Fin_wait_2 | Close_wait
    | Closing | Last_ack | Time_wait ->
      (* An ACK emitted only because the delayed-ack timer expired. *)
      if
        deadline_due && (not cb.need_ack_now)
        && cb.segs_since_ack < cb.config.ack_every_segments
      then ctx.stat Delayed_ack;
      send_ack cb ctx

let retransmit_head cb ctx =
  match cb.state with
  | Syn_sent ->
    let header =
      {
        Tcp_wire.src_port = cb.local_port;
        dst_port = cb.remote_port;
        seq = cb.iss;
        ack = 0;
        flags = Tcp_wire.flag ~syn:true ();
        window = min (rcv_window cb) 0xffff;
        options =
          [ Tcp_wire.Mss cb.config.mss;
            Tcp_wire.Timestamps { tsval = ts_now ctx; tsecr = 0 } ];
      }
    in
    cb.retransmissions <- cb.retransmissions + 1;
    ctx.stat Retransmit;
    note_segment cb ~payload_len:0;
    ctx.emit header Payload_none
  | Syn_received ->
    cb.retransmissions <- cb.retransmissions + 1;
    ctx.stat Retransmit;
    send_syn_ack cb ctx
  | _ ->
    let buffered = Ring_buf.length cb.snd_buf in
    let head_off = Tcp_seq.sub cb.snd_una cb.snd_buf_seq in
    let avail = buffered - head_off in
    let len = min cb.mss avail in
    if len > 0 then begin
      cb.retransmissions <- cb.retransmissions + 1;
      ctx.stat Retransmit;
      send_data_segment cb ctx ~seq:cb.snd_una ~len ~push:(len = avail)
    end
    else if cb.fin_sent && Tcp_seq.lt cb.snd_una cb.snd_nxt then begin
      (* Only the FIN is outstanding. *)
      cb.retransmissions <- cb.retransmissions + 1;
      ctx.stat Retransmit;
      let flags = Tcp_wire.flag ~ack:true ~fin:true () in
      let header = make_header cb ctx ~seq:cb.snd_una ~flags in
      note_segment cb ~payload_len:0;
      ctx.emit header Payload_none
    end

let send_window_probe cb ctx =
  let head_off = Tcp_seq.sub cb.snd_nxt cb.snd_buf_seq in
  if Ring_buf.length cb.snd_buf - head_off > 0 then begin
    send_data_segment cb ctx ~seq:cb.snd_nxt ~len:1 ~push:false;
    cb.snd_nxt <- Tcp_seq.add cb.snd_nxt 1;
    cb.snd_max <- Tcp_seq.max cb.snd_max cb.snd_nxt
  end

let make_rst ~to_header ~payload_len =
  let open Tcp_wire in
  if to_header.flags.rst then None
  else begin
    let flags, seq, ack =
      if to_header.flags.ack then (flag ~rst:true (), to_header.ack, 0)
      else begin
        let consumed =
          payload_len
          + (if to_header.flags.syn then 1 else 0)
          + if to_header.flags.fin then 1 else 0
        in
        ( flag ~rst:true ~ack:true (),
          0,
          Tcp_seq.add to_header.seq consumed )
      end
    in
    Some
      {
        src_port = to_header.dst_port;
        dst_port = to_header.src_port;
        seq;
        ack;
        flags;
        window = 0;
        options = [];
      }
  end
