type ethertype = Ipv4 | Arp | Unknown of int

type header = {
  dst : Nic.Mac_addr.t;
  src : Nic.Mac_addr.t;
  ethertype : ethertype;
}

let header_len = 14

let ethertype_to_int = function
  | Ipv4 -> 0x0800
  | Arp -> 0x0806
  | Unknown v -> v

let ethertype_of_int = function
  | 0x0800 -> Ipv4
  | 0x0806 -> Arp
  | v -> Unknown v

let build_into h buf ~off =
  Bytes.blit_string (Nic.Mac_addr.to_bytes h.dst) 0 buf off 6;
  Bytes.blit_string (Nic.Mac_addr.to_bytes h.src) 0 buf (off + 6) 6;
  let et = ethertype_to_int h.ethertype in
  Bytes.set buf (off + 12) (Char.chr (et lsr 8));
  Bytes.set buf (off + 13) (Char.chr (et land 0xff))

let build h ~payload =
  let frame = Bytes.create (header_len + Bytes.length payload) in
  build_into h frame ~off:0;
  Bytes.blit payload 0 frame header_len (Bytes.length payload);
  frame

let parse_at frame ~off ~len =
  if len < header_len then Error "ethernet: frame too short"
  else begin
    let dst = Nic.Mac_addr.of_bytes_exn (Bytes.sub_string frame off 6) in
    let src = Nic.Mac_addr.of_bytes_exn (Bytes.sub_string frame (off + 6) 6) in
    let et =
      (Char.code (Bytes.get frame (off + 12)) lsl 8)
      lor Char.code (Bytes.get frame (off + 13))
    in
    Ok ({ dst; src; ethertype = ethertype_of_int et }, off + header_len)
  end

let parse frame = parse_at frame ~off:0 ~len:(Bytes.length frame)

let pp_header fmt h =
  let kind =
    match h.ethertype with
    | Ipv4 -> "ipv4"
    | Arp -> "arp"
    | Unknown v -> Printf.sprintf "0x%04x" v
  in
  Format.fprintf fmt "%a -> %a (%s)" Nic.Mac_addr.pp h.src Nic.Mac_addr.pp h.dst kind
