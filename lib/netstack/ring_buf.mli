(** Bounded circular byte buffer.

    Socket send/receive buffers. The send buffer additionally supports
    random-access peeking at an offset from the head, which is how TCP
    retransmission re-reads data between [snd_una] and [snd_nxt] without
    consuming it. *)

type t

val create : capacity:int -> t
val capacity : t -> int
val length : t -> int
val free_space : t -> int
val is_empty : t -> bool

val write : t -> bytes -> off:int -> len:int -> int
(** Append up to [len] bytes; returns how many were accepted (short
    write when full — the EAGAIN path of ff_write). *)

val peek : t -> off:int -> len:int -> bytes
(** Copy [len] bytes starting [off] bytes after the head, without
    consuming. @raise Invalid_argument when the range exceeds {!length}. *)

val blit_to : t -> off:int -> len:int -> dst:bytes -> dst_off:int -> unit
(** Like {!peek} but into a caller buffer (wrap-safe, no allocation) —
    how the zero-copy TX path reads segment payload straight into mbuf
    headroom. @raise Invalid_argument when the range exceeds {!length}. *)

val read_into : t -> dst:bytes -> dst_off:int -> len:int -> int
(** Consume up to [len] bytes from the head into [dst]; returns the
    count actually read. *)

val drop : t -> int -> unit
(** Consume [n] bytes from the head (ACKed data).
    @raise Invalid_argument when [n > length]. *)

val clear : t -> unit
