(** ARP neighbour cache with pending-packet queues and bounded retry.

    While an IP is unresolved, outgoing packets queue here (bounded) and
    flush on the reply. Unanswered requests are retransmitted with a
    capped exponential backoff (doubling from the 100 ms base); after
    [max_attempts] the address goes into a negative cache for
    [negative_lifetime] and the stranded queue is surfaced so the stack
    can drop it with a typed attribution — an unanswered request can no
    longer strand queued TX forever. Entries age out after a
    configurable lifetime, checked lazily on lookup. *)

type t

val create :
  ?entry_lifetime:Dsim.Time.t ->
  ?max_pending_per_ip:int ->
  ?max_attempts:int ->
  ?negative_lifetime:Dsim.Time.t ->
  unit ->
  t

val lookup : t -> now:Dsim.Time.t -> Ipv4_addr.t -> Nic.Mac_addr.t option

val insert : t -> now:Dsim.Time.t -> Ipv4_addr.t -> Nic.Mac_addr.t -> unit
(** Also clears any in-flight resolution state and negative entry. *)

val enqueue_pending : t -> Ipv4_addr.t -> bytes -> bool
(** Queue an IP packet awaiting resolution; [false] (drop) when the
    per-IP queue is full. *)

val take_pending : t -> Ipv4_addr.t -> bytes list
(** Drain the queue for a freshly resolved IP, oldest first. *)

val request_outstanding : t -> now:Dsim.Time.t -> Ipv4_addr.t -> bool
(** True while a resolution is in flight (retries are then driven by
    {!due_retries}); starts one and returns false otherwise. *)

val outstanding : t -> int
(** In-flight resolutions — the fast-path guard for the maintenance
    scan (zero on every iteration of a healthy run). *)

val is_negative : t -> now:Dsim.Time.t -> Ipv4_addr.t -> bool
(** Resolution recently failed: callers should fail fast instead of
    queueing behind a request known to go unanswered. *)

val due_retries : t -> now:Dsim.Time.t -> Ipv4_addr.t list
(** IPs whose retransmit is due; marks each as resent with its next
    backoff. The caller sends the actual requests. *)

val expire_failed : t -> now:Dsim.Time.t -> (Ipv4_addr.t * bytes list) list
(** Resolutions whose final attempt expired unanswered: each enters the
    negative cache and returns its stranded queue for counted drops. *)

val entries : t -> (Ipv4_addr.t * Nic.Mac_addr.t) list
