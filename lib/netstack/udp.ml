type header = { src_port : int; dst_port : int; length : int }

let header_len = 8

let set_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let get_u16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

(* Header at [off], payload already in place at [off + header_len]; the
   in-mbuf TX path uses this after laying the payload down once. *)
let write_header ~src ~dst ~src_port ~dst_port b ~off ~payload_len =
  let len = header_len + payload_len in
  set_u16 b off src_port;
  set_u16 b (off + 2) dst_port;
  set_u16 b (off + 4) len;
  set_u16 b (off + 6) 0;
  let init = Ipv4.pseudo_header_sum ~src ~dst ~protocol:Ipv4.Udp ~len in
  let csum = Checksum.compute ~init b ~off ~len in
  (* RFC 768: a computed zero checksum is transmitted as 0xffff. *)
  set_u16 b (off + 6) (if csum = 0 then 0xffff else csum)

let build ~src ~dst ~src_port ~dst_port ~payload =
  let b = Bytes.create (header_len + Bytes.length payload) in
  Bytes.blit payload 0 b header_len (Bytes.length payload);
  write_header ~src ~dst ~src_port ~dst_port b ~off:0
    ~payload_len:(Bytes.length payload);
  b

let parse ~src ~dst b ~off ~len =
  if len < header_len then Error "udp: truncated"
  else begin
    let length = get_u16 b (off + 4) in
    if length < header_len || length > len then Error "udp: bad length"
    else begin
      let csum = get_u16 b (off + 6) in
      let ok =
        csum = 0
        ||
        let init = Ipv4.pseudo_header_sum ~src ~dst ~protocol:Ipv4.Udp ~len:length in
        Checksum.compute ~init b ~off ~len:length = 0
      in
      if not ok then Error "udp: bad checksum"
      else
        Ok
          ( { src_port = get_u16 b off; dst_port = get_u16 b (off + 2); length },
            off + header_len )
    end
  end
