type protocol = Icmp | Tcp | Udp | Unknown_proto of int

type header = {
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  protocol : protocol;
  ttl : int;
  ident : int;
  total_len : int;
}

let header_len = 20

let protocol_to_int = function
  | Icmp -> 1
  | Tcp -> 6
  | Udp -> 17
  | Unknown_proto v -> v

let protocol_of_int = function
  | 1 -> Icmp
  | 6 -> Tcp
  | 17 -> Udp
  | v -> Unknown_proto v

let set_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let get_u16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let set_ip b off ip =
  let v = Ipv4_addr.to_int32 ip in
  for i = 0 to 3 do
    Bytes.set b (off + i)
      (Char.chr (Int32.to_int (Int32.shift_right_logical v ((3 - i) * 8)) land 0xff))
  done

let get_ip b off =
  let v = ref 0l in
  for i = 0 to 3 do
    v := Int32.logor (Int32.shift_left !v 8) (Int32.of_int (Char.code (Bytes.get b (off + i))))
  done;
  Ipv4_addr.of_int32 !v

let build_into h b ~off =
  Bytes.set b off '\x45' (* version 4, ihl 5 *);
  Bytes.set b (off + 1) '\000' (* dscp/ecn *);
  set_u16 b (off + 2) h.total_len;
  set_u16 b (off + 4) h.ident;
  set_u16 b (off + 6) 0x4000 (* DF, fragment offset 0 *);
  Bytes.set b (off + 8) (Char.chr (h.ttl land 0xff));
  Bytes.set b (off + 9) (Char.chr (protocol_to_int h.protocol land 0xff));
  set_u16 b (off + 10) 0 (* checksum placeholder *);
  set_ip b (off + 12) h.src;
  set_ip b (off + 16) h.dst;
  set_u16 b (off + 10) (Checksum.compute b ~off ~len:header_len)

let build h ~payload =
  let b = Bytes.create (header_len + Bytes.length payload) in
  build_into h b ~off:0;
  Bytes.blit payload 0 b header_len (Bytes.length payload);
  b

let parse b ~off ~len =
  if len < header_len then Error "ipv4: truncated header"
  else begin
    let vihl = Char.code (Bytes.get b off) in
    if vihl lsr 4 <> 4 then Error "ipv4: not version 4"
    else begin
      let ihl = (vihl land 0xf) * 4 in
      if ihl < header_len then Error "ipv4: bad ihl"
      else if len < ihl then Error "ipv4: truncated options"
      else if not (Checksum.valid b ~off ~len:ihl) then Error "ipv4: bad checksum"
      else begin
        let total_len = get_u16 b (off + 2) in
        (* More Fragments set or a non-zero fragment offset: this stack
           does no reassembly, and treating a fragment as a whole
           datagram would hand the upper parser payload bytes that are
           not where its header claims. Typed reject instead. *)
        let frag_field = get_u16 b (off + 6) in
        if frag_field land 0x3fff <> 0 then Error "ipv4: fragment unsupported"
        else if total_len < ihl || total_len > len then
          Error "ipv4: bad total length"
        else
          Ok
            ( {
                src = get_ip b (off + 12);
                dst = get_ip b (off + 16);
                protocol = protocol_of_int (Char.code (Bytes.get b (off + 9)));
                ttl = Char.code (Bytes.get b (off + 8));
                ident = get_u16 b (off + 4);
                total_len;
              },
              off + ihl )
      end
    end
  end

(* Allocation-free: the 12-byte pseudo-header's one's-complement sum is
   just the 16-bit halves of both addresses plus protocol and length,
   so build the running sum arithmetically instead of staging bytes. *)
let pseudo_header_sum ~src ~dst ~protocol ~len =
  let halves ip =
    let v = Int32.to_int (Ipv4_addr.to_int32 ip) land 0xffffffff in
    (v lsr 16) + (v land 0xffff)
  in
  halves src + halves dst + protocol_to_int protocol + len

let pp_header fmt h =
  let proto =
    match h.protocol with
    | Icmp -> "icmp"
    | Tcp -> "tcp"
    | Udp -> "udp"
    | Unknown_proto v -> string_of_int v
  in
  Format.fprintf fmt "%a > %a %s len=%d ttl=%d" Ipv4_addr.pp h.src Ipv4_addr.pp
    h.dst proto h.total_len h.ttl
