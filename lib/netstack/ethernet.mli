(** Ethernet II framing. *)

type ethertype = Ipv4 | Arp | Unknown of int

type header = {
  dst : Nic.Mac_addr.t;
  src : Nic.Mac_addr.t;
  ethertype : ethertype;
}

val header_len : int
(** 14 bytes. *)

val ethertype_to_int : ethertype -> int
val ethertype_of_int : int -> ethertype

val build : header -> payload:bytes -> bytes
(** Allocate and fill a full frame. *)

val build_into : header -> bytes -> off:int -> unit
(** Write the 14-byte header at [off] — e.g. into mbuf headroom just
    prepended ahead of an IP packet already in place. *)

val parse : bytes -> (header * int, string) result
(** Returns the header and the payload offset. *)

val parse_at : bytes -> off:int -> len:int -> (header * int, string) result
(** Parse a frame in place at [off]; the returned payload offset is
    absolute (relative to [b]'s start, like [off]). *)

val pp_header : Format.formatter -> header -> unit
