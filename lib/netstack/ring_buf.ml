type t = {
  data : bytes;
  mutable head : int;  (* index of the first valid byte *)
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring_buf.create: capacity must be positive";
  { data = Bytes.create capacity; head = 0; len = 0 }

let capacity t = Bytes.length t.data
let length t = t.len
let free_space t = capacity t - t.len
let is_empty t = t.len = 0

let write t src ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Ring_buf.write: bad source range";
  let n = min len (free_space t) in
  let cap = capacity t in
  let tail = (t.head + t.len) mod cap in
  let first = min n (cap - tail) in
  Bytes.blit src off t.data tail first;
  if n > first then Bytes.blit src (off + first) t.data 0 (n - first);
  t.len <- t.len + n;
  n

let blit_to t ~off ~len ~dst ~dst_off =
  if off < 0 || len < 0 || off + len > t.len then
    invalid_arg "Ring_buf.blit_to: range exceeds buffered data";
  let cap = capacity t in
  let start = (t.head + off) mod cap in
  let first = min len (cap - start) in
  Bytes.blit t.data start dst dst_off first;
  if len > first then Bytes.blit t.data 0 dst (dst_off + first) (len - first)

let peek t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then
    invalid_arg "Ring_buf.peek: range exceeds buffered data";
  let dst = Bytes.create len in
  blit_to t ~off ~len ~dst ~dst_off:0;
  dst

let drop t n =
  if n < 0 || n > t.len then invalid_arg "Ring_buf.drop: beyond buffered data";
  t.head <- (t.head + n) mod capacity t;
  t.len <- t.len - n

let read_into t ~dst ~dst_off ~len =
  let n = min len t.len in
  if n > 0 then begin
    blit_to t ~off:0 ~len:n ~dst ~dst_off;
    drop t n
  end;
  n

let clear t =
  t.head <- 0;
  t.len <- 0
