(** TCP segment arrival processing (RFC 793 event "SEGMENT ARRIVES",
    plus RFC 5681 congestion reactions and RFC 7323 timestamp echo).

    [Listen] is handled at the stack layer — a SYN routed to a listener
    spawns a fresh control block via {!accept_syn} — so [process] covers
    every synchronised state plus [Syn_sent]. *)

val process :
  Tcp_cb.t -> Tcp_cb.ctx -> Tcp_wire.header -> buf:bytes -> off:int ->
  len:int -> unit
(** Mutates the control block, fires events on the ctx, and may emit
    immediate segments (dup ACKs, fast retransmits, handshake replies).
    The regular data/ACK output happens in the caller's subsequent
    {!Tcp_output.flush}. The payload is the region [\[off, off+len)] of
    [buf] — on the live RX path this aliases the borrowed frame, so
    [process] copies anything that must outlive the call (reassembly
    queue); in-order data goes straight into the receive ring. *)

val accept_syn :
  Tcp_cb.t -> Tcp_cb.ctx -> Tcp_wire.header -> iss:Tcp_seq.t -> unit
(** Initialise a fresh control block from a SYN aimed at a listener and
    send the SYN-ACK ([Syn_received]). *)
