(** RFC 1071 Internet checksum. *)

val ones_complement_sum : ?init:int -> bytes -> off:int -> len:int -> int
(** 16-bit one's-complement running sum (not yet complemented); chain
    calls via [init] to cover pseudo-headers. *)

val finish : int -> int
(** Fold carries and complement; the value to store in a header. *)

val compute : ?init:int -> bytes -> off:int -> len:int -> int
(** [finish (ones_complement_sum ...)]. *)

val valid : ?init:int -> bytes -> off:int -> len:int -> bool
(** True when the region (with its embedded checksum field) sums to
    zero. *)

(** {1 Slice variants}

    Operate in place on a borrow window ({!Dsim.Slice.t}); [off] is
    slice-relative. One bounds check per call (raising the slice's
    fault, i.e. [Cheri.Fault] for mbuf borrows), then a copy-free sum
    over the backing bytes. *)

val slice_sum : ?init:int -> Dsim.Slice.t -> off:int -> len:int -> int
val compute_slice : ?init:int -> Dsim.Slice.t -> off:int -> len:int -> int
val valid_slice : ?init:int -> Dsim.Slice.t -> off:int -> len:int -> bool
