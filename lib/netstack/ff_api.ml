type t = { stack : Stack.t; mem : Cheri.Tagged_memory.t }

let attach stack mem = { stack; mem }
let stack t = t.stack

(* Capability violations at the F-Stack API boundary still raise (the
   compartment dies, as on hardware), but the flow-trace drop table
   records that the packet's journey ended here and why. *)
let guard_cap f =
  try f ()
  with Cheri.Fault.Capability_fault _ as e ->
    Dsim.Flowtrace.(drop default Ff_api Capability_fault);
    raise e

let ff_socket t = Stack.socket_stream t.stack
let ff_bind t fd ~port = Stack.bind t.stack fd ~port
let ff_listen t fd ~backlog = Stack.listen t.stack fd ~backlog
let ff_accept t fd = Stack.accept t.stack fd
let ff_connect t fd ~ip ~port = Stack.connect t.stack fd ~ip ~port

let ff_write t fd ~buf ~nbytes =
  if nbytes < 0 then Error Errno.EINVAL
  else begin
    (* The capability check happens before the stack sees anything: an
       overlong [nbytes] traps here, it cannot leak adjacent memory
       into the socket. One check covers the whole write — the send
       buffer then copies straight from the checked window, with no
       staging allocation on the hot path. *)
    let addr = Cheri.Capability.cursor buf in
    let s =
      guard_cap (fun () ->
          Cheri.Tagged_memory.borrow t.mem ~cap:buf ~addr ~len:nbytes)
    in
    Stack.write t.stack fd ~buf:(Dsim.Slice.base s)
      ~off:(Dsim.Slice.base_off s) ~len:nbytes
  end

let ff_read t fd ~buf ~nbytes =
  if nbytes < 0 then Error Errno.EINVAL
  else begin
    let addr = Cheri.Capability.cursor buf in
    (* Probe the store right away so a rogue buffer faults even when no
       data is pending. *)
    guard_cap (fun () ->
        Cheri.Capability.check_access buf Cheri.Capability.Store ~addr
          ~len:nbytes);
    Cheri.Provenance.record_exercise buf ~address:addr;
    let staging = Bytes.create nbytes in
    match Stack.read t.stack fd ~buf:staging ~off:0 ~len:nbytes with
    | Error _ as e -> e
    | Ok n ->
      if n > 0 then
        Cheri.Tagged_memory.blit_in t.mem ~cap:buf ~addr ~src:staging ~src_off:0
          ~len:n;
      Ok n
  end

let ff_close t fd = Stack.close t.stack fd
let ff_epoll_create t = Stack.epoll_create t.stack
let ff_epoll_ctl t ~epfd ~op ~fd events = Stack.epoll_ctl t.stack ~epfd ~op ~fd events
let ff_epoll_wait t ~epfd ~max = Stack.epoll_wait t.stack ~epfd ~max

let ff_sendto t fd ~ip ~port ~buf ~nbytes =
  if nbytes < 0 then Error Errno.EINVAL
  else begin
    let addr = Cheri.Capability.cursor buf in
    Cheri.Provenance.record_exercise buf ~address:addr;
    let staging = Bytes.create nbytes in
    guard_cap (fun () ->
        Cheri.Tagged_memory.blit_out t.mem ~cap:buf ~addr ~dst:staging
          ~dst_off:0 ~len:nbytes);
    Stack.udp_sendto t.stack fd ~ip ~port ~buf:staging
  end

let ff_recvfrom t fd ~buf ~nbytes =
  if nbytes < 0 then Error Errno.EINVAL
  else begin
    let addr = Cheri.Capability.cursor buf in
    guard_cap (fun () ->
        Cheri.Capability.check_access buf Cheri.Capability.Store ~addr
          ~len:nbytes);
    Cheri.Provenance.record_exercise buf ~address:addr;
    match Stack.udp_recvfrom t.stack fd with
    | Error _ as e -> e
    | Ok None -> Ok None
    | Ok (Some (src_ip, src_port, data)) ->
      let n = min nbytes (Bytes.length data) in
      if n > 0 then
        Cheri.Tagged_memory.blit_in t.mem ~cap:buf ~addr ~src:data ~src_off:0
          ~len:n;
      Ok (Some (src_ip, src_port, n))
  end
