type config = {
  ip : Ipv4_addr.t;
  prefix : int;
  gateway : Ipv4_addr.t option;
  mtu : int;
  tcp : Tcp_cb.config;
  burst : int;
  loop_gap : Dsim.Time.t;
  idle_gap_max : Dsim.Time.t;
  loop_base_ns : float;
  per_packet_ns : float;
  rng_seed : int64;
  max_fds : int;
}

let default_config ~ip =
  {
    ip;
    prefix = 24;
    gateway = None;
    mtu = 1500;
    tcp = Tcp_cb.default_config;
    burst = 32;
    loop_gap = Dsim.Time.ns 200;
    idle_gap_max = Dsim.Time.us 10;
    loop_base_ns = 2_000.;
    per_packet_ns = 7_200.;
    rng_seed = 0x5eedL;
    max_fds = 1024;
  }

type counters = {
  mutable rx_frames : int;
  mutable tx_frames : int;
  mutable rx_dropped : int;
  mutable tx_no_mbuf : int;
  mutable rst_sent : int;
  mutable arp_requests : int;
  mutable arp_failures : int;
}

type conn_key = int32 * int * int (* remote ip, remote port, local port *)

(* Registry instruments, one set per stack, labelled by host IP.  The
   plain [counters] record above stays authoritative for tests; these
   mirror the interesting events into {!Dsim.Metrics.default}. *)
type stack_metrics = {
  m_rx_frames : Dsim.Metrics.counter;
  m_tx_frames : Dsim.Metrics.counter;
  m_rx_bytes : Dsim.Metrics.counter;
  m_tx_bytes : Dsim.Metrics.counter;
  m_rx_dropped : Dsim.Metrics.counter;
  m_rx_csum_errors : Dsim.Metrics.counter;
  m_arp_failures : Dsim.Metrics.counter;
  m_retransmits : Dsim.Metrics.counter;
  m_delayed_acks : Dsim.Metrics.counter;
  m_window_stalls : Dsim.Metrics.counter;
  m_epoll_wakeups : Dsim.Metrics.counter;
  m_sock_read_bytes : Dsim.Metrics.counter;
  m_sock_write_bytes : Dsim.Metrics.counter;
  m_live_sockets : Dsim.Metrics.gauge;
}

let make_metrics ~ip =
  let reg = Dsim.Metrics.default in
  let labels = [ ("host", Ipv4_addr.to_string ip) ] in
  {
    m_rx_frames =
      Dsim.Metrics.counter reg ~help:"Ethernet frames received." ~labels
        "netstack_rx_frames_total";
    m_tx_frames =
      Dsim.Metrics.counter reg ~help:"Ethernet frames transmitted." ~labels
        "netstack_tx_frames_total";
    m_rx_bytes =
      Dsim.Metrics.counter reg ~help:"Frame bytes received." ~labels
        "netstack_rx_bytes_total";
    m_tx_bytes =
      Dsim.Metrics.counter reg ~help:"Frame bytes transmitted." ~labels
        "netstack_tx_bytes_total";
    m_rx_dropped =
      Dsim.Metrics.counter reg ~help:"Received frames dropped by the stack."
        ~labels "netstack_rx_dropped_total";
    m_rx_csum_errors =
      Dsim.Metrics.counter reg
        ~help:"Received packets dropped for a bad IPv4/TCP/UDP checksum."
        ~labels "netstack_rx_csum_errors_total";
    m_arp_failures =
      Dsim.Metrics.counter reg
        ~help:"Outgoing packets dropped because ARP resolution failed."
        ~labels "netstack_arp_failures_total";
    m_retransmits =
      Dsim.Metrics.counter reg ~help:"TCP segments retransmitted." ~labels
        "tcp_retransmits_total";
    m_delayed_acks =
      Dsim.Metrics.counter reg
        ~help:"Pure ACKs sent because the delayed-ack timer expired." ~labels
        "tcp_delayed_acks_total";
    m_window_stalls =
      Dsim.Metrics.counter reg
        ~help:"Times a sender entered zero-window persist." ~labels
        "tcp_window_stalls_total";
    m_epoll_wakeups =
      Dsim.Metrics.counter reg
        ~help:"epoll_wait calls that returned at least one event." ~labels
        "epoll_wakeups_total";
    m_sock_read_bytes =
      Dsim.Metrics.counter reg ~help:"Bytes handed to applications via read."
        ~labels "netstack_sock_read_bytes_total";
    m_sock_write_bytes =
      Dsim.Metrics.counter reg
        ~help:"Bytes accepted from applications via write." ~labels
        "netstack_sock_write_bytes_total";
    m_live_sockets =
      Dsim.Metrics.gauge reg ~help:"Open socket descriptors." ~labels
        "netstack_live_sockets";
  }

type t = {
  engine : Dsim.Engine.t;
  mem : Cheri.Tagged_memory.t;
  dev : Dpdk.Eth_dev.t;
  config : config;
  mac : Nic.Mac_addr.t;
  table : Socket.table;
  listeners : (int, Socket.tcp_sock) Hashtbl.t;
  conns : (conn_key, Socket.tcp_sock) Hashtbl.t;
  udp_binds : (int, Socket.udp_sock) Hashtbl.t;
  sock_ctx : (int, Tcp_cb.ctx) Hashtbl.t;  (* fd -> its stable ctx *)
  (* Local TCP port -> number of live sockets bound to it, so port
     allocation never rescans the socket table. Passive children share
     their listener's port, hence a refcount rather than a set. *)
  bound_ports : (int, int) Hashtbl.t;
  (* TCP sockets with at least one timer deadline armed: the only
     connections the per-tick service pass must visit. Idle established
     connections cost nothing per loop iteration. *)
  armed : (int, Socket.tcp_sock) Hashtbl.t;
  (* Live epoll instances, so closing an fd tears out stale interest
     registrations without scanning the whole fd table. *)
  epolls : (int, Epoll.t) Hashtbl.t;
  arp : Arp_cache.t;
  rng : Dsim.Rng.t;
  counters : counters;
  metrics : stack_metrics;
  mutable ident : int;
  mutable ephemeral : int;
  mutable loops : int;
  mutable running : bool;
  mutable idle_streak : int;
  mutable ping_replies : (int * int) list;
  mutable hook : (t -> unit) option;
  mutable capture : Capture.t option;
  (* Flow trace of the frame currently being processed by the rx path,
     so drops detected deep inside the TCP machinery (via [stat]) can
     still be attributed to the sampled frame. *)
  mutable cur_rx_flow : Dsim.Flowtrace.ctx option;
  (* Attribution key for this stack's main loop iterations. *)
  k_loop : Dsim.Profile.key;
}

let create engine mem dev config =
  {
    k_loop =
      Dsim.Profile.(key default) ~component:"netstack"
        ~cvm:(Ipv4_addr.to_string config.ip)
        ~stage:"loop";
    engine;
    mem;
    dev;
    config;
    mac = Nic.Igb.mac (Dpdk.Eth_dev.port dev);
    table = Socket.create_table ~max_fds:config.max_fds ();
    listeners = Hashtbl.create 8;
    conns = Hashtbl.create 64;
    udp_binds = Hashtbl.create 8;
    sock_ctx = Hashtbl.create 64;
    bound_ports = Hashtbl.create 64;
    armed = Hashtbl.create 64;
    epolls = Hashtbl.create 4;
    arp = Arp_cache.create ();
    rng = Dsim.Rng.create ~seed:config.rng_seed;
    metrics = make_metrics ~ip:config.ip;
    counters =
      {
        rx_frames = 0;
        tx_frames = 0;
        rx_dropped = 0;
        tx_no_mbuf = 0;
        rst_sent = 0;
        arp_requests = 0;
        arp_failures = 0;
      };
    ident = 0;
    ephemeral = 49152;
    loops = 0;
    running = false;
    idle_streak = 0;
    ping_replies = [];
    hook = None;
    capture = None;
    cur_rx_flow = None;
  }

let engine t = t.engine
let ip t = t.config.ip
let mac t = t.mac
let queue t = Dpdk.Eth_dev.queue t.dev
let config t = t.config
let now t = Dsim.Engine.now t.engine
let counters t = t.counters
let loops t = t.loops
let live_sockets t = Socket.live_count t.table

let tcp_sock_of_fd t fd =
  match Socket.find t.table fd with Some (Socket.Tcp s) -> Some s | _ -> None

let set_capture t cap = t.capture <- cap
let capture t = t.capture

(* Capture is the only consumer that needs a frame as owned bytes; when
   detached (the common case) the zero-copy paths materialize nothing. *)
let record_tx_mbuf t m =
  match t.capture with
  | Some c ->
    Capture.record c ~at:(Dsim.Engine.now t.engine) Capture.Tx
      (Dpdk.Mbuf.contents t.mem m)
  | None -> ()

let drop_rx ?(flow = None) t stage reason =
  t.counters.rx_dropped <- t.counters.rx_dropped + 1;
  Dsim.Metrics.incr t.metrics.m_rx_dropped;
  (match reason with
  | Dsim.Flowtrace.Bad_checksum ->
    Dsim.Metrics.incr t.metrics.m_rx_csum_errors
  | _ -> ());
  Dsim.Flowtrace.drop Dsim.Flowtrace.default ~flow stage reason

(* An IP packet abandoned on the TX path because its next hop never
   resolved. Distinct from rx_dropped: nothing was received. *)
let drop_arp_unresolved ?(flow = None) t =
  t.counters.arp_failures <- t.counters.arp_failures + 1;
  Dsim.Metrics.incr t.metrics.m_arp_failures;
  Dsim.Flowtrace.(drop default ~flow Ip_out Arp_unresolved)

let contains msg sub =
  let n = String.length msg in
  let m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

(* Map a parser's error message onto the typed drop taxonomy: checksum
   failures, fragments, malformed options and length lies each get
   their own reason so the drop ledger distinguishes a corrupted frame
   from a crafted one; anything else stays a generic [Parse_error]. *)
let reason_of_parse_error msg =
  if contains msg "checksum" then Dsim.Flowtrace.Bad_checksum
  else if contains msg "fragment" then Dsim.Flowtrace.Frag_unsupported
  else if contains msg "option" then Dsim.Flowtrace.Bad_option
  else if contains msg "truncated" || contains msg "length" then
    Dsim.Flowtrace.Bad_length
  else Dsim.Flowtrace.Parse_error

let port_bound_incr t port =
  if port <> 0 then
    Hashtbl.replace t.bound_ports port
      (match Hashtbl.find_opt t.bound_ports port with
      | Some n -> n + 1
      | None -> 1)

let port_bound_decr t port =
  if port <> 0 then
    match Hashtbl.find_opt t.bound_ports port with
    | Some n when n <= 1 -> Hashtbl.remove t.bound_ports port
    | Some n -> Hashtbl.replace t.bound_ports port (n - 1)
    | None -> ()

let timers_armed (cb : Tcp_cb.t) =
  cb.Tcp_cb.rtx_deadline <> None
  || cb.Tcp_cb.ack_deadline <> None
  || cb.Tcp_cb.time_wait_deadline <> None

(* Re-derive a socket's membership in the armed-timer set. Called after
   every excursion into the TCP machinery (input, timers, user calls) —
   the deadline fields are plain mutables, so membership is recomputed
   at the call sites that can change them. *)
let update_armed t (sock : Socket.tcp_sock) =
  if timers_armed sock.Socket.cb && sock.Socket.cb.Tcp_cb.state <> Tcp_cb.Closed
  then Hashtbl.replace t.armed sock.Socket.fd sock
  else Hashtbl.remove t.armed sock.Socket.fd

(* Closing an fd must also tear it out of every epoll interest set: fd
   numbers are recycled by [Socket.alloc], so a stale registration
   would report a permanent EPOLLERR|EPOLLHUP storm until it aliases a
   future, unrelated socket — exactly the close/epoll race a hostile
   app drives on purpose. *)
let release_fd t fd =
  (match Socket.find t.table fd with
  | Some (Socket.Tcp s) -> port_bound_decr t s.Socket.cb.Tcp_cb.local_port
  | Some (Socket.Epoll_inst _) -> Hashtbl.remove t.epolls fd
  | Some (Socket.Udp _) | None -> ());
  Hashtbl.remove t.armed fd;
  Hashtbl.iter (fun _ ep -> Epoll.forget ep ~fd) t.epolls;
  Socket.release t.table fd

(* ------------------------------------------------------------------ *)
(* Frame transmission                                                   *)
(* ------------------------------------------------------------------ *)

let send_frame t ?(flow = None) ~dst_mac ~ethertype payload =
  let flow =
    (* Frames originated below the IP layer (ARP) start their trace
       here; everything else arrives with the context already open. *)
    match flow with
    | Some _ ->
      Dsim.Flowtrace.hop flow Eth_tx ~at:(now t);
      flow
    | None ->
      let label =
        match ethertype with
        | Ethernet.Arp -> "arp:" ^ Ipv4_addr.to_string t.config.ip
        | _ -> "eth:" ^ Ipv4_addr.to_string t.config.ip
      in
      Dsim.Flowtrace.origin Dsim.Flowtrace.default ~at:(now t) ~flow:label
        Eth_tx
  in
  let pool = Dpdk.Eth_dev.rx_pool t.dev in
  match Dpdk.Mbuf.alloc pool with
  | None ->
    t.counters.tx_no_mbuf <- t.counters.tx_no_mbuf + 1;
    Dsim.Flowtrace.(drop default ~flow Eth_tx Mbuf_exhausted)
  | Some m ->
    Dpdk.Mbuf.set_flow m flow;
    let plen = Bytes.length payload in
    let frame_len = Ethernet.header_len + plen in
    (* One Store check for the buffer, then the frame is laid out in
       place — no staging copy. *)
    let fs = Dpdk.Mbuf.borrow_frame t.mem m in
    let b = Dsim.Slice.base fs
    and b0 = Dsim.Slice.base_off fs in
    let off = Dpdk.Mbuf.headroom m in
    ignore (Dpdk.Mbuf.append m frame_len);
    Dsim.Slice.check fs ~off ~len:frame_len;
    Ethernet.build_into { Ethernet.dst = dst_mac; src = t.mac; ethertype } b
      ~off:(b0 + off);
    Bytes.blit payload 0 b (b0 + off + Ethernet.header_len) plen;
    record_tx_mbuf t m;
    (match Dpdk.Eth_dev.tx_burst t.dev [ m ] with
    | [] ->
      t.counters.tx_frames <- t.counters.tx_frames + 1;
      Dsim.Metrics.incr t.metrics.m_tx_frames;
      Dsim.Metrics.incr t.metrics.m_tx_bytes ~by:frame_len
    | rejected ->
      (* TX-ring-full attribution already happened at the doorbell
         (Igb.tx_enqueue); freeing resets the mbuf's flow field. *)
      List.iter Dpdk.Mbuf.free rejected;
      t.counters.tx_no_mbuf <- t.counters.tx_no_mbuf + 1)

let send_arp t pkt =
  let dst_mac =
    match pkt.Arp.op with
    | Arp.Request -> Nic.Mac_addr.broadcast
    | Arp.Reply -> pkt.Arp.target_mac
  in
  send_frame t ~dst_mac ~ethertype:Ethernet.Arp (Arp.build pkt)

let next_hop t dst =
  if Ipv4_addr.in_same_subnet t.config.ip dst ~prefix:t.config.prefix then dst
  else match t.config.gateway with Some gw -> gw | None -> dst

(* The zero-copy IP transmit path: allocate the frame's mbuf up front,
   let [write_payload] lay the transport segment down once at the given
   backing offset, then prepend the IPv4 and Ethernet headers in place —
   the rte_pktmbuf discipline, replacing the old allocate-and-blit chain
   (segment bytes -> IP packet bytes -> frame bytes -> mbuf).
   [write_payload b off] must fill exactly [payload_len] bytes of [b]
   starting at [off]. *)
let ip_output_into t ?(flow = None) ~dst ~protocol ~payload_len write_payload =
  let flow =
    match flow with
    | Some _ ->
      Dsim.Flowtrace.hop flow Ip_out ~at:(now t);
      flow
    | None ->
      let label =
        Printf.sprintf "%s>%s:%s"
          (Ipv4_addr.to_string t.config.ip)
          (Ipv4_addr.to_string dst)
          (match protocol with
          | Ipv4.Tcp -> "tcp"
          | Ipv4.Udp -> "udp"
          | Ipv4.Icmp -> "icmp"
          | Ipv4.Unknown_proto n -> string_of_int n)
      in
      Dsim.Flowtrace.origin Dsim.Flowtrace.default ~at:(now t) ~flow:label
        Ip_out
  in
  t.ident <- (t.ident + 1) land 0xffff;
  let total_len = Ipv4.header_len + payload_len in
  let header =
    { Ipv4.src = t.config.ip; dst; protocol; ttl = 64; ident = t.ident; total_len }
  in
  let hop = next_hop t dst in
  match Arp_cache.lookup t.arp ~now:(now t) hop with
  | Some dst_mac -> (
    Dsim.Flowtrace.hop flow Eth_tx ~at:(now t);
    let pool = Dpdk.Eth_dev.rx_pool t.dev in
    match Dpdk.Mbuf.alloc pool with
    | None ->
      t.counters.tx_no_mbuf <- t.counters.tx_no_mbuf + 1;
      Dsim.Flowtrace.(drop default ~flow Eth_tx Mbuf_exhausted)
    | Some m ->
      Dpdk.Mbuf.set_flow m flow;
      (* One Store check covers the whole buffer; everything below is
         in-place construction through the borrow window. *)
      let fs = Dpdk.Mbuf.borrow_frame t.mem m in
      let b = Dsim.Slice.base fs
      and b0 = Dsim.Slice.base_off fs in
      (* Transport segment once, at the data start... *)
      let seg_off = Dpdk.Mbuf.headroom m in
      ignore (Dpdk.Mbuf.append m payload_len);
      Dsim.Slice.check fs ~off:seg_off ~len:payload_len;
      write_payload b (b0 + seg_off);
      (* ...then each header prepended into the headroom. *)
      ignore (Dpdk.Mbuf.prepend m Ipv4.header_len);
      let ip_off = Dpdk.Mbuf.headroom m in
      Dsim.Slice.check fs ~off:ip_off ~len:Ipv4.header_len;
      Ipv4.build_into header b ~off:(b0 + ip_off);
      ignore (Dpdk.Mbuf.prepend m Ethernet.header_len);
      let eth_off = Dpdk.Mbuf.headroom m in
      Dsim.Slice.check fs ~off:eth_off ~len:Ethernet.header_len;
      Ethernet.build_into
        { Ethernet.dst = dst_mac; src = t.mac; ethertype = Ethernet.Ipv4 }
        b ~off:(b0 + eth_off);
      record_tx_mbuf t m;
      (match Dpdk.Eth_dev.tx_burst t.dev [ m ] with
      | [] ->
        t.counters.tx_frames <- t.counters.tx_frames + 1;
        Dsim.Metrics.incr t.metrics.m_tx_frames;
        Dsim.Metrics.incr t.metrics.m_tx_bytes
          ~by:(Ethernet.header_len + total_len)
      | rejected ->
        List.iter Dpdk.Mbuf.free rejected;
        t.counters.tx_no_mbuf <- t.counters.tx_no_mbuf + 1))
  | None ->
    if Arp_cache.is_negative t.arp ~now:(now t) hop then
      (* Resolution recently failed its whole retry budget: fail fast
         instead of queueing behind a request known to go unanswered. *)
      drop_arp_unresolved ~flow t
    else begin
      (* Parked awaiting ARP resolution: materialize the packet — the one
         copy on this slow path, since the pending queue outlives any
         frame buffer. The trace ends here (the flushed copy is not a
         drop, but its trace context is not retained). *)
      let packet = Bytes.create total_len in
      Ipv4.build_into header packet ~off:0;
      write_payload packet Ipv4.header_len;
      if not (Arp_cache.enqueue_pending t.arp hop packet) then
        drop_arp_unresolved ~flow t;
      if not (Arp_cache.request_outstanding t.arp ~now:(now t) hop) then begin
        t.counters.arp_requests <- t.counters.arp_requests + 1;
        send_arp t
          (Arp.request ~sender_mac:t.mac ~sender_ip:t.config.ip ~target_ip:hop)
      end
    end

(* Owned-bytes payload (ICMP, parked-packet style callers): one blit
   into the frame under construction. *)
let ip_output t ?(flow = None) ~dst ~protocol payload =
  ip_output_into t ~flow ~dst ~protocol ~payload_len:(Bytes.length payload)
    (fun b off -> Bytes.blit payload 0 b off (Bytes.length payload))

(* ------------------------------------------------------------------ *)
(* TCP plumbing                                                         *)
(* ------------------------------------------------------------------ *)

let conn_key_of (cb : Tcp_cb.t) : conn_key =
  (Ipv4_addr.to_int32 cb.remote_ip, cb.remote_port, cb.local_port)

let emit_tcp t (cb : Tcp_cb.t) header payload =
  let payload_len = Tcp_cb.payload_len payload in
  let ft = Dsim.Flowtrace.default in
  let flow =
    if not (Dsim.Flowtrace.enabled ft) then None
    else begin
      let label =
        Printf.sprintf "%s:%d>%s:%d"
          (Ipv4_addr.to_string cb.Tcp_cb.local_ip)
          cb.Tcp_cb.local_port
          (Ipv4_addr.to_string cb.Tcp_cb.remote_ip)
          cb.Tcp_cb.remote_port
      in
      (* A data segment starting below snd_max (the highest sequence
         ever put on the wire) is a retransmission: link it to the
         original transmission's trace. snd_nxt would miss RTO resends,
         which roll snd_nxt back to snd_una before re-flushing. *)
      let is_rtx =
        payload_len > 0 && Tcp_seq.lt header.Tcp_wire.seq cb.Tcp_cb.snd_max
      in
      let parent =
        if is_rtx then Tcp_cb.tx_trace_find cb header.Tcp_wire.seq else None
      in
      let flow =
        Dsim.Flowtrace.origin ft ~at:(now t) ~flow:label ?parent Tcp_out
      in
      (match flow with
      | Some c when payload_len > 0 && not is_rtx ->
        Tcp_cb.tx_trace_remember cb header.Tcp_wire.seq (Dsim.Flowtrace.id c)
      | _ -> ());
      flow
    end
  in
  (* Segment serialized straight into the frame: payload (often directly
     out of the send ring) first, then the TCP header written before it
     and checksummed in place. *)
  let hl = Tcp_wire.header_len header in
  ip_output_into t ~flow ~dst:cb.remote_ip ~protocol:Ipv4.Tcp
    ~payload_len:(hl + payload_len) (fun b off ->
      Tcp_cb.payload_blit payload b ~dst_off:(off + hl);
      ignore
        (Tcp_wire.write_header ~src:cb.local_ip ~dst:cb.remote_ip header b ~off
           ~payload_len))

let handle_event t (sock : Socket.tcp_sock) ~parent event =
  match (event : Tcp_cb.event) with
  | Tcp_cb.Connected -> (
    match parent with
    | Some (listener : Socket.tcp_sock) ->
      if Queue.length listener.Socket.accept_q < listener.Socket.backlog then
        Queue.push sock listener.Socket.accept_q
      else begin
        (* Backlog overflow: abort the fresh connection. *)
        sock.Socket.closed_by_app <- true;
        sock.Socket.cb.Tcp_cb.fin_queued <- true;
        sock.Socket.cb.Tcp_cb.state <- Tcp_cb.Fin_wait_1
      end
    | None -> ())
  | Tcp_cb.Conn_refused -> sock.Socket.pending_error <- Some Errno.ECONNREFUSED
  | Tcp_cb.Conn_reset -> sock.Socket.pending_error <- Some Errno.ECONNRESET
  | Tcp_cb.Closed_done ->
    Hashtbl.remove t.conns (conn_key_of sock.Socket.cb);
    Hashtbl.remove t.sock_ctx sock.Socket.fd;
    if sock.Socket.closed_by_app then release_fd t sock.Socket.fd
  | Tcp_cb.Data_readable | Tcp_cb.Writable | Tcp_cb.Peer_closed -> ()

let note_stat t (s : Tcp_cb.stat) =
  match s with
  | Tcp_cb.Retransmit -> Dsim.Metrics.incr t.metrics.m_retransmits
  | Tcp_cb.Delayed_ack -> Dsim.Metrics.incr t.metrics.m_delayed_acks
  | Tcp_cb.Window_stall -> Dsim.Metrics.incr t.metrics.m_window_stalls
  | Tcp_cb.Rx_drop reason ->
    Dsim.Flowtrace.drop Dsim.Flowtrace.default ~flow:t.cur_rx_flow
      Dsim.Flowtrace.Tcp_in reason

let make_ctx t sock ~parent : Tcp_cb.ctx =
  {
    Tcp_cb.now = (fun () -> now t);
    emit = (fun header payload -> emit_tcp t sock.Socket.cb header payload);
    on_event = (fun ev -> handle_event t sock ~parent ev);
    stat = (fun s -> note_stat t s);
  }

(* Each TCP socket gets one stable ctx, installed on first use; passive
   children capture their listener in it. *)
let get_ctx t (sock : Socket.tcp_sock) =
  match Hashtbl.find_opt t.sock_ctx sock.Socket.fd with
  | Some c -> c
  | None ->
    let c = make_ctx t sock ~parent:None in
    Hashtbl.replace t.sock_ctx sock.Socket.fd c;
    c

let new_tcp_sock t fd ~local_port : Socket.tcp_sock =
  {
    Socket.fd;
    cb = Tcp_cb.create ~config:t.config.tcp ~local_ip:t.config.ip ~local_port ();
    listening = false;
    backlog = 0;
    accept_q = Queue.create ();
    pending_error = None;
    connect_started = false;
    closed_by_app = false;
  }

let fresh_iss t = Dsim.Rng.int t.rng 0x7FFFFFFF

(* O(1) via the bound-port index: under connection churn the old
   whole-table scan made every ephemeral allocation O(sockets). *)
let port_in_use t port =
  Hashtbl.mem t.listeners port || Hashtbl.mem t.bound_ports port

let ephemeral_port t =
  let rec go attempts =
    if attempts > 16384 then None
    else begin
      let p = t.ephemeral in
      t.ephemeral <- (if p >= 65535 then 49152 else p + 1);
      if port_in_use t p then go (attempts + 1) else Some p
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Input demux                                                          *)
(* ------------------------------------------------------------------ *)

let send_rst t ~(ip_hdr : Ipv4.header) ~(tcp_hdr : Tcp_wire.header) ~payload_len =
  match Tcp_output.make_rst ~to_header:tcp_hdr ~payload_len with
  | None -> ()
  | Some rst ->
    t.counters.rst_sent <- t.counters.rst_sent + 1;
    let hl = Tcp_wire.header_len rst in
    ip_output_into t ~dst:ip_hdr.Ipv4.src ~protocol:Ipv4.Tcp ~payload_len:hl
      (fun b off ->
        ignore
          (Tcp_wire.write_header ~src:t.config.ip ~dst:ip_hdr.Ipv4.src rst b
             ~off ~payload_len:0))

let spawn_passive t listener ~(ip_hdr : Ipv4.header) (hdr : Tcp_wire.header) =
  let build fd =
    let sock = new_tcp_sock t fd ~local_port:hdr.Tcp_wire.dst_port in
    sock.Socket.cb.Tcp_cb.remote_ip <- ip_hdr.Ipv4.src;
    sock.Socket.cb.Tcp_cb.remote_port <- hdr.Tcp_wire.src_port;
    Socket.Tcp sock
  in
  match Socket.alloc t.table build with
  | Error _ -> drop_rx t Dsim.Flowtrace.Tcp_in Dsim.Flowtrace.No_socket
  | Ok (fd, Socket.Tcp child) ->
    let ctx = make_ctx t child ~parent:(Some listener) in
    Hashtbl.replace t.sock_ctx fd ctx;
    Hashtbl.replace t.conns (conn_key_of child.Socket.cb) child;
    port_bound_incr t child.Socket.cb.Tcp_cb.local_port;
    Tcp_input.accept_syn child.Socket.cb ctx hdr ~iss:(fresh_iss t);
    update_armed t child
  | Ok _ -> assert false

let tcp_input t ?(flow = None) ~(ip_hdr : Ipv4.header) buf ~off ~len =
  match Tcp_wire.parse ~src:ip_hdr.Ipv4.src ~dst:ip_hdr.Ipv4.dst buf ~off ~len with
  | Error msg ->
    let reason = reason_of_parse_error msg in
    drop_rx ~flow t Dsim.Flowtrace.Tcp_in reason
  | Ok (hdr, payload_off) -> (
    Dsim.Flowtrace.hop flow Tcp_in ~at:(now t);
    (* The payload stays a region of the borrowed frame; Tcp_input blits
       in-order data straight into the receive ring and copies only what
       must outlive the frame (reassembly queue). *)
    let payload_len = off + len - payload_off in
    let key : conn_key =
      (Ipv4_addr.to_int32 ip_hdr.Ipv4.src, hdr.Tcp_wire.src_port, hdr.Tcp_wire.dst_port)
    in
    match Hashtbl.find_opt t.conns key with
    | Some sock ->
      let ctx = get_ctx t sock in
      let readable_before = Tcp_cb.readable_bytes sock.Socket.cb in
      t.cur_rx_flow <- flow;
      Fun.protect
        ~finally:(fun () -> t.cur_rx_flow <- None)
        (fun () ->
          Tcp_input.process sock.Socket.cb ctx hdr ~buf ~off:payload_off
            ~len:payload_len);
      if Tcp_cb.readable_bytes sock.Socket.cb > readable_before then
        Dsim.Flowtrace.hop flow Sock ~at:(now t);
      if sock.Socket.cb.Tcp_cb.state <> Tcp_cb.Closed then
        Tcp_output.flush sock.Socket.cb ctx;
      update_armed t sock
    | None -> (
      match Hashtbl.find_opt t.listeners hdr.Tcp_wire.dst_port with
      | Some listener
        when hdr.Tcp_wire.flags.Tcp_wire.syn && not hdr.Tcp_wire.flags.Tcp_wire.ack
        -> spawn_passive t listener ~ip_hdr hdr
      | Some _ | None ->
        (* Reset path: the frame itself goes no further (not counted in
           rx_dropped, but the trace records why it ended). *)
        Dsim.Flowtrace.(drop default ~flow Tcp_in No_socket);
        send_rst t ~ip_hdr ~tcp_hdr:hdr ~payload_len))

(* ------------------------------------------------------------------ *)
(* ICMP / UDP input                                                     *)
(* ------------------------------------------------------------------ *)

let icmp_input t ?(flow = None) ~(ip_hdr : Ipv4.header) buf ~off ~len =
  match Icmp.parse buf ~off ~len with
  | Error msg ->
    let reason = reason_of_parse_error msg in
    drop_rx ~flow t Dsim.Flowtrace.Ip_rx reason
  | Ok msg -> (
    match msg with
    | Icmp.Echo_reply { ident; seq; _ } ->
      t.ping_replies <- (ident, seq) :: t.ping_replies
    | _ -> (
      match Icmp.reply_to msg with
      | Some reply ->
        ip_output t ~dst:ip_hdr.Ipv4.src ~protocol:Ipv4.Icmp (Icmp.build reply)
      | None -> ()))

let udp_input t ?(flow = None) ~(ip_hdr : Ipv4.header) buf ~off ~len =
  match Udp.parse ~src:ip_hdr.Ipv4.src ~dst:ip_hdr.Ipv4.dst buf ~off ~len with
  | Error msg ->
    let reason = reason_of_parse_error msg in
    drop_rx ~flow t Dsim.Flowtrace.Udp_in reason
  | Ok (hdr, payload_off) -> (
    Dsim.Flowtrace.hop flow Udp_in ~at:(now t);
    match Hashtbl.find_opt t.udp_binds hdr.Udp.dst_port with
    | None -> drop_rx ~flow t Dsim.Flowtrace.Udp_in Dsim.Flowtrace.No_socket
    | Some sock ->
      if Queue.length sock.Socket.rcv_q >= sock.Socket.max_rcv_q then
        drop_rx ~flow t Dsim.Flowtrace.Udp_in Dsim.Flowtrace.Sock_queue_full
      else begin
        let data_len = hdr.Udp.length - Udp.header_len in
        let data = Bytes.sub buf payload_off data_len in
        Queue.push (ip_hdr.Ipv4.src, hdr.Udp.src_port, data) sock.Socket.rcv_q;
        Dsim.Flowtrace.hop flow Sock ~at:(now t)
      end)

(* ------------------------------------------------------------------ *)
(* Frame input                                                          *)
(* ------------------------------------------------------------------ *)

let arp_input t ?(flow = None) buf ~off ~len =
  (* [Arp.parse] bounds-checks against the backing buffer; on the live RX
     path that is the whole borrowed frame buffer, so enforce the actual
     frame length here. *)
  if len < Arp.packet_len then
    drop_rx ~flow t Dsim.Flowtrace.Eth_rx Dsim.Flowtrace.Bad_length
  else
  match Arp.parse buf ~off with
  | Error _ -> drop_rx ~flow t Dsim.Flowtrace.Eth_rx Dsim.Flowtrace.Parse_error
  | Ok pkt ->
    if Ipv4_addr.equal pkt.Arp.target_ip t.config.ip then begin
      Arp_cache.insert t.arp ~now:(now t) pkt.Arp.sender_ip pkt.Arp.sender_mac;
      (match pkt.Arp.op with
      | Arp.Request -> send_arp t (Arp.reply_to pkt ~mac:t.mac)
      | Arp.Reply -> ());
      List.iter
        (fun packet ->
          send_frame t ~dst_mac:pkt.Arp.sender_mac ~ethertype:Ethernet.Ipv4 packet)
        (Arp_cache.take_pending t.arp pkt.Arp.sender_ip)
    end

let ipv4_input t ?(flow = None) buf ~off ~len =
  match Ipv4.parse buf ~off ~len with
  | Error msg ->
    let reason = reason_of_parse_error msg in
    drop_rx ~flow t Dsim.Flowtrace.Ip_rx reason
  | Ok (ip_hdr, payload_off) ->
    if
      Ipv4_addr.equal ip_hdr.Ipv4.dst t.config.ip
      || Ipv4_addr.equal ip_hdr.Ipv4.dst Ipv4_addr.broadcast
    then begin
      Dsim.Flowtrace.hop flow Ip_rx ~at:(now t);
      let payload_len = ip_hdr.Ipv4.total_len - (payload_off - off) in
      match ip_hdr.Ipv4.protocol with
      | Ipv4.Tcp -> tcp_input t ~flow ~ip_hdr buf ~off:payload_off ~len:payload_len
      | Ipv4.Icmp -> icmp_input t ~flow ~ip_hdr buf ~off:payload_off ~len:payload_len
      | Ipv4.Udp -> udp_input t ~flow ~ip_hdr buf ~off:payload_off ~len:payload_len
      | Ipv4.Unknown_proto _ ->
        drop_rx ~flow t Dsim.Flowtrace.Ip_rx Dsim.Flowtrace.Unknown_proto
    end

(* One capability check per received frame: the caller hands us a slice
   already validated by [Mbuf.borrow]; every layer then parses in place
   against the slice's backing region — no per-layer copies. *)
let handle_frame t ?(flow = None) (s : Dsim.Slice.t) =
  let len = Dsim.Slice.length s in
  t.counters.rx_frames <- t.counters.rx_frames + 1;
  Dsim.Metrics.incr t.metrics.m_rx_frames;
  Dsim.Metrics.incr t.metrics.m_rx_bytes ~by:len;
  (match t.capture with
  | Some c ->
    Capture.record c ~at:(Dsim.Engine.now t.engine) Capture.Rx
      (Dsim.Slice.to_bytes s)
  | None -> ());
  Dsim.Slice.check s ~off:0 ~len;
  let buf = Dsim.Slice.base s and off = Dsim.Slice.base_off s in
  match Ethernet.parse_at buf ~off ~len with
  | Error _ -> drop_rx ~flow t Dsim.Flowtrace.Eth_rx Dsim.Flowtrace.Parse_error
  | Ok (eth, payload_off) -> (
    Dsim.Flowtrace.hop flow Eth_rx ~at:(now t);
    let payload_len = off + len - payload_off in
    match eth.Ethernet.ethertype with
    | Ethernet.Arp -> arp_input t ~flow buf ~off:payload_off ~len:payload_len
    | Ethernet.Ipv4 -> ipv4_input t ~flow buf ~off:payload_off ~len:payload_len
    | Ethernet.Unknown _ ->
      drop_rx ~flow t Dsim.Flowtrace.Eth_rx Dsim.Flowtrace.Unknown_proto)

(* ------------------------------------------------------------------ *)
(* Main loop                                                            *)
(* ------------------------------------------------------------------ *)

(* Per-tick TCP servicing visits only the armed-timer set: every
   connection with pending work holds at least one deadline (data in
   flight arms the rtx timer, zero-window persist arms it explicitly,
   delayed ACKs arm the ack timer), so skipping timer-less connections
   emits exactly the same segments the old full-table scan did while
   idle connections cost nothing. Serviced in fd order so the schedule
   is independent of hash-table layout. *)
let service_tcp t =
  if Hashtbl.length t.armed > 0 then begin
    let socks =
      Hashtbl.fold (fun _ s acc -> s :: acc) t.armed []
      |> List.sort (fun (a : Socket.tcp_sock) b ->
             compare a.Socket.fd b.Socket.fd)
    in
    List.iter
      (fun (sock : Socket.tcp_sock) ->
        let ctx = get_ctx t sock in
        Tcp_timer.check sock.Socket.cb ctx;
        if sock.Socket.cb.Tcp_cb.state = Tcp_cb.Closed then
          Hashtbl.remove t.conns (conn_key_of sock.Socket.cb)
        else Tcp_output.flush sock.Socket.cb ctx;
        update_armed t sock)
      socks
  end

(* ARP resolution maintenance: retransmit due requests (the cache applies
   its capped exponential backoff), and for resolutions whose last attempt
   expired unanswered, drop the stranded queue with a typed attribution
   and let the negative cache make subsequent TX fail fast. Free on a
   healthy run: one counter load while nothing is in flight. *)
let service_arp t =
  if Arp_cache.outstanding t.arp > 0 then begin
    let now_ = now t in
    List.iter
      (fun ip ->
        t.counters.arp_requests <- t.counters.arp_requests + 1;
        send_arp t
          (Arp.request ~sender_mac:t.mac ~sender_ip:t.config.ip ~target_ip:ip))
      (Arp_cache.due_retries t.arp ~now:now_);
    List.iter
      (fun (_ip, stranded) -> List.iter (fun _ -> drop_arp_unresolved t) stranded)
      (Arp_cache.expire_failed t.arp ~now:now_)
  end

let set_hook t hook = t.hook <- hook

(* CPU cost of one iteration: every frame that crossed the stack during
   the iteration (received bursts, plus transmissions triggered by TCP
   flushes and by the application hook) is charged [per_packet_ns]. In
   Scenario 2 this value is the mutex hold time of the main loop. *)
let loop_once t =
  t.loops <- t.loops + 1;
  Dsim.Metrics.set t.metrics.m_live_sockets (Socket.live_count t.table);
  let tx_before = t.counters.tx_frames in
  let mbufs = Dpdk.Eth_dev.rx_burst t.dev ~max:t.config.burst in
  let n = List.length mbufs in
  List.iter
    (fun m ->
      let flow = Dpdk.Mbuf.flow m in
      (* Borrow the frame in place (one capability check), process it,
         and only then return the mbuf to the pool. *)
      let s = Dpdk.Mbuf.borrow t.mem m in
      handle_frame t ~flow s;
      Dpdk.Mbuf.free m)
    mbufs;
  service_tcp t;
  service_arp t;
  (match t.hook with Some h -> h t | None -> ());
  let tx_delta = t.counters.tx_frames - tx_before in
  let busy = n + tx_delta in
  if busy > 0 then t.idle_streak <- 0 else t.idle_streak <- t.idle_streak + 1;
  if busy = 0 then t.config.loop_base_ns /. 4.
  else t.config.loop_base_ns +. (t.config.per_packet_ns *. float_of_int busy)

let stop t = t.running <- false

let start ?hook t =
  (match hook with Some _ -> t.hook <- hook | None -> ());
  t.running <- true;
  let rec iterate () =
    if t.running then begin
      let work_ns = loop_once t in
      let gap =
        if t.idle_streak = 0 then t.config.loop_gap
        else begin
          let backoff =
            Dsim.Time.mul t.config.loop_gap (1 lsl min t.idle_streak 6)
          in
          Dsim.Time.min backoff t.config.idle_gap_max
        end
      in
      let delay = Dsim.Time.add (Dsim.Time.of_float_ns work_ns) gap in
      ignore (Dsim.Engine.schedule_l t.engine ~delay ~label:t.k_loop iterate)
    end
  in
  iterate ()

(* ------------------------------------------------------------------ *)
(* Socket API                                                           *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let socket_stream t =
  match Socket.alloc t.table (fun fd -> Socket.Tcp (new_tcp_sock t fd ~local_port:0)) with
  | Ok (fd, _) -> Ok fd
  | Error e -> Error e

let bind t fd ~port =
  let* sock = Socket.find_tcp t.table fd in
  if port <= 0 || port > 65535 then Error Errno.EINVAL
  else if port_in_use t port then Error Errno.EADDRINUSE
  else begin
    port_bound_decr t sock.Socket.cb.Tcp_cb.local_port;
    sock.Socket.cb.Tcp_cb.local_port <- port;
    port_bound_incr t port;
    Ok ()
  end

let listen t fd ~backlog =
  let* sock = Socket.find_tcp t.table fd in
  if sock.Socket.cb.Tcp_cb.local_port = 0 then Error Errno.EINVAL
  else begin
    sock.Socket.listening <- true;
    sock.Socket.backlog <- max 1 backlog;
    Tcp_cb.open_passive sock.Socket.cb;
    Hashtbl.replace t.listeners sock.Socket.cb.Tcp_cb.local_port sock;
    Ok ()
  end

let accept t fd =
  let* sock = Socket.find_tcp t.table fd in
  if not sock.Socket.listening then Error Errno.EINVAL
  else if Queue.is_empty sock.Socket.accept_q then Error Errno.EAGAIN
  else begin
    let child = Queue.pop sock.Socket.accept_q in
    Ok
      ( child.Socket.fd,
        child.Socket.cb.Tcp_cb.remote_ip,
        child.Socket.cb.Tcp_cb.remote_port )
  end

let connect t fd ~ip ~port =
  let* sock = Socket.find_tcp t.table fd in
  if sock.Socket.connect_started then
    if sock.Socket.cb.Tcp_cb.state = Tcp_cb.Established then Error Errno.EISCONN
    else Error Errno.EALREADY
  else begin
    (if sock.Socket.cb.Tcp_cb.local_port = 0 then
       match ephemeral_port t with
       | Some p ->
         sock.Socket.cb.Tcp_cb.local_port <- p;
         port_bound_incr t p
       | None -> ());
    if sock.Socket.cb.Tcp_cb.local_port = 0 then Error Errno.EADDRINUSE
    else begin
      sock.Socket.connect_started <- true;
      let ctx = get_ctx t sock in
      Hashtbl.replace t.conns
        (Ipv4_addr.to_int32 ip, port, sock.Socket.cb.Tcp_cb.local_port)
        sock;
      Tcp_cb.open_active sock.Socket.cb ctx ~remote_ip:ip ~remote_port:port
        ~iss:(fresh_iss t);
      update_armed t sock;
      Error Errno.EINPROGRESS
    end
  end

let read t fd ~buf ~off ~len =
  let* sock = Socket.find_tcp t.table fd in
  if sock.Socket.listening then Error Errno.EOPNOTSUPP
  else begin
    match sock.Socket.pending_error with
    | Some e ->
      sock.Socket.pending_error <- None;
      Error e
    | None ->
      let cb = sock.Socket.cb in
      let n = Ring_buf.read_into cb.Tcp_cb.rcv_buf ~dst:buf ~dst_off:off ~len in
      if n > 0 then begin
        Dsim.Metrics.incr t.metrics.m_sock_read_bytes ~by:n;
        (* Freed receive space: push a window update if we had been
           sitting on a shrunken advertisement. *)
        if cb.Tcp_cb.segs_since_ack > 0 then begin
          Tcp_output.send_ack cb (get_ctx t sock);
          update_armed t sock
        end;
        Ok n
      end
      else if cb.Tcp_cb.fin_received then Ok 0
      else begin
        match cb.Tcp_cb.state with
        | Tcp_cb.Closed ->
          if sock.Socket.connect_started then Error Errno.ECONNRESET
          else Error Errno.ENOTCONN
        | Tcp_cb.Listen -> Error Errno.ENOTCONN
        | _ -> Error Errno.EAGAIN
      end
  end

let write t fd ~buf ~off ~len =
  let* sock = Socket.find_tcp t.table fd in
  if sock.Socket.listening then Error Errno.EOPNOTSUPP
  else begin
    match sock.Socket.pending_error with
    | Some e ->
      sock.Socket.pending_error <- None;
      Error e
    | None -> (
      let cb = sock.Socket.cb in
      match cb.Tcp_cb.state with
      | Tcp_cb.Established | Tcp_cb.Close_wait ->
        let n = Ring_buf.write cb.Tcp_cb.snd_buf buf ~off ~len in
        if n = 0 then Error Errno.EAGAIN
        else begin
          Dsim.Metrics.incr t.metrics.m_sock_write_bytes ~by:n;
          Tcp_output.flush cb (get_ctx t sock);
          update_armed t sock;
          Ok n
        end
      | Tcp_cb.Syn_sent | Tcp_cb.Syn_received -> Error Errno.EAGAIN
      | Tcp_cb.Listen | Tcp_cb.Closed -> Error Errno.ENOTCONN
      | Tcp_cb.Fin_wait_1 | Tcp_cb.Fin_wait_2 | Tcp_cb.Closing
      | Tcp_cb.Last_ack | Tcp_cb.Time_wait -> Error Errno.EPIPE)
  end

let flush_fd t fd =
  match tcp_sock_of_fd t fd with
  | None -> ()
  | Some sock ->
    Tcp_output.flush sock.Socket.cb (get_ctx t sock);
    update_armed t sock

let close t fd =
  match Socket.find t.table fd with
  | None -> Error Errno.EBADF
  | Some (Socket.Epoll_inst _) ->
    release_fd t fd;
    Ok ()
  | Some (Socket.Udp u) ->
    (match u.Socket.uport with
    | Some p -> Hashtbl.remove t.udp_binds p
    | None -> ());
    release_fd t fd;
    Ok ()
  | Some (Socket.Tcp sock) ->
    sock.Socket.closed_by_app <- true;
    if sock.Socket.listening then begin
      Hashtbl.remove t.listeners sock.Socket.cb.Tcp_cb.local_port;
      Queue.iter
        (fun (child : Socket.tcp_sock) ->
          child.Socket.closed_by_app <- true;
          child.Socket.cb.Tcp_cb.fin_queued <- true;
          child.Socket.cb.Tcp_cb.state <- Tcp_cb.Fin_wait_1)
        sock.Socket.accept_q;
      Queue.clear sock.Socket.accept_q;
      release_fd t fd;
      Ok ()
    end
    else begin
      let cb = sock.Socket.cb in
      let ctx = get_ctx t sock in
      (match cb.Tcp_cb.state with
      | Tcp_cb.Established ->
        cb.Tcp_cb.state <- Tcp_cb.Fin_wait_1;
        cb.Tcp_cb.fin_queued <- true;
        Tcp_output.flush cb ctx
      | Tcp_cb.Close_wait ->
        cb.Tcp_cb.state <- Tcp_cb.Last_ack;
        cb.Tcp_cb.fin_queued <- true;
        Tcp_output.flush cb ctx
      | Tcp_cb.Syn_sent | Tcp_cb.Syn_received | Tcp_cb.Listen | Tcp_cb.Closed ->
        Tcp_cb.to_closed cb ctx
      | Tcp_cb.Fin_wait_1 | Tcp_cb.Fin_wait_2 | Tcp_cb.Closing
      | Tcp_cb.Last_ack | Tcp_cb.Time_wait -> ());
      if cb.Tcp_cb.state = Tcp_cb.Closed then release_fd t fd
      else update_armed t sock;
      Ok ()
    end

(* ------------------------------------------------------------------ *)
(* Epoll                                                                *)
(* ------------------------------------------------------------------ *)

let epoll_create t =
  match Socket.alloc t.table (fun _fd -> Socket.Epoll_inst (Epoll.create ())) with
  | Ok (fd, Socket.Epoll_inst ep) ->
    Hashtbl.replace t.epolls fd ep;
    Ok fd
  | Ok (fd, _) -> Ok fd
  | Error e -> Error e

let epoll_ctl t ~epfd ~op ~fd events =
  let* ep = Socket.find_epoll t.table epfd in
  if Socket.find t.table fd = None then Error Errno.EBADF
  else begin
    match op with
    | `Add -> Epoll.ctl_add ep ~fd events
    | `Mod -> Epoll.ctl_mod ep ~fd events
    | `Del -> Epoll.ctl_del ep ~fd
  end

let readiness_of t fd =
  match Socket.find t.table fd with
  | Some (Socket.Tcp s) -> Socket.tcp_readiness s
  | Some (Socket.Udp s) -> Socket.udp_readiness s
  | Some (Socket.Epoll_inst _) -> 0
  | None -> Epoll.epollerr lor Epoll.epollhup

let epoll_wait t ~epfd ~max =
  let* ep = Socket.find_epoll t.table epfd in
  let ready = Epoll.wait ep ~readiness:(readiness_of t) ~max in
  if ready <> [] then Dsim.Metrics.incr t.metrics.m_epoll_wakeups;
  Ok ready

(* ------------------------------------------------------------------ *)
(* UDP                                                                  *)
(* ------------------------------------------------------------------ *)

let udp_socket t =
  match
    Socket.alloc t.table (fun fd ->
        Socket.Udp
          { Socket.ufd = fd; uport = None; rcv_q = Queue.create (); max_rcv_q = 256 })
  with
  | Ok (fd, _) -> Ok fd
  | Error e -> Error e

let udp_bind t fd ~port =
  let* sock = Socket.find_udp t.table fd in
  if Hashtbl.mem t.udp_binds port then Error Errno.EADDRINUSE
  else begin
    sock.Socket.uport <- Some port;
    Hashtbl.replace t.udp_binds port sock;
    Ok ()
  end

let udp_sendto t fd ~ip ~port ~buf =
  let* sock = Socket.find_udp t.table fd in
  let src_port =
    match sock.Socket.uport with
    | Some p -> p
    | None -> (
      match ephemeral_port t with
      | Some p ->
        sock.Socket.uport <- Some p;
        Hashtbl.replace t.udp_binds p sock;
        p
      | None -> 0)
  in
  if src_port = 0 then Error Errno.EADDRINUSE
  else if Bytes.length buf + Udp.header_len + Ipv4.header_len > t.config.mtu then
    Error Errno.EMSGSIZE
  else begin
    let blen = Bytes.length buf in
    ip_output_into t ~dst:ip ~protocol:Ipv4.Udp
      ~payload_len:(Udp.header_len + blen) (fun b off ->
        Bytes.blit buf 0 b (off + Udp.header_len) blen;
        Udp.write_header ~src:t.config.ip ~dst:ip ~src_port ~dst_port:port b
          ~off ~payload_len:blen);
    Ok ()
  end

let udp_recvfrom t fd =
  let* sock = Socket.find_udp t.table fd in
  if Queue.is_empty sock.Socket.rcv_q then Ok None
  else Ok (Some (Queue.pop sock.Socket.rcv_q))

(* ------------------------------------------------------------------ *)
(* ICMP convenience                                                     *)
(* ------------------------------------------------------------------ *)

let ping t ~ip ~ident ~seq ~payload =
  let msg = Icmp.Echo_request { ident; seq; data = payload } in
  ip_output t ~dst:ip ~protocol:Ipv4.Icmp (Icmp.build msg)

let pings_received t = t.ping_replies
