type entry = { mac : Nic.Mac_addr.t; expires : Dsim.Time.t }

(* In-flight resolution state: [attempts] requests sent so far, the next
   retransmit (or failure-expiry, once the budget is spent) due at
   [next_retry]. *)
type resolve = { mutable attempts : int; mutable next_retry : Dsim.Time.t }

type t = {
  entry_lifetime : Dsim.Time.t;
  max_pending : int;
  max_attempts : int;
  negative_lifetime : Dsim.Time.t;
  table : (Ipv4_addr.t, entry) Hashtbl.t;
  pending : (Ipv4_addr.t, bytes Queue.t) Hashtbl.t;
  requests : (Ipv4_addr.t, resolve) Hashtbl.t;
  negative : (Ipv4_addr.t, Dsim.Time.t) Hashtbl.t;
}

let request_interval = Dsim.Time.ms 100

(* Retry backoff doubles per attempt from [request_interval], capped. *)
let retry_cap = Dsim.Time.ms 800

let create ?(entry_lifetime = Dsim.Time.sec 60) ?(max_pending_per_ip = 16)
    ?(max_attempts = 5) ?(negative_lifetime = Dsim.Time.sec 10) () =
  {
    entry_lifetime;
    max_pending = max_pending_per_ip;
    max_attempts;
    negative_lifetime;
    table = Hashtbl.create 16;
    pending = Hashtbl.create 8;
    requests = Hashtbl.create 8;
    negative = Hashtbl.create 8;
  }

let lookup t ~now ip =
  match Hashtbl.find_opt t.table ip with
  | None -> None
  | Some e ->
    if Dsim.Time.(now > e.expires) then begin
      Hashtbl.remove t.table ip;
      None
    end
    else Some e.mac

let insert t ~now ip mac =
  Hashtbl.remove t.requests ip;
  Hashtbl.remove t.negative ip;
  Hashtbl.replace t.table ip
    { mac; expires = Dsim.Time.add now t.entry_lifetime }

let enqueue_pending t ip pkt =
  let q =
    match Hashtbl.find_opt t.pending ip with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace t.pending ip q;
      q
  in
  if Queue.length q >= t.max_pending then false
  else begin
    Queue.push pkt q;
    true
  end

let take_pending t ip =
  match Hashtbl.find_opt t.pending ip with
  | None -> []
  | Some q ->
    Hashtbl.remove t.pending ip;
    List.rev (Queue.fold (fun acc x -> x :: acc) [] q)

let request_outstanding t ~now ip =
  match Hashtbl.find_opt t.requests ip with
  | Some _ -> true
  | None ->
    Hashtbl.replace t.requests ip
      { attempts = 1; next_retry = Dsim.Time.add now request_interval };
    false

let outstanding t = Hashtbl.length t.requests

let is_negative t ~now ip =
  match Hashtbl.find_opt t.negative ip with
  | Some until when Dsim.Time.(now <= until) -> true
  | Some _ ->
    Hashtbl.remove t.negative ip;
    false
  | None -> false

let due_retries t ~now =
  if Hashtbl.length t.requests = 0 then []
  else
    Hashtbl.fold
      (fun ip st acc ->
        if st.attempts < t.max_attempts && Dsim.Time.(st.next_retry <= now)
        then begin
          let delay =
            Dsim.Time.min
              (Dsim.Time.mul request_interval (1 lsl min st.attempts 6))
              retry_cap
          in
          st.attempts <- st.attempts + 1;
          st.next_retry <- Dsim.Time.add now delay;
          ip :: acc
        end
        else acc)
      t.requests []

let expire_failed t ~now =
  if Hashtbl.length t.requests = 0 then []
  else begin
    let failed =
      Hashtbl.fold
        (fun ip st acc ->
          if st.attempts >= t.max_attempts && Dsim.Time.(st.next_retry <= now)
          then ip :: acc
          else acc)
        t.requests []
    in
    List.map
      (fun ip ->
        Hashtbl.remove t.requests ip;
        Hashtbl.replace t.negative ip (Dsim.Time.add now t.negative_lifetime);
        (ip, take_pending t ip))
      failed
  end

let entries t =
  Hashtbl.fold (fun ip e acc -> (ip, e.mac) :: acc) t.table []
