type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  urg : bool;
}

let flag ?(syn = false) ?(ack = false) ?(fin = false) ?(rst = false)
    ?(psh = false) ?(urg = false) () =
  { syn; ack; fin; rst; psh; urg }

type option_ =
  | Mss of int
  | Wscale of int
  | Timestamps of { tsval : int; tsecr : int }
  | Unknown_option of int

type header = {
  src_port : int;
  dst_port : int;
  seq : Tcp_seq.t;
  ack : Tcp_seq.t;
  flags : flags;
  window : int;
  options : option_ list;
}

let base_header_len = 20

let option_encoded_len = function
  | Mss _ -> 4
  | Wscale _ -> 4 (* 3 + 1 NOP *)
  | Timestamps _ -> 12 (* 2 NOP + 10 *)
  | Unknown_option _ -> 0

let options_len options =
  List.fold_left (fun acc o -> acc + option_encoded_len o) 0 options

let header_len h = base_header_len + options_len h.options

let set_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let get_u16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let set_u32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_u32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let flags_to_int f =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor (if f.psh then 0x08 else 0)
  lor (if f.ack then 0x10 else 0)
  lor if f.urg then 0x20 else 0

let flags_of_int v =
  {
    fin = v land 0x01 <> 0;
    syn = v land 0x02 <> 0;
    rst = v land 0x04 <> 0;
    psh = v land 0x08 <> 0;
    ack = v land 0x10 <> 0;
    urg = v land 0x20 <> 0;
  }

let write_option b off = function
  | Mss v ->
    Bytes.set b off '\002';
    Bytes.set b (off + 1) '\004';
    set_u16 b (off + 2) v;
    off + 4
  | Wscale v ->
    Bytes.set b off '\001' (* NOP for alignment *);
    Bytes.set b (off + 1) '\003';
    Bytes.set b (off + 2) '\003';
    Bytes.set b (off + 3) (Char.chr (v land 0xff));
    off + 4
  | Timestamps { tsval; tsecr } ->
    Bytes.set b off '\001';
    Bytes.set b (off + 1) '\001';
    Bytes.set b (off + 2) '\008';
    Bytes.set b (off + 3) '\010';
    set_u32 b (off + 4) tsval;
    set_u32 b (off + 8) tsecr;
    off + 12
  | Unknown_option _ -> off

(* Header written at [off] with the payload already in place at
   [off + header_len h] — the zero-copy TX path lays the payload into
   mbuf headroom first, then prepends this header and checksums the
   whole segment where it sits. Returns the header length. *)
let write_header ~src ~dst h b ~off ~payload_len =
  let hl = header_len h in
  let len = hl + payload_len in
  set_u16 b off h.src_port;
  set_u16 b (off + 2) h.dst_port;
  set_u32 b (off + 4) h.seq;
  set_u32 b (off + 8) h.ack;
  Bytes.set b (off + 12) (Char.chr ((hl / 4) lsl 4));
  Bytes.set b (off + 13) (Char.chr (flags_to_int h.flags));
  set_u16 b (off + 14) (min h.window 0xffff);
  set_u16 b (off + 16) 0 (* checksum *);
  set_u16 b (off + 18) 0 (* urgent pointer *);
  let o =
    List.fold_left (fun o opt -> write_option b o opt) (off + base_header_len)
      h.options
  in
  assert (o = off + hl);
  let init = Ipv4.pseudo_header_sum ~src ~dst ~protocol:Ipv4.Tcp ~len in
  set_u16 b (off + 16) (Checksum.compute ~init b ~off ~len);
  hl

let build ~src ~dst h ~payload =
  let hl = header_len h in
  let b = Bytes.create (hl + Bytes.length payload) in
  Bytes.blit payload 0 b hl (Bytes.length payload);
  ignore (write_header ~src ~dst h b ~off:0 ~payload_len:(Bytes.length payload));
  b

(* A truncated kind byte, a length < 2 or a length running past the
   option region are hard parse errors, not a best-effort prefix: a
   lying option length is exactly how an attacker smuggles bytes past a
   parser that "stops early", and accepting the prefix hides the lie
   from the drop ledger. *)
let parse_options b ~off ~limit =
  let rec go off acc =
    if off >= limit then Ok (List.rev acc)
    else begin
      match Char.code (Bytes.get b off) with
      | 0 (* EOL *) -> Ok (List.rev acc)
      | 1 (* NOP *) -> go (off + 1) acc
      | kind ->
        if off + 1 >= limit then Error "tcp: bad option (truncated)"
        else begin
          let olen = Char.code (Bytes.get b (off + 1)) in
          if olen < 2 || off + olen > limit then
            Error "tcp: bad option (length)"
          else begin
            let opt =
              match kind with
              | 2 when olen = 4 -> Mss (get_u16 b (off + 2))
              | 3 when olen = 3 -> Wscale (Char.code (Bytes.get b (off + 2)))
              | 8 when olen = 10 ->
                Timestamps { tsval = get_u32 b (off + 2); tsecr = get_u32 b (off + 6) }
              | k -> Unknown_option k
            in
            go (off + olen) (opt :: acc)
          end
        end
    end
  in
  go off []

let parse ~src ~dst b ~off ~len =
  if len < base_header_len then Error "tcp: truncated header"
  else begin
    let init = Ipv4.pseudo_header_sum ~src ~dst ~protocol:Ipv4.Tcp ~len in
    if Checksum.compute ~init b ~off ~len <> 0 then Error "tcp: bad checksum"
    else begin
      let data_off = (Char.code (Bytes.get b (off + 12)) lsr 4) * 4 in
      if data_off < base_header_len || data_off > len then Error "tcp: bad data offset"
      else begin
        match
          parse_options b ~off:(off + base_header_len) ~limit:(off + data_off)
        with
        | Error msg -> Error msg
        | Ok options ->
          Ok
            ( {
                src_port = get_u16 b off;
                dst_port = get_u16 b (off + 2);
                seq = Tcp_seq.of_int (get_u32 b (off + 4));
                ack = Tcp_seq.of_int (get_u32 b (off + 8));
                flags = flags_of_int (Char.code (Bytes.get b (off + 13)));
                window = get_u16 b (off + 14);
                options;
              },
              off + data_off )
      end
    end
  end

let find_mss h =
  List.find_map (function Mss v -> Some v | _ -> None) h.options

let find_timestamps h =
  List.find_map
    (function Timestamps { tsval; tsecr } -> Some (tsval, tsecr) | _ -> None)
    h.options

let find_wscale h =
  List.find_map (function Wscale v -> Some v | _ -> None) h.options

let pp_flags fmt f =
  let c b ch = if b then ch else "" in
  Format.fprintf fmt "%s%s%s%s%s%s" (c f.syn "S") (c f.ack ".") (c f.fin "F")
    (c f.rst "R") (c f.psh "P") (c f.urg "U")

let pp_header fmt h =
  Format.fprintf fmt "%d > %d [%a] seq=%a ack=%a win=%d" h.src_port h.dst_port
    pp_flags h.flags Tcp_seq.pp h.seq Tcp_seq.pp h.ack h.window
