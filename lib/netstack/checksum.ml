let ones_complement_sum ?(init = 0) b ~off ~len =
  let sum = ref init in
  let i = ref off in
  let last = off + len in
  while !i + 1 < last do
    sum := !sum + (Char.code (Bytes.get b !i) lsl 8) + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if !i < last then sum := !sum + (Char.code (Bytes.get b !i) lsl 8);
  !sum

let finish sum =
  let s = ref sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xffff) + (!s lsr 16)
  done;
  lnot !s land 0xffff

let compute ?init b ~off ~len = finish (ones_complement_sum ?init b ~off ~len)

let valid ?init b ~off ~len = compute ?init b ~off ~len = 0

(* Slice variants: one bounds check against the borrow window, then the
   summation loop runs on the backing bytes directly. *)
let slice_sum ?init s ~off ~len =
  Dsim.Slice.check s ~off ~len;
  ones_complement_sum ?init (Dsim.Slice.base s)
    ~off:(Dsim.Slice.base_off s + off) ~len

let compute_slice ?init s ~off ~len = finish (slice_sum ?init s ~off ~len)

let valid_slice ?init s ~off ~len = compute_slice ?init s ~off ~len = 0
