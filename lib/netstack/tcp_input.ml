open Tcp_cb

let min_rtt_sample_ns = 1_000.

(* RFC 6298 with timestamp-based samples: every ACK carrying a sane echo
   updates the estimator. *)
let sample_rtt cb ctx tsecr =
  if tsecr <> 0 then begin
    let now_us = ts_now ctx in
    let delta_us = (now_us - tsecr) land 0xFFFFFFFF in
    (* Discard wrapped / insane samples (> 60 s). *)
    if delta_us >= 0 && delta_us < 60_000_000 then begin
      let sample = Float.max (float_of_int delta_us *. 1000.) min_rtt_sample_ns in
      if cb.srtt_ns = 0. then begin
        cb.srtt_ns <- sample;
        cb.rttvar_ns <- sample /. 2.
      end
      else begin
        let delta = Float.abs (cb.srtt_ns -. sample) in
        cb.rttvar_ns <- (0.75 *. cb.rttvar_ns) +. (0.25 *. delta);
        cb.srtt_ns <- (0.875 *. cb.srtt_ns) +. (0.125 *. sample)
      end;
      let rto_ns = cb.srtt_ns +. Float.max (4. *. cb.rttvar_ns) 1000. in
      let rto = Dsim.Time.of_float_ns rto_ns in
      cb.rto <- Dsim.Time.max cb.config.rto_min (Dsim.Time.min rto cb.config.rto_max)
    end
  end

let update_ts_recent cb (hdr : Tcp_wire.header) =
  match Tcp_wire.find_timestamps hdr with
  | Some (tsval, _) when Tcp_seq.le hdr.seq cb.rcv_nxt -> cb.ts_recent <- tsval
  | _ -> ()

let negotiate_wscale cb hdr =
  match Tcp_wire.find_wscale hdr with
  | Some peer_shift ->
    cb.snd_wscale <- min peer_shift 14;
    cb.rcv_wscale <- cb.config.window_scale
  | None ->
    (* Peer did not offer: both sides fall back to unscaled. *)
    cb.snd_wscale <- 0;
    cb.rcv_wscale <- 0

let negotiated_mss cb hdr =
  match Tcp_wire.find_mss hdr with
  | Some peer_mss -> min cb.config.mss peer_mss
  | None -> min cb.config.mss 536

let enter_established cb ctx =
  cb.state <- Established;
  cb.rtx_deadline <- None;
  cb.rtx_backoff <- 0;
  ctx.on_event Connected

(* Our FIN (if sent) is fully acknowledged once snd_una caught up. *)
let fin_acked cb = cb.fin_sent && Tcp_seq.ge cb.snd_una cb.snd_nxt

let post_ack_state_transitions cb ctx =
  match cb.state with
  | Fin_wait_1 when fin_acked cb -> cb.state <- Fin_wait_2
  | Closing when fin_acked cb -> enter_time_wait cb ctx
  | Last_ack when fin_acked cb -> to_closed cb ctx
  | _ -> ()

let congestion_on_new_ack cb ~acked =
  if cb.in_fast_recovery then begin
    if Tcp_seq.ge cb.snd_una cb.recover then begin
      cb.in_fast_recovery <- false;
      cb.cwnd <- cb.ssthresh;
      cb.dup_acks <- 0
    end
  end
  else if cb.cwnd < cb.ssthresh then cb.cwnd <- cb.cwnd + min acked cb.mss
  else cb.cwnd <- cb.cwnd + max 1 (cb.mss * cb.mss / cb.cwnd)

let enter_fast_retransmit cb ctx =
  cb.ssthresh <- max (flight_size cb / 2) (2 * cb.mss);
  cb.recover <- cb.snd_nxt;
  cb.in_fast_recovery <- true;
  Tcp_output.retransmit_head cb ctx;
  cb.cwnd <- cb.ssthresh + (3 * cb.mss)

let process_ack cb ctx (hdr : Tcp_wire.header) ~payload_len =
  if Tcp_seq.gt hdr.ack cb.snd_max then
    (* Acknowledges data we never sent: ack and drop. *)
    cb.need_ack_now <- true
  else if Tcp_seq.gt hdr.ack cb.snd_una then begin
    let acked = Tcp_seq.sub hdr.ack cb.snd_una in
    cb.snd_una <- hdr.ack;
    (* After a go-back-N rollback, the peer's reassembly queue may ack
       past the rolled-back snd_nxt; catch it up. *)
    if Tcp_seq.gt cb.snd_una cb.snd_nxt then cb.snd_nxt <- cb.snd_una;
    cb.snd_wnd <- hdr.window lsl cb.snd_wscale;
    (* Release acknowledged bytes from the send buffer. SYN/FIN occupy
       sequence slots but no buffer bytes, hence the clamping. *)
    let buf_acked =
      let d = Tcp_seq.sub hdr.ack cb.snd_buf_seq in
      max 0 (min d (Ring_buf.length cb.snd_buf))
    in
    if buf_acked > 0 then begin
      Ring_buf.drop cb.snd_buf buf_acked;
      cb.snd_buf_seq <- Tcp_seq.add cb.snd_buf_seq buf_acked
    end;
    (match Tcp_wire.find_timestamps hdr with
    | Some (_, tsecr) -> sample_rtt cb ctx tsecr
    | None -> ());
    congestion_on_new_ack cb ~acked;
    cb.dup_acks <- 0;
    cb.rtx_backoff <- 0;
    cb.rtx_deadline <-
      (if flight_size cb > 0 then Some (Dsim.Time.add (ctx.now ()) cb.rto)
       else None);
    if buf_acked > 0 then ctx.on_event Writable;
    post_ack_state_transitions cb ctx
  end
  else begin
    (* hdr.ack = snd_una: window update or duplicate. *)
    let scaled_wnd = hdr.window lsl cb.snd_wscale in
    let is_dup =
      payload_len = 0 && flight_size cb > 0 && scaled_wnd = cb.snd_wnd
      && not hdr.flags.syn && not hdr.flags.fin
    in
    cb.snd_wnd <- scaled_wnd;
    if is_dup then begin
      cb.dup_acks <- cb.dup_acks + 1;
      if cb.dup_acks = 3 && not cb.in_fast_recovery then
        enter_fast_retransmit cb ctx
    end
  end

let fin_transition cb ctx =
  cb.fin_received <- true;
  cb.rcv_nxt <- Tcp_seq.add cb.rcv_nxt 1;
  cb.need_ack_now <- true;
  ctx.on_event Peer_closed;
  match cb.state with
  | Established -> cb.state <- Close_wait
  | Fin_wait_1 -> if fin_acked cb then enter_time_wait cb ctx else cb.state <- Closing
  | Fin_wait_2 -> enter_time_wait cb ctx
  | Syn_received -> cb.state <- Close_wait
  | Closed | Listen | Syn_sent | Close_wait | Closing | Last_ack | Time_wait -> ()

(* Reassembly queue: segments ahead of rcv_nxt wait (sorted, bounded)
   until the gap fills, then drain in order. *)
let ooo_insert cb ctx ~seq payload =
  if List.length cb.ooo_queue < cb.config.max_ooo_segments then begin
    let rec insert = function
      | [] -> [ (seq, payload) ]
      | ((s, _) as hd) :: rest ->
        if Tcp_seq.lt seq s then (seq, payload) :: hd :: rest
        else if s = seq then hd :: rest (* duplicate: keep the first *)
        else hd :: insert rest
    in
    cb.ooo_queue <- insert cb.ooo_queue
  end
  else
    (* Queue full, drop — the sender retransmits. *)
    ctx.stat (Rx_drop Dsim.Flowtrace.Out_of_window)

(* The in-order payload is a region of [buf] — on the live RX path the
   borrowed frame itself — consumed here with a single blit into the
   receive ring. *)
let rec accept_in_order cb ctx ~seq ~buf ~off ~len =
  (* Trim any prefix we already consumed (retransmission overlap). *)
  let skip = min len (max 0 (Tcp_seq.sub cb.rcv_nxt seq)) in
  let fresh = len - skip in
  if fresh > 0 then begin
    let accepted = Ring_buf.write cb.rcv_buf buf ~off:(off + skip) ~len:fresh in
    if accepted > 0 then begin
      cb.rcv_nxt <- Tcp_seq.add cb.rcv_nxt accepted;
      cb.bytes_in <- cb.bytes_in + accepted;
      ctx.on_event Data_readable
    end;
    if accepted < fresh then begin
      (* Receive buffer overrun: the tail will be retransmitted. *)
      ctx.stat (Rx_drop Dsim.Flowtrace.Rcv_buf_full);
      cb.need_ack_now <- true
    end
    else drain_ooo cb ctx
  end

and drain_ooo cb ctx =
  match cb.ooo_queue with
  | (seq, payload) :: rest when Tcp_seq.le seq cb.rcv_nxt ->
    cb.ooo_queue <- rest;
    if Tcp_seq.ge (Tcp_seq.add seq (Bytes.length payload)) cb.rcv_nxt then begin
      accept_in_order cb ctx ~seq ~buf:payload ~off:0
        ~len:(Bytes.length payload);
      cb.need_ack_now <- true
    end
    else drain_ooo cb ctx (* fully stale entry *)
  | _ -> ()

let process_payload cb ctx (hdr : Tcp_wire.header) ~buf ~off ~len =
  let seg_fin = hdr.flags.fin in
  if len = 0 && not seg_fin then ()
  else begin
    let seq = hdr.seq in
    if Tcp_seq.gt seq cb.rcv_nxt then begin
      (* Ahead of the expected sequence: park it in the reassembly
         queue and duplicate-ACK so the sender fast-retransmits the
         missing piece. The copy is mandatory — the reassembly queue
         outlives the borrowed frame. *)
      if len > 0 then ooo_insert cb ctx ~seq (Bytes.sub buf off len);
      cb.need_ack_now <- true
    end
    else begin
      let fresh = len - min len (Tcp_seq.sub cb.rcv_nxt seq) in
      if fresh > 0 then begin
        accept_in_order cb ctx ~seq ~buf ~off ~len;
        cb.segs_since_ack <- cb.segs_since_ack + 1;
        if cb.segs_since_ack >= cb.config.ack_every_segments then
          cb.need_ack_now <- true
        else if cb.ack_deadline = None then
          cb.ack_deadline <-
            Some (Dsim.Time.add (ctx.now ()) cb.config.delayed_ack_timeout)
      end
      else if len > 0 then begin
        (* Pure duplicate segment. *)
        ctx.stat (Rx_drop Dsim.Flowtrace.Dup_segment);
        cb.need_ack_now <- true
      end;
      (* The FIN is consumable only when it sits exactly at the left
         window edge: all bytes before it held, none beyond it claimed.
         (A FIN whose data was parked in the reassembly queue loses its
         flag; the peer's FIN retransmission recovers it.) A FIN whose
         edge lands *before* rcv_nxt on a connection that never saw the
         peer's FIN is a blind close forgery — the genuine peer cannot
         place its FIN under data it already had acknowledged — so it
         gets a typed drop and a challenge ACK instead of a teardown. *)
      if seg_fin && not cb.fin_received then begin
        let fin_edge = Tcp_seq.add seq len in
        if fin_edge = cb.rcv_nxt then fin_transition cb ctx
        else if Tcp_seq.lt fin_edge cb.rcv_nxt then begin
          ctx.stat (Rx_drop Dsim.Flowtrace.Out_of_window);
          cb.need_ack_now <- true
        end
      end
    end
  end

let process_syn_sent cb ctx (hdr : Tcp_wire.header) =
  if hdr.flags.rst then begin
    if hdr.flags.ack && hdr.ack = cb.snd_nxt then begin
      ctx.on_event Conn_refused;
      to_closed cb ctx
    end
  end
  else if hdr.flags.syn && hdr.flags.ack && hdr.ack = cb.snd_nxt then begin
    cb.irs <- hdr.seq;
    cb.rcv_nxt <- Tcp_seq.add hdr.seq 1;
    cb.snd_una <- hdr.ack;
    (* The SYN-ACK's own window field is unscaled. *)
    cb.snd_wnd <- hdr.window;
    cb.mss <- negotiated_mss cb hdr;
    negotiate_wscale cb hdr;
    (match Tcp_wire.find_timestamps hdr with
    | Some (tsval, tsecr) ->
      cb.ts_recent <- tsval;
      sample_rtt cb ctx tsecr
    | None -> ());
    enter_established cb ctx;
    cb.need_ack_now <- true
  end
  (* Simultaneous open is not supported; a bare SYN is ignored. *)

let process_time_wait cb ctx (hdr : Tcp_wire.header) =
  if hdr.flags.fin then begin
    (* Retransmitted FIN: re-ACK and restart 2MSL. *)
    cb.need_ack_now <- true;
    enter_time_wait cb ctx
  end

let process cb ctx (hdr : Tcp_wire.header) ~buf ~off ~len =
  cb.segments_in <- cb.segments_in + 1;
  match cb.state with
  | Closed | Listen -> ()
  | Syn_sent -> process_syn_sent cb ctx hdr
  | Time_wait -> process_time_wait cb ctx hdr
  | Syn_received | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing
  | Last_ack ->
    if hdr.flags.rst then begin
      if
        Tcp_seq.between hdr.seq ~low:cb.rcv_nxt
          ~high:(Tcp_seq.add cb.rcv_nxt (max 1 (rcv_window cb)))
        || hdr.seq = cb.rcv_nxt
      then begin
        ctx.on_event Conn_reset;
        to_closed cb ctx
      end
      else begin
        (* RFC 5961 §3: an out-of-window RST is a blind-reset guess.
           Typed drop plus a challenge ACK — the genuine peer (if it
           really did reset) answers the challenge with an in-window
           RST; an attacker learns nothing. *)
        ctx.stat (Rx_drop Dsim.Flowtrace.Out_of_window);
        cb.need_ack_now <- true
      end
    end
    else if hdr.flags.syn then begin
      (* RFC 5961 §4: a SYN in a synchronised state must never tear the
         connection down — a blind attacker would need exactly one
         forged segment otherwise. A duplicate of the original SYN in
         Syn_received means our SYN-ACK was lost: resend it. Everything
         else draws a typed drop and a challenge ACK. *)
      if cb.state = Syn_received && hdr.seq = cb.irs then
        Tcp_output.send_syn_ack cb ctx
      else begin
        ctx.stat (Rx_drop Dsim.Flowtrace.Out_of_window);
        cb.need_ack_now <- true
      end
    end
    else if not hdr.flags.ack then ()
    else begin
      update_ts_recent cb hdr;
      (if cb.state = Syn_received then begin
         if hdr.ack = cb.snd_nxt then enter_established cb ctx
         else if Tcp_seq.gt hdr.ack cb.snd_nxt then cb.need_ack_now <- true
       end);
      if cb.state <> Syn_received then begin
        process_ack cb ctx hdr ~payload_len:len;
        process_payload cb ctx hdr ~buf ~off ~len
      end
    end

let accept_syn cb ctx (hdr : Tcp_wire.header) ~iss =
  cb.irs <- hdr.seq;
  cb.rcv_nxt <- Tcp_seq.add hdr.seq 1;
  cb.iss <- iss;
  cb.snd_una <- iss;
  cb.snd_nxt <- Tcp_seq.add iss 1;
  cb.snd_max <- cb.snd_nxt;
  cb.snd_buf_seq <- Tcp_seq.add iss 1;
  cb.snd_wnd <- hdr.window;
  cb.mss <- negotiated_mss cb hdr;
  negotiate_wscale cb hdr;
  (match Tcp_wire.find_timestamps hdr with
  | Some (tsval, _) -> cb.ts_recent <- tsval
  | None -> ());
  cb.state <- Syn_received;
  Tcp_output.send_syn_ack cb ctx
