(** TCP segment wire format (RFC 793 + MSS, window-scale and timestamp
    options).

    With the timestamp option on every data segment — as FreeBSD (and
    hence F-Stack) enables by default — the MSS over a 1500-byte MTU is
    1448 bytes, which is what makes 94.1% the theoretical single-port
    efficiency in Table II. *)

type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  urg : bool;
}

val flag : ?syn:bool -> ?ack:bool -> ?fin:bool -> ?rst:bool -> ?psh:bool -> ?urg:bool -> unit -> flags

type option_ =
  | Mss of int
  | Wscale of int
  | Timestamps of { tsval : int; tsecr : int }
  | Unknown_option of int

type header = {
  src_port : int;
  dst_port : int;
  seq : Tcp_seq.t;
  ack : Tcp_seq.t;
  flags : flags;
  window : int;
  options : option_ list;
}

val base_header_len : int
(** 20 bytes, before options. *)

val header_len : header -> int
(** With options, padded to 4 bytes. *)

val build :
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> header -> payload:bytes -> bytes
(** Segment bytes including checksum over the pseudo-header. *)

val write_header :
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> header -> bytes -> off:int ->
  payload_len:int -> int
(** In-place variant: the payload must already sit at
    [off + header_len h]; writes the header at [off] and the checksum
    over the whole segment where it lies. Returns the header length. *)

val parse :
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> bytes -> off:int -> len:int ->
  (header * int, string) result
(** Validates the checksum; returns the header and payload offset. *)

val find_mss : header -> int option
val find_timestamps : header -> (int * int) option
val find_wscale : header -> int option
val pp_header : Format.formatter -> header -> unit
