(** Packet buffers and their pools (rte_mbuf / rte_mempool).

    Each mbuf owns a fixed-size buffer in simulated memory and a
    capability bounded to exactly that buffer; all payload access goes
    through the capability, so an off-by-one on a packet is a
    capability fault, not a heap overflow — the property the paper's
    port of DPDK establishes by "ensuring that the memory allocations
    ... are performed with the correct permission flags".

    Geometry follows rte_pktmbuf: a headroom gap precedes the data so
    headers can be prepended without copying. *)

type pool
type t

val pool_create :
  Eal.t -> name:string -> n:int -> buf_len:int -> ?headroom:int -> unit -> pool
(** [n] buffers of [buf_len] bytes each (headroom included in
    [buf_len]), backed by a fresh memzone. *)

val pool_name : pool -> string
val available : pool -> int
val capacity : pool -> int

val alloc_failures : pool -> int
(** Allocation attempts refused because the pool was empty (also the
    [dpdk_mbuf_alloc_failures_total] metric). *)

val alloc : pool -> t option
(** [None] when the pool is exhausted (the poll loops treat this as
    back-pressure, counted — never an exception). Data offset starts at
    the headroom, length 0. *)

val free : t -> unit
(** Return to the owning pool.
    @raise Cheri.Fault.Capability_fault (tag violation) on double free —
    a second free is a use of a revoked reference, and raising it as a
    capability fault lets the supervisor contain it to the offending
    compartment. *)

(** {1 Geometry} *)

val buf_addr : t -> int
val buf_len : t -> int
val data_addr : t -> int
(** Absolute address of the first payload byte. *)

val data_len : t -> int
val headroom : t -> int
val tailroom : t -> int
val cap : t -> Cheri.Capability.t
(** The buffer-bounded capability (read-write over the whole buffer). *)

val reset : t -> unit
(** Restore the freshly-allocated geometry (and clear the flow trace). *)

(** {1 Flow tracing} *)

val flow : t -> Dsim.Flowtrace.ctx option
val set_flow : t -> Dsim.Flowtrace.ctx option -> unit
(** A sampled frame's trace context rides on the mbuf through the
    rx/tx rings, like rte_mbuf's dynamic fields carry per-packet
    metadata; cleared on {!alloc}/{!reset}. *)

val append : t -> int -> int
(** Extend the data region at the tail by [n]; returns the absolute
    address of the new region. @raise Invalid_argument beyond tailroom. *)

val prepend : t -> int -> int
(** Extend at the head into the headroom; returns the new data address. *)

val trim : t -> int -> unit
(** Shrink from the tail. *)

val adj : t -> int -> unit
(** Strip [n] bytes at the head (rte_pktmbuf_adj) — e.g. consume the
    Ethernet header. *)

(** {1 Payload access (capability-checked)} *)

val write : Cheri.Tagged_memory.t -> t -> off:int -> bytes -> unit
(** [off] is relative to {!data_addr}; must be within the data region. *)

val read : Cheri.Tagged_memory.t -> t -> off:int -> len:int -> bytes
val contents : Cheri.Tagged_memory.t -> t -> bytes
(** The whole data region. *)

(** {1 Borrows (zero-copy access)}

    One capability check for the whole region, then in-place access
    through the returned slice — the rte_mbuf discipline, where the
    stack parses and builds frames in the buffer the NIC DMAs from.
    Slice accesses escaping the window raise [Cheri.Fault], see
    {!Cheri.Tagged_memory.borrow}. The slice aliases the buffer: it
    must not be used after {!free}. *)

val borrow : Cheri.Tagged_memory.t -> t -> Dsim.Slice.t
(** Read borrow of the data region (RX parse-in-place). *)

val borrow_frame : Cheri.Tagged_memory.t -> t -> Dsim.Slice.t
(** Write borrow of the {e whole} buffer — headroom included — so TX can
    lay the payload down once and {!prepend} headers in place. Slice
    offsets are buffer-relative: the data region starts at
    {!headroom}. Clears the window's tags, as raw stores would. *)
