(** Poll-mode ethdev: the rte_eth_rx_burst / rte_eth_tx_burst surface.

    Owns the descriptor-ring bookkeeping for one NIC port: keeps the RX
    ring stocked with mbufs from the port's pool, translates completed
    descriptors back to mbufs, and recycles transmitted buffers. All in
    polling mode — there are no interrupts anywhere, matching DPDK.

    One [t] binds one {e queue} of a port (default 0): with a
    multi-queue NIC ({!Nic.Igb.create} [?queues]), attach one ethdev
    per queue, each with its own mbuf pool — the
    rte_eth_rx_queue_setup-with-per-queue-mempool configuration.
    Instances on different queues of one port share no mutable state,
    so each can be polled by its own stack loop (and placed on its own
    engine shard). *)

type t

val attach :
  Eal.t -> Nic.Igb.port -> ?queue:int -> rx_pool:Mbuf.pool -> unit -> t
(** @raise Invalid_argument when [queue] is out of range for the port. *)

val start : t -> unit
(** Fill the RX ring from the pool. Must be called once before polling. *)

val port : t -> Nic.Igb.port
val queue : t -> int
val rx_pool : t -> Mbuf.pool

val rx_burst : t -> max:int -> Mbuf.t list
(** Completed receives (data region = the frame). Ownership moves to the
    caller, who must {!Mbuf.free} each buffer when done. The ring is
    restocked from the pool on every call; pool exhaustion (caller
    sitting on buffers) leaves the ring short — hardware back-pressure. *)

val tx_burst : t -> Mbuf.t list -> Mbuf.t list
(** Enqueue frames for transmission; returns the *rejected* suffix when
    the TX ring fills (caller keeps ownership of those, as in DPDK's
    partial-burst contract). Accepted mbufs are freed automatically once
    the wire is done with them. *)

val reap : t -> unit
(** Recycle completed TX buffers; called internally by both bursts, and
    callable from an idle loop. *)

val tx_backlog : t -> int
(** Frames enqueued to the device and not yet completed. *)
