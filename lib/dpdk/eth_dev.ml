type t = {
  port : Nic.Igb.port;
  queue : int;
  rx_pool : Mbuf.pool;
  in_flight : (int, Mbuf.t) Hashtbl.t;  (* posted addr -> owning mbuf *)
  m_rx_bursts : Dsim.Metrics.counter;
  m_tx_bursts : Dsim.Metrics.counter;
  m_rx_packets : Dsim.Metrics.counter;
  m_tx_packets : Dsim.Metrics.counter;
  m_rx_bytes : Dsim.Metrics.counter;
  m_tx_bytes : Dsim.Metrics.counter;
  m_drops : Dsim.Metrics.gauge;
  m_tx_backlog : Dsim.Metrics.gauge;
  m_rx_free : Dsim.Metrics.gauge;
}

let attach _eal port ?(queue = 0) ~rx_pool () =
  if queue < 0 || queue >= Nic.Igb.num_queues port then
    invalid_arg (Printf.sprintf "Eth_dev.attach: no queue %d" queue);
  let reg = Dsim.Metrics.default in
  (* Queue 0 keeps the pre-multi-queue label set so single-queue metric
     series are unchanged; extra queues get their own series. *)
  let p = [ ("port", Nic.Mac_addr.to_string (Nic.Igb.mac port)) ] in
  let p = if queue = 0 then p else p @ [ ("queue", string_of_int queue) ] in
  let dir d = ("dir", d) :: p in
  {
    port;
    queue;
    rx_pool;
    in_flight = Hashtbl.create 512;
    m_rx_bursts =
      Dsim.Metrics.counter reg ~help:"Non-empty PMD bursts, by direction."
        ~labels:(dir "rx") "dpdk_bursts_total";
    m_tx_bursts =
      Dsim.Metrics.counter reg ~help:"Non-empty PMD bursts, by direction."
        ~labels:(dir "tx") "dpdk_bursts_total";
    m_rx_packets =
      Dsim.Metrics.counter reg ~help:"Packets through the PMD, by direction."
        ~labels:(dir "rx") "dpdk_packets_total";
    m_tx_packets =
      Dsim.Metrics.counter reg ~help:"Packets through the PMD, by direction."
        ~labels:(dir "tx") "dpdk_packets_total";
    m_rx_bytes =
      Dsim.Metrics.counter reg
        ~help:"Frame bytes DMAed between tagged memory and the wire."
        ~labels:(dir "rx") "nic_dma_bytes_total";
    m_tx_bytes =
      Dsim.Metrics.counter reg
        ~help:"Frame bytes DMAed between tagged memory and the wire."
        ~labels:(dir "tx") "nic_dma_bytes_total";
    m_drops =
      Dsim.Metrics.gauge reg
        ~help:"Device drops so far (RX ring empty + MAC filter + TX ring full)."
        ~labels:p "nic_drops";
    m_tx_backlog =
      Dsim.Metrics.gauge reg ~help:"TX descriptors posted but not reaped."
        ~labels:p "dpdk_tx_ring_backlog";
    m_rx_free =
      Dsim.Metrics.gauge reg ~help:"Empty RX descriptors available to the device."
        ~labels:p "dpdk_rx_ring_free";
  }

let sync_rings t =
  if Dsim.Metrics.enabled Dsim.Metrics.default then begin
    Dsim.Metrics.set t.m_tx_backlog
      (Nic.Igb.tx_in_flight ~queue:t.queue t.port);
    Dsim.Metrics.set t.m_rx_free
      (Nic.Igb.rx_free_slots ~queue:t.queue t.port);
    let s = Nic.Igb.stats t.port in
    Dsim.Metrics.set t.m_drops
      Nic.Port_stats.(s.rx_no_desc + s.rx_filtered + s.tx_ring_full)
  end

let port t = t.port
let queue t = t.queue
let rx_pool t = t.rx_pool

let post_rx t m =
  (* The device writes at the mbuf's data address, leaving the headroom
     available for (de)encapsulation by the stack. *)
  let addr = Mbuf.data_addr m in
  let room = Mbuf.tailroom m in
  if Nic.Igb.rx_refill ~queue:t.queue t.port ~addr ~len:room then begin
    Hashtbl.replace t.in_flight addr m;
    true
  end
  else begin
    Mbuf.free m;
    false
  end

let restock t =
  let rec go () =
    if Nic.Igb.rx_free_slots ~queue:t.queue t.port > 0 then
      match Mbuf.alloc t.rx_pool with
      | None -> ()
      | Some m -> if post_rx t m then go ()
  in
  go ()

let start t = restock t

let reap t =
  List.iter
    (fun addr ->
      match Hashtbl.find_opt t.in_flight addr with
      | Some m ->
        Hashtbl.remove t.in_flight addr;
        Mbuf.free m
      | None -> ())
    (Nic.Igb.tx_reap ~queue:t.queue t.port ~max:max_int)

let rx_burst t ~max =
  reap t;
  let completions = Nic.Igb.rx_burst ~queue:t.queue t.port ~max in
  let now = Dsim.Engine.now (Nic.Igb.engine t.port) in
  let take (addr, pkt_len, flow) =
    match Hashtbl.find_opt t.in_flight addr with
    | None -> None
    | Some m ->
      Hashtbl.remove t.in_flight addr;
      (* Geometry: the device filled [pkt_len] bytes at the data
         address; reflect that in the mbuf. *)
      ignore (Mbuf.append m pkt_len);
      Dsim.Flowtrace.hop flow Rx_ring ~at:now;
      Mbuf.set_flow m flow;
      Some m
  in
  let mbufs = List.filter_map take completions in
  restock t;
  if mbufs <> [] then begin
    Dsim.Metrics.incr t.m_rx_bursts;
    Dsim.Metrics.incr t.m_rx_packets ~by:(List.length mbufs);
    Dsim.Metrics.incr t.m_rx_bytes
      ~by:(List.fold_left (fun n m -> n + Mbuf.data_len m) 0 mbufs)
  end;
  sync_rings t;
  mbufs

let tx_burst t mbufs =
  reap t;
  let rec go sent bytes = function
    | [] -> (sent, bytes, [])
    | m :: rest ->
      let addr = Mbuf.data_addr m in
      let len = Mbuf.data_len m in
      if
        Nic.Igb.tx_enqueue ~queue:t.queue t.port ~flow:(Mbuf.flow m) ~addr ~len
          ()
      then begin
        Hashtbl.replace t.in_flight addr m;
        go (sent + 1) (bytes + len) rest
      end
      else (sent, bytes, m :: rest)
  in
  let sent, bytes, leftover = go 0 0 mbufs in
  if sent > 0 then begin
    Dsim.Metrics.incr t.m_tx_bursts;
    Dsim.Metrics.incr t.m_tx_packets ~by:sent;
    Dsim.Metrics.incr t.m_tx_bytes ~by:bytes
  end;
  sync_rings t;
  leftover

let tx_backlog t = Nic.Igb.tx_in_flight ~queue:t.queue t.port
