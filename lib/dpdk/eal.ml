type t = {
  engine : Dsim.Engine.t;
  mem : Cheri.Tagged_memory.t;
  alloc : Cheri.Alloc.t;
  zones : (string, Cheri.Capability.t) Hashtbl.t;
}

let create engine mem ~region =
  {
    engine;
    mem;
    alloc = Cheri.Alloc.create ~label:"memzone" ~region ();
    zones = Hashtbl.create 16;
  }

let engine t = t.engine
let mem t = t.mem

let memzone_reserve t ~name ~size =
  if Hashtbl.mem t.zones name then
    invalid_arg ("Eal.memzone_reserve: duplicate zone " ^ name);
  let cap = Cheri.Alloc.malloc t.alloc size in
  Hashtbl.replace t.zones name cap;
  cap

let memzone_lookup t ~name = Hashtbl.find_opt t.zones name
let free_bytes t = Cheri.Alloc.free_bytes t.alloc
