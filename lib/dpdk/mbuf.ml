type pool = {
  name : string;
  mem : Cheri.Tagged_memory.t;
  free_list : t Queue.t;
  capacity : int;
  mutable alloc_failures : int;
  in_use_metric : Dsim.Metrics.gauge;
  alloc_fail_metric : Dsim.Metrics.counter;
  wm : Dsim.Watermark.cell;
}

and t = {
  pool : pool;
  bcap : Cheri.Capability.t;
  buf_addr : int;
  buf_len : int;
  default_headroom : int;
  mutable data_off : int;
  mutable data_len : int;
  mutable in_use : bool;
  mutable flow : Dsim.Flowtrace.ctx option;
}

let pool_create eal ~name ~n ~buf_len ?(headroom = 128) () =
  if n <= 0 || buf_len <= 0 then invalid_arg "Mbuf.pool_create: bad geometry";
  if headroom >= buf_len then invalid_arg "Mbuf.pool_create: headroom >= buf_len";
  let zone = Eal.memzone_reserve eal ~name:("mbuf-" ^ name) ~size:(n * buf_len) in
  let mem = Eal.mem eal in
  let pool =
    {
      name;
      mem;
      free_list = Queue.create ();
      capacity = n;
      alloc_failures = 0;
      in_use_metric =
        Dsim.Metrics.gauge Dsim.Metrics.default
          ~help:"Mbufs currently allocated from the pool."
          ~labels:[ ("pool", name) ] "dpdk_mbuf_in_use";
      alloc_fail_metric =
        Dsim.Metrics.counter Dsim.Metrics.default
          ~help:"Allocation attempts refused because the pool was empty."
          ~labels:[ ("pool", name) ] "dpdk_mbuf_alloc_failures_total";
      wm =
        Dsim.Watermark.(cell default) ~capacity:n
          ~labels:[ ("pool", name) ] "mbuf_pool";
    }
  in
  for i = 0 to n - 1 do
    let off = i * buf_len in
    let bcap =
      Cheri.Capability.derive zone ~offset:off ~length:buf_len
        ~perms:Cheri.Perms.data
    in
    Cheri.Provenance.record_derive ~label:"mbuf" ~parent:zone bcap;
    Queue.push
      {
        pool;
        bcap;
        buf_addr = Cheri.Capability.base bcap;
        buf_len;
        default_headroom = headroom;
        data_off = headroom;
        data_len = 0;
        in_use = false;
        flow = None;
      }
      pool.free_list
  done;
  pool

let pool_name p = p.name
let available p = Queue.length p.free_list
let capacity p = p.capacity
let alloc_failures p = p.alloc_failures

let reset m =
  m.data_off <- m.default_headroom;
  m.data_len <- 0;
  m.flow <- None

let flow m = m.flow
let set_flow m f = m.flow <- f

let alloc p =
  if Queue.is_empty p.free_list then begin
    (* Exhaustion is a counted, recoverable condition — callers turn the
       [None] into a typed drop, never an exception. *)
    p.alloc_failures <- p.alloc_failures + 1;
    Dsim.Metrics.incr p.alloc_fail_metric;
    Dsim.Watermark.(stall p.wm Pool_exhausted);
    None
  end
  else begin
    let m = Queue.pop p.free_list in
    m.in_use <- true;
    reset m;
    Dsim.Metrics.add p.in_use_metric 1;
    Dsim.Watermark.observe p.wm (p.capacity - Queue.length p.free_list);
    Some m
  end

let free m =
  if not m.in_use then
    (* A second free is a use of a revoked reference: raise it as the
       tag violation it models so the supervisor can contain it to the
       offending compartment instead of unwinding the whole simulation. *)
    Cheri.Fault.raise_fault Cheri.Fault.Tag_violation ~address:m.buf_addr
      ~detail:"Mbuf.free: double free";
  m.in_use <- false;
  (* Drop the trace context now, not at the next alloc: a free pool
     buffer must not pin trace records live across reuse. *)
  m.flow <- None;
  Dsim.Metrics.add m.pool.in_use_metric (-1);
  Queue.push m m.pool.free_list;
  Dsim.Watermark.observe m.pool.wm
    (m.pool.capacity - Queue.length m.pool.free_list)

let buf_addr m = m.buf_addr
let buf_len m = m.buf_len
let data_addr m = m.buf_addr + m.data_off
let data_len m = m.data_len
let headroom m = m.data_off
let tailroom m = m.buf_len - m.data_off - m.data_len
let cap m = m.bcap

let append m n =
  if n < 0 || n > tailroom m then
    invalid_arg (Printf.sprintf "Mbuf.append: %d exceeds tailroom %d" n (tailroom m));
  let addr = data_addr m + m.data_len in
  m.data_len <- m.data_len + n;
  addr

let prepend m n =
  if n < 0 || n > m.data_off then
    invalid_arg (Printf.sprintf "Mbuf.prepend: %d exceeds headroom %d" n m.data_off);
  m.data_off <- m.data_off - n;
  m.data_len <- m.data_len + n;
  data_addr m

let trim m n =
  if n < 0 || n > m.data_len then invalid_arg "Mbuf.trim: beyond data length";
  m.data_len <- m.data_len - n

let adj m n =
  if n < 0 || n > m.data_len then invalid_arg "Mbuf.adj: beyond data length";
  m.data_off <- m.data_off + n;
  m.data_len <- m.data_len - n

let write mem m ~off b =
  let len = Bytes.length b in
  if off < 0 || off + len > m.data_len then
    invalid_arg "Mbuf.write: outside data region";
  Cheri.Tagged_memory.blit_in mem ~cap:m.bcap ~addr:(data_addr m + off) ~src:b
    ~src_off:0 ~len

let read mem m ~off ~len =
  if off < 0 || len < 0 || off + len > m.data_len then
    invalid_arg "Mbuf.read: outside data region";
  let dst = Bytes.create len in
  Cheri.Tagged_memory.blit_out mem ~cap:m.bcap ~addr:(data_addr m + off) ~dst
    ~dst_off:0 ~len;
  dst

let contents mem m = read mem m ~off:0 ~len:m.data_len

let borrow mem m =
  Cheri.Tagged_memory.borrow mem ~cap:m.bcap ~addr:(data_addr m) ~len:m.data_len

let borrow_frame mem m =
  Cheri.Tagged_memory.borrow_mut mem ~cap:m.bcap ~addr:m.buf_addr ~len:m.buf_len
