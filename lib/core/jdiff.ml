(* First-divergence diffing between two recorded journals: find the
   first diverging dispatch, walk the causal parent edges back to the
   last common ancestor, and summarize per-component drift after the
   split. *)

module Json = Dsim.Json
module Journal = Dsim.Journal

type divergence = {
  dv_seq : int;
  dv_field : string;
  dv_a : Journal.dispatch option;
  dv_b : Journal.dispatch option;
  dv_ancestor : Journal.dispatch option;
}

type report = {
  path_a : string;
  path_b : string;
  count_a : int;
  count_b : int;
  divergence : divergence option;
  text : string;
}

let default_context = 5

let field_diff (a : Journal.dispatch) (b : Journal.dispatch) =
  if a.Journal.d_at_ns <> b.Journal.d_at_ns then Some "virtual_time"
  else if not (String.equal a.Journal.d_label b.Journal.d_label) then
    Some "label"
  else if a.Journal.d_parent <> b.Journal.d_parent then Some "causal_parent"
  else if a.Journal.d_rng <> b.Journal.d_rng then Some "rng_draws"
  else None

let first_divergence a b =
  let na = Journal.dispatch_count a and nb = Journal.dispatch_count b in
  let common = min na nb in
  let rec scan i =
    if i >= common then
      if na = nb then None
      else
        Some
          {
            dv_seq = common;
            dv_field =
              (if na > nb then "extra_dispatch_in_a"
               else "extra_dispatch_in_b");
            dv_a = (if na > nb then Some (Journal.dispatch_at a common) else None);
            dv_b = (if nb > na then Some (Journal.dispatch_at b common) else None);
            dv_ancestor = None;
          }
    else
      let da = Journal.dispatch_at a i and db = Journal.dispatch_at b i in
      match field_diff da db with
      | None -> scan (i + 1)
      | Some f ->
        Some
          {
            dv_seq = i;
            dv_field = f;
            dv_a = Some da;
            dv_b = Some db;
            dv_ancestor = None;
          }
  in
  scan 0

(* Causal chain: parent edges from [seq] back to a root (-1). Every
   seq strictly below the divergence point is common to both journals
   (prefix property), so chains through the common prefix can be read
   off either journal. *)
let chain l ~seq =
  let rec walk s acc =
    if s < 0 || s >= Journal.dispatch_count l then List.rev acc
    else
      let d = Journal.dispatch_at l s in
      (* Parents always precede children; a malformed journal must not
         loop the walk. *)
      let next = if d.Journal.d_parent >= s then -1 else d.Journal.d_parent in
      walk next (d :: acc)
  in
  walk seq []
(* head = [seq] itself, tail walks toward the root *)

(* Last common ancestor of the two diverging dispatches: both parent
   chains live in the common prefix once they step below [dv_seq], so
   the first seq on A's chain that also appears on B's chain is the
   nearest common causal ancestor. *)
let ancestor a b ~div_seq ~pa ~pb =
  ignore b;
  let in_b = Hashtbl.create 32 in
  List.iter
    (fun (d : Journal.dispatch) ->
      if d.Journal.d_seq < div_seq then
        Hashtbl.replace in_b d.Journal.d_seq ())
    (chain a ~seq:pb);
  (* pb < div_seq, so B's parent chain is readable from journal A. *)
  let rec find = function
    | [] -> None
    | (d : Journal.dispatch) :: rest ->
      if d.Journal.d_seq < div_seq && Hashtbl.mem in_b d.Journal.d_seq then
        Some d
      else find rest
  in
  find (chain a ~seq:pa)

let component_of label =
  match String.index_opt label ':' with
  | Some i -> String.sub label 0 i
  | None -> label

(* Per-component dispatch counts from [lo] to the end of the journal:
   where the two runs spent their post-divergence events. *)
let drift l ~lo =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  for i = lo to Journal.dispatch_count l - 1 do
    let c = component_of (Journal.dispatch_at l i).Journal.d_label in
    match Hashtbl.find_opt tbl c with
    | Some n -> Hashtbl.replace tbl c (n + 1)
    | None ->
      Hashtbl.replace tbl c 1;
      order := c :: !order
  done;
  (tbl, List.rev !order)

let pp_dispatch (d : Journal.dispatch) =
  Printf.sprintf "seq=%d at=%dns label=%s parent=%d rng=%d" d.Journal.d_seq
    d.Journal.d_at_ns d.Journal.d_label d.Journal.d_parent d.Journal.d_rng

let pp_opt = function None -> "(none)" | Some d -> pp_dispatch d

let pp_chain l ~seq buf =
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (d : Journal.dispatch) -> pr "    %s\n" (pp_dispatch d))
    (chain l ~seq)

let render ~path_a ~path_b ~context a b = function
  | None ->
    Printf.sprintf
      "jdiff: %s vs %s\ndispatches: A=%d B=%d\nOK — journals are equivalent\n"
      path_a path_b
      (Journal.dispatch_count a)
      (Journal.dispatch_count b)
  | Some dv ->
    let buf = Buffer.create 2048 in
    let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    pr "jdiff: %s vs %s\n" path_a path_b;
    pr "dispatches: A=%d B=%d\n"
      (Journal.dispatch_count a)
      (Journal.dispatch_count b);
    pr "FIRST DIVERGENCE at seq %d (field %s)\n" dv.dv_seq dv.dv_field;
    pr "  A: %s\n" (pp_opt dv.dv_a);
    pr "  B: %s\n" (pp_opt dv.dv_b);
    (match dv.dv_ancestor with
    | Some anc ->
      pr "last common causal ancestor:\n  %s\n" (pp_dispatch anc);
      (match dv.dv_a with
      | Some da ->
        pr "  causal chain A (diverging dispatch -> root):\n";
        pp_chain a ~seq:da.Journal.d_seq buf
      | None -> ());
      (match dv.dv_b with
      | Some db ->
        pr "  causal chain B (diverging dispatch -> root):\n";
        pp_chain b ~seq:db.Journal.d_seq buf
      | None -> ())
    | None ->
      pr "last common causal ancestor: (none — root-scheduled or length \
          mismatch)\n");
    pr "common-prefix context (±%d events around seq %d, journal A):\n"
      context dv.dv_seq;
    List.iter
      (fun (d : Journal.dispatch) ->
        pr "  %c %s\n"
          (if d.Journal.d_seq = dv.dv_seq then '>' else ' ')
          (pp_dispatch d))
      (Journal.context a ~seq:dv.dv_seq ~k:context);
    let ta, order_a = drift a ~lo:dv.dv_seq in
    let tb, order_b = drift b ~lo:dv.dv_seq in
    let components =
      order_a @ List.filter (fun c -> not (List.mem c order_a)) order_b
    in
    pr "per-component drift (dispatches from seq %d on):\n" dv.dv_seq;
    pr "  %-20s %8s %8s %8s\n" "component" "A" "B" "delta";
    List.iter
      (fun c ->
        let na = Option.value ~default:0 (Hashtbl.find_opt ta c) in
        let nb = Option.value ~default:0 (Hashtbl.find_opt tb c) in
        pr "  %-20s %8d %8d %+8d\n" c na nb (nb - na))
      components;
    Buffer.contents buf

let compare_loaded ?(context = default_context) ~path_a ~path_b a b =
  let divergence =
    match first_divergence a b with
    | None -> None
    | Some dv ->
      let anc =
        match (dv.dv_a, dv.dv_b) with
        | Some da, Some db ->
          ancestor a b ~div_seq:dv.dv_seq ~pa:da.Journal.d_parent
            ~pb:db.Journal.d_parent
        | _ ->
          (* Length mismatch: the longer journal's extra dispatch still
             has a parent in the common prefix — report it directly. *)
          let p =
            match (dv.dv_a, dv.dv_b) with
            | Some d, _ | _, Some d -> d.Journal.d_parent
            | None, None -> -1
          in
          if p >= 0 && p < min (Journal.dispatch_count a)
                             (Journal.dispatch_count b)
          then Some (Journal.dispatch_at a p)
          else None
      in
      Some { dv with dv_ancestor = anc }
  in
  {
    path_a;
    path_b;
    count_a = Journal.dispatch_count a;
    count_b = Journal.dispatch_count b;
    divergence;
    text = render ~path_a ~path_b ~context a b divergence;
  }

let compare_files ?context path_a path_b =
  match Journal.load path_a with
  | Error m -> Error m
  | Ok a -> (
    match Journal.load path_b with
    | Error m -> Error m
    | Ok b -> Ok (compare_loaded ?context ~path_a ~path_b a b))

let exit_code r = match r.divergence with None -> 0 | Some _ -> 1
