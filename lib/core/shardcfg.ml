(* Process-wide shard configuration for topology engines.

   Scenario builders create their engines through {!engine} so one CLI
   flag ([netrepro --shards N [--domains]]) reconfigures every
   experiment without threading a parameter through each builder.
   Interleaved shards (the default executor) are order-identical to a
   single heap whatever [shards] is — see {!Dsim.Engine} — so flipping
   this configuration never changes simulation results, only which heap
   holds which event (and, with [domains], which core runs it). *)

let shards = ref 1
let domains = ref false

let configure ~shards:n ~domains:d =
  if n < 1 then invalid_arg "Shardcfg.configure: shards must be >= 1";
  shards := n;
  domains := d

let engine ?seed () = Dsim.Engine.create ~shards:!shards ~domains:!domains ?seed ()

(* Placement helper: build subsystem [i] of a replicated topology on
   shard [i mod shards] (identity placement when unsharded). *)
let with_placement eng i f =
  let n = Dsim.Engine.shard_count eng in
  Dsim.Engine.with_shard eng (i mod n) f
