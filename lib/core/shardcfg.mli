(** Process-wide shard configuration for topology engines.

    [netrepro --shards N [--domains]] calls {!configure} once at
    startup; every scenario builder then creates its engine via
    {!engine}. Interleaved shards are dispatch-order-identical to a
    single heap ({!Dsim.Engine}), so the default configuration
    reproduces the unsharded simulator exactly. *)

val shards : int ref
val domains : bool ref

val configure : shards:int -> domains:bool -> unit
(** @raise Invalid_argument when [shards < 1]. *)

val engine : ?seed:int64 -> unit -> Dsim.Engine.t
(** A fresh engine with the configured shard count and executor. *)

val with_placement : Dsim.Engine.t -> int -> (unit -> 'a) -> 'a
(** [with_placement eng i f] builds replica [i] of a repeated subsystem
    on shard [i mod shard_count] ({!Dsim.Engine.with_shard}). *)
