module J = Dsim.Json

type direction = Higher_better | Lower_better | Informational

type delta = {
  d_key : string;
  d_old : float;
  d_new : float;
  d_pct : float;
  d_dir : direction;
  d_regression : bool;
}

type report = {
  deltas : delta list;
  regressions : delta list;
  text : string;
}

let share_floor_pct = 2.0
let abs_floor_ns = 5e6

(* Wall-clock noise floor: even with median-of-N snapshots, ns/event on
   a contended container host jitters by double digits between runs
   whose event streams are bit-identical. A wall regression below this
   percentage is indistinguishable from scheduler noise, so the
   effective wall threshold is max(--max-regress, this floor). Event
   counts are unaffected — they are deterministic and keep the tight
   user-chosen threshold. *)
let wall_floor_pct = 25.0

let pct_change ~old_v ~new_v =
  if old_v = 0. then if new_v = 0. then 0. else Float.infinity
  else 100. *. (new_v -. old_v) /. Float.abs old_v

(* ------------------------------------------------------------------ *)
(* Profile-snapshot mode                                               *)
(* ------------------------------------------------------------------ *)

let number = function
  | J.Int n -> Some (float_of_int n)
  | J.Float f -> Some f
  | _ -> None

let str_member name j =
  match J.member name j with Some (J.String s) -> Some s | _ -> None

let num_member name j = Option.bind (J.member name j) number

let hotspots j =
  match Option.bind (J.member "hotspots" j) J.to_list with
  | None -> None
  | Some rows ->
    Some
      (List.filter_map
         (fun r ->
           match
             ( str_member "component" r,
               str_member "cvm" r,
               str_member "stage" r )
           with
           | Some c, Some v, Some s -> Some (c ^ ":" ^ v ^ ":" ^ s, r)
           | _ -> None)
         rows)

let diff_profiles ~max_regress_pct old_j new_j =
  let old_rows = Option.get (hotspots old_j) in
  let new_rows = Option.get (hotspots new_j) in
  let old_total =
    Option.value ~default:0. (num_member "total_self_wall_ns" old_j)
  in
  let deltas = ref [] in
  let add d = deltas := d :: !deltas in
  List.iter
    (fun (key, old_r) ->
      match List.assoc_opt key new_rows with
      | None ->
        let ev = Option.value ~default:0. (num_member "events" old_r) in
        add
          {
            d_key = key ^ "/events";
            d_old = ev;
            d_new = 0.;
            d_pct = (if ev = 0. then 0. else -100.);
            d_dir = Informational;
            d_regression = false;
          }
      | Some new_r ->
        let old_ev = Option.value ~default:0. (num_member "events" old_r) in
        let new_ev = Option.value ~default:0. (num_member "events" new_r) in
        let ev_pct = pct_change ~old_v:old_ev ~new_v:new_ev in
        (* Event counts are a function of the seed alone: any drift
           past the threshold is a real behaviour change, not noise. *)
        add
          {
            d_key = key ^ "/events";
            d_old = old_ev;
            d_new = new_ev;
            d_pct = ev_pct;
            d_dir = Lower_better;
            d_regression = Float.abs ev_pct > max_regress_pct;
          };
        let old_npe =
          Option.value ~default:0. (num_member "ns_per_event" old_r)
        in
        let new_npe =
          Option.value ~default:0. (num_member "ns_per_event" new_r)
        in
        let old_self =
          Option.value ~default:0. (num_member "self_wall_ns" old_r)
        in
        let new_self =
          Option.value ~default:0. (num_member "self_wall_ns" new_r)
        in
        let npe_pct = pct_change ~old_v:old_npe ~new_v:new_npe in
        let share =
          if old_total > 0. then 100. *. old_self /. old_total else 0.
        in
        (* Wall time is machine-dependent: only flag keys that were hot
           in the old snapshot AND grew by a non-trivial absolute
           amount, so cold-key jitter cannot fail CI. *)
        let regress =
          npe_pct > Float.max max_regress_pct wall_floor_pct
          && share >= share_floor_pct
          && new_self -. old_self >= abs_floor_ns
        in
        add
          {
            d_key = key ^ "/ns_per_event";
            d_old = old_npe;
            d_new = new_npe;
            d_pct = npe_pct;
            d_dir = Lower_better;
            d_regression = regress;
          })
    old_rows;
  List.iter
    (fun (key, new_r) ->
      if not (List.mem_assoc key old_rows) then
        let ev = Option.value ~default:0. (num_member "events" new_r) in
        add
          {
            d_key = key ^ "/events";
            d_old = 0.;
            d_new = ev;
            d_pct = Float.infinity;
            d_dir = Informational;
            d_regression = false;
          })
    new_rows;
  List.rev !deltas

(* ------------------------------------------------------------------ *)
(* Generic-snapshot mode                                               *)
(* ------------------------------------------------------------------ *)

(* Substring checks are ordered: "events_per_wall_second" must match
   the throughput patterns before "wall_second" drags it into the
   latency bucket. *)
let better_up_patterns =
  [ "per_wall_second"; "per_sec"; "mbit"; "goodput"; "reduction_factor";
    "efficiency"; "throughput" ]

let worse_up_patterns =
  [ "_ns"; "ns_per"; "minor_words"; "wall_seconds"; "latency"; "dropped";
    "failures"; "share_pct" ]

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let direction_of key =
  let leaf =
    match String.rindex_opt key '.' with
    | Some i -> String.sub key (i + 1) (String.length key - i - 1)
    | None -> key
  in
  if List.exists (fun p -> contains ~sub:p leaf) better_up_patterns then
    Higher_better
  else if List.exists (fun p -> contains ~sub:p leaf) worse_up_patterns then
    Lower_better
  else Informational

(* Arrays of labelled objects path by their label, so scenario rows
   diff by name even if the list order changes between snapshots. *)
let elem_name j =
  List.find_map
    (fun f -> str_member f j)
    [ "name"; "label"; "scenario"; "id"; "component" ]

let flatten j =
  let out = ref [] in
  let rec go prefix j =
    match j with
    | J.Int n -> out := (prefix, float_of_int n) :: !out
    | J.Float f -> out := (prefix, f) :: !out
    | J.Obj fields ->
      List.iter
        (fun (k, v) -> go (if prefix = "" then k else prefix ^ "." ^ k) v)
        fields
    | J.List elems ->
      List.iteri
        (fun i e ->
          let seg =
            match elem_name e with Some n -> n | None -> string_of_int i
          in
          go (if prefix = "" then seg else prefix ^ "." ^ seg) e)
        elems
    | J.Null | J.Bool _ | J.String _ -> ()
  in
  go "" j;
  List.rev !out

let diff_generic ~max_regress_pct old_j new_j =
  let old_leaves = flatten old_j in
  let new_leaves = flatten new_j in
  List.filter_map
    (fun (key, old_v) ->
      match List.assoc_opt key new_leaves with
      | None -> None
      | Some new_v ->
        let pct = pct_change ~old_v ~new_v in
        let dir = direction_of key in
        let regress =
          match dir with
          | Higher_better -> pct < -.max_regress_pct
          | Lower_better -> pct > max_regress_pct && old_v > 0.
          | Informational -> false
        in
        Some
          {
            d_key = key;
            d_old = old_v;
            d_new = new_v;
            d_pct = pct;
            d_dir = dir;
            d_regression = regress;
          })
    old_leaves

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let dir_mark = function
  | Higher_better -> "up-good"
  | Lower_better -> "down-good"
  | Informational -> "info"

let fmt_val v =
  if Float.abs v >= 1000. then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2f" v

let severity d =
  match d.d_dir with
  | Higher_better -> -.d.d_pct
  | Lower_better | Informational -> d.d_pct

let render ~max_regress_pct deltas =
  let regressions = List.filter (fun d -> d.d_regression) deltas in
  let buf = Buffer.create 2048 in
  let shown =
    (* Full table for small diffs; for big ones show regressions plus
       the largest movements either way. *)
    let sorted =
      List.sort (fun a b -> Float.compare (severity b) (severity a)) deltas
    in
    if List.length sorted <= 40 then sorted
    else
      regressions
      @ List.filteri (fun i d -> i < 40 && not d.d_regression) sorted
  in
  Buffer.add_string buf
    (Printf.sprintf "%-58s %12s %12s %9s %-9s %s\n" "key" "old" "new" "pct"
       "dir" "verdict");
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "%-58s %12s %12s %8.2f%% %-9s %s\n" d.d_key
           (fmt_val d.d_old) (fmt_val d.d_new)
           (if Float.is_finite d.d_pct then d.d_pct else Float.nan)
           (dir_mark d.d_dir)
           (if d.d_regression then "REGRESSION" else "")))
    shown;
  Buffer.add_string buf
    (Printf.sprintf
       "\n%d keys compared, %d regression(s) beyond %.1f%% threshold\n"
       (List.length deltas) (List.length regressions) max_regress_pct);
  (regressions, Buffer.contents buf)

let is_profile j = Option.is_some (hotspots j)

let compare_json ?(max_regress_pct = 10.) old_j new_j =
  let deltas =
    if is_profile old_j && is_profile new_j then
      diff_profiles ~max_regress_pct old_j new_j
    else diff_generic ~max_regress_pct old_j new_j
  in
  if deltas = [] then Error "no comparable numeric keys between the snapshots"
  else begin
    let sorted =
      List.sort (fun a b -> Float.compare (severity b) (severity a)) deltas
    in
    let regressions, text = render ~max_regress_pct sorted in
    Ok { deltas = sorted; regressions; text }
  end

let read_json path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> (
    match J.parse contents with
    | j -> Ok j
    | exception J.Parse_error msg -> Error (path ^ ": " ^ msg))
  | exception Sys_error msg -> Error msg

let compare_files ?max_regress_pct old_path new_path =
  match (read_json old_path, read_json new_path) with
  | Ok o, Ok n -> compare_json ?max_regress_pct o n
  | Error e, _ | _, Error e -> Error e

let exit_code r = if r.regressions = [] then 0 else 1
