let mbit v = Printf.sprintf "%.0f" v
let pct v = Printf.sprintf "%.1f%%" v

let table ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let render_row row =
    String.concat "  "
      (List.mapi (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell) row)
  in
  let sep =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)

let metric_value = function
  | Dsim.Metrics.Counter_value n -> string_of_int n
  | Dsim.Metrics.Gauge_value n -> string_of_int n
  | Dsim.Metrics.Histogram_value { n; sum } ->
    Printf.sprintf "n=%d sum=%.0f" n sum

(* Per-compartment digest: every cvm-labelled series from the registry,
   grouped by compartment. Zero-valued counters are elided (the
   pre-registered fault kinds would otherwise drown the table) except
   trampoline_crossings, which is the headline per-cVM number. *)
let metrics_digest ?(registry = Dsim.Metrics.default) () =
  let interesting (name, _labels, v) =
    String.equal name "trampoline_crossings_total"
    ||
    match v with
    | Dsim.Metrics.Counter_value 0 -> false
    | Dsim.Metrics.Gauge_value 0 -> false
    | Dsim.Metrics.Histogram_value { n = 0; _ } -> false
    | _ -> true
  in
  let cvm_series =
    List.filter_map
      (fun ((name, labels, v) as s) ->
        match List.assoc_opt "cvm" labels with
        | Some cvm when interesting s ->
          let rest = List.filter (fun (k, _) -> k <> "cvm") labels in
          let qualifier =
            match rest with
            | [] -> ""
            | _ ->
              "{"
              ^ String.concat ","
                  (List.map (fun (k, value) -> k ^ "=" ^ value) rest)
              ^ "}"
          in
          Some (cvm, name ^ qualifier, metric_value v)
        | _ -> None)
      (Dsim.Metrics.snapshot registry)
  in
  match cvm_series with
  | [] -> "(no per-compartment metrics recorded)"
  | _ ->
    table
      ~header:[ "Compartment"; "Metric"; "Value" ]
      ~rows:(List.map (fun (cvm, m, v) -> [ cvm; m; v ]) cvm_series)

let ascii_boxplot ~labels_and_boxes ?(width = 64) ?(log_scale = false) () =
  let open Dsim.Stats in
  match labels_and_boxes with
  | [] -> ""
  | _ ->
    let lo =
      List.fold_left
        (fun acc (_, b) -> Float.min acc b.whisker_low)
        Float.infinity labels_and_boxes
    in
    let hi =
      List.fold_left
        (fun acc (_, b) -> Float.max acc b.whisker_high)
        0. labels_and_boxes
    in
    let lo = if log_scale then Float.max lo 1. else lo in
    let tr v = if log_scale then log (Float.max v 1.) else v in
    let span = Float.max (tr hi -. tr lo) 1e-9 in
    let pos v =
      let p =
        int_of_float (Float.round ((tr v -. tr lo) /. span *. float_of_int (width - 1)))
      in
      max 0 (min (width - 1) p)
    in
    let label_w =
      List.fold_left (fun m (l, _) -> max m (String.length l)) 0 labels_and_boxes
    in
    let line (label, b) =
      let row = Bytes.make width ' ' in
      let put i c = Bytes.set row i c in
      for i = pos b.whisker_low to pos b.whisker_high do
        put i '-'
      done;
      for i = pos b.q1 to pos b.q3 do
        put i '='
      done;
      put (pos b.whisker_low) '|';
      put (pos b.whisker_high) '|';
      put (pos b.median) '#';
      Printf.sprintf "%-*s [%s]  med=%.0fns mean=%.0fns sd=%.0fns" label_w label
        (Bytes.to_string row) b.median b.mean b.stddev
    in
    let axis =
      Printf.sprintf "%-*s  %s%.0fns .. %.0fns%s" label_w ""
        (if log_scale then "(log scale) " else "")
        lo hi ""
    in
    String.concat "\n" (List.map line labels_and_boxes @ [ axis ])
