module Ch = Dsim.Chaos
module Ft = Dsim.Flowtrace
module Time = Dsim.Time
module Engine = Dsim.Engine
module Sup = Capvm.Supervisor

let k_chaos stage =
  Dsim.Profile.(key default) ~component:"chaos" ~cvm:"-" ~stage

let k_arm = k_chaos "warmup_arm"
let k_tick = k_chaos "sample_tick"
let k_inject = k_chaos "inject"
let k_heartbeat = k_chaos "heartbeat"

type profile = {
  warmup : Dsim.Time.t;
  duration : Dsim.Time.t;
  sample_every : Dsim.Time.t;
  flap_down : Dsim.Time.t;
  mbuf_window : Dsim.Time.t;
  eintr_every : Dsim.Time.t;
}

let quick =
  {
    warmup = Time.ms 6;
    duration = Time.ms 30;
    sample_every = Time.ms 1;
    flap_down = Time.us 400;
    mbuf_window = Time.us 300;
    eintr_every = Time.us 200;
  }

let full =
  {
    warmup = Time.ms 20;
    duration = Time.ms 120;
    sample_every = Time.ms 2;
    flap_down = Time.us 600;
    mbuf_window = Time.us 400;
    eintr_every = Time.us 200;
  }

type phase = {
  ph_title : string;
  ph_victim : string;
  ph_sibling : string;
  ph_drops : ((Ft.stage * Ft.reason) * int) list;
  ph_sibling_rate : float;
  ph_sibling_ref : float;
  ph_victim_rate : float;
  ph_victim_ref : float;
}

type report = {
  seed : int64;
  injected : int;
  recovered : int;
  attributed : int;
  pending : int;
  counts : (Ch.kind * Ch.tally) list;
  phases : phase list;
  pass : bool;
  text : string;
}

(* ------------------------------------------------------------------ *)
(* Goodput sampling                                                    *)
(* ------------------------------------------------------------------ *)

(* A sample is one [(t0_ns, t1_ns, bytes)] window of a flow's goodput. *)

let overlaps (a, b) windows =
  List.exists
    (fun (ws, we) ->
      let ws = Time.to_float_ns ws in
      match we with
      | Some we -> a < Time.to_float_ns we && b > ws
      | None -> b > ws)
    windows

(* Gbit/s over the samples that do not intersect a quarantine window
   (bits per virtual nanosecond = Gbit/s). *)
let rate_outside samples windows =
  let bytes, ns =
    List.fold_left
      (fun (bytes, ns) (a, b, d) ->
        if overlaps (a, b) windows then (bytes, ns)
        else (bytes + d, ns +. (b -. a)))
      (0, 0.) samples
  in
  if ns <= 0. then 0. else float_of_int (bytes * 8) /. ns

(* Drive [built] through warmup + duration, sampling every flow's byte
   delta each [sample_every]. [after_warmup] arms the chaos engine;
   [on_tick] sees each sample (the recovery watchers). Returns the
   per-flow samples in chronological order. *)
let drive built profile ~after_warmup ~on_tick =
  let engine = built.Scenarios.engine in
  let samples =
    List.map (fun f -> (f.Scenarios.label, ref [])) built.Scenarios.flows
  in
  let t0 = profile.warmup in
  let t_end = Time.add t0 profile.duration in
  ignore
    (Engine.schedule_at_l engine ~at:t0 ~label:k_arm (fun () ->
         List.iter
           (fun f -> ignore (f.Scenarios.take_bytes ()))
           built.Scenarios.flows;
         after_warmup ()));
  let rec tick prev () =
    let now = Engine.now engine in
    let now_ns = Time.to_float_ns now and prev_ns = Time.to_float_ns prev in
    let deltas =
      List.map
        (fun f -> (f.Scenarios.label, f.Scenarios.take_bytes ()))
        built.Scenarios.flows
    in
    List.iter
      (fun (l, d) ->
        match List.assoc_opt l samples with
        | Some r -> r := (prev_ns, now_ns, d) :: !r
        | None -> ())
      deltas;
    on_tick ~now_ns deltas;
    if Time.(now < t_end) then
      ignore (Engine.schedule_l engine ~delay:profile.sample_every ~label:k_tick (tick now))
  in
  ignore
    (Engine.schedule_at_l engine ~at:(Time.add t0 profile.sample_every)
       ~label:k_tick (tick t0));
  Engine.run ~until:t_end engine;
  built.Scenarios.stop ();
  List.map (fun (l, r) -> (l, List.rev !r)) samples

(* ------------------------------------------------------------------ *)
(* Injected capability faults                                          *)
(* ------------------------------------------------------------------ *)

(* [ci_arm victim] makes the victim cVM's next supervised entry raise a
   capability fault (through the scenario's [app_hook], i.e. inside the
   compartment). The supervisor's transition hook closes the ledger:
   Restarting->Running resolves the open injections as recovered with
   the trap-to-recovery time; Dead attributes them to the supervisor's
   permanent-quarantine verdict. *)
type cap_injector = {
  ci_hook : Capvm.Cvm.t -> unit;
  ci_arm : string -> unit;
  ci_on_transition : cvm:string -> old_state:Sup.state -> Sup.state -> unit;
  ci_set_engine : Engine.t -> unit;
}

let cap_injector ch =
  let engine_ref = ref None in
  let due : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let open_faults : (string, (int * float) list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let now_ns () =
    match !engine_ref with
    | Some e -> Time.to_float_ns (Engine.now e)
    | None -> 0.
  in
  let hook cvm =
    let name = Capvm.Cvm.name cvm in
    if Hashtbl.mem due name then begin
      Hashtbl.remove due name;
      let at_ns = now_ns () in
      let id = Ch.inject ch Ch.Cap_fault ~at_ns ~target:name in
      let r =
        match Hashtbl.find_opt open_faults name with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.replace open_faults name r;
          r
      in
      r := (id, at_ns) :: !r;
      Cheri.Fault.raise_fault Cheri.Fault.Tag_violation ~address:0
        ~detail:"chaos: injected capability fault"
    end
  in
  let resolve name f =
    match Hashtbl.find_opt open_faults name with
    | Some r ->
      List.iter f !r;
      r := []
    | None -> ()
  in
  let on_transition ~cvm ~old_state st =
    match (old_state, st) with
    | Sup.Restarting, Sup.Running ->
      let now = now_ns () in
      resolve cvm (fun (id, at) ->
          Ch.resolve_recovered ch id ~ttr_ns:(now -. at))
    | _, Sup.Dead ->
      resolve cvm (fun (id, _) ->
          Ch.resolve_attributed ch id ~stage:"supervisor" ~reason:"quarantined")
    | _ -> ()
  in
  {
    ci_hook = hook;
    ci_arm = (fun name -> Hashtbl.replace due name ());
    ci_on_transition = on_transition;
    ci_set_engine = (fun e -> engine_ref := Some e);
  }

let get_sup sup_ref =
  match !sup_ref with
  | Some s -> s
  | None -> invalid_arg "chaos: builder did not instantiate the supervisor"

let frac profile f =
  Time.add profile.warmup
    (Time.of_float_ns (f *. Time.to_float_ns profile.duration))

(* Did the victim still move bytes in the last few sample windows?
   (End-to-end health check gating the bulk dup/reorder resolution.) *)
let tail_healthy samples label =
  match List.assoc_opt label samples with
  | None | Some [] -> false
  | Some l ->
    let n = List.length l in
    List.exists
      (fun (_, _, d) -> d > 0)
      (List.filteri (fun i _ -> i >= n - 3) l)

(* ------------------------------------------------------------------ *)
(* Phase A: Scenario 1 dual-port, victim port 0                        *)
(* ------------------------------------------------------------------ *)

let phase_a ch profile ~seed ~blackbox_dir =
  let topo_seed = Int64.add seed 1L in
  let direction = Scenarios.Dut_receives in
  let victim = "cVM1" and sibling = "cVM2" in
  (* Undisturbed twin: same topology seeds, chaos idle. *)
  let ub = Scenarios.build_dual_port ~seed:topo_seed ~direction () in
  let ref_samples =
    drive ub profile ~after_warmup:(fun () -> ()) ~on_tick:(fun ~now_ns:_ _ -> ())
  in
  Ft.clear Ft.default;
  let ci = cap_injector ch in
  let sup_ref = ref None in
  let supervise engine =
    let sup = Sup.create engine ~seed:(Int64.add seed 101L) () in
    sup_ref := Some sup;
    sup
  in
  let built =
    Scenarios.build_dual_port ~seed:topo_seed ~supervise ~app_hook:ci.ci_hook
      ~direction ()
  in
  let engine = built.Scenarios.engine in
  ci.ci_set_engine engine;
  let sup = get_sup sup_ref in
  Sup.set_on_transition sup (Some ci.ci_on_transition);
  Sup.set_blackbox_dir sup blackbox_dir;
  (* Wire chaos on the victim's link only; port 1 is the control. *)
  let link0 = List.hd built.Scenarios.links in
  Nic.Link.set_tamper link0
    (Some
       (fun ~now ~ipv4 ~len ->
         Ch.frame_opportunity ch ~at_ns:(Time.to_float_ns now) ~ipv4 ~len
           ~target:"link0"));
  Ch.set_rates ch
    { Ch.wire_flip = 1.5e-3; dma_flip = 1.5e-3; drop = 1.5e-3; dup = 8e-4;
      reorder = 8e-4 };
  (* RX DMA-descriptor errors on the victim port. The device attributes
     the drop (Rx_dma/Dma_error + rx_dma_errors) synchronously, so the
     ledger entry resolves immediately. *)
  let p0 = Topology.port built.Scenarios.dut 0 in
  Nic.Igb.set_rx_fault p0
    (Some
       (fun ~len:_ ->
         if Ch.armed ch && Ch.draw ch ~p:4e-4 then begin
           let at_ns = Time.to_float_ns (Engine.now engine) in
           let id = Ch.inject ch Ch.Dma_desc_error ~at_ns ~target:"morello/port0" in
           Ch.resolve_attributed ch id ~stage:"rx_dma" ~reason:"dma_error";
           true
         end
         else false));
  (* Singular scheduled faults. *)
  let flap = ref None and mbuf = ref None in
  let pool = (List.hd built.Scenarios.dut_netifs).Topology.pool in
  let stolen = ref [] in
  ignore
    (Engine.schedule_at_l engine ~at:(frac profile 0.30) ~label:k_inject (fun () ->
         let at_ns = Time.to_float_ns (Engine.now engine) in
         flap := Some (Ch.inject ch Ch.Link_flap ~at_ns ~target:"link0", at_ns);
         Nic.Link.set_up link0 false;
         ignore
           (Engine.schedule_l engine ~delay:profile.flap_down ~label:k_inject (fun () ->
                Nic.Link.set_up link0 true))));
  ignore
    (Engine.schedule_at_l engine ~at:(frac profile 0.55) ~label:k_inject (fun () ->
         let at_ns = Time.to_float_ns (Engine.now engine) in
         let id =
           Ch.inject ch Ch.Mbuf_exhaust ~at_ns
             ~target:(Dpdk.Mbuf.pool_name pool)
         in
         let rec steal () =
           match Dpdk.Mbuf.alloc pool with
           | Some m ->
             stolen := m :: !stolen;
             steal ()
           | None -> ()
         in
         steal ();
         ignore
           (Engine.schedule_l engine ~delay:profile.mbuf_window ~label:k_inject (fun () ->
                List.iter Dpdk.Mbuf.free !stolen;
                stolen := [];
                (* Only now can the watcher call it recovered. *)
                mbuf := Some (id, at_ns)))));
  ignore
    (Engine.schedule_at_l engine ~at:(frac profile 0.18) ~label:k_inject (fun () ->
         ci.ci_arm victim));
  ignore
    (Engine.schedule_at_l engine ~at:(frac profile 0.45) ~label:k_inject (fun () ->
         ci.ci_arm victim));
  ignore
    (Engine.schedule_at_l engine ~at:(frac profile 0.80) ~label:k_inject (fun () ->
         Ch.set_armed ch false));
  (* Flap and exhaustion count as recovered when the victim moves
     application bytes again after the outage ends. *)
  let on_tick ~now_ns deltas =
    let vdelta =
      match List.assoc_opt victim deltas with Some d -> d | None -> 0
    in
    if vdelta > 0 then begin
      (match !flap with
      | Some (id, at) when Nic.Link.up link0 ->
        Ch.resolve_recovered ch id ~ttr_ns:(now_ns -. at);
        flap := None
      | _ -> ());
      match !mbuf with
      | Some (id, at) ->
        Ch.resolve_recovered ch id ~ttr_ns:(now_ns -. at);
        mbuf := None
      | None -> ()
    end
  in
  let samples =
    drive built profile ~after_warmup:(fun () -> Ch.set_armed ch true) ~on_tick
  in
  Ch.set_armed ch false;
  Nic.Igb.set_rx_fault p0 None;
  Nic.Link.set_tamper link0 None;
  Ch.set_rates ch Ch.zero_rates;
  (* Attribution reconciliation against the detectors' own counters. *)
  let crc_observed =
    let s0 = Nic.Igb.stats (Topology.port built.Scenarios.dut 0) in
    let s1 = Nic.Igb.stats (Topology.port built.Scenarios.peer 0) in
    s0.Nic.Port_stats.rx_crc_errors + s1.Nic.Port_stats.rx_crc_errors
  in
  ignore
    (Ch.reconcile_attributed ch Ch.Wire_bit_flip ~observed:crc_observed
       ~stage:"rx_dma" ~reason:"fcs_error");
  let drops = Ft.drop_table Ft.default in
  let csum_observed =
    List.fold_left
      (fun acc ((_, r), n) ->
        (* Any typed parse reject can be the surface symptom of a
           flipped DMA byte — a corrupted length field lands on
           Bad_length, a corrupted fragment word on Frag_unsupported. *)
        match r with
        | Ft.Bad_checksum | Ft.Parse_error | Ft.Bad_length | Ft.Bad_option
        | Ft.Frag_unsupported ->
          acc + n
        | _ -> acc)
      0 drops
  in
  ignore
    (Ch.reconcile_attributed ch Ch.Dma_bit_flip ~observed:csum_observed
       ~stage:"ip_rx" ~reason:"bad_checksum");
  (* Dups and reorders are absorbed by TCP sequencing; once end-to-end
     health is verified they are recovered with no measurable TTR. *)
  if tail_healthy samples victim then begin
    ignore (Ch.resolve_pending ch Ch.Frame_dup (Ch.Recovered { ttr_ns = 0. }));
    ignore
      (Ch.resolve_pending ch Ch.Frame_reorder (Ch.Recovered { ttr_ns = 0. }))
  end;
  let windows =
    Sup.quarantine_windows sup ~cvm:(List.hd built.Scenarios.app_cvms)
  in
  let rate l ss = rate_outside (List.assoc l ss) windows in
  {
    ph_title = "phase A: scenario 1 dual-port, wire+NIC+cVM chaos on port 0";
    ph_victim = victim;
    ph_sibling = sibling;
    ph_drops = drops;
    ph_sibling_rate = rate sibling samples;
    ph_sibling_ref = rate sibling ref_samples;
    ph_victim_rate = rate victim samples;
    ph_victim_ref = rate victim ref_samples;
  }

(* ------------------------------------------------------------------ *)
(* Phase B: Scenario 2 contended, victim cVM3                          *)
(* ------------------------------------------------------------------ *)

let phase_b ch profile ~seed ~blackbox_dir =
  let topo_seed = Int64.add seed 2L in
  let direction = Scenarios.Dut_sends in
  let victim = "cVM3" and sibling = "cVM2" in
  (* FIFO lock hand-off: under the default barging policy the throttled
     cVM3 can be starved of the mutex for tens of milliseconds (the
     paper's Table II unfairness), which would push the injected fault
     schedule past the run's end. The twin uses the same policy. *)
  let build ?supervise ?app_hook () =
    Scenarios.build_scenario2 ~seed:topo_seed ~contended:true
      ~lock_policy:Capvm.Umtx.Fifo ?supervise ?app_hook ~direction ()
  in
  let ub = build () in
  let ref_samples =
    drive ub profile ~after_warmup:(fun () -> ()) ~on_tick:(fun ~now_ns:_ _ -> ())
  in
  Ft.clear Ft.default;
  let ci = cap_injector ch in
  let sup_ref = ref None in
  let supervise engine =
    (* Budget 1: the first fault restarts cVM3, the second permanently
       quarantines it — both paths must leave the shared mutex free. *)
    let sup =
      Sup.create engine ~seed:(Int64.add seed 102L)
        ~policy:
          (Sup.Restart
             { budget = 1; backoff_base = Time.us 50; backoff_max = Time.ms 2;
               jitter_pct = 0.1 })
        ()
    in
    sup_ref := Some sup;
    sup
  in
  let built = build ~supervise ~app_hook:ci.ci_hook () in
  let engine = built.Scenarios.engine in
  ci.ci_set_engine engine;
  let sup = get_sup sup_ref in
  Sup.set_on_transition sup (Some ci.ci_on_transition);
  Sup.set_blackbox_dir sup blackbox_dir;
  let victim_cvm = List.nth built.Scenarios.app_cvms 1 in
  (* Transient-EINTR chaos through the victim's libc: a heartbeat
     syscall stream whose attempts fail with probability 0.25 while
     armed; the shim's TEMP_FAILURE_RETRY loop recovers every one and
     reports the retry cost, which is the injection's TTR. *)
  let shim =
    Capvm.Musl_shim.create (Topology.intravisor built.Scenarios.dut) victim_cvm
  in
  let eintr_open = ref [] in
  Capvm.Musl_shim.set_transient shim
    (Some
       {
         Capvm.Musl_shim.should_fail =
           (fun ~attempt ->
             if attempt = 0 && Ch.armed ch && Ch.draw ch ~p:0.25 then begin
               let at_ns = Time.to_float_ns (Engine.now engine) in
               eintr_open :=
                 Ch.inject ch Ch.Syscall_eintr ~at_ns ~target:victim
                 :: !eintr_open;
               true
             end
             else false);
         note_recovery =
           (fun ~retries:_ ~backoff_ns ->
             List.iter
               (fun id -> Ch.resolve_recovered ch id ~ttr_ns:backoff_ns)
               !eintr_open;
             eintr_open := []);
       });
  let t_end = Time.add profile.warmup profile.duration in
  let rec heartbeat () =
    if Ch.armed ch && Sup.state sup ~cvm:victim_cvm = Sup.Running then
      ignore (Capvm.Musl_shim.clock_gettime shim);
    if Time.(Engine.now engine < t_end) then
      ignore (Engine.schedule_l engine ~delay:profile.eintr_every ~label:k_heartbeat heartbeat)
  in
  ignore (Engine.schedule_at_l engine ~at:profile.warmup ~label:k_heartbeat heartbeat);
  ignore
    (Engine.schedule_at_l engine ~at:(frac profile 0.25) ~label:k_inject (fun () ->
         ci.ci_arm victim));
  ignore
    (Engine.schedule_at_l engine ~at:(frac profile 0.60) ~label:k_inject (fun () ->
         ci.ci_arm victim));
  ignore
    (Engine.schedule_at_l engine ~at:(frac profile 0.80) ~label:k_inject (fun () ->
         Ch.set_armed ch false));
  let samples =
    drive built profile
      ~after_warmup:(fun () -> Ch.set_armed ch true)
      ~on_tick:(fun ~now_ns:_ _ -> ())
  in
  Ch.set_armed ch false;
  Capvm.Musl_shim.set_transient shim None;
  let drops = Ft.drop_table Ft.default in
  let windows = Sup.quarantine_windows sup ~cvm:victim_cvm in
  let rate l ss = rate_outside (List.assoc l ss) windows in
  {
    ph_title =
      "phase B: scenario 2 contended, cap faults under the shared mutex";
    ph_victim = victim;
    ph_sibling = sibling;
    ph_drops = drops;
    ph_sibling_rate = rate sibling samples;
    ph_sibling_ref = rate sibling ref_samples;
    ph_victim_rate = rate victim samples;
    ph_victim_ref = rate victim ref_samples;
  }

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let fmt_ns ns =
  if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns

let ttr_line b ch kind =
  match List.sort compare (Ch.ttrs ch kind) with
  | [] -> ()
  | sorted ->
    let n = List.length sorted in
    let nth i = List.nth sorted i in
    Printf.bprintf b "  %-16s n=%-4d min=%-10s p50=%-10s max=%s\n"
      (Ch.kind_name kind) n (fmt_ns (nth 0))
      (fmt_ns (nth (n / 2)))
      (fmt_ns (nth (n - 1)))

let ratio rate ref_ = if ref_ <= 0. then 1. else rate /. ref_

let sibling_ok p = ratio p.ph_sibling_rate p.ph_sibling_ref >= 0.9

let phase_section b p =
  Printf.bprintf b "-- %s --\n" p.ph_title;
  if p.ph_drops = [] then Printf.bprintf b "  drop table: (empty)\n"
  else begin
    Printf.bprintf b "  drop table (stage/reason -> frames):\n";
    List.iter
      (fun ((st, r), n) ->
        Printf.bprintf b "    %-10s %-16s %6d\n" (Ft.stage_name st)
          (Ft.reason_name r) n)
      p.ph_drops
  end;
  Printf.bprintf b
    "  sibling %-5s goodput outside quarantine: %.3f Gbit/s vs %.3f \
     undisturbed (ratio %.3f) [%s]\n"
    p.ph_sibling p.ph_sibling_rate p.ph_sibling_ref
    (ratio p.ph_sibling_rate p.ph_sibling_ref)
    (if sibling_ok p then "ok" else "FAIL");
  Printf.bprintf b
    "  victim  %-5s goodput outside quarantine: %.3f Gbit/s vs %.3f \
     undisturbed (ratio %.3f)\n"
    p.ph_victim p.ph_victim_rate p.ph_victim_ref
    (ratio p.ph_victim_rate p.ph_victim_ref)

let run ?(profile = quick) ?blackbox_dir ~seed () =
  let ft_was = Ft.enabled Ft.default in
  Ft.set_enabled Ft.default true;
  Ft.clear Ft.default;
  let ch = Ch.create ~seed in
  let pa = phase_a ch profile ~seed ~blackbox_dir in
  let pb = phase_b ch profile ~seed ~blackbox_dir in
  Ft.clear Ft.default;
  Ft.set_enabled Ft.default ft_was;
  let counts = Ch.counts ch in
  let injected, recovered, attributed, pending =
    List.fold_left
      (fun (i, r, a, p) (_, t) ->
        ( i + t.Ch.t_injected,
          r + t.Ch.t_recovered,
          a + t.Ch.t_attributed,
          p + t.Ch.t_pending ))
      (0, 0, 0, 0) counts
  in
  let phases = [ pa; pb ] in
  let pass = pending = 0 && injected > 0 && List.for_all sibling_ok phases in
  let b = Buffer.create 4096 in
  Printf.bprintf b "=== chaos blast-radius report (seed %Ld) ===\n" seed;
  Printf.bprintf b "-- fault ledger --\n";
  Printf.bprintf b "  %-16s %9s %9s %10s %8s\n" "kind" "injected" "recovered"
    "attributed" "pending";
  List.iter
    (fun (k, t) ->
      Printf.bprintf b "  %-16s %9d %9d %10d %8d\n" (Ch.kind_name k)
        t.Ch.t_injected t.Ch.t_recovered t.Ch.t_attributed t.Ch.t_pending)
    counts;
  Printf.bprintf b "-- time to recovery --\n";
  List.iter (ttr_line b ch) Ch.all_kinds;
  List.iter (phase_section b) phases;
  Printf.bprintf b "fault attribution: %.1f%% (%d/%d)\n"
    (if injected = 0 then 0.
     else 100. *. float_of_int (recovered + attributed) /. float_of_int injected)
    (recovered + attributed) injected;
  Printf.bprintf b "unrecovered faults: %d\n" pending;
  Printf.bprintf b "verdict: %s\n" (if pass then "PASS" else "FAIL");
  {
    seed;
    injected;
    recovered;
    attributed;
    pending;
    counts;
    phases;
    pass;
    text = Buffer.contents b;
  }
