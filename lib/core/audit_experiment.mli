(** Capability provenance audit over the stock scenarios.

    Drives Baseline, Scenario 1 and Scenario 2 with the
    {!Dsim.Audit} ledger and {!Cheri.Provenance} DAG enabled, then
    renders the attack-surface report the paper argues for but never
    quantifies: per-compartment capabilities held, reachable bytes
    (interval union of object-level capabilities), permission
    histograms and cross-compartment edges — plus the Scenario 1 vs
    Scenario 2 surface delta (the replicated stack's whole working set
    vs the single 128 KiB application buffer).

    Three gates make up the verdict:

    - every stock scenario finishes with {b zero} invariant violations
      (the grep-able line [invariant violations (stock scenarios): 0]);
    - Scenario 2's per-app-cVM reachable-byte surface is {b strictly
      smaller} than Scenario 1's replicated-stack surface;
    - a seeded chaos capability-fault run produces at least one audit
      violation attributed to the victim compartment, cross-referenced
      against the chaos ledger by cVM.

    Determinism: the audit paths use no RNG and no clock reads, so the
    whole report is a pure function of the seed and profile. *)

type profile = {
  warmup : Dsim.Time.t;
  duration : Dsim.Time.t;
  sample_every : int;  (** Exercise-check sampling (1-in-N). *)
}

val quick : profile
val full : profile

(** One audited scenario's snapshot. *)
type scenario_audit = {
  sc_id : string;
  sc_title : string;
  sc_events : (Dsim.Audit.event * int) list;  (** Non-zero kinds. *)
  sc_nodes : int;  (** Provenance DAG size. *)
  sc_live : int;
  sc_untracked : int;
  sc_invariant : Dsim.Audit.violation list;
  sc_hw_faults : int;
  sc_recheck : (Dsim.Audit.violation_kind * string) list;
      (** Full post-run DAG re-walk ({!Cheri.Provenance.check_all}). *)
  sc_surfaces : Cheri.Provenance.surface list;
  sc_edges : (string * string * int) list;
}

(** The seeded capability-fault cross-reference section. *)
type chaos_audit = {
  ca_injected : int;  (** Chaos [Cap_fault] ledger entries. *)
  ca_hw_faults : int;  (** Audited hardware faults, all compartments. *)
  ca_attributed : int;
      (** Audit violations charged to a compartment the chaos ledger
          targeted — the cross-reference the gate requires [>= 1]. *)
  ca_revoked : int;  (** Supervisor teardown revocations. *)
  ca_restored : int;  (** Re-endowments on successful restart. *)
  ca_temporal : int;
      (** [Revoked_parent] detections during quarantine (dangling DMA
          through a torn-down compartment's buffers). *)
}

type report = {
  seed : int64;
  scenarios : scenario_audit list;
  chaos : chaos_audit;
  invariant_stock : int;  (** Sum over stock scenarios; gate: 0. *)
  surface_s1 : int;  (** Smallest replicated-stack reachable bytes. *)
  surface_s2_app : int;  (** Largest app-cVM reachable bytes. *)
  surface_ok : bool;  (** [surface_s2_app < surface_s1]. *)
  pass : bool;
  text : string;
  json : Dsim.Json.t;
}

val run : ?profile:profile -> seed:int64 -> unit -> report
