module Au = Dsim.Audit
module Pv = Cheri.Provenance
module Ch = Dsim.Chaos
module Time = Dsim.Time
module Engine = Dsim.Engine
module Sup = Capvm.Supervisor

let k_audit_arm =
  Dsim.Profile.(key default) ~component:"audit" ~cvm:"-" ~stage:"arm"

type profile = {
  warmup : Dsim.Time.t;
  duration : Dsim.Time.t;
  sample_every : int;
}

let quick = { warmup = Time.ms 4; duration = Time.ms 16; sample_every = 8 }
let full = { warmup = Time.ms 10; duration = Time.ms 60; sample_every = 4 }

type scenario_audit = {
  sc_id : string;
  sc_title : string;
  sc_events : (Au.event * int) list;
  sc_nodes : int;
  sc_live : int;
  sc_untracked : int;
  sc_invariant : Au.violation list;
  sc_hw_faults : int;
  sc_recheck : (Au.violation_kind * string) list;
  sc_surfaces : Pv.surface list;
  sc_edges : (string * string * int) list;
}

type chaos_audit = {
  ca_injected : int;
  ca_hw_faults : int;
  ca_attributed : int;
  ca_revoked : int;
  ca_restored : int;
  ca_temporal : int;
}

type report = {
  seed : int64;
  scenarios : scenario_audit list;
  chaos : chaos_audit;
  invariant_stock : int;
  surface_s1 : int;
  surface_s2_app : int;
  surface_ok : bool;
  pass : bool;
  text : string;
  json : Dsim.Json.t;
}

(* ------------------------------------------------------------------ *)
(* Driving one scenario under the ledger                               *)
(* ------------------------------------------------------------------ *)

let fresh_ledger profile =
  let au = Au.default in
  Au.clear au;
  Pv.clear ();
  Au.set_enabled au true;
  Au.set_strict au false;
  Au.set_sample_every au profile.sample_every;
  au

let drive built profile =
  Engine.run
    ~until:(Time.add profile.warmup profile.duration)
    built.Scenarios.engine;
  built.Scenarios.stop ()

let snapshot au ~id ~title =
  let violations = Au.violations au in
  let invariant, hw =
    List.partition (fun v -> v.Au.v_kind <> Au.Hw_fault) violations
  in
  {
    sc_id = id;
    sc_title = title;
    sc_events =
      List.filter_map
        (fun e ->
          match Au.event_count au e with 0 -> None | n -> Some (e, n))
        Au.all_events;
    sc_nodes = Pv.node_count ();
    sc_live = Pv.live_count ();
    sc_untracked = Pv.untracked_exercises ();
    sc_invariant = invariant;
    sc_hw_faults = List.length hw;
    sc_recheck = Pv.check_all ();
    sc_surfaces = Pv.surfaces ();
    sc_edges = Pv.edges ();
  }

(* Run a stock scenario start-to-finish under a fresh ledger; returns
   the snapshot plus the DUT-side compartment names (the surface
   comparison needs to know which surfaces belong to app cVMs). *)
let run_scenario profile ~id ~title build =
  let au = fresh_ledger profile in
  let built = build () in
  let apps = List.map Capvm.Cvm.name built.Scenarios.app_cvms in
  drive built profile;
  (snapshot au ~id ~title, apps)

(* ------------------------------------------------------------------ *)
(* Seeded chaos capability-fault run (cross-reference section)         *)
(* ------------------------------------------------------------------ *)

let frac profile f =
  Time.add profile.warmup
    (Time.of_float_ns (f *. Time.to_float_ns profile.duration))

let run_chaos_section profile ~seed =
  let au = fresh_ledger profile in
  let ch = Ch.create ~seed in
  let victim = "cVM1" in
  let engine_ref = ref None in
  let due = ref 0 in
  let app_hook cvm =
    if Capvm.Cvm.name cvm = victim && !due > 0 then begin
      decr due;
      let at_ns =
        match !engine_ref with
        | Some e -> Time.to_float_ns (Engine.now e)
        | None -> 0.
      in
      ignore (Ch.inject ch Ch.Cap_fault ~at_ns ~target:victim);
      Cheri.Fault.raise_fault Cheri.Fault.Tag_violation ~address:0
        ~detail:"audit: injected capability fault"
    end
  in
  let supervise engine = Sup.create engine ~seed:(Int64.add seed 101L) () in
  let built =
    Scenarios.build_dual_port ~seed:(Int64.add seed 3L) ~supervise ~app_hook
      ~direction:Scenarios.Dut_receives ()
  in
  engine_ref := Some built.Scenarios.engine;
  ignore
    (Engine.schedule_at_l built.Scenarios.engine ~at:(frac profile 0.35)
       ~label:k_audit_arm (fun () -> due := 1));
  drive built profile;
  let violations = Au.violations au in
  let cap_targets =
    List.filter_map
      (fun (i : Ch.injection) ->
        if i.Ch.kind = Ch.Cap_fault then Some i.Ch.target else None)
      (Ch.injections ch)
  in
  let attributed =
    List.length
      (List.filter (fun v -> List.mem v.Au.v_cvm cap_targets) violations)
  in
  if attributed > 0 then
    ignore
      (Ch.resolve_pending ch Ch.Cap_fault
         (Ch.Attributed { stage = "audit"; reason = "hw_fault_ledgered" }));
  {
    ca_injected = List.length cap_targets;
    ca_hw_faults = Au.violation_count ~kind:Au.Hw_fault au;
    ca_attributed = attributed;
    ca_revoked = Au.event_count au Au.Revoke;
    ca_restored = Au.event_count au Au.Restore;
    ca_temporal = Au.violation_count ~kind:Au.Revoked_parent au;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let fmt_bytes n =
  if n >= 1 lsl 20 then
    Printf.sprintf "%.2f MiB" (float_of_int n /. float_of_int (1 lsl 20))
  else if n >= 1 lsl 10 then
    Printf.sprintf "%.1f KiB" (float_of_int n /. float_of_int (1 lsl 10))
  else Printf.sprintf "%d B" n

let perm_digest perms =
  String.concat " "
    (List.map (fun (p, n) -> Printf.sprintf "%s:%d" p n) perms)

let scenario_section b sc =
  Printf.bprintf b "-- %s: %s --\n" sc.sc_id sc.sc_title;
  Printf.bprintf b "  events:";
  List.iter
    (fun (e, n) -> Printf.bprintf b " %s=%d" (Au.event_name e) n)
    sc.sc_events;
  Printf.bprintf b "\n";
  Printf.bprintf b "  dag: %d nodes, %d live, %d untracked exercises\n"
    sc.sc_nodes sc.sc_live sc.sc_untracked;
  Printf.bprintf b "  per-compartment attack surface:\n";
  Printf.bprintf b "    %-12s %6s %12s %12s  %s\n" "compartment" "caps"
    "reachable" "region" "perms";
  List.iter
    (fun (s : Pv.surface) ->
      Printf.bprintf b "    %-12s %6d %12s %12s  %s\n" s.Pv.s_cvm s.Pv.s_caps
        (fmt_bytes s.Pv.s_reachable_bytes)
        (fmt_bytes s.Pv.s_region_bytes)
        (perm_digest s.Pv.s_perms))
    sc.sc_surfaces;
  if sc.sc_edges <> [] then begin
    Printf.bprintf b "  cross-compartment edges:\n";
    List.iter
      (fun (f, t, n) -> Printf.bprintf b "    %-12s -> %-12s %8d\n" f t n)
      sc.sc_edges
  end;
  Printf.bprintf b "  invariant violations: %d (hardware faults audited: %d)\n"
    (List.length sc.sc_invariant)
    sc.sc_hw_faults;
  List.iter
    (fun v ->
      Printf.bprintf b "    [%s] %s at 0x%x via %s: %s\n"
        (Au.violation_kind_name v.Au.v_kind)
        v.Au.v_cvm v.Au.v_address v.Au.v_source v.Au.v_detail)
    sc.sc_invariant;
  Printf.bprintf b "  post-run DAG re-walk: %s\n"
    (if sc.sc_recheck = [] then "ok"
     else Printf.sprintf "%d stale edges" (List.length sc.sc_recheck))

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let violation_json v =
  Dsim.Json.Obj
    [
      ("id", Dsim.Json.Int v.Au.v_id);
      ("kind", Dsim.Json.String (Au.violation_kind_name v.Au.v_kind));
      ("cvm", Dsim.Json.String v.Au.v_cvm);
      ("address", Dsim.Json.Int v.Au.v_address);
      ("detail", Dsim.Json.String v.Au.v_detail);
      ("source", Dsim.Json.String v.Au.v_source);
    ]

let surface_json (s : Pv.surface) =
  Dsim.Json.Obj
    [
      ("cvm", Dsim.Json.String s.Pv.s_cvm);
      ("caps", Dsim.Json.Int s.Pv.s_caps);
      ("reachable_bytes", Dsim.Json.Int s.Pv.s_reachable_bytes);
      ("region_bytes", Dsim.Json.Int s.Pv.s_region_bytes);
      ( "perms",
        Dsim.Json.Obj
          (List.map (fun (p, n) -> (p, Dsim.Json.Int n)) s.Pv.s_perms) );
    ]

let scenario_json sc =
  Dsim.Json.Obj
    [
      ("id", Dsim.Json.String sc.sc_id);
      ("title", Dsim.Json.String sc.sc_title);
      ( "events",
        Dsim.Json.Obj
          (List.map
             (fun (e, n) -> (Au.event_name e, Dsim.Json.Int n))
             sc.sc_events) );
      ("nodes", Dsim.Json.Int sc.sc_nodes);
      ("live", Dsim.Json.Int sc.sc_live);
      ("untracked_exercises", Dsim.Json.Int sc.sc_untracked);
      ( "invariant_violations",
        Dsim.Json.List (List.map violation_json sc.sc_invariant) );
      ("hw_faults", Dsim.Json.Int sc.sc_hw_faults);
      ("surfaces", Dsim.Json.List (List.map surface_json sc.sc_surfaces));
      ( "edges",
        Dsim.Json.List
          (List.map
             (fun (f, t, n) ->
               Dsim.Json.Obj
                 [
                   ("from", Dsim.Json.String f);
                   ("to", Dsim.Json.String t);
                   ("count", Dsim.Json.Int n);
                 ])
             sc.sc_edges) );
    ]

(* ------------------------------------------------------------------ *)
(* The experiment                                                      *)
(* ------------------------------------------------------------------ *)

let reachable_of sc name =
  match List.find_opt (fun s -> s.Pv.s_cvm = name) sc.sc_surfaces with
  | Some s -> s.Pv.s_reachable_bytes
  | None -> 0

let run ?(profile = quick) ~seed () =
  let au = Au.default in
  let was_enabled = Au.enabled au and was_sample = Au.sample_every au in
  let baseline, _ =
    run_scenario profile ~id:"baseline"
      ~title:"single MMU process, single port"
      (fun () ->
        Scenarios.build_single_baseline ~seed:(Int64.add seed 1L)
          ~direction:Scenarios.Dut_receives ())
  in
  let s1, s1_apps =
    run_scenario profile ~id:"scenario1"
      ~title:"full stack replicated per port (2 cVMs)"
      (fun () ->
        Scenarios.build_dual_port ~seed:(Int64.add seed 1L)
          ~direction:Scenarios.Dut_receives ())
  in
  let s2, s2_apps =
    run_scenario profile ~id:"scenario2"
      ~title:"shared stack cVM1, application cVM2"
      (fun () ->
        Scenarios.build_scenario2 ~seed:(Int64.add seed 2L)
          ~direction:Scenarios.Dut_sends ())
  in
  let chaos = run_chaos_section profile ~seed in
  Au.set_enabled au was_enabled;
  Au.set_sample_every au was_sample;
  Pv.clear ();
  let scenarios = [ baseline; s1; s2 ] in
  let invariant_stock =
    List.fold_left (fun n sc -> n + List.length sc.sc_invariant) 0 scenarios
  in
  (* Scenario 1 replicates the whole stack into each cVM; Scenario 2's
     app compartments reach only their iperf buffer. The gate is the
     paper's Table I argument as an inequality over the DAG: even the
     *largest* S2 app surface must undercut the *smallest* replicated
     stack. *)
  let surface_s1 =
    match List.map (reachable_of s1) s1_apps with
    | [] -> 0
    | l -> List.fold_left min max_int l
  in
  let surface_s2_app = List.fold_left max 0 (List.map (reachable_of s2) s2_apps) in
  let surface_ok = surface_s2_app > 0 && surface_s2_app < surface_s1 in
  let recheck_clean = List.for_all (fun sc -> sc.sc_recheck = []) scenarios in
  let pass =
    invariant_stock = 0 && recheck_clean && surface_ok
    && chaos.ca_injected > 0 && chaos.ca_attributed > 0
  in
  let b = Buffer.create 4096 in
  Printf.bprintf b "=== capability provenance audit (seed %Ld) ===\n" seed;
  List.iter (scenario_section b) scenarios;
  Printf.bprintf b "-- attack-surface comparison (Table I as an inequality) --\n";
  List.iter
    (fun app ->
      Printf.bprintf b "  scenario1 %-5s (replicated stack) reachable: %s\n" app
        (fmt_bytes (reachable_of s1 app)))
    s1_apps;
  List.iter
    (fun app ->
      Printf.bprintf b "  scenario2 %-5s (application only) reachable: %s\n" app
        (fmt_bytes (reachable_of s2 app)))
    s2_apps;
  Printf.bprintf b
    "  app-cVM surface vs replicated stack: %s < %s (%.1fx smaller) [%s]\n"
    (fmt_bytes surface_s2_app) (fmt_bytes surface_s1)
    (if surface_s2_app = 0 then 0.
     else float_of_int surface_s1 /. float_of_int surface_s2_app)
    (if surface_ok then "ok" else "FAIL");
  Printf.bprintf b "-- seeded chaos capability-fault run (scenario 1 supervised) --\n";
  Printf.bprintf b "  chaos cap_fault injections: %d\n" chaos.ca_injected;
  Printf.bprintf b "  audited hardware faults: %d\n" chaos.ca_hw_faults;
  Printf.bprintf b "  supervisor revocation storm: revoked=%d restored=%d\n"
    chaos.ca_revoked chaos.ca_restored;
  Printf.bprintf b "  temporal detections during quarantine: %d revoked_parent\n"
    chaos.ca_temporal;
  Printf.bprintf b "  violations attributed via chaos cross-reference: %d [%s]\n"
    chaos.ca_attributed
    (if chaos.ca_attributed > 0 then "ok" else "FAIL");
  Printf.bprintf b "invariant violations (stock scenarios): %d\n" invariant_stock;
  Printf.bprintf b "verdict: %s\n" (if pass then "PASS" else "FAIL");
  let json =
    Dsim.Json.Obj
      [
        ("seed", Dsim.Json.String (Int64.to_string seed));
        ("scenarios", Dsim.Json.List (List.map scenario_json scenarios));
        ( "surface_comparison",
          Dsim.Json.Obj
            [
              ("s1_stack_min_reachable", Dsim.Json.Int surface_s1);
              ("s2_app_max_reachable", Dsim.Json.Int surface_s2_app);
              ("app_smaller", Dsim.Json.Bool surface_ok);
            ] );
        ( "chaos",
          Dsim.Json.Obj
            [
              ("cap_fault_injections", Dsim.Json.Int chaos.ca_injected);
              ("hw_faults", Dsim.Json.Int chaos.ca_hw_faults);
              ("attributed", Dsim.Json.Int chaos.ca_attributed);
              ("revoked", Dsim.Json.Int chaos.ca_revoked);
              ("restored", Dsim.Json.Int chaos.ca_restored);
              ("revoked_parent_detections", Dsim.Json.Int chaos.ca_temporal);
            ] );
        ("invariant_violations_stock", Dsim.Json.Int invariant_stock);
        ("pass", Dsim.Json.Bool pass);
      ]
  in
  {
    seed;
    scenarios;
    chaos;
    invariant_stock;
    surface_s1;
    surface_s2_app;
    surface_ok;
    pass;
    text = Buffer.contents b;
    json;
  }
