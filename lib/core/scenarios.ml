type direction = Dut_receives | Dut_sends

type flow = { label : string; take_bytes : unit -> int }

type built = {
  engine : Dsim.Engine.t;
  dut : Topology.node;
  peer : Topology.node;
  flows : flow list;
  mutex : Capvm.Umtx.t option;
  links : Nic.Link.t list;
  dut_netifs : Topology.netif list;
  app_cvms : Capvm.Cvm.t list;
  stop : unit -> unit;
}

let app_buffer_size = 128 * 1024
let cvm_size = 12 * 1024 * 1024
let iperf_port = 5201

let ip_dut subnet = Netstack.Ipv4_addr.make 10 0 subnet 1
let ip_peer subnet = Netstack.Ipv4_addr.make 10 0 subnet 2

(* One cVM hosting a full network stack on [port_idx]. *)
let cvm_netif node ~name ~port_idx ~ip ?stack_tuning () =
  let cvm =
    Capvm.Intravisor.create_cvm (Topology.intravisor node) ~name ~size:cvm_size
  in
  let region = Capvm.Cvm.sub_region cvm ~size:Topology.default_netif_region_size in
  let nif = Topology.make_netif node ~region ~port_idx ~ip ?stack_tuning () in
  (cvm, nif)

let app_buf cvm mem = Capvm.Cvm.calloc cvm mem app_buffer_size

let seed_plus seed i = Int64.add seed (Int64.of_int i)

(* Supervised replacement for [Stack.start]: the same loop, but every
   iteration enters the cVM through the supervisor's trap boundary, so a
   capability fault raised anywhere inside it (frame processing, TCP
   machinery, the application hook) quarantines that cVM while the rest
   of the topology keeps running. While the cVM is down the driver polls
   its state; it resumes looping on recovery and dies with the cVM.
   Uses a constant gap (no idle backoff): supervised runs are the chaos
   runs, where calibrated idle behaviour is not at stake. *)
let supervised_stack_loop sup ~cvm ~running stack =
  let engine = Netstack.Stack.engine stack in
  let gap = (Netstack.Stack.config stack).Netstack.Stack.loop_gap in
  let down_poll = Dsim.Time.us 20 in
  let cvm_name = Capvm.Cvm.name cvm in
  let k_loop =
    Dsim.Profile.(key default) ~component:"netstack" ~cvm:cvm_name ~stage:"loop"
  in
  let k_poll =
    Dsim.Profile.(key default) ~component:"netstack" ~cvm:cvm_name
      ~stage:"down_poll"
  in
  Capvm.Supervisor.register sup cvm;
  let rec iter () =
    if !running then
      match Capvm.Supervisor.state sup ~cvm with
      | Capvm.Supervisor.Dead -> ()
      | Capvm.Supervisor.Running -> (
        match
          Capvm.Supervisor.run sup ~cvm (fun () ->
              Netstack.Stack.loop_once stack)
        with
        | Capvm.Supervisor.Done work_ns ->
          ignore
            (Dsim.Engine.schedule_l engine
               ~delay:(Dsim.Time.add (Dsim.Time.of_float_ns work_ns) gap)
               ~label:k_loop iter)
        | Capvm.Supervisor.Faulted _ | Capvm.Supervisor.Refused _ ->
          ignore (Dsim.Engine.schedule_l engine ~delay:down_poll ~label:k_poll iter))
      | _ ->
        ignore (Dsim.Engine.schedule_l engine ~delay:down_poll ~label:k_poll iter)
  in
  iter ()

(* --------------------------------------------------------------- *)
(* Dual-port: Baseline (two processes) and Scenario 1               *)
(* --------------------------------------------------------------- *)

let build_dual_port ?(cheri = true) ?(seed = 42L) ?supervise ?app_hook
    ~direction () =
  (* The bandwidth data path is identical with and without CHERI — the
     paper's Table II shows exactly that (Baseline and Scenario 1 rows
     match) — so [cheri] only affects the latency harness, not this
     topology. *)
  ignore cheri;
  let engine = Shardcfg.engine () in
  let supervise = Option.map (fun f -> f engine) supervise in
  let dut = Topology.make_node engine ~name:"morello" ~ports:2 () in
  let peer =
    Topology.make_node engine ~name:"loadgen" ~generous_pci:true ~ports:2 ()
  in
  let running = ref true in
  let flows = ref [] and stoppers = ref [] in
  let links = ref [] and netifs = ref [] and cvms = ref [] in
  (* Identical to [Stack.start ~hook] when unsupervised; otherwise every
     iteration of this cVM's loop runs under the trap boundary, and the
     chaos hook gets a point inside the compartment to raise faults
     from. *)
  let start_dut_stack cvm nif hook =
    let hook =
      match app_hook with
      | None -> hook
      | Some inject ->
        fun s ->
          inject cvm;
          hook s
    in
    match supervise with
    | None -> Netstack.Stack.start ~hook nif.Topology.stack
    | Some sup ->
      Netstack.Stack.set_hook nif.Topology.stack (Some hook);
      supervised_stack_loop sup ~cvm ~running nif.Topology.stack
  in
  (* Each port pair (DUT stack, peer stack, their link and apps) is a
     self-contained event population — place pair [i] on shard
     [i mod shards]. Interleaved execution is order-identical whatever
     the placement; under domains the two pairs run in parallel. *)
  List.iter
    (fun i ->
      Shardcfg.with_placement engine i @@ fun () ->
      links := Topology.link engine dut i peer i :: !links;
      let subnet = i in
      let tune s cfg = { cfg with Netstack.Stack.rng_seed = seed_plus seed s } in
      let dcvm, dnif =
        cvm_netif dut
          ~name:(Printf.sprintf "cVM%d" (i + 1))
          ~port_idx:i ~ip:(ip_dut subnet) ~stack_tuning:(tune (i * 2)) ()
      in
      let pcvm, pnif =
        cvm_netif peer
          ~name:(Printf.sprintf "gen%d" (i + 1))
          ~port_idx:i ~ip:(ip_peer subnet)
          ~stack_tuning:(tune ((i * 2) + 1))
          ()
      in
      let dut_buf = app_buf dcvm (Topology.node_mem dut) in
      let peer_buf = app_buf pcvm (Topology.node_mem peer) in
      let dut_api = Iperf.api_of_ff dnif.Topology.ff in
      let peer_api = Iperf.api_of_ff pnif.Topology.ff in
      let label = Printf.sprintf "cVM%d" (i + 1) in
      netifs := dnif :: !netifs;
      cvms := dcvm :: !cvms;
      (match direction with
      | Dut_receives ->
        let srv = Iperf.server dut_api ~buf:dut_buf ~port:iperf_port in
        let cli =
          Iperf.client peer_api ~buf:peer_buf ~server_ip:(ip_dut subnet)
            ~port:iperf_port ()
        in
        start_dut_stack dcvm dnif (fun _ -> Iperf.server_step srv);
        Netstack.Stack.start
          ~hook:(fun _ -> Iperf.client_step cli)
          pnif.Topology.stack;
        flows :=
          { label; take_bytes = (fun () -> Iperf.server_take_rx srv) } :: !flows
      | Dut_sends ->
        let srv = Iperf.server peer_api ~buf:peer_buf ~port:iperf_port in
        let cli =
          Iperf.client dut_api ~buf:dut_buf ~server_ip:(ip_peer subnet)
            ~port:iperf_port ()
        in
        start_dut_stack dcvm dnif (fun _ -> Iperf.client_step cli);
        Netstack.Stack.start
          ~hook:(fun _ -> Iperf.server_step srv)
          pnif.Topology.stack;
        flows :=
          { label; take_bytes = (fun () -> Iperf.client_take_tx cli) } :: !flows);
      stoppers :=
        (fun () ->
          Netstack.Stack.stop dnif.Topology.stack;
          Netstack.Stack.stop pnif.Topology.stack)
        :: !stoppers)
    [ 0; 1 ];
  {
    engine;
    dut;
    peer;
    flows = List.rev !flows;
    mutex = None;
    links = List.rev !links;
    dut_netifs = List.rev !netifs;
    app_cvms = List.rev !cvms;
    stop =
      (fun () ->
        running := false;
        List.iter (fun f -> f ()) !stoppers);
  }

(* --------------------------------------------------------------- *)
(* Single-port topologies (Baseline-single, Scenario 2, Scenario 3) *)
(* --------------------------------------------------------------- *)

type single_port = {
  sp_engine : Dsim.Engine.t;
  sp_dut : Topology.node;
  sp_peer : Topology.node;
  sp_stack_cvm : Capvm.Cvm.t;
  sp_dnif : Topology.netif;
  sp_pnif : Topology.netif;
  sp_peer_cvm : Capvm.Cvm.t;
  sp_link : Nic.Link.t;
}

let single_port_base ?engine ~seed () =
  (* [engine] lets a caller (the wall-clock bench) build several
     independent single-port topologies as replicas sharing one sharded
     engine, each under its own {!Shardcfg.with_placement}. *)
  let engine = match engine with Some e -> e | None -> Shardcfg.engine () in
  let dut = Topology.make_node engine ~name:"morello" ~ports:2 () in
  let peer =
    Topology.make_node engine ~name:"loadgen" ~generous_pci:true ~ports:2 ()
  in
  let link = Topology.link engine dut 0 peer 0 in
  let tune s cfg = { cfg with Netstack.Stack.rng_seed = seed_plus seed s } in
  let stack_cvm, dnif =
    cvm_netif dut ~name:"cVM1" ~port_idx:0 ~ip:(ip_dut 0)
      ~stack_tuning:(tune 0) ()
  in
  let peer_cvm, pnif =
    cvm_netif peer ~name:"gen1" ~port_idx:0 ~ip:(ip_peer 0)
      ~stack_tuning:(tune 1) ()
  in
  {
    sp_engine = engine;
    sp_dut = dut;
    sp_peer = peer;
    sp_stack_cvm = stack_cvm;
    sp_dnif = dnif;
    sp_pnif = pnif;
    sp_peer_cvm = peer_cvm;
    sp_link = link;
  }

(* The peer side of [n] flows: servers when the DUT sends, clients when
   the DUT receives. All peer apps share the peer stack's loop hook. *)
let peer_apps sp ~direction ~n =
  let api = Iperf.api_of_ff sp.sp_pnif.Topology.ff in
  let mem = Topology.node_mem sp.sp_peer in
  let steps =
    List.init n (fun i ->
        let buf = app_buf sp.sp_peer_cvm mem in
        match direction with
        | Dut_sends ->
          let srv = Iperf.server api ~buf ~port:(iperf_port + i) in
          fun () -> Iperf.server_step srv
        | Dut_receives ->
          let cli =
            Iperf.client api ~buf ~server_ip:(ip_dut 0) ~port:(iperf_port + i)
              ()
          in
          fun () -> Iperf.client_step cli)
  in
  Netstack.Stack.start
    ~hook:(fun _ -> List.iter (fun step -> step ()) steps)
    sp.sp_pnif.Topology.stack

(* A DUT-side app for flow [i]; returns (step, take_bytes, stop) —
   [stop] is the teardown a supervisor runs if the hosting cVM dies.

   [throttled] models the contended client-mode unfairness of Table II:
   the paper attributes the cVM2/cVM3 imbalance to the absence of any
   fairness control on the shared mutex, i.e. the losing thread gets
   fewer useful API slots per lock hand-off. We reproduce that by
   capping the throttled app to one small write per acquisition. *)
let dut_app sp ~direction ~flow_idx ~app_cvm ?(throttled = false) () =
  let api = Iperf.api_of_ff sp.sp_dnif.Topology.ff in
  let buf = app_buf app_cvm (Topology.node_mem sp.sp_dut) in
  match direction with
  | Dut_receives ->
    let srv = Iperf.server api ~buf ~port:(iperf_port + flow_idx) in
    ( (fun () -> Iperf.server_step srv),
      (fun () -> Iperf.server_take_rx srv),
      fun () -> Iperf.server_stop srv )
  | Dut_sends ->
    let write_size = if throttled then 8192 else app_buffer_size in
    let max_writes_per_step = if throttled then 1 else 16 in
    let cli =
      Iperf.client api ~buf ~server_ip:(ip_peer 0) ~port:(iperf_port + flow_idx)
        ~write_size ~max_writes_per_step ()
    in
    ( (fun () -> Iperf.client_step cli),
      (fun () -> Iperf.client_take_tx cli),
      fun () -> Iperf.client_stop cli )

let build_single_baseline ?engine ?(seed = 43L) ~direction () =
  let sp = single_port_base ?engine ~seed () in
  (* Single process: the app runs inside the stack loop, directly. *)
  let app_cvm =
    Capvm.Intravisor.create_cvm
      (Topology.intravisor sp.sp_dut)
      ~name:"proc" ~size:cvm_size
  in
  let step, take, _stop = dut_app sp ~direction ~flow_idx:0 ~app_cvm () in
  Netstack.Stack.start ~hook:(fun _ -> step ()) sp.sp_dnif.Topology.stack;
  peer_apps sp ~direction ~n:1;
  {
    engine = sp.sp_engine;
    dut = sp.sp_dut;
    peer = sp.sp_peer;
    flows = [ { label = "Baseline (cVM2)"; take_bytes = take } ];
    mutex = None;
    links = [ sp.sp_link ];
    dut_netifs = [ sp.sp_dnif ];
    app_cvms = [ app_cvm ];
    stop =
      (fun () ->
        Netstack.Stack.stop sp.sp_dnif.Topology.stack;
        Netstack.Stack.stop sp.sp_pnif.Topology.stack);
  }

(* Scenario 2 main-loop driver: each iteration runs under the mutex and
   holds it for the iteration's CPU cost. *)
let s2_stack_driver sp mu ~running =
  let engine = sp.sp_engine in
  let cost = Topology.node_cost sp.sp_dut in
  let gap = Dsim.Time.of_float_ns cost.Dsim.Cost_model.stack_loop_gap_ns in
  let k_hold =
    Dsim.Profile.(key default) ~component:"netstack" ~cvm:"cVM1"
      ~stage:"loop_hold"
  in
  let k_gap =
    Dsim.Profile.(key default) ~component:"netstack" ~cvm:"cVM1"
      ~stage:"loop_gap"
  in
  let rec iter () =
    if !running then
      Capvm.Umtx.acquire mu ~owner:"cVM1-loop" (fun ~wait_ns:_ ->
          let work_ns = Netstack.Stack.loop_once sp.sp_dnif.Topology.stack in
          ignore
            (Dsim.Engine.schedule_l engine
               ~delay:(Dsim.Time.of_float_ns work_ns) ~label:k_hold
               (fun () ->
                 Capvm.Umtx.release mu;
                 ignore (Dsim.Engine.schedule_l engine ~delay:gap ~label:k_gap iter))))
  in
  iter ()

(* Scenario 2 application driver: a separate cVM thread; each step
   trampolines into cVM1 under the mutex.

   [extra_tramp] models Scenario 3's additional F-Stack/DPDK split. *)
let s2_app_driver sp mu ~running ~app_cvm ~interval ~extra_tramp step =
  let engine = sp.sp_engine in
  let iv = Topology.intravisor sp.sp_dut in
  let cost = Topology.node_cost sp.sp_dut in
  let stack_counters = Netstack.Stack.counters sp.sp_dnif.Topology.stack in
  let per_seg =
    (Netstack.Stack.config sp.sp_dnif.Topology.stack).Netstack.Stack.per_packet_ns
  in
  let app_base_ns = 800. in
  let k_hold =
    Dsim.Profile.(key default) ~component:"app"
      ~cvm:(Capvm.Cvm.name app_cvm) ~stage:"step_hold"
  in
  let k_iter =
    Dsim.Profile.(key default) ~component:"app"
      ~cvm:(Capvm.Cvm.name app_cvm) ~stage:"step"
  in
  let rec iter () =
    if !running then begin
      (* One trace per app step: App origin, then the umtx wait and the
         trampoline into cVM1 show up as stages. *)
      let flow =
        Dsim.Flowtrace.origin Dsim.Flowtrace.default
          ~at:(Dsim.Engine.now engine)
          ~flow:(Capvm.Cvm.name app_cvm) App
      in
      Capvm.Umtx.acquire mu ~flow ~owner:(Capvm.Cvm.name app_cvm) (fun ~wait_ns:_ ->
          (* The app step belongs to the app cVM: set the attribution
             context for the synchronous part so the trampoline records
             an appN -> cVM1 crossing (not host -> cVM1) and the audit's
             cross-compartment edges match the paper's topology. *)
          let saved_ctx = Cheri.Fault.current_context () in
          Cheri.Fault.set_context (Capvm.Cvm.name app_cvm);
          let tx0 = stack_counters.Netstack.Stack.tx_frames in
          let (), tramp_ns =
            Fun.protect
              ~finally:(fun () -> Cheri.Fault.set_context saved_ctx)
              (fun () ->
                Capvm.Intravisor.trampoline iv ~flow ~into:sp.sp_stack_cvm step)
          in
          let tx_delta = stack_counters.Netstack.Stack.tx_frames - tx0 in
          let work_ns =
            tramp_ns
            +. (float_of_int extra_tramp *. Capvm.Intravisor.trampoline_cost_ns iv)
            +. cost.Dsim.Cost_model.mutex_uncontended_ns
            +. app_base_ns
            +. (per_seg *. float_of_int tx_delta)
          in
          ignore
            (Dsim.Engine.schedule_l engine
               ~delay:(Dsim.Time.of_float_ns work_ns) ~label:k_hold
               (fun () ->
                 Capvm.Umtx.release mu;
                 Dsim.Flowtrace.hop flow Tramp_out
                   ~at:(Dsim.Engine.now engine);
                 ignore
                   (Dsim.Engine.schedule_l engine ~delay:interval ~label:k_iter
                      iter))))
    end
  in
  iter ()

(* Supervised variant of [s2_app_driver]. Differences: the app object is
   rebuilt on restart (its connection died with the cVM), every entry
   that runs compartment code goes through the supervisor's trap
   boundary, and containment force-releases the shared mutex — the
   Scenario 2 hazard is precisely a dead app cVM leaving the F-Stack
   mutex held, deadlocking cVM1's main loop and every sibling. *)
let s2_app_driver_supervised sp mu sup ~running ~app_cvm ~interval ~extra_tramp
    ~app_hook make_app =
  let engine = sp.sp_engine in
  let iv = Topology.intravisor sp.sp_dut in
  let cost = Topology.node_cost sp.sp_dut in
  let stack_counters = Netstack.Stack.counters sp.sp_dnif.Topology.stack in
  let per_seg =
    (Netstack.Stack.config sp.sp_dnif.Topology.stack).Netstack.Stack.per_packet_ns
  in
  let app_base_ns = 800. in
  let name = Capvm.Cvm.name app_cvm in
  let k_hold =
    Dsim.Profile.(key default) ~component:"app" ~cvm:name ~stage:"step_hold"
  in
  let k_iter =
    Dsim.Profile.(key default) ~component:"app" ~cvm:name ~stage:"step"
  in
  let cur = ref (make_app ()) in
  let iter_ref = ref (fun () -> ()) in
  let resched () =
    ignore
      (Dsim.Engine.schedule_l engine ~delay:interval ~label:k_iter (fun () ->
           !iter_ref ()))
  in
  Capvm.Supervisor.register sup app_cvm;
  Capvm.Supervisor.add_cleanup sup ~cvm:app_cvm (fun () ->
      ignore (Capvm.Umtx.force_release mu ~owner:name);
      let _, _, stop = !cur in
      stop ());
  Capvm.Supervisor.set_restart sup ~cvm:app_cvm (fun () ->
      cur := make_app ();
      resched ());
  (* Runs with the mutex held, inside the trap boundary; a fault here
     (e.g. injected by [app_hook]) is the held-mutex crash scenario. *)
  let body flow =
    (match app_hook with Some inject -> inject app_cvm | None -> ());
    let step, _, _ = !cur in
    let tx0 = stack_counters.Netstack.Stack.tx_frames in
    let (), tramp_ns =
      Capvm.Intravisor.trampoline iv ~flow ~into:sp.sp_stack_cvm step
    in
    let tx_delta = stack_counters.Netstack.Stack.tx_frames - tx0 in
    let work_ns =
      tramp_ns
      +. (float_of_int extra_tramp *. Capvm.Intravisor.trampoline_cost_ns iv)
      +. cost.Dsim.Cost_model.mutex_uncontended_ns
      +. app_base_ns
      +. (per_seg *. float_of_int tx_delta)
    in
    ignore
      (Dsim.Engine.schedule_l engine
         ~delay:(Dsim.Time.of_float_ns work_ns) ~label:k_hold
         (fun () ->
           Capvm.Umtx.release mu;
           Dsim.Flowtrace.hop flow Tramp_out ~at:(Dsim.Engine.now engine);
           resched ()))
  in
  let iter () =
    if !running then
      match Capvm.Supervisor.state sup ~cvm:app_cvm with
      | Capvm.Supervisor.Dead -> ()
      | Capvm.Supervisor.Running ->
        let flow =
          Dsim.Flowtrace.origin Dsim.Flowtrace.default
            ~at:(Dsim.Engine.now engine) ~flow:name App
        in
        Capvm.Umtx.acquire mu ~flow ~owner:name (fun ~wait_ns:_ ->
            match
              Capvm.Supervisor.run sup ~cvm:app_cvm (fun () -> body flow)
            with
            | Capvm.Supervisor.Done () -> ()
            | Capvm.Supervisor.Faulted _ ->
              (* Containment force-released the mutex; the restart (if
                 any) re-arms the loop. *)
              ()
            | Capvm.Supervisor.Refused _ ->
              (* A wake already in flight when the cVM trapped; the
                 cleanup broke the hold, nothing runs. *)
              ())
      | _ -> resched ()
  in
  iter_ref := iter;
  iter ()

let build_s2_like ?(seed = 44L) ?(contended = false)
    ?(lock_policy = Capvm.Umtx.Barging) ?(app_interval = Dsim.Time.us 2)
    ?supervise ?app_hook ~extra_tramp ~direction () =
  let sp = single_port_base ~seed () in
  let engine = sp.sp_engine in
  let supervise = Option.map (fun f -> f engine) supervise in
  let cost = Topology.node_cost sp.sp_dut in
  let mu =
    Capvm.Umtx.create engine ~policy:lock_policy
      ~uncontended_ns:cost.Dsim.Cost_model.mutex_uncontended_ns
      ~wake_ns:cost.Dsim.Cost_model.umtx_wake_ns ()
  in
  let running = ref true in
  let napps = if contended then 2 else 1 in
  let cvms = ref [] in
  let flows =
    List.init napps (fun i ->
        let app_cvm =
          Capvm.Intravisor.create_cvm
            (Topology.intravisor sp.sp_dut)
            ~name:(Printf.sprintf "cVM%d" (i + 2))
            ~size:cvm_size
        in
        cvms := app_cvm :: !cvms;
        let throttled = contended && i = 1 && direction = Dut_sends in
        let interval =
          if throttled then Dsim.Time.mul app_interval 33 else app_interval
        in
        let label = Printf.sprintf "cVM%d" (i + 2) in
        match supervise with
        | None ->
          let step, take, _stop =
            dut_app sp ~direction ~flow_idx:i ~app_cvm ~throttled ()
          in
          s2_app_driver sp mu ~running ~app_cvm ~interval ~extra_tramp step;
          { label; take_bytes = take }
        | Some sup ->
          (* The app is rebuilt on restart; route take_bytes through the
             current incarnation. *)
          let cur_take = ref (fun () -> 0) in
          let make_app () =
            let ((_, take, _) as app) =
              dut_app sp ~direction ~flow_idx:i ~app_cvm ~throttled ()
            in
            cur_take := take;
            app
          in
          s2_app_driver_supervised sp mu sup ~running ~app_cvm ~interval
            ~extra_tramp ~app_hook make_app;
          { label; take_bytes = (fun () -> !cur_take ()) })
  in
  s2_stack_driver sp mu ~running;
  peer_apps sp ~direction ~n:napps;
  {
    engine;
    dut = sp.sp_dut;
    peer = sp.sp_peer;
    flows;
    mutex = Some mu;
    links = [ sp.sp_link ];
    dut_netifs = [ sp.sp_dnif ];
    app_cvms = List.rev !cvms;
    stop =
      (fun () ->
        running := false;
        Netstack.Stack.stop sp.sp_pnif.Topology.stack);
  }

let build_scenario2 ?seed ?contended ?lock_policy ?app_interval ?supervise
    ?app_hook ~direction () =
  build_s2_like ?seed ?contended ?lock_policy ?app_interval ?supervise
    ?app_hook ~extra_tramp:0 ~direction ()

let build_scenario3_split ?seed ~direction () =
  build_s2_like ?seed ~contended:false ~extra_tramp:2 ~direction ()

(* --------------------------------------------------------------- *)
(* Latency-measurement topology (Figs. 4-6)                         *)
(* --------------------------------------------------------------- *)

type measurement_topology = {
  mt_built : built;
  mt_ff : Netstack.Ff_api.t;
  mt_stack : Netstack.Stack.t;
  mt_app_cvm : Capvm.Cvm.t;
  mt_stack_cvm : Capvm.Cvm.t;
  mt_sink_port : int;
}

let build_measurement ?(seed = 45L) ~mode () =
  let sp = single_port_base ~seed () in
  let app_cvm =
    Capvm.Intravisor.create_cvm
      (Topology.intravisor sp.sp_dut)
      ~name:"cVM2" ~size:cvm_size
  in
  let running = ref true in
  let mu_ref = ref None in
  (match mode with
  | `Direct ->
    (* Baseline / Scenario 1: the stack loop drives itself, the measured
       app issues ff_write from its own thread (no mutex involved). *)
    Netstack.Stack.start sp.sp_dnif.Topology.stack;
    peer_apps sp ~direction:Dut_sends ~n:1
  | `S2 contended ->
    let cost = Topology.node_cost sp.sp_dut in
    let mu =
      Capvm.Umtx.create sp.sp_engine ~policy:Capvm.Umtx.Barging
        ~uncontended_ns:cost.Dsim.Cost_model.mutex_uncontended_ns
        ~wake_ns:cost.Dsim.Cost_model.umtx_wake_ns ()
    in
    mu_ref := Some mu;
    s2_stack_driver sp mu ~running;
    if contended then begin
      (* Background cVM3: a full-rate iperf client keeping the main loop
         and the mutex busy, as in the contended Fig. 6 runs. *)
      let bg_cvm =
        Capvm.Intravisor.create_cvm
          (Topology.intravisor sp.sp_dut)
          ~name:"cVM3" ~size:cvm_size
      in
      let step, _take, _stop =
        dut_app sp ~direction:Dut_sends ~flow_idx:1 ~app_cvm:bg_cvm ()
      in
      s2_app_driver sp mu ~running ~app_cvm:bg_cvm ~interval:(Dsim.Time.us 2)
        ~extra_tramp:0 step;
      peer_apps sp ~direction:Dut_sends ~n:2
    end
    else peer_apps sp ~direction:Dut_sends ~n:1);
  {
    mt_built =
      {
        engine = sp.sp_engine;
        dut = sp.sp_dut;
        peer = sp.sp_peer;
        flows = [];
        mutex = !mu_ref;
        links = [ sp.sp_link ];
        dut_netifs = [ sp.sp_dnif ];
        app_cvms = [ app_cvm ];
        stop =
          (fun () ->
            running := false;
            Netstack.Stack.stop sp.sp_dnif.Topology.stack;
            Netstack.Stack.stop sp.sp_pnif.Topology.stack);
      };
    mt_ff = sp.sp_dnif.Topology.ff;
    mt_stack = sp.sp_dnif.Topology.stack;
    mt_app_cvm = app_cvm;
    mt_stack_cvm = sp.sp_stack_cvm;
    mt_sink_port = iperf_port;
  }

(* --------------------------------------------------------------- *)
(* Extension: UDP blast (no flow control)                           *)
(* --------------------------------------------------------------- *)

let build_udp_blast ?engine ?(seed = 47L) ?(payload = 1472) ~offered_mbit () =
  let sp = single_port_base ?engine ~seed () in
  let engine = sp.sp_engine in
  let dut_stack = sp.sp_dnif.Topology.stack in
  let peer_stack = sp.sp_pnif.Topology.stack in
  let port = 5400 in
  let running = ref true in
  (* Receiver: drain and count in the peer's loop hook. *)
  let received = ref 0 and received_mark = ref 0 in
  let rfd =
    match Netstack.Stack.udp_socket peer_stack with
    | Ok fd -> fd
    | Error e -> invalid_arg (Netstack.Errno.to_string e)
  in
  (match Netstack.Stack.udp_bind peer_stack rfd ~port with
  | Ok () -> ()
  | Error e -> invalid_arg (Netstack.Errno.to_string e));
  let drain _ =
    let rec go () =
      match Netstack.Stack.udp_recvfrom peer_stack rfd with
      | Ok (Some (_, _, data)) ->
        received := !received + Bytes.length data;
        go ()
      | Ok None | Error _ -> ()
    in
    go ()
  in
  Netstack.Stack.start ~hook:drain peer_stack;
  Netstack.Stack.start dut_stack;
  (* Sender: one datagram per tick at the offered rate. *)
  let offered = ref 0 and offered_mark = ref 0 in
  let sfd =
    match Netstack.Stack.udp_socket dut_stack with
    | Ok fd -> fd
    | Error e -> invalid_arg (Netstack.Errno.to_string e)
  in
  let interval =
    Dsim.Time.of_float_ns (float_of_int payload *. 8. /. (offered_mbit *. 1e6) *. 1e9)
  in
  let datagram = Bytes.make payload 'u' in
  let k_tick =
    Dsim.Profile.(key default) ~component:"app" ~cvm:"udp_source"
      ~stage:"tick"
  in
  let rec tick () =
    if !running then begin
      offered := !offered + payload;
      (match
         Netstack.Stack.udp_sendto dut_stack sfd ~ip:(ip_peer 0) ~port
           ~buf:datagram
       with
      | Ok () | Error _ -> ());
      ignore (Dsim.Engine.schedule_l engine ~delay:interval ~label:k_tick tick)
    end
  in
  tick ();
  let take counter mark () =
    let d = !counter - !mark in
    mark := !counter;
    d
  in
  {
    engine;
    dut = sp.sp_dut;
    peer = sp.sp_peer;
    flows =
      [ { label = "offered"; take_bytes = take offered offered_mark };
        { label = "received"; take_bytes = take received received_mark } ];
    mutex = None;
    links = [ sp.sp_link ];
    dut_netifs = [ sp.sp_dnif ];
    app_cvms = [];
    stop =
      (fun () ->
        running := false;
        Netstack.Stack.stop dut_stack;
        Netstack.Stack.stop peer_stack);
  }
