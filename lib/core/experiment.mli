(** Registry of the paper's experiments: one entry per table/figure,
    plus the ablations. The CLI ([bin/netrepro]) and the bench harness
    ([bench/main.exe]) both dispatch through this module, so every
    artefact regenerates from a single code path.

    Each runner takes a {!profile} so tests can exercise the full
    pipeline in milliseconds while the bench reproduces the paper's
    parameters (the paper's 1M-iteration latency runs are available via
    {!paper_grade}). *)

type profile = {
  warmup : Dsim.Time.t;
  duration : Dsim.Time.t;  (** Bandwidth measurement window. *)
  iterations : int;  (** Latency samples per configuration. *)
}

val quick : profile  (** CI-sized: ~100 ms windows, 3k samples. *)

val full : profile  (** Default bench: 1 s windows, 100k samples. *)

val paper_grade : profile  (** 1M samples, as in the paper. *)

(** {1 Structured results} *)

val table1 : unit -> Loc_table.row list

val table2 :
  ?profile:profile -> unit -> (string * Bandwidth.sample list) list
(** All ten Table II rows, grouped by configuration block. *)

val fig3 : unit -> Attack.report list

val fig4 : ?profile:profile -> unit -> Measurement.result list
(** Baseline vs Scenario 1. *)

val fig5 : ?profile:profile -> unit -> Measurement.result list
(** Baseline vs Scenario 2 (uncontended). *)

val fig6 : ?profile:profile -> unit -> Measurement.result list
(** Scenario 2 uncontended vs contended. *)

val ablation_lock :
  ?profile:profile -> unit -> (string * Bandwidth.sample list) list
(** Barging vs FIFO hand-off under the contended Scenario 2. *)

val ablation_split :
  ?profile:profile -> unit -> (string * Bandwidth.sample list) list
(** Scenario 3 (app / F-Stack / DPDK in three cVMs) vs Scenario 2. *)

val ablation_udp :
  ?profile:profile -> unit -> (string * Bandwidth.sample list) list
(** Offered vs received UDP under increasing load (extension). *)

(** {1 Rendered runners} *)

type output = {
  text : string;  (** Human-readable table / boxplot rendering. *)
  summary : Dsim.Json.t;
      (** Machine-readable digest of the same run (one JSON value per
          table row / boxplot / attack report) — what the bench harness
          writes to its [BENCH_<id>.json] files. *)
}

type spec = {
  id : string;  (** e.g. "table2", "fig4". *)
  title : string;
  paper_ref : string;
  report : profile -> output;
}

val all : spec list
val find : string -> spec option
val ids : unit -> string list
