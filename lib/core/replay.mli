(** Replay verification for recorded journals ([netrepro replay]).

    A [*.journal.jsonl] header written by [netrepro run --journal] or
    [netrepro chaos --journal] carries everything needed to re-execute
    the run: the kind (["run"] or ["chaos"]), the experiment ids, the
    profile knobs and the seed. {!run} re-executes with
    {!Dsim.Journal.verify_against} armed, so every live dispatch is
    compared — virtual time, label, causal parent, RNG-draw count —
    against the recording, and the first mismatch is reported with a
    ±K-event context window from the journal.

    Replay {e verifies} rather than re-drives: the journal is an
    assertion oracle over a normal re-execution, not a script that
    forces the schedule — so a nondeterminism bug cannot hide by being
    replayed into submission; it surfaces as the first diverging
    dispatch. *)

type outcome = {
  path : string;
  kind : string;  (** ["run"] or ["chaos"], from the header. *)
  checked : int;  (** Dispatches that matched. *)
  total : int;  (** Dispatches recorded in the journal. *)
  mismatch : Dsim.Journal.mismatch option;
  pass : bool;
  text : string;  (** Deterministic human-readable report. *)
}

val run : ?context:int -> string -> (outcome, string) result
(** [run path] loads, re-executes and verifies. [Error] covers load /
    parse / header problems (exit 2 at the CLI); a divergence is an
    [Ok] outcome with [pass = false]. [context] is the ±K window
    (default 5). *)

val exit_code : outcome -> int
(** 0 when the replay matched, 1 on first divergence. *)
