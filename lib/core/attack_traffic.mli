(** Red-team network-borne attack generator with blast-radius gates.

    Drives the seeded attack corpus of {!Dsim.Redteam} against the
    three reproduction topologies and demands a typed verdict for every
    launch:

    - {b phase 1}, Baseline dual-port ([cheri:false]): the wire-parser
      subset is caught (those checks are software, common to both
      models), but the memory-shaped attacks — lying-length overread,
      use-after-close write, cross-tenant read — go through the flat
      MMU model silently; the ledger {e records} the corruption/leak.
    - {b phase 2}, Scenario 1 dual-port (CHERI): the full wire corpus
      (14 parser-bounds frames, blind RST/SYN/FIN, SYN/fragment
      floods, a port scan, an mbuf exhaust-and-spray) against port 0,
      with port 1 as the blast-radius control.
    - {b phase 3}, Scenario 2 shared stack (CHERI): cross-tenant
      probes (forged 5-tuples, port scan, RSS-steering abuse), a
      close-race stale-capability dereference inside the supervised
      [ff_*] boundary (mutex held), a stale-fd epoll probe, and
      floods — the supervisor must contain the fault, release the
      mutex, and the sibling must keep its goodput.

    Attack frames enter via {!Nic.Link.inject} (the tamper hook), so
    they share serialisation, FCS and propagation with legitimate
    traffic and runs stay deterministic per seed. Each phase runs an
    undisturbed twin first (same topology seed, no attacks); the PR 4
    blast-radius gate extends to attacked runs: sibling goodput outside
    quarantine must be >= 0.9x its twin. *)

type profile = {
  warmup : Dsim.Time.t;
  duration : Dsim.Time.t;
  sample_every : Dsim.Time.t;
  exhaust_window : Dsim.Time.t;
      (** How long the mbuf spray holds the pool. *)
}

val quick : profile
(** CI-sized: 6 ms warmup, 30 ms attacked window. *)

val full : profile
(** 20 ms warmup, 120 ms attacked window. *)

type phase = {
  ap_title : string;
  ap_victim : string;
  ap_sibling : string;
  ap_ids : int list;  (** Ledger ids launched during this phase. *)
  ap_drops : ((Dsim.Flowtrace.stage * Dsim.Flowtrace.reason) * int) list;
  ap_sibling_rate : float;  (** Gbit/s outside quarantine. *)
  ap_sibling_ref : float;  (** Undisturbed twin, same windows. *)
  ap_victim_rate : float;
  ap_victim_ref : float;
  ap_mutex_free : bool;
      (** Shared mutex not left held by the victim cVM. *)
  ap_pool_recovered : bool;  (** Mbufs available again after the spray. *)
  ap_rst_sent : int;  (** RSTs the stack answered probes with. *)
}

type report = {
  seed : int64;
  launched : int;
  caught : int;
  leaked : int;
  pending : int;
  counts : (Dsim.Redteam.cls * Dsim.Redteam.tally) list;
  phases : phase list;
  cheri_caught : int;  (** Caught launches in the CHERI phases. *)
  cheri_launched : int;
  pass : bool;
      (** No pending launches, 100% caught-and-attributed in the CHERI
          phases, >= 1 recorded baseline leak, sibling ratio >= 0.9 and
          pools/mutex recovered in every phase. *)
  text : string;
  json : Dsim.Json.t;
}

val run :
  ?profile:profile -> ?blackbox_dir:string -> seed:int64 -> unit -> report
(** Run the three attacked phases (each against its undisturbed twin)
    and assemble the gated report. With [blackbox_dir], supervisor
    containments also write [DIR/<cvm>.blackbox.json] and the report
    links each contained verdict to its dump file. Deterministic:
    the same [seed] yields a byte-identical [text] and [json]. *)
