(** Rendering helpers for the paper's tables and figures in a terminal. *)

val ascii_boxplot :
  labels_and_boxes:(string * Dsim.Stats.boxplot) list ->
  ?width:int ->
  ?log_scale:bool ->
  unit ->
  string
(** Horizontal box plots sharing one axis, like Figs. 4-6. [log_scale]
    is needed for Fig. 6, where the contended box dwarfs the rest. *)

val table :
  header:string list -> rows:string list list -> string
(** Monospace table with column sizing. *)

val mbit : float -> string
val pct : float -> string

val metrics_digest : ?registry:Dsim.Metrics.t -> unit -> string
(** Table of every cvm-labelled series in [registry] (default:
    {!Dsim.Metrics.default}), grouped by compartment. Zero-valued
    series other than [trampoline_crossings_total] are elided. *)
