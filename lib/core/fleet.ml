(* Fleet tenancy observatory (extension beyond the paper's two-app
   Scenario 2): one stack cVM shared by N tenant cVMs over the umtx,
   each tenant churning request/response flows against an epoll server
   farm on the peer. The interesting output is not a bandwidth number
   but the per-tenant rollup: who got what, at which percentile, paid
   for by how many compartment crossings. *)

type profile = {
  p_name : string;
  p_tenants : int;
  p_duration : Dsim.Time.t;
  p_warmup : Dsim.Time.t;
  p_arrival_mean_ns : float;
  p_poll_interval : Dsim.Time.t;
  p_concurrency : int;
  p_sample_every : int;
  p_fct_p999_budget_ns : float;
  p_fairness_floor : float;
}

let quick =
  {
    p_name = "quick";
    p_tenants = 64;
    p_duration = Dsim.Time.ms 120;
    p_warmup = Dsim.Time.ms 2;
    p_arrival_mean_ns = 16.0e6;
    p_poll_interval = Dsim.Time.us 20;
    p_concurrency = 2;
    p_sample_every = 32;
    p_fct_p999_budget_ns = 60.0e6;
    p_fairness_floor = 0.9;
  }

let full =
  {
    quick with
    p_name = "full";
    p_tenants = 256;
    p_duration = Dsim.Time.ms 400;
    p_arrival_mean_ns = 48.0e6;
    p_fct_p999_budget_ns = 120.0e6;
  }

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                        *)
(* ------------------------------------------------------------------ *)

(* A flow is one connection carrying [req] bytes client->server (the
   first 8 encoding the request and response lengths, both int32 BE)
   answered by [resp] bytes server->client; the client then closes.
   Flow completion time is arrival -> last response byte read, so it
   includes queueing for the tenant's mutex slot — the multi-tenancy
   cost the observatory exists to expose. *)
let header_len = 8
let port_base = 6000
let tenant_buf_size = 8 * 1024
let server_buf_size = 16 * 1024
let tenant_cvm_size = 64 * 1024

let encode_header ~req ~resp =
  let b = Bytes.create header_len in
  Bytes.set_int32_be b 0 (Int32.of_int req);
  Bytes.set_int32_be b 4 (Int32.of_int resp);
  b

let tenant_name i = Printf.sprintf "t%03d" i

(* Heavy-tailed size mix: mostly short RPCs, a bulk tail. Sizes are
   clamped so even the tail stays finite and the minimum always covers
   the header. *)
let draw_flow rng =
  let clamp lo hi x = Float.max lo (Float.min hi x) in
  if Dsim.Rng.float rng 1.0 < 0.9 then
    let req =
      64 + int_of_float (clamp 8. 8000. (Dsim.Rng.lognormal rng ~mu:6.2 ~sigma:0.8))
    in
    let resp =
      64 + int_of_float (clamp 8. 16000. (Dsim.Rng.lognormal rng ~mu:6.9 ~sigma:0.7))
    in
    (req, resp)
  else
    let resp =
      int_of_float
        (clamp 16384. 262144. (Dsim.Rng.lognormal rng ~mu:11.3 ~sigma:0.6))
    in
    (256, resp)

(* ------------------------------------------------------------------ *)
(* Peer-side server farm                                                *)
(* ------------------------------------------------------------------ *)

type srv_conn = {
  sc_fd : int;
  sc_hdr : Bytes.t;
  mutable sc_rcvd : int;  (* request bytes received, header included *)
  mutable sc_req : int;  (* total request length; -1 until parsed *)
  mutable sc_resp_left : int;
  mutable sc_writing : bool;  (* EPOLLOUT armed for response backlog *)
}

type server = {
  sv_api : Iperf.api;
  sv_mem : Cheri.Tagged_memory.t;
  sv_rbuf : Cheri.Capability.t;
  sv_wbuf : Cheri.Capability.t;
  sv_epfd : int;
  sv_listeners : (int, unit) Hashtbl.t;
  sv_conns : (int, srv_conn) Hashtbl.t;
}

let sv_get = function
  | Ok v -> v
  | Error e -> invalid_arg ("fleet server setup: " ^ Netstack.Errno.to_string e)

let make_server api ~mem ~rbuf ~wbuf ~tenants =
  let epfd = sv_get (api.Iperf.epoll_create ()) in
  let listeners = Hashtbl.create (2 * tenants) in
  for i = 0 to tenants - 1 do
    let lfd = sv_get (api.Iperf.socket ()) in
    sv_get (api.Iperf.bind lfd ~port:(port_base + i));
    sv_get (api.Iperf.listen lfd ~backlog:8);
    sv_get (api.Iperf.epoll_ctl ~epfd ~op:`Add ~fd:lfd Netstack.Epoll.epollin);
    Hashtbl.replace listeners lfd ()
  done;
  {
    sv_api = api;
    sv_mem = mem;
    sv_rbuf = rbuf;
    sv_wbuf = wbuf;
    sv_epfd = epfd;
    sv_listeners = listeners;
    sv_conns = Hashtbl.create (4 * tenants);
  }

let server_drop sv c =
  ignore (sv.sv_api.Iperf.epoll_ctl ~epfd:sv.sv_epfd ~op:`Del ~fd:c.sc_fd 0);
  ignore (sv.sv_api.Iperf.close c.sc_fd);
  Hashtbl.remove sv.sv_conns c.sc_fd

(* Push response bytes; on backpressure leave EPOLLOUT armed and come
   back on the next readiness report. *)
let server_write sv c =
  let wlen = Cheri.Capability.length sv.sv_wbuf in
  let rec go n =
    if c.sc_resp_left > 0 && n < 32 then begin
      let nbytes = min wlen c.sc_resp_left in
      match sv.sv_api.Iperf.write c.sc_fd ~buf:sv.sv_wbuf ~nbytes with
      | Ok sent ->
        c.sc_resp_left <- c.sc_resp_left - sent;
        if sent = nbytes then go (n + 1) else arm ()
      | Error Netstack.Errno.EAGAIN -> arm ()
      | Error _ -> server_drop sv c
    end
    else if c.sc_resp_left = 0 && c.sc_writing then begin
      c.sc_writing <- false;
      ignore
        (sv.sv_api.Iperf.epoll_ctl ~epfd:sv.sv_epfd ~op:`Mod ~fd:c.sc_fd
           Netstack.Epoll.epollin)
    end
  and arm () =
    if not c.sc_writing then begin
      c.sc_writing <- true;
      ignore
        (sv.sv_api.Iperf.epoll_ctl ~epfd:sv.sv_epfd ~op:`Mod ~fd:c.sc_fd
           Netstack.Epoll.(epollin lor epollout))
    end
  in
  go 0

let server_feed sv c got =
  (* Stream bytes [sc_rcvd, sc_rcvd+got) just landed at the read
     buffer's base; the first 8 stream bytes are the header. *)
  (if c.sc_rcvd < header_len then begin
     let need = min got (header_len - c.sc_rcvd) in
     let piece =
       Cheri.Tagged_memory.load_bytes sv.sv_mem ~cap:sv.sv_rbuf
         ~addr:(Cheri.Capability.base sv.sv_rbuf)
         ~len:need
     in
     Bytes.blit piece 0 c.sc_hdr c.sc_rcvd need
   end);
  c.sc_rcvd <- c.sc_rcvd + got;
  if c.sc_req < 0 && c.sc_rcvd >= header_len then begin
    c.sc_req <- Int32.to_int (Bytes.get_int32_be c.sc_hdr 0);
    c.sc_resp_left <- Int32.to_int (Bytes.get_int32_be c.sc_hdr 4)
  end;
  if c.sc_req >= 0 && c.sc_rcvd >= c.sc_req then server_write sv c

let server_read sv c =
  let nbytes = Cheri.Capability.length sv.sv_rbuf in
  let rec go n =
    if n < 32 then
      match sv.sv_api.Iperf.read c.sc_fd ~buf:sv.sv_rbuf ~nbytes with
      | Ok 0 -> server_drop sv c
      | Ok got ->
        server_feed sv c got;
        if Hashtbl.mem sv.sv_conns c.sc_fd then go (n + 1)
      | Error Netstack.Errno.EAGAIN -> ()
      | Error _ -> server_drop sv c
  in
  go 0

let server_step sv =
  match sv.sv_api.Iperf.epoll_wait ~epfd:sv.sv_epfd ~max:64 with
  | Error _ -> ()
  | Ok events ->
    List.iter
      (fun (fd, ev) ->
        if Hashtbl.mem sv.sv_listeners fd then begin
          let rec accept_all () =
            match sv.sv_api.Iperf.accept fd with
            | Ok (cfd, _ip, _port) ->
              ignore
                (sv.sv_api.Iperf.epoll_ctl ~epfd:sv.sv_epfd ~op:`Add ~fd:cfd
                   Netstack.Epoll.epollin);
              Hashtbl.replace sv.sv_conns cfd
                {
                  sc_fd = cfd;
                  sc_hdr = Bytes.create header_len;
                  sc_rcvd = 0;
                  sc_req = -1;
                  sc_resp_left = 0;
                  sc_writing = false;
                };
              accept_all ()
            | Error _ -> ()
          in
          accept_all ()
        end
        else
          match Hashtbl.find_opt sv.sv_conns fd with
          | None -> ()
          | Some c ->
            if
              Netstack.Epoll.has ev Netstack.Epoll.epollerr
              || Netstack.Epoll.has ev Netstack.Epoll.epollhup
            then server_drop sv c
            else begin
              if Netstack.Epoll.has ev Netstack.Epoll.epollout then
                server_write sv c;
              if
                Hashtbl.mem sv.sv_conns fd
                && Netstack.Epoll.has ev Netstack.Epoll.epollin
              then server_read sv c
            end)
      events

(* ------------------------------------------------------------------ *)
(* Tenant clients (DUT side)                                            *)
(* ------------------------------------------------------------------ *)

type flow_spec = { fs_req : int; fs_resp : int; fs_arrived : Dsim.Time.t }

type active_flow = {
  af_fd : int;
  af_spec : flow_spec;
  af_hdr : Bytes.t;
  mutable af_sent : int;
  mutable af_rcvd : int;
  mutable af_sending : bool;  (* still interested in EPOLLOUT *)
}

type tenant = {
  tn_idx : int;
  tn_name : string;
  tn_buf : Cheri.Capability.t;
  tn_rng : Dsim.Rng.t;
  tn_epfd : int;
  tn_queue : flow_spec Queue.t;
  mutable tn_active : active_flow list;
  mutable tn_polling : bool;
  mutable tn_backoff : int;  (* poll-interval multiplier, power of two *)
  mutable tn_arrivals : int;
  mutable tn_flows : int;
  mutable tn_failed : int;
  mutable tn_bytes : int;
  mutable tn_tx_frames : int;
}

type fleet = {
  f_engine : Dsim.Engine.t;
  f_dut : Topology.node;
  f_peer : Topology.node;
  f_stack_cvm : Capvm.Cvm.t;
  f_dnif : Topology.netif;
  f_pnif : Topology.netif;
  f_mutex : Capvm.Umtx.t;
  f_tenants : tenant array;
  f_obs : Dsim.Tenancy.t;
  f_fct : Dsim.Stats.t;  (* fleet-wide FCT buffer for the p99.9 gate *)
  f_running : bool ref;
  mutable f_socks_peak : int;
}

let cl_get = function
  | Ok v -> v
  | Error e -> invalid_arg ("fleet client: " ^ Netstack.Errno.to_string e)

let client_drop f tn af ~failed =
  ignore
    ((Iperf.api_of_ff f.f_dnif.Topology.ff).Iperf.epoll_ctl ~epfd:tn.tn_epfd
       ~op:`Del ~fd:af.af_fd 0);
  ignore ((Iperf.api_of_ff f.f_dnif.Topology.ff).Iperf.close af.af_fd);
  tn.tn_active <- List.filter (fun a -> a.af_fd <> af.af_fd) tn.tn_active;
  if failed then tn.tn_failed <- tn.tn_failed + 1

(* Send request bytes. The header prefix must survive short writes, so
   while [af_sent < header_len] each write re-stages the unsent header
   remainder at the buffer base (body bytes are arbitrary padding). *)
let client_send f api tn af =
  let mem = Topology.node_mem f.f_dut in
  let blen = Cheri.Capability.length tn.tn_buf in
  let base = Cheri.Capability.base tn.tn_buf in
  let rec go n =
    if af.af_sent < af.af_spec.fs_req && n < 16 then begin
      if af.af_sent < header_len then
        Cheri.Tagged_memory.store_bytes mem ~cap:tn.tn_buf ~addr:base
          (Bytes.sub af.af_hdr af.af_sent (header_len - af.af_sent));
      let nbytes = min blen (af.af_spec.fs_req - af.af_sent) in
      match api.Iperf.write af.af_fd ~buf:tn.tn_buf ~nbytes with
      | Ok sent ->
        af.af_sent <- af.af_sent + sent;
        if sent = nbytes then go (n + 1)
      | Error Netstack.Errno.EAGAIN -> ()
      | Error _ -> client_drop f tn af ~failed:true
    end
  in
  go 0;
  if
    af.af_sending
    && af.af_sent >= af.af_spec.fs_req
    && List.memq af (List.filter (fun a -> a.af_fd = af.af_fd) tn.tn_active)
  then begin
    af.af_sending <- false;
    ignore
      (api.Iperf.epoll_ctl ~epfd:tn.tn_epfd ~op:`Mod ~fd:af.af_fd
         Netstack.Epoll.epollin)
  end

let client_complete f tn af =
  let now = Dsim.Engine.now f.f_engine in
  let fct_ns =
    Dsim.Time.to_float_ns (Dsim.Time.sub now af.af_spec.fs_arrived)
  in
  let bytes = af.af_spec.fs_req + af.af_spec.fs_resp in
  tn.tn_flows <- tn.tn_flows + 1;
  tn.tn_bytes <- tn.tn_bytes + bytes;
  Dsim.Stats.add f.f_fct fct_ns;
  Dsim.Tenancy.note_flow f.f_obs ~tenant:tn.tn_name ~bytes ~fct_ns;
  client_drop f tn af ~failed:false

let client_recv f api tn af =
  let nbytes = Cheri.Capability.length tn.tn_buf in
  let rec go n =
    if n < 16 then
      match api.Iperf.read af.af_fd ~buf:tn.tn_buf ~nbytes with
      | Ok 0 -> client_drop f tn af ~failed:true
      | Ok got ->
        af.af_rcvd <- af.af_rcvd + got;
        if af.af_rcvd >= af.af_spec.fs_resp then client_complete f tn af
        else go (n + 1)
      | Error Netstack.Errno.EAGAIN -> ()
      | Error _ -> client_drop f tn af ~failed:true
  in
  go 0

(* One mutex-held, trampolined application window: admit queued flows up
   to the concurrency cap, then service whatever epoll reports. Returns
   whether the window made progress, which drives the poll backoff. *)
let tenant_body f ~conc api tn =
  let peer_ip = Netstack.Stack.ip f.f_pnif.Topology.stack in
  let started = ref false in
  while
    List.length tn.tn_active < conc && not (Queue.is_empty tn.tn_queue)
  do
    started := true;
    let spec = Queue.pop tn.tn_queue in
    let fd = cl_get (api.Iperf.socket ()) in
    (match
       api.Iperf.connect fd ~ip:peer_ip ~port:(port_base + tn.tn_idx)
     with
    | Ok () | Error Netstack.Errno.EINPROGRESS -> ()
    | Error _ -> ());
    cl_get
      (api.Iperf.epoll_ctl ~epfd:tn.tn_epfd ~op:`Add ~fd
         Netstack.Epoll.epollout);
    tn.tn_active <-
      tn.tn_active
      @ [
          {
            af_fd = fd;
            af_spec = spec;
            af_hdr = encode_header ~req:spec.fs_req ~resp:spec.fs_resp;
            af_sent = 0;
            af_rcvd = 0;
            af_sending = true;
          };
        ]
  done;
  match api.Iperf.epoll_wait ~epfd:tn.tn_epfd ~max:(2 * conc) with
  | Error _ -> !started
  | Ok events ->
    List.iter
      (fun (fd, ev) ->
        match List.find_opt (fun a -> a.af_fd = fd) tn.tn_active with
        | None -> ()
        | Some af ->
          if
            Netstack.Epoll.has ev Netstack.Epoll.epollerr
            || Netstack.Epoll.has ev Netstack.Epoll.epollhup
          then client_drop f tn af ~failed:true
          else begin
            if Netstack.Epoll.has ev Netstack.Epoll.epollout then
              client_send f api tn af;
            if
              Netstack.Epoll.has ev Netstack.Epoll.epollin
              && List.memq af tn.tn_active
            then client_recv f api tn af
          end)
      events;
    !started || events <> []

(* The s2-style app driver, generalised to N tenants: while a tenant
   has work it polls under the mutex at [poll_interval]; when idle it
   parks and the next arrival restarts it. Every window is charged the
   trampoline round trip, the uncontended lock cost, a fixed app cost
   and the per-frame TX cost — and attributed to the tenant's fault
   context so {!Capvm.Intravisor.crossings_from} can bill it later.

   Polling backs off exponentially (x2 per empty window, capped) and
   snaps back on progress: with hundreds of tenants FIFO-queued on one
   mutex, blind fixed-cadence polling collapses the fleet — every
   response wait burns thousands of crossings that queue ahead of
   useful windows. *)
let backoff_cap = 32
let tenant_driver f ~profile tn =
  let engine = f.f_engine in
  let iv = Topology.intravisor f.f_dut in
  let cost = Topology.node_cost f.f_dut in
  let api = Iperf.api_of_ff f.f_dnif.Topology.ff in
  let stack_counters = Netstack.Stack.counters f.f_dnif.Topology.stack in
  let per_seg =
    (Netstack.Stack.config f.f_dnif.Topology.stack).Netstack.Stack.per_packet_ns
  in
  let app_base_ns = 800. in
  let k_hold =
    Dsim.Profile.(key default) ~component:"fleet" ~cvm:tn.tn_name
      ~stage:"step_hold"
  in
  let k_step =
    Dsim.Profile.(key default) ~component:"fleet" ~cvm:tn.tn_name ~stage:"step"
  in
  let rec step () =
    if not !(f.f_running) then tn.tn_polling <- false
    else if tn.tn_active = [] && Queue.is_empty tn.tn_queue then
      tn.tn_polling <- false
    else
      let flow =
        Dsim.Flowtrace.origin Dsim.Flowtrace.default
          ~at:(Dsim.Engine.now engine) ~flow:tn.tn_name App
      in
      Capvm.Umtx.acquire f.f_mutex ~flow ~owner:tn.tn_name (fun ~wait_ns:_ ->
          let saved_ctx = Cheri.Fault.current_context () in
          Cheri.Fault.set_context tn.tn_name;
          let tx0 = stack_counters.Netstack.Stack.tx_frames in
          let progress, tramp_ns =
            Fun.protect
              ~finally:(fun () -> Cheri.Fault.set_context saved_ctx)
              (fun () ->
                Capvm.Intravisor.trampoline iv ~flow ~into:f.f_stack_cvm
                  (fun () -> tenant_body f ~conc:profile.p_concurrency api tn))
          in
          let tx_delta = stack_counters.Netstack.Stack.tx_frames - tx0 in
          tn.tn_tx_frames <- tn.tn_tx_frames + tx_delta;
          tn.tn_backoff <-
            (if progress then 1 else min backoff_cap (2 * tn.tn_backoff));
          let work_ns =
            tramp_ns
            +. cost.Dsim.Cost_model.mutex_uncontended_ns
            +. app_base_ns
            +. (per_seg *. float_of_int tx_delta)
          in
          ignore
            (Dsim.Engine.schedule_l engine
               ~delay:(Dsim.Time.of_float_ns work_ns) ~label:k_hold
               (fun () ->
                 Capvm.Umtx.release f.f_mutex;
                 Dsim.Flowtrace.hop flow Tramp_out
                   ~at:(Dsim.Engine.now engine);
                 ignore
                   (Dsim.Engine.schedule_l engine
                      ~delay:
                        (Dsim.Time.of_float_ns
                           (Dsim.Time.to_float_ns profile.p_poll_interval
                           *. float_of_int tn.tn_backoff))
                      ~label:k_step step))))
  in
  let k_arrival =
    Dsim.Profile.(key default) ~component:"fleet" ~cvm:tn.tn_name
      ~stage:"arrival"
  in
  let rec arrival () =
    if !(f.f_running) then begin
      let req, resp = draw_flow tn.tn_rng in
      tn.tn_arrivals <- tn.tn_arrivals + 1;
      Queue.add
        {
          fs_req = req;
          fs_resp = resp;
          fs_arrived = Dsim.Engine.now engine;
        }
        tn.tn_queue;
      if not tn.tn_polling then begin
        tn.tn_polling <- true;
        ignore
          (Dsim.Engine.schedule_l engine ~delay:Dsim.Time.zero ~label:k_step
             step)
      end;
      ignore
        (Dsim.Engine.schedule_l engine
           ~delay:
             (Dsim.Time.of_float_ns
                (Dsim.Rng.exponential tn.tn_rng
                   ~mean:profile.p_arrival_mean_ns))
           ~label:k_arrival arrival)
    end
  in
  (* First arrival after one exponential gap, so the fleet's opening
     burst is already Poisson-spread instead of synchronized at t0. *)
  ignore
    (Dsim.Engine.schedule_l engine
       ~delay:
         (Dsim.Time.of_float_ns
            (Dsim.Rng.exponential tn.tn_rng ~mean:profile.p_arrival_mean_ns))
       ~label:k_arrival arrival)

(* Stack cVM driver: identical discipline to Scenario 2's main loop —
   each iteration runs under the mutex and holds it for its CPU cost.
   Also the sampling point for the live-socket high-water mark. *)
let stack_driver f =
  let engine = f.f_engine in
  let cost = Topology.node_cost f.f_dut in
  let gap = Dsim.Time.of_float_ns cost.Dsim.Cost_model.stack_loop_gap_ns in
  let k_hold =
    Dsim.Profile.(key default) ~component:"netstack" ~cvm:"cVM1"
      ~stage:"loop_hold"
  in
  let k_gap =
    Dsim.Profile.(key default) ~component:"netstack" ~cvm:"cVM1"
      ~stage:"loop_gap"
  in
  let rec iter () =
    if !(f.f_running) then
      Capvm.Umtx.acquire f.f_mutex ~owner:"cVM1-loop" (fun ~wait_ns:_ ->
          let work_ns = Netstack.Stack.loop_once f.f_dnif.Topology.stack in
          let live = Netstack.Stack.live_sockets f.f_dnif.Topology.stack in
          if live > f.f_socks_peak then f.f_socks_peak <- live;
          ignore
            (Dsim.Engine.schedule_l engine
               ~delay:(Dsim.Time.of_float_ns work_ns) ~label:k_hold
               (fun () ->
                 Capvm.Umtx.release f.f_mutex;
                 ignore
                   (Dsim.Engine.schedule_l engine ~delay:gap ~label:k_gap iter))))
  in
  iter ()

(* ------------------------------------------------------------------ *)
(* Topology                                                             *)
(* ------------------------------------------------------------------ *)

let build ~profile ~tenants ~seed =
  let engine = Shardcfg.engine () in
  let dut = Topology.make_node engine ~name:"morello" ~ports:2 () in
  let peer =
    Topology.make_node engine ~name:"loadgen" ~generous_pci:true ~ports:2 ()
  in
  ignore (Topology.link engine dut 0 peer 0 : Nic.Link.t);
  (* Churn sizing: TIME_WAIT holds an fd for 50 ms per completed flow,
     so the fd space must cover the live window plus the churn backlog;
     socket buffers shrink so thousands of concurrent connections don't
     dominate memory. *)
  let tune extra s cfg =
    {
      cfg with
      Netstack.Stack.rng_seed = Scenarios.seed_plus seed s;
      max_fds = 16384;
      tcp =
        {
          cfg.Netstack.Stack.tcp with
          Netstack.Tcp_cb.snd_buf_size = 16 * 1024;
          rcv_buf_size = 16 * 1024;
          (* Under FIFO rotation across hundreds of tenants the
             effective RTT is tens of ms; the stock 10 ms initial RTO
             would fire spuriously and feed the congestion back. *)
          rto_initial = Dsim.Time.ms 80;
        };
    }
    |> extra
  in
  let stack_cvm, dnif =
    Scenarios.cvm_netif dut ~name:"cVM1" ~port_idx:0
      ~ip:(Scenarios.ip_dut 0)
      ~stack_tuning:(tune Fun.id 0) ()
  in
  let peer_cvm, pnif =
    Scenarios.cvm_netif peer ~name:"gen1" ~port_idx:0
      ~ip:(Scenarios.ip_peer 0)
      ~stack_tuning:(tune Fun.id 1) ()
  in
  let cost = Topology.node_cost dut in
  let mutex =
    Capvm.Umtx.create engine ~policy:Capvm.Umtx.Fifo
      ~uncontended_ns:cost.Dsim.Cost_model.mutex_uncontended_ns
      ~wake_ns:cost.Dsim.Cost_model.umtx_wake_ns ()
  in
  let iv = Topology.intravisor dut in
  let dut_api = Iperf.api_of_ff dnif.Topology.ff in
  let root_rng = Dsim.Rng.create ~seed in
  let tenant_arr =
    Array.init tenants (fun i ->
        let cvm =
          Capvm.Intravisor.create_cvm iv ~name:(tenant_name i)
            ~size:tenant_cvm_size
        in
        let buf =
          Capvm.Cvm.calloc cvm (Topology.node_mem dut) tenant_buf_size
        in
        {
          tn_idx = i;
          tn_name = Capvm.Cvm.name cvm;
          tn_buf = buf;
          tn_rng = Dsim.Rng.split root_rng;
          tn_epfd = cl_get (dut_api.Iperf.epoll_create ());
          tn_queue = Queue.create ();
          tn_active = [];
          tn_polling = false;
          tn_backoff = 1;
          tn_arrivals = 0;
          tn_flows = 0;
          tn_failed = 0;
          tn_bytes = 0;
          tn_tx_frames = 0;
        })
  in
  let f =
    {
      f_engine = engine;
      f_dut = dut;
      f_peer = peer;
      f_stack_cvm = stack_cvm;
      f_dnif = dnif;
      f_pnif = pnif;
      f_mutex = mutex;
      f_tenants = tenant_arr;
      f_obs = Dsim.Tenancy.create ();
      f_fct = Dsim.Stats.create ();
      f_running = ref true;
      f_socks_peak = 0;
    }
  in
  (* Peer: server farm inside the load generator's stack loop. *)
  let peer_api = Iperf.api_of_ff pnif.Topology.ff in
  let peer_mem = Topology.node_mem peer in
  let sv =
    make_server peer_api ~mem:peer_mem
      ~rbuf:(Capvm.Cvm.calloc peer_cvm peer_mem server_buf_size)
      ~wbuf:(Capvm.Cvm.calloc peer_cvm peer_mem server_buf_size)
      ~tenants
  in
  Netstack.Stack.start ~hook:(fun _ -> server_step sv) pnif.Topology.stack;
  stack_driver f;
  Array.iter (fun tn -> tenant_driver f ~profile tn) tenant_arr;
  f

(* ------------------------------------------------------------------ *)
(* Attribution                                                          *)
(* ------------------------------------------------------------------ *)

(* Map a flow label to its tenant: app-step traces carry the tenant cVM
   name directly; packet traces carry "ip:port>ip:port" where the
   server-side port (either end, depending on direction) identifies the
   tenant. ARP/ethernet traces attribute to no one. *)
let tenant_of_label ~tenants label =
  let of_port p =
    if p >= port_base && p < port_base + tenants then
      Some (tenant_name (p - port_base))
    else None
  in
  let port_after_colon s =
    match String.rindex_opt s ':' with
    | None -> None
    | Some i -> int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
  in
  if String.length label = 4 && label.[0] = 't' then
    match int_of_string_opt (String.sub label 1 3) with
    | Some i when i >= 0 && i < tenants -> Some label
    | _ -> None
  else
    match String.index_opt label '>' with
    | None -> None
    | Some i ->
      let left = String.sub label 0 i in
      let right = String.sub label (i + 1) (String.length label - i - 1) in
      let attr side =
        match port_after_colon side with
        | Some p -> of_port p
        | None -> None
      in
      (match attr right with Some t -> Some t | None -> attr left)

(* ------------------------------------------------------------------ *)
(* Run + report                                                         *)
(* ------------------------------------------------------------------ *)

type result = {
  r_profile : string;
  r_tenants : int;
  r_seed : int64;
  r_duration_ns : float;
  r_flows : int;
  r_failed : int;
  r_bytes : int;
  r_goodput_mbit : float;
  r_fct_p50_ns : float;
  r_fct_p90_ns : float;
  r_fct_p99_ns : float;
  r_fct_p999_ns : float;
  r_jain_flows : float;
  r_jain_goodput : float;
  r_crossings : int;
  r_packets : int;
  r_live_socks_peak : int;
  r_events : int;
  r_rollups : Dsim.Tenancy.rollup list;
  r_gates : (string * bool * string) list;
  r_pass : bool;
  r_text : string;
  r_json : Dsim.Json.t;
}

let ms_of_ns ns = ns /. 1.0e6
let pct_stats s p = if Dsim.Stats.is_empty s then 0. else Dsim.Stats.percentile s p

let fmt_ns ns =
  if ns >= 1.0e6 then Printf.sprintf "%.2fms" (ns /. 1.0e6)
  else if ns >= 1.0e3 then Printf.sprintf "%.1fus" (ns /. 1.0e3)
  else Printf.sprintf "%.0fns" ns

let rollup_json (r : Dsim.Tenancy.rollup) =
  Dsim.Json.Obj
    [
      ("tenant", Dsim.Json.String r.Dsim.Tenancy.r_tenant);
      ("flows", Dsim.Json.Int r.Dsim.Tenancy.r_flows);
      ("bytes", Dsim.Json.Int r.Dsim.Tenancy.r_bytes);
      ("goodput_mbit_s", Dsim.Json.Float r.Dsim.Tenancy.r_goodput_mbit);
      ("fct_p50_ns", Dsim.Json.Float r.Dsim.Tenancy.r_fct_p50_ns);
      ("fct_p90_ns", Dsim.Json.Float r.Dsim.Tenancy.r_fct_p90_ns);
      ("fct_p99_ns", Dsim.Json.Float r.Dsim.Tenancy.r_fct_p99_ns);
      ("fct_p999_ns", Dsim.Json.Float r.Dsim.Tenancy.r_fct_p999_ns);
      ("traces", Dsim.Json.Int r.Dsim.Tenancy.r_traces);
      ( "stage_p50_ns",
        Dsim.Json.Obj
          (List.map
             (fun (s, v) -> (s, Dsim.Json.Float v))
             r.Dsim.Tenancy.r_stage_p50_ns) );
      ("stage_mean_sum_ns", Dsim.Json.Float r.Dsim.Tenancy.r_stage_mean_sum_ns);
      ("e2e_mean_ns", Dsim.Json.Float r.Dsim.Tenancy.r_e2e_mean_ns);
      ("crossings", Dsim.Json.Int r.Dsim.Tenancy.r_crossings);
      ("tx_frames", Dsim.Json.Int r.Dsim.Tenancy.r_packets);
      ( "crossings_per_packet",
        Dsim.Json.Float r.Dsim.Tenancy.r_crossings_per_packet );
      ( "drops",
        Dsim.Json.List
          (List.map
             (fun (s, rn, n) ->
               Dsim.Json.Obj
                 [
                   ("stage", Dsim.Json.String s);
                   ("reason", Dsim.Json.String rn);
                   ("count", Dsim.Json.Int n);
                 ])
             r.Dsim.Tenancy.r_drops) );
    ]

let run ?(profile = quick) ?tenants ?(seed = 42L) () =
  let tenants = match tenants with Some n -> n | None -> profile.p_tenants in
  if tenants < 1 then invalid_arg "fleet: tenants must be >= 1";
  if tenants > 1000 then invalid_arg "fleet: tenants must be <= 1000";
  let ft = Dsim.Flowtrace.default in
  let was_enabled = Dsim.Flowtrace.enabled ft in
  let old_sample = Dsim.Flowtrace.sample_every ft in
  let f = build ~profile ~tenants ~seed in
  let engine = f.f_engine in
  (* Warmup: resolve ARP both ways before the first SYN, so the opening
     flows don't eat an ARP-retry timeout into their completion times. *)
  Netstack.Stack.ping f.f_dnif.Topology.stack
    ~ip:(Scenarios.ip_peer 0) ~ident:1 ~seq:1 ~payload:(Bytes.create 8);
  Dsim.Engine.run engine ~until:profile.p_warmup;
  Dsim.Flowtrace.clear ft;
  Dsim.Flowtrace.set_sample_every ft profile.p_sample_every;
  Dsim.Flowtrace.set_enabled ft true;
  let t0 = Dsim.Engine.now engine in
  let t_end = Dsim.Time.add t0 profile.p_duration in
  Dsim.Engine.run engine ~until:t_end;
  f.f_running := false;
  Netstack.Stack.stop f.f_pnif.Topology.stack;
  let duration_ns = Dsim.Time.to_float_ns profile.p_duration in
  (* Fold the collected streams into the observatory. *)
  let iv = Topology.intravisor f.f_dut in
  Array.iter
    (fun tn ->
      Dsim.Tenancy.note_packets f.f_obs ~tenant:tn.tn_name tn.tn_tx_frames;
      Dsim.Tenancy.note_crossings f.f_obs ~tenant:tn.tn_name
        (Capvm.Intravisor.crossings_from iv ~caller:tn.tn_name))
    f.f_tenants;
  Dsim.Tenancy.ingest f.f_obs ~tenant_of:(tenant_of_label ~tenants) ft;
  Dsim.Flowtrace.set_enabled ft was_enabled;
  Dsim.Flowtrace.set_sample_every ft old_sample;
  Dsim.Flowtrace.clear ft;
  let rollups = Dsim.Tenancy.rollup f.f_obs ~duration_ns in
  let flows = Array.fold_left (fun a tn -> a + tn.tn_flows) 0 f.f_tenants in
  let failed = Array.fold_left (fun a tn -> a + tn.tn_failed) 0 f.f_tenants in
  let bytes = Array.fold_left (fun a tn -> a + tn.tn_bytes) 0 f.f_tenants in
  let crossings =
    Array.fold_left
      (fun a tn -> a + Capvm.Intravisor.crossings_from iv ~caller:tn.tn_name)
      0 f.f_tenants
  in
  let packets =
    Array.fold_left (fun a tn -> a + tn.tn_tx_frames) 0 f.f_tenants
  in
  let goodput_mbit = float_of_int bytes *. 8000. /. duration_ns in
  let per_tenant sel = Array.to_list (Array.map sel f.f_tenants) in
  let jain_flows =
    Dsim.Tenancy.jain (per_tenant (fun tn -> float_of_int tn.tn_flows))
  in
  let jain_goodput =
    Dsim.Tenancy.jain (per_tenant (fun tn -> float_of_int tn.tn_bytes))
  in
  (* The fairness gate judges completion ratio, not raw counts: with a
     finite window the per-tenant flow counts carry Poisson noise
     (E[jain] ~ lambda/(lambda+1)) that says nothing about the system,
     whereas completed/arrived exposes actual starvation. *)
  let jain_service =
    Dsim.Tenancy.jain
      (per_tenant (fun tn ->
           if tn.tn_arrivals = 0 then 1.
           else float_of_int tn.tn_flows /. float_of_int tn.tn_arrivals))
  in
  let p999 = pct_stats f.f_fct 99.9 in
  (* SLO gates. *)
  let dropped = Dsim.Tenancy.dropped_frames f.f_obs in
  let attributed = Dsim.Tenancy.attributed_drops f.f_obs in
  let worst_telescope =
    List.fold_left
      (fun acc (r : Dsim.Tenancy.rollup) ->
        if r.Dsim.Tenancy.r_traces = 0 || r.Dsim.Tenancy.r_e2e_mean_ns <= 0.
        then acc
        else
          let d =
            Float.abs
              (r.Dsim.Tenancy.r_stage_mean_sum_ns
              -. r.Dsim.Tenancy.r_e2e_mean_ns)
            /. r.Dsim.Tenancy.r_e2e_mean_ns
          in
          Float.max acc d)
      0. rollups
  in
  let gates =
    [
      ( "jain-fairness",
        jain_service >= profile.p_fairness_floor,
        Printf.sprintf "jain(completed/arrived) %.3f >= %.2f" jain_service
          profile.p_fairness_floor );
      ( "fct-p99.9",
        flows > 0 && p999 <= profile.p_fct_p999_budget_ns,
        Printf.sprintf "p99.9 %s <= %s budget" (fmt_ns p999)
          (fmt_ns profile.p_fct_p999_budget_ns) );
      ( "drop-attribution",
        attributed = dropped,
        Printf.sprintf "%d of %d drops attributed" attributed dropped );
      ( "stage-telescoping",
        worst_telescope <= 0.01,
        Printf.sprintf "worst tenant stage-sum vs e2e delta %.3f%% <= 1%%"
          (100. *. worst_telescope) );
    ]
  in
  let pass = List.for_all (fun (_, ok, _) -> ok) gates in
  (* Text report. *)
  let b = Buffer.create 8192 in
  Printf.bprintf b "fleet tenancy observatory\n";
  Printf.bprintf b "=========================\n";
  Printf.bprintf b "profile: %s   tenants: %d   seed: %Ld\n" profile.p_name
    tenants seed;
  Printf.bprintf b
    "window: %.1f ms virtual (after %.1f ms warmup)   arrivals: poisson mean \
     %.1f ms/tenant   mix: 90%% rpc / 10%% bulk   <=%d flows in flight/tenant\n"
    (ms_of_ns duration_ns)
    (Dsim.Time.to_float_ms profile.p_warmup)
    (ms_of_ns profile.p_arrival_mean_ns)
    profile.p_concurrency;
  Printf.bprintf b "\nfleet totals:\n";
  Printf.bprintf b
    "  flows completed: %d (%d failed)   goodput: %.1f Mbit/s   peak live \
     sockets: %d\n"
    flows failed goodput_mbit f.f_socks_peak;
  Printf.bprintf b
    "  fct p50 %s   p90 %s   p99 %s   p99.9 %s\n"
    (fmt_ns (pct_stats f.f_fct 50.))
    (fmt_ns (pct_stats f.f_fct 90.))
    (fmt_ns (pct_stats f.f_fct 99.))
    (fmt_ns p999);
  Printf.bprintf b
    "  tenant crossings: %d   tenant tx frames: %d   crossings/packet: %.2f\n"
    crossings packets
    (if packets = 0 then 0. else float_of_int crossings /. float_of_int packets);
  Printf.bprintf b "  traces: %d sampled of %d origins   unattributed: %d\n"
    (Dsim.Tenancy.sampled f.f_obs)
    (Dsim.Tenancy.origins f.f_obs)
    (Dsim.Tenancy.unattributed_traces f.f_obs);
  Printf.bprintf b "  drops: %d (%d attributed)\n" dropped attributed;
  (match Dsim.Tenancy.drop_table f.f_obs with
  | [] -> ()
  | table ->
    List.iter
      (fun (s, rn, n) -> Printf.bprintf b "    %-10s %-16s %d\n" s rn n)
      table);
  let shown = min 8 (List.length rollups) in
  Printf.bprintf b "\nper-tenant rollups (%d of %d shown; all in --json):\n"
    shown (List.length rollups);
  Printf.bprintf b
    "  tenant  flows  goodput      fct p50     p99      p99.9     tramp/pkt\n";
  List.iteri
    (fun i (r : Dsim.Tenancy.rollup) ->
      if i < shown then
        Printf.bprintf b "  %-6s  %5d  %7.2f Mb/s  %8s  %8s  %8s  %.2f\n"
          r.Dsim.Tenancy.r_tenant r.Dsim.Tenancy.r_flows
          r.Dsim.Tenancy.r_goodput_mbit
          (fmt_ns r.Dsim.Tenancy.r_fct_p50_ns)
          (fmt_ns r.Dsim.Tenancy.r_fct_p99_ns)
          (fmt_ns r.Dsim.Tenancy.r_fct_p999_ns)
          r.Dsim.Tenancy.r_crossings_per_packet)
    rollups;
  Printf.bprintf b "\nfairness:\n";
  Printf.bprintf b "  jain(completed/arrived): %.3f   (the gate)\n" jain_service;
  Printf.bprintf b "  jain(flows/tenant):      %.3f\n" jain_flows;
  Printf.bprintf b "  jain(goodput/tenant):    %.3f\n" jain_goodput;
  (* Fleet-wide stage decomposition: the per-tenant buffers of the first
     tenant with traces give the shape; the full tables are in JSON. *)
  Printf.bprintf b "\nSLO gates:\n";
  List.iter
    (fun (name, ok, detail) ->
      Printf.bprintf b "  [%s] %s: %s\n" (if ok then "PASS" else "FAIL") name
        detail)
    gates;
  Printf.bprintf b "verdict: %s\n" (if pass then "PASS" else "FAIL");
  let text = Buffer.contents b in
  let json =
    Dsim.Json.Obj
      [
        ("id", Dsim.Json.String "fleet");
        ("profile", Dsim.Json.String profile.p_name);
        ("tenants", Dsim.Json.Int tenants);
        ("seed", Dsim.Json.Int (Int64.to_int seed));
        ("duration_ns", Dsim.Json.Float duration_ns);
        ("flows", Dsim.Json.Int flows);
        ("failed_flows", Dsim.Json.Int failed);
        ("bytes", Dsim.Json.Int bytes);
        ("goodput_mbit_s", Dsim.Json.Float goodput_mbit);
        ("fct_p50_ns", Dsim.Json.Float (pct_stats f.f_fct 50.));
        ("fct_p90_ns", Dsim.Json.Float (pct_stats f.f_fct 90.));
        ("fct_p99_ns", Dsim.Json.Float (pct_stats f.f_fct 99.));
        ("fct_p999_ns", Dsim.Json.Float p999);
        ("jain_service", Dsim.Json.Float jain_service);
        ("jain_flows", Dsim.Json.Float jain_flows);
        ("jain_goodput", Dsim.Json.Float jain_goodput);
        ("crossings", Dsim.Json.Int crossings);
        ("tx_frames", Dsim.Json.Int packets);
        ("live_sockets_peak", Dsim.Json.Int f.f_socks_peak);
        ("events_fired", Dsim.Json.Int (Dsim.Engine.events_fired engine));
        ("origins", Dsim.Json.Int (Dsim.Tenancy.origins f.f_obs));
        ("sampled", Dsim.Json.Int (Dsim.Tenancy.sampled f.f_obs));
        ( "unattributed_traces",
          Dsim.Json.Int (Dsim.Tenancy.unattributed_traces f.f_obs) );
        ("drops", Dsim.Json.Int dropped);
        ("drops_attributed", Dsim.Json.Int attributed);
        ( "drop_table",
          Dsim.Json.List
            (List.map
               (fun (s, rn, n) ->
                 Dsim.Json.Obj
                   [
                     ("stage", Dsim.Json.String s);
                     ("reason", Dsim.Json.String rn);
                     ("count", Dsim.Json.Int n);
                   ])
               (Dsim.Tenancy.drop_table f.f_obs)) );
        ( "gates",
          Dsim.Json.List
            (List.map
               (fun (name, ok, detail) ->
                 Dsim.Json.Obj
                   [
                     ("gate", Dsim.Json.String name);
                     ("pass", Dsim.Json.Bool ok);
                     ("detail", Dsim.Json.String detail);
                   ])
               gates) );
        ("pass", Dsim.Json.Bool pass);
        ("rollups", Dsim.Json.List (List.map rollup_json rollups));
      ]
  in
  {
    r_profile = profile.p_name;
    r_tenants = tenants;
    r_seed = seed;
    r_duration_ns = duration_ns;
    r_flows = flows;
    r_failed = failed;
    r_bytes = bytes;
    r_goodput_mbit = goodput_mbit;
    r_fct_p50_ns = pct_stats f.f_fct 50.;
    r_fct_p90_ns = pct_stats f.f_fct 90.;
    r_fct_p99_ns = pct_stats f.f_fct 99.;
    r_fct_p999_ns = p999;
    r_jain_flows = jain_flows;
    r_jain_goodput = jain_goodput;
    r_crossings = crossings;
    r_packets = packets;
    r_live_socks_peak = f.f_socks_peak;
    r_events = Dsim.Engine.events_fired engine;
    r_rollups = rollups;
    r_gates = gates;
    r_pass = pass;
    r_text = text;
    r_json = json;
  }

let run_scaling ?(seed = 42L) () =
  let rows =
    List.map
      (fun n ->
        let r = run ~profile:quick ~tenants:n ~seed () in
        (n, r))
      [ 8; 64; 256 ]
  in
  let b = Buffer.create 1024 in
  Printf.bprintf b "fleet scaling (quick profile, seed %Ld):\n" seed;
  Printf.bprintf b
    "  tenants  flows  goodput/tenant  crossings/pkt  fct p99.9   events\n";
  List.iter
    (fun (n, r) ->
      Printf.bprintf b "  %7d  %5d  %9.2f Mb/s  %13.2f  %9s  %7d\n" n r.r_flows
        (r.r_goodput_mbit /. float_of_int n)
        (if r.r_packets = 0 then 0.
         else float_of_int r.r_crossings /. float_of_int r.r_packets)
        (fmt_ns r.r_fct_p999_ns) r.r_events)
    rows;
  let json =
    Dsim.Json.Obj
      [
        ("id", Dsim.Json.String "fleet-scaling");
        ("seed", Dsim.Json.Int (Int64.to_int seed));
        ( "rows",
          Dsim.Json.List
            (List.map
               (fun (n, r) ->
                 Dsim.Json.Obj
                   [
                     ("tenants", Dsim.Json.Int n);
                     ("flows", Dsim.Json.Int r.r_flows);
                     ( "goodput_per_tenant_mbit_s",
                       Dsim.Json.Float (r.r_goodput_mbit /. float_of_int n) );
                     ( "crossings_per_packet",
                       Dsim.Json.Float
                         (if r.r_packets = 0 then 0.
                          else
                            float_of_int r.r_crossings
                            /. float_of_int r.r_packets) );
                     ("fct_p999_ns", Dsim.Json.Float r.r_fct_p999_ns);
                     ("events_fired", Dsim.Json.Int r.r_events);
                     ("pass", Dsim.Json.Bool r.r_pass);
                   ])
               rows) );
      ]
  in
  (Buffer.contents b, json)
