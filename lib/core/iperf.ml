type api = {
  socket : unit -> (int, Netstack.Errno.t) result;
  bind : int -> port:int -> (unit, Netstack.Errno.t) result;
  listen : int -> backlog:int -> (unit, Netstack.Errno.t) result;
  accept :
    int -> (int * Netstack.Ipv4_addr.t * int, Netstack.Errno.t) result;
  connect :
    int -> ip:Netstack.Ipv4_addr.t -> port:int -> (unit, Netstack.Errno.t) result;
  write :
    int -> buf:Cheri.Capability.t -> nbytes:int -> (int, Netstack.Errno.t) result;
  read :
    int -> buf:Cheri.Capability.t -> nbytes:int -> (int, Netstack.Errno.t) result;
  close : int -> (unit, Netstack.Errno.t) result;
  epoll_create : unit -> (int, Netstack.Errno.t) result;
  epoll_ctl :
    epfd:int -> op:[ `Add | `Mod | `Del ] -> fd:int ->
    Netstack.Epoll.events -> (unit, Netstack.Errno.t) result;
  epoll_wait :
    epfd:int -> max:int ->
    ((int * Netstack.Epoll.events) list, Netstack.Errno.t) result;
}

let api_of_ff ff =
  let open Netstack in
  {
    socket = (fun () -> Ff_api.ff_socket ff);
    bind = (fun fd ~port -> Ff_api.ff_bind ff fd ~port);
    listen = (fun fd ~backlog -> Ff_api.ff_listen ff fd ~backlog);
    accept = (fun fd -> Ff_api.ff_accept ff fd);
    connect = (fun fd ~ip ~port -> Ff_api.ff_connect ff fd ~ip ~port);
    write = (fun fd ~buf ~nbytes -> Ff_api.ff_write ff fd ~buf ~nbytes);
    read = (fun fd ~buf ~nbytes -> Ff_api.ff_read ff fd ~buf ~nbytes);
    close = (fun fd -> Ff_api.ff_close ff fd);
    epoll_create = (fun () -> Ff_api.ff_epoll_create ff);
    epoll_ctl = (fun ~epfd ~op ~fd ev -> Ff_api.ff_epoll_ctl ff ~epfd ~op ~fd ev);
    epoll_wait = (fun ~epfd ~max -> Ff_api.ff_epoll_wait ff ~epfd ~max);
  }

let get = function
  | Ok v -> v
  | Error e -> invalid_arg ("iperf setup failed: " ^ Netstack.Errno.to_string e)

(* ------------------------------------------------------------------ *)
(* Server                                                               *)
(* ------------------------------------------------------------------ *)

type server = {
  s_api : api;
  s_buf : Cheri.Capability.t;
  s_port : int;
  s_epfd : int;
  s_lfd : int;
  mutable s_conns : int list;
  mutable s_rx : int;
  mutable s_rx_mark : int;
}

let max_reads_per_conn = 32

let server api ~buf ~port =
  let lfd = get (api.socket ()) in
  get (api.bind lfd ~port);
  get (api.listen lfd ~backlog:8);
  let epfd = get (api.epoll_create ()) in
  get (api.epoll_ctl ~epfd ~op:`Add ~fd:lfd Netstack.Epoll.epollin);
  {
    s_api = api;
    s_buf = buf;
    s_port = port;
    s_epfd = epfd;
    s_lfd = lfd;
    s_conns = [];
    s_rx = 0;
    s_rx_mark = 0;
  }

let server_drop_conn s fd =
  ignore (s.s_api.close fd);
  ignore (s.s_api.epoll_ctl ~epfd:s.s_epfd ~op:`Del ~fd Netstack.Epoll.epollin);
  s.s_conns <- List.filter (fun c -> c <> fd) s.s_conns

let server_read_conn s fd =
  let nbytes = Cheri.Capability.length s.s_buf in
  let rec go n =
    if n < max_reads_per_conn then begin
      match s.s_api.read fd ~buf:s.s_buf ~nbytes with
      | Ok 0 -> server_drop_conn s fd
      | Ok got ->
        s.s_rx <- s.s_rx + got;
        go (n + 1)
      | Error Netstack.Errno.EAGAIN -> ()
      | Error _ -> server_drop_conn s fd
    end
  in
  go 0

let server_step s =
  match s.s_api.epoll_wait ~epfd:s.s_epfd ~max:16 with
  | Error _ -> ()
  | Ok events ->
    List.iter
      (fun (fd, ev) ->
        if fd = s.s_lfd then begin
          let rec accept_all () =
            match s.s_api.accept s.s_lfd with
            | Ok (cfd, _ip, _port) ->
              ignore
                (s.s_api.epoll_ctl ~epfd:s.s_epfd ~op:`Add ~fd:cfd
                   Netstack.Epoll.epollin);
              s.s_conns <- cfd :: s.s_conns;
              accept_all ()
            | Error _ -> ()
          in
          accept_all ()
        end
        else if Netstack.Epoll.has ev Netstack.Epoll.epollin then
          server_read_conn s fd
        else if
          Netstack.Epoll.has ev Netstack.Epoll.epollhup
          || Netstack.Epoll.has ev Netstack.Epoll.epollerr
        then server_drop_conn s fd)
      events

let server_rx_bytes s = s.s_rx

let server_take_rx s =
  let delta = s.s_rx - s.s_rx_mark in
  s.s_rx_mark <- s.s_rx;
  delta

let server_connections s = List.length s.s_conns
let server_port s = s.s_port

let server_stop s =
  List.iter (fun fd -> server_drop_conn s fd) s.s_conns;
  ignore (s.s_api.close s.s_lfd);
  ignore (s.s_api.close s.s_epfd)

(* ------------------------------------------------------------------ *)
(* Client                                                               *)
(* ------------------------------------------------------------------ *)

type client_state = Connecting | Running | Stopped

type client = {
  c_api : api;
  c_buf : Cheri.Capability.t;
  c_epfd : int;
  c_fd : int;
  c_write_size : int;
  c_max_writes : int;
  mutable c_state : client_state;
  mutable c_tx : int;
  mutable c_tx_mark : int;
}

let client api ~buf ~server_ip ~port ?write_size ?(max_writes_per_step = 16) ()
    =
  let write_size =
    match write_size with Some n -> n | None -> Cheri.Capability.length buf
  in
  if write_size > Cheri.Capability.length buf then
    invalid_arg "iperf client: write_size exceeds the buffer capability";
  let fd = get (api.socket ()) in
  let epfd = get (api.epoll_create ()) in
  (match api.connect fd ~ip:server_ip ~port with
  | Ok () | Error Netstack.Errno.EINPROGRESS -> ()
  | Error e -> invalid_arg ("iperf connect: " ^ Netstack.Errno.to_string e));
  get (api.epoll_ctl ~epfd ~op:`Add ~fd Netstack.Epoll.epollout);
  {
    c_api = api;
    c_buf = buf;
    c_epfd = epfd;
    c_fd = fd;
    c_write_size = write_size;
    c_max_writes = max_writes_per_step;
    c_state = Connecting;
    c_tx = 0;
    c_tx_mark = 0;
  }

let client_pump c =
  let rec go n =
    if n < c.c_max_writes then begin
      match c.c_api.write c.c_fd ~buf:c.c_buf ~nbytes:c.c_write_size with
      | Ok sent ->
        c.c_tx <- c.c_tx + sent;
        if sent = c.c_write_size then go (n + 1)
      | Error Netstack.Errno.EAGAIN -> ()
      | Error _ -> c.c_state <- Stopped
    end
  in
  go 0

let client_step c =
  match c.c_state with
  | Stopped -> ()
  | Connecting | Running -> (
    match c.c_api.epoll_wait ~epfd:c.c_epfd ~max:4 with
    | Error _ -> ()
    | Ok events ->
      List.iter
        (fun (_fd, ev) ->
          if
            Netstack.Epoll.has ev Netstack.Epoll.epollerr
            || Netstack.Epoll.has ev Netstack.Epoll.epollhup
          then c.c_state <- Stopped
          else if Netstack.Epoll.has ev Netstack.Epoll.epollout then begin
            if c.c_state = Connecting then c.c_state <- Running;
            client_pump c
          end)
        events)

let client_connected c = c.c_state = Running
let client_tx_bytes c = c.c_tx

let client_take_tx c =
  let delta = c.c_tx - c.c_tx_mark in
  c.c_tx_mark <- c.c_tx;
  delta

let client_stop c =
  if c.c_state <> Stopped then begin
    c.c_state <- Stopped;
    ignore (c.c_api.close c.c_fd)
  end
