(** Perf-regression differ over profile / bench JSON snapshots.

    [netrepro perfdiff OLD.json NEW.json] compares two machine-readable
    performance snapshots key by key and exits non-zero when any key
    regressed past the threshold — the CI gate every scale PR runs
    against the checked-in Fig. 4 baseline.

    Two input shapes are understood:

    - {b Profile snapshots} ([FILE.profile.json], written by
      [netrepro profile]): compared per (component, cvm, stage) hotspot.
      Event counts are deterministic per seed, so any change beyond the
      threshold flags — it means the simulation did different work, on
      any machine. Wall-time (ns/event) comparisons are gated by noise
      floors (the key must have held ≥ {!share_floor_pct} of old self
      time {e and} grown by ≥ {!abs_floor_ns}) so cross-machine jitter
      in cold keys cannot fail CI.

    - {b Generic snapshots} (e.g. [BENCH_wallclock.json]): every numeric
      leaf is flattened to a dotted path; the leaf name decides the
      improvement direction (throughput-like keys are better up,
      latency/allocation-like keys are better down, anything else is
      informational). *)

type direction = Higher_better | Lower_better | Informational

type delta = {
  d_key : string;  (** Dotted path or [component:cvm:stage/metric]. *)
  d_old : float;
  d_new : float;
  d_pct : float;  (** Signed percentage change, + = increased. *)
  d_dir : direction;
  d_regression : bool;
}

type report = {
  deltas : delta list;  (** Every compared key, worst regression first. *)
  regressions : delta list;
  text : string;  (** Rendered table + verdict. *)
}

val share_floor_pct : float
(** A profile wall-time key must have held at least this share of old
    total self time before its ns/event movement can regress (2%). *)

val abs_floor_ns : float
(** ... and its self time must have grown by at least this much (5 ms). *)

val compare_json :
  ?max_regress_pct:float -> Dsim.Json.t -> Dsim.Json.t -> (report, string) result
(** Default threshold 10%. [Error] on snapshots with no comparable keys. *)

val compare_files :
  ?max_regress_pct:float -> string -> string -> (report, string) result

val exit_code : report -> int
(** 0 when no regressions, 1 otherwise (2 is reserved for I/O and
    parse errors, reported through [Error]). *)
