(** Fleet tenancy observatory: a Scenario-2 shared-stack topology scaled
    to N application cVMs ("tenants"), driven by a seeded
    connection-churn workload, with per-tenant SLO rollups.

    One stack cVM (F-Stack + DPDK under the shared umtx) serves every
    tenant; each tenant is a small cVM whose request/response client
    trampolines into the stack compartment for every ff_* window, FIFO
    on the mutex. The peer node runs an epoll server farm absorbing the
    churn. Flow sizes are heavy-tailed (lognormal RPC/bulk mix), flow
    arrivals Poisson per tenant, all drawn from split {!Dsim.Rng}
    streams — a run is a pure function of (profile, tenants, seed).

    The headline output is the {!Dsim.Tenancy} rollup: per-tenant
    goodput, flow-completion-time percentiles down to p99.9, per-stage
    latency decomposition (stage means telescoping to the end-to-end
    mean), trampoline crossings per packet, drop tables, and the Jain
    fairness index — guarded by SLO gates that fail the run. *)

type profile = {
  p_name : string;
  p_tenants : int;  (** Default tenant count (CLI [--tenants] overrides). *)
  p_duration : Dsim.Time.t;  (** Measured churn window. *)
  p_warmup : Dsim.Time.t;  (** ARP/route warmup before arrivals start. *)
  p_arrival_mean_ns : float;  (** Per-tenant flow inter-arrival mean. *)
  p_poll_interval : Dsim.Time.t;  (** App epoll cadence while flows are live. *)
  p_concurrency : int;  (** Max in-flight flows per tenant. *)
  p_sample_every : int;  (** Flow-trace sampling period. *)
  p_fct_p999_budget_ns : float;  (** SLO: fleet-wide FCT p99.9 ceiling. *)
  p_fairness_floor : float;  (** SLO: minimum Jain index over flows/tenant. *)
}

val quick : profile
(** CI-sized: 64 tenants, short window. *)

val full : profile
(** 256 tenants, long window. *)

type result = {
  r_profile : string;
  r_tenants : int;
  r_seed : int64;
  r_duration_ns : float;
  r_flows : int;  (** Completed request/response flows, fleet-wide. *)
  r_failed : int;  (** Flows that died on a socket error. *)
  r_bytes : int;
  r_goodput_mbit : float;
  r_fct_p50_ns : float;
  r_fct_p90_ns : float;
  r_fct_p99_ns : float;
  r_fct_p999_ns : float;
  r_jain_flows : float;  (** Fairness of completed flows per tenant. *)
  r_jain_goodput : float;  (** Fairness of delivered bytes per tenant. *)
  r_crossings : int;  (** Tenant-attributed trampoline crossings. *)
  r_packets : int;  (** Tenant-attributed TX frames. *)
  r_live_socks_peak : int;  (** Peak live socket count on the DUT stack. *)
  r_events : int;  (** Engine events fired (the bench curve's y-axis). *)
  r_rollups : Dsim.Tenancy.rollup list;
  r_gates : (string * bool * string) list;  (** (gate, ok, detail). *)
  r_pass : bool;
  r_text : string;
  r_json : Dsim.Json.t;
}

val run : ?profile:profile -> ?tenants:int -> ?seed:int64 -> unit -> result
(** Build the fleet, churn for the profile's window, roll up, gate.
    Deterministic: same (profile, tenants, seed) gives byte-identical
    [r_text]/[r_json]. The default flow-trace registry is cleared,
    enabled for the run, ingested, then disabled and cleared again. *)

val run_scaling : ?seed:int64 -> unit -> string * Dsim.Json.t
(** The Kressel-style scaling table: quick-profile runs at
    N ∈ {8, 64, 256}, one row each — goodput/tenant, crossings/packet,
    FCT p99.9, events fired. *)
