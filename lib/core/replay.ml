(* Replay verification: re-execute a recorded run from its journal
   header and assert every dispatch against the recording. *)

module Json = Dsim.Json
module Journal = Dsim.Journal

type outcome = {
  path : string;
  kind : string;
  checked : int;
  total : int;
  mismatch : Journal.mismatch option;
  pass : bool;
  text : string;
}

let default_context = 5

let str_member name j =
  match Json.member name j with Some (Json.String s) -> Some s | _ -> None

let int_member name j =
  match Json.member name j with Some (Json.Int i) -> Some i | _ -> None

let bool_member name j =
  match Json.member name j with Some (Json.Bool b) -> Some b | _ -> None

let profile_of_header hdr =
  let quick = Option.value ~default:false (bool_member "quick" hdr) in
  let base = if quick then Experiment.quick else Experiment.full in
  match int_member "iterations" hdr with
  | None -> base
  | Some n -> { base with Experiment.iterations = n }

(* Resolve the re-execution closure from the header, without running
   anything yet: unknown experiments or a foreign kind fail before the
   verifier is armed. *)
let driver_of_header hdr =
  match str_member "kind" hdr with
  | Some "run" -> (
    let ids =
      match Json.member "experiments" hdr with
      | Some (Json.List l) ->
        List.filter_map (function Json.String s -> Some s | _ -> None) l
      | _ -> []
    in
    if ids = [] then Error "journal header lists no experiments"
    else
      match
        List.partition_map
          (fun id ->
            match Experiment.find id with
            | Some s -> Left s
            | None -> Right id)
          ids
      with
      | specs, [] ->
        let profile = profile_of_header hdr in
        Ok
          ( "run",
            fun () ->
              List.iter
                (fun (s : Experiment.spec) ->
                  ignore (s.Experiment.report profile))
                specs )
      | _, missing ->
        Error
          ("journal references unknown experiment(s): "
          ^ String.concat ", " missing))
  | Some "chaos" ->
    let seed =
      Int64.of_int (Option.value ~default:42 (int_member "seed" hdr))
    in
    let profile =
      if Option.value ~default:false (bool_member "quick" hdr) then
        Chaos_experiment.quick
      else Chaos_experiment.full
    in
    Ok ("chaos", fun () -> ignore (Chaos_experiment.run ~profile ~seed ()))
  | Some k -> Error (Printf.sprintf "journal kind %S is not replayable" k)
  | None -> Error "journal header has no \"kind\" field"

let pp_dispatch (d : Journal.dispatch) =
  Printf.sprintf "seq=%d at=%dns label=%s parent=%d rng=%d" d.Journal.d_seq
    d.Journal.d_at_ns d.Journal.d_label d.Journal.d_parent d.Journal.d_rng

let pp_opt = function None -> "(none)" | Some d -> pp_dispatch d

let render ~path ~kind ~context l (vo : Journal.verify_outcome) =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "replay: %s (kind %s, %d recorded dispatches)\n" path kind
    vo.Journal.vo_total;
  (match vo.Journal.vo_mismatch with
  | None ->
    pr "verified %d/%d dispatches\nOK — run matches journal\n"
      vo.Journal.vo_checked vo.Journal.vo_total
  | Some mm ->
    pr "verified %d/%d dispatches\n" vo.Journal.vo_checked vo.Journal.vo_total;
    pr "MISMATCH at seq %d (field %s)\n" mm.Journal.mm_seq mm.Journal.mm_field;
    pr "  journal: %s\n" (pp_opt mm.Journal.mm_expected);
    pr "  live:    %s\n" (pp_opt mm.Journal.mm_actual);
    pr "journal context (±%d events):\n" context;
    List.iter
      (fun (d : Journal.dispatch) ->
        pr "  %c %s\n"
          (if d.Journal.d_seq = mm.Journal.mm_seq then '>' else ' ')
          (pp_dispatch d))
      (Journal.context l ~seq:mm.Journal.mm_seq ~k:context));
  Buffer.contents buf

let run ?(context = default_context) path =
  match Journal.load path with
  | Error m -> Error m
  | Ok l -> (
    match driver_of_header (Journal.header l) with
    | Error m -> Error (path ^ ": " ^ m)
    | Ok (kind, exec) ->
      Journal.verify_against l;
      (match exec () with
      | () -> ()
      | exception e ->
        Journal.stop ();
        raise e);
      let vo = Journal.verify_finish () in
      let pass = vo.Journal.vo_mismatch = None in
      Ok
        {
          path;
          kind;
          checked = vo.Journal.vo_checked;
          total = vo.Journal.vo_total;
          mismatch = vo.Journal.vo_mismatch;
          pass;
          text = render ~path ~kind ~context l vo;
        })

let exit_code o = if o.pass then 0 else 1
