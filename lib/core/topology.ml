type node = {
  name : string;
  engine : Dsim.Engine.t;
  iv : Capvm.Intravisor.t;
  cost : Dsim.Cost_model.t;
  bus : Nic.Pci_bus.t;
  nic : Nic.Igb.t;
  mutable next_mac : int;
}

let mac_for name idx =
  (* Locally administered address derived from the node name. *)
  let h = Hashtbl.hash name land 0xffff in
  Nic.Mac_addr.make 0x02 0x82 ((h lsr 8) land 0xff) (h land 0xff) 0x57 idx

let make_node engine ~name ?(cost = Dsim.Cost_model.default)
    ?(generous_pci = false) ?(mem_size = 64 * 1024 * 1024) ?(queues = 1) ~ports
    () =
  let iv = Capvm.Intravisor.create engine ~mem_size ~cost in
  let bus =
    if generous_pci then
      Nic.Pci_bus.create ~rx_bps:1e10 ~tx_bps:1e10 ~per_transfer_ns:0. ()
    else Nic.Pci_bus.of_cost_model cost
  in
  (* One independent bus channel per engine shard: serial runs reserve
     on channel 0 only (unchanged semantics); the domains executor
     gives each shard its own horizon so parallel pairs never race. *)
  Nic.Pci_bus.set_channels bus (Dsim.Engine.shard_count engine);
  let macs = List.init ports (mac_for name) in
  let nic =
    Nic.Igb.create engine (Capvm.Intravisor.mem iv) ~bus ~macs ~queues ()
  in
  { name; engine; iv; cost; bus; nic; next_mac = ports }

let node_name t = t.name
let intravisor t = t.iv
let node_mem t = Capvm.Intravisor.mem t.iv
let node_cost t = t.cost
let nic t = t.nic
let port t i = Nic.Igb.port t.nic i

let link engine ?(bps = 1e9) a ai b bi =
  let cost = a.cost in
  let l =
    Nic.Link.create engine ~bps
      ~prop_delay:(Dsim.Time.of_float_ns cost.Dsim.Cost_model.prop_delay_ns)
      ()
  in
  Nic.Igb.connect (port a ai) l Nic.Link.A;
  Nic.Igb.connect (port b bi) l Nic.Link.B;
  l

type netif = {
  eal : Dpdk.Eal.t;
  pool : Dpdk.Mbuf.pool;
  dev : Dpdk.Eth_dev.t;
  stack : Netstack.Stack.t;
  ff : Netstack.Ff_api.t;
  uio : Dpdk.Igb_uio.binding;
}

let default_netif_region_size = 9 * 1024 * 1024

let pool_counter = ref 0

let make_netif node ~region ~port_idx ?(queue = 0) ?dma_window ~ip
    ?(stack_tuning = Fun.id) ?(pool_bufs = 4096) () =
  let mem = node_mem node in
  let eal = Dpdk.Eal.create node.engine mem ~region in
  incr pool_counter;
  let pool_name =
    if queue = 0 then
      Printf.sprintf "%s-p%d-%d" node.name port_idx !pool_counter
    else Printf.sprintf "%s-p%dq%d-%d" node.name port_idx queue !pool_counter
  in
  let pool =
    Dpdk.Mbuf.pool_create eal ~name:pool_name ~n:pool_bufs ~buf_len:2048 ()
  in
  let p = port node port_idx in
  (* Kernel detach: the DMA window is exactly the mempool's memzone. *)
  let zone =
    match Dpdk.Eal.memzone_lookup eal ~name:("mbuf-" ^ pool_name) with
    | Some z -> z
    | None -> invalid_arg "make_netif: mempool zone vanished"
  in
  (* The port has ONE bus-master window; by default it is narrowed to
     this netif's mempool zone. When several netifs share a port (one
     per RSS queue) each bind would otherwise revoke the previous
     queue's pool — pass a common [dma_window] (e.g. the shared region)
     covering every queue's mempool, as DPDK maps one window over all
     hugepage segments. *)
  let window = match dma_window with Some w -> w | None -> zone in
  let uio = Dpdk.Igb_uio.bind p ~dma_window:window in
  let dev = Dpdk.Eth_dev.attach eal p ~queue ~rx_pool:pool () in
  Dpdk.Eth_dev.start dev;
  let cfg = stack_tuning (Netstack.Stack.default_config ~ip) in
  let stack = Netstack.Stack.create node.engine mem dev cfg in
  let ff = Netstack.Ff_api.attach stack mem in
  { eal; pool; dev; stack; ff; uio }
