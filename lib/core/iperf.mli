(** iperf3-style bandwidth application, ported to the ff_* API + epoll
    (exactly the adaptation the paper performed on iperf3).

    The application is expressed against an {!api} record rather than
    {!Netstack.Ff_api} directly, because the *same* application code
    runs in three bindings:
    - Baseline / Scenario 1: direct ff_* calls (app and stack share a
      protection domain);
    - Scenario 2: every call is wrapped by a cross-cVM trampoline plus
      the shared F-Stack mutex (see {!Scenario2}).

    Both sides are non-blocking state machines advanced by [*_step],
    which is called from whatever loop owns the app (the F-Stack loop
    hook, or a dedicated cVM thread). *)

type api = {
  socket : unit -> (int, Netstack.Errno.t) result;
  bind : int -> port:int -> (unit, Netstack.Errno.t) result;
  listen : int -> backlog:int -> (unit, Netstack.Errno.t) result;
  accept :
    int -> (int * Netstack.Ipv4_addr.t * int, Netstack.Errno.t) result;
  connect :
    int -> ip:Netstack.Ipv4_addr.t -> port:int -> (unit, Netstack.Errno.t) result;
  write :
    int -> buf:Cheri.Capability.t -> nbytes:int -> (int, Netstack.Errno.t) result;
  read :
    int -> buf:Cheri.Capability.t -> nbytes:int -> (int, Netstack.Errno.t) result;
  close : int -> (unit, Netstack.Errno.t) result;
  epoll_create : unit -> (int, Netstack.Errno.t) result;
  epoll_ctl :
    epfd:int -> op:[ `Add | `Mod | `Del ] -> fd:int ->
    Netstack.Epoll.events -> (unit, Netstack.Errno.t) result;
  epoll_wait :
    epfd:int -> max:int ->
    ((int * Netstack.Epoll.events) list, Netstack.Errno.t) result;
}

val api_of_ff : Netstack.Ff_api.t -> api

(** {1 Server (receiver)} *)

type server

val server : api -> buf:Cheri.Capability.t -> port:int -> server
(** Sets up listen socket + epoll immediately. [buf] is the receive
    staging buffer (an app-compartment capability). *)

val server_step : server -> unit
val server_rx_bytes : server -> int
val server_take_rx : server -> int
(** Bytes received since the previous call (bandwidth windows). *)

val server_connections : server -> int
val server_port : server -> int

val server_stop : server -> unit
(** Close every accepted connection, the listener and the epoll
    instance — the teardown a supervisor runs when the hosting cVM
    dies. Safe to call once per server. *)

(** {1 Client (sender)} *)

type client

val client :
  api ->
  buf:Cheri.Capability.t ->
  server_ip:Netstack.Ipv4_addr.t ->
  port:int ->
  ?write_size:int ->
  ?max_writes_per_step:int ->
  unit ->
  client
(** [write_size] defaults to the full buffer capability length. *)

val client_step : client -> unit
val client_connected : client -> bool
val client_tx_bytes : client -> int
val client_take_tx : client -> int
val client_stop : client -> unit
(** Close the connection (FIN). *)
