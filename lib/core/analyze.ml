type trace = {
  t_id : int;
  t_parent : int option;
  t_flow : string;
  t_hops : (string * float) list;
  t_drop : (string * string) option;
}

type t = {
  sample_every : int;
  origins : int;
  sampled : int;
  dropped_frames : int;
  traces : trace list;
  drops : (string * string * int) list;
}

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

let json_int = function
  | Dsim.Json.Int n -> Some n
  | Dsim.Json.Float f -> Some (int_of_float f)
  | _ -> None

let json_float = function
  | Dsim.Json.Float f -> Some f
  | Dsim.Json.Int n -> Some (float_of_int n)
  | _ -> None

let json_string = function Dsim.Json.String s -> Some s | _ -> None

let field name conv j =
  match Dsim.Json.member name j with
  | Some v -> conv v
  | None -> None

let parse_hop j =
  match (field "stage" json_string j, field "at_ns" json_float j) with
  | Some stage, Some at_ns -> Some (stage, at_ns)
  | _ -> None

let parse_drop j =
  match (field "stage" json_string j, field "reason" json_string j) with
  | Some stage, Some reason -> Some (stage, reason)
  | _ -> None

let parse_trace j =
  match (field "id" json_int j, field "flow" json_string j) with
  | Some t_id, Some t_flow ->
    let t_parent =
      match Dsim.Json.member "parent" j with
      | Some (Dsim.Json.Int p) -> Some p
      | _ -> None
    in
    let t_hops =
      match Dsim.Json.member "hops" j with
      | Some hops -> (
        match Dsim.Json.to_list hops with
        | Some l -> List.filter_map parse_hop l
        | None -> [])
      | None -> []
    in
    let t_drop =
      match Dsim.Json.member "drop" j with
      | Some (Dsim.Json.Obj _ as d) -> parse_drop d
      | _ -> None
    in
    Some { t_id; t_parent; t_flow; t_hops; t_drop }
  | _ -> None

let parse_drop_row j =
  match
    ( field "stage" json_string j,
      field "reason" json_string j,
      field "count" json_int j )
  with
  | Some stage, Some reason, Some count -> Some (stage, reason, count)
  | _ -> None

let of_json j =
  match j with
  | Dsim.Json.Obj _ ->
    let int_field name =
      match field name json_int j with Some n -> n | None -> 0
    in
    let list_field name conv =
      match Dsim.Json.member name j with
      | Some v -> (
        match Dsim.Json.to_list v with
        | Some l -> List.filter_map conv l
        | None -> [])
      | None -> []
    in
    Ok
      {
        sample_every = (match field "sample_every" json_int j with
                       | Some n -> n
                       | None -> 1);
        origins = int_field "origins";
        sampled = int_field "sampled";
        dropped_frames = int_field "dropped_frames";
        traces = list_field "traces" parse_trace;
        drops = list_field "drops" parse_drop_row;
      }
  | _ -> Error "flow-trace file: top-level JSON object expected"

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> (
    match Dsim.Json.parse contents with
    | exception Dsim.Json.Parse_error msg ->
      Error (Printf.sprintf "%s: %s" path msg)
    | j -> of_json j)

(* ------------------------------------------------------------------ *)
(* Derived views                                                        *)
(* ------------------------------------------------------------------ *)

(* Stage order for reports: pipeline order, by stage name. *)
let stage_rank name =
  let rec idx i = function
    | [] -> max_int
    | s :: rest -> if Dsim.Flowtrace.stage_name s = name then i else idx (i + 1) rest
  in
  idx 0 Dsim.Flowtrace.all_stages

(* Intervals attributed to the stage of the hop ending them. *)
let trace_intervals tr =
  match tr.t_hops with
  | [] | [ _ ] -> []
  | (_, t0) :: rest ->
    let _, out =
      List.fold_left
        (fun (prev, acc) (stage, at) -> (at, (stage, at -. prev) :: acc))
        (t0, []) rest
    in
    List.rev out

let stage_durations t =
  let tbl = Hashtbl.create 24 in
  List.iter
    (fun tr ->
      List.iter
        (fun (stage, d) ->
          match Hashtbl.find_opt tbl stage with
          | Some l -> l := d :: !l
          | None -> Hashtbl.replace tbl stage (ref [ d ]))
        (trace_intervals tr))
    t.traces;
  Hashtbl.fold (fun stage l acc -> (stage, List.rev !l) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (stage_rank a) (stage_rank b))

let percentile_of_list l p =
  let s = Dsim.Stats.create ~capacity:(max 1 (List.length l)) () in
  List.iter (Dsim.Stats.add s) l;
  Dsim.Stats.percentile s p

type group = {
  g_flow : string;
  g_traces : int;
  g_retransmits : int;
  g_e2e_p50 : float;
  g_stage_sum_p50 : float;
}

let groups t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun tr ->
      match Hashtbl.find_opt tbl tr.t_flow with
      | Some l -> l := tr :: !l
      | None ->
        Hashtbl.replace tbl tr.t_flow (ref [ tr ]);
        order := tr.t_flow :: !order)
    t.traces;
  List.rev !order
  |> List.map (fun flow ->
         let traces = List.rev !(Hashtbl.find tbl flow) in
         let timed = List.filter (fun tr -> List.length tr.t_hops >= 2) traces in
         let e2e =
           List.map
             (fun tr ->
               let hops = tr.t_hops in
               let _, t0 = List.hd hops in
               let _, tn = List.nth hops (List.length hops - 1) in
               tn -. t0)
             timed
         in
         let per_stage = Hashtbl.create 8 in
         List.iter
           (fun tr ->
             List.iter
               (fun (stage, d) ->
                 match Hashtbl.find_opt per_stage stage with
                 | Some l -> l := d :: !l
                 | None -> Hashtbl.replace per_stage stage (ref [ d ]))
               (trace_intervals tr))
           timed;
         let stage_sum =
           Hashtbl.fold
             (fun _ l acc -> acc +. percentile_of_list !l 50.)
             per_stage 0.
         in
         {
           g_flow = flow;
           g_traces = List.length traces;
           g_retransmits =
             List.length (List.filter (fun tr -> tr.t_parent <> None) traces);
           g_e2e_p50 = (if e2e = [] then 0. else percentile_of_list e2e 50.);
           g_stage_sum_p50 = stage_sum;
         })
  |> List.sort (fun a b -> compare b.g_traces a.g_traces)

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let ns f = Printf.sprintf "%.0f" f

let render t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "Flow-trace analysis: %d traces (1-in-%d sample of %d origins), %d \
        attributed drops\n"
       t.sampled t.sample_every t.origins t.dropped_frames);
  let rtx = List.length (List.filter (fun tr -> tr.t_parent <> None) t.traces) in
  if rtx > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "Retransmit lineage: %d traces link to an original transmission\n"
         rtx);
  Buffer.add_char buf '\n';

  (match stage_durations t with
  | [] -> Buffer.add_string buf "No multi-hop traces recorded.\n"
  | stages ->
    Buffer.add_string buf "Per-stage latency (hop-to-hop intervals, ns):\n";
    let rows =
      List.map
        (fun (stage, ds) ->
          [
            stage;
            string_of_int (List.length ds);
            ns (percentile_of_list ds 50.);
            ns (percentile_of_list ds 90.);
            ns (percentile_of_list ds 99.);
            ns (percentile_of_list ds 99.9);
          ])
        stages
    in
    Buffer.add_string buf
      (Report.table
         ~header:[ "stage"; "intervals"; "p50"; "p90"; "p99"; "p99.9" ]
         ~rows);
    Buffer.add_char buf '\n');

  let gs = groups t in
  if gs <> [] then begin
    Buffer.add_string buf
      "End-to-end decomposition by flow (stage medians vs e2e median, ns):\n";
    let shown, elided =
      if List.length gs > 16 then
        (List.filteri (fun i _ -> i < 16) gs, List.length gs - 16)
      else (gs, 0)
    in
    let rows =
      List.map
        (fun g ->
          let delta_pct =
            if g.g_e2e_p50 = 0. then 0.
            else (g.g_stage_sum_p50 -. g.g_e2e_p50) /. g.g_e2e_p50 *. 100.
          in
          [
            g.g_flow;
            string_of_int g.g_traces;
            string_of_int g.g_retransmits;
            ns g.g_e2e_p50;
            ns g.g_stage_sum_p50;
            Printf.sprintf "%+.2f%%" delta_pct;
          ])
        shown
    in
    Buffer.add_string buf
      (Report.table
         ~header:[ "flow"; "traces"; "rtx"; "e2e p50"; "stage-sum p50"; "delta" ]
         ~rows);
    if elided > 0 then
      Buffer.add_string buf
        (Printf.sprintf "(%d smaller flow groups not shown)\n" elided);
    Buffer.add_char buf '\n'
  end;

  (match t.drops with
  | [] -> Buffer.add_string buf "Drop attribution: no drops recorded.\n"
  | drops ->
    Buffer.add_string buf "Drop attribution:\n";
    let rows =
      List.map
        (fun (stage, reason, count) -> [ stage; reason; string_of_int count ])
        (List.sort
           (fun (_, _, a) (_, _, b) -> compare b a)
           drops)
    in
    Buffer.add_string buf
      (Report.table ~header:[ "stage"; "reason"; "dropped" ] ~rows));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Time-series (--timeseries) summary                                   *)
(* ------------------------------------------------------------------ *)

let is_timeseries j =
  Option.is_some (Dsim.Json.member "interval_ns" j)
  && Option.is_some (Dsim.Json.member "rows" j)

let timeseries_summary j =
  if not (is_timeseries j) then
    Error "not a sampler time-series file (no interval_ns/rows)"
  else begin
    let rows =
      match Option.bind (Dsim.Json.member "rows" j) Dsim.Json.to_list with
      | Some l -> l
      | None -> []
    in
    let ival_ns =
      match Dsim.Json.member "interval_ns" j with
      | Some v -> Option.value ~default:0. (json_float v)
      | None -> 0.
    in
    let truncated =
      match Dsim.Json.member "truncated" j with
      | Some (Dsim.Json.Bool b) -> b
      | _ -> false
    in
    let dropped =
      match Option.bind (Dsim.Json.member "dropped_rows" j) json_int with
      | Some d -> d
      | None -> 0
    in
    let capacity =
      Option.bind (Dsim.Json.member "capacity" j) json_int
    in
    let span_ns =
      match (rows, List.rev rows) with
      | first :: _, last :: _ ->
        let at r =
          Option.value ~default:0.
            (Option.bind (Dsim.Json.member "at_ns" r) json_float)
        in
        at last -. at first
      | _ -> 0.
    in
    let series =
      match List.rev rows with
      | last :: _ -> (
        match Option.bind (Dsim.Json.member "metrics" last) Dsim.Json.to_list with
        | Some ms -> List.length ms
        | None -> 0)
      | [] -> 0
    in
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf
         "Time series: %d rows, %d series/row, interval %.3f ms, span %.3f ms\n"
         (List.length rows) series (ival_ns /. 1e6) (span_ns /. 1e6));
    (match capacity with
    | Some c -> Buffer.add_string buf (Printf.sprintf "Row capacity: %d\n" c)
    | None -> ());
    if truncated then
      Buffer.add_string buf
        (Printf.sprintf
           "WARNING: series TRUNCATED — %d snapshot(s) past capacity were \
            dropped; the recorded rows are a prefix of the run, not the \
            whole run.\n"
           dropped)
    else Buffer.add_string buf "No truncation: the series covers the run.\n";
    Ok (Buffer.contents buf)
  end
