(** Offline analysis of a {!Dsim.Flowtrace} JSON export.

    [netrepro analyze FILE] loads the trace file written by
    [--flow-trace], computes per-stage latency percentiles from the
    hop-to-hop intervals, decomposes each flow group's end-to-end median
    into its stage medians (the stage intervals of one trace telescope
    exactly to its end-to-end time), and renders the drop-attribution
    table. *)

type trace = {
  t_id : int;
  t_parent : int option;  (** Original transmission (retransmits). *)
  t_flow : string;
  t_hops : (string * float) list;  (** (stage name, at_ns), in order. *)
  t_drop : (string * string) option;  (** (stage, reason). *)
}

type t = {
  sample_every : int;
  origins : int;
  sampled : int;
  dropped_frames : int;
  traces : trace list;
  drops : (string * string * int) list;  (** (stage, reason, count). *)
}

val of_json : Dsim.Json.t -> (t, string) result
val of_file : string -> (t, string) result
(** Reads and parses the file; [Error] carries a human-readable cause. *)

val stage_durations : t -> (string * float list) list
(** Hop-to-hop intervals grouped by the stage they are attributed to
    (the stage of the hop {e ending} the interval), in pipeline order;
    stages with no samples are omitted. *)

type group = {
  g_flow : string;
  g_traces : int;
  g_retransmits : int;  (** Traces carrying a parent link. *)
  g_e2e_p50 : float;  (** Median of (last hop - first hop), ns. *)
  g_stage_sum_p50 : float;  (** Sum of per-stage median intervals, ns. *)
}

val groups : t -> group list
(** One entry per distinct flow label, largest trace count first. Only
    traces with at least two hops contribute latency figures. *)

val render : t -> string
(** The full human-readable report. *)

(** {1 Sampler time-series files} *)

val is_timeseries : Dsim.Json.t -> bool
(** Does the value look like a [--timeseries] export
    ([interval_ns] + [rows]) rather than a flow trace? *)

val timeseries_summary : Dsim.Json.t -> (string, string) result
(** Row/series counts, interval and span, and a prominent warning when
    the sampler hit capacity and dropped snapshots ([truncated]). *)
