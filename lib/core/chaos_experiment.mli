(** Blast-radius experiment: the paper's scenarios under deterministic
    fault injection.

    Two phases, each paired with an undisturbed twin run (same topology
    seeds, chaos idle) that provides the goodput reference:

    - {b Phase A} — Scenario 1 dual-port. Port 0 (cVM1) is the victim:
      its wire takes seeded bit flips / drops / dups / reorders, a link
      flap, an mbuf-pool-exhaustion window and RX DMA-descriptor
      errors, and the cVM itself takes injected capability faults under
      the supervisor's restart policy. Port 1 (cVM2) is the untouched
      sibling control.
    - {b Phase B} — Scenario 2 contended. cVM3 takes capability faults
      while holding the shared F-Stack mutex (restart budget 1, so the
      second fault permanently quarantines it) plus transient-EINTR
      syscall failures through the Musl shim; cVM2 is the sibling whose
      goodput must survive.

    Every injected fault is tracked in a {!Dsim.Chaos} ledger and must
    end the run [Recovered] (TTR recorded) or [Attributed] (to a typed
    {!Dsim.Flowtrace} drop, a hardware counter, or a supervisor
    verdict). The report fails on any pending entry, on attribution
    below 100%, or on sibling goodput (outside the victim's quarantine
    windows) below 90% of the undisturbed twin.

    All randomness comes from the one seed; two runs with the same seed
    and profile produce byte-identical reports. *)

type profile = {
  warmup : Dsim.Time.t;
  duration : Dsim.Time.t;  (** Measured (and injected-into) window. *)
  sample_every : Dsim.Time.t;  (** Goodput sample period. *)
  flap_down : Dsim.Time.t;  (** Link-flap outage length. *)
  mbuf_window : Dsim.Time.t;  (** Pool-exhaustion window length. *)
  eintr_every : Dsim.Time.t;  (** Victim libc heartbeat period. *)
}

val quick : profile
(** CI-sized: ~30 ms virtual measurement windows. *)

val full : profile

type phase = {
  ph_title : string;
  ph_victim : string;
  ph_sibling : string;
  ph_drops : ((Dsim.Flowtrace.stage * Dsim.Flowtrace.reason) * int) list;
      (** The phase's typed drop table (attribution evidence). *)
  ph_sibling_rate : float;  (** Gbit/s outside quarantine windows. *)
  ph_sibling_ref : float;  (** Undisturbed twin, same windows. *)
  ph_victim_rate : float;
  ph_victim_ref : float;
}

type report = {
  seed : int64;
  injected : int;
  recovered : int;
  attributed : int;
  pending : int;  (** Must be 0 for [pass]. *)
  counts : (Dsim.Chaos.kind * Dsim.Chaos.tally) list;
  phases : phase list;
  pass : bool;
  text : string;  (** Deterministic rendering of everything above. *)
}

val run : ?profile:profile -> ?blackbox_dir:string -> seed:int64 -> unit -> report
(** [blackbox_dir] arms the supervisors' crash black box: every
    containment writes [DIR/<cvm>.blackbox.json] (the journal's crash
    ring plus verdict and fault cross-references). The dumps do not
    perturb the run — reports stay byte-identical per seed with the
    directory set or not. *)
