type path = Baseline | Scenario1 | Scenario2 of { contended : bool }

let path_label = function
  | Baseline -> "Baseline"
  | Scenario1 -> "Scenario 1"
  | Scenario2 { contended = false } -> "Scenario 2 (uncontended)"
  | Scenario2 { contended = true } -> "Scenario 2 (contended)"

type result = {
  label : string;
  raw : Dsim.Stats.t;
  filtered : Dsim.Stats.t;
  boxplot : Dsim.Stats.boxplot;
  iterations : int;
  removed_pct : float;
}

let get = function
  | Ok v -> v
  | Error e -> invalid_arg ("measurement setup: " ^ Netstack.Errno.to_string e)

(* Build the topology, open the measured socket towards the peer sink,
   drive the simulation until the handshake completes, and allocate the
   app-compartment write buffer. *)
let setup_connected ?(seed = 45L) ~mode ~write_size () =
  let mt = Scenarios.build_measurement ~seed ~mode () in
  let built = mt.Scenarios.mt_built in
  let engine = built.Scenarios.engine in
  let mem = Topology.node_mem built.Scenarios.dut in
  let buf = Capvm.Cvm.calloc mt.Scenarios.mt_app_cvm mem (max write_size 64) in
  let stack = mt.Scenarios.mt_stack in
  let fd = get (Netstack.Stack.socket_stream stack) in
  (match
     Netstack.Stack.connect stack fd
       ~ip:(Netstack.Ipv4_addr.make 10 0 0 2)
       ~port:mt.Scenarios.mt_sink_port
   with
  | Ok () | Error Netstack.Errno.EINPROGRESS -> ()
  | Error e -> invalid_arg ("measurement connect: " ^ Netstack.Errno.to_string e));
  let connected () =
    match Netstack.Stack.tcp_sock_of_fd stack fd with
    | Some s -> s.Netstack.Socket.cb.Netstack.Tcp_cb.state = Netstack.Tcp_cb.Established
    | None -> false
  in
  let deadline = Dsim.Time.add (Dsim.Engine.now engine) (Dsim.Time.sec 2) in
  while (not (connected ())) && Dsim.Time.(Dsim.Engine.now engine < deadline) do
    Dsim.Engine.run engine
      ~until:(Dsim.Time.add (Dsim.Engine.now engine) (Dsim.Time.ms 1))
  done;
  if not (connected ()) then invalid_arg "measurement: connection never established";
  (* Let any contended background flow ramp up. *)
  Dsim.Engine.run engine
    ~until:(Dsim.Time.add (Dsim.Engine.now engine) (Dsim.Time.ms 100));
  (mt, fd, buf)

(* At most this many iteration spans are recorded per configuration, so
   paper-grade runs do not swamp the trace with a million identical
   intervals. *)
let span_sample_limit = 512

let run ?(iterations = 100_000) ?(write_size = 64) ?(interval = Dsim.Time.us 100)
    ?(seed = 45L) path =
  let mode =
    match path with
    | Baseline | Scenario1 -> `Direct
    | Scenario2 { contended } -> `S2 contended
  in
  let label = path_label path in
  let latency_metric =
    Dsim.Metrics.histogram Dsim.Metrics.default
      ~help:"ff_write latency samples (pre-IQR-filter), in nanoseconds."
      ~labels:[ ("path", label) ]
      ~lo:50. ~ratio:1.3 ~buckets:48 "ff_write_latency_ns"
  in
  let span_tid = Dsim.Span.track Dsim.Span.default label in
  (* Fig. 4's wall time flows through these handlers: each scheduling
     point in the measured ff_write round trip carries its own stage
     key so the profiler can split the path. *)
  let mk stage = Dsim.Profile.(key default) ~component:"measure" ~cvm:label ~stage in
  let k_clock_ret = mk "clock_ret" in
  let k_ff_done = mk "ff_write_done" in
  let k_tramp_in = mk "tramp_in" in
  let k_hold = mk "hold" in
  let k_tramp_out = mk "tramp_out" in
  let k_next = mk "next_iter" in
  let mt, fd, buf = setup_connected ~seed ~mode ~write_size () in
  let built = mt.Scenarios.mt_built in
  let engine = built.Scenarios.engine in
  Dsim.Sampler.attach Dsim.Sampler.default engine Dsim.Metrics.default;
  let iv = Topology.intravisor built.Scenarios.dut in
  let cm = Topology.node_cost built.Scenarios.dut in
  let rng = Dsim.Rng.create ~seed:(Int64.add seed 0x6d65L) in
  let shim = Capvm.Musl_shim.create iv mt.Scenarios.mt_app_cvm in
  let stack = mt.Scenarios.mt_stack in
  let ff = mt.Scenarios.mt_ff in
  let stack_counters = Netstack.Stack.counters stack in

  (* Clock read: returns (value_ns, total_cost_ns). The value is taken
     [read_offset] into the call — the remainder is the return path that
     lands inside a measured interval. *)
  let clock () =
    match path with
    | Baseline ->
      (* vDSO fast path: no kernel entry. *)
      ( Dsim.Time.to_float_ns (Dsim.Engine.now engine) +. cm.Dsim.Cost_model.vdso_clock_read_ns,
        cm.Dsim.Cost_model.vdso_clock_total_ns )
    | Scenario1 | Scenario2 _ ->
      (* Trampoline into the Intravisor + CheriBSD clock_gettime. *)
      let value, cost = Capvm.Musl_shim.clock_gettime shim in
      let read_offset = cm.Dsim.Cost_model.tramp_oneway_ns +. cm.Dsim.Cost_model.syscall_ns in
      (Dsim.Time.to_float_ns value +. read_offset, cost)
  in
  let ff_write_model_ns =
    cm.Dsim.Cost_model.ff_write_fixed_ns
    +. (cm.Dsim.Cost_model.ff_write_per_byte_ns *. float_of_int write_size)
  in
  let raw = Dsim.Stats.create ~capacity:iterations () in
  let record v1 v2 =
    let sample = v2 -. v1 in
    (* Measurement noise: multiplicative lognormal jitter plus the ~10%
       of iterations the paper discards by IQR (IRQs, cache pollution,
       scheduler preemption). *)
    let jittered =
      sample *. Dsim.Rng.lognormal rng ~mu:0. ~sigma:cm.Dsim.Cost_model.jitter_sigma
    in
    let final =
      if Dsim.Rng.float rng 1.0 < cm.Dsim.Cost_model.outlier_prob then
        jittered
        +. (sample
           *. Dsim.Rng.exponential rng ~mean:cm.Dsim.Cost_model.outlier_scale_mean)
      else jittered
    in
    Dsim.Stats.add raw final;
    Dsim.Metrics.observe latency_metric final
  in
  let done_flag = ref false in
  let do_ff_write flow k =
    match (path, built.Scenarios.mutex) with
    | (Baseline | Scenario1), _ | Scenario2 _, None ->
      (* Same protection domain as the stack: plain call. *)
      ignore (Netstack.Ff_api.ff_write ff fd ~buf ~nbytes:write_size);
      ignore
        (Dsim.Engine.schedule_l engine
           ~delay:(Dsim.Time.of_float_ns ff_write_model_ns) ~label:k_ff_done
           (fun () ->
             Dsim.Flowtrace.hop flow Ff_write ~at:(Dsim.Engine.now engine);
             k ()))
    | Scenario2 _, Some mu ->
      (* Cross into cVM1, take the shared mutex, run the real ff_write
         (whose TCP output work extends the hold), come back. *)
      ignore
        (Dsim.Engine.schedule_l engine
           ~delay:(Dsim.Time.of_float_ns cm.Dsim.Cost_model.tramp_oneway_ns)
           ~label:k_tramp_in
           (fun () ->
             Dsim.Flowtrace.hop flow Tramp_in ~at:(Dsim.Engine.now engine);
             Capvm.Umtx.acquire mu ~flow ~owner:"cVM2-measured"
               (fun ~wait_ns:_ ->
                 let tx0 = stack_counters.Netstack.Stack.tx_frames in
                 ignore tx0;
                 let write_result, _tramp_ns =
                   Capvm.Intravisor.trampoline iv ~into:mt.Scenarios.mt_stack_cvm
                     (fun () -> Netstack.Ff_api.ff_write ff fd ~buf ~nbytes:write_size)
                 in
                 ignore (write_result : (int, Netstack.Errno.t) Stdlib.result);
                 (* ff_write itself only appends to the socket buffer:
                    the segmentation it may trigger is main-loop work
                    (charged there), not part of the API call's hold. *)
                 let hold_ns =
                   cm.Dsim.Cost_model.mutex_uncontended_ns +. ff_write_model_ns
                 in
                 ignore
                   (Dsim.Engine.schedule_l engine
                      ~delay:(Dsim.Time.of_float_ns hold_ns) ~label:k_hold
                      (fun () ->
                        Dsim.Flowtrace.hop flow Ff_write
                          ~at:(Dsim.Engine.now engine);
                        Capvm.Umtx.release mu;
                        ignore
                          (Dsim.Engine.schedule_l engine
                             ~delay:
                               (Dsim.Time.of_float_ns
                                  cm.Dsim.Cost_model.tramp_oneway_ns)
                             ~label:k_tramp_out
                             (fun () ->
                               Dsim.Flowtrace.hop flow Tramp_out
                                 ~at:(Dsim.Engine.now engine);
                               k ())))))))
  in
  let run_span =
    Dsim.Span.start Dsim.Span.default
      ~at:(Dsim.Engine.now engine)
      ~cat:"measurement" ~tid:span_tid "run"
  in
  let rec iterate remaining =
    if remaining = 0 then done_flag := true
    else begin
      let sp =
        if iterations - remaining < span_sample_limit then
          Some
            (Dsim.Span.start Dsim.Span.default
               ~at:(Dsim.Engine.now engine)
               ~cat:"ff_write" ~tid:span_tid "iteration")
        else None
      in
      let v1, c1 = clock () in
      (* One trace per sampled iteration: its stage intervals telescope
         to exactly [v2 - v1], the pre-jitter end-to-end sample. *)
      let flow =
        Dsim.Flowtrace.origin_ns Dsim.Flowtrace.default ~at_ns:v1 ~flow:label
          App
      in
      ignore
        (Dsim.Engine.schedule_l engine ~delay:(Dsim.Time.of_float_ns c1)
           ~label:k_clock_ret (fun () ->
             Dsim.Flowtrace.hop flow Clock_ret ~at:(Dsim.Engine.now engine);
             do_ff_write flow (fun () ->
                 let v2, c2 = clock () in
                 Dsim.Flowtrace.hop_ns flow Clock_entry ~at_ns:v2;
                 record v1 v2;
                 Option.iter
                   (Dsim.Span.finish Dsim.Span.default
                      ~at:(Dsim.Engine.now engine))
                   sp;
                 ignore
                   (Dsim.Engine.schedule_l engine
                      ~delay:(Dsim.Time.add interval (Dsim.Time.of_float_ns c2))
                      ~label:k_next
                      (fun () -> iterate (remaining - 1))))))
    end
  in
  iterate iterations;
  while not !done_flag do
    Dsim.Engine.run engine
      ~until:(Dsim.Time.add (Dsim.Engine.now engine) (Dsim.Time.ms 50))
  done;
  Dsim.Span.finish Dsim.Span.default ~at:(Dsim.Engine.now engine) run_span;
  built.Scenarios.stop ();
  let filtered = Dsim.Stats.iqr_filter raw in
  {
    label = path_label path;
    raw;
    filtered;
    boxplot = Dsim.Stats.boxplot filtered;
    iterations;
    removed_pct =
      100.
      *. float_of_int (Dsim.Stats.count raw - Dsim.Stats.count filtered)
      /. float_of_int (max 1 (Dsim.Stats.count raw));
  }

let pp_result fmt r =
  Format.fprintf fmt "%-26s median=%8.0f ns  mean=%8.0f ns  sd=%7.0f ns  (n=%d, IQR removed %.1f%%)"
    r.label r.boxplot.Dsim.Stats.median r.boxplot.Dsim.Stats.mean
    r.boxplot.Dsim.Stats.stddev
    (Dsim.Stats.count r.filtered)
    r.removed_pct
