(** First-divergence diffing between two journals ([netrepro jdiff]).

    Given two [*.journal.jsonl] recordings, reports the first sequence
    number at which the dispatch streams diverge (virtual time, label,
    causal parent or RNG-draw count — or one journal simply running
    longer), walks the causal parent edges of both diverging dispatches
    back to their last common ancestor (every record below the
    divergence point is shared, so the chains meet in the common
    prefix), and summarizes per-component dispatch-count drift from the
    split onward. Exit discipline matches [perfdiff]: 0 equivalent,
    1 diverged, 2 on I/O or parse errors. *)

type divergence = {
  dv_seq : int;
  dv_field : string;
      (** ["virtual_time"] | ["label"] | ["causal_parent"] |
          ["rng_draws"] | ["extra_dispatch_in_a"/"_in_b"]. *)
  dv_a : Dsim.Journal.dispatch option;
  dv_b : Dsim.Journal.dispatch option;
  dv_ancestor : Dsim.Journal.dispatch option;
      (** Last common causal ancestor; [None] when both diverging
          dispatches are root-scheduled. *)
}

type report = {
  path_a : string;
  path_b : string;
  count_a : int;
  count_b : int;
  divergence : divergence option;  (** [None] = equivalent. *)
  text : string;  (** Deterministic human-readable report. *)
}

val compare_files : ?context:int -> string -> string -> (report, string) result
(** [compare_files a b]; [Error] on unreadable/unparsable journals
    (CLI exit 2). [context] is the ±K window printed around the
    divergence (default 5). *)

val exit_code : report -> int
(** 0 equivalent, 1 diverged. *)
