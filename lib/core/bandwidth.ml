type sample = { label : string; mbit_s : float; efficiency_pct : float }

let theoretical_port_mbit = 1000.
let expected_single_port_goodput_mbit = 1000. *. Dsim.Cost_model.ethernet_goodput_ratio

let run (built : Scenarios.built) ?(warmup = Dsim.Time.ms 300)
    ?(duration = Dsim.Time.sec 2) ?(fair_share_mbit = theoretical_port_mbit) ()
    =
  let engine = built.Scenarios.engine in
  (* Periodic metric snapshots on the virtual clock (time-series export);
     no-op unless the default sampler has been enabled. *)
  Dsim.Sampler.attach Dsim.Sampler.default engine Dsim.Metrics.default;
  Dsim.Engine.run engine ~until:(Dsim.Time.add (Dsim.Engine.now engine) warmup);
  List.iter
    (fun f -> ignore (f.Scenarios.take_bytes ()))
    built.Scenarios.flows;
  let t0 = Dsim.Engine.now engine in
  Dsim.Engine.run engine ~until:(Dsim.Time.add t0 duration);
  let elapsed_s = Dsim.Time.to_float_sec (Dsim.Time.sub (Dsim.Engine.now engine) t0) in
  let samples =
    List.map
      (fun f ->
        let bytes = f.Scenarios.take_bytes () in
        let mbit_s = float_of_int bytes *. 8. /. elapsed_s /. 1e6 in
        {
          label = f.Scenarios.label;
          mbit_s;
          efficiency_pct = mbit_s /. fair_share_mbit *. 100.;
        })
      built.Scenarios.flows
  in
  built.Scenarios.stop ();
  samples

let pp_sample fmt s =
  Format.fprintf fmt "%-16s %7.0f Mbit/s  (%.1f%%)" s.label s.mbit_s
    s.efficiency_pct
