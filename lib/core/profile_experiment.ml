type report = {
  exp_id : string;
  experiment_text : string;
  hotspot_text : string;
  watermark_text : string;
  folded : string;
  attributed_pct : float;
  json : Dsim.Json.t;
}

let run_once (spec : Experiment.spec) profile =
  let p = Dsim.Profile.default and w = Dsim.Watermark.default in
  Dsim.Profile.reset p;
  Dsim.Watermark.reset w;
  Dsim.Profile.set_enabled p true;
  Dsim.Watermark.set_enabled w true;
  let out =
    Fun.protect
      ~finally:(fun () ->
        Dsim.Profile.set_enabled p false;
        Dsim.Watermark.set_enabled w false)
      (fun () -> spec.Experiment.report profile)
  in
  let profile_json =
    match Dsim.Profile.to_json p with
    | Dsim.Json.Obj fields ->
      Dsim.Json.Obj
        (("experiment", Dsim.Json.String spec.Experiment.id)
        :: ("schema", Dsim.Json.String "netrepro-profile/1")
        :: (fields @ [ ("watermarks", Dsim.Watermark.to_json w) ]))
    | other -> other
  in
  {
    exp_id = spec.Experiment.id;
    experiment_text = out.Experiment.text;
    hotspot_text = Dsim.Profile.render p;
    watermark_text = Dsim.Watermark.render w;
    folded = Dsim.Profile.folded p;
    attributed_pct = Dsim.Profile.attributed_pct p;
    json = profile_json;
  }

(* ------------------------------------------------------------------ *)
(* Median-of-N wall-time merge                                         *)
(* ------------------------------------------------------------------ *)

(* Wall time is the one non-deterministic output of a profiled run:
   under container CPU contention, per-stage ns/event drifts by double
   digits while event counts stay bit-identical. Taking the per-hotspot
   median across N runs removes the outlier run that a loaded host
   produces, so [netrepro perfdiff] compares signal, not scheduler
   luck. Everything deterministic (events, watermarks, the experiment's
   own text) is asserted identical across runs and taken from the
   representative run. *)

let median xs =
  match List.sort compare xs with
  | [] -> 0.
  | sorted ->
    let n = List.length sorted in
    let nth i = List.nth sorted i in
    if n mod 2 = 1 then nth (n / 2)
    else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.

let num = function
  | Dsim.Json.Int n -> Some (float_of_int n)
  | Dsim.Json.Float f -> Some f
  | _ -> None

let num_member name j = Option.bind (Dsim.Json.member name j) num

let hotspot_key row =
  let s name =
    match Dsim.Json.member name row with
    | Some (Dsim.Json.String v) -> v
    | _ -> ""
  in
  s "component" ^ ":" ^ s "cvm" ^ ":" ^ s "stage"

let rows_of json =
  match Option.bind (Dsim.Json.member "hotspots" json) Dsim.Json.to_list with
  | Some rows -> rows
  | None -> []

(* The wall fields of one hotspot row, replaced by the medians over the
   same (component, cvm, stage) key in every run. *)
let merge_row all_jsons row =
  let key = hotspot_key row in
  let field name =
    median
      (List.filter_map
         (fun j ->
           List.find_map
             (fun r ->
               if hotspot_key r = key then num_member name r else None)
             (rows_of j))
         all_jsons)
  in
  match row with
  | Dsim.Json.Obj fields ->
    Dsim.Json.Obj
      (List.map
         (fun (k, v) ->
           match k with
           | "self_wall_ns" | "cum_wall_ns" | "ns_per_event" ->
             (k, Dsim.Json.Float (field k))
           | _ -> (k, v))
         fields)
  | other -> other

let merge_jsons rep_json all_jsons =
  match rep_json with
  | Dsim.Json.Obj fields ->
    Dsim.Json.Obj
      (List.map
         (fun (k, v) ->
           match k with
           | "total_self_wall_ns" | "attributed_wall_ns" ->
             ( k,
               Dsim.Json.Float
                 (median
                    (List.filter_map
                       (fun j -> num_member k j)
                       all_jsons)) )
           | "hotspots" -> (
             match v with
             | Dsim.Json.List rows ->
               (k, Dsim.Json.List (List.map (merge_row all_jsons) rows))
             | other -> (k, other))
           | _ -> (k, v))
         fields)
  | other -> other

let run ?(profile = Experiment.quick) ?(runs = 1) (spec : Experiment.spec) =
  if runs < 1 then invalid_arg "Profile_experiment.run: runs must be >= 1";
  let reports = List.init runs (fun _ -> run_once spec profile) in
  match reports with
  | [ r ] -> r
  | reports ->
    (* The experiment itself is deterministic: a text mismatch between
       runs means profiling perturbed the run, which the whole design
       forbids — fail loudly rather than average garbage. *)
    let rep = List.hd reports in
    List.iter
      (fun r ->
        if r.experiment_text <> rep.experiment_text then
          failwith
            "Profile_experiment.run: experiment output diverged between \
             profiled runs")
      reports;
    let totals =
      List.map
        (fun r -> Option.value ~default:0. (num_member "total_self_wall_ns" r.json))
        reports
    in
    let med_total = median totals in
    (* Representative: the run whose total wall time is closest to the
       median — its renderings stay self-consistent while the snapshot
       fields get per-key medians. *)
    let rep =
      List.fold_left
        (fun best r ->
          let dist x =
            Float.abs
              (Option.value ~default:0.
                 (num_member "total_self_wall_ns" x.json)
              -. med_total)
          in
          if dist r < dist best then r else best)
        rep reports
    in
    let all_jsons = List.map (fun r -> r.json) reports in
    { rep with json = merge_jsons rep.json all_jsons }
