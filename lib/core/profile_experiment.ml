type report = {
  exp_id : string;
  experiment_text : string;
  hotspot_text : string;
  watermark_text : string;
  folded : string;
  attributed_pct : float;
  json : Dsim.Json.t;
}

let run ?(profile = Experiment.quick) (spec : Experiment.spec) =
  let p = Dsim.Profile.default and w = Dsim.Watermark.default in
  Dsim.Profile.reset p;
  Dsim.Watermark.reset w;
  Dsim.Profile.set_enabled p true;
  Dsim.Watermark.set_enabled w true;
  let out =
    Fun.protect
      ~finally:(fun () ->
        Dsim.Profile.set_enabled p false;
        Dsim.Watermark.set_enabled w false)
      (fun () -> spec.Experiment.report profile)
  in
  let profile_json =
    match Dsim.Profile.to_json p with
    | Dsim.Json.Obj fields ->
      Dsim.Json.Obj
        (("experiment", Dsim.Json.String spec.Experiment.id)
        :: ("schema", Dsim.Json.String "netrepro-profile/1")
        :: (fields @ [ ("watermarks", Dsim.Watermark.to_json w) ]))
    | other -> other
  in
  {
    exp_id = spec.Experiment.id;
    experiment_text = out.Experiment.text;
    hotspot_text = Dsim.Profile.render p;
    watermark_text = Dsim.Watermark.render w;
    folded = Dsim.Profile.folded p;
    attributed_pct = Dsim.Profile.attributed_pct p;
    json = profile_json;
  }
