(* Red-team network-borne attack generator with blast-radius gates.

   A seeded, deterministic corpus of hostile traffic and hostile app
   behaviour, organised along the taxonomy of [Dsim.Redteam.cls]:

   - parser-bounds: crafted frames whose headers lie about the bytes
     actually on the wire (truncations, bad IHL/data-offset, lying
     total/UDP lengths, option overflows, fragments);
   - temporal: connection-close races — blind RST/SYN/FIN against a
     live connection, a stale capability dereference inside the
     supervised ff_* boundary, a closed fd left in an epoll set;
   - resource: floods and mbuf exhaust-and-spray driving pools into
     typed backpressure;
   - cross-tenant: probes at sibling cVMs through the Scenario 2
     shared stack (port scans, forged 5-tuples, RSS-steering abuse).

   Hostile frames enter at the [Nic.Link.inject] tamper point — they
   share the legitimate traffic's serialisation queue, FCS and
   propagation, so attacked runs stay deterministic. Hostile app
   behaviour enters through the scenario [app_hook], inside the
   supervisor's trap boundary with the Scenario 2 mutex held.

   Every launch must end in a typed verdict: in the CHERI scenarios a
   Flowtrace (stage, reason) drop, a typed backpressure symptom or a
   supervisor-contained [Cheri.Fault.Capability_fault]; in the
   MMU-only baseline the memory attacks are *expected* to leak, and the
   ledger records the silent corruption. The PR 4 blast-radius gate
   extends to attacked runs: sibling goodput outside quarantine must
   stay >= 0.9x the undisturbed twin in every phase. *)

module Rt = Dsim.Redteam
module Ft = Dsim.Flowtrace
module Time = Dsim.Time
module Engine = Dsim.Engine
module Sup = Capvm.Supervisor

let k_redteam stage =
  Dsim.Profile.(key default) ~component:"redteam" ~cvm:"-" ~stage

let k_arm = k_redteam "warmup_arm"
let k_tick = k_redteam "sample_tick"
let k_inject = k_redteam "inject"
let k_check = k_redteam "verdict_check"

type profile = {
  warmup : Time.t;
  duration : Time.t;
  sample_every : Time.t;
  exhaust_window : Time.t;  (** How long the mbuf spray holds the pool. *)
}

let quick =
  {
    warmup = Time.ms 6;
    duration = Time.ms 30;
    sample_every = Time.ms 1;
    exhaust_window = Time.us 300;
  }

let full =
  {
    warmup = Time.ms 20;
    duration = Time.ms 120;
    sample_every = Time.ms 2;
    exhaust_window = Time.us 400;
  }

type phase = {
  ap_title : string;
  ap_victim : string;
  ap_sibling : string;
  ap_ids : int list;  (** Ledger ids launched during this phase. *)
  ap_drops : ((Ft.stage * Ft.reason) * int) list;
  ap_sibling_rate : float;
  ap_sibling_ref : float;
  ap_victim_rate : float;
  ap_victim_ref : float;
  ap_mutex_free : bool;  (** Shared mutex not left held by the victim. *)
  ap_pool_recovered : bool;  (** Mbufs available again after the spray. *)
  ap_rst_sent : int;  (** RSTs the stack answered probes with. *)
}

type report = {
  seed : int64;
  launched : int;
  caught : int;
  leaked : int;
  pending : int;
  counts : (Rt.cls * Rt.tally) list;
  phases : phase list;
  cheri_caught : int;  (** Caught launches in the CHERI phases. *)
  cheri_launched : int;
  pass : bool;
  text : string;
  json : Dsim.Json.t;
}

(* ------------------------------------------------------------------ *)
(* Goodput sampling (same machinery as the chaos harness)              *)
(* ------------------------------------------------------------------ *)

let overlaps (a, b) windows =
  List.exists
    (fun (ws, we) ->
      let ws = Time.to_float_ns ws in
      match we with
      | Some we -> a < Time.to_float_ns we && b > ws
      | None -> b > ws)
    windows

let rate_outside samples windows =
  let bytes, ns =
    List.fold_left
      (fun (bytes, ns) (a, b, d) ->
        if overlaps (a, b) windows then (bytes, ns)
        else (bytes + d, ns +. (b -. a)))
      (0, 0.) samples
  in
  if ns <= 0. then 0. else float_of_int (bytes * 8) /. ns

let drive built profile ~after_warmup =
  let engine = built.Scenarios.engine in
  let samples =
    List.map (fun f -> (f.Scenarios.label, ref [])) built.Scenarios.flows
  in
  let t0 = profile.warmup in
  let t_end = Time.add t0 profile.duration in
  ignore
    (Engine.schedule_at_l engine ~at:t0 ~label:k_arm (fun () ->
         List.iter
           (fun f -> ignore (f.Scenarios.take_bytes ()))
           built.Scenarios.flows;
         after_warmup ()));
  let rec tick prev () =
    let now = Engine.now engine in
    let now_ns = Time.to_float_ns now and prev_ns = Time.to_float_ns prev in
    List.iter
      (fun f ->
        let d = f.Scenarios.take_bytes () in
        match List.assoc_opt f.Scenarios.label samples with
        | Some r -> r := (prev_ns, now_ns, d) :: !r
        | None -> ())
      built.Scenarios.flows;
    if Time.(now < t_end) then
      ignore
        (Engine.schedule_l engine ~delay:profile.sample_every ~label:k_tick
           (tick now))
  in
  ignore
    (Engine.schedule_at_l engine ~at:(Time.add t0 profile.sample_every)
       ~label:k_tick (tick t0));
  Engine.run ~until:t_end engine;
  built.Scenarios.stop ();
  List.map (fun (l, r) -> (l, List.rev !r)) samples

let frac profile f =
  Time.add profile.warmup
    (Time.of_float_ns (f *. Time.to_float_ns profile.duration))

let ratio rate ref_ = if ref_ <= 0. then 1. else rate /. ref_
let sibling_ok p = ratio p.ap_sibling_rate p.ap_sibling_ref >= 0.9

(* ------------------------------------------------------------------ *)
(* Frame forge                                                         *)
(* ------------------------------------------------------------------ *)

(* Raw header construction, deliberately independent of the stack's own
   builders: the attacker controls every byte, and the well-formed
   parts (checksums over lying fields) must be computed over exactly
   what is on the wire. *)

let set8 b off v = Bytes.set b off (Char.chr (v land 0xff))

let set16 b off v =
  set8 b off (v lsr 8);
  set8 b (off + 1) v

let set32 b off v =
  set16 b off ((v lsr 16) land 0xffff);
  set16 b (off + 2) (v land 0xffff)

let write_ip b off ip =
  let v = Int32.to_int (Netstack.Ipv4_addr.to_int32 ip) land 0xffffffff in
  set32 b off v

type forge = {
  fg_dst_mac : string;  (** 6 raw bytes: the victim port's MAC. *)
  fg_src_mac : string;
  fg_dst_ip : Netstack.Ipv4_addr.t;
  fg_src_ip : Netstack.Ipv4_addr.t;
}

let attacker_mac = Nic.Mac_addr.make 0x02 0xbd 0x0d 0x00 0x00 0x01

(* Ethernet header (IPv4 ethertype) into a fresh frame of [len]. *)
let eth_frame fg len =
  let b = Bytes.make len '\000' in
  Bytes.blit_string fg.fg_dst_mac 0 b 0 6;
  Bytes.blit_string fg.fg_src_mac 0 b 6 6;
  set16 b 12 0x0800;
  b

(* IPv4 header at offset 14. The checksum is computed last, over the
   header exactly as crafted — so a lying [total_len] still carries a
   valid checksum and must be rejected by the length check itself. *)
let ipv4_at b ?(src = Netstack.Ipv4_addr.any) ?(dst = Netstack.Ipv4_addr.any)
    ?(vihl = 0x45) ?(frag = 0x4000) ?total_len ~proto () =
  let total_len =
    match total_len with Some l -> l | None -> Bytes.length b - 14
  in
  set8 b 14 vihl;
  set16 b 16 total_len;
  set16 b 18 0x2bad (* ident *);
  set16 b 20 frag;
  set8 b 22 64 (* ttl *);
  set8 b 23 proto;
  write_ip b 26 src;
  write_ip b 30 dst;
  set16 b 24 0;
  set16 b 24 (Netstack.Checksum.compute b ~off:14 ~len:20)

let f_fin = 0x01
let f_syn = 0x02
let f_rst = 0x04
let f_ack = 0x10

(* Full TCP frame: 14 eth + 20 ip + header of [data_words] words +
   [payload_len] zero bytes. The TCP checksum (over the pseudo-header)
   is valid unless the caller corrupts it afterwards. *)
let tcp_frame fg ~src_port ~dst_port ~seq ~ack_seq ~flags
    ?(data_words = 5) ?(payload_len = 0) () =
  let tcp_len = (data_words * 4) + payload_len in
  let b = eth_frame fg (34 + tcp_len) in
  ipv4_at b ~src:fg.fg_src_ip ~dst:fg.fg_dst_ip ~proto:6 ();
  set16 b 34 src_port;
  set16 b 36 dst_port;
  set32 b 38 seq;
  set32 b 42 ack_seq;
  set8 b 46 (data_words lsl 4);
  set8 b 47 flags;
  set16 b 48 4096 (* window *);
  let sum =
    Netstack.Ipv4.pseudo_header_sum ~src:fg.fg_src_ip ~dst:fg.fg_dst_ip
      ~protocol:Netstack.Ipv4.Tcp ~len:tcp_len
  in
  set16 b 50 (Netstack.Checksum.compute ~init:sum b ~off:34 ~len:tcp_len);
  b

(* UDP frame; checksum 0 = "not computed" (legal for UDP/IPv4), so the
   length field alone is under test. *)
let udp_frame fg ~src_port ~dst_port ~udp_len ~payload_len =
  let b = eth_frame fg (42 + payload_len) in
  ipv4_at b ~src:fg.fg_src_ip ~dst:fg.fg_dst_ip ~proto:17 ();
  set16 b 34 src_port;
  set16 b 36 dst_port;
  set16 b 38 udp_len;
  set16 b 40 0;
  b

(* ------------------------------------------------------------------ *)
(* Wire corpus                                                         *)
(* ------------------------------------------------------------------ *)

(* One corpus entry: the frames to inject and the typed (stage, reason)
   artifacts the stack is allowed to convert them into — the attack
   resolves on whichever acceptable drop counter moves first, and an
   entry whose frames produce none of them stays Pending (gate
   failure). *)
type wire_attack = {
  wa_name : string;
  wa_cls : Rt.cls;
  wa_expect : (Ft.stage * Ft.reason) list;
  wa_frames : bytes list;
  wa_note : string;
}

let rand_seq rng = Dsim.Rng.int rng 0x40000000 + 0x1000000

(* The parser-bounds corpus: every entry is a frame whose headers lie
   about the bytes present. [sp] forges distinct source ports so
   entries never collide into one flow. *)
let parser_corpus rng fg =
  let sp () = 20000 + Dsim.Rng.int rng 8000 in
  let plain_tcp ?data_words ?payload_len () =
    tcp_frame fg ~src_port:(sp ()) ~dst_port:5201 ~seq:(rand_seq rng)
      ~ack_seq:0 ~flags:f_syn ?data_words ?payload_len ()
  in
  let runt =
    let b = Bytes.make 10 '\x5a' in
    Bytes.blit_string fg.fg_dst_mac 0 b 0 6;
    b
  in
  let arp_runt =
    let b = eth_frame fg 24 in
    set16 b 12 0x0806;
    b
  in
  let ipv4_trunc =
    let b = eth_frame fg 24 in
    set8 b 14 0x45;
    b
  in
  let bad_ihl =
    let b = eth_frame fg 34 in
    ipv4_at b ~src:fg.fg_src_ip ~dst:fg.fg_dst_ip ~vihl:0x44 ~proto:6 ();
    b
  in
  let opt_overflow =
    (* IHL claims 60 bytes of header; only 20 are on the wire. *)
    let b = eth_frame fg 34 in
    ipv4_at b ~src:fg.fg_src_ip ~dst:fg.fg_dst_ip ~vihl:0x4f ~proto:6 ();
    b
  in
  let lying_total_len =
    let b = plain_tcp () in
    ipv4_at b ~src:fg.fg_src_ip ~dst:fg.fg_dst_ip ~proto:6
      ~total_len:(Bytes.length b - 14 + 48)
      ();
    b
  in
  let ip_bad_csum =
    let b = plain_tcp () in
    set16 b 24 0xdead;
    b
  in
  let fragment =
    let b = plain_tcp () in
    ipv4_at b ~src:fg.fg_src_ip ~dst:fg.fg_dst_ip ~proto:6 ~frag:0x2000 ();
    b
  in
  let tcp_trunc =
    (* IP says 8 bytes of TCP; the TCP parser needs 20. *)
    let b = eth_frame fg 42 in
    ipv4_at b ~src:fg.fg_src_ip ~dst:fg.fg_dst_ip ~proto:6 ();
    set16 b 34 (sp ());
    set16 b 36 5201;
    b
  in
  let tcp_bad_data_off =
    (* data_off claims 60 bytes of TCP header in a 20-byte segment;
       checksum is valid over the bytes actually present. *)
    let b = eth_frame fg 54 in
    ipv4_at b ~src:fg.fg_src_ip ~dst:fg.fg_dst_ip ~proto:6 ();
    set16 b 34 (sp ());
    set16 b 36 5201;
    set32 b 38 (rand_seq rng);
    set8 b 46 (15 lsl 4);
    set8 b 47 f_syn;
    let sum =
      Netstack.Ipv4.pseudo_header_sum ~src:fg.fg_src_ip ~dst:fg.fg_dst_ip
        ~protocol:Netstack.Ipv4.Tcp ~len:20
    in
    set16 b 50 (Netstack.Checksum.compute ~init:sum b ~off:34 ~len:20);
    b
  in
  let tcp_opt_overflow =
    (* 24-byte header: one option of kind MSS claiming 44 bytes. *)
    let b = tcp_frame fg ~src_port:(sp ()) ~dst_port:5201 ~seq:(rand_seq rng)
        ~ack_seq:0 ~flags:f_syn ~data_words:6 ()
    in
    set8 b 54 2;
    set8 b 55 44;
    let sum =
      Netstack.Ipv4.pseudo_header_sum ~src:fg.fg_src_ip ~dst:fg.fg_dst_ip
        ~protocol:Netstack.Ipv4.Tcp ~len:24
    in
    set16 b 50 0;
    set16 b 50 (Netstack.Checksum.compute ~init:sum b ~off:34 ~len:24);
    b
  in
  let tcp_bad_csum =
    let b = plain_tcp () in
    set16 b 50 0xbeef;
    b
  in
  let udp_trunc =
    let b = eth_frame fg 38 in
    ipv4_at b ~src:fg.fg_src_ip ~dst:fg.fg_dst_ip ~proto:17 ();
    b
  in
  let udp_lying_len =
    udp_frame fg ~src_port:(sp ()) ~dst_port:5353 ~udp_len:200 ~payload_len:4
  in
  let e name expect frame note =
    { wa_name = name; wa_cls = Rt.Parser_bounds; wa_expect = [ expect ];
      wa_frames = [ frame ]; wa_note = note }
  in
  [
    e "eth_runt" (Ft.Eth_rx, Ft.Parse_error) runt
      "10-byte frame; ethernet parse rejects before any field read";
    e "arp_runt" (Ft.Eth_rx, Ft.Bad_length) arp_runt
      "ARP body shorter than the fixed packet length";
    e "ipv4_truncated_header" (Ft.Ip_rx, Ft.Bad_length) ipv4_trunc
      "10 bytes of IPv4 header on the wire";
    e "ipv4_bad_ihl" (Ft.Ip_rx, Ft.Parse_error) bad_ihl
      "IHL below the minimum header length";
    e "ipv4_options_overflow" (Ft.Ip_rx, Ft.Bad_option) opt_overflow
      "IHL claims 40 bytes of options that are not present";
    e "ipv4_lying_total_len" (Ft.Ip_rx, Ft.Bad_length) lying_total_len
      "total_len 48 bytes past the frame; checksum valid";
    e "ipv4_bad_checksum" (Ft.Ip_rx, Ft.Bad_checksum) ip_bad_csum
      "header checksum corrupted";
    e "ipv4_fragment" (Ft.Ip_rx, Ft.Frag_unsupported) fragment
      "MF set; reassembly is a typed reject, not a misparse";
    e "tcp_truncated" (Ft.Tcp_in, Ft.Bad_length) tcp_trunc
      "IP delivers 8 bytes where TCP needs 20";
    e "tcp_bad_data_off" (Ft.Tcp_in, Ft.Parse_error) tcp_bad_data_off
      "data offset past the segment; checksum valid";
    e "tcp_option_overflow" (Ft.Tcp_in, Ft.Bad_option) tcp_opt_overflow
      "MSS option length 44 overruns the header";
    e "tcp_bad_checksum" (Ft.Tcp_in, Ft.Bad_checksum) tcp_bad_csum
      "segment checksum corrupted";
    e "udp_truncated" (Ft.Udp_in, Ft.Bad_length) udp_trunc
      "4 bytes of UDP header on the wire";
    e "udp_lying_length" (Ft.Udp_in, Ft.Bad_length) udp_lying_len
      "UDP length field 200 in a 12-byte datagram";
  ]

(* Blind in-window guesses against a live connection: the attacker
   knows the 4-tuple but not the sequence state. The hardened TCP input
   answers each with a challenge ACK and a typed drop — Out_of_window
   for a wild guess, Dup_segment when the wild sequence happens to land
   below rcv_nxt — never a teardown. *)
let blind_expect = [ (Ft.Tcp_in, Ft.Out_of_window); (Ft.Tcp_in, Ft.Dup_segment) ]

let blind_corpus rng fg ~src_port ~dst_port =
  let seg flags =
    tcp_frame fg ~src_port ~dst_port ~seq:(rand_seq rng)
      ~ack_seq:(rand_seq rng) ~flags ()
  in
  let e name flags note =
    { wa_name = name; wa_cls = Rt.Temporal; wa_expect = blind_expect;
      wa_frames = [ seg flags ]; wa_note = note }
  in
  [
    e "blind_rst" f_rst
      "forged RST, guessed sequence: challenge-ACK, connection survives";
    e "blind_syn" (f_syn : int)
      "SYN into an established connection: no reset, typed drop";
    e "blind_fin" (f_fin lor f_ack)
      "forged FIN mid-transfer: close race refused outside rcv_nxt";
  ]

(* SYN flood from one unroutable forged source: every SYN spawns an
   embryo connection whose SYN-ACK parks in the ARP pending queue for
   the forged next hop. The queue is bounded (16 per IP), so the flood
   overflows it and the overflow is squashed into typed Arp_unresolved
   drops — bounded state, no amplification. *)
let syn_flood rng fg ~server_port ~n =
  let forged_src = Netstack.Ipv4_addr.make 10 0 0 100 in
  let frames =
    List.init n (fun _ ->
        let b =
          tcp_frame fg
            ~src_port:(1024 + Dsim.Rng.int rng 60000)
            ~dst_port:server_port ~seq:(rand_seq rng) ~ack_seq:0
            ~flags:f_syn ()
        in
        ipv4_at b ~src:forged_src ~dst:fg.fg_dst_ip ~proto:6 ();
        let sum =
          Netstack.Ipv4.pseudo_header_sum ~src:forged_src ~dst:fg.fg_dst_ip
            ~protocol:Netstack.Ipv4.Tcp ~len:20
        in
        set16 b 50 0;
        set16 b 50 (Netstack.Checksum.compute ~init:sum b ~off:34 ~len:20);
        b)
  in
  {
    wa_name = "syn_flood";
    wa_cls = Rt.Resource;
    wa_expect = [ (Ft.Ip_out, Ft.Arp_unresolved) ];
    wa_frames = frames;
    wa_note =
      "SYN/ACK amplification to a forged source overflows the bounded ARP \
       pending queue";
  }

let frag_flood rng fg ~n =
  let frames =
    List.init n (fun _ ->
        let b =
          tcp_frame fg ~src_port:(1024 + Dsim.Rng.int rng 60000)
            ~dst_port:5201 ~seq:(rand_seq rng) ~ack_seq:0 ~flags:f_ack
            ~payload_len:64 ()
        in
        ipv4_at b ~src:fg.fg_src_ip ~dst:fg.fg_dst_ip ~proto:6
          ~frag:(0x2000 lor Dsim.Rng.int rng 0x1fff)
          ();
        b)
  in
  {
    wa_name = "fragment_flood";
    wa_cls = Rt.Resource;
    wa_expect = [ (Ft.Ip_rx, Ft.Frag_unsupported) ];
    wa_frames = frames;
    wa_note = "pathological reassembly load is refused per-fragment";
  }

let port_scan rng fg ~n =
  let frames =
    List.init n (fun i ->
        tcp_frame fg
          ~src_port:(30000 + Dsim.Rng.int rng 20000)
          ~dst_port:(7000 + i) ~seq:(rand_seq rng) ~ack_seq:0 ~flags:f_syn ())
  in
  {
    wa_name = "port_scan";
    wa_cls = Rt.Cross_tenant;
    wa_expect = [ (Ft.Tcp_in, Ft.No_socket) ];
    wa_frames = frames;
    wa_note = "scan of closed sibling ports: typed No_socket + RST each";
  }

let forged_5tuple rng fg ~src_ports ~dst_ports =
  let frames =
    List.map2
      (fun sp dp ->
        tcp_frame fg ~src_port:sp ~dst_port:dp ~seq:(rand_seq rng)
          ~ack_seq:(rand_seq rng) ~flags:(f_ack : int) ~payload_len:16 ())
      src_ports dst_ports
  in
  {
    wa_name = "forged_5tuple";
    wa_cls = Rt.Cross_tenant;
    wa_expect = blind_expect;
    wa_frames = frames;
    wa_note =
      "data injection into a sibling's connection via its forged 5-tuple";
  }

(* RSS-steering abuse: the Toeplitz hash is a pure function of the
   frame bytes, so the attacker computes which forged source ports land
   on the victim's RX queue and aims the probes there. *)
let rss_steer rng fg ~victim_src_port ~victim_dst_port =
  let rss = Nic.Rss.create ~queues:4 () in
  let victim_frame =
    tcp_frame fg ~src_port:victim_src_port ~dst_port:victim_dst_port ~seq:0
      ~ack_seq:0 ~flags:f_ack ()
  in
  let vhash, vq =
    match Nic.Rss.probe rss victim_frame with
    | Some (h, q) -> (h, q)
    | None -> (0, 0)
  in
  let rec pick acc tries =
    if List.length acc >= 2 || tries > 512 then List.rev acc
    else
      let p = 40000 + Dsim.Rng.int rng 20000 in
      let f =
        tcp_frame fg ~src_port:p ~dst_port:7777 ~seq:(rand_seq rng)
          ~ack_seq:0 ~flags:f_syn ()
      in
      match Nic.Rss.probe rss f with
      | Some (_, q) when q = vq -> pick (f :: acc) (tries + 1)
      | _ -> pick acc (tries + 1)
  in
  {
    wa_name = "rss_steer_probe";
    wa_cls = Rt.Cross_tenant;
    wa_expect = [ (Ft.Tcp_in, Ft.No_socket) ];
    wa_frames = pick [] 0;
    wa_note =
      Printf.sprintf
        "probes steered onto the victim's RX queue %d (victim hash 0x%08x)"
        vq vhash;
  }

(* A 10-byte runt addressed to the victim port: consumes one armed RX
   descriptor, then is rejected at ethernet parse without creating any
   state — the cheapest possible descriptor-eater for the exhaust
   spray. *)
let spray_runt fg =
  let b = Bytes.make 10 '\x5a' in
  Bytes.blit_string fg.fg_dst_mac 0 b 0 6;
  b

(* ------------------------------------------------------------------ *)
(* Launch/verdict plumbing                                             *)
(* ------------------------------------------------------------------ *)

let drop_count key =
  match List.assoc_opt key (Ft.drop_table Ft.default) with
  | Some n -> n
  | None -> 0

(* Register, inject and schedule the verdict check for one wire attack.
   Injected frames share the legitimate traffic's serialisation queue
   and the stack's poll cadence, so the typed drop lands a few hundred
   microseconds after injection: the check snapshots every acceptable
   (stage, reason) counter at inject time and re-polls until one moves,
   resolving with that key. A launch none of whose counters ever move
   stays Pending and fails the gate at [until]. *)
let launch_wire rt engine link ~target ~stack_name attack ~at ~until ids =
  ignore
    (Engine.schedule_at_l engine ~at ~label:k_inject (fun () ->
         if attack.wa_frames = [] then ()
         else begin
           let at_ns = Time.to_float_ns (Engine.now engine) in
           let id =
             Rt.launch rt attack.wa_cls ~name:attack.wa_name ~at_ns ~target
           in
           ids := id :: !ids;
           let before =
             List.map (fun k -> (k, drop_count k)) attack.wa_expect
           in
           List.iter
             (fun f ->
               ignore
                 (Nic.Link.inject link ~into:Nic.Link.A ~frame:(Bytes.copy f)
                    ()))
             attack.wa_frames;
           let rec check () =
             match
               List.find_opt (fun (k, b) -> drop_count k > b) before
             with
             | Some ((st, re), b) ->
               Rt.resolve_caught rt id ~stage:(Ft.stage_name st)
                 ~reason:(Ft.reason_name re);
               Rt.set_provenance rt id
                 (Printf.sprintf
                    "%s; attributed at %s's %s/%s guard (+%d typed drops)"
                    attack.wa_note stack_name (Ft.stage_name st)
                    (Ft.reason_name re)
                    (drop_count (st, re) - b))
             | None ->
               if Time.(Engine.now engine < until) then
                 ignore
                   (Engine.schedule_l engine ~delay:(Time.us 100)
                      ~label:k_check check)
           in
           ignore
             (Engine.schedule_l engine ~delay:(Time.us 100) ~label:k_check
                check)
         end))

let exhaust_expect =
  [ (Ft.Eth_tx, Ft.Mbuf_exhausted); (Ft.Rx_dma, Ft.Rx_ring_full) ]

(* Mbuf exhaust-and-spray: drain the pool, keep it pinned dry for the
   window, and optionally spray a burst of hostile runt frames while it
   is dry. On a transmitting stack the next data/ACK alloc fails as
   typed Eth_tx/Mbuf_exhausted. On a receiving stack the pin alone is
   not enough — TX-completion mbufs are reaped and restocked into the
   ring within a single loop iteration — so the spray consumes the
   armed RX descriptors faster than that trickle re-arms them and the
   ring collapses into typed Rx_dma/Rx_ring_full backpressure. Either
   way the symptom is typed, and the pool must be usable again after
   the window. *)
let launch_exhaust rt engine pool ~target ~at ~window ~until ?spray ids
    recovered_flag =
  ignore
    (Engine.schedule_at_l engine ~at ~label:k_inject (fun () ->
         let at_ns = Time.to_float_ns (Engine.now engine) in
         let id =
           Rt.launch rt Rt.Resource ~name:"mbuf_exhaust_spray" ~at_ns ~target
         in
         ids := id :: !ids;
         let before = List.map (fun k -> (k, drop_count k)) exhaust_expect in
         let stolen = ref [] in
         let held = ref 0 in
         let steal () =
           let rec go () =
             match Dpdk.Mbuf.alloc pool with
             | Some m ->
               stolen := m :: !stolen;
               incr held;
               go ()
             | None -> ()
           in
           go ()
         in
         steal ();
         let t_free = Time.add (Engine.now engine) window in
         (* Re-steal on a cadence faster than the stack's loop gap:
            mbufs released by the victim's own RX/TX processing must be
            gone again before the next iteration's descriptor restock
            can re-arm the ring from them. *)
         let rec pin () =
           if Time.(Engine.now engine < t_free) then begin
             steal ();
             ignore
               (Engine.schedule_l engine ~delay:(Time.us 1) ~label:k_inject
                  pin)
           end
         in
         ignore
           (Engine.schedule_l engine ~delay:(Time.us 1) ~label:k_inject pin);
         let sprayed =
           match spray with
           | Some (link, frame, n) ->
             for _ = 1 to n do
               ignore
                 (Nic.Link.inject link ~into:Nic.Link.A
                    ~frame:(Bytes.copy frame) ())
             done;
             n
           | None -> 0
         in
         ignore
           (Engine.schedule_at_l engine ~at:t_free ~label:k_inject (fun () ->
                List.iter Dpdk.Mbuf.free !stolen;
                stolen := []));
         let resolved = ref false in
         let rec check () =
           (match
              List.find_opt (fun (k, b) -> drop_count k > b) before
            with
           | Some ((st, re), b) when not !resolved ->
             resolved := true;
             Rt.resolve_caught rt id ~stage:(Ft.stage_name st)
               ~reason:(Ft.reason_name re);
             Rt.set_provenance rt id
               (Printf.sprintf
                  "drained %d mbufs out of the rx pool%s; typed backpressure \
                   (%s/%s drops +%d)"
                  !held
                  (if sprayed > 0 then
                     Printf.sprintf " and sprayed %d runt frames" sprayed
                   else "")
                  (Ft.stage_name st) (Ft.reason_name re)
                  (drop_count (st, re) - b))
           | _ -> ());
           if
             (not !recovered_flag)
             && !stolen = []
             && Dpdk.Mbuf.available pool > 0
           then recovered_flag := true;
           if
             ((not !resolved) || not !recovered_flag)
             && Time.(Engine.now engine < until)
           then
             ignore
               (Engine.schedule_l engine ~delay:(Time.us 100) ~label:k_check
                  check)
         in
         ignore
           (Engine.schedule_l engine ~delay:(Time.us 100) ~label:k_check
              check)))

(* ------------------------------------------------------------------ *)
(* Phase: baseline dual-port (MMU-only model)                          *)
(* ------------------------------------------------------------------ *)

let forge_for built ~subnet =
  {
    fg_dst_mac =
      Nic.Mac_addr.to_bytes (Nic.Igb.mac (Topology.port built.Scenarios.dut 0));
    fg_src_mac = Nic.Mac_addr.to_bytes attacker_mac;
    fg_dst_ip = Netstack.Ipv4_addr.make 10 0 subnet 1;
    fg_src_ip = Netstack.Ipv4_addr.make 10 0 subnet 2;
  }

let secret = "DRONE-TELEMETRY-KEY-0xC4FE"

(* The MMU-only model of the same attacks: where the CHERI scenarios
   trap, a flat address space lets the access through. The ledger
   records what actually leaked/corrupted — the baseline's expected
   outcome, and the paper's motivation. *)
let mmu_attacks rt engine iv mem ~at ids =
  ignore
    (Engine.schedule_at_l engine ~at ~label:k_inject (fun () ->
         let at_ns = Time.to_float_ns (Engine.now engine) in
         let attacker =
           Capvm.Intravisor.create_cvm iv ~name:"redteam" ~size:(1 lsl 20)
         in
         let lid name cls =
           let id = Rt.launch rt cls ~name ~at_ns ~target:"process memory" in
           ids := id :: !ids;
           id
         in
         (* Lying-length overread: the bytes past the rx buffer are an
            adjacent component's secret. *)
         let buf = Capvm.Cvm.malloc attacker 256 in
         let neighbour = Capvm.Cvm.malloc attacker (String.length secret) in
         Cheri.Tagged_memory.store_bytes mem ~cap:neighbour
           ~addr:(Cheri.Capability.base neighbour)
           (Bytes.of_string secret);
         let id = lid "mmu_lying_len_overread" Rt.Parser_bounds in
         let leak = Bytes.create 16 in
         Cheri.Tagged_memory.unchecked_blit_out mem
           ~addr:(Cheri.Capability.base buf + 256)
           ~dst:leak ~dst_off:0 ~len:16;
         Rt.resolve_leaked rt id
           ~detail:
             (Printf.sprintf "read past rx buffer: %S" (Bytes.to_string leak));
         (* Use-after-close write through a stale pointer. *)
         let stale = Capvm.Cvm.malloc attacker 64 in
         let stale_base = Cheri.Capability.base stale in
         Capvm.Cvm.free attacker stale;
         let id = lid "mmu_use_after_close" Rt.Temporal in
         Cheri.Tagged_memory.unchecked_blit_in mem ~addr:stale_base
           ~src:(Bytes.make 16 'X') ~src_off:0 ~len:16;
         Rt.resolve_leaked rt id
           ~detail:
             "wrote 16 bytes through a freed buffer pointer; no trap, \
              successor allocation silently corrupted";
         (* Cross-tenant read of the network process's private region. *)
         match Capvm.Intravisor.cvms iv with
         | victim :: _ ->
           let id = lid "mmu_cross_tenant_read" Rt.Cross_tenant in
           let b = Bytes.create 32 in
           Cheri.Tagged_memory.unchecked_blit_out mem
             ~addr:(Cheri.Capability.base (Capvm.Cvm.region victim))
             ~dst:b ~dst_off:0 ~len:32;
           Rt.resolve_leaked rt id
             ~detail:
               (Printf.sprintf "read 32 bytes of %s's region with no grant"
                  (Capvm.Cvm.name victim))
         | [] -> ()))

let phase_baseline rt profile ~seed =
  let topo_seed = Int64.add seed 3L in
  let direction = Scenarios.Dut_receives in
  let build () =
    Scenarios.build_dual_port ~cheri:false ~seed:topo_seed ~direction ()
  in
  let ub = build () in
  let ref_samples = drive ub profile ~after_warmup:(fun () -> ()) in
  Ft.clear Ft.default;
  let built = build () in
  let engine = built.Scenarios.engine in
  let victim = (List.nth built.Scenarios.flows 0).Scenarios.label in
  let sibling = (List.nth built.Scenarios.flows 1).Scenarios.label in
  let fg = forge_for built ~subnet:0 in
  let link0 = List.hd built.Scenarios.links in
  let nif = List.hd built.Scenarios.dut_netifs in
  let stack_name = victim in
  let ids = ref [] in
  let rng = Rt.rng rt in
  let t_end = Time.add profile.warmup profile.duration in
  (* The parser checks are software and present in both models: a
     representative slice of the wire corpus is caught here too. The
     memory attacks are where the models diverge. *)
  let wire =
    List.filter
      (fun a ->
        List.mem a.wa_name
          [ "eth_runt"; "ipv4_lying_total_len"; "ipv4_fragment";
            "tcp_bad_checksum" ])
      (parser_corpus rng fg)
  in
  List.iteri
    (fun i a ->
      launch_wire rt engine link0 ~target:victim ~stack_name a
        ~at:(frac profile (0.10 +. (0.03 *. float_of_int i)))
        ~until:t_end ids)
    wire;
  mmu_attacks rt engine
    (Topology.intravisor built.Scenarios.dut)
    (Topology.node_mem built.Scenarios.dut)
    ~at:(frac profile 0.45) ids;
  let pool_recovered = ref false in
  launch_exhaust rt engine nif.Topology.pool ~target:victim
    ~at:(frac profile 0.60) ~window:(Time.ms 3) ~until:t_end
    ~spray:(link0, spray_runt fg, 800) ids pool_recovered;
  let samples = drive built profile ~after_warmup:(fun () -> ()) in
  let drops = Ft.drop_table Ft.default in
  let rate l ss = rate_outside (List.assoc l ss) [] in
  {
    ap_title =
      "phase 1: Baseline dual-port (MMU-only) - wire corpus caught, memory \
       corpus leaks silently";
    ap_victim = victim;
    ap_sibling = sibling;
    ap_ids = List.rev !ids;
    ap_drops = drops;
    ap_sibling_rate = rate sibling samples;
    ap_sibling_ref = rate sibling ref_samples;
    ap_victim_rate = rate victim samples;
    ap_victim_ref = rate victim ref_samples;
    ap_mutex_free = true;
    ap_pool_recovered = !pool_recovered;
    ap_rst_sent = (Netstack.Stack.counters nif.Topology.stack).rst_sent;
  }

(* ------------------------------------------------------------------ *)
(* Phase: Scenario 1 dual-port                                         *)
(* ------------------------------------------------------------------ *)

let phase_s1 rt profile ~seed =
  let topo_seed = Int64.add seed 1L in
  let direction = Scenarios.Dut_receives in
  let build () = Scenarios.build_dual_port ~seed:topo_seed ~direction () in
  let ub = build () in
  let ref_samples = drive ub profile ~after_warmup:(fun () -> ()) in
  Ft.clear Ft.default;
  let built = build () in
  let engine = built.Scenarios.engine in
  let victim = (List.nth built.Scenarios.flows 0).Scenarios.label in
  let sibling = (List.nth built.Scenarios.flows 1).Scenarios.label in
  let fg = forge_for built ~subnet:0 in
  let link0 = List.hd built.Scenarios.links in
  let nif = List.hd built.Scenarios.dut_netifs in
  let rst_before = (Netstack.Stack.counters nif.Topology.stack).rst_sent in
  let ids = ref [] in
  let rng = Rt.rng rt in
  let t_end = Time.add profile.warmup profile.duration in
  let wire =
    parser_corpus rng fg
    @ blind_corpus rng fg ~src_port:49152 ~dst_port:5201
    @ [
        syn_flood rng fg ~server_port:5201 ~n:20;
        frag_flood rng fg ~n:24;
        port_scan rng fg ~n:8;
      ]
  in
  (* Wire injections finish (and their drops land) before the exhaust
     spray starts: a frame arriving during the ring-drain outage would
     be counted as Rx_ring_full instead of its own typed parse drop. *)
  List.iteri
    (fun i a ->
      launch_wire rt engine link0 ~target:victim ~stack_name:victim a
        ~at:(frac profile (0.08 +. (0.02 *. float_of_int i)))
        ~until:t_end ids)
    wire;
  let pool_recovered = ref false in
  launch_exhaust rt engine nif.Topology.pool ~target:victim
    ~at:(frac profile 0.55) ~window:(Time.ms 3) ~until:t_end
    ~spray:(link0, spray_runt fg, 800) ids pool_recovered;
  let samples = drive built profile ~after_warmup:(fun () -> ()) in
  let drops = Ft.drop_table Ft.default in
  let rst_after = (Netstack.Stack.counters nif.Topology.stack).rst_sent in
  let rate l ss = rate_outside (List.assoc l ss) [] in
  {
    ap_title =
      "phase 2: Scenario 1 dual-port (CHERI) - full wire corpus against \
       port 0, port 1 is the control";
    ap_victim = victim;
    ap_sibling = sibling;
    ap_ids = List.rev !ids;
    ap_drops = drops;
    ap_sibling_rate = rate sibling samples;
    ap_sibling_ref = rate sibling ref_samples;
    ap_victim_rate = rate victim samples;
    ap_victim_ref = rate victim ref_samples;
    ap_mutex_free = true;
    ap_pool_recovered = !pool_recovered;
    ap_rst_sent = rst_after - rst_before;
  }

(* ------------------------------------------------------------------ *)
(* Phase: Scenario 2 shared stack                                      *)
(* ------------------------------------------------------------------ *)

let get_sup sup_ref =
  match !sup_ref with
  | Some s -> s
  | None -> invalid_arg "redteam: builder did not instantiate the supervisor"

let phase_s2 rt profile ~seed ~blackbox_dir =
  let topo_seed = Int64.add seed 2L in
  (* Dut_sends, like the chaos harness: the DUT apps are clients, so a
     supervised restart reconnects from a fresh ephemeral port instead
     of re-binding a listener whose closing connections still hold the
     port. *)
  let direction = Scenarios.Dut_sends in
  let build ?supervise ?app_hook () =
    Scenarios.build_scenario2 ~seed:topo_seed ~contended:true
      ~lock_policy:Capvm.Umtx.Fifo ?supervise ?app_hook ~direction ()
  in
  let ub = build () in
  let ref_samples = drive ub profile ~after_warmup:(fun () -> ()) in
  Ft.clear Ft.default;
  (* The close-race attack: a hostile app step inside the supervised
     ff_* boundary, holding the shared mutex. The app frees its rx
     buffer (socket teardown racing the epoll wakeup), then dereferences
     past the stale capability — the CHERI bounds trap it inside the
     compartment; the supervisor must contain it and free the mutex. *)
  let race_armed = ref false in
  let race_id = ref (-1) in
  let race_provenance = ref "" in
  (* The hook runs before the builder returns, so the tagged memory it
     dereferences through is resolved via a ref filled in after build. *)
  let mem_ref = ref None in
  let app_hook cvm =
    if !race_armed && Capvm.Cvm.name cvm = "cVM3" then begin
      race_armed := false;
      let id =
        Rt.launch rt Rt.Temporal ~name:"close_race_stale_cap" ~at_ns:0.
          ~target:"cVM3"
      in
      race_id := id;
      let buf = Capvm.Cvm.malloc cvm 64 in
      let base = Cheri.Capability.base buf in
      Capvm.Cvm.free cvm buf;
      (match Cheri.Provenance.find buf with
      | Some node ->
        race_provenance :=
          Printf.sprintf
            "capability [0x%x,+0x%x) owner=%s label=%s revoked=%s stopped \
             the dereference"
            node.Cheri.Provenance.base node.Cheri.Provenance.length
            node.Cheri.Provenance.owner node.Cheri.Provenance.label
            (match node.Cheri.Provenance.revoked with
            | Some r -> r
            | None -> "pending-revocation")
      | None ->
        race_provenance :=
          Printf.sprintf
            "capability [0x%x,+0x40) bounds stopped the dereference" base);
      match !mem_ref with
      | Some mem ->
        ignore
          (Cheri.Tagged_memory.load_bytes mem ~cap:buf ~addr:(base + 64)
             ~len:16)
      | None -> ()
    end
  in
  let sup_ref = ref None in
  let supervise engine =
    let sup =
      Sup.create engine ~seed:(Int64.add seed 102L)
        ~policy:
          (Sup.Restart
             { budget = 1; backoff_base = Time.us 50; backoff_max = Time.ms 2;
               jitter_pct = 0.1 })
        ()
    in
    sup_ref := Some sup;
    sup
  in
  let built = build ~supervise ~app_hook () in
  let engine = built.Scenarios.engine in
  mem_ref := Some (Topology.node_mem built.Scenarios.dut);
  let sup = get_sup sup_ref in
  Sup.set_blackbox_dir sup blackbox_dir;
  Sup.set_on_transition sup
    (Some
       (fun ~cvm ~old_state st ->
         if cvm = "cVM3" && !race_id >= 0 then begin
           (match (old_state, st) with
           | Sup.Restarting, Sup.Running ->
             Rt.resolve_caught rt !race_id ~stage:"supervisor"
               ~reason:"capability_fault";
             Rt.set_provenance rt !race_id !race_provenance
           | _, Sup.Dead ->
             Rt.resolve_caught rt !race_id ~stage:"supervisor"
               ~reason:"quarantined";
             Rt.set_provenance rt !race_id !race_provenance
           | _ -> ());
           match blackbox_dir with
           | Some dir ->
             Rt.set_blackbox rt !race_id
               (Filename.concat dir "cVM3.blackbox.json")
           | None -> ()
         end));
  let victim = (List.nth built.Scenarios.flows 1).Scenarios.label in
  let sibling = (List.nth built.Scenarios.flows 0).Scenarios.label in
  let victim_cvm = List.nth built.Scenarios.app_cvms 1 in
  let fg = forge_for built ~subnet:0 in
  let link0 = List.hd built.Scenarios.links in
  let nif = List.hd built.Scenarios.dut_netifs in
  let rst_before = (Netstack.Stack.counters nif.Topology.stack).rst_sent in
  let ids = ref [] in
  let rng = Rt.rng rt in
  (* The DUT's clients connect in flow order through the shared stack's
     ephemeral allocator: cVM2 local 49152 -> peer :5201, cVM3 local
     49153 -> peer :5202. Attack frames arrive at the DUT, so forged
     segments claim the peer end of those 5-tuples. *)
  let wire =
    List.filter
      (fun a ->
        List.mem a.wa_name
          [ "eth_runt"; "ipv4_lying_total_len"; "ipv4_options_overflow";
            "ipv4_fragment"; "tcp_option_overflow"; "udp_lying_length" ])
      (parser_corpus rng fg)
    @ [
        List.hd (blind_corpus rng fg ~src_port:5202 ~dst_port:49153);
        frag_flood rng fg ~n:12;
        port_scan rng fg ~n:10;
        forged_5tuple rng fg ~src_ports:[ 5201; 5202 ]
          ~dst_ports:[ 49152; 49153 ];
        rss_steer rng fg ~victim_src_port:5202 ~victim_dst_port:49153;
      ]
  in
  let t_end = Time.add profile.warmup profile.duration in
  List.iteri
    (fun i a ->
      launch_wire rt engine link0 ~target:"cVM1 (shared stack)"
        ~stack_name:"cVM1" a
        ~at:(frac profile (0.08 +. (0.03 *. float_of_int i)))
        ~until:t_end ids)
    wire;
  (* Arm the close race mid-transfer. *)
  ignore
    (Engine.schedule_at_l engine ~at:(frac profile 0.45) ~label:k_inject
       (fun () ->
         race_armed := true));
  (* Stale-fd epoll probe against the shared stack's own API: close an
     fd that is still in an epoll interest set, then verify no stale
     wakeup ever surfaces (the close-race the PR hardened). *)
  let ff = nif.Topology.ff in
  ignore
    (Engine.schedule_at_l engine ~at:(frac profile 0.55) ~label:k_inject
       (fun () ->
         let at_ns = Time.to_float_ns (Engine.now engine) in
         let id =
           Rt.launch rt Rt.Temporal ~name:"epoll_stale_fd" ~at_ns
             ~target:"cVM1 (shared stack)"
         in
         ids := id :: !ids;
         match
           (Netstack.Ff_api.ff_socket ff, Netstack.Ff_api.ff_epoll_create ff)
         with
         | Ok fd, Ok ep ->
           ignore
             (Netstack.Ff_api.ff_epoll_ctl ff ~epfd:ep ~op:`Add ~fd
                Netstack.Epoll.epollin);
           ignore (Netstack.Ff_api.ff_close ff fd);
           (match Netstack.Ff_api.ff_epoll_wait ff ~epfd:ep ~max:8 with
           | Ok evs ->
             if List.exists (fun (f, _) -> f = fd) evs then
               Rt.resolve_leaked rt id
                 ~detail:"stale wakeup for a closed fd escaped epoll"
             else begin
               Rt.resolve_caught rt id ~stage:"sock"
                 ~reason:"fd_forgotten_on_close";
               Rt.set_provenance rt id
                 "socket close revoked the fd from every epoll interest \
                  set before reuse"
             end
           | Error _ ->
             Rt.resolve_leaked rt id ~detail:"epoll_wait failed");
           ignore (Netstack.Ff_api.ff_close ff ep)
         | _ ->
           Rt.resolve_leaked rt id ~detail:"could not allocate probe fds"));
  let pool_recovered = ref false in
  launch_exhaust rt engine nif.Topology.pool ~target:"cVM1 (shared stack)"
    ~at:(frac profile 0.70) ~window:profile.exhaust_window ~until:t_end ids
    pool_recovered;
  let samples = drive built profile ~after_warmup:(fun () -> ()) in
  (* The close race launches from inside the hook with a placeholder
     timestamp; every id must still be tracked for the phase gate. *)
  if !race_id >= 0 then ids := !race_id :: !ids;
  let drops = Ft.drop_table Ft.default in
  let rst_after = (Netstack.Stack.counters nif.Topology.stack).rst_sent in
  let windows = Sup.quarantine_windows sup ~cvm:victim_cvm in
  let rate l ss = rate_outside (List.assoc l ss) windows in
  let mutex_free =
    match built.Scenarios.mutex with
    | Some m -> Capvm.Umtx.holder m <> Some "cVM3"
    | None -> true
  in
  {
    ap_title =
      "phase 3: Scenario 2 shared stack (CHERI) - cross-tenant probes, \
       close races and floods against cVM1";
    ap_victim = victim;
    ap_sibling = sibling;
    ap_ids = List.sort_uniq compare !ids;
    ap_drops = drops;
    ap_sibling_rate = rate sibling samples;
    ap_sibling_ref = rate sibling ref_samples;
    ap_victim_rate = rate victim samples;
    ap_victim_ref = rate victim ref_samples;
    ap_mutex_free = mutex_free;
    ap_pool_recovered = !pool_recovered;
    ap_rst_sent = rst_after - rst_before;
  }

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let outcome_line rt b id =
  match Rt.find rt id with
  | None -> ()
  | Some l ->
    let verdict, detail =
      match l.Rt.outcome with
      | Rt.Caught { stage; reason } ->
        ("caught ", Printf.sprintf "-> %s/%s" stage reason)
      | Rt.Leaked { detail } -> ("LEAKED ", Printf.sprintf "-> %s" detail)
      | Rt.Pending -> ("PENDING", "-> no typed verdict recorded")
    in
    Printf.bprintf b "  [%s] %-13s %-24s %s\n" verdict
      (Rt.cls_name l.Rt.cls) l.Rt.name detail;
    (match l.Rt.provenance with
    | Some p -> Printf.bprintf b "            provenance: %s\n" p
    | None -> ());
    match l.Rt.blackbox with
    | Some p -> Printf.bprintf b "            blackbox: %s\n" p
    | None -> ()

let phase_section rt b p =
  Printf.bprintf b "-- %s --\n" p.ap_title;
  List.iter (outcome_line rt b) p.ap_ids;
  if p.ap_drops = [] then Printf.bprintf b "  drop table: (empty)\n"
  else begin
    Printf.bprintf b "  drop table (stage/reason -> frames):\n";
    List.iter
      (fun ((st, r), n) ->
        Printf.bprintf b "    %-10s %-16s %6d\n" (Ft.stage_name st)
          (Ft.reason_name r) n)
      p.ap_drops
  end;
  if p.ap_rst_sent > 0 then
    Printf.bprintf b "  RSTs answered to probes: %d\n" p.ap_rst_sent;
  Printf.bprintf b "  mbuf pool recovered after spray: %s\n"
    (if p.ap_pool_recovered then "yes" else "NO");
  if not p.ap_mutex_free then
    Printf.bprintf b "  shared mutex: LEFT HELD BY VICTIM\n";
  Printf.bprintf b
    "  sibling %-5s goodput outside quarantine: %.3f Gbit/s vs %.3f \
     undisturbed (ratio %.3f) [%s]\n"
    p.ap_sibling p.ap_sibling_rate p.ap_sibling_ref
    (ratio p.ap_sibling_rate p.ap_sibling_ref)
    (if sibling_ok p then "ok" else "FAIL");
  Printf.bprintf b
    "  victim  %-5s goodput outside quarantine: %.3f Gbit/s vs %.3f \
     undisturbed (ratio %.3f)\n"
    p.ap_victim p.ap_victim_rate p.ap_victim_ref
    (ratio p.ap_victim_rate p.ap_victim_ref)

let caught id rt =
  match Rt.find rt id with
  | Some { Rt.outcome = Rt.Caught _; _ } -> true
  | _ -> false

let run ?(profile = quick) ?blackbox_dir ~seed () =
  let ft_was = Ft.enabled Ft.default in
  let audit_was = Dsim.Audit.(enabled default) in
  Ft.set_enabled Ft.default true;
  Ft.clear Ft.default;
  (* Provenance cross-references need the audit DAG recording in both
     the twin and the attacked run (identical settings keep the pair
     comparable). *)
  Dsim.Audit.(set_enabled default true);
  let rt = Rt.create ~seed in
  let p1 = phase_baseline rt profile ~seed in
  let p2 = phase_s1 rt profile ~seed in
  let p3 = phase_s2 rt profile ~seed ~blackbox_dir in
  Ft.clear Ft.default;
  Ft.set_enabled Ft.default ft_was;
  Dsim.Audit.(set_enabled default audit_was);
  let phases = [ p1; p2; p3 ] in
  let counts = Rt.counts rt in
  let launched = Rt.launched_count rt in
  let caught_n = Rt.caught_count rt in
  let leaked = Rt.leaked_count rt in
  let pending = Rt.pending_count rt in
  let cheri_ids = p2.ap_ids @ p3.ap_ids in
  let cheri_launched = List.length cheri_ids in
  let cheri_caught =
    List.length (List.filter (fun id -> caught id rt) cheri_ids)
  in
  let baseline_leaks =
    List.length
      (List.filter
         (fun id ->
           match Rt.find rt id with
           | Some { Rt.outcome = Rt.Leaked _; _ } -> true
           | _ -> false)
         p1.ap_ids)
  in
  let pass =
    pending = 0 && launched > 0
    && cheri_caught = cheri_launched
    && baseline_leaks >= 1
    && List.for_all sibling_ok phases
    && List.for_all (fun p -> p.ap_mutex_free && p.ap_pool_recovered) phases
  in
  let b = Buffer.create 8192 in
  Printf.bprintf b "=== red-team attack report (seed %Ld) ===\n" seed;
  Printf.bprintf b "-- attack corpus ledger --\n";
  Printf.bprintf b "  %-15s %9s %7s %7s %8s\n" "class" "launched" "caught"
    "leaked" "pending";
  List.iter
    (fun (c, t) ->
      Printf.bprintf b "  %-15s %9d %7d %7d %8d\n" (Rt.cls_name c)
        t.Rt.t_launched t.Rt.t_caught t.Rt.t_leaked t.Rt.t_pending)
    counts;
  List.iter (phase_section rt b) phases;
  Printf.bprintf b "caught-and-attributed (CHERI scenarios): %.1f%% (%d/%d)\n"
    (if cheri_launched = 0 then 0.
     else 100. *. float_of_int cheri_caught /. float_of_int cheri_launched)
    cheri_caught cheri_launched;
  Printf.bprintf b "baseline silent corruption/leaks recorded: %d\n"
    baseline_leaks;
  Printf.bprintf b "unresolved attacks: %d\n" pending;
  Printf.bprintf b "verdict: %s\n" (if pass then "PASS" else "FAIL");
  let phase_json p =
    Dsim.Json.Obj
      [
        ("title", Dsim.Json.String p.ap_title);
        ("victim", Dsim.Json.String p.ap_victim);
        ("sibling", Dsim.Json.String p.ap_sibling);
        ("sibling_ratio",
         Dsim.Json.Float (ratio p.ap_sibling_rate p.ap_sibling_ref));
        ("victim_ratio",
         Dsim.Json.Float (ratio p.ap_victim_rate p.ap_victim_ref));
        ("sibling_ok", Dsim.Json.Bool (sibling_ok p));
        ("mutex_free", Dsim.Json.Bool p.ap_mutex_free);
        ("pool_recovered", Dsim.Json.Bool p.ap_pool_recovered);
        ("rst_sent", Dsim.Json.Int p.ap_rst_sent);
        ( "drops",
          Dsim.Json.List
            (List.map
               (fun ((st, r), n) ->
                 Dsim.Json.Obj
                   [
                     ("stage", Dsim.Json.String (Ft.stage_name st));
                     ("reason", Dsim.Json.String (Ft.reason_name r));
                     ("frames", Dsim.Json.Int n);
                   ])
               p.ap_drops) );
      ]
  in
  let json =
    Dsim.Json.Obj
      [
        ("schema", Dsim.Json.String "netrepro-attack-net/1");
        ("ledger", Rt.to_json rt);
        ("phases", Dsim.Json.List (List.map phase_json phases));
        ("cheri_caught", Dsim.Json.Int cheri_caught);
        ("cheri_launched", Dsim.Json.Int cheri_launched);
        ("baseline_leaks", Dsim.Json.Int baseline_leaks);
        ("pass", Dsim.Json.Bool pass);
      ]
  in
  {
    seed;
    launched;
    caught = caught_n;
    leaked;
    pending;
    counts;
    phases;
    cheri_caught;
    cheri_launched;
    pass;
    text = Buffer.contents b;
    json;
  }
