(** Simulated testbed assembly.

    The paper's bench is an Arm Morello (the device under test, running
    CheriBSD + Intravisor) with a dual-port Intel 82576 PCI NIC, cabled
    to a load-generating peer. [node] is one such machine: an address
    space under an Intravisor, a NIC on a PCI bus, and a host OS.
    [netif] is one configured port: DPDK (EAL + mempool + ethdev,
    kernel-detached) plus an F-Stack instance and its ff_* API. *)

type node

val make_node :
  Dsim.Engine.t ->
  name:string ->
  ?cost:Dsim.Cost_model.t ->
  ?generous_pci:bool ->
  ?mem_size:int ->
  ?queues:int ->
  ports:int ->
  unit ->
  node
(** [generous_pci] gives the node a 10 Gbit/s DMA bus per direction so
    it can never be the bottleneck — used for the load-generator peer,
    which stands in for the authors' test server. [queues] (default 1)
    configures RSS descriptor-ring pairs on every NIC port
    ({!Nic.Igb.create}). *)

val node_name : node -> string
val intravisor : node -> Capvm.Intravisor.t
val node_mem : node -> Cheri.Tagged_memory.t
val node_cost : node -> Dsim.Cost_model.t
val nic : node -> Nic.Igb.t
val port : node -> int -> Nic.Igb.port

val link :
  Dsim.Engine.t -> ?bps:float -> node -> int -> node -> int -> Nic.Link.t
(** Cable port [i] of one node to port [j] of another. *)

type netif = {
  eal : Dpdk.Eal.t;
  pool : Dpdk.Mbuf.pool;
  dev : Dpdk.Eth_dev.t;
  stack : Netstack.Stack.t;
  ff : Netstack.Ff_api.t;
  uio : Dpdk.Igb_uio.binding;
}

val make_netif :
  node ->
  region:Cheri.Capability.t ->
  port_idx:int ->
  ?queue:int ->
  ?dma_window:Cheri.Capability.t ->
  ip:Netstack.Ipv4_addr.t ->
  ?stack_tuning:(Netstack.Stack.config -> Netstack.Stack.config) ->
  ?pool_bufs:int ->
  unit ->
  netif
(** Build the full user-space data path inside [region] (a cVM region
    or, for Baseline, a process heap): EAL, mempool, kernel detach of
    the port with the mempool zone as DMA window, poll-mode ethdev, and
    an F-Stack instance. [queue] binds the ethdev and stack loop to one
    RSS queue of the port (default 0). A port has a single bus-master
    window: when attaching several queue-netifs to one port, pass a
    common [dma_window] covering every queue's mempool (e.g. the shared
    region) so later binds don't revoke earlier pools. *)

val default_netif_region_size : int
(** Bytes a [make_netif] region must at least provide. *)
