(** Run one registered experiment under the wall-clock profiler.

    [netrepro profile <exp>] dispatches here: the global
    {!Dsim.Profile} and {!Dsim.Watermark} registries are reset and
    enabled around the experiment's normal runner, then rendered into
    the hotspot table, the capacity/stall report, the folded-stack
    dump, and the [FILE.profile.json] snapshot [netrepro perfdiff]
    diffs against a baseline.

    Profiling never touches the virtual clock, so the experiment's own
    output (medians, goldens) is bit-identical to an unprofiled run —
    regression-tested in [test/test_profile.ml]. *)

type report = {
  exp_id : string;
  experiment_text : string;  (** The experiment's normal rendering. *)
  hotspot_text : string;  (** {!Dsim.Profile.render} of the run. *)
  watermark_text : string;  (** {!Dsim.Watermark.render} of the run. *)
  folded : string;  (** Folded-stack lines for flamegraph tooling. *)
  attributed_pct : float;  (** Acceptance gate: must be ≥ 95 on fig4. *)
  json : Dsim.Json.t;
      (** [{"experiment", "schema", ...profile fields...,
          "watermarks"}] — the [.profile.json] payload. *)
}

val run : ?profile:Experiment.profile -> Experiment.spec -> report
(** Default profile {!Experiment.quick}. Always disables the profiler
    and watermark registries again, even if the runner raises. *)
