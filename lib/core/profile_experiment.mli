(** Run one registered experiment under the wall-clock profiler.

    [netrepro profile <exp>] dispatches here: the global
    {!Dsim.Profile} and {!Dsim.Watermark} registries are reset and
    enabled around the experiment's normal runner, then rendered into
    the hotspot table, the capacity/stall report, the folded-stack
    dump, and the [FILE.profile.json] snapshot [netrepro perfdiff]
    diffs against a baseline.

    Profiling never touches the virtual clock, so the experiment's own
    output (medians, goldens) is bit-identical to an unprofiled run —
    regression-tested in [test/test_profile.ml]. *)

type report = {
  exp_id : string;
  experiment_text : string;  (** The experiment's normal rendering. *)
  hotspot_text : string;  (** {!Dsim.Profile.render} of the run. *)
  watermark_text : string;  (** {!Dsim.Watermark.render} of the run. *)
  folded : string;  (** Folded-stack lines for flamegraph tooling. *)
  attributed_pct : float;  (** Acceptance gate: must be ≥ 95 on fig4. *)
  json : Dsim.Json.t;
      (** [{"experiment", "schema", ...profile fields...,
          "watermarks"}] — the [.profile.json] payload. *)
}

val run : ?profile:Experiment.profile -> ?runs:int -> Experiment.spec -> report
(** Default profile {!Experiment.quick}. Always disables the profiler
    and watermark registries again, even if the runner raises.

    [runs] (default 1) repeats the profiled run and merges the
    snapshot by per-hotspot {e median} of the wall-time fields
    ([self_wall_ns], [cum_wall_ns], [ns_per_event],
    [total_self_wall_ns], [attributed_wall_ns]): wall time is the one
    machine-dependent output, and under container CPU contention a
    single run's ns/event drifts by double digits while event counts
    stay bit-identical — the median removes the outlier run so
    [netrepro perfdiff] gates on signal. The rendered texts and all
    deterministic fields come from the run whose total wall time is
    closest to the median; a divergence in the experiment's own output
    between runs raises (profiling must never perturb the run). *)
