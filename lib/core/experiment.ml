type profile = {
  warmup : Dsim.Time.t;
  duration : Dsim.Time.t;
  iterations : int;
}

let quick =
  { warmup = Dsim.Time.ms 150; duration = Dsim.Time.ms 300; iterations = 3_000 }

let full =
  { warmup = Dsim.Time.ms 300; duration = Dsim.Time.sec 1; iterations = 100_000 }

let paper_grade = { full with iterations = 1_000_000 }

(* ------------------------------------------------------------------ *)
(* Structured results                                                   *)
(* ------------------------------------------------------------------ *)

let table1 () = Loc_table.compute ()

let run_bw profile ?fair_share_mbit built =
  Bandwidth.run built ~warmup:profile.warmup ~duration:profile.duration
    ?fair_share_mbit ()

let table2 ?(profile = full) () =
  let p = profile in
  [
    ( "Baseline (two processes, dual port) — server",
      run_bw p (Scenarios.build_dual_port ~cheri:false ~direction:Scenarios.Dut_receives ()) );
    ( "Baseline (two processes, dual port) — client",
      run_bw p (Scenarios.build_dual_port ~cheri:false ~direction:Scenarios.Dut_sends ()) );
    ( "Scenario 1 — server",
      run_bw p (Scenarios.build_dual_port ~cheri:true ~direction:Scenarios.Dut_receives ()) );
    ( "Scenario 1 — client",
      run_bw p (Scenarios.build_dual_port ~cheri:true ~direction:Scenarios.Dut_sends ()) );
    ( "Baseline (single process) — server",
      run_bw p (Scenarios.build_single_baseline ~direction:Scenarios.Dut_receives ()) );
    ( "Baseline (single process) — client",
      run_bw p (Scenarios.build_single_baseline ~direction:Scenarios.Dut_sends ()) );
    ( "Scenario 2 (uncontended) — server",
      run_bw p (Scenarios.build_scenario2 ~direction:Scenarios.Dut_receives ()) );
    ( "Scenario 2 (uncontended) — client",
      run_bw p (Scenarios.build_scenario2 ~direction:Scenarios.Dut_sends ()) );
    ( "Scenario 2 (contended) — server",
      run_bw p ~fair_share_mbit:500.
        (Scenarios.build_scenario2 ~contended:true ~direction:Scenarios.Dut_receives ()) );
    ( "Scenario 2 (contended) — client",
      run_bw p ~fair_share_mbit:500.
        (Scenarios.build_scenario2 ~contended:true ~direction:Scenarios.Dut_sends ()) );
  ]

let fig3 () = Attack.run_all ()

let fig4 ?(profile = full) () =
  [
    Measurement.run ~iterations:profile.iterations Measurement.Baseline;
    Measurement.run ~iterations:profile.iterations Measurement.Scenario1;
  ]

let fig5 ?(profile = full) () =
  [
    Measurement.run ~iterations:profile.iterations Measurement.Baseline;
    Measurement.run ~iterations:profile.iterations
      (Measurement.Scenario2 { contended = false });
  ]

let fig6 ?(profile = full) () =
  [
    Measurement.run ~iterations:profile.iterations
      (Measurement.Scenario2 { contended = false });
    Measurement.run ~iterations:profile.iterations
      (Measurement.Scenario2 { contended = true });
  ]

let ablation_lock ?(profile = full) () =
  List.map
    (fun (name, policy) ->
      ( name,
        run_bw profile ~fair_share_mbit:500.
          (Scenarios.build_scenario2 ~contended:true ~lock_policy:policy
             ~direction:Scenarios.Dut_sends ()) ))
    [ ("barging umtx (paper)", Capvm.Umtx.Barging); ("FIFO ticket", Capvm.Umtx.Fifo) ]

let ablation_udp ?(profile = full) () =
  List.map
    (fun offered ->
      ( Printf.sprintf "UDP blast, offered %.0f Mbit/s" offered,
        run_bw profile (Scenarios.build_udp_blast ~offered_mbit:offered ()) ))
    [ 500.; 950.; 1500. ]

let ablation_split ?(profile = full) () =
  [
    ( "Scenario 2 (app | F-Stack+DPDK)",
      run_bw profile (Scenarios.build_scenario2 ~direction:Scenarios.Dut_sends ()) );
    ( "Scenario 3 (app | F-Stack | DPDK)",
      run_bw profile (Scenarios.build_scenario3_split ~direction:Scenarios.Dut_sends ()) );
  ]

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

type output = { text : string; summary : Dsim.Json.t }

let json_of_bw_groups groups =
  Dsim.Json.List
    (List.map
       (fun (group, samples) ->
         Dsim.Json.Obj
           [
             ("configuration", Dsim.Json.String group);
             ( "flows",
               Dsim.Json.List
                 (List.map
                    (fun (s : Bandwidth.sample) ->
                      Dsim.Json.Obj
                        [
                          ("label", Dsim.Json.String s.Bandwidth.label);
                          ("mbit_s", Dsim.Json.Float s.Bandwidth.mbit_s);
                          ( "efficiency_pct",
                            Dsim.Json.Float s.Bandwidth.efficiency_pct );
                        ])
                    samples) );
           ])
       groups)

let render_bw_groups groups =
  let rows =
    List.concat_map
      (fun (group, samples) ->
        List.map
          (fun (s : Bandwidth.sample) ->
            [ group; s.Bandwidth.label; Report.mbit s.Bandwidth.mbit_s;
              Report.pct s.Bandwidth.efficiency_pct ])
          samples)
      groups
  in
  Report.table ~header:[ "Configuration"; "Flow"; "Mbit/s"; "Efficiency" ] ~rows

let report_bw_groups groups =
  { text = render_bw_groups groups; summary = json_of_bw_groups groups }

let report_table1 _profile =
  let rows = table1 () in
  {
    text = Format.asprintf "%a" Loc_table.pp rows;
    summary =
      Dsim.Json.List
        (List.map
           (fun (r : Loc_table.row) ->
             Dsim.Json.Obj
               [
                 ("library", Dsim.Json.String r.Loc_table.library);
                 ("cheri_loc", Dsim.Json.Int r.Loc_table.cheri_loc);
                 ("total_loc", Dsim.Json.Int r.Loc_table.total_loc);
                 ("pct", Dsim.Json.Float r.Loc_table.pct);
               ])
           rows);
  }

let report_table2 profile = report_bw_groups (table2 ~profile ())

let json_of_outcome = function
  | Attack.Trapped f -> Dsim.Json.String (Cheri.Fault.to_string f)
  | Attack.Leaked s -> Dsim.Json.String ("LEAKED: " ^ s)

let report_fig3 _profile =
  let reports = fig3 () in
  {
    text =
      String.concat "\n\n"
        (List.map (fun r -> Format.asprintf "%a" Attack.pp_report r) reports);
    summary =
      Dsim.Json.List
        (List.map
           (fun (r : Attack.report) ->
             Dsim.Json.Obj
               [
                 ("attack", Dsim.Json.String (Attack.attack_name r.Attack.attack));
                 ("cheri", json_of_outcome r.Attack.cheri);
                 ( "trapped",
                   Dsim.Json.Bool (Attack.outcome_is_trap r.Attack.cheri) );
                 ( "baseline",
                   match r.Attack.baseline with
                   | Some o -> json_of_outcome o
                   | None -> Dsim.Json.Null );
                 ("victim_alive", Dsim.Json.Bool r.Attack.victim_alive);
                 ( "victim_mbit_before",
                   Dsim.Json.Float r.Attack.victim_mbit_before );
                 ("victim_mbit_after", Dsim.Json.Float r.Attack.victim_mbit_after);
               ])
           reports);
  }

let render_measurements ?(log_scale = false) results =
  let boxes =
    List.map
      (fun (r : Measurement.result) -> (r.Measurement.label, r.Measurement.boxplot))
      results
  in
  Report.ascii_boxplot ~labels_and_boxes:boxes ~log_scale ()

let json_of_measurements results =
  Dsim.Json.List
    (List.map
       (fun (r : Measurement.result) ->
         let b = r.Measurement.boxplot in
         Dsim.Json.Obj
           [
             ("label", Dsim.Json.String r.Measurement.label);
             ("median_ns", Dsim.Json.Float b.Dsim.Stats.median);
             ("mean_ns", Dsim.Json.Float b.Dsim.Stats.mean);
             ("stddev_ns", Dsim.Json.Float b.Dsim.Stats.stddev);
             ("n", Dsim.Json.Int (Dsim.Stats.count r.Measurement.filtered));
             ("removed_pct", Dsim.Json.Float r.Measurement.removed_pct);
           ])
       results)

let report_fig n profile =
  let results =
    match n with
    | 4 -> fig4 ~profile ()
    | 5 -> fig5 ~profile ()
    | _ -> fig6 ~profile ()
  in
  let detail =
    String.concat "\n"
      (List.map (fun r -> Format.asprintf "%a" Measurement.pp_result r) results)
  in
  let extra =
    if n <> 6 then ""
    else begin
      (* The contended distribution spans three decades; show it. *)
      match List.rev results with
      | contended :: _ ->
        let h =
          Dsim.Histogram.add_stats
            (Dsim.Histogram.create ~lo:100. ~ratio:1.6 ~buckets:32 ())
            contended.Measurement.filtered
        in
        "\n\ncontended ff_write latency distribution (ns):\n"
        ^ Dsim.Histogram.render h
      | [] -> ""
    end
  in
  {
    text = render_measurements ~log_scale:(n = 6) results ^ "\n\n" ^ detail ^ extra;
    summary = json_of_measurements results;
  }

type spec = {
  id : string;
  title : string;
  paper_ref : string;
  report : profile -> output;
}

let all =
  [
    {
      id = "table1";
      title = "LoC added/modified for the CHERI port";
      paper_ref = "Table I";
      report = report_table1;
    };
    {
      id = "table2";
      title = "TCP bandwidth in the three scenarios (server & client)";
      paper_ref = "Table II";
      report = report_table2;
    };
    {
      id = "fig3";
      title = "Out-of-bounds accesses trap under CHERI";
      paper_ref = "Figure 3";
      report = report_fig3;
    };
    {
      id = "fig4";
      title = "ff_write() execution time: Scenario 1 vs Baseline";
      paper_ref = "Figure 4";
      report = report_fig 4;
    };
    {
      id = "fig5";
      title = "ff_write() execution time: Scenario 2 (uncontended) vs Baseline";
      paper_ref = "Figure 5";
      report = report_fig 5;
    };
    {
      id = "fig6";
      title = "ff_write() execution time: contended vs uncontended Scenario 2";
      paper_ref = "Figure 6";
      report = report_fig 6;
    };
    {
      id = "ablation-lock";
      title = "Locking strategies under contention (paper future work)";
      paper_ref = "Sec. VI";
      report = (fun p -> report_bw_groups (ablation_lock ~profile:p ()));
    };
    {
      id = "ablation-udp";
      title = "UDP blast: goodput and loss without flow control";
      paper_ref = "extension";
      report = (fun p -> report_bw_groups (ablation_udp ~profile:p ()));
    };
    {
      id = "ablation-split";
      title = "Finer-grained split: DPDK in its own cVM (paper future work)";
      paper_ref = "Sec. VI";
      report = (fun p -> report_bw_groups (ablation_split ~profile:p ()));
    };
  ]

let find id = List.find_opt (fun s -> String.equal s.id id) all
let ids () = List.map (fun s -> s.id) all
