(** The paper's system configurations (Section III).

    - {b Baseline}: no CHERI; MMU-isolated processes. Two processes
      (one full stack per port) for the dual-port comparison, or a
      single process for the Scenario 2 comparison.
    - {b Scenario 1}: the full stack (iperf + F-Stack + DPDK) replicated
      into two cVMs, one Ethernet port each. Trampolines appear only on
      libc syscalls, so the data path is identical to Baseline.
    - {b Scenario 2}: F-Stack + DPDK in cVM1; application(s) in cVM2
      (and cVM3 when contended). Every ff_* call crosses into cVM1 and
      serialises on the shared umtx-backed mutex with the main loop.
    - {b Scenario 3} (paper future work, implemented as an ablation):
      app, F-Stack and DPDK in three cVMs — each API call and each loop
      iteration pays an extra trampoline round trip.

    Each builder wires DUT and load-generator peer, starts every loop,
    and returns byte-counting flows for the bandwidth harness. *)

type direction =
  | Dut_receives  (** iperf "server mode" rows of Table II. *)
  | Dut_sends  (** "client mode" rows. *)

type flow = {
  label : string;
  take_bytes : unit -> int;
      (** Application-level bytes moved on the DUT side since last call. *)
}

type built = {
  engine : Dsim.Engine.t;
  dut : Topology.node;
  peer : Topology.node;
  flows : flow list;
  mutex : Capvm.Umtx.t option;  (** The Scenario 2 mutex, if any. *)
  links : Nic.Link.t list;
      (** The DUT-peer wires, in flow order — the chaos engine's tamper
          and flap handles. *)
  dut_netifs : Topology.netif list;
      (** DUT-side interfaces in flow order (mbuf pools, devices). *)
  app_cvms : Capvm.Cvm.t list;
      (** DUT-side cVMs a chaos experiment may target, in flow order. *)
  stop : unit -> unit;
}

val app_buffer_size : int
(** iperf's default 128 KiB write/read chunk. *)

(** {1 Topology building blocks}

    Shared by the canned scenarios and {!Fleet}, which composes the same
    single-port DUT/peer pieces at a different scale. *)

val ip_dut : int -> Netstack.Ipv4_addr.t
(** 10.0.[subnet].1 — the DUT side of subnet [subnet]. *)

val ip_peer : int -> Netstack.Ipv4_addr.t
(** 10.0.[subnet].2 — the load-generator side. *)

val seed_plus : int64 -> int -> int64
(** Derive a per-component seed from the run seed. *)

val cvm_netif :
  Topology.node ->
  name:string ->
  port_idx:int ->
  ip:Netstack.Ipv4_addr.t ->
  ?stack_tuning:(Netstack.Stack.config -> Netstack.Stack.config) ->
  unit ->
  Capvm.Cvm.t * Topology.netif
(** One cVM hosting a full network stack on [port_idx]. *)

val build_dual_port :
  ?cheri:bool ->
  ?seed:int64 ->
  ?supervise:(Dsim.Engine.t -> Capvm.Supervisor.t) ->
  ?app_hook:(Capvm.Cvm.t -> unit) ->
  direction:direction ->
  unit ->
  built
(** Baseline-two-processes ([cheri:false]) or Scenario 1
    ([cheri:true], default): one full stack per port, both ports busy.
    Flows: "cVM1" (port 0) and "cVM2" (port 1).

    [supervise] is called with the topology's engine (so supervisor
    restarts run on the run's clock) and places each DUT cVM's loop
    under the returned supervisor's trap boundary (behaviour without it
    is bit-identical to before);
    [app_hook] runs inside the compartment at the top of each
    iteration's application step — the chaos engine's fault-injection
    point. *)

val build_single_baseline :
  ?engine:Dsim.Engine.t -> ?seed:int64 -> direction:direction -> unit -> built
(** Single process, single port (the Baseline row of the Scenario 2
    table). Flow: "Baseline (cVM2)". [engine] substitutes a caller-owned
    (possibly sharded) engine — the wall-clock bench builds N replicas
    under {!Shardcfg.with_placement} on one engine, one per shard. *)

val build_scenario2 :
  ?seed:int64 ->
  ?contended:bool ->
  ?lock_policy:Capvm.Umtx.policy ->
  ?app_interval:Dsim.Time.t ->
  ?supervise:(Dsim.Engine.t -> Capvm.Supervisor.t) ->
  ?app_hook:(Capvm.Cvm.t -> unit) ->
  direction:direction ->
  unit ->
  built
(** cVM1 = F-Stack+DPDK (mutex-guarded loop); cVM2 (+cVM3 when
    [contended]) = iperf apps whose every step trampolines into cVM1
    under the mutex. Flows: "cVM2" (and "cVM3").

    [supervise] wraps each app cVM's steps in the supervisor's trap
    boundary: on a capability fault the shared mutex is force-released,
    the app torn down, and (policy permitting) rebuilt on restart.
    [app_hook] runs with the mutex held, inside the boundary — faulting
    there reproduces the held-mutex crash hazard of Scenario 2. *)

val build_scenario3_split :
  ?seed:int64 -> direction:direction -> unit -> built
(** Ablation: DPDK split from F-Stack as well — one extra trampoline
    round trip on each API call and each loop iteration. *)

(** {1 Latency-measurement topology (Figs. 4-6)}

    A single-port setup where the measured application on the DUT sends
    to a sink server on the peer. [`Direct] serves both Baseline and
    Scenario 1 (the data path is shared; the paths differ only in how
    the measurement clock is read, which {!Measurement} models).
    [`S2 contended] adds a background full-rate iperf client in cVM3. *)

type measurement_topology = {
  mt_built : built;
  mt_ff : Netstack.Ff_api.t;  (** The DUT stack's API. *)
  mt_stack : Netstack.Stack.t;
  mt_app_cvm : Capvm.Cvm.t;  (** Where the measured app lives. *)
  mt_stack_cvm : Capvm.Cvm.t;  (** cVM1 (stack + DPDK). *)
  mt_sink_port : int;  (** Peer-side sink the measured fd connects to. *)
}

val build_measurement :
  ?seed:int64 ->
  mode:[ `Direct | `S2 of bool ] ->
  unit ->
  measurement_topology

val build_udp_blast :
  ?engine:Dsim.Engine.t ->
  ?seed:int64 ->
  ?payload:int ->
  offered_mbit:float ->
  unit ->
  built
(** Extension: a UDP datagram blast from the DUT at a fixed offered
    rate, received and counted on the peer. Flows: "offered" (bytes the
    app attempted) and "received" (bytes that made it through) — their
    gap is the loss a protocol without flow control suffers once the
    offered load exceeds the path capacity. [engine] as in
    {!build_single_baseline}: replicas of this topology on one sharded
    engine are the shard-scaling bench workload. *)
