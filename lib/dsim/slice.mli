(** A borrowed view of a byte buffer: backing [bytes] + window.

    The zero-copy packet path threads slices between layers instead of
    materializing a fresh [Bytes.t] at every boundary: the mbuf borrow
    performs one capability check for the whole frame, and every parser
    then reads the frame in place through a slice.

    A slice never escapes its window: all accessors bounds-check against
    [len] and report violations through the creator-supplied [oob]
    handler. {!Cheri.Tagged_memory.borrow} installs a handler that
    raises the same [Cheri.Fault.Capability_fault] an individual
    capability-checked access would have raised, so narrowing from
    per-access checks to one check per frame does not weaken the
    protection story — an out-of-slice access still traps. *)

type oob = { raise_oob : 'a. addr:int -> len:int -> detail:string -> 'a }
(** Out-of-window handler; [addr] is the absolute address of the
    offending access (window origin + offset). *)

val default_oob : oob
(** Raises [Invalid_argument] — the behaviour of plain slices not backed
    by a capability borrow. *)

type t

val make : ?abs:int -> ?oob:oob -> bytes -> off:int -> len:int -> t
(** Window [\[off, off+len)] of [base]. [abs] is the absolute address
    the window starts at in the simulated address space (diagnostics
    only; defaults to 0). *)

val of_bytes : bytes -> t
(** The whole buffer as a slice. *)

val length : t -> int

val base : t -> bytes
(** The backing buffer — with {!base_off}, for handing the raw window to
    [~off ~len]-style parsers without copying. Accesses made directly
    through the backing buffer bypass the slice's bounds discipline;
    keep them confined to [\[base_off, base_off+length)]. *)

val base_off : t -> int
val absolute : t -> int

val check : t -> off:int -> len:int -> unit
(** Assert [\[off, off+len)] lies inside the window, invoking the [oob]
    handler otherwise. Callers about to hand {!base}/{!base_off} to an
    in-place parser use this as the single bounds gate for the range the
    parser will touch. *)

val sub : t -> off:int -> len:int -> t
(** Narrowed view sharing the backing buffer (no copy). *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16_be : t -> int -> int
val set_u16_be : t -> int -> int -> unit
val get_u32_be : t -> int -> int
val set_u32_be : t -> int -> int -> unit

val to_bytes : t -> bytes
(** Materialize a copy (the escape hatch for data that outlives the
    borrow, e.g. packets parked awaiting ARP resolution). *)

val blit_to : t -> off:int -> len:int -> dst:bytes -> dst_off:int -> unit
val blit_from : t -> off:int -> src:bytes -> src_off:int -> len:int -> unit
