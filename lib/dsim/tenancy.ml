type tenant = {
  name : string;
  mutable flows : int;
  mutable bytes : int;
  fct : Stats.t;
  mutable crossings : int;
  mutable packets : int;
  (* Per-stage hop-to-hop intervals and per-trace end-to-end times from
     sampled traces; keyed by stage name, rendered in pipeline order. *)
  stage_int : (string, Stats.t) Hashtbl.t;
  e2e : Stats.t;
  mutable traces : int;
  drops : (string * string, int) Hashtbl.t;
  mutable drop_order : (string * string) list;  (* first seen, reversed *)
}

type t = {
  tenants : (string, tenant) Hashtbl.t;
  (* Globals accumulated from every ingested registry. *)
  global_drops : (string * string, int) Hashtbl.t;
  mutable global_drop_order : (string * string) list;
  mutable dropped_frames : int;
  mutable origins : int;
  mutable sampled : int;
  mutable unattributed : int;
}

let create () =
  {
    tenants = Hashtbl.create 64;
    global_drops = Hashtbl.create 32;
    global_drop_order = [];
    dropped_frames = 0;
    origins = 0;
    sampled = 0;
    unattributed = 0;
  }

let tenant t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tn -> tn
  | None ->
    let tn =
      {
        name;
        flows = 0;
        bytes = 0;
        fct = Stats.create ();
        crossings = 0;
        packets = 0;
        stage_int = Hashtbl.create 16;
        e2e = Stats.create ();
        traces = 0;
        drops = Hashtbl.create 8;
        drop_order = [];
      }
    in
    Hashtbl.replace t.tenants name tn;
    tn

let note_flow t ~tenant:name ~bytes ~fct_ns =
  let tn = tenant t name in
  tn.flows <- tn.flows + 1;
  tn.bytes <- tn.bytes + bytes;
  Stats.add tn.fct fct_ns

let note_packets t ~tenant:name n =
  let tn = tenant t name in
  tn.packets <- tn.packets + n

let note_crossings t ~tenant:name n =
  let tn = tenant t name in
  tn.crossings <- tn.crossings + n

let bump table order key n =
  match Hashtbl.find_opt table key with
  | Some c ->
    Hashtbl.replace table key (c + n);
    !order
  | None ->
    Hashtbl.replace table key n;
    key :: !order

let stage_buf tn stage =
  match Hashtbl.find_opt tn.stage_int stage with
  | Some s -> s
  | None ->
    let s = Stats.create () in
    Hashtbl.replace tn.stage_int stage s;
    s

let ingest t ~tenant_of ft =
  t.origins <- t.origins + Flowtrace.origins ft;
  t.sampled <- t.sampled + Flowtrace.sampled ft;
  t.dropped_frames <- t.dropped_frames + Flowtrace.dropped_frames ft;
  List.iter
    (fun ((stage, reason), n) ->
      let key = (Flowtrace.stage_name stage, Flowtrace.reason_name reason) in
      let order = ref t.global_drop_order in
      t.global_drop_order <- bump t.global_drops order key n)
    (Flowtrace.drop_table ft);
  List.iter
    (fun ctx ->
      match tenant_of (Flowtrace.flow_label ctx) with
      | None -> t.unattributed <- t.unattributed + 1
      | Some name ->
        let tn = tenant t name in
        (match Flowtrace.dropped_at ctx with
        | Some (stage, reason) ->
          let key = (Flowtrace.stage_name stage, Flowtrace.reason_name reason) in
          let order = ref tn.drop_order in
          tn.drop_order <- bump tn.drops order key 1
        | None -> ());
        let hops = Flowtrace.hops ctx in
        (match hops with
        | [] | [ _ ] -> ()
        | (_, first) :: _ ->
          tn.traces <- tn.traces + 1;
          let rec walk prev = function
            | [] -> prev
            | (stage, at) :: rest ->
              Stats.add (stage_buf tn (Flowtrace.stage_name stage)) (at -. prev);
              walk at rest
          in
          let last = walk first (List.tl hops) in
          Stats.add tn.e2e (last -. first)))
    (Flowtrace.traces ft)

type rollup = {
  r_tenant : string;
  r_flows : int;
  r_bytes : int;
  r_goodput_mbit : float;
  r_fct_p50_ns : float;
  r_fct_p90_ns : float;
  r_fct_p99_ns : float;
  r_fct_p999_ns : float;
  r_traces : int;
  r_stage_p50_ns : (string * float) list;
  r_stage_mean_sum_ns : float;
  r_e2e_mean_ns : float;
  r_e2e_p50_ns : float;
  r_crossings : int;
  r_packets : int;
  r_crossings_per_packet : float;
  r_drops : (string * string * int) list;
}

let pct s p = if Stats.is_empty s then 0. else Stats.percentile s p

let rollup t ~duration_ns =
  Hashtbl.fold (fun _ tn acc -> tn :: acc) t.tenants []
  |> List.sort (fun a b -> String.compare a.name b.name)
  |> List.map (fun tn ->
         let stage_names =
           List.filter
             (fun s -> Hashtbl.mem tn.stage_int s)
             (List.map Flowtrace.stage_name Flowtrace.all_stages)
         in
         let stage_p50 =
           List.map (fun s -> (s, pct (Hashtbl.find tn.stage_int s) 50.)) stage_names
         in
         let stage_mean_sum =
           List.fold_left
             (fun acc s ->
               let buf = Hashtbl.find tn.stage_int s in
               acc +. (Stats.mean buf *. float_of_int (Stats.count buf)))
             0. stage_names
           /. float_of_int (max 1 tn.traces)
         in
         {
           r_tenant = tn.name;
           r_flows = tn.flows;
           r_bytes = tn.bytes;
           r_goodput_mbit =
             (if duration_ns <= 0. then 0.
              else float_of_int tn.bytes *. 8000. /. duration_ns);
           r_fct_p50_ns = pct tn.fct 50.;
           r_fct_p90_ns = pct tn.fct 90.;
           r_fct_p99_ns = pct tn.fct 99.;
           r_fct_p999_ns = pct tn.fct 99.9;
           r_traces = tn.traces;
           r_stage_p50_ns = stage_p50;
           r_stage_mean_sum_ns = stage_mean_sum;
           r_e2e_mean_ns = (if Stats.is_empty tn.e2e then 0. else Stats.mean tn.e2e);
           r_e2e_p50_ns = pct tn.e2e 50.;
           r_crossings = tn.crossings;
           r_packets = tn.packets;
           r_crossings_per_packet =
             (if tn.packets = 0 then 0.
              else float_of_int tn.crossings /. float_of_int tn.packets);
           r_drops =
             List.rev_map
               (fun (s, r) -> (s, r, Hashtbl.find tn.drops (s, r)))
               tn.drop_order;
         })

let jain xs =
  match xs with
  | [] -> 1.
  | _ ->
    let s = List.fold_left ( +. ) 0. xs in
    let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
    if s2 = 0. then 1. else s *. s /. (float_of_int (List.length xs) *. s2)

let drop_table t =
  List.rev_map
    (fun (s, r) -> (s, r, Hashtbl.find t.global_drops (s, r)))
    t.global_drop_order

let dropped_frames t = t.dropped_frames
let attributed_drops t = List.fold_left (fun acc (_, _, n) -> acc + n) 0 (drop_table t)
let origins t = t.origins
let sampled t = t.sampled
let unattributed_traces t = t.unattributed
