type cls = Parser_bounds | Temporal | Resource | Cross_tenant

let cls_name = function
  | Parser_bounds -> "parser_bounds"
  | Temporal -> "temporal"
  | Resource -> "resource"
  | Cross_tenant -> "cross_tenant"

let all_classes = [ Parser_bounds; Temporal; Resource; Cross_tenant ]

type outcome =
  | Pending
  | Caught of { stage : string; reason : string }
  | Leaked of { detail : string }

type launch = {
  id : int;
  cls : cls;
  name : string;
  at_ns : float;
  target : string;
  mutable outcome : outcome;
  mutable provenance : string option;
  mutable blackbox : string option;
}

type t = {
  seed_ : int64;
  rng_ : Rng.t;
  mutable armed_ : bool;
  mutable next_id : int;
  mutable launches_rev : launch list;
  by_id : (int, launch) Hashtbl.t;
}

let create ~seed =
  {
    seed_ = seed;
    rng_ = Rng.create ~seed;
    armed_ = true;
    next_id = 1;
    launches_rev = [];
    by_id = Hashtbl.create 64;
  }

let seed t = t.seed_
let armed t = t.armed_
let set_armed t b = t.armed_ <- b
let rng t = t.rng_

let launch t cls ~name ~at_ns ~target =
  if not t.armed_ then -1
  else begin
    let l =
      {
        id = t.next_id;
        cls;
        name;
        at_ns;
        target;
        outcome = Pending;
        provenance = None;
        blackbox = None;
      }
    in
    t.next_id <- t.next_id + 1;
    t.launches_rev <- l :: t.launches_rev;
    Hashtbl.replace t.by_id l.id l;
    l.id
  end

let find t id = Hashtbl.find_opt t.by_id id

(* First verdict wins: an attack that was caught at one stage must not
   be re-labelled by a later, coarser observer. *)
let resolve t id outcome =
  match find t id with
  | Some l when l.outcome = Pending -> l.outcome <- outcome
  | Some _ | None -> ()

let resolve_caught t id ~stage ~reason = resolve t id (Caught { stage; reason })
let resolve_leaked t id ~detail = resolve t id (Leaked { detail })

let set_provenance t id p =
  match find t id with Some l -> l.provenance <- Some p | None -> ()

let set_blackbox t id p =
  match find t id with Some l -> l.blackbox <- Some p | None -> ()

let launches t = List.rev t.launches_rev
let launched_count t = List.length t.launches_rev

let count_if t p =
  List.fold_left (fun acc l -> if p l then acc + 1 else acc) 0 t.launches_rev

let pending_count t = count_if t (fun l -> l.outcome = Pending)

let caught_count t =
  count_if t (fun l -> match l.outcome with Caught _ -> true | _ -> false)

let leaked_count t =
  count_if t (fun l -> match l.outcome with Leaked _ -> true | _ -> false)

type tally = { t_launched : int; t_caught : int; t_leaked : int; t_pending : int }

let counts t =
  List.map
    (fun c ->
      let of_cls p =
        count_if t (fun l -> l.cls = c && p l.outcome)
      in
      ( c,
        {
          t_launched = of_cls (fun _ -> true);
          t_caught = of_cls (function Caught _ -> true | _ -> false);
          t_leaked = of_cls (function Leaked _ -> true | _ -> false);
          t_pending = of_cls (fun o -> o = Pending);
        } ))
    all_classes

let outcome_json = function
  | Pending -> Json.Obj [ ("verdict", Json.String "pending") ]
  | Caught { stage; reason } ->
    Json.Obj
      [
        ("verdict", Json.String "caught");
        ("stage", Json.String stage);
        ("reason", Json.String reason);
      ]
  | Leaked { detail } ->
    Json.Obj
      [ ("verdict", Json.String "leaked"); ("detail", Json.String detail) ]

let launch_json l =
  Json.Obj
    [
      ("id", Json.Int l.id);
      ("class", Json.String (cls_name l.cls));
      ("name", Json.String l.name);
      ("at_ns", Json.Float l.at_ns);
      ("target", Json.String l.target);
      ("outcome", outcome_json l.outcome);
      ( "provenance",
        match l.provenance with
        | None -> Json.Null
        | Some p -> Json.String p );
      ( "blackbox",
        match l.blackbox with None -> Json.Null | Some p -> Json.String p );
    ]

let to_json t =
  Json.Obj
    [
      ("seed", Json.String (Int64.to_string t.seed_));
      ("launched", Json.Int (launched_count t));
      ("caught", Json.Int (caught_count t));
      ("leaked", Json.Int (leaked_count t));
      ("pending", Json.Int (pending_count t));
      ( "classes",
        Json.List
          (List.map
             (fun (c, tl) ->
               Json.Obj
                 [
                   ("class", Json.String (cls_name c));
                   ("launched", Json.Int tl.t_launched);
                   ("caught", Json.Int tl.t_caught);
                   ("leaked", Json.Int tl.t_leaked);
                   ("pending", Json.Int tl.t_pending);
                 ])
             (counts t)) );
      ("attacks", Json.List (List.map launch_json (launches t)));
    ]
