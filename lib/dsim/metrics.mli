(** Per-compartment metrics: counters, gauges and ns-latency histograms
    in a named registry with label support.

    The paper's evaluation is an exercise in counting crossings —
    trampolines, capability faults, mutex waits, ff_write latencies —
    per compartment boundary. Every simulator layer registers its
    instruments here (e.g. [trampoline_crossings_total{cvm="cVM2"}])
    and the CLI exposes the registry as Prometheus text via
    [netrepro ... --metrics FILE].

    Updates follow the same discipline as {!Trace.record}: instruments
    are registered once at construction time (allocation allowed), and
    the hot-path update ([incr], [set], [observe]) is a single flag
    check when the registry is disabled — no allocation, so the
    1M-iteration Fig. 4-6 loops keep their calibrated medians.

    A series is identified by its metric name plus its (sorted) label
    set; re-registering the same pair returns the same instrument, so
    rebuilt topologies keep accumulating into the existing series. *)

type t
(** A registry. *)

type labels = (string * string) list

type counter
type gauge
type histogram

val create : ?enabled:bool -> unit -> t
(** Disabled by default. *)

val default : t
(** The process-wide registry all simulator layers register into.
    Disabled by default; [netrepro --metrics] enables it. Use {!reset}
    (not a fresh registry) to zero it between runs — layer modules hold
    on to instruments registered here. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** {1 Label-cardinality guard}

    The series intern table is bounded (default 8192 series). A
    registration that would create a series past the cap instead
    returns a live but {e unexported} instrument — hot-path updates on
    it remain one branch, it simply never appears in {!snapshot} or
    {!to_prometheus} — and bumps the dropped-series tally, which the
    Prometheus dump surfaces as [metrics_dropped_series_total] when
    non-zero. This keeps a 256-tenant (or adversarially label-happy)
    run from growing the export without bound. *)

val max_series : t -> int
val set_max_series : t -> int -> unit
val dropped_series : t -> int

val reset : t -> unit
(** Zero every instrument, keeping all series registered. *)

(** {1 Registration}

    Get-or-create: the same name and label set yields the same
    instrument. Registering one name with two different instrument
    types raises [Invalid_argument]. *)

val counter : t -> ?help:string -> ?labels:labels -> string -> counter
val gauge : t -> ?help:string -> ?labels:labels -> string -> gauge

val histogram :
  t ->
  ?help:string ->
  ?labels:labels ->
  ?lo:float ->
  ?ratio:float ->
  ?buckets:int ->
  string ->
  histogram
(** Geometric bucket ladder [lo * ratio^i], like {!Histogram}. Defaults:
    lo = 1.0, ratio = 2.0, 40 buckets (1 ns to ~10^12 ns). The last
    bucket absorbs values beyond the ladder. *)

(** {1 Hot-path updates}

    No-ops (one branch, no allocation) while the registry is disabled. *)

val incr : ?by:int -> counter -> unit
val set : gauge -> int -> unit
val add : gauge -> int -> unit
val observe : histogram -> float -> unit

(** {1 Reads} *)

val value : counter -> int
val level : gauge -> int
val observations : histogram -> int
val sum : histogram -> float
val mean : histogram -> float

val percentile : histogram -> float -> float
(** Estimated from the bucket ladder with geometric interpolation:
    accurate to within one bucket ratio of the exact ({!Stats})
    percentile. *)

val find_counter : t -> ?labels:labels -> string -> counter option
val find_gauge : t -> ?labels:labels -> string -> gauge option
val find_histogram : t -> ?labels:labels -> string -> histogram option

type value =
  | Counter_value of int
  | Gauge_value of int
  | Histogram_value of { n : int; sum : float }

val snapshot : t -> (string * labels * value) list
(** Every series in registration order. *)

val series_count : t -> int

val to_prometheus : t -> string
(** Prometheus text exposition format: [# HELP]/[# TYPE] headers, one
    line per series, histograms as cumulative [_bucket{le=...}] plus
    [_sum]/[_count]. *)
