(** Wall-clock simulation profiler.

    The engine's virtual clock says nothing about where the {e host's}
    time goes: a run that simulates one second may spend its wall time
    in TCP segmentation, RX DMA completions, or the measurement harness,
    and the aggregate events/sec number in [BENCH_wallclock.json]
    cannot tell them apart. This module attributes measured wall time to
    a [(component, cvm, stage)] key attached where the event was
    {e scheduled} ({!Engine.schedule_l} / {!Engine.schedule_at_l}): the
    engine brackets every dispatched handler with two monotonic-clock
    reads and charges the interval to the handle's key. Within a
    handler, {!span} pushes a nested key, so a stack iteration can split
    its time into rx/tcp/arp/app phases; self time excludes children,
    cumulative time includes them.

    Like {!Metrics} and {!Flowtrace}, the profiler is process-global
    and off by default: a disabled profiler costs the dispatch loop one
    load and one branch per event, and never perturbs the virtual clock
    — Fig. 4 / Table II outputs are bit-identical with profiling on or
    off (regression-tested).

    Two export formats: a hotspot table ({!render}, {!to_json}) with
    self/cumulative wall time, events fired and ns/event per key, and a
    folded-stack dump ({!folded}) — one [frame;frame;frame self_ns]
    line per observed scheduling-hierarchy path — consumable by
    standard flamegraph tooling ([flamegraph.pl], [inferno], speedscope). *)

type t
(** A profiler registry. The engine dispatch loop and {!span} always
    account into {!default}; independent registries are for tests. *)

type key
(** An interned [(component, cvm, stage)] attribution key holding its
    own accumulators. Create once (at component construction or module
    init), attach at scheduling call sites. Two requests for the same
    triple on the same registry return the same key. *)

val create : ?enabled:bool -> unit -> t

val default : t
(** The process-wide profiler used by {!Engine}. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val reset : t -> unit
(** Zero every key's accumulators and drop the folded-stack tree. Keys
    stay interned — call sites hold references to them. *)

val set_clock : t -> (unit -> int64) -> unit
(** Override the monotonic nanosecond clock (default:
    [Monotonic_clock.now]). Tests install a deterministic counter. *)

val key : t -> component:string -> cvm:string -> stage:string -> key
(** Intern a key. [component] is the layer (["nic"], ["netstack"],
    ["intravisor"], ["measure"], ["chaos"]...), [cvm] the compartment or
    instance (["cVM1"], ["port0"], ["10.0.0.1"], ["-"] when none), and
    [stage] the pipeline step (["rx_dma"], ["loop"], ["wake"]). *)

val unattributed : key
(** Events scheduled through the unlabelled {!Engine.schedule} land
    here; its share is the profiler's blind spot and the
    [netrepro profile] report prints it first when non-zero. *)

val key_id : key -> int
(** Stable small integer identifying the key within its registry
    (interning order). The {!Journal} uses it to intern label records
    once per journal file. *)

val key_triple : key -> string * string * string
(** The [(component, cvm, stage)] triple the key was interned under. *)

(** {1 RNG draw accounting}

    Always-on (independent of {!enabled}): the engine snapshots
    {!Rng.draws} around every dispatched handler and adds the delta to
    the handle's key, so stray RNG use is attributable per scheduling
    label even when no instrument is armed. Zeroed by {!reset}. *)

val add_rng_draws : key -> int -> unit
(** Called by the engine dispatch loop; one unboxed add. *)

val rng_draws : key -> int

val publish_rng_draws : t -> Metrics.t -> unit
(** Mirror draw totals into [rng_draws_total{component,cvm,stage}]
    counters. Delta-based (repeated publishes stay monotone); no-op
    while the registry is disabled; keys with zero draws are skipped. *)

(** {1 Hot path} — used by the engine dispatch loop and instrumented
    handlers; all three account into {!default}. *)

val hot : unit -> bool
(** One load and one branch: is {!default} enabled? *)

val enter_event : key -> unit
val exit_event : unit -> unit
(** Bracket a dispatched handler. Only {!Engine.step} calls these; they
    must nest (the engine uses an exception-safe bracket). Call only
    when {!hot} — they do not re-check the switch. *)

val span : key -> (unit -> 'a) -> 'a
(** [span k f] runs [f] charging its wall time to [k], nested under the
    currently executing event (or at top level outside dispatch). The
    parent's self time excludes the span; exception-safe; when the
    profiler is disabled this is the bare call [f ()]. *)

(** {1 Reporting} *)

type row = {
  r_component : string;
  r_cvm : string;
  r_stage : string;
  r_events : int;  (** Times the key was entered (events + spans). *)
  r_self_ns : float;  (** Wall time excluding nested spans. *)
  r_cum_ns : float;  (** Wall time including nested spans. *)
  r_rng_draws : int;  (** RNG draws during dispatches under this key. *)
}

val rows : t -> row list
(** Keys with at least one entry, largest self time first (ties broken
    by key name, so reports are deterministic under equal clocks). *)

val total_self_ns : t -> float
(** Sum of self time over all keys — everything the profiler measured. *)

val attributed_ns : t -> float
(** {!total_self_ns} minus the {!unattributed} key's share. *)

val attributed_pct : t -> float
(** [100 * attributed / total]; 100 when nothing was measured. *)

val render : t -> string
(** The hotspot table: per-key events, self/cum wall, ns/event and
    share, plus an attribution footer. *)

val folded : t -> string
(** Folded-stack lines ["comp:cvm:stage;comp:cvm:stage self_ns"], one
    per hierarchy path with non-zero self time, sorted. Feed to
    [flamegraph.pl] or speedscope. *)

val to_json : t -> Json.t
(** [{"total_self_wall_ns", "attributed_wall_ns", "attributed_pct",
    "hotspots": [{component, cvm, stage, events, self_wall_ns,
    cum_wall_ns, ns_per_event, share_pct, rng_draws}]}] — the
    [FILE.profile.json] payload [netrepro perfdiff] consumes. *)
