type labels = (string * string) list

(* Shared on/off flag: every instrument holds the registry's switch so a
   hot-path [incr] is one load and one branch when telemetry is off. *)
type switch = { mutable on : bool }

type counter = { c_sw : switch; mutable count : int }
type gauge = { g_sw : switch; mutable level : int }

type histogram = {
  h_sw : switch;
  h_lo : float;
  h_ratio : float;
  h_log_ratio : float;
  h_counts : int array;
  mutable h_sum : float;
  mutable h_n : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type series = { s_name : string; s_labels : labels; s_instrument : instrument }

type t = {
  sw : switch;
  table : (string, series) Hashtbl.t;
  mutable order : string list;  (* registration order, reversed *)
  meta : (string, string * string) Hashtbl.t;  (* name -> (type, help) *)
  (* Label-cardinality guard: the series intern table is bounded so a
     runaway label set (hundreds of tenants, per-flow labels, ...)
     cannot blow up the export. Registrations past the cap still get a
     live (but unexported) instrument, and are tallied. *)
  mutable max_series : int;
  mutable dropped_series : int;
}

let default_max_series = 8192

let create ?(enabled = false) () =
  {
    sw = { on = enabled };
    table = Hashtbl.create 64;
    order = [];
    meta = Hashtbl.create 32;
    max_series = default_max_series;
    dropped_series = 0;
  }

let default = create ()

let enabled t = t.sw.on
let set_enabled t b = t.sw.on <- b
let max_series t = t.max_series
let set_max_series t n = t.max_series <- max 0 n
let dropped_series t = t.dropped_series

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
    ^ "}"

let series_key name labels = name ^ render_labels labels

let type_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register t ~name ~labels ~help make =
  let labels = normalize_labels labels in
  let key = series_key name labels in
  match Hashtbl.find_opt t.table key with
  | Some s -> s.s_instrument
  | None when Hashtbl.length t.table >= t.max_series ->
    (* Over the cardinality cap: hand back a working instrument that is
       interned nowhere — updates stay cheap and safe, the series just
       never reaches the export — and account for the drop. *)
    t.dropped_series <- t.dropped_series + 1;
    make ()
  | None ->
    let instrument = make () in
    if not (Hashtbl.mem t.meta name) then
      Hashtbl.replace t.meta name (type_name instrument, help)
    else begin
      let expected, _ = Hashtbl.find t.meta name in
      if not (String.equal expected (type_name instrument)) then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s" name expected)
    end;
    Hashtbl.replace t.table key { s_name = name; s_labels = labels; s_instrument = instrument };
    t.order <- key :: t.order;
    instrument

let counter t ?(help = "") ?(labels = []) name =
  match register t ~name ~labels ~help (fun () -> Counter { c_sw = t.sw; count = 0 }) with
  | Counter c -> c
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics.counter: %s is a %s" name (type_name other))

let gauge t ?(help = "") ?(labels = []) name =
  match register t ~name ~labels ~help (fun () -> Gauge { g_sw = t.sw; level = 0 }) with
  | Gauge g -> g
  | other ->
    invalid_arg (Printf.sprintf "Metrics.gauge: %s is a %s" name (type_name other))

let histogram t ?(help = "") ?(labels = []) ?(lo = 1.) ?(ratio = 2.)
    ?(buckets = 40) name =
  if lo <= 0. || ratio <= 1. || buckets < 1 then
    invalid_arg "Metrics.histogram: need lo > 0, ratio > 1, buckets >= 1";
  let make () =
    Histogram
      {
        h_sw = t.sw;
        h_lo = lo;
        h_ratio = ratio;
        h_log_ratio = Float.log ratio;
        h_counts = Array.make buckets 0;
        h_sum = 0.;
        h_n = 0;
      }
  in
  match register t ~name ~labels ~help make with
  | Histogram h -> h
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics.histogram: %s is a %s" name (type_name other))

(* ------------------------------------------------------------------ *)
(* Hot-path updates                                                     *)
(* ------------------------------------------------------------------ *)

let incr ?(by = 1) c = if c.c_sw.on then c.count <- c.count + by
let value c = c.count

let set g v = if g.g_sw.on then g.level <- v
let add g d = if g.g_sw.on then g.level <- g.level + d
let level g = g.level

let bucket_index h x =
  if x < h.h_lo then 0
  else begin
    let i = int_of_float (Float.floor (Float.log (x /. h.h_lo) /. h.h_log_ratio)) in
    min i (Array.length h.h_counts - 1)
  end

let observe h x =
  if h.h_sw.on then begin
    let i = bucket_index h x in
    h.h_counts.(i) <- h.h_counts.(i) + 1;
    h.h_sum <- h.h_sum +. x;
    h.h_n <- h.h_n + 1
  end

let observations h = h.h_n
let sum h = h.h_sum

(* Upper bound of bucket [i]: lo * ratio^(i+1); the last bucket absorbs
   everything above the ladder, so its bound reports as infinity. *)
let bucket_bound h i =
  if i = Array.length h.h_counts - 1 then Float.infinity
  else h.h_lo *. (h.h_ratio ** float_of_int (i + 1))

let bucket_lower h i = if i = 0 then 0. else h.h_lo *. (h.h_ratio ** float_of_int i)

let percentile h p =
  if h.h_n = 0 then 0.
  else begin
    let target =
      Float.max 1. (Float.of_int h.h_n *. Float.min 100. (Float.max 0. p) /. 100.)
    in
    let rec walk i cum =
      if i >= Array.length h.h_counts then bucket_lower h (Array.length h.h_counts - 1)
      else begin
        let c = h.h_counts.(i) in
        if Float.of_int (cum + c) >= target && c > 0 then begin
          (* Interpolate geometrically inside the bucket. *)
          let frac = (target -. Float.of_int cum) /. Float.of_int c in
          let lo = Float.max h.h_lo (bucket_lower h i) in
          let hi =
            if i = Array.length h.h_counts - 1 then lo *. h.h_ratio
            else bucket_bound h i
          in
          lo *. ((hi /. lo) ** frac)
        end
        else walk (i + 1) (cum + c)
      end
    in
    walk 0 0
  end

let mean h = if h.h_n = 0 then 0. else h.h_sum /. float_of_int h.h_n

(* ------------------------------------------------------------------ *)
(* Registry traversal                                                   *)
(* ------------------------------------------------------------------ *)

type value =
  | Counter_value of int
  | Gauge_value of int
  | Histogram_value of { n : int; sum : float }

let value_of = function
  | Counter c -> Counter_value c.count
  | Gauge g -> Gauge_value g.level
  | Histogram h -> Histogram_value { n = h.h_n; sum = h.h_sum }

let snapshot t =
  List.rev_map
    (fun key ->
      let s = Hashtbl.find t.table key in
      (s.s_name, s.s_labels, value_of s.s_instrument))
    t.order

let series_count t = Hashtbl.length t.table

let find_counter t ?(labels = []) name =
  match Hashtbl.find_opt t.table (series_key name (normalize_labels labels)) with
  | Some { s_instrument = Counter c; _ } -> Some c
  | _ -> None

let find_gauge t ?(labels = []) name =
  match Hashtbl.find_opt t.table (series_key name (normalize_labels labels)) with
  | Some { s_instrument = Gauge g; _ } -> Some g
  | _ -> None

let find_histogram t ?(labels = []) name =
  match Hashtbl.find_opt t.table (series_key name (normalize_labels labels)) with
  | Some { s_instrument = Histogram h; _ } -> Some h
  | _ -> None

let reset t =
  Hashtbl.iter
    (fun _ s ->
      match s.s_instrument with
      | Counter c -> c.count <- 0
      | Gauge g -> g.level <- 0
      | Histogram h ->
        Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
        h.h_sum <- 0.;
        h.h_n <- 0)
    t.table

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                           *)
(* ------------------------------------------------------------------ *)

(* Exposition-format escaping — [String.escaped] is the wrong tool: it
   would also mangle tabs and any non-ASCII label value (UTF-8 bytes
   become \ddd). Label values escape backslash, double-quote, and
   newline; HELP text escapes backslash and newline only. *)
let prom_escape ~quote s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' when quote -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" k (prom_escape ~quote:true v))
           labels)
    ^ "}"

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let prom_bound f = if f = Float.infinity then "+Inf" else prom_float f

let to_prometheus t =
  let buf = Buffer.create 4096 in
  (* Group series under their metric name, preserving registration
     order of both names and series. *)
  let by_name = Hashtbl.create 32 in
  let name_order = ref [] in
  List.iter
    (fun key ->
      let s = Hashtbl.find t.table key in
      (match Hashtbl.find_opt by_name s.s_name with
      | None ->
        Hashtbl.replace by_name s.s_name [ s ];
        name_order := s.s_name :: !name_order
      | Some group -> Hashtbl.replace by_name s.s_name (s :: group)))
    (List.rev t.order);
  List.iter
    (fun name ->
      let group = List.rev (Hashtbl.find by_name name) in
      let typ, help =
        match Hashtbl.find_opt t.meta name with
        | Some m -> m
        | None -> ("untyped", "")
      in
      (* Every family gets its HELP/TYPE pair; an empty help renders as
         a bare "# HELP name", which the format allows. *)
      if help <> "" then
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" name (prom_escape ~quote:false help))
      else Buffer.add_string buf (Printf.sprintf "# HELP %s\n" name);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ);
      List.iter
        (fun s ->
          match s.s_instrument with
          | Counter c ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %d\n" name (prom_labels s.s_labels) c.count)
          | Gauge g ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %d\n" name (prom_labels s.s_labels) g.level)
          | Histogram h ->
            let cum = ref 0 in
            Array.iteri
              (fun i n ->
                cum := !cum + n;
                let labels =
                  s.s_labels @ [ ("le", prom_bound (bucket_bound h i)) ]
                in
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" name (prom_labels labels) !cum))
              h.h_counts;
            (* Summary-style quantile lines (incl. p99.9) alongside the
               cumulative buckets, so dashboards need no PromQL
               histogram_quantile step to read tail latency. *)
            List.iter
              (fun (q, p) ->
                let labels = s.s_labels @ [ ("quantile", q) ] in
                Buffer.add_string buf
                  (Printf.sprintf "%s%s %s\n" name (prom_labels labels)
                     (prom_float (percentile h p))))
              [ ("0.5", 50.); ("0.9", 90.); ("0.99", 99.); ("0.999", 99.9) ];
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %s\n" name (prom_labels s.s_labels)
                 (prom_float h.h_sum));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" name (prom_labels s.s_labels) h.h_n))
        group)
    (List.rev !name_order);
  (* Surface cardinality-cap overflow so dropped series are visible in
     the dump rather than silently absent. Emitted only when non-zero,
     keeping pre-guard exports byte-identical. *)
  if t.dropped_series > 0 then begin
    Buffer.add_string buf
      "# HELP metrics_dropped_series_total Series registrations rejected by the label-cardinality cap.\n";
    Buffer.add_string buf "# TYPE metrics_dropped_series_total counter\n";
    Buffer.add_string buf
      (Printf.sprintf "metrics_dropped_series_total %d\n" t.dropped_series)
  end;
  Buffer.contents buf
