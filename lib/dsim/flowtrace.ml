type stage =
  | App
  | Ff_api
  | Tcp_out
  | Ip_out
  | Eth_tx
  | Tx_ring
  | Tx_dma
  | Wire
  | Rx_dma
  | Rx_ring
  | Eth_rx
  | Ip_rx
  | Tcp_in
  | Udp_in
  | Sock
  | Clock_ret
  | Tramp_in
  | Umtx_wait
  | Ff_write
  | Tramp_out
  | Clock_entry

type reason =
  | Tx_ring_full
  | Rx_ring_full
  | Mac_filter
  | Link_down
  | Bad_checksum
  | Parse_error
  | Out_of_window
  | Dup_segment
  | Rcv_buf_full
  | Mbuf_exhausted
  | No_socket
  | Sock_queue_full
  | Capability_fault
  | Unknown_proto
  | Fcs_error
  | Dma_error
  | Chaos_injected
  | Arp_unresolved
  | Bad_length
  | Bad_option
  | Frag_unsupported

let all_stages =
  [
    App; Ff_api; Tcp_out; Ip_out; Eth_tx; Tx_ring; Tx_dma; Wire; Rx_dma;
    Rx_ring; Eth_rx; Ip_rx; Tcp_in; Udp_in; Sock; Clock_ret; Tramp_in;
    Umtx_wait; Ff_write; Tramp_out; Clock_entry;
  ]

let stage_name = function
  | App -> "app"
  | Ff_api -> "ff_api"
  | Tcp_out -> "tcp_out"
  | Ip_out -> "ip_out"
  | Eth_tx -> "eth_tx"
  | Tx_ring -> "tx_ring"
  | Tx_dma -> "tx_dma"
  | Wire -> "wire"
  | Rx_dma -> "rx_dma"
  | Rx_ring -> "rx_ring"
  | Eth_rx -> "eth_rx"
  | Ip_rx -> "ip_rx"
  | Tcp_in -> "tcp_in"
  | Udp_in -> "udp_in"
  | Sock -> "sock"
  | Clock_ret -> "clock_ret"
  | Tramp_in -> "tramp_in"
  | Umtx_wait -> "umtx_wait"
  | Ff_write -> "ff_write"
  | Tramp_out -> "tramp_out"
  | Clock_entry -> "clock_entry"

let stage_of_name s =
  List.find_opt (fun st -> String.equal (stage_name st) s) all_stages

let all_reasons =
  [
    Tx_ring_full; Rx_ring_full; Mac_filter; Link_down; Bad_checksum;
    Parse_error; Out_of_window; Dup_segment; Rcv_buf_full; Mbuf_exhausted;
    No_socket; Sock_queue_full; Capability_fault; Unknown_proto; Fcs_error;
    Dma_error; Chaos_injected; Arp_unresolved; Bad_length; Bad_option;
    Frag_unsupported;
  ]

let reason_name = function
  | Tx_ring_full -> "tx_ring_full"
  | Rx_ring_full -> "rx_ring_full"
  | Mac_filter -> "mac_filter"
  | Link_down -> "link_down"
  | Bad_checksum -> "bad_checksum"
  | Parse_error -> "parse_error"
  | Out_of_window -> "out_of_window"
  | Dup_segment -> "dup_segment"
  | Rcv_buf_full -> "rcv_buf_full"
  | Mbuf_exhausted -> "mbuf_exhausted"
  | No_socket -> "no_socket"
  | Sock_queue_full -> "sock_queue_full"
  | Capability_fault -> "capability_fault"
  | Unknown_proto -> "unknown_proto"
  | Fcs_error -> "fcs_error"
  | Dma_error -> "dma_error"
  | Chaos_injected -> "chaos_injected"
  | Arp_unresolved -> "arp_unresolved"
  | Bad_length -> "bad_length"
  | Bad_option -> "bad_option"
  | Frag_unsupported -> "frag_unsupported"

let reason_of_name s =
  List.find_opt (fun r -> String.equal (reason_name r) s) all_reasons

type ctx = {
  tr_id : int;
  tr_parent : int option;
  tr_flow : string;
  mutable tr_hops : (stage * float) list;  (* reversed *)
  mutable tr_drop : (stage * reason) option;
}

(* Same shared-switch trick as Metrics: a disabled registry costs one
   load and one branch at every entry point, allocates nothing, and
   never touches the engine or an RNG — so enabling the library cannot
   perturb simulated time. *)
type t = {
  mutable on : bool;
  mutable every : int;
  capacity : int;
  mutable tick : int;
  mutable n_origins : int;
  mutable n_sampled : int;
  mutable n_dropped : int;
  mutable next_id : int;
  mutable traces_rev : ctx list;
  drops : (stage * reason, int ref) Hashtbl.t;
  mutable drop_order : (stage * reason) list;  (* reversed *)
}

let create ?(enabled = false) ?(sample_every = 64) ?(capacity = 65536) () =
  if sample_every < 1 then invalid_arg "Flowtrace.create: sample_every < 1";
  {
    on = enabled;
    every = sample_every;
    capacity;
    tick = 0;
    n_origins = 0;
    n_sampled = 0;
    n_dropped = 0;
    next_id = 1;
    traces_rev = [];
    drops = Hashtbl.create 16;
    drop_order = [];
  }

let default = create ()

let enabled t = t.on
let set_enabled t b = t.on <- b
let sample_every t = t.every

let set_sample_every t n =
  if n < 1 then invalid_arg "Flowtrace.set_sample_every: n < 1";
  t.every <- n

let clear t =
  t.tick <- 0;
  t.n_origins <- 0;
  t.n_sampled <- 0;
  t.n_dropped <- 0;
  t.next_id <- 1;
  t.traces_rev <- [];
  Hashtbl.reset t.drops;
  t.drop_order <- []

let origin_ns t ~at_ns ~flow ?parent stage =
  if not t.on then None
  else begin
    t.n_origins <- t.n_origins + 1;
    let hit = t.tick = 0 in
    t.tick <- (t.tick + 1) mod t.every;
    if (not hit) || t.n_sampled >= t.capacity then None
    else begin
      let c =
        {
          tr_id = t.next_id;
          tr_parent = parent;
          tr_flow = flow;
          tr_hops = [ (stage, at_ns) ];
          tr_drop = None;
        }
      in
      t.next_id <- t.next_id + 1;
      t.n_sampled <- t.n_sampled + 1;
      t.traces_rev <- c :: t.traces_rev;
      Some c
    end
  end

let origin t ~at ~flow ?parent stage =
  origin_ns t ~at_ns:(Time.to_float_ns at) ~flow ?parent stage

let hop_ns flow stage ~at_ns =
  match flow with
  | None -> ()
  | Some c -> c.tr_hops <- (stage, at_ns) :: c.tr_hops

let hop flow stage ~at = hop_ns flow stage ~at_ns:(Time.to_float_ns at)

let drop t ?(flow = None) stage reason =
  if t.on then begin
    let key = (stage, reason) in
    (match Hashtbl.find_opt t.drops key with
    | Some r -> incr r
    | None ->
      Hashtbl.replace t.drops key (ref 1);
      t.drop_order <- key :: t.drop_order);
    t.n_dropped <- t.n_dropped + 1;
    match flow with
    | Some c when c.tr_drop = None -> c.tr_drop <- Some key
    | _ -> ()
  end

let id c = c.tr_id
let parent c = c.tr_parent
let flow_label c = c.tr_flow
let hops c = List.rev c.tr_hops
let dropped_at c = c.tr_drop

let origins t = t.n_origins
let sampled t = t.n_sampled
let dropped_frames t = t.n_dropped
let traces t = List.rev t.traces_rev

let drop_table t =
  List.rev_map (fun key -> (key, !(Hashtbl.find t.drops key))) t.drop_order

let to_json t =
  let trace_json c =
    Json.Obj
      [
        ("id", Json.Int c.tr_id);
        ( "parent",
          match c.tr_parent with None -> Json.Null | Some p -> Json.Int p );
        ("flow", Json.String c.tr_flow);
        ( "hops",
          Json.List
            (List.map
               (fun (st, at_ns) ->
                 Json.Obj
                   [
                     ("stage", Json.String (stage_name st));
                     ("at_ns", Json.Float at_ns);
                   ])
               (hops c)) );
        ( "drop",
          match c.tr_drop with
          | None -> Json.Null
          | Some (st, r) ->
            Json.Obj
              [
                ("stage", Json.String (stage_name st));
                ("reason", Json.String (reason_name r));
              ] );
      ]
  in
  let drop_json ((st, r), n) =
    Json.Obj
      [
        ("stage", Json.String (stage_name st));
        ("reason", Json.String (reason_name r));
        ("count", Json.Int n);
      ]
  in
  Json.Obj
    [
      ("sample_every", Json.Int t.every);
      ("origins", Json.Int t.n_origins);
      ("sampled", Json.Int t.n_sampled);
      ("dropped_frames", Json.Int t.n_dropped);
      ("traces", Json.List (List.map trace_json (traces t)));
      ("drops", Json.List (List.map drop_json (drop_table t)));
    ]
