type handle = {
  at : Time.t;
  seq : int;
  fn : unit -> unit;
  label : Profile.key;
  (* Journal seq of the dispatch whose handler scheduled this event
     (-1 outside dispatch): the causal parent edge jdiff walks back to
     a common ancestor. *)
  sched_parent : int;
  owner : t;
  mutable cancelled : bool;
  mutable fired : bool;
}

and t = {
  mutable clock : Time.t;
  heap : handle Heap.t;
  mutable next_seq : int;
  mutable live : int;
  mutable fired_total : int;
  wm_heap : Watermark.cell;
}

let cmp_event a b =
  let c = Time.compare a.at b.at in
  if c <> 0 then c else compare a.seq b.seq

(* All engines share one heap-depth cell: watermarks are only armed
   around a profiled run, which drives a single engine. The growth
   alarm fires at successive doublings from 2048 pending entries. *)
let wm_heap_cell () =
  Watermark.cell Watermark.default ~growth_alarm:2048 "event_heap"

let create () =
  { clock = Time.zero; heap = Heap.create ~cmp:cmp_event; next_seq = 0;
    live = 0; fired_total = 0; wm_heap = wm_heap_cell () }

let now t = t.clock

let schedule_at_l t ~at ~label fn =
  let at = Time.max at t.clock in
  let h =
    { at; seq = t.next_seq; fn; label; sched_parent = Journal.parent_seq ();
      owner = t; cancelled = false; fired = false }
  in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Heap.push t.heap h;
  if Watermark.hot () then Watermark.observe t.wm_heap (Heap.size t.heap);
  h

let schedule_l t ~delay ~label fn =
  schedule_at_l t ~at:(Time.add t.clock delay) ~label fn

let schedule_at t ~at fn = schedule_at_l t ~at ~label:Profile.unattributed fn
let schedule t ~delay fn = schedule_l t ~delay ~label:Profile.unattributed fn

(* Rebuild the heap without cancelled entries. Re-pushing preserves the
   (time, seq) order, so compaction cannot perturb event ordering. *)
let compact t =
  let keep = ref [] in
  let rec drain () =
    match Heap.pop t.heap with
    | None -> ()
    | Some h ->
      if not h.cancelled then keep := h :: !keep;
      drain ()
  in
  drain ();
  List.iter (Heap.push t.heap) !keep

(* Compact once cancelled handles outnumber live ones: amortized O(log n)
   per cancel, and mass-cancellation (e.g. a teardown cancelling every
   TCP timer) can no longer pin a heap full of dead closures. *)
let compaction_floor = 64

let cancel h =
  if (not h.cancelled) && not h.fired then begin
    h.cancelled <- true;
    let t = h.owner in
    t.live <- t.live - 1;
    if Heap.size t.heap > compaction_floor && 2 * t.live < Heap.size t.heap then
      compact t
  end

let is_pending h = (not h.cancelled) && not h.fired

let pending_count t = t.live
let heap_size t = Heap.size t.heap
let events_fired t = t.fired_total

(* The dispatch loop uses the [_exn] heap accessors: no [Some] cell is
   allocated per fired event, which matters at millions of events per
   simulated second. *)
let rec step t =
  if Heap.is_empty t.heap then false
  else begin
    let h = Heap.pop_exn t.heap in
    if h.cancelled then step t
    else begin
      t.live <- t.live - 1;
      t.clock <- h.at;
      h.fired <- true;
      t.fired_total <- t.fired_total + 1;
      (* Journal bracket: assigns this dispatch its global seq, snapshots
         the RNG draw counter, and on exit writes the black-box ring slot
         and streams/verifies the record. Exception-safe so a trapping
         handler still leaves a complete record for the supervisor's
         black-box dump. *)
      Journal.begin_dispatch ~at:h.at ~parent:h.sched_parent h.label;
      (* Flat branches, no closure: this is the hottest line in the
         simulator and a per-dispatch allocation here shows up in both
         the wallclock budget and the perf baseline. *)
      (if Profile.hot () then begin
         Profile.enter_event h.label;
         match h.fn () with
         | () ->
           Profile.exit_event ();
           Journal.end_dispatch ()
         | exception e ->
           Profile.exit_event ();
           Journal.end_dispatch ();
           raise e
       end
       else
         match h.fn () with
         | () -> Journal.end_dispatch ()
         | exception e ->
           Journal.end_dispatch ();
           raise e);
      true
    end
  end

let rec drop_cancelled t =
  if (not (Heap.is_empty t.heap)) && (Heap.peek_exn t.heap).cancelled then begin
    ignore (Heap.pop_exn t.heap);
    drop_cancelled t
  end

let run ?until ?max_events t =
  let fired = ref 0 in
  let budget_ok () =
    match max_events with None -> true | Some m -> !fired < m
  in
  let rec loop () =
    drop_cancelled t;
    if Heap.is_empty t.heap then
      Option.iter (fun u -> if Time.(u > t.clock) then t.clock <- u) until
    else begin
      let h = Heap.peek_exn t.heap in
      let in_window = match until with None -> true | Some u -> Time.(h.at <= u) in
      if in_window && budget_ok () then begin
        if step t then incr fired;
        loop ()
      end
      else if not in_window then
        Option.iter (fun u -> if Time.(u > t.clock) then t.clock <- u) until
    end
  in
  loop ()

let run_until_quiet t = run t
