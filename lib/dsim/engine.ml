type handle = {
  at : Time.t;
  seq : int;
  fn : unit -> unit;
  label : Profile.key;
  (* Journal seq of the dispatch whose handler scheduled this event
     (-1 outside dispatch): the causal parent edge jdiff walks back to
     a common ancestor. *)
  sched_parent : int;
  owner : t;
  (* Index of the shard whose heap holds this event. *)
  shard : int;
  mutable cancelled : bool;
  mutable fired : bool;
}

(* One shard: its own heap, clock, seq stream (parallel mode), fired
   counter and RNG stream. The inbox is a per-producer mailbox array:
   slot [src] is written only by shard [src] inside its execution
   window and drained only by the owner after the post-window barrier
   (barrier C in [run_domains]), so the two sides never touch a queue
   concurrently and the barrier's mutex provides the only
   synchronization either needs. *)
and shard = {
  sid : int;
  heap : handle Heap.t;
  mutable s_clock : Time.t;
  mutable s_live : int;
  mutable s_fired : int;
  mutable s_seq : int;
  s_rng : Rng.t;
  inbox : mail Queue.t array;
}

and mail = { m_at : Time.t; m_label : Profile.key; m_fn : unit -> unit }

and t = {
  mutable clock : Time.t; (* global committed time (serial modes) *)
  shards : shard array;
  mutable next_seq : int; (* shared seq counter: global FIFO tie-break *)
  mutable cur_shard : int; (* placement target / dispatching shard *)
  mutable parallel : bool; (* domains executor currently driving *)
  mutable use_domains : bool;
  mutable quantum : Time.t; (* rendezvous window (domains mode) *)
  shard_keys : Profile.key array; (* folded-stack "shardN" frames *)
  wm_heap : Watermark.cell;
}

let cmp_event a b =
  let c = Time.compare a.at b.at in
  if c <> 0 then c else compare a.seq b.seq

(* All engines share one heap-depth cell: watermarks are only armed
   around a profiled run, which drives a single engine. The growth
   alarm fires at successive doublings from 2048 pending entries. *)
let wm_heap_cell () =
  Watermark.cell Watermark.default ~growth_alarm:2048 "event_heap"

(* Which shard the current domain is executing, when the domains
   executor is driving. Serial modes never read it. *)
let dls_sid : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let create ?(shards = 1) ?(domains = false) ?(seed = 0x5eedL) () =
  if shards < 1 then invalid_arg "Engine.create: shards must be >= 1";
  let base_rng = Rng.create ~seed in
  let mk_shard sid =
    {
      sid;
      heap = Heap.create ~cmp:cmp_event;
      s_clock = Time.zero;
      s_live = 0;
      s_fired = 0;
      s_seq = 0;
      s_rng = Rng.split base_rng;
      inbox = Array.init shards (fun _ -> Queue.create ());
    }
  in
  {
    clock = Time.zero;
    shards = Array.init shards mk_shard;
    next_seq = 0;
    cur_shard = 0;
    parallel = false;
    use_domains = domains;
    quantum = Time.ms 1;
    shard_keys =
      Array.init shards (fun i ->
          Profile.(key default)
            ~component:(Printf.sprintf "shard%d" i)
            ~cvm:"-" ~stage:"-");
    wm_heap = wm_heap_cell ();
  }

let shard_count t = Array.length t.shards

let check_sid t sid =
  if sid < 0 || sid >= Array.length t.shards then
    invalid_arg (Printf.sprintf "Engine: no shard %d" sid)

let current_shard t = if t.parallel then Domain.DLS.get dls_sid else t.cur_shard

(* 0 in every serial mode (interleaved execution keeps the global
   order, so serial callers must all see one resource channel); the
   executing shard only while the domains executor is driving. Shared
   simulated resources (e.g. the PCI bus) key per-shard state off this
   so serial runs stay byte-identical while parallel shards touch
   disjoint slots. *)
let parallel_shard t = if t.parallel then Domain.DLS.get dls_sid else 0

let set_shard t sid =
  check_sid t sid;
  if t.parallel then
    invalid_arg "Engine.set_shard: placement is fixed while domains run";
  t.cur_shard <- sid

let with_shard t sid f =
  check_sid t sid;
  if t.parallel then
    invalid_arg "Engine.with_shard: placement is fixed while domains run";
  let saved = t.cur_shard in
  t.cur_shard <- sid;
  Fun.protect ~finally:(fun () -> t.cur_shard <- saved) f

let now t =
  if t.parallel then t.shards.(Domain.DLS.get dls_sid).s_clock else t.clock

let shard_rng t sid =
  check_sid t sid;
  t.shards.(sid).s_rng

let rng t = t.shards.(current_shard t).s_rng

(* Parallel-mode scheduling: per-shard clock clamp and per-shard seq
   stream (the shared counter would race across domains). Seqs only
   order events within one heap, so per-shard streams preserve FIFO;
   [run_domains] re-joins the namespaces at the end of the run. *)
let schedule_parallel t ~at ~label fn =
  let sh = t.shards.(Domain.DLS.get dls_sid) in
  let at = Time.max at sh.s_clock in
  let h =
    { at; seq = sh.s_seq; fn; label; sched_parent = -1; owner = t;
      shard = sh.sid; cancelled = false; fired = false }
  in
  sh.s_seq <- sh.s_seq + 1;
  sh.s_live <- sh.s_live + 1;
  Heap.push sh.heap h;
  h

let schedule_at_l t ~at ~label fn =
  if t.parallel then schedule_parallel t ~at ~label fn
  else begin
    let at = Time.max at t.clock in
    let sh = t.shards.(t.cur_shard) in
    let h =
      { at; seq = t.next_seq; fn; label; sched_parent = Journal.parent_seq ();
        owner = t; shard = sh.sid; cancelled = false; fired = false }
    in
    t.next_seq <- t.next_seq + 1;
    sh.s_live <- sh.s_live + 1;
    Heap.push sh.heap h;
    if Watermark.hot () then Watermark.observe t.wm_heap (Heap.size sh.heap);
    h
  end

let schedule_l t ~delay ~label fn =
  schedule_at_l t ~at:(Time.add (now t) delay) ~label fn

let schedule_at t ~at fn = schedule_at_l t ~at ~label:Profile.unattributed fn
let schedule t ~delay fn = schedule_l t ~delay ~label:Profile.unattributed fn

(* Cross-shard scheduling. Serial modes place directly (the global
   (time, seq) order makes any placement safe); under the domains
   executor the event travels through the target's single-producer
   mailbox slot and is materialized at the next rendezvous. No handle
   is returned: a mailbox event cannot be cancelled in flight. *)
let schedule_on t ~shard:sid ~at ~label fn =
  check_sid t sid;
  if t.parallel then begin
    let me = Domain.DLS.get dls_sid in
    if me = sid then ignore (schedule_parallel t ~at ~label fn)
    else Queue.push { m_at = at; m_label = label; m_fn = fn } t.shards.(sid).inbox.(me)
  end
  else
    with_shard t sid (fun () -> ignore (schedule_at_l t ~at ~label fn))

(* Rebuild a shard's heap without cancelled entries. Re-pushing
   preserves the (time, seq) order, so compaction cannot perturb event
   ordering. *)
let compact sh =
  let keep = ref [] in
  let rec drain () =
    match Heap.pop sh.heap with
    | None -> ()
    | Some h ->
      if not h.cancelled then keep := h :: !keep;
      drain ()
  in
  drain ();
  List.iter (Heap.push sh.heap) !keep

(* Compact once cancelled handles outnumber live ones — per shard, so
   mass cancellation on one shard never scans its siblings' heaps. *)
let compaction_floor = 64

let cancel h =
  if (not h.cancelled) && not h.fired then begin
    h.cancelled <- true;
    let sh = h.owner.shards.(h.shard) in
    sh.s_live <- sh.s_live - 1;
    if Heap.size sh.heap > compaction_floor && 2 * sh.s_live < Heap.size sh.heap
    then compact sh
  end

let is_pending h = (not h.cancelled) && not h.fired

let pending_count t =
  Array.fold_left (fun acc sh -> acc + sh.s_live) 0 t.shards

let heap_size t =
  Array.fold_left (fun acc sh -> acc + Heap.size sh.heap) 0 t.shards

let events_fired t =
  Array.fold_left (fun acc sh -> acc + sh.s_fired) 0 t.shards

let shard_pending t sid =
  check_sid t sid;
  t.shards.(sid).s_live

let shard_events_fired t sid =
  check_sid t sid;
  t.shards.(sid).s_fired

let rec drop_cancelled_sh sh =
  if (not (Heap.is_empty sh.heap)) && (Heap.peek_exn sh.heap).cancelled then begin
    ignore (Heap.pop_exn sh.heap);
    drop_cancelled_sh sh
  end

(* Index of the shard holding the globally next event, or -1 when every
   heap is empty. Lowest (deadline, seq) wins; the ascending scan makes
   the lowest shard id the final tie-break (seqs are globally unique in
   serial operation, so that last rung is only reachable after a
   domains phase re-used per-shard seq streams). *)
let select t =
  let n = Array.length t.shards in
  if n = 1 then begin
    let sh = t.shards.(0) in
    drop_cancelled_sh sh;
    if Heap.is_empty sh.heap then -1 else 0
  end
  else begin
    let best = ref (-1) in
    for i = 0 to n - 1 do
      let sh = t.shards.(i) in
      drop_cancelled_sh sh;
      if not (Heap.is_empty sh.heap) then
        if !best < 0 then best := i
        else begin
          let a = Heap.peek_exn sh.heap
          and b = Heap.peek_exn t.shards.(!best).heap in
          if cmp_event a b < 0 then best := i
        end
    done;
    !best
  end

(* The dispatch loop uses the [_exn] heap accessors: no [Some] cell is
   allocated per fired event, which matters at millions of events per
   simulated second. [select] has already discarded cancelled heads. *)
let dispatch t sid =
  let sh = t.shards.(sid) in
  let h = Heap.pop_exn sh.heap in
  sh.s_live <- sh.s_live - 1;
  t.clock <- h.at;
  sh.s_clock <- h.at;
  let saved_shard = t.cur_shard in
  t.cur_shard <- sid;
  h.fired <- true;
  sh.s_fired <- sh.s_fired + 1;
  (* Journal bracket: assigns this dispatch its global seq, snapshots
     the RNG draw counter, and on exit writes the black-box ring slot
     and streams/verifies the record. Exception-safe so a trapping
     handler still leaves a complete record for the supervisor's
     black-box dump. *)
  Journal.begin_dispatch ~at:h.at ~parent:h.sched_parent ~shard:sid h.label;
  (* Flat branches, no closure: this is the hottest line in the
     simulator and a per-dispatch allocation here shows up in both
     the wallclock budget and the perf baseline. The shard frame under
     profiling prefixes every folded stack with "shardN". *)
  (if Profile.hot () then begin
     Profile.enter_event t.shard_keys.(sid);
     Profile.enter_event h.label;
     match h.fn () with
     | () ->
       Profile.exit_event ();
       Profile.exit_event ();
       Journal.end_dispatch ();
       t.cur_shard <- saved_shard
     | exception e ->
       Profile.exit_event ();
       Profile.exit_event ();
       Journal.end_dispatch ();
       t.cur_shard <- saved_shard;
       raise e
   end
   else
     match h.fn () with
     | () ->
       Journal.end_dispatch ();
       t.cur_shard <- saved_shard
     | exception e ->
       Journal.end_dispatch ();
       t.cur_shard <- saved_shard;
       raise e)

let step t =
  match select t with
  | -1 -> false
  | sid ->
    dispatch t sid;
    true

let finish_until t until =
  Option.iter
    (fun u ->
      if Time.(u > t.clock) then t.clock <- u;
      Array.iter
        (fun sh -> if Time.(u > sh.s_clock) then sh.s_clock <- u)
        t.shards)
    until

let run_interleaved ?until ?max_events t =
  let fired = ref 0 in
  let budget_ok () =
    match max_events with None -> true | Some m -> !fired < m
  in
  let rec loop () =
    match select t with
    | -1 -> finish_until t until
    | sid ->
      let h = Heap.peek_exn t.shards.(sid).heap in
      let in_window =
        match until with None -> true | Some u -> Time.(h.at <= u)
      in
      if in_window && budget_ok () then begin
        dispatch t sid;
        incr fired;
        loop ()
      end
      else if not in_window then finish_until t until
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Domains executor                                                    *)
(* ------------------------------------------------------------------ *)

(* Reusable N-party rendezvous barrier (generation-counted). *)
module Barrier = struct
  type b = {
    m : Mutex.t;
    c : Condition.t;
    parties : int;
    mutable waiting : int;
    mutable gen : int;
  }

  let make parties =
    { m = Mutex.create (); c = Condition.create (); parties; waiting = 0;
      gen = 0 }

  let wait b =
    Mutex.lock b.m;
    let g = b.gen in
    b.waiting <- b.waiting + 1;
    if b.waiting = b.parties then begin
      b.waiting <- 0;
      b.gen <- g + 1;
      Condition.broadcast b.c
    end
    else
      while b.gen = g do
        Condition.wait b.c b.m
      done;
    Mutex.unlock b.m
end

(* Materialize mailbox deliveries into the owner's heap, in producer-id
   order then send order — both deterministic in virtual time, so a
   given seed always yields the same per-shard schedule. A delivery
   whose deadline the receiver has already passed is clamped to the
   receiver's clock: rendezvous latency is bounded by one quantum. *)
let drain_inbox t sh =
  Array.iter
    (fun q ->
      while not (Queue.is_empty q) do
        let m = Queue.pop q in
        let at = Time.max m.m_at sh.s_clock in
        let h =
          { at; seq = sh.s_seq; fn = m.m_fn; label = m.m_label;
            sched_parent = -1; owner = t; shard = sh.sid; cancelled = false;
            fired = false }
        in
        sh.s_seq <- sh.s_seq + 1;
        sh.s_live <- sh.s_live + 1;
        Heap.push sh.heap h
      done)
    sh.inbox

(* Raw in-window dispatch: no journal/profile brackets (both are
   process-global and not domain-safe; the CLI refuses --journal with
   --domains, and profiled runs are serial). *)
let run_shard_window sh ~until =
  let rec loop () =
    drop_cancelled_sh sh;
    if not (Heap.is_empty sh.heap) then begin
      let h = Heap.peek_exn sh.heap in
      if Time.(h.at <= until) then begin
        ignore (Heap.pop_exn sh.heap);
        sh.s_live <- sh.s_live - 1;
        sh.s_clock <- h.at;
        h.fired <- true;
        sh.s_fired <- sh.s_fired + 1;
        h.fn ();
        loop ()
      end
    end
  in
  loop ()

(* Conservative window protocol, three barriers per round:

     drain inboxes; publish next_at
     --- barrier A ---           (every deadline published)
     shard 0 folds the minimum M into a horizon
     --- barrier B ---           (horizon visible to all)
     execute events with deadline <= M + quantum
     --- barrier C ---           (every producer's window closed)
     loop

   Barrier C is load-bearing twice over. It keeps the inbox slots
   single-threaded: a producer only pushes into a sibling's slot
   inside its window, so without C a fast shard could loop around and
   drain a slot while its producer is still pushing (Stdlib.Queue is
   not thread-safe, and delivery timing would leak wall-clock order
   into virtual time). And it makes quiescence exact: the next round's
   drain runs after *all* windows closed and before next_at is
   published, so mail sent during a shard's final window surfaces as a
   pending deadline instead of every shard publishing None and
   stranding the event. The horizon is a pure function of virtual
   time, so runs are per-seed deterministic; a shard never needs to
   look inside a sibling's window because cross-shard sends
   materialize only at the next rendezvous (lowest-virtual-time-wins,
   FIFO per producer). *)
let run_domains ?until t =
  let n = Array.length t.shards in
  Array.iter
    (fun sh ->
      sh.s_seq <- max sh.s_seq t.next_seq;
      sh.s_clock <- Time.max sh.s_clock t.clock)
    t.shards;
  let next_at = Array.make n None in
  let horizon = ref Time.zero in
  let continue_ = ref true in
  let failure = Array.make n None in
  let barrier = Barrier.make n in
  let quantum = t.quantum in
  let worker sid () =
    Domain.DLS.set dls_sid sid;
    let sh = t.shards.(sid) in
    let rec loop () =
      drain_inbox t sh;
      drop_cancelled_sh sh;
      next_at.(sid) <-
        (if Heap.is_empty sh.heap then None
         else Some (Heap.peek_exn sh.heap).at);
      Barrier.wait barrier;
      if sid = 0 then begin
        let m =
          Array.fold_left
            (fun acc o ->
              match (acc, o) with
              | None, x -> x
              | x, None -> x
              | Some a, Some b -> Some (Time.min a b))
            None next_at
        in
        continue_ :=
          (match m with
          | None -> false
          | Some m -> (
            match until with
            | Some u when Time.(m > u) -> false
            | _ ->
              horizon :=
                (let h = Time.add m quantum in
                 match until with Some u -> Time.min h u | None -> h);
              true))
      end;
      Barrier.wait barrier;
      if !continue_ then begin
        let w_end = !horizon in
        (try run_shard_window sh ~until:w_end
         with e ->
           (* Keep meeting the barriers so siblings cannot deadlock;
              the primary domain re-raises after the join. *)
           failure.(sid) <- Some e;
           Heap.clear sh.heap;
           sh.s_live <- 0);
        sh.s_clock <- Time.max sh.s_clock w_end;
        (* Barrier C: no shard may drain its inboxes (or publish its
           next deadline) until every producer's window has closed. *)
        Barrier.wait barrier;
        loop ()
      end
    in
    loop ();
    Option.iter (fun u -> sh.s_clock <- Time.max sh.s_clock u) until
  in
  t.parallel <- true;
  let saved_sid = Domain.DLS.get dls_sid in
  Domain.DLS.set dls_sid 0;
  let doms = Array.init (n - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  let fin () =
    Array.iter Domain.join doms;
    Domain.DLS.set dls_sid saved_sid;
    t.parallel <- false;
    Array.iter
      (fun sh -> if sh.s_seq > t.next_seq then t.next_seq <- sh.s_seq)
      t.shards;
    let mx =
      Array.fold_left (fun acc sh -> Time.max acc sh.s_clock) t.clock t.shards
    in
    t.clock <- (match until with Some u -> Time.max mx u | None -> mx)
  in
  (match worker 0 () with
  | () -> fin ()
  | exception e ->
    fin ();
    raise e);
  Array.iter (function Some e -> raise e | None -> ()) failure

let set_use_domains t b = t.use_domains <- b
let uses_domains t = t.use_domains

let set_quantum t q =
  if Time.(q <= Time.zero) then invalid_arg "Engine.set_quantum: quantum must be > 0";
  t.quantum <- q

let run ?until ?max_events t =
  if t.use_domains && Array.length t.shards > 1 && max_events = None then
    run_domains ?until t
  else run_interleaved ?until ?max_events t

let run_until_quiet t = run t
