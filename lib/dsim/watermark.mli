(** Capacity watermarks and typed backpressure accounting.

    Each finite resource in the simulation — the engine's event heap,
    a NIC descriptor ring, an mbuf pool's free list, a umtx wait queue
    — registers a {!cell} and reports its occupancy at the points where
    it changes. The cell keeps the current level and the high watermark
    (the run's maximum), answering the capacity-planning question the
    instantaneous {!Metrics} gauges cannot: {e how close did this
    resource come to its limit, ever}.

    Alongside levels, components report typed {!stall} events at the
    moment backpressure actually bites — a TX ring refusing a frame, an
    mbuf pool returning allocation failure, the event heap crossing a
    growth alarm. [netrepro profile] and [analyze] render both tables;
    {!publish} mirrors them into a {!Metrics} registry so the
    {!Sampler} time series and the Prometheus dump carry
    [capacity_watermark] / [capacity_watermark_high] /
    [backpressure_stalls_total] families.

    Same cost model as {!Metrics}: disabled, every [observe] is one
    load and one branch. *)

type t
(** A watermark registry. Components account into {!default}. *)

type cell
(** One tracked resource: name + labels, current level, high
    watermark, optional capacity, optional growth alarm. *)

(** Why a component stalled. [Ring_full]: a descriptor ring rejected
    an enqueue. [Pool_exhausted]: an allocation from a fixed pool
    failed. [Heap_growth]: the event heap crossed its growth alarm
    (each crossing doubles the next threshold, so an unbounded
    scheduling leak logs O(log n) stalls, not n). *)
type stall = Ring_full | Pool_exhausted | Heap_growth

val stall_name : stall -> string
(** ["ring_full"], ["pool_exhausted"], ["heap_growth"]. *)

val create : ?enabled:bool -> unit -> t
val default : t
val enabled : t -> bool
val set_enabled : t -> bool -> unit
val hot : unit -> bool
(** One load and one branch: is {!default} enabled? *)

val reset : t -> unit
(** Zero levels, high watermarks and stall counts; re-arm growth
    alarms. Cells stay interned. *)

val cell :
  t ->
  ?capacity:int ->
  ?growth_alarm:int ->
  ?labels:(string * string) list ->
  string ->
  cell
(** Intern a cell by (name, labels). [capacity] is the hard limit used
    for utilisation reporting; [growth_alarm] arms a {!Heap_growth}
    stall at that occupancy (doubling after each firing) for resources
    with no hard limit. *)

val observe : cell -> int -> unit
(** Report the resource's current occupancy. Updates the high
    watermark and fires the growth alarm when armed and crossed. No-op
    when the registry is disabled. *)

val stall : cell -> stall -> unit
(** Count one backpressure event against the cell. No-op when
    disabled. *)

val current : cell -> int
val high : cell -> int
val capacity : cell -> int option

val stall_count : t -> ?labels:(string * string) list -> string -> stall -> int
(** Total stalls of a kind recorded against the named cell; 0 when the
    cell or kind was never seen. *)

val total_stalls : t -> int

val publish : t -> Metrics.t -> unit
(** Mirror every cell into [metrics]: gauges [capacity_watermark] and
    [capacity_watermark_high] labelled [{resource=name, ...}], and
    counter [backpressure_stalls_total{resource, kind, ...}]
    incremented by the delta since the last publish. The {!Sampler}
    calls this each tick so watermarks appear in the time series. *)

val render : t -> string
(** Two-part table: per-cell current/high/capacity/utilisation, then
    per-(cell, kind) stall counts. *)

val to_json : t -> Json.t
(** [{"watermarks": [{name, labels, current, high, capacity?,
    utilisation_pct?}], "stalls": [{name, labels, kind, count}]}]. *)
