type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Non-integral floats need enough digits to survive a round-trip:
   flow-trace timestamps are ~1e8 ns with sub-ns fractions, which %.6g
   would flatten to the nearest 100 ns. 12 significant digits keeps
   0.001 ns resolution out to 1e9 ns while staying readable. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_nan f || Float.is_integer f && Float.abs f = Float.infinity
    then Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (for round-trip tests and trace validation)                  *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "short \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          (* Keep it simple: only BMP codepoints below 0x80 render as
             themselves; others become '?'. Fine for our own output. *)
          Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_opt s = match parse s with v -> Some v | exception Parse_error _ -> None

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None
