type args = (string * string) list

type kind = Complete | Instant

type record_ = {
  r_name : string;
  r_cat : string;
  r_tid : int;
  r_ts : Time.t;
  mutable r_dur : Time.t;
  r_depth : int;
  r_kind : kind;
  r_args : args;
}

type span = Disabled | Open of record_

type completed = {
  name : string;
  cat : string;
  tid : int;
  begin_ns : float;
  dur_ns : float;
  depth : int;
  args : args;
}

type t = {
  mutable enabled : bool;
  capacity : int;
  mutable count : int;
  mutable events : record_ list;  (* finished, most recent first *)
  depths : (int, int) Hashtbl.t;
  mutable tracks : (int * string) list;
  mutable next_tid : int;
}

let create ?(enabled = false) ?(capacity = 200_000) () =
  {
    enabled;
    capacity;
    count = 0;
    events = [];
    depths = Hashtbl.create 8;
    tracks = [];
    next_tid = 1;
  }

let default = create ()

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let clear t =
  t.count <- 0;
  t.events <- [];
  Hashtbl.reset t.depths;
  t.tracks <- [];
  t.next_tid <- 1

let track t name =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  t.tracks <- (tid, name) :: t.tracks;
  tid

let depth_of t tid = Option.value ~default:0 (Hashtbl.find_opt t.depths tid)

let start t ~at ?(cat = "sim") ?(tid = 0) ?(args = []) name =
  if (not t.enabled) || t.count >= t.capacity then Disabled
  else begin
    let depth = depth_of t tid in
    Hashtbl.replace t.depths tid (depth + 1);
    t.count <- t.count + 1;
    Open
      {
        r_name = name;
        r_cat = cat;
        r_tid = tid;
        r_ts = at;
        r_dur = Time.zero;
        r_depth = depth;
        r_kind = Complete;
        r_args = args;
      }
  end

let finish t ~at span =
  match span with
  | Disabled -> ()
  | Open r ->
    r.r_dur <- Time.sub at r.r_ts;
    let depth = depth_of t r.r_tid in
    if depth > 0 then Hashtbl.replace t.depths r.r_tid (depth - 1);
    t.events <- r :: t.events

let instant t ~at ?(cat = "sim") ?(tid = 0) ?(args = []) name =
  if t.enabled && t.count < t.capacity then begin
    t.count <- t.count + 1;
    t.events <-
      {
        r_name = name;
        r_cat = cat;
        r_tid = tid;
        r_ts = at;
        r_dur = Time.zero;
        r_depth = depth_of t tid;
        r_kind = Instant;
        r_args = args;
      }
      :: t.events
  end

let completed t =
  List.rev_map
    (fun r ->
      {
        name = r.r_name;
        cat = r.r_cat;
        tid = r.r_tid;
        begin_ns = Time.to_float_ns r.r_ts;
        dur_ns = Time.to_float_ns r.r_dur;
        depth = r.r_depth;
        args = r.r_args;
      })
    t.events
  |> List.sort (fun a b -> Float.compare a.begin_ns b.begin_ns)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                            *)
(* ------------------------------------------------------------------ *)

(* chrome://tracing and Perfetto expect microsecond timestamps; virtual
   nanoseconds map to fractional us. *)
let us time = Json.Float (Time.to_float_ns time /. 1_000.)

let event_json r =
  let args =
    match r.r_args with
    | [] -> []
    | kvs -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) kvs)) ]
  in
  match r.r_kind with
  | Complete ->
    Json.Obj
      ([
         ("name", Json.String r.r_name);
         ("cat", Json.String r.r_cat);
         ("ph", Json.String "X");
         ("pid", Json.Int 1);
         ("tid", Json.Int r.r_tid);
         ("ts", us r.r_ts);
         ("dur", us r.r_dur);
       ]
      @ args)
  | Instant ->
    Json.Obj
      ([
         ("name", Json.String r.r_name);
         ("cat", Json.String r.r_cat);
         ("ph", Json.String "i");
         ("s", Json.String "t");
         ("pid", Json.Int 1);
         ("tid", Json.Int r.r_tid);
         ("ts", us r.r_ts);
       ]
      @ args)

let to_chrome_trace t =
  let metadata =
    List.rev_map
      (fun (tid, name) ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.String name) ]);
          ])
      t.tracks
  in
  let events =
    t.events
    |> List.sort (fun a b ->
           match Time.compare a.r_ts b.r_ts with
           (* Equal start: the shallower (outer) span first, so viewers
              that nest by order agree with the depth we tracked. *)
           | 0 -> compare a.r_depth b.r_depth
           | c -> c)
    |> List.map event_json
  in
  Json.Obj [ ("traceEvents", Json.List (metadata @ events)) ]

let to_chrome_json t = Json.to_string (to_chrome_trace t)
