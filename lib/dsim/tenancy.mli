(** Per-tenant SLO rollups over {!Metrics}/{!Flowtrace}-style streams.

    A fleet run — many app cVMs (tenants) driving one shared stack
    compartment — produces global counters, a sampled trace registry
    and per-flow completions. This module folds those streams into one
    record per tenant: goodput, flow-completion-time percentiles down
    to p99.9, per-stage latency decomposition whose stage sums
    telescope to the end-to-end figure (the {!Core.Analyze} identity,
    here checked per tenant), crossing cost per packet, and a sampled
    drop table — plus the Jain fairness index across tenants and the
    attribution accounting the SLO gates consume.

    Ingestion is attribution-driven: the caller supplies
    [tenant_of : flow label -> tenant option] and the rollup engine
    never needs to know how flows were generated. Everything here is
    deterministic fold-and-sort; rendering order is tenant name. *)

type t

val create : unit -> t

(** {1 Ingestion} *)

val note_flow : t -> tenant:string -> bytes:int -> fct_ns:float -> unit
(** One completed flow: [bytes] of application payload delivered,
    end-to-end completion time [fct_ns]. *)

val note_packets : t -> tenant:string -> int -> unit
(** Wire packets attributable to the tenant (accumulates). *)

val note_crossings : t -> tenant:string -> int -> unit
(** Compartment-boundary crossings attributable to the tenant
    (accumulates); see {!Intravisor.crossings_by_caller}. *)

val ingest : t -> tenant_of:(string -> string option) -> Flowtrace.t -> unit
(** Fold a trace registry: each sampled trace is attributed via
    [tenant_of] on its flow label — hop-to-hop intervals land in the
    tenant's per-stage buffers (interval attributed to the stage of the
    hop ending it), the trace's end-to-end time in its e2e buffer, and
    a drop marker in its sampled drop table. The registry's global
    drop-attribution table and origin/sample/drop totals accumulate
    into this rollup's globals. Traces [tenant_of] cannot map are
    counted, not lost. *)

(** {1 Rollup} *)

type rollup = {
  r_tenant : string;
  r_flows : int;
  r_bytes : int;
  r_goodput_mbit : float;  (** Payload bits over the run duration. *)
  r_fct_p50_ns : float;
  r_fct_p90_ns : float;
  r_fct_p99_ns : float;
  r_fct_p999_ns : float;
  r_traces : int;  (** Sampled traces with >= 2 hops. *)
  r_stage_p50_ns : (string * float) list;
      (** Median interval per stage, pipeline order, sampled stages
          only. *)
  r_stage_mean_sum_ns : float;
      (** Sum over stages of mean interval: telescopes exactly to
          {!r_e2e_mean_ns} when ingestion is sound (means are additive;
          medians are reported but are not). *)
  r_e2e_mean_ns : float;
  r_e2e_p50_ns : float;
  r_crossings : int;
  r_packets : int;
  r_crossings_per_packet : float;  (** 0 when no packets recorded. *)
  r_drops : (string * string * int) list;
      (** Sampled drops [(stage, reason, count)], first-seen order. *)
}

val rollup : t -> duration_ns:float -> rollup list
(** One entry per tenant, sorted by tenant name. *)

val jain : float list -> float
(** Jain's fairness index [(Σx)² / (n·Σx²)]: 1.0 for a perfectly even
    allocation, 1/n when one tenant takes everything. Defined as 1.0
    for the empty and all-zero allocations. *)

(** {1 Global accounting (the gate inputs)} *)

val drop_table : t -> (string * string * int) list
(** Ingested global drop-attribution table [(stage, reason, count)],
    first-seen order — complete, not sampled. *)

val dropped_frames : t -> int
(** Total drops the ingested registries recorded. *)

val attributed_drops : t -> int
(** Sum of {!drop_table} counts. 100% drop attribution holds iff this
    equals {!dropped_frames}. *)

val origins : t -> int
val sampled : t -> int

val unattributed_traces : t -> int
(** Sampled traces whose flow label mapped to no tenant. *)
