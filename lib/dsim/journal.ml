(* Deterministic flight recorder: every Engine dispatch becomes a
   compact record. Process-global (like Metrics/Flowtrace) because the
   dispatch stream it journals is itself a process-global total order,
   even when several engines run in sequence. *)

(* Schema 2 added the per-dispatch shard id ("sh"); schema 1 journals
   load with every dispatch on shard 0. *)
let schema = "netrepro-journal/2"
let schema_v1 = "netrepro-journal/1"

type dispatch = {
  d_seq : int;
  d_at_ns : int;
  d_label : string;
  d_parent : int;
  d_rng : int;
  d_shard : int;
}

let dispatch_json d =
  Json.Obj
    [
      ("seq", Json.Int d.d_seq);
      ("at_ns", Json.Int d.d_at_ns);
      ("label", Json.String d.d_label);
      ("parent", Json.Int d.d_parent);
      ("rng_draws", Json.Int d.d_rng);
      ("shard", Json.Int d.d_shard);
    ]

(* ------------------------------------------------------------------ *)
(* Loaded journals                                                      *)
(* ------------------------------------------------------------------ *)

type loaded = {
  l_header : Json.t;
  l_labels : string array;
  l_at : int array;
  l_label : int array;
  l_parent : int array;
  l_rng : int array;
  l_shard : int array;
  l_chaos : int;
  l_supervisor : int;
  l_faults : int;
}

let header l = l.l_header
let dispatch_count l = Array.length l.l_at
let aux_counts l = (l.l_chaos, l.l_supervisor, l.l_faults)

let dispatch_at l i =
  {
    d_seq = i;
    d_at_ns = l.l_at.(i);
    d_label =
      (let li = l.l_label.(i) in
       if li >= 0 && li < Array.length l.l_labels then l.l_labels.(li)
       else Printf.sprintf "<label#%d>" li);
    d_parent = l.l_parent.(i);
    d_rng = l.l_rng.(i);
    d_shard = l.l_shard.(i);
  }

let context l ~seq ~k =
  let n = dispatch_count l in
  let lo = max 0 (seq - k) and hi = min (n - 1) (seq + k) in
  let rec build i acc = if i < lo then acc else build (i - 1) (dispatch_at l i :: acc) in
  if n = 0 || lo > hi then [] else build hi []

(* ------------------------------------------------------------------ *)
(* Verification                                                         *)
(* ------------------------------------------------------------------ *)

type mismatch = {
  mm_seq : int;
  mm_field : string;
  mm_expected : dispatch option;
  mm_actual : dispatch option;
}

type verify_outcome = {
  vo_checked : int;
  vo_total : int;
  vo_mismatch : mismatch option;
}

(* ------------------------------------------------------------------ *)
(* Recorder state                                                       *)
(* ------------------------------------------------------------------ *)

type sink = To_file of string | To_buffer of Buffer.t

type record_state = {
  rs_buf : Buffer.t;
  rs_oc : out_channel option;
  (* Profile key id -> compact per-file label id, emitted on first use. *)
  rs_label_ids : (int, int) Hashtbl.t;
  mutable rs_next_label : int;
}

type verify_state = {
  vs : loaded;
  mutable vs_checked : int;
  mutable vs_mismatch : mismatch option;
}

type mode = Off | Record of record_state | Verify of verify_state

let mode = ref Off

(* In-flight dispatch (the engine dispatch loop is not reentrant). *)
let next_seq = ref 0
let cur_seq = ref (-1)
let cur_at = ref 0
let cur_parent = ref (-1)
let cur_key = ref Profile.unattributed
let cur_rng0 = ref 0
let cur_shard = ref 0

(* Crash black box: a bounded ring of the last completed dispatches,
   always on, preallocated — recording a slot is a handful of unboxed
   stores and no I/O happens until a dump is requested. *)
type ring = {
  mutable rg_seq : int array;
  mutable rg_at : int array;
  mutable rg_key : Profile.key array;
  mutable rg_parent : int array;
  mutable rg_rng : int array;
  mutable rg_shard : int array;
  mutable rg_n : int;  (* total dispatches ever recorded *)
  mutable rg_next : int;  (* = rg_n mod capacity, kept to spare the hot
                             path an integer division per dispatch *)
}

let default_ring_size = 512

let make_ring n =
  {
    rg_seq = Array.make n (-1);
    rg_at = Array.make n 0;
    rg_key = Array.make n Profile.unattributed;
    rg_parent = Array.make n (-1);
    rg_rng = Array.make n 0;
    rg_shard = Array.make n 0;
    rg_n = 0;
    rg_next = 0;
  }

let ring = ref (make_ring default_ring_size)

let set_ring_size n =
  if n < 1 then invalid_arg "Journal.set_ring_size: size must be >= 1";
  ring := make_ring n

let ring_size () = Array.length !ring.rg_seq

let key_label k =
  let c, v, s = Profile.key_triple k in
  c ^ ":" ^ v ^ ":" ^ s

let blackbox () =
  let r = !ring in
  let cap = Array.length r.rg_seq in
  let count = min r.rg_n cap in
  let rec build i acc =
    if i < 0 then acc
    else
      let slot = (r.rg_n - 1 - i) mod cap in
      build (i - 1)
        ({
           d_seq = r.rg_seq.(slot);
           d_at_ns = r.rg_at.(slot);
           d_label = key_label r.rg_key.(slot);
           d_parent = r.rg_parent.(slot);
           d_rng = r.rg_rng.(slot);
           d_shard = r.rg_shard.(slot);
         }
        :: acc)
  in
  List.rev (build (count - 1) [])

let in_flight () =
  if !cur_seq < 0 then None
  else
    Some
      {
        d_seq = !cur_seq;
        d_at_ns = !cur_at;
        d_label = key_label !cur_key;
        d_parent = !cur_parent;
        d_rng = Rng.draws () - !cur_rng0;
        d_shard = !cur_shard;
      }

let blackbox_json () =
  Json.Obj
    [
      ("schema", Json.String "netrepro-blackbox/1");
      ("ring", Json.List (List.map dispatch_json (blackbox ())));
      ( "in_flight",
        match in_flight () with Some d -> dispatch_json d | None -> Json.Null );
    ]

(* ------------------------------------------------------------------ *)
(* Recording                                                            *)
(* ------------------------------------------------------------------ *)

let flush_threshold = 1 lsl 20

let emit rs line =
  Buffer.add_string rs.rs_buf (Json.to_string line);
  Buffer.add_char rs.rs_buf '\n';
  match rs.rs_oc with
  | Some oc when Buffer.length rs.rs_buf >= flush_threshold ->
    output_string oc (Buffer.contents rs.rs_buf);
    Buffer.clear rs.rs_buf
  | _ -> ()

let recording () = match !mode with Record _ -> true | _ -> false
let verifying () = match !mode with Verify _ -> true | _ -> false

let stop () =
  (match !mode with
  | Record rs -> (
    match rs.rs_oc with
    | Some oc ->
      output_string oc (Buffer.contents rs.rs_buf);
      Buffer.clear rs.rs_buf;
      close_out oc
    | None -> ())
  | Verify _ | Off -> ());
  mode := Off

let reset_counters () =
  next_seq := 0;
  cur_seq := -1

let record_to ?(header = []) sink =
  stop ();
  reset_counters ();
  let buf, oc =
    match sink with
    | To_buffer b ->
      Buffer.clear b;
      (b, None)
    | To_file path -> (Buffer.create 65536, Some (open_out path))
  in
  let rs =
    { rs_buf = buf; rs_oc = oc; rs_label_ids = Hashtbl.create 64;
      rs_next_label = 0 }
  in
  emit rs (Json.Obj (("schema", Json.String schema) :: header));
  mode := Record rs

let label_id rs k =
  let kid = Profile.key_id k in
  match Hashtbl.find_opt rs.rs_label_ids kid with
  | Some id -> id
  | None ->
    let id = rs.rs_next_label in
    rs.rs_next_label <- id + 1;
    Hashtbl.replace rs.rs_label_ids kid id;
    let c, v, s = Profile.key_triple k in
    emit rs
      (Json.Obj
         [
           ("t", Json.String "l");
           ("id", Json.Int id);
           ("c", Json.String c);
           ("v", Json.String v);
           ("s", Json.String s);
         ]);
    id

(* ------------------------------------------------------------------ *)
(* Hot path (engine dispatch hooks)                                     *)
(* ------------------------------------------------------------------ *)

let parent_seq () = !cur_seq

let begin_dispatch ~at ~parent ~shard key =
  cur_seq := !next_seq;
  next_seq := !next_seq + 1;
  cur_at := Int64.to_int (Time.to_ns at);
  cur_parent := parent;
  cur_key := key;
  cur_shard := shard;
  cur_rng0 := Rng.draws ()

let check_dispatch vs ~seq ~at ~parent ~rng ~shard key =
  if vs.vs_mismatch = None then begin
    let n = dispatch_count vs.vs in
    let actual =
      { d_seq = seq; d_at_ns = at; d_label = key_label key;
        d_parent = parent; d_rng = rng; d_shard = shard }
    in
    if seq >= n then
      vs.vs_mismatch <-
        Some
          {
            mm_seq = seq;
            mm_field = "extra_dispatch";
            mm_expected = None;
            mm_actual = Some actual;
          }
    else begin
      let exp = dispatch_at vs.vs seq in
      let field =
        if exp.d_at_ns <> at then Some "virtual_time"
        else if not (String.equal exp.d_label actual.d_label) then Some "label"
        else if exp.d_parent <> parent then Some "causal_parent"
        else if exp.d_rng <> rng then Some "rng_draws"
        else if exp.d_shard <> shard then Some "shard"
        else None
      in
      match field with
      | None -> vs.vs_checked <- vs.vs_checked + 1
      | Some f ->
        vs.vs_mismatch <-
          Some
            {
              mm_seq = seq;
              mm_field = f;
              mm_expected = Some exp;
              mm_actual = Some actual;
            }
    end
  end

let end_dispatch () =
  let seq = !cur_seq in
  if seq >= 0 then begin
    let key = !cur_key in
    let at = !cur_at and parent = !cur_parent in
    let shard = !cur_shard in
    let rng = Rng.draws () - !cur_rng0 in
    Profile.add_rng_draws key rng;
    (* Black-box ring slot: unboxed stores only, no division. *)
    let r = !ring in
    let slot = r.rg_next in
    r.rg_seq.(slot) <- seq;
    r.rg_at.(slot) <- at;
    r.rg_key.(slot) <- key;
    r.rg_parent.(slot) <- parent;
    r.rg_rng.(slot) <- rng;
    r.rg_shard.(slot) <- shard;
    r.rg_n <- r.rg_n + 1;
    let nxt = slot + 1 in
    r.rg_next <- (if nxt = Array.length r.rg_seq then 0 else nxt);
    (match !mode with
    | Off -> ()
    | Record rs ->
      let lid = label_id rs key in
      emit rs
        (Json.Obj
           [
             ("t", Json.String "d");
             ("q", Json.Int seq);
             ("at", Json.Int at);
             ("l", Json.Int lid);
             ("p", Json.Int parent);
             ("r", Json.Int rng);
             ("sh", Json.Int shard);
           ])
    | Verify vs -> check_dispatch vs ~seq ~at ~parent ~rng ~shard key);
    cur_seq := -1
  end

(* ------------------------------------------------------------------ *)
(* Aux records (chaos / supervisor / capability faults)                 *)
(* ------------------------------------------------------------------ *)

let note_chaos ~kind ~id ~at_ns ~target =
  match !mode with
  | Record rs ->
    emit rs
      (Json.Obj
         [
           ("t", Json.String "c");
           ("q", Json.Int (parent_seq ()));
           ("kind", Json.String kind);
           ("id", Json.Int id);
           ("at", Json.Float at_ns);
           ("target", Json.String target);
         ])
  | Off | Verify _ -> ()

let note_supervisor ~cvm ~old_state ~new_state =
  match !mode with
  | Record rs ->
    emit rs
      (Json.Obj
         [
           ("t", Json.String "s");
           ("q", Json.Int (parent_seq ()));
           ("cvm", Json.String cvm);
           ("old", Json.String old_state);
           ("new", Json.String new_state);
         ])
  | Off | Verify _ -> ()

let note_fault ~cvm ~fault =
  match !mode with
  | Record rs ->
    emit rs
      (Json.Obj
         [
           ("t", Json.String "f");
           ("q", Json.Int (parent_seq ()));
           ("cvm", Json.String cvm);
           ("fault", Json.String fault);
         ])
  | Off | Verify _ -> ()

(* ------------------------------------------------------------------ *)
(* Verify driver                                                        *)
(* ------------------------------------------------------------------ *)

let verify_against l =
  stop ();
  reset_counters ();
  mode := Verify { vs = l; vs_checked = 0; vs_mismatch = None }

let verify_finish () =
  match !mode with
  | Verify vs ->
    mode := Off;
    let total = dispatch_count vs.vs in
    let mismatch =
      match vs.vs_mismatch with
      | Some _ as m -> m
      | None when vs.vs_checked < total ->
        Some
          {
            mm_seq = vs.vs_checked;
            mm_field = "missing_dispatch";
            mm_expected = Some (dispatch_at vs.vs vs.vs_checked);
            mm_actual = None;
          }
      | None -> None
    in
    { vo_checked = vs.vs_checked; vo_total = total; vo_mismatch = mismatch }
  | Off | Record _ ->
    invalid_arg "Journal.verify_finish: no verification in progress"

let reset () =
  stop ();
  reset_counters ();
  ring := make_ring (ring_size ())

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

let int_member name j =
  match Json.member name j with Some (Json.Int i) -> Some i | _ -> None

let str_member name j =
  match Json.member name j with Some (Json.String s) -> Some s | _ -> None

let load_lines lines =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match lines with
  | [] -> Error "empty journal"
  | header_line :: rest -> (
    match Json.parse_opt header_line with
    | None -> Error "journal header is not valid JSON"
    | Some hdr -> (
      match str_member "schema" hdr with
      | Some s when String.equal s schema || String.equal s schema_v1 -> (
        let labels = Hashtbl.create 64 in
        let max_label = ref (-1) in
        let ats = ref [] and lbls = ref [] and parents = ref [] in
        let rngs = ref [] and shards_ = ref [] in
        let n = ref 0 in
        let chaos = ref 0 and sup = ref 0 and faults = ref 0 in
        let exception Bad of string in
        try
          List.iteri
            (fun lineno line ->
              if String.length line > 0 then
                match Json.parse_opt line with
                | None ->
                  raise (Bad (Printf.sprintf "line %d: invalid JSON" (lineno + 2)))
                | Some j -> (
                  match str_member "t" j with
                  | Some "l" -> (
                    match (int_member "id" j, str_member "c" j,
                           str_member "v" j, str_member "s" j)
                    with
                    | Some id, Some c, Some v, Some s ->
                      Hashtbl.replace labels id (c ^ ":" ^ v ^ ":" ^ s);
                      if id > !max_label then max_label := id
                    | _ ->
                      raise
                        (Bad (Printf.sprintf "line %d: malformed label record"
                                (lineno + 2))))
                  | Some "d" -> (
                    match (int_member "q" j, int_member "at" j,
                           int_member "l" j, int_member "p" j,
                           int_member "r" j)
                    with
                    | Some q, Some at, Some l, Some p, Some r ->
                      if q <> !n then
                        raise
                          (Bad
                             (Printf.sprintf
                                "line %d: dispatch seq %d out of order \
                                 (expected %d)"
                                (lineno + 2) q !n));
                      ats := at :: !ats;
                      lbls := l :: !lbls;
                      parents := p :: !parents;
                      rngs := r :: !rngs;
                      shards_ := Option.value ~default:0 (int_member "sh" j) :: !shards_;
                      incr n
                    | _ ->
                      raise
                        (Bad
                           (Printf.sprintf "line %d: malformed dispatch record"
                              (lineno + 2))))
                  | Some "c" -> incr chaos
                  | Some "s" -> incr sup
                  | Some "f" -> incr faults
                  | Some other ->
                    raise
                      (Bad
                         (Printf.sprintf "line %d: unknown record type %S"
                            (lineno + 2) other))
                  | None ->
                    raise
                      (Bad (Printf.sprintf "line %d: record without \"t\" tag"
                              (lineno + 2)))))
            rest;
          let label_arr =
            Array.init (!max_label + 1) (fun i ->
                Option.value ~default:(Printf.sprintf "<label#%d>" i)
                  (Hashtbl.find_opt labels i))
          in
          let arr l = Array.of_list (List.rev l) in
          Ok
            {
              l_header = hdr;
              l_labels = label_arr;
              l_at = arr !ats;
              l_label = arr !lbls;
              l_parent = arr !parents;
              l_rng = arr !rngs;
              l_shard = arr !shards_;
              l_chaos = !chaos;
              l_supervisor = !sup;
              l_faults = !faults;
            }
        with Bad m -> Error m)
      | Some s -> err "unsupported journal schema %S (expected %S)" s schema
      | None -> Error "journal header missing \"schema\""))

let load_string s = load_lines (String.split_on_char '\n' s)

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> (
    match load_string contents with
    | Ok l -> Ok l
    | Error m -> Error (path ^ ": " ^ m))
  | exception Sys_error m -> Error m
