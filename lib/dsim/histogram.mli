(** Log-bucketed histograms for latency distributions.

    The contended ff_write distribution (Fig. 6) spans ns to tens of µs;
    a geometric bucket ladder renders it readably where a linear one
    cannot. Buckets are [\[lo·r^i, lo·r^i+1)]. *)

type t

val create : ?lo:float -> ?ratio:float -> ?buckets:int -> unit -> t
(** Defaults: lo = 1.0, ratio = 2.0 (doubling), 40 buckets — covers
    1 ns to ~10^12 ns. Values below [lo] land in the first bucket,
    beyond the ladder in the last. *)

val add : t -> float -> unit
val add_stats : t -> Stats.t -> t
(** Fold a sample buffer in; returns the histogram for chaining. *)

val count : t -> int
val bucket_count : t -> int

val bucket_range : t -> int -> float * float
(** [lo, hi) of bucket [i]. *)

val bucket_value : t -> int -> int

val percentile : t -> float -> float
(** [percentile t p] estimates the [p]-th percentile ([0..100], e.g.
    [99.9]) by geometric interpolation inside the covering bucket;
    [0.] on an empty histogram. *)

val nonempty_buckets : t -> (int * float * float * int) list
(** [(index, lo, hi, count)] for buckets holding samples, ascending. *)

val render : ?width:int -> t -> string
(** ASCII bar chart of the non-empty buckets, one line per bucket. *)
