type oob = { raise_oob : 'a. addr:int -> len:int -> detail:string -> 'a }

let default_oob =
  {
    raise_oob =
      (fun ~addr ~len ~detail ->
        invalid_arg
          (Printf.sprintf "Slice: access [%d,+%d) %s" addr len detail));
  }

type t = { base : bytes; off : int; len : int; abs : int; oob : oob }

let make ?(abs = 0) ?(oob = default_oob) base ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length base then
    invalid_arg
      (Printf.sprintf "Slice.make: window [%d,+%d) outside 0..%d" off len
         (Bytes.length base));
  { base; off; len; abs; oob }

let of_bytes b = { base = b; off = 0; len = Bytes.length b; abs = 0; oob = default_oob }

let length t = t.len
let base t = t.base
let base_off t = t.off
let absolute t = t.abs

let check t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then
    t.oob.raise_oob ~addr:(t.abs + off) ~len
      ~detail:(Printf.sprintf "outside slice [0x%x,+0x%x)" t.abs t.len)

let sub t ~off ~len =
  check t ~off ~len;
  { t with off = t.off + off; len; abs = t.abs + off }

let get_u8 t off =
  check t ~off ~len:1;
  Char.code (Bytes.get t.base (t.off + off))

let set_u8 t off v =
  check t ~off ~len:1;
  Bytes.set t.base (t.off + off) (Char.chr (v land 0xff))

let get_u16_be t off =
  check t ~off ~len:2;
  let i = t.off + off in
  (Char.code (Bytes.get t.base i) lsl 8) lor Char.code (Bytes.get t.base (i + 1))

let set_u16_be t off v =
  check t ~off ~len:2;
  let i = t.off + off in
  Bytes.set t.base i (Char.chr ((v lsr 8) land 0xff));
  Bytes.set t.base (i + 1) (Char.chr (v land 0xff))

let get_u32_be t off =
  check t ~off ~len:4;
  let i = t.off + off in
  let b k = Char.code (Bytes.get t.base (i + k)) in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let set_u32_be t off v =
  check t ~off ~len:4;
  let i = t.off + off in
  Bytes.set t.base i (Char.chr ((v lsr 24) land 0xff));
  Bytes.set t.base (i + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set t.base (i + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set t.base (i + 3) (Char.chr (v land 0xff))

let to_bytes t = Bytes.sub t.base t.off t.len

let blit_to t ~off ~len ~dst ~dst_off =
  check t ~off ~len;
  Bytes.blit t.base (t.off + off) dst dst_off len

let blit_from t ~off ~src ~src_off ~len =
  check t ~off ~len;
  Bytes.blit src src_off t.base (t.off + off) len
