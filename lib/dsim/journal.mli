(** Deterministic flight recorder: event journaling, replay
    verification, and a crash black box.

    The simulator's claim to determinism is only as strong as the tools
    that can falsify it. This module records every {!Engine} dispatch as
    a compact record — monotone sequence number, virtual time, the
    interned [(component, cvm, stage)] label the event was scheduled
    under, the sequence number of the dispatch that {e scheduled} it
    (the causal parent edge), and the number of {!Rng} draws the handler
    made — interleaved with {!Chaos} injections, supervisor lifecycle
    verdicts and capability-fault records, streamed to a versioned
    [*.journal.jsonl] file.

    Three consumers sit on top:

    - {b replay verification} ([netrepro replay]): re-execute the run
      with the recorded seed in {!verify_against} mode; every dispatch
      is compared against the journal and the first mismatch is
      reported with a ±K-event context window.
    - {b first-divergence diffing} ([netrepro jdiff]): load two
      journals, find the first diverging sequence number, and walk
      parent edges back to the last common ancestor ([Core.Jdiff]).
    - {b crash black box}: an always-on bounded ring of the last N
      completed dispatch records — preallocated parallel arrays, a few
      unboxed stores per event and no I/O until a dump — which
      [Capvm.Supervisor] serializes alongside its verdict on any trap.

    Like {!Metrics} and {!Profile}, the recorder is process-global and
    zero-cost-when-disabled: with neither recording nor verification
    armed, the engine's per-dispatch overhead is the ring-slot stores
    and one branch — Fig. 4 / Table II outputs are bit-identical with
    journaling on or off (regression-tested).

    {b File format} ([netrepro-journal/2]): JSONL. Line 1 is a header
    [{"schema": "netrepro-journal/2", ...}] carrying caller metadata
    (experiment ids, seed, profile) used by replay. Subsequent lines are
    tagged by ["t"]: ["l"] interns a label (file-local [id] — journals
    are byte-comparable across processes), ["d"] is a dispatch
    [{"q": seq, "at": ns, "l": label, "p": parent, "r": rng_draws,
    "sh": shard}], and ["c"]/["s"]/["f"] are chaos-injection,
    supervisor-transition and capability-fault annotations stamped with
    the in-flight dispatch's [q]. Schema 1 journals (no ["sh"] field)
    still load, with every dispatch on shard 0. *)

(** {1 Records} *)

type dispatch = {
  d_seq : int;  (** Dispatch order, 0-based, monotone. *)
  d_at_ns : int;  (** Virtual time (integral ns). *)
  d_label : string;  (** ["component:cvm:stage"]. *)
  d_parent : int;
      (** Seq of the dispatch whose handler scheduled this event; [-1]
          when scheduled outside any dispatch (setup code). *)
  d_rng : int;  (** {!Rng} draws made by the handler. *)
  d_shard : int;  (** {!Engine} shard the event was dispatched on. *)
}

val dispatch_json : dispatch -> Json.t

(** {1 Hot path} — called by {!Engine.step}; everything else treats
    these as internal. *)

val parent_seq : unit -> int
(** Seq of the currently dispatching event, [-1] outside dispatch.
    {!Engine.schedule_at_l} captures this at schedule time as the new
    handle's causal parent. *)

val begin_dispatch : at:Time.t -> parent:int -> shard:int -> Profile.key -> unit
(** Open dispatch [next_seq]: snapshot {!Rng.draws} and stash the
    label/parent. Dispatches must not nest (the engine loop is not
    reentrant). *)

val end_dispatch : unit -> unit
(** Close the in-flight dispatch: compute the RNG-draw delta, charge it
    via {!Profile.add_rng_draws}, write the black-box ring slot, then
    stream (recording) or compare (verifying) the record. The engine
    calls this on both normal and exceptional handler exit. *)

(** {1 Annotations} — no-ops unless recording. *)

val note_chaos : kind:string -> id:int -> at_ns:float -> target:string -> unit
val note_supervisor : cvm:string -> old_state:string -> new_state:string -> unit
val note_fault : cvm:string -> fault:string -> unit

(** {1 Recording} *)

type sink = To_file of string | To_buffer of Buffer.t

val record_to : ?header:(string * Json.t) list -> sink -> unit
(** Arm recording: stop any active recording/verification, reset the
    dispatch sequence to 0, and emit the header line ([header] fields
    are appended after ["schema"]). [To_buffer] clears the buffer
    first. *)

val recording : unit -> bool
val verifying : unit -> bool

val stop : unit -> unit
(** Flush and close the active sink (if any) and disarm. Idempotent. *)

val reset : unit -> unit
(** {!stop}, reset sequence numbers and clear the black-box ring.
    Tests call this between cases. *)

(** {1 Loading} *)

type loaded
(** A parsed journal: header plus column arrays of dispatch records. *)

val load : string -> (loaded, string) result
val load_string : string -> (loaded, string) result

val header : loaded -> Json.t
val dispatch_count : loaded -> int

val aux_counts : loaded -> int * int * int
(** [(chaos, supervisor, fault)] annotation-line counts. *)

val dispatch_at : loaded -> int -> dispatch
(** 0-based; out-of-range label ids render as ["<label#N>"]. *)

val context : loaded -> seq:int -> k:int -> dispatch list
(** The recorded dispatches with seq in [[seq-k, seq+k]], clipped to
    the journal — the ±K window shown around a mismatch. *)

(** {1 Replay verification} *)

type mismatch = {
  mm_seq : int;
  mm_field : string;
      (** ["virtual_time"] | ["label"] | ["causal_parent"] |
          ["rng_draws"] | ["extra_dispatch"] (live run outran the
          journal) | ["missing_dispatch"] (journal outran the run). *)
  mm_expected : dispatch option;  (** From the journal; [None] on extra. *)
  mm_actual : dispatch option;  (** From the live run; [None] on missing. *)
}

type verify_outcome = {
  vo_checked : int;  (** Dispatches that matched. *)
  vo_total : int;  (** Dispatches in the journal. *)
  vo_mismatch : mismatch option;  (** First divergence, if any. *)
}

val verify_against : loaded -> unit
(** Arm verification: each subsequent {!end_dispatch} compares the live
    dispatch to the journal's record at the same seq. Comparison stops
    at the first mismatch; the run itself is never interrupted. *)

val verify_finish : unit -> verify_outcome
(** Disarm and report. A clean run that fired fewer dispatches than the
    journal yields a ["missing_dispatch"] mismatch.
    @raise Invalid_argument if verification is not armed. *)

(** {1 Crash black box} *)

val set_ring_size : int -> unit
(** Replace the ring (default 512 slots); clears its contents. *)

val ring_size : unit -> int
(** The current ring capacity. *)

val blackbox : unit -> dispatch list
(** The last [min ring-size total] completed dispatches, oldest
    first. *)

val in_flight : unit -> dispatch option
(** The dispatch currently executing, with its RNG-draw count so far —
    on a trap, this is the record of the faulting handler. *)

val blackbox_json : unit -> Json.t
(** [{"schema": "netrepro-blackbox/1", "ring": [...], "in_flight":
    ...}] — what the supervisor embeds in its dump. *)
