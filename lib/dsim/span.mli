(** Cross-layer tracing spans on the virtual clock.

    A span collector records begin/end intervals (and point events)
    against {!Time}, nestable per track, and exports them as Chrome
    [trace_event] JSON for chrome://tracing or Perfetto. The CLI wires
    the {!default} collector to [netrepro ... --trace-json FILE].

    Like {!Trace} and {!Metrics}, collection is off by default and a
    disabled collector costs one branch per call — {!start} returns a
    preallocated dummy span, so the measurement loops pay nothing. *)

type t
(** A collector. *)

type span
(** An open span; finish it with {!finish}. Spans from a disabled
    collector are inert. *)

type args = (string * string) list

type completed = {
  name : string;
  cat : string;
  tid : int;
  begin_ns : float;
  dur_ns : float;
  depth : int;  (** Nesting level within the track at start time. *)
  args : args;
}

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** Disabled by default; at most [capacity] (default 200k) events are
    kept, later ones are dropped. *)

val default : t
(** Process-wide collector the simulator layers emit into. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
val clear : t -> unit

val track : t -> string -> int
(** Allocate a track (a Chrome "thread") with a display name; pass the
    returned id as [tid] so concurrent components get separate swim
    lanes. Track 0 is the unnamed default. *)

val start : t -> at:Time.t -> ?cat:string -> ?tid:int -> ?args:args -> string -> span
val finish : t -> at:Time.t -> span -> unit
(** Spans on one track must finish in LIFO order for the recorded
    nesting depths to be meaningful. Unfinished spans are not
    exported. *)

val instant : t -> at:Time.t -> ?cat:string -> ?tid:int -> ?args:args -> string -> unit
(** A zero-duration point event. *)

val completed : t -> completed list
(** Finished spans and instants, ordered by begin time. *)

val to_chrome_trace : t -> Json.t
(** [{"traceEvents": [...]}] — "X" complete events, "i" instants, and
    "M" thread-name metadata, timestamps in microseconds. *)

val to_chrome_json : t -> string
