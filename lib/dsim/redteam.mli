(** Red-team attack ledger: a typed corpus of network-borne attacks
    with per-attack verdict accounting.

    The chaos ledger ({!Chaos}) answers "did a random fault get
    attributed?"; this ledger answers the adversarial version: "did a
    {e deliberately crafted} attack end in a typed verdict?" Every
    attack the generator launches is registered here, and must resolve
    to exactly one of:

    - {b Caught}: the stack converted the attack into a typed artifact
      — a {!Flowtrace} drop reason, a watermark backpressure stall, or
      a [Cheri.Fault.Capability_fault] contained by the supervisor —
      with the stage and reason recorded, plus a provenance cross
      reference naming what stopped it;
    - {b Leaked}: the MMU-only baseline model let the attack corrupt
      or exfiltrate state silently; the ledger records the observed
      damage (this outcome is the baseline's {e expected} result and a
      CHERI scenario's failure);
    - {b Pending}: not yet resolved — a report with pending attacks
      fails its gate.

    Like every dsim subsystem, the ledger is deterministic: corpus
    randomness flows from the seed via {!Rng}, and a disarmed ledger
    ([set_armed t false]) records nothing, so linking the module leaves
    un-attacked runs bit-identical. *)

(** Attack class, the taxonomy axis of the corpus. *)
type cls =
  | Parser_bounds  (** Malformed headers, lying lengths, fragments. *)
  | Temporal  (** Close races: blind RST/FIN/SYN, stale-fd epoll. *)
  | Resource  (** Floods driving pools into typed backpressure. *)
  | Cross_tenant  (** Probes at sibling cVMs through the shared stack. *)

val cls_name : cls -> string
val all_classes : cls list

type outcome =
  | Pending
  | Caught of { stage : string; reason : string }
  | Leaked of { detail : string }

type launch = {
  id : int;
  cls : cls;
  name : string;  (** Corpus entry, e.g. ["ipv4_lying_total_len"]. *)
  at_ns : float;
  target : string;  (** Victim cVM / flow the attack aims at. *)
  mutable outcome : outcome;
  mutable provenance : string option;
      (** Which capability (or typed check) stopped it. *)
  mutable blackbox : string option;
      (** Supervisor blackbox file holding the fault snapshot. *)
}

type t

val create : seed:int64 -> t
val seed : t -> int64

val armed : t -> bool
val set_armed : t -> bool -> unit
(** A disarmed ledger refuses {!launch} (returns [-1]) and resolves
    nothing: the linked-but-disabled bit-identity gate. *)

val rng : t -> Rng.t
(** The corpus generator's RNG stream; all attack randomness (probe
    ports, forged sequence numbers, flood sizes) must come from here
    so a seed pins the whole corpus. *)

val launch : t -> cls -> name:string -> at_ns:float -> target:string -> int
(** Register an attack the generator is about to perform; returns its
    ledger id ([-1] when disarmed). *)

val resolve_caught : t -> int -> stage:string -> reason:string -> unit
(** Resolve a pending attack as typed-and-attributed. No-op on an
    already-resolved id (first verdict wins). *)

val resolve_leaked : t -> int -> detail:string -> unit
(** Resolve a pending attack as silent corruption/leak (baseline). *)

val set_provenance : t -> int -> string -> unit
val set_blackbox : t -> int -> string -> unit

val find : t -> int -> launch option
val launches : t -> launch list
(** Launch order. *)

val launched_count : t -> int
val pending_count : t -> int
val caught_count : t -> int
val leaked_count : t -> int

type tally = { t_launched : int; t_caught : int; t_leaked : int; t_pending : int }

val counts : t -> (cls * tally) list
(** Per-class tallies for every class in {!all_classes}. *)

val to_json : t -> Json.t
