(* Shared on/off flag, same idiom as Metrics: the engine's dispatch loop
   reads one mutable bool and branches — the whole disabled-path cost. *)
type switch = { mutable on : bool }

type key = {
  k_id : int;
  k_component : string;
  k_cvm : string;
  k_stage : string;
  mutable k_events : int;
  mutable k_self_ns : int;
  mutable k_cum_ns : int;
  (* RNG draws made while a handler scheduled under this key was
     dispatching (always-on — the engine adds the per-dispatch delta
     even when profiling is off, so stray-RNG nondeterminism is visible
     without any instrument enabled). [k_rng_pub] is the high-water
     mark already mirrored into a Metrics registry by
     [publish_rng_draws]. *)
  mutable k_rng : int;
  mutable k_rng_pub : int;
}

(* Folded-stack tree: one node per (parent path, key) pair actually
   observed, accumulating self wall time. Children are keyed by the
   key's id — keys are mutable records, so structural hashing would
   change under their own accumulators. *)
type node = {
  n_key : key;
  mutable n_self_ns : int;
  n_children : (int, node) Hashtbl.t;
}

(* One stack slot, preallocated and reused: entering an event or span
   allocates nothing. Timestamps are unboxed ints (63-bit ns — ~146
   years of monotonic time). *)
type frame = {
  mutable fr_key : key;
  mutable fr_start_ns : int;
  mutable fr_child_ns : int;
  mutable fr_node : node;
}

type t = {
  sw : switch;
  keys : (string, key) Hashtbl.t;
  mutable key_order : key list; (* registration order, reversed *)
  mutable next_id : int;
  mutable clock : unit -> int64;
  root : node;
  mutable frames : frame array;
  mutable depth : int;
}

let make_key t ~component ~cvm ~stage =
  let k =
    {
      k_id = t.next_id;
      k_component = component;
      k_cvm = cvm;
      k_stage = stage;
      k_events = 0;
      k_self_ns = 0;
      k_cum_ns = 0;
      k_rng = 0;
      k_rng_pub = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  k

let root_key t = make_key t ~component:"<root>" ~cvm:"-" ~stage:"-"

let make_frame root =
  { fr_key = root.n_key; fr_start_ns = 0; fr_child_ns = 0; fr_node = root }

let create ?(enabled = false) () =
  let partial =
    {
      sw = { on = enabled };
      keys = Hashtbl.create 64;
      key_order = [];
      next_id = 0;
      clock = (fun () -> Monotonic_clock.now ());
      root =
        {
          n_key =
            {
              k_id = -1;
              k_component = "<root>";
              k_cvm = "-";
              k_stage = "-";
              k_events = 0;
              k_self_ns = 0;
              k_cum_ns = 0;
              k_rng = 0;
              k_rng_pub = 0;
            };
          n_self_ns = 0;
          n_children = Hashtbl.create 16;
        };
      frames = [||];
      depth = 0;
    }
  in
  ignore (root_key partial); (* burn id 0 so real keys never collide with -1 *)
  partial.frames <- Array.init 64 (fun _ -> make_frame partial.root);
  partial

let default = create ()

let enabled t = t.sw.on
let set_enabled t b = t.sw.on <- b
let set_clock t c = t.clock <- c

let key t ~component ~cvm ~stage =
  let id = component ^ "\x1f" ^ cvm ^ "\x1f" ^ stage in
  match Hashtbl.find_opt t.keys id with
  | Some k -> k
  | None ->
    let k = make_key t ~component ~cvm ~stage in
    Hashtbl.replace t.keys id k;
    t.key_order <- k :: t.key_order;
    k

let unattributed = key default ~component:"unattributed" ~cvm:"-" ~stage:"-"

let key_id k = k.k_id
let key_triple k = (k.k_component, k.k_cvm, k.k_stage)

(* Always-on: one add per dispatched event (the engine computes the
   delta from Rng.draws around the handler). *)
let add_rng_draws k n = k.k_rng <- k.k_rng + n
let rng_draws k = k.k_rng

let reset t =
  List.iter
    (fun k ->
      k.k_events <- 0;
      k.k_self_ns <- 0;
      k.k_cum_ns <- 0;
      k.k_rng <- 0;
      k.k_rng_pub <- 0)
    t.key_order;
  Hashtbl.reset t.root.n_children;
  t.root.n_self_ns <- 0;
  t.depth <- 0

(* ------------------------------------------------------------------ *)
(* Hot path                                                            *)
(* ------------------------------------------------------------------ *)

let grow t =
  let bigger =
    Array.init (2 * Array.length t.frames) (fun i ->
        if i < Array.length t.frames then t.frames.(i) else make_frame t.root)
  in
  t.frames <- bigger

let enter t k =
  if t.depth >= Array.length t.frames then grow t;
  let fr = t.frames.(t.depth) in
  let parent =
    if t.depth = 0 then t.root else t.frames.(t.depth - 1).fr_node
  in
  let node =
    match Hashtbl.find_opt parent.n_children k.k_id with
    | Some n -> n
    | None ->
      let n = { n_key = k; n_self_ns = 0; n_children = Hashtbl.create 4 } in
      Hashtbl.replace parent.n_children k.k_id n;
      n
  in
  fr.fr_key <- k;
  fr.fr_child_ns <- 0;
  fr.fr_node <- node;
  fr.fr_start_ns <- Int64.to_int (t.clock ());
  t.depth <- t.depth + 1

let exit_frame t =
  t.depth <- t.depth - 1;
  let fr = t.frames.(t.depth) in
  let dt = Int64.to_int (t.clock ()) - fr.fr_start_ns in
  let dt = if dt < 0 then 0 else dt in
  let self = dt - fr.fr_child_ns in
  let self = if self < 0 then 0 else self in
  let k = fr.fr_key in
  k.k_events <- k.k_events + 1;
  k.k_self_ns <- k.k_self_ns + self;
  k.k_cum_ns <- k.k_cum_ns + dt;
  fr.fr_node.n_self_ns <- fr.fr_node.n_self_ns + self;
  if t.depth > 0 then begin
    let p = t.frames.(t.depth - 1) in
    p.fr_child_ns <- p.fr_child_ns + dt
  end

let hot () = default.sw.on
let enter_event k = enter default k
let exit_event () = exit_frame default

let span k f =
  if default.sw.on then begin
    enter default k;
    match f () with
    | v ->
      exit_frame default;
      v
    | exception e ->
      exit_frame default;
      raise e
  end
  else f ()

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

type row = {
  r_component : string;
  r_cvm : string;
  r_stage : string;
  r_events : int;
  r_self_ns : float;
  r_cum_ns : float;
  r_rng_draws : int;
}

let key_name k = k.k_component ^ ":" ^ k.k_cvm ^ ":" ^ k.k_stage

let rows t =
  t.key_order
  |> List.filter_map (fun k ->
         if k.k_events = 0 then None
         else
           Some
             {
               r_component = k.k_component;
               r_cvm = k.k_cvm;
               r_stage = k.k_stage;
               r_events = k.k_events;
               r_self_ns = float_of_int k.k_self_ns;
               r_cum_ns = float_of_int k.k_cum_ns;
               r_rng_draws = k.k_rng;
             })
  |> List.sort (fun a b ->
         match Float.compare b.r_self_ns a.r_self_ns with
         | 0 ->
           compare
             (a.r_component, a.r_cvm, a.r_stage)
             (b.r_component, b.r_cvm, b.r_stage)
         | c -> c)

let total_self_ns t =
  List.fold_left (fun acc k -> acc +. float_of_int k.k_self_ns) 0. t.key_order

let attributed_ns t =
  let una =
    if t == default then float_of_int unattributed.k_self_ns else 0.
  in
  total_self_ns t -. una

let attributed_pct t =
  let total = total_self_ns t in
  if total <= 0. then 100. else 100. *. attributed_ns t /. total

let ms ns = ns /. 1e6

let render t =
  let rs = rows t in
  let total = total_self_ns t in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %-16s %-18s %10s %10s %8s %10s %7s %8s\n" "component"
       "cvm" "stage" "events" "self(ms)" "share%" "cum(ms)" "ns/ev" "rng");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf
           "%-12s %-16s %-18s %10d %10.2f %8.2f %10.2f %7.0f %8d\n"
           r.r_component r.r_cvm r.r_stage r.r_events (ms r.r_self_ns)
           (if total > 0. then 100. *. r.r_self_ns /. total else 0.)
           (ms r.r_cum_ns)
           (r.r_self_ns /. float_of_int (max r.r_events 1))
           r.r_rng_draws))
    rs;
  Buffer.add_string buf
    (Printf.sprintf
       "total measured: %.2f ms over %d keys; attributed: %.2f ms (%.1f%%)\n"
       (ms total) (List.length rs)
       (ms (attributed_ns t))
       (attributed_pct t));
  Buffer.contents buf

let folded t =
  let lines = ref [] in
  let rec walk prefix node =
    let name = key_name node.n_key in
    let path = if prefix = "" then name else prefix ^ ";" ^ name in
    if node.n_self_ns > 0 then
      lines := Printf.sprintf "%s %d" path node.n_self_ns :: !lines;
    Hashtbl.iter (fun _ child -> walk path child) node.n_children
  in
  Hashtbl.iter (fun _ child -> walk "" child) t.root.n_children;
  String.concat "\n" (List.sort String.compare !lines)
  ^ if !lines = [] then "" else "\n"

(* Mirror per-label RNG draw totals into a Metrics registry as
   [rng_draws_total{component,cvm,stage}]. Delta-published like
   Watermark.publish so repeated calls (telemetry dumps, sampler ticks)
   stay monotone; keys that never drew are skipped to avoid flooding
   the exposition with zero series. *)
let publish_rng_draws t registry =
  if Metrics.enabled registry then
    List.iter
      (fun k ->
        if k.k_rng > k.k_rng_pub then begin
          let c =
            Metrics.counter registry
              ~help:
                "Deterministic-RNG draws made while handlers scheduled \
                 under this label were dispatching."
              ~labels:
                [
                  ("component", k.k_component);
                  ("cvm", k.k_cvm);
                  ("stage", k.k_stage);
                ]
              "rng_draws_total"
          in
          Metrics.incr ~by:(k.k_rng - k.k_rng_pub) c;
          k.k_rng_pub <- k.k_rng
        end)
      (List.rev t.key_order)

let to_json t =
  let total = total_self_ns t in
  let hotspot r =
    Json.Obj
      [
        ("component", Json.String r.r_component);
        ("cvm", Json.String r.r_cvm);
        ("stage", Json.String r.r_stage);
        ("events", Json.Int r.r_events);
        ("self_wall_ns", Json.Float r.r_self_ns);
        ("cum_wall_ns", Json.Float r.r_cum_ns);
        ( "ns_per_event",
          Json.Float (r.r_self_ns /. float_of_int (max r.r_events 1)) );
        ( "share_pct",
          Json.Float (if total > 0. then 100. *. r.r_self_ns /. total else 0.)
        );
        ("rng_draws", Json.Int r.r_rng_draws);
      ]
  in
  Json.Obj
    [
      ("total_self_wall_ns", Json.Float total);
      ("attributed_wall_ns", Json.Float (attributed_ns t));
      ("attributed_pct", Json.Float (attributed_pct t));
      ("hotspots", Json.List (List.map hotspot (rows t)));
    ]
