(** Capability audit ledger: typed events and violations.

    The provenance DAG itself lives in [Cheri.Provenance] (this library
    cannot see capabilities); what belongs down here is the part every
    layer shares: a process-wide enable flag, deterministic 1-in-N
    sampling for exercise checks, per-kind event counters, and the
    violation ledger with the same attribution discipline as
    {!Chaos} — every violation carries the compartment it is charged
    to, the faulting address and a typed kind, so the audit report and
    the chaos ledger cross-reference by cVM and kind.

    Updates follow the {!Metrics} discipline: recording is a single
    flag check when the registry is disabled — no allocation, no clock
    reads, no RNG — so enabling the audit cannot perturb virtual-time
    results (Fig. 4 medians are bit-identical with audit on/off). *)

type t

(** Capability life-cycle events, counted by kind. *)
type event =
  | Mint  (** Root capability created (boot path, Intravisor). *)
  | Derive  (** Monotonic narrowing: set_bounds/and_perms/malloc. *)
  | Seal
  | Unseal
  | Grant  (** Handed to a cVM as part of its initial endowment. *)
  | Transfer  (** Cross-boundary: trampoline entry, channel, syscall. *)
  | Exercise  (** A (sampled) dereference through the capability. *)
  | Revoke  (** Free / supervisor teardown. *)
  | Restore  (** Re-grant after a successful supervised restart. *)
  | Chaos_injection  (** A chaos-engine capability fault was armed. *)

type violation_kind =
  | Bounds_widening  (** Child bounds escape the parent's. *)
  | Perm_widening  (** Child holds a permission the parent lacks. *)
  | Revoked_parent
      (** Dereference through a revoked/freed lineage (temporal leak). *)
  | Confinement
      (** Exercised by a compartment with no recorded grant, channel or
          crossing that explains possession. *)
  | Hw_fault
      (** A {!Cheri.Fault.Capability_fault} was raised — recorded for
          cross-referencing with the chaos ledger, not an invariant
          breach of the DAG itself. *)

type violation = {
  v_id : int;
  v_kind : violation_kind;
  v_cvm : string;  (** Compartment the violation is charged to. *)
  v_address : int;
  v_detail : string;
  v_source : string;  (** Recording site: "derive", "exercise", ... *)
}

exception Audit_fault of violation
(** Raised by {!record_violation} in strict mode (invariant kinds
    only — [Hw_fault] is already an in-flight capability fault). *)

val all_events : event list
val all_violation_kinds : violation_kind list
val event_name : event -> string
val violation_kind_name : violation_kind -> string

val create : ?enabled:bool -> unit -> t
(** Disabled by default. *)

val default : t
(** The process-wide ledger every layer records into. Disabled by
    default; [netrepro audit] and the test suite enable it. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val clear : t -> unit
(** Zero the counters, drop the violations, reset the sampling phase. *)

val strict : t -> bool

val set_strict : t -> bool -> unit
(** In strict mode an invariant violation raises {!Audit_fault} at the
    recording site instead of only being ledgered. *)

val sample_every : t -> int
val set_sample_every : t -> int -> unit

val tick_sample : t -> bool
(** Deterministic counter-based 1-in-N decision for exercise checks —
    no RNG, so audit runs stay bit-identical per seed. Returns [false]
    when the ledger is disabled. *)

(** {1 Recording} *)

val record_event : t -> ?n:int -> event -> unit
(** One branch when disabled. When the {!Metrics} registry is also
    enabled, mirrored into [audit_events_total{kind}]. *)

val record_violation :
  t ->
  kind:violation_kind ->
  cvm:string ->
  address:int ->
  detail:string ->
  source:string ->
  unit
(** Ledger a violation; mirrored into [audit_violations_total{kind,cvm}]
    when metrics are enabled.
    @raise Audit_fault in strict mode for invariant kinds. *)

val set_live_caps : t -> cvm:string -> int -> unit
(** Mirror the per-compartment live-capability count into the
    [audit_live_caps{cvm}] gauge (kept by [Cheri.Provenance]). *)

(** {1 Reads} *)

val event_count : t -> event -> int
val events_total : t -> int

val violations : t -> violation list
(** Chronological. *)

val violation_count : ?kind:violation_kind -> t -> int

val invariant_violations : t -> violation list
(** Violations of the DAG invariants proper — every kind except
    [Hw_fault]. [netrepro audit] gates on this list being empty for the
    stock scenarios. *)

val to_json : t -> Json.t
