type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable len : int;
}

let create ~cmp = { cmp; data = [||]; len = 0 }
let size h = h.len
let is_empty h = h.len = 0

let grow h x =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    (* [x] is only a seed value for the fresh slots; it is never observed
       through the public API because [len] bounds all reads. *)
    let ndata = Array.make ncap x in
    Array.blit h.data 0 ndata 0 h.len;
    h.data <- ndata
  end

let push h x =
  grow h x;
  h.data.(h.len) <- x;
  h.len <- h.len + 1;
  (* sift up *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if h.cmp h.data.(i) h.data.(parent) < 0 then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(parent);
        h.data.(parent) <- tmp;
        up parent
      end
    end
  in
  up (h.len - 1)

let peek h = if h.len = 0 then None else Some h.data.(0)

(* Allocation-free variant for the scheduler's hot loop. *)
let peek_exn h =
  if h.len = 0 then invalid_arg "Heap.peek_exn: empty heap";
  h.data.(0)

let sift_down h =
  let rec down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.len && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
    if r < h.len && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
    if !smallest <> i then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(!smallest);
      h.data.(!smallest) <- tmp;
      down !smallest
    end
  in
  down 0

(* Allocation-free variant for the scheduler's hot loop: no [Some] cell
   per fired event. *)
let pop_exn h =
  if h.len = 0 then invalid_arg "Heap.pop_exn: empty heap";
  let top = h.data.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.data.(0) <- h.data.(h.len);
    sift_down h
  end;
  top

let pop h = if h.len = 0 then None else Some (pop_exn h)

let clear h = h.len <- 0

let to_sorted_list h =
  let copy = { cmp = h.cmp; data = Array.sub h.data 0 h.len; len = h.len } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
