(** Minimal JSON tree, emitter and parser.

    The telemetry surface needs JSON in three places: the Chrome
    [trace_event] export ({!Span.to_chrome_json}), the bench harness's
    machine-readable per-artefact summaries, and the round-trip tests
    that validate both. The container carries no JSON library, so this
    is a small self-contained implementation. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. NaN/infinite floats render as [null]. *)

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input. *)

val parse_opt : string -> t option

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] elsewhere. *)

val to_list : t -> t list option
