(** Discrete-event scheduler, sharded.

    The engine owns the virtual clock and one pending-event heap per
    {e shard}. Events are plain closures scheduled at an absolute or
    relative virtual time; ties are broken by insertion order — the
    comparator is the total order [(deadline, schedule seq)], so
    equal-deadline events dispatch FIFO and the simulation is fully
    deterministic ({!Journal} replay depends on this). Components
    (NIC, TCP timers, cVM loops) interact only by scheduling events on
    a shared engine.

    {2 Sharding}

    An engine is created with [?shards:n] heaps (default 1). Every
    event lands on the {e current} shard: the shard whose handler is
    executing, or the placement target chosen with {!with_shard} /
    {!set_shard} outside dispatch — so a subsystem built under
    [with_shard t i] keeps all of its self-rescheduling activity on
    shard [i] without any call-site changes.

    The default {e interleaved} executor drains all heaps on one core
    in the global [(deadline, seq)] order. Because the schedule-seq
    counter is shared across shards, this order is {e identical} to
    the order a single-heap engine would produce for the same program:
    sharding an interleaved run changes which heap holds an event,
    never when it fires. Shard count 1 is byte-identical to the
    pre-sharding engine by construction.

    The opt-in {e domains} executor ({!set_use_domains}, or
    [~domains:true]) runs one OCaml 5 [Domain] per shard. Shards
    advance in conservative windows: at each rendezvous every shard
    publishes its next pending deadline, the global minimum [M] is
    computed, and each shard then executes its events with deadline
    [<= M + quantum] before the next rendezvous (lowest-virtual-time
    wins; FIFO seq tie-break within a shard). Cross-shard sends
    ({!schedule_on}) travel through single-producer/single-consumer
    mailboxes drained at the rendezvous, in producer-id then send
    order — a pure function of virtual time, so a given seed always
    produces the same execution. Journal recording and profiling are
    process-global and are bypassed while domains run (the CLI refuses
    [--journal] with [--domains] above one shard).

    Every serial dispatch is bracketed by the {!Journal} hot path: it
    receives a global sequence number, its shard id, its causal parent
    (the dispatch whose handler scheduled it), and its {!Rng}-draw
    count, feeding the always-on crash black box and, when armed,
    journal recording or replay verification. *)

type t

type handle
(** A scheduled event, cancellable until it fires. *)

val create : ?shards:int -> ?domains:bool -> ?seed:int64 -> unit -> t
(** [shards] (default 1) fixes the heap count for the engine's
    lifetime. [domains] arms the domain-per-shard executor for
    {!run}. [seed] derives the per-shard {!Rng} streams. *)

val shard_count : t -> int

val now : t -> Time.t
(** Current virtual time: the global clock, or the executing shard's
    clock while the domains executor is driving. *)

val current_shard : t -> int
(** The shard new events land on: the dispatching shard during a
    handler, the placement target otherwise. *)

val set_shard : t -> int -> unit
(** Set the placement target for subsequent schedules made outside any
    handler. Invalid while domains run. *)

val parallel_shard : t -> int
(** [0] in every serial mode; the executing shard's id while the
    domains executor is driving. Shared simulated resources key
    per-shard state (e.g. {!Nic.Pci_bus} channels) off this so serial
    runs stay byte-identical while parallel shards touch disjoint
    slots. *)

val with_shard : t -> int -> (unit -> 'a) -> 'a
(** [with_shard t i f] runs [f] with the placement target set to shard
    [i], restoring the previous target afterwards: build a subsystem
    under it and all of the subsystem's activity stays on shard [i]. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> handle
(** Schedule at an absolute time on the current shard. Times in the
    past fire "now" (at the current clock value), never before
    already-pending earlier events. Wall time spent in the handler is
    charged to {!Profile.unattributed} — prefer {!schedule_at_l}. *)

val schedule : t -> delay:Time.t -> (unit -> unit) -> handle
(** Schedule relative to {!now}; unattributed like {!schedule_at}. *)

val schedule_at_l :
  t -> at:Time.t -> label:Profile.key -> (unit -> unit) -> handle
(** {!schedule_at} with a profiler attribution key: when profiling is
    enabled, the dispatch loop charges the handler's wall time to
    [label]. The label argument is non-optional so labelled call sites
    allocate no [Some] cell per event — virtual-time behaviour is
    identical to {!schedule_at} in every case. *)

val schedule_l :
  t -> delay:Time.t -> label:Profile.key -> (unit -> unit) -> handle
(** {!schedule} with an attribution key. *)

val schedule_on :
  t -> shard:int -> at:Time.t -> label:Profile.key -> (unit -> unit) -> unit
(** Schedule onto an explicit shard. Serial modes place directly (the
    global dispatch order makes any placement order-invisible); under
    the domains executor the event goes through the target shard's
    mailbox and materializes at the next rendezvous, clamped to the
    receiver's clock (delivery latency is bounded by one quantum). No
    handle: a mailbox event cannot be cancelled in flight. *)

val cancel : handle -> unit
(** Idempotent; cancelling a fired event is a no-op. When cancelled
    handles come to outnumber live ones on a shard, that shard's heap
    is compacted in place, so mass cancellation (e.g. tearing down
    every TCP timer) does not pin dead closures until their deadline
    pops — and never scans sibling shards. Under the domains executor,
    only the shard owning the handle may cancel it. *)

val is_pending : handle -> bool

val pending_count : t -> int
(** Live (not cancelled, not fired) events summed over all shards.
    Exact: cancelled events are discounted immediately, not lazily at
    pop time. *)

val shard_pending : t -> int -> int
(** Live events on one shard. *)

val heap_size : t -> int
(** Entries physically in the heaps, including cancelled ones awaiting
    pop or compaction. For tests/diagnostics;
    [heap_size t >= pending_count t] always holds. *)

val events_fired : t -> int
(** Total events executed since {!create}, summed over shards (the
    wall-clock benchmark's events/sec numerator). *)

val shard_events_fired : t -> int -> int
(** Events executed by one shard. *)

val rng : t -> Rng.t
(** The current shard's deterministic RNG stream. *)

val shard_rng : t -> int -> Rng.t
(** A specific shard's RNG stream (streams are split from the engine
    seed at creation, one per shard). *)

val step : t -> bool
(** Fire the globally next event (lowest deadline across shards, FIFO
    seq tie-break), advancing the clock to it. Returns [false] when no
    event is pending. Always interleaved. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Drain events in time order. [until] stops (inclusive) once the next
    event would fire strictly after it, leaving the clock at [until].
    [max_events] guards against runaway self-rescheduling loops. With
    the domains executor armed (and more than one shard, and no
    [max_events] budget), this drives one [Domain] per shard under the
    rendezvous protocol instead of interleaving. *)

val run_until_quiet : t -> unit
(** Run until no events remain. *)

val set_use_domains : t -> bool -> unit
(** Arm/disarm the domain-per-shard executor for subsequent {!run}
    calls. A no-op in effect when the engine has one shard. *)

val uses_domains : t -> bool

val set_quantum : t -> Time.t -> unit
(** Rendezvous window width for the domains executor (default 1 ms of
    virtual time). Smaller bounds cross-shard delivery latency
    tighter; larger amortizes the barrier. Must be positive. *)
