(** Discrete-event scheduler.

    The engine owns the virtual clock and a pending-event heap. Events
    are plain closures scheduled at an absolute or relative virtual
    time; ties are broken by insertion order — the heap comparator is
    the total order [(deadline, schedule seq)], so equal-deadline
    events dispatch FIFO and the simulation is fully deterministic
    ({!Journal} replay depends on this). Components (NIC, TCP timers,
    cVM loops) interact only by scheduling events on a shared engine.

    Every dispatch is bracketed by the {!Journal} hot path: it receives
    a global sequence number, its causal parent (the dispatch whose
    handler scheduled it), and its {!Rng}-draw count, feeding the
    always-on crash black box and, when armed, journal recording or
    replay verification. *)

type t

type handle
(** A scheduled event, cancellable until it fires. *)

val create : unit -> t

val now : t -> Time.t
(** Current virtual time. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> handle
(** Schedule at an absolute time. Times in the past fire "now" (at the
    current clock value), never before already-pending earlier events.
    Wall time spent in the handler is charged to
    {!Profile.unattributed} — prefer {!schedule_at_l}. *)

val schedule : t -> delay:Time.t -> (unit -> unit) -> handle
(** Schedule relative to {!now}; unattributed like {!schedule_at}. *)

val schedule_at_l :
  t -> at:Time.t -> label:Profile.key -> (unit -> unit) -> handle
(** {!schedule_at} with a profiler attribution key: when profiling is
    enabled, the dispatch loop charges the handler's wall time to
    [label]. The label argument is non-optional so labelled call sites
    allocate no [Some] cell per event — virtual-time behaviour is
    identical to {!schedule_at} in every case. *)

val schedule_l :
  t -> delay:Time.t -> label:Profile.key -> (unit -> unit) -> handle
(** {!schedule} with an attribution key. *)

val cancel : handle -> unit
(** Idempotent; cancelling a fired event is a no-op. When cancelled
    handles come to outnumber live ones the heap is compacted in place,
    so mass cancellation (e.g. tearing down every TCP timer) does not
    pin dead closures until their deadline pops. *)

val is_pending : handle -> bool

val pending_count : t -> int
(** Number of live (not cancelled, not fired) events. Exact: cancelled
    events are discounted immediately, not lazily at pop time. *)

val heap_size : t -> int
(** Entries physically in the heap, including cancelled ones awaiting
    pop or compaction. For tests/diagnostics;
    [heap_size t >= pending_count t] always holds. *)

val events_fired : t -> int
(** Total events executed since {!create} (the wall-clock benchmark's
    events/sec numerator). *)

val step : t -> bool
(** Fire the next event, advancing the clock to it. Returns [false] when
    no event is pending. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Drain events in time order. [until] stops (inclusive) once the next
    event would fire strictly after it, leaving the clock at [until].
    [max_events] guards against runaway self-rescheduling loops. *)

val run_until_quiet : t -> unit
(** Run until no events remain. *)
