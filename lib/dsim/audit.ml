type event =
  | Mint
  | Derive
  | Seal
  | Unseal
  | Grant
  | Transfer
  | Exercise
  | Revoke
  | Restore
  | Chaos_injection

let all_events =
  [
    Mint; Derive; Seal; Unseal; Grant; Transfer; Exercise; Revoke; Restore;
    Chaos_injection;
  ]

let event_index = function
  | Mint -> 0
  | Derive -> 1
  | Seal -> 2
  | Unseal -> 3
  | Grant -> 4
  | Transfer -> 5
  | Exercise -> 6
  | Revoke -> 7
  | Restore -> 8
  | Chaos_injection -> 9

let event_name = function
  | Mint -> "mint"
  | Derive -> "derive"
  | Seal -> "seal"
  | Unseal -> "unseal"
  | Grant -> "grant"
  | Transfer -> "transfer"
  | Exercise -> "exercise"
  | Revoke -> "revoke"
  | Restore -> "restore"
  | Chaos_injection -> "chaos_injection"

type violation_kind =
  | Bounds_widening
  | Perm_widening
  | Revoked_parent
  | Confinement
  | Hw_fault

let all_violation_kinds =
  [ Bounds_widening; Perm_widening; Revoked_parent; Confinement; Hw_fault ]

let violation_kind_name = function
  | Bounds_widening -> "bounds_widening"
  | Perm_widening -> "perm_widening"
  | Revoked_parent -> "revoked_parent"
  | Confinement -> "confinement"
  | Hw_fault -> "hw_fault"

type violation = {
  v_id : int;
  v_kind : violation_kind;
  v_cvm : string;
  v_address : int;
  v_detail : string;
  v_source : string;
}

exception Audit_fault of violation

let () =
  Printexc.register_printer (function
    | Audit_fault v ->
      Some
        (Printf.sprintf "Audit_fault: %s by %s at 0x%x (%s)"
           (violation_kind_name v.v_kind)
           v.v_cvm v.v_address v.v_detail)
    | _ -> None)

type t = {
  mutable enabled : bool;
  mutable strict : bool;
  mutable sample_every : int;
  mutable sample_tick : int;
  counts : int array;  (* indexed by event_index *)
  mutable next_vid : int;
  mutable violations_rev : violation list;
}

let create ?(enabled = false) () =
  {
    enabled;
    strict = false;
    sample_every = 64;
    sample_tick = 0;
    counts = Array.make (List.length all_events) 0;
    next_vid = 1;
    violations_rev = [];
  }

let default = create ()
let enabled t = t.enabled
let set_enabled t b = t.enabled <- b
let strict t = t.strict
let set_strict t b = t.strict <- b
let sample_every t = t.sample_every

let set_sample_every t n =
  if n < 1 then invalid_arg "Audit.set_sample_every: must be >= 1";
  t.sample_every <- n;
  t.sample_tick <- 0

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.next_vid <- 1;
  t.violations_rev <- [];
  t.sample_tick <- 0

let tick_sample t =
  t.enabled
  && begin
       t.sample_tick <- t.sample_tick + 1;
       if t.sample_tick >= t.sample_every then begin
         t.sample_tick <- 0;
         true
       end
       else false
     end

(* Metrics mirroring: one counter per event kind, violations labelled by
   kind and compartment, live caps a per-cVM gauge. All get-or-create
   lookups happen on the recording (already audit-enabled) path and the
   update itself is branch-checked inside Metrics, so a metrics-disabled
   audit run pays only the hash lookup. *)
let event_metric kind =
  Metrics.counter Metrics.default
    ~help:"Capability provenance events recorded by the audit ledger."
    ~labels:[ ("kind", event_name kind) ]
    "audit_events_total"

let violation_metric kind cvm =
  Metrics.counter Metrics.default
    ~help:"Capability audit violations, by kind and charged compartment."
    ~labels:[ ("kind", violation_kind_name kind); ("cvm", cvm) ]
    "audit_violations_total"

let live_caps_metric cvm =
  Metrics.gauge Metrics.default
    ~help:"Live (unrevoked) tracked capabilities held per compartment."
    ~labels:[ ("cvm", cvm) ] "audit_live_caps"

let record_event t ?(n = 1) kind =
  if t.enabled then begin
    let i = event_index kind in
    t.counts.(i) <- t.counts.(i) + n;
    if Metrics.enabled Metrics.default then
      Metrics.incr ~by:n (event_metric kind)
  end

let record_violation t ~kind ~cvm ~address ~detail ~source =
  if t.enabled then begin
    let v =
      {
        v_id = t.next_vid;
        v_kind = kind;
        v_cvm = cvm;
        v_address = address;
        v_detail = detail;
        v_source = source;
      }
    in
    t.next_vid <- t.next_vid + 1;
    t.violations_rev <- v :: t.violations_rev;
    if Metrics.enabled Metrics.default then
      Metrics.incr (violation_metric kind cvm);
    (* Hw_fault records ride along with an already-raising capability
       fault; replacing that exception would mask the hardware trap. *)
    if t.strict && kind <> Hw_fault then raise (Audit_fault v)
  end

let set_live_caps t ~cvm n =
  if t.enabled && Metrics.enabled Metrics.default then
    Metrics.set (live_caps_metric cvm) n

let event_count t kind = t.counts.(event_index kind)
let events_total t = Array.fold_left ( + ) 0 t.counts
let violations t = List.rev t.violations_rev

let violation_count ?kind t =
  match kind with
  | None -> List.length t.violations_rev
  | Some k ->
    List.fold_left
      (fun n v -> if v.v_kind = k then n + 1 else n)
      0 t.violations_rev

let invariant_violations t =
  List.filter (fun v -> v.v_kind <> Hw_fault) (violations t)

let to_json t =
  let events =
    List.filter_map
      (fun k ->
        let n = event_count t k in
        if n = 0 then None else Some (event_name k, Json.Int n))
      all_events
  in
  let violation_json v =
    Json.Obj
      [
        ("id", Json.Int v.v_id);
        ("kind", Json.String (violation_kind_name v.v_kind));
        ("cvm", Json.String v.v_cvm);
        ("address", Json.Int v.v_address);
        ("detail", Json.String v.v_detail);
        ("source", Json.String v.v_source);
      ]
  in
  Json.Obj
    [
      ("sample_every", Json.Int t.sample_every);
      ("events", Json.Obj events);
      ("violations", Json.List (List.map violation_json (violations t)));
      ( "invariant_violations",
        Json.Int (List.length (invariant_violations t)) );
    ]
