type t = { mutable state : int64 }

(* Process-wide draw counter. Every [bits64] (the single primitive all
   draws funnel through) bumps it; the engine snapshots it around each
   dispatched handler so the journal can record draws-per-dispatch and
   the profiler can attribute draws per scheduling label. One unboxed
   int increment per draw — never reset, deltas are what matter. *)
let draw_count = ref 0

let draws () = !draw_count

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = seed }

let bits64 t =
  incr draw_count;
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  create ~seed:(mix64 seed)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value always fits OCaml's 63-bit int. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let float t bound =
  (* 53 random bits mapped to [0, 1), as in the stdlib Random. *)
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec u () =
    let x = float t 1.0 in
    if x > 0. then x else u ()
  in
  let u1 = u () and u2 = float t 1.0 in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  mu +. (sigma *. z)

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let exponential t ~mean =
  let rec u () =
    let x = float t 1.0 in
    if x > 0. then x else u ()
  in
  -.mean *. log (u ())
