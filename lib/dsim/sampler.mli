(** Periodic time-series sampling of a {!Metrics} registry.

    Once attached to an engine, the sampler snapshots every registered
    series at a fixed virtual-clock interval, producing the time
    dimension the Prometheus dump lacks (that export is one cumulative
    point at end of run). Rows feed the [netrepro analyze] time-series
    view and the bandwidth experiments' ramp diagnostics.

    The recurring event stops rescheduling itself when the registry is
    disabled, when the row capacity is reached, or when it would be the
    only event keeping the simulation alive — so attaching a sampler
    never prevents [run_until_quiet] from terminating. *)

type t

type row = {
  at_ns : float;  (** Virtual time of the snapshot. *)
  values : (string * Metrics.labels * Metrics.value) list;
}

val create :
  ?enabled:bool -> ?interval:Time.t -> ?capacity:int -> unit -> t
(** Default interval 10 ms of virtual time, capacity 4096 rows. *)

val default : t

val enabled : t -> bool
val set_enabled : t -> bool -> unit
val interval : t -> Time.t
val set_interval : t -> Time.t -> unit
val clear : t -> unit

val truncated : t -> bool
(** True once the row capacity was reached while samples were still
    due: the recorded series is a prefix, not the whole run. *)

val dropped : t -> int
(** Snapshots that fell past capacity (each would have been a row). *)

val attach : t -> Engine.t -> Metrics.t -> unit
(** Begin sampling [Metrics] rows on [Engine]'s clock. No-op when
    disabled; call after enabling and before the run. *)

val rows : t -> row list
(** Snapshot rows, oldest first. *)

val to_json : t -> Json.t
(** [{"interval_ns", "capacity", "truncated", "dropped_rows",
    "rows": [...]}] — consumers must check [truncated] before treating
    the series as covering the full run. *)
